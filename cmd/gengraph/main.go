// Command gengraph materializes the synthetic dataset stand-ins (or a
// custom R-MAT graph) to disk in the engine's binary graph format.
//
// Usage:
//
//	gengraph -data twitter-sim -scale 8 -out twitter.gph
//	gengraph -nodes 65536 -edges 2000000 -a 0.57 -b 0.19 -c 0.19 -out custom.gph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pprengine/internal/datasets"
	"pprengine/internal/graph"
)

func main() {
	var (
		data  = flag.String("data", "", "named dataset stand-in (products-sim|twitter-sim|friendster-sim|papers-sim)")
		scale = flag.Int("scale", 1, "downscale factor for -data")
		nodes = flag.Int("nodes", 0, "custom graph: node count")
		edges = flag.Int64("edges", 0, "custom graph: directed edge count before symmetrization")
		a     = flag.Float64("a", 0.57, "custom graph: R-MAT quadrant a")
		b     = flag.Float64("b", 0.19, "custom graph: R-MAT quadrant b")
		c     = flag.Float64("c", 0.19, "custom graph: R-MAT quadrant c")
		seed  = flag.Int64("seed", 1, "custom graph: generator seed")
		out   = flag.String("out", "", "output path (required; .txt writes a SNAP-style edge list)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		os.Exit(2)
	}
	var g *graph.Graph
	switch {
	case *data != "":
		spec, err := datasets.Lookup(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(2)
		}
		if *scale > 1 {
			spec = spec.Scaled(*scale)
		}
		g = spec.Generate()
	case *nodes > 0 && *edges > 0:
		g = graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
			NumNodes: *nodes, NumEdges: *edges, A: *a, B: *b, C: *c, Noise: 0.05, Seed: *seed,
		}))
	default:
		fmt.Fprintln(os.Stderr, "gengraph: pass -data NAME or -nodes/-edges")
		os.Exit(2)
	}
	save := g.SaveFile
	if strings.HasSuffix(*out, ".txt") {
		save = g.SaveEdgeListFile
	}
	if err := save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("wrote %s: |V|=%d |E|=%d (directed entries) d_avg=%.1f d_max=%d\n",
		*out, st.NumNodes, st.NumEdges, st.AvgDegree, st.MaxDegree)
}
