// Command pprbench regenerates every table and figure of the paper's
// evaluation section against the synthetic dataset stand-ins.
//
// Usage:
//
//	pprbench -exp all -scale 8
//	pprbench -exp table2 -scale 1 -queries 32 -repeats 3
//
// Experiments: table1, table2, accuracy, fig5a, fig5b, table3, fig6, fig7,
// intro, partquality, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pprengine/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (table1|table2|accuracy|fig5a|fig5b|table3|fig6|fig7|intro|partquality|halo|epssweep|netlatency|models|cache|all)")
		scale      = flag.Int("scale", 8, "dataset downscale factor (1 = full stand-in size)")
		queries    = flag.Int("queries", 0, "SSPPR queries per machine (0 = default)")
		repeats    = flag.Int("repeats", 0, "measured repetitions (0 = default)")
		warmup     = flag.Int("warmup", -1, "warm-up runs (-1 = default)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "per-machine dynamic neighbor-row cache budget for the cache experiment")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Scale = *scale
	if *queries > 0 {
		p.Queries = *queries
	}
	if *repeats > 0 {
		p.Repeats = *repeats
	}
	if *warmup >= 0 {
		p.Warmup = *warmup
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, f func() (experiments.Report, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprbench: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(r.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (experiments.Report, error) {
		r, _ := experiments.Table1(p)
		return r, nil
	})
	run("table2", func() (experiments.Report, error) {
		r, _, err := experiments.Table2(p)
		return r, err
	})
	run("accuracy", func() (experiments.Report, error) {
		r, _, err := experiments.Accuracy(p, 5)
		return r, err
	})
	run("fig5a", func() (experiments.Report, error) {
		r, _, err := experiments.Fig5a(p)
		return r, err
	})
	run("fig5b", func() (experiments.Report, error) {
		r, _, err := experiments.Fig5b(p)
		return r, err
	})
	run("table3", func() (experiments.Report, error) {
		r, _, err := experiments.Table3(p)
		return r, err
	})
	run("fig6", func() (experiments.Report, error) {
		r, _, err := experiments.Fig6(p)
		return r, err
	})
	run("fig7", func() (experiments.Report, error) {
		r, _, err := experiments.Fig7(p)
		return r, err
	})
	run("intro", func() (experiments.Report, error) {
		r, _, err := experiments.Intro(p)
		return r, err
	})
	run("partquality", func() (experiments.Report, error) {
		r, _, err := experiments.PartQuality(p)
		return r, err
	})
	run("halo", func() (experiments.Report, error) {
		r, _, err := experiments.Halo(p)
		return r, err
	})
	run("epssweep", func() (experiments.Report, error) {
		r, _, err := experiments.EpsSweep(p)
		return r, err
	})
	run("netlatency", func() (experiments.Report, error) {
		r, _, err := experiments.NetLatency(p)
		return r, err
	})
	run("models", func() (experiments.Report, error) {
		r, _, err := experiments.Models(p)
		return r, err
	})
	run("cache", func() (experiments.Report, error) {
		r, _, err := experiments.CacheBench(p, *cacheBytes)
		return r, err
	})
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pprbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
