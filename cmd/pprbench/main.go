// Command pprbench regenerates every table and figure of the paper's
// evaluation section against the synthetic dataset stand-ins.
//
// Usage:
//
//	pprbench -exp all -scale 8
//	pprbench -exp table2 -scale 1 -queries 32 -repeats 3
//
// Experiments: table1, table2, accuracy, fig5a, fig5b, table3, fig6, fig7,
// intro, partquality, halo, epssweep, netlatency, models, cache, agg,
// failover, traceoverhead, hotpath, hotpath2, serve, overload, mutate, all.
//
// -json <path> additionally writes every ran experiment's structured rows
// (plus the run parameters) to path as one JSON object, for CI artifacts and
// scripted regression checks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pprengine/internal/experiments"
	"pprengine/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (table1|table2|accuracy|fig5a|fig5b|table3|fig6|fig7|intro|partquality|halo|epssweep|netlatency|models|cache|agg|failover|traceoverhead|hotpath|hotpath2|serve|overload|mutate|all)")
		scale      = flag.Int("scale", 8, "dataset downscale factor (1 = full stand-in size)")
		queries    = flag.Int("queries", 0, "SSPPR queries per machine (0 = default)")
		repeats    = flag.Int("repeats", 0, "measured repetitions (0 = default)")
		warmup     = flag.Int("warmup", -1, "warm-up runs (-1 = default)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "per-machine dynamic neighbor-row cache budget for the cache experiment")
		aggWindow  = flag.Duration("agg-window", 500*time.Microsecond, "flush window for the agg experiment's cross-query fetch aggregator")
		aggRows    = flag.Int("agg-rows", 0, "row cap per aggregated request for the agg experiment (0 = aggregator default)")
		replicas   = flag.Int("replicas", 0, "serving machines per shard for the failover experiment (0 = default 2)")
		probeIvl   = flag.Duration("probe-interval", 0, "health-ping interval for the failover experiment (0 = default 50ms)")
		breakerThr = flag.Int("breaker-threshold", 0, "consecutive failures that open a circuit breaker in the failover experiment (0 = default 3)")
		admitCap   = flag.Int("admit-max-inflight", 0, "per-machine in-flight query cap for the overload experiment (0 = core-count default)")
		admitQueue = flag.Int("admit-queue", 0, "admission wait-queue depth for the overload experiment (0 = default 2x cap)")
		hedgeDelay = flag.Duration("hedge-delay", 0, "fixed hedge delay for the overload experiment (0 = default 1ms)")
		jsonPath   = flag.String("json", "", "write the ran experiments' structured rows to this file as JSON")
		memProfile = flag.String("memprofile", "", "write a pprof allocs profile to this file after the experiments finish")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprbench:", err)
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	p.Scale = *scale
	if *queries > 0 {
		p.Queries = *queries
	}
	if *repeats > 0 {
		p.Repeats = *repeats
	}
	if *warmup >= 0 {
		p.Warmup = *warmup
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0
	// jsonOut collects each experiment's structured rows under its name; -json
	// writes it as one object so CI can archive and diff runs.
	jsonOut := map[string]any{"params": p}
	run := func(name string, f func() (experiments.Report, any, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		r, rows, err := f()
		if err != nil {
			logger.Error("experiment failed", "exp", name, "err", err)
			os.Exit(1)
		}
		if rows != nil {
			jsonOut[name] = rows
		}
		fmt.Print(r.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (experiments.Report, any, error) {
		r, rows := experiments.Table1(p)
		return r, rows, nil
	})
	run("table2", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Table2(p)
		return r, rows, err
	})
	run("accuracy", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Accuracy(p, 5)
		return r, rows, err
	})
	run("fig5a", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Fig5a(p)
		return r, rows, err
	})
	run("fig5b", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Fig5b(p)
		return r, rows, err
	})
	run("table3", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Table3(p)
		return r, rows, err
	})
	run("fig6", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Fig6(p)
		return r, rows, err
	})
	run("fig7", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Fig7(p)
		return r, rows, err
	})
	run("intro", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Intro(p)
		return r, rows, err
	})
	run("partquality", func() (experiments.Report, any, error) {
		r, rows, err := experiments.PartQuality(p)
		return r, rows, err
	})
	run("halo", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Halo(p)
		return r, rows, err
	})
	run("epssweep", func() (experiments.Report, any, error) {
		r, rows, err := experiments.EpsSweep(p)
		return r, rows, err
	})
	run("netlatency", func() (experiments.Report, any, error) {
		r, rows, err := experiments.NetLatency(p)
		return r, rows, err
	})
	run("models", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Models(p)
		return r, rows, err
	})
	run("cache", func() (experiments.Report, any, error) {
		r, rows, err := experiments.CacheBench(p, *cacheBytes)
		return r, rows, err
	})
	run("agg", func() (experiments.Report, any, error) {
		r, rows, err := experiments.AggBench(p, *aggWindow, *aggRows)
		return r, rows, err
	})
	run("failover", func() (experiments.Report, any, error) {
		r, rows, err := experiments.FailoverBench(p, *replicas, *probeIvl, *breakerThr)
		return r, rows, err
	})
	run("traceoverhead", func() (experiments.Report, any, error) {
		r, rows, err := experiments.TraceOverhead(p)
		return r, rows, err
	})
	run("hotpath", func() (experiments.Report, any, error) {
		r, rows, err := experiments.HotpathBench(p)
		return r, rows, err
	})
	run("hotpath2", func() (experiments.Report, any, error) {
		r, rows, err := experiments.Hotpath2Bench(p)
		return r, rows, err
	})
	run("serve", func() (experiments.Report, any, error) {
		r, rows, err := experiments.ServeBench(p)
		return r, rows, err
	})
	run("overload", func() (experiments.Report, any, error) {
		r, rows, err := experiments.OverloadBench(p, *admitCap, *admitQueue, *hedgeDelay)
		return r, rows, err
	})
	run("mutate", func() (experiments.Report, any, error) {
		r, rows, err := experiments.MutateBench(p)
		return r, rows, err
	})
	if ran == 0 {
		logger.Error("unknown experiment", "exp", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err != nil {
			logger.Error("encode -json failed", "err", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			logger.Error("write -json failed", "path", *jsonPath, "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON metrics to %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			logger.Error("create -memprofile failed", "err", err)
			os.Exit(1)
		}
		runtime.GC() // flush recent frees so the profile reflects live + allocs accurately
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			logger.Error("write -memprofile failed", "err", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote allocs profile to %s\n", *memProfile)
	}
}
