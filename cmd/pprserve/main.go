// Command pprserve runs one machine's Graph Storage server: it loads a
// shard file (from cmd/partition) and its locator, binds a TCP address, and
// answers neighbor-info / sampling / feature requests until interrupted.
//
// A real 4-machine deployment is four of these plus compute processes
// (cmd/pprquery or an embedding program) connecting with -peers:
//
//	pprserve -shard shards/shard-0.bin -locator shards/locator.bin -listen :7000
//	pprserve -shard shards/shard-1.bin -locator shards/locator.bin -listen :7001
//	...
//	pprquery -shard shards/shard-0.bin -locator shards/locator.bin \
//	         -peers "1=host1:7001,2=host2:7002,3=host3:7003" -source 42 -topk 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pprengine/internal/core"
	"pprengine/internal/deploy"
	"pprengine/internal/rpc"
)

func main() {
	var (
		shardPath    = flag.String("shard", "", "shard file (required)")
		locPath      = flag.String("locator", "", "locator file (required)")
		listen       = flag.String("listen", ":7000", "TCP listen address")
		peersSpec    = flag.String("peers", "", "other shards (\"1=host:port,...\"); enables the SSPPR query service for this shard's vertices")
		dialTimeout  = flag.Duration("dial-timeout", deploy.DefaultDialTimeout, "per-peer connect deadline for the query service")
		queryTimeout = flag.Duration("query-timeout", 0, "default per-query deadline for served SSPPR queries (0 = none; a client-propagated deadline overrides it)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "byte budget for the dynamic remote neighbor-row cache used by served queries (0 = disabled)")
		aggWindow    = flag.Duration("agg-window", 0, "flush window for cross-query RPC fetch aggregation of served queries (0 = disabled unless -agg-rows is set)")
		aggRows      = flag.Int("agg-rows", 0, "row cap per aggregated request; setting it also enables aggregation (0 = disabled unless -agg-window is set)")
	)
	flag.Parse()
	if *shardPath == "" || *locPath == "" {
		fmt.Fprintln(os.Stderr, "pprserve: -shard and -locator are required")
		os.Exit(2)
	}
	srv, addr, err := deploy.Serve(*shardPath, *locPath, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprserve:", err)
		os.Exit(1)
	}
	fmt.Printf("pprserve: shard %d (%d core nodes) serving on %s\n",
		srv.Shard.ShardID, srv.Shard.NumCore(), addr)
	if *peersSpec != "" {
		peers, err := deploy.ParsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprserve:", err)
			os.Exit(2)
		}
		cfg := core.DefaultConfig()
		cfg.QueryTimeout = *queryTimeout
		cfg.CacheBytes = *cacheBytes
		cfg.AggWindow = *aggWindow
		cfg.AggRows = *aggRows
		ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
		cleanup, err := deploy.EnableQueries(ctx, srv, peers, cfg, rpc.LatencyModel{})
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprserve:", err)
			os.Exit(1)
		}
		defer cleanup()
		fmt.Printf("pprserve: query service enabled (peers %s)\n", deploy.FormatPeers(peers))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pprserve: shutting down")
	srv.Close()
}
