// Command pprserve runs one machine's Graph Storage server: it loads a
// shard file (from cmd/partition) and its locator, binds a TCP address, and
// answers neighbor-info / sampling / feature requests until interrupted.
//
// A real 4-machine deployment is four of these plus compute processes
// (cmd/pprquery or an embedding program) connecting with -peers:
//
//	pprserve -shard shards/shard-0.bin -locator shards/locator.bin -listen :7000
//	pprserve -shard shards/shard-1.bin -locator shards/locator.bin -listen :7001
//	...
//	pprquery -shard shards/shard-0.bin -locator shards/locator.bin \
//	         -peers "1=host1:7001,2=host2:7002,3=host3:7003" -source 42 -topk 10
//
// With replication, each remote shard lists its serving addresses primary
// first ("1=host1:7001|host2:7101"), and served queries fail over to a
// replica when the primary is unreachable (see DESIGN.md §5f).
//
// On SIGTERM/SIGINT the server shuts down gracefully: it stops accepting
// work and waits up to -drain for in-flight requests to finish, so replicas
// taking over mid-stream see completed responses, not torn connections. A
// second signal forces immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/deploy"
	"pprengine/internal/ha"
	"pprengine/internal/rpc"
)

func main() {
	var (
		shardPath    = flag.String("shard", "", "shard file (required)")
		locPath      = flag.String("locator", "", "locator file (required)")
		listen       = flag.String("listen", ":7000", "TCP listen address")
		peersSpec    = flag.String("peers", "", "other shards (\"1=host:port|replica:port,...\"); enables the SSPPR query service for this shard's vertices")
		dialTimeout  = flag.Duration("dial-timeout", deploy.DefaultDialTimeout, "per-peer connect deadline for the query service")
		queryTimeout = flag.Duration("query-timeout", 0, "default per-query deadline for served SSPPR queries (0 = none; a client-propagated deadline overrides it)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "byte budget for the dynamic remote neighbor-row cache used by served queries (0 = disabled)")
		aggWindow    = flag.Duration("agg-window", 0, "flush window for cross-query RPC fetch aggregation of served queries (0 = disabled unless -agg-rows is set)")
		aggRows      = flag.Int("agg-rows", 0, "row cap per aggregated request; setting it also enables aggregation (0 = disabled unless -agg-window is set)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline: how long to wait for in-flight requests after SIGTERM/SIGINT")
		replicas     = flag.Int("replicas", 0, "expected serving addresses per remote shard in -peers (0 = accept whatever is listed)")
		probeIvl     = flag.Duration("probe-interval", 0, "health-ping interval per peer when -peers lists replicas (0 = default 500ms)")
		breakerThr   = flag.Int("breaker-threshold", 0, "consecutive probe/request failures that open a peer's circuit breaker (0 = default)")
	)
	flag.Parse()
	if *shardPath == "" || *locPath == "" {
		fmt.Fprintln(os.Stderr, "pprserve: -shard and -locator are required")
		os.Exit(2)
	}
	srv, addr, err := deploy.Serve(*shardPath, *locPath, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprserve:", err)
		os.Exit(1)
	}
	fmt.Printf("pprserve: shard %d (%d core nodes) serving on %s\n",
		srv.Shard.ShardID, srv.Shard.NumCore(), addr)
	if *peersSpec != "" {
		peers, err := deploy.ParseReplicaPeers(*peersSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprserve:", err)
			os.Exit(2)
		}
		if err := deploy.ValidateReplicas(peers, *replicas); err != nil {
			fmt.Fprintln(os.Stderr, "pprserve:", err)
			os.Exit(2)
		}
		cfg := core.DefaultConfig()
		cfg.QueryTimeout = *queryTimeout
		cfg.CacheBytes = *cacheBytes
		cfg.AggWindow = *aggWindow
		cfg.AggRows = *aggRows
		ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
		var cleanup func()
		if deploy.Replicated(peers) {
			haOpts := ha.Options{ProbeInterval: *probeIvl, BreakerThreshold: *breakerThr}
			cleanup, err = deploy.EnableQueriesHA(ctx, srv, peers, cfg, haOpts, rpc.LatencyModel{})
		} else {
			cleanup, err = deploy.EnableQueries(ctx, srv, deploy.PrimaryPeers(peers), cfg, rpc.LatencyModel{})
		}
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprserve:", err)
			os.Exit(1)
		}
		defer cleanup()
		fmt.Printf("pprserve: query service enabled (peers %s)\n", deploy.FormatReplicaPeers(peers))
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("pprserve: shutting down (draining up to %v; signal again to force)\n", *drain)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprserve: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("pprserve: drained, bye")
	case <-sig:
		fmt.Fprintln(os.Stderr, "pprserve: forced exit")
		srv.Close()
		os.Exit(1)
	}
}
