// Command pprserve runs one machine's Graph Storage server: it loads a
// shard file (from cmd/partition) and its locator, binds a TCP address, and
// answers neighbor-info / sampling / feature requests until interrupted.
//
// A real 4-machine deployment is four of these plus compute processes
// (cmd/pprquery or an embedding program) connecting with -peers:
//
//	pprserve -shard shards/shard-0.bin -locator shards/locator.bin -listen :7000
//	pprserve -shard shards/shard-1.bin -locator shards/locator.bin -listen :7001
//	...
//	pprquery -shard shards/shard-0.bin -locator shards/locator.bin \
//	         -peers "1=host1:7001,2=host2:7002,3=host3:7003" -source 42 -topk 10
//
// With replication, each remote shard lists its serving addresses primary
// first ("1=host1:7001|host2:7101"), and served queries fail over to a
// replica when the primary is unreachable (see DESIGN.md §5f).
//
// With -admin-addr the process also serves an operator HTTP endpoint:
// Prometheus metrics on /metrics, liveness on /healthz, readiness on /readyz
// (not-ready while bootstrapping, while draining, and — in replicated mode —
// while some remote shard has every breaker open), recent slow traces on
// /debug/traces, and the standard pprof handlers. -trace-sample turns on
// head-based query tracing; sampled trace contexts ride the wire protocol, so
// this server also records spans for traces started by its clients.
//
// With -admit-max-inflight the served queries pass through an admission
// controller (DESIGN.md §5k): per-tenant token buckets, a bounded priority
// wait queue, and deadline-aware load shedding. /readyz reports 503 while the
// queue is saturated, and /debug/admit dumps the controller snapshot
// (per-tenant bucket levels, queue depth, shed counters) as JSON. With
// replicated -peers, -hedge additionally duplicates slow remote fetches to a
// healthy replica.
//
// With -mutable the shard accepts streaming graph mutations through a
// delta-CSR store (DESIGN.md §5l); the one process also passing -coordinator
// assigns mutation epochs and mirrors batches to every peer, and exposes
// POST /mutate (the `pprquery -mutate` line format in the body) plus
// /debug/epochs on its admin server.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it flips /readyz
// not-ready (so load balancers stop routing to it), stops accepting work, and
// waits up to -drain for in-flight requests to finish, so replicas taking
// over mid-stream see completed responses, not torn connections. A second
// signal forces immediate exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/deploy"
	"pprengine/internal/gnn"
	"pprengine/internal/ha"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
)

func main() {
	var (
		shardPath    = flag.String("shard", "", "shard file (required)")
		locPath      = flag.String("locator", "", "locator file (required)")
		listen       = flag.String("listen", ":7000", "TCP listen address")
		peersSpec    = flag.String("peers", "", "other shards (\"1=host:port|replica:port,...\"); enables the SSPPR query service for this shard's vertices")
		dialTimeout  = flag.Duration("dial-timeout", deploy.DefaultDialTimeout, "per-peer connect deadline for the query service")
		queryTimeout = flag.Duration("query-timeout", 0, "default per-query deadline for served SSPPR queries (0 = none; a client-propagated deadline overrides it)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "byte budget for the dynamic remote neighbor-row cache used by served queries (0 = disabled)")
		aggWindow    = flag.Duration("agg-window", 0, "flush window for cross-query RPC fetch aggregation of served queries (0 = disabled unless -agg-rows is set)")
		aggRows      = flag.Int("agg-rows", 0, "row cap per aggregated request; setting it also enables aggregation (0 = disabled unless -agg-window is set)")
		zeroCopy     = flag.Bool("zerocopy", true, "serve queries over the zero-copy fetch path: pooled RPC buffers, view decoders, single decode per remote row (false = copy-decode every response)")
		affinity     = flag.Bool("affinity", false, "run served queries' pop/push compute on the shard-affinity worker pool: long-lived workers owning fixed pmap stripes over flat probe tables (DESIGN.md §5j)")
		featureDim   = flag.Int("feature-dim", 0, "synthesize a per-vertex feature block of this dimension and serve MethodFetchFeatures plus the /infer endpoint (0 = no feature tier)")
		numClasses   = flag.Int("num-classes", 4, "label/logit classes for the feature tier")
		hidden       = flag.Int("hidden", 32, "GraphSAGE hidden width for /infer")
		topK         = flag.Int("topk", 128, "top-K subgraph size per inference")
		modelSeed    = flag.Int64("model-seed", 1, "seed for the synthetic features and model weights (must match across machines)")
		featCacheB   = flag.Int64("feat-cache-bytes", 0, "byte budget for the remote feature-row cache used by inference (0 = disabled)")
		featAdmit    = flag.Float64("feat-admit-mass", 0, "minimum PPR mass for a fetched feature row to be cached (0 = admit all)")
		admitInFl    = flag.Int("admit-max-inflight", 0, "max concurrently executing served queries; enables the admission controller (0 = no admission control)")
		admitQueue   = flag.Int("admit-queue", 0, "queries allowed to wait for a slot beyond -admit-max-inflight; beyond that they are shed")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant token-bucket refill rate, queries/sec (0 = no per-tenant quotas)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant token-bucket capacity (0 = rate)")
		hedge        = flag.Bool("hedge", false, "hedge slow remote fetches to a healthy replica (needs replicated -peers)")
		hedgeDelay   = flag.Duration("hedge-delay", 0, "fixed hedge delay (0 = adapt to the observed per-shard p95)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline: how long to wait for in-flight requests after SIGTERM/SIGINT")
		replicas     = flag.Int("replicas", 0, "expected serving addresses per remote shard in -peers (0 = accept whatever is listed)")
		probeIvl     = flag.Duration("probe-interval", 0, "health-ping interval per peer when -peers lists replicas (0 = default 500ms)")
		breakerThr   = flag.Int("breaker-threshold", 0, "consecutive probe/request failures that open a peer's circuit breaker (0 = default)")
		mutable      = flag.Bool("mutable", false, "accept streaming graph mutations: this shard gains a delta-CSR store, served queries pin a mutation epoch at admission (DESIGN.md §5l)")
		coordinator  = flag.Bool("coordinator", false, "be the deployment's mutation coordinator: resolve client mutations, assign epochs, mirror batches to every peer; exactly one process per deployment, needs -mutable and -peers; enables POST /mutate on the admin server")
		compactIvl   = flag.Duration("compact-interval", 0, "background delta-compaction period (0 = compact only on -max-epochs overflow)")
		maxEpochs    = flag.Int("max-epochs", 0, "live (uncompacted) mutation epochs allowed before a forced compaction (0 = unbounded)")
		adminAddr    = flag.String("admin-addr", "", "admin HTTP address for /metrics, /healthz, /readyz, /debug/traces, /debug/pprof (empty = disabled)")
		traceSample  = flag.Float64("trace-sample", 0, "fraction of locally-started queries to trace (0 = off; remote-initiated traces are always honored)")
		traceBuf     = flag.Int("trace-buf", 0, "span ring-buffer capacity (0 = default)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprserve:", err)
		os.Exit(2)
	}
	if *shardPath == "" || *locPath == "" {
		logger.Error("missing required flags", "flags", "-shard, -locator")
		os.Exit(2)
	}
	srv, addr, err := deploy.Serve(*shardPath, *locPath, *listen)
	if err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// The sampling handler has no per-request knob; its zero-copy gate
	// follows the same -zerocopy flag as the fetch path.
	srv.SetSampleZeroCopy(*zeroCopy)
	// The tracer is attached before the query service starts so the server's
	// rpc spans and served queries' driver spans share one ring buffer. Even
	// at -trace-sample 0 it records spans for traces sampled by clients.
	tracer := obs.NewTracer(srv.Shard.ShardID, *traceSample, *traceBuf)
	srv.AttachTracer(tracer)
	logger.Info("serving shard",
		"shard", srv.Shard.ShardID, "core_nodes", srv.Shard.NumCore(), "addr", addr)

	// Feature tier: synthesize this shard's feature block deterministically
	// from (model-seed, shard ID) — every machine running the same flags
	// derives consistent features, and replicas of a shard serve bitwise-
	// identical rows. Real deployments would load the block from disk here.
	var feats []float32
	if *featureDim > 0 {
		feats = gnn.MakeFeatures(srv.Shard, *featureDim, *numClasses, *modelSeed+int64(srv.Shard.ShardID))
		if err := srv.AttachFeatures(*featureDim, feats); err != nil {
			logger.Error("feature attach failed", "err", err)
			os.Exit(1)
		}
		logger.Info("feature tier enabled", "dim", *featureDim, "classes", *numClasses)
	}

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(nil)
		reg := admin.Registry()
		obs.RegisterEngineMetrics(reg)
		obs.RegisterPhaseMetrics(reg, srv.QueryPhases())
		obs.RegisterGoMetrics(reg)
		srv.QueryLatency = reg.Histogram("ppr_query_seconds",
			"Wall time of served SSPPR queries.", nil, obs.DefBuckets)
		reg.CounterFunc("ppr_queries_served_total",
			"SSPPR queries answered by this server (failures included).", nil,
			func() float64 { served, _ := srv.QueryCounts(); return float64(served) })
		reg.CounterFunc("ppr_query_failures_total",
			"Served SSPPR queries that returned an error.", nil,
			func() float64 { _, failed := srv.QueryCounts(); return float64(failed) })
		admin.AttachTracer(tracer)
		bound, err := admin.ListenAndServe(*adminAddr)
		if err != nil {
			logger.Error("admin server failed", "err", err)
			os.Exit(1)
		}
		logger.Info("admin server up", "addr", bound)
	}

	// Hoisted out of the query-service block so the mutation tier below can
	// wire the compute handle (epoch pinning) and the coordinator's peers.
	var compute *core.DistGraphStorage
	var primaryPeers map[int32]string
	if *peersSpec != "" {
		peers, err := deploy.ParseReplicaPeers(*peersSpec)
		if err != nil {
			logger.Error("bad -peers", "err", err)
			os.Exit(2)
		}
		if err := deploy.ValidateReplicas(peers, *replicas); err != nil {
			logger.Error("replica validation failed", "err", err)
			os.Exit(2)
		}
		cfg := core.DefaultConfig()
		cfg.QueryTimeout = *queryTimeout
		cfg.CacheBytes = *cacheBytes
		cfg.AggWindow = *aggWindow
		cfg.AggRows = *aggRows
		cfg.ZeroCopy = *zeroCopy
		cfg.Affinity = *affinity
		cfg.FeatCacheBytes = *featCacheB
		cfg.FeatAdmitMass = *featAdmit
		cfg.AdmitMaxInFlight = *admitInFl
		cfg.AdmitMaxQueue = *admitQueue
		cfg.AdmitTenantRate = *tenantRate
		cfg.AdmitTenantBurst = *tenantBurst
		cfg.Hedge = *hedge
		cfg.HedgeDelay = *hedgeDelay
		primaryPeers = deploy.PrimaryPeers(peers)
		ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
		var cleanup func()
		if deploy.Replicated(peers) {
			haOpts := ha.Options{ProbeInterval: *probeIvl, BreakerThreshold: *breakerThr}
			var router *ha.ReplicaRouter
			compute, router, cleanup, err = deploy.EnableQueriesHA(ctx, srv, peers, cfg, haOpts, rpc.LatencyModel{})
			if err == nil && admin != nil {
				// A remote shard with every serving copy's breaker open means
				// queries touching it will fail: report not-ready so traffic
				// shifts to an owner that can still reach the whole graph.
				admin.AddCheck("breakers", router.ReadyCheck)
			}
		} else {
			compute, cleanup, err = deploy.EnableQueries(ctx, srv, deploy.PrimaryPeers(peers), cfg, rpc.LatencyModel{})
		}
		cancel()
		if err != nil {
			logger.Error("query service failed", "err", err)
			os.Exit(1)
		}
		defer cleanup()
		compute.SetSampleZeroCopy(*zeroCopy)
		logger.Info("query service enabled", "peers", deploy.FormatReplicaPeers(peers))
		if compute.Hedger != nil {
			logger.Info("hedged fetches enabled", "delay", *hedgeDelay)
		}
		if ctrl := compute.Admit; ctrl != nil {
			logger.Info("admission control enabled",
				"max_inflight", *admitInFl, "queue", *admitQueue,
				"tenant_rate", *tenantRate, "tenant_burst", *tenantBurst)
			if admin != nil {
				// Saturated queue → /readyz 503: load balancers route new
				// queries to owners with headroom instead of feeding the shed.
				admin.AddCheck("admission", ctrl.ReadyCheck)
				admin.Handle("/debug/admit", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set("Content-Type", "application/json")
					json.NewEncoder(w).Encode(ctrl.Snapshot())
				}))
				// Per-tenant latency histograms, materialized lazily on each
				// tenant's first completed query.
				reg := admin.Registry()
				var histMu sync.Mutex
				hists := map[string]*obs.Histogram{}
				ctrl.SetLatencyHook(func(tenant string, secs float64) {
					histMu.Lock()
					h := hists[tenant]
					if h == nil {
						h = reg.Histogram("ppr_tenant_query_seconds",
							"Wall time of admitted SSPPR queries by tenant.",
							obs.Labels{"tenant": tenant}, obs.DefBuckets)
						hists[tenant] = h
					}
					histMu.Unlock()
					h.Observe(secs)
				})
			}
		}

		if *featureDim > 0 {
			// End-to-end serving (§4.5): SSPPR → top-K subgraph + feature
			// slice → GraphSAGE forward. The model is derived from the shared
			// seed, so every owner serves the same network.
			compute.AttachLocalFeatures(*featureDim, feats)
			svc := &gnn.InferService{
				G:          compute,
				Model:      gnn.NewSAGE(*featureDim, *hidden, *numClasses, *modelSeed),
				TopK:       *topK,
				NumClasses: *numClasses,
				PPR:        cfg,
			}
			if admin != nil {
				svc.Latency = admin.Registry().Histogram("ppr_infer_seconds",
					"End-to-end wall time of served GNN inferences.", nil, obs.DefBuckets)
				admin.Handle("/infer", svc.Handler())
				logger.Info("inference endpoint enabled", "path", "/infer", "topk", *topK)
			}
		}
	}
	if *mutable {
		mctx, mcancel := context.WithTimeout(context.Background(), *dialTimeout)
		store, coord, mcleanup, err := deploy.EnableMutations(mctx, srv, compute, primaryPeers,
			deploy.MutateOptions{
				Coordinator:     *coordinator,
				CompactInterval: *compactIvl,
				MaxEpochs:       *maxEpochs,
			}, rpc.LatencyModel{})
		mcancel()
		if err != nil {
			logger.Error("mutation tier failed", "err", err)
			os.Exit(1)
		}
		defer mcleanup()
		logger.Info("mutation tier enabled",
			"coordinator", *coordinator, "compact_interval", *compactIvl, "max_epochs", *maxEpochs)
		if admin != nil {
			// Epoch/compaction observability: the store snapshot as JSON.
			admin.Handle("/debug/epochs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(store.Stats())
			}))
			if coord != nil {
				// POST /mutate: the line format of `pprquery -mutate` in the
				// request body; responds with the epoch the batch landed at.
				admin.Handle("/mutate", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if r.Method != http.MethodPost {
						http.Error(w, "POST only", http.StatusMethodNotAllowed)
						return
					}
					muts, err := delta.ParseMutations(r.Body)
					if err != nil {
						http.Error(w, err.Error(), http.StatusBadRequest)
						return
					}
					epoch, err := coord.Apply(r.Context(), muts)
					if err != nil {
						http.Error(w, err.Error(), http.StatusUnprocessableEntity)
						return
					}
					w.Header().Set("Content-Type", "application/json")
					json.NewEncoder(w).Encode(map[string]any{
						"epoch":     epoch,
						"mutations": len(muts),
					})
				}))
				logger.Info("mutation endpoint enabled", "path", "/mutate")
			}
		}
	}
	if admin != nil {
		admin.SetReady(true)
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if admin != nil {
		// Flip not-ready first: probes and load balancers route away while
		// in-flight requests drain below.
		admin.SetReady(false)
	}
	logger.Info("shutting down", "drain", *drain, "note", "signal again to force")
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			logger.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		if admin != nil {
			shCtx, shCancel := context.WithTimeout(context.Background(), 2*time.Second)
			admin.Shutdown(shCtx)
			shCancel()
		}
		logger.Info("drained, bye")
	case <-sig:
		logger.Error("forced exit")
		srv.Close()
		os.Exit(1)
	}
}
