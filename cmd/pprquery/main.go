// Command pprquery runs SSPPR queries as a compute process of a real
// deployment: it holds one shard locally (the machine it runs on) and
// reaches every other shard through a pprserve instance.
//
//	pprquery -shard shards/shard-0.bin -locator shards/locator.bin \
//	         -peers "1=127.0.0.1:7001" -source 42 -topk 10
//
// -source is a global node ID; it must belong to the local shard (the
// owner-compute rule: queries run on the machine that owns their source).
// -sources runs a comma-separated batch instead: failures are isolated (the
// remaining queries still run) but the process exits non-zero if any query
// failed, logging which serving machine/shard was at fault when the error is
// peer-attributable.
//
// -trace-sample enables client-side distributed tracing: each sampled
// query's trace context rides the wire, the serving machines record their
// side of the trace, and the per-query log line carries the trace ID to grep
// for on the servers' /debug/traces endpoints.
//
// -mutate applies streaming graph mutations instead of querying: the file's
// add-edge / del-edge / add-vertex lines are validated locally and posted to
// the mutation coordinator named by -mutate-url (the admin /mutate endpoint
// of the pprserve started with -mutable -coordinator).
//
// -tenant/-priority identify the queries to the owner's admission controller
// (pprserve -admit-max-inflight). A batch whose failures are all admission
// sheds exits with code 3 (back off and retry) instead of 1, and the
// controller's retry-after hint is printed per shed query.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/cache"
	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/deploy"
	"pprengine/internal/graph"
	"pprengine/internal/ha"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
)

func main() {
	var (
		shardPath   = flag.String("shard", "", "local shard file (compute mode)")
		locPath     = flag.String("locator", "", "locator file (required)")
		peersSpec   = flag.String("peers", "", "compute mode: remote shards \"1=host:port,...\"; with replication, \"1=primary:port|replica:port,...\"")
		ownersSpec  = flag.String("owners", "", "thin mode: every shard's query service \"0=host:port,1=host:port,...\"; no local shard needed (requires pprserve -peers)")
		source      = flag.Int("source", 0, "global source node ID")
		sourcesCSV  = flag.String("sources", "", "batch mode: comma-separated global source IDs (overrides -source); exits non-zero if any query fails")
		topk        = flag.Int("topk", 10, "print the k best-ranked nodes")
		alpha       = flag.Float64("alpha", 0.462, "teleport probability")
		eps         = flag.Float64("eps", 1e-6, "residual threshold")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none); expired queries exit with context.DeadlineExceeded")
		tenant      = flag.String("tenant", "", "tenant ID for admission control on the owner (empty = the shared untenanted bucket)")
		priority    = flag.Int("priority", 0, "admission priority: higher-priority queries queue ahead and may evict lower-priority waiters")
		dialTimeout = flag.Duration("dial-timeout", deploy.DefaultDialTimeout, "per-peer connect deadline")
		cacheBytes  = flag.Int64("cache-bytes", 0, "compute mode: byte budget for the dynamic remote neighbor-row cache (0 = disabled)")
		aggWindow   = flag.Duration("agg-window", 0, "compute mode: flush window for cross-query RPC fetch aggregation (0 = disabled unless -agg-rows is set)")
		aggRows     = flag.Int("agg-rows", 0, "compute mode: row cap per aggregated request; setting it also enables aggregation")
		zeroCopy    = flag.Bool("zerocopy", true, "fetch over the zero-copy path: pooled RPC buffers, view decoders, single decode per remote row (false = copy-decode every response)")
		affinity    = flag.Bool("affinity", false, "run pop/push compute on the shard-affinity worker pool: long-lived workers owning fixed pmap stripes over flat probe tables (DESIGN.md §5j)")
		replicas    = flag.Int("replicas", 0, "expected serving addresses per remote shard in -peers (0 = accept whatever is listed)")
		probeIvl    = flag.Duration("probe-interval", 0, "health-ping interval per peer when -peers lists replicas (0 = default 500ms)")
		breakerThr  = flag.Int("breaker-threshold", 0, "consecutive probe/request failures that open a peer's circuit breaker (0 = default)")
		mutateFile  = flag.String("mutate", "", "apply streaming graph mutations instead of querying: a file of \"add-edge <src> <dst> <w>\" / \"del-edge <src> <dst>\" / \"add-vertex <id>\" lines (\"-\" = stdin), posted to -mutate-url")
		mutateURL   = flag.String("mutate-url", "", "the mutation coordinator's endpoint, e.g. http://host:9090/mutate (the admin address of the pprserve started with -mutable -coordinator)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of queries to trace end to end (0 = off, 1 = all)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(2)
	}
	if *mutateFile != "" {
		runMutate(logger, *mutateFile, *mutateURL, *timeout)
		return
	}
	if *locPath == "" {
		logger.Error("missing required flag", "flag", "-locator")
		os.Exit(2)
	}
	sources, err := parseSources(*sourcesCSV, *source)
	if err != nil {
		logger.Error("bad -sources", "err", err)
		os.Exit(2)
	}
	if *ownersSpec != "" {
		runThin(logger, *locPath, *ownersSpec, sources, *topk, *alpha, *eps, *timeout, *dialTimeout, *traceSample, *tenant, *priority)
		return
	}
	if *shardPath == "" {
		logger.Error("pass -shard (compute mode) or -owners (thin mode)")
		os.Exit(2)
	}
	peers, err := deploy.ParseReplicaPeers(*peersSpec)
	if err != nil {
		logger.Error("bad -peers", "err", err)
		os.Exit(2)
	}
	if err := deploy.ValidateReplicas(peers, *replicas); err != nil {
		logger.Error("replica validation failed", "err", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Alpha = *alpha
	cfg.Eps = *eps
	cfg.QueryTimeout = *timeout
	cfg.CacheBytes = *cacheBytes
	cfg.AggWindow = *aggWindow
	cfg.AggRows = *aggRows
	cfg.ZeroCopy = *zeroCopy
	cfg.Affinity = *affinity
	cfg.Tenant = *tenant
	cfg.Priority = *priority
	dialCtx, cancelDial := context.WithTimeout(context.Background(), *dialTimeout)
	var st *core.DistGraphStorage
	var cleanup func()
	if deploy.Replicated(peers) {
		haOpts := ha.Options{ProbeInterval: *probeIvl, BreakerThreshold: *breakerThr}
		st, _, cleanup, err = deploy.ConnectHA(dialCtx, *shardPath, *locPath, peers, cfg, haOpts, rpc.LatencyModel{})
	} else {
		st, cleanup, err = deploy.Connect(dialCtx, *shardPath, *locPath, deploy.PrimaryPeers(peers), rpc.LatencyModel{})
		if err == nil {
			if *cacheBytes > 0 {
				st.AttachCache(cache.New(*cacheBytes))
			}
			if cfg.AggEnabled() {
				st.AttachFetchAggregators(cfg.AggOptions())
			}
		}
	}
	cancelDial()
	if err != nil {
		logger.Error("connect failed", "err", err)
		os.Exit(1)
	}
	defer cleanup()
	// The sampling path has no per-query Config; its zero-copy gate follows
	// the same -zerocopy knob as the fetch path.
	st.SetSampleZeroCopy(*zeroCopy)
	if *traceSample > 0 {
		st.AttachTracer(obs.NewTracer(st.ShardID, *traceSample, 0))
	}

	failed, shed := 0, 0
	for _, src := range sources {
		sh, local := st.Locator.Locate(graph.NodeID(src))
		if sh != st.ShardID {
			logger.Error("source not local (owner-compute rule)",
				"source", src, "owner_shard", sh, "local_shard", st.ShardID)
			failed++
			continue
		}
		bd := metrics.NewBreakdown()
		start := time.Now()
		top, stats, err := core.RunSSPPRTopK(context.Background(), st, local, *topk, cfg, bd)
		if err != nil {
			failed++
			if errors.Is(err, admit.ErrShed) {
				shed++
			}
			logQueryError(logger, src, err)
			continue
		}
		logger.Info("query done", queryAttrs(src, time.Since(start), st.Tracer)...)
		fmt.Printf("SSPPR from %d (alpha=%.3f eps=%.0e): %d iterations, %d pushes, %d touched\n",
			src, *alpha, *eps, stats.Iterations, stats.Pushes, stats.TouchedNodes)
		fmt.Printf("rows: local=%d halo=%d remote=%d cachehit=%d coalesced=%d; %s\n",
			stats.LocalRows, stats.HaloRows, stats.RemoteRows, stats.CacheHits, stats.CacheCoalesced, bd)
		for rank, sn := range top {
			fmt.Printf("%3d. node %-8d π = %.6g\n",
				rank+1, st.Locator.Global(sn.Key.Shard, sn.Key.Local), sn.Score)
		}
	}
	exitBatch(logger, len(sources), failed, shed)
}

// parseSources resolves the batch: -sources when given, else the single
// -source.
func parseSources(csv string, single int) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return []int{single}, nil
	}
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad source %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// logQueryError logs one failed query, attributing it to the serving peer at
// fault when the error chain identifies one (see ha.FaultOf). A shed query
// also surfaces the controller's retry-after hint.
func logQueryError(logger *slog.Logger, src int, err error) {
	var se *admit.ShedError
	if errors.As(err, &se) {
		logger.Error("query shed by admission control", "source", src,
			"reason", se.Reason, "queue_depth", se.QueueDepth, "retry_after", se.RetryAfter)
		if se.RetryAfter > 0 {
			fmt.Fprintf(os.Stderr, "query for %d was shed (%s); retry in %v\n", src, se.Reason, se.RetryAfter)
		} else {
			fmt.Fprintf(os.Stderr, "query for %d was shed (%s); retry with a larger -timeout\n", src, se.Reason)
		}
		return
	}
	if fm, fs, ok := ha.FaultOf(err); ok {
		logger.Error("query failed", "source", src, "err", err,
			"fault_machine", fm, "fault_shard", fs)
		return
	}
	logger.Error("query failed", "source", src, "err", err)
}

// queryAttrs builds the per-query log attributes, adding the trace ID of the
// most recent locally-rooted trace when tracing is on — the ID to grep for on
// the serving machines' /debug/traces.
func queryAttrs(src int, dur time.Duration, tr *obs.Tracer) []any {
	attrs := []any{"source", src, "dur", dur}
	if tr == nil {
		return attrs
	}
	spans := tr.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Name == "query" && spans[i].Parent == 0 {
			return append(attrs, "trace", obs.TraceIDString(spans[i].Trace))
		}
	}
	return attrs
}

// exitBatch reports the batch outcome: any failed query exits non-zero.
// Exit code 3 means every failure was an admission shed — the queries were
// rejected early by an overloaded or quota-limited owner, not broken — so
// callers can back off and retry instead of alerting. Any harder failure
// keeps the generic code 1.
func exitBatch(logger *slog.Logger, total, failed, shed int) {
	if failed > 0 {
		logger.Error("batch finished with failures", "queries", total, "failed", failed, "shed", shed)
		if shed == failed {
			os.Exit(3)
		}
		os.Exit(1)
	}
	if total > 1 {
		logger.Info("batch finished", "queries", total)
	}
}

// runMutate parses the line-oriented mutation file and posts it to the
// deployment's mutation coordinator (pprserve -mutable -coordinator), then
// prints the epoch the batch became visible at. Mutation mode needs no
// shard or locator: resolution and epoch assignment happen on the
// coordinator.
func runMutate(logger *slog.Logger, file, url string, timeout time.Duration) {
	if url == "" {
		logger.Error("missing required flag", "flag", "-mutate-url")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			logger.Error("open mutation file failed", "err", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	// Parse locally before sending: a syntax error fails fast here with its
	// line number instead of round-tripping to the coordinator.
	muts, err := delta.ParseMutations(in)
	if err != nil {
		logger.Error("bad mutation file", "file", file, "err", err)
		os.Exit(2)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body := delta.FormatMutations(muts)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		logger.Error("bad -mutate-url", "err", err)
		os.Exit(2)
	}
	req.Header.Set("Content-Type", "text/plain")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		logger.Error("mutation post failed", "err", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		logger.Error("coordinator rejected mutations",
			"status", resp.StatusCode, "body", strings.TrimSpace(string(msg)))
		os.Exit(1)
	}
	var ack struct {
		Epoch     uint64 `json:"epoch"`
		Mutations int    `json:"mutations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		logger.Error("bad coordinator response", "err", err)
		os.Exit(1)
	}
	logger.Info("mutations applied", "count", ack.Mutations, "epoch", ack.Epoch, "dur", time.Since(start))
	fmt.Printf("applied %d mutations; graph now at epoch %d\n", ack.Mutations, ack.Epoch)
}

// runThin dispatches queries to their owners' query services (owner-compute
// over RPC) instead of computing locally.
func runThin(logger *slog.Logger, locPath, ownersSpec string, sources []int, topk int, alpha, eps float64, timeout, dialTimeout time.Duration, traceSample float64, tenant string, priority int) {
	owners, err := deploy.ParsePeers(ownersSpec)
	if err != nil {
		logger.Error("bad -owners", "err", err)
		os.Exit(2)
	}
	dialCtx, cancelDial := context.WithTimeout(context.Background(), dialTimeout)
	qc, cleanup, err := deploy.ConnectThin(dialCtx, locPath, owners, rpc.LatencyModel{})
	cancelDial()
	if err != nil {
		logger.Error("connect failed", "err", err)
		os.Exit(1)
	}
	defer cleanup()
	qc.Tenant = tenant
	qc.Priority = priority
	// The thin client is the trace head: a sampled dispatch's context rides
	// the query request, and the owner's whole distributed execution joins
	// the trace. Machine -1 marks spans recorded outside the cluster.
	var tracer *obs.Tracer
	if traceSample > 0 {
		tracer = obs.NewTracer(-1, traceSample, 0)
	}
	failed, shed := 0, 0
	for _, src := range sources {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		span := tracer.StartTrace("dispatch")
		ctx = obs.ContextWith(ctx, span.Context())
		sc := span.Context()
		start := time.Now()
		resp, err := qc.Query(ctx, graph.NodeID(src), topk, alpha, eps)
		span.SetErr(err != nil)
		span.End()
		if err != nil {
			failed++
			if errors.Is(err, admit.ErrShed) {
				shed++
			}
			logQueryError(logger, src, err)
			continue
		}
		attrs := []any{"source", src, "dur", time.Since(start)}
		if sc.Valid() {
			attrs = append(attrs, "trace", obs.TraceIDString(sc.TraceID))
		}
		logger.Info("query done", attrs...)
		fmt.Printf("SSPPR from %d (remote, alpha=%.3f eps=%.0e): %d iterations, %d pushes, %d touched\n",
			src, alpha, eps, resp.Iterations, resp.Pushes, resp.Touched)
		for i := range resp.Globals {
			fmt.Printf("%3d. node %-8d π = %.6g\n", i+1, resp.Globals[i], resp.Scores[i])
		}
	}
	exitBatch(logger, len(sources), failed, shed)
}
