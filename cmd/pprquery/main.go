// Command pprquery runs SSPPR queries as a compute process of a real
// deployment: it holds one shard locally (the machine it runs on) and
// reaches every other shard through a pprserve instance.
//
//	pprquery -shard shards/shard-0.bin -locator shards/locator.bin \
//	         -peers "1=127.0.0.1:7001" -source 42 -topk 10
//
// -source is a global node ID; it must belong to the local shard (the
// owner-compute rule: queries run on the machine that owns their source).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pprengine/internal/cache"
	"pprengine/internal/core"
	"pprengine/internal/deploy"
	"pprengine/internal/graph"
	"pprengine/internal/ha"
	"pprengine/internal/metrics"
	"pprengine/internal/rpc"
)

func main() {
	var (
		shardPath   = flag.String("shard", "", "local shard file (compute mode)")
		locPath     = flag.String("locator", "", "locator file (required)")
		peersSpec   = flag.String("peers", "", "compute mode: remote shards \"1=host:port,...\"; with replication, \"1=primary:port|replica:port,...\"")
		ownersSpec  = flag.String("owners", "", "thin mode: every shard's query service \"0=host:port,1=host:port,...\"; no local shard needed (requires pprserve -peers)")
		source      = flag.Int("source", 0, "global source node ID")
		topk        = flag.Int("topk", 10, "print the k best-ranked nodes")
		alpha       = flag.Float64("alpha", 0.462, "teleport probability")
		eps         = flag.Float64("eps", 1e-6, "residual threshold")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none); expired queries exit with context.DeadlineExceeded")
		dialTimeout = flag.Duration("dial-timeout", deploy.DefaultDialTimeout, "per-peer connect deadline")
		cacheBytes  = flag.Int64("cache-bytes", 0, "compute mode: byte budget for the dynamic remote neighbor-row cache (0 = disabled)")
		aggWindow   = flag.Duration("agg-window", 0, "compute mode: flush window for cross-query RPC fetch aggregation (0 = disabled unless -agg-rows is set)")
		aggRows     = flag.Int("agg-rows", 0, "compute mode: row cap per aggregated request; setting it also enables aggregation")
		replicas    = flag.Int("replicas", 0, "expected serving addresses per remote shard in -peers (0 = accept whatever is listed)")
		probeIvl    = flag.Duration("probe-interval", 0, "health-ping interval per peer when -peers lists replicas (0 = default 500ms)")
		breakerThr  = flag.Int("breaker-threshold", 0, "consecutive probe/request failures that open a peer's circuit breaker (0 = default)")
	)
	flag.Parse()
	if *locPath == "" {
		fmt.Fprintln(os.Stderr, "pprquery: -locator is required")
		os.Exit(2)
	}
	if *ownersSpec != "" {
		runThin(*locPath, *ownersSpec, *source, *topk, *alpha, *eps, *timeout, *dialTimeout)
		return
	}
	if *shardPath == "" {
		fmt.Fprintln(os.Stderr, "pprquery: pass -shard (compute mode) or -owners (thin mode)")
		os.Exit(2)
	}
	peers, err := deploy.ParseReplicaPeers(*peersSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(2)
	}
	if err := deploy.ValidateReplicas(peers, *replicas); err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Alpha = *alpha
	cfg.Eps = *eps
	cfg.QueryTimeout = *timeout
	cfg.CacheBytes = *cacheBytes
	cfg.AggWindow = *aggWindow
	cfg.AggRows = *aggRows
	dialCtx, cancelDial := context.WithTimeout(context.Background(), *dialTimeout)
	var st *core.DistGraphStorage
	var cleanup func()
	if deploy.Replicated(peers) {
		haOpts := ha.Options{ProbeInterval: *probeIvl, BreakerThreshold: *breakerThr}
		st, _, cleanup, err = deploy.ConnectHA(dialCtx, *shardPath, *locPath, peers, cfg, haOpts, rpc.LatencyModel{})
	} else {
		st, cleanup, err = deploy.Connect(dialCtx, *shardPath, *locPath, deploy.PrimaryPeers(peers), rpc.LatencyModel{})
		if err == nil {
			if *cacheBytes > 0 {
				st.AttachCache(cache.New(*cacheBytes))
			}
			if cfg.AggEnabled() {
				st.AttachFetchAggregators(cfg.AggOptions())
			}
		}
	}
	cancelDial()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(1)
	}
	defer cleanup()

	sh, local := st.Locator.Locate(graph.NodeID(*source))
	if sh != st.ShardID {
		fmt.Fprintf(os.Stderr, "pprquery: source %d lives on shard %d, not the local shard %d (owner-compute rule)\n",
			*source, sh, st.ShardID)
		os.Exit(1)
	}
	bd := metrics.NewBreakdown()
	top, stats, err := core.RunSSPPRTopK(context.Background(), st, local, *topk, cfg, bd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(1)
	}
	fmt.Printf("SSPPR from %d (alpha=%.3f eps=%.0e): %d iterations, %d pushes, %d touched\n",
		*source, *alpha, *eps, stats.Iterations, stats.Pushes, stats.TouchedNodes)
	fmt.Printf("rows: local=%d halo=%d remote=%d cachehit=%d coalesced=%d; %s\n",
		stats.LocalRows, stats.HaloRows, stats.RemoteRows, stats.CacheHits, stats.CacheCoalesced, bd)
	for rank, sn := range top {
		fmt.Printf("%3d. node %-8d π = %.6g\n",
			rank+1, st.Locator.Global(sn.Key.Shard, sn.Key.Local), sn.Score)
	}
}

// runThin dispatches the query to its owner's query service (owner-compute
// over RPC) instead of computing locally.
func runThin(locPath, ownersSpec string, source, topk int, alpha, eps float64, timeout, dialTimeout time.Duration) {
	owners, err := deploy.ParsePeers(ownersSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(2)
	}
	dialCtx, cancelDial := context.WithTimeout(context.Background(), dialTimeout)
	qc, cleanup, err := deploy.ConnectThin(dialCtx, locPath, owners, rpc.LatencyModel{})
	cancelDial()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(1)
	}
	defer cleanup()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := qc.Query(ctx, graph.NodeID(source), topk, alpha, eps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pprquery:", err)
		os.Exit(1)
	}
	fmt.Printf("SSPPR from %d (remote, alpha=%.3f eps=%.0e): %d iterations, %d pushes, %d touched\n",
		source, alpha, eps, resp.Iterations, resp.Pushes, resp.Touched)
	for i := range resp.Globals {
		fmt.Printf("%3d. node %-8d π = %.6g\n", i+1, resp.Globals[i], resp.Scores[i])
	}
}
