// Command partition splits a graph file into per-machine shard files, the
// preprocessing step of §3.2 (partition with min-cut, attach halo-node
// tuples, convert to the Graph Shard CSR layout).
//
// Usage:
//
//	partition -in twitter.gph -k 4 -outdir shards/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file (binary from gengraph, or .txt edge list)")
		k        = flag.Int("k", 4, "number of shards / machines")
		outdir   = flag.String("outdir", ".", "output directory for shard files")
		algo     = flag.String("algo", "mincut", "partitioner: mincut|hash|ldg")
		seed     = flag.Int64("seed", 42, "partitioner seed")
		haloRows = flag.Bool("halo-rows", false, "cache halo-node rows in each shard (more memory, less RPC)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "partition: -in is required")
		os.Exit(2)
	}
	var g *graph.Graph
	var err error
	if strings.HasSuffix(*in, ".txt") {
		// SNAP-style text edge list; original IDs are densified.
		g, _, err = graph.LoadEdgeListFile(*in)
	} else {
		g, err = graph.LoadFile(*in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	var a partition.Assignment
	switch *algo {
	case "mincut":
		a, err = partition.Partition(g, *k, partition.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "partition:", err)
			os.Exit(1)
		}
	case "hash":
		a = partition.HashPartition(g.NumNodes, *k)
	case "ldg":
		a = partition.LDGPartition(g, *k, 0.05)
	default:
		fmt.Fprintf(os.Stderr, "partition: unknown -algo %q\n", *algo)
		os.Exit(2)
	}
	q := partition.Evaluate(g, a)
	fmt.Printf("partitioned |V|=%d into k=%d: edge cut %d (%.1f%% of edges), balance %.3f\n",
		g.NumNodes, *k, q.EdgeCut, q.CutRatio*100, q.Balance)
	shards, loc, err := shard.BuildWithOptions(g, a, *k, shard.BuildOptions{CacheHaloRows: *haloRows})
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	locPath := filepath.Join(*outdir, "locator.bin")
	if err := loc.SaveFile(locPath); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	fmt.Printf("  %s\n", locPath)
	for i, s := range shards {
		path := filepath.Join(*outdir, fmt.Sprintf("shard-%d.bin", i))
		if err := s.SaveFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "partition:", err)
			os.Exit(1)
		}
		st := shard.ComputeStats(s)
		fmt.Printf("  %s: core=%d entries=%d halo=%d remote=%.1f%% (%.1f MB)\n",
			path, st.NumCore, st.NumEntries, st.HaloNodes, st.RemoteFrac*100,
			float64(st.MemoryBytes)/(1<<20))
	}
}
