// Quickstart: build a small weighted graph, deploy it over a simulated
// 2-machine cluster, run one distributed SSPPR query with the engine, and
// print the top-10 nodes — the minimal end-to-end path through the public
// API.
package main

import (
	"context"
	"fmt"
	"log"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/ppr"
)

func main() {
	// 1. Build a graph: a 2,000-node power-law graph with random weights,
	//    symmetrized (what the paper does to all datasets).
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 2000, NumEdges: 12000,
		A: 0.57, B: 0.19, C: 0.19, Noise: 0.05, Seed: 7,
	}))
	fmt.Printf("graph: %d nodes, %d directed edges\n", g.NumNodes, g.NumEdges())

	// 2. Deploy it across two simulated machines: min-cut partitioning,
	//    Graph Shard construction, one storage server per machine, RPC
	//    clients wired for each compute process.
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("deployed: edge cut %.1f%%, balance %.2f\n",
		c.Quality.CutRatio*100, c.Quality.Balance)

	// 3. Run one SSPPR query. The owner-compute rule assigns the query to
	//    the machine hosting the source; here we pick machine 0's local
	//    vertex 0 and run on its first compute process.
	st := c.Storages[0][0]
	cfg := core.DefaultConfig() // alpha=0.462, eps=1e-6, batched+compressed+overlapped
	m, stats, err := core.RunSSPPR(context.Background(), st, 0, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	source := st.Locator.Global(0, 0)
	fmt.Printf("query from global node %d: %d iterations, %d pushes, %d touched nodes (%.1f%% rows fetched remotely)\n",
		source, stats.Iterations, stats.Pushes, stats.TouchedNodes,
		100*float64(stats.RemoteRows)/float64(stats.RemoteRows+stats.LocalRows))

	// 4. Read out the top-10 PPR scores (converted to global node IDs).
	scores := core.ScoresGlobal(st, m)
	asMap := make(map[graph.NodeID]float64, len(scores))
	for k, v := range scores {
		asMap[graph.NodeID(k)] = v
	}
	fmt.Println("top-10 personalized PageRank:")
	for rank, v := range ppr.TopKOfMap(asMap, 10) {
		fmt.Printf("  %2d. node %-6d π = %.6f\n", rank+1, v, asMap[v])
	}
}
