// Mini-batch construction strategies side by side: the two ways GNN
// pipelines build a computation graph for an ego vertex over the same
// distributed storage —
//
//   - k-hop fanout sampling (GraphSAGE-style BFS, server-side sampling), and
//   - top-K Personalized PageRank (ShaDow-style, the engine's specialty).
//
// PPR selects multi-hop important vertices that fixed fanouts miss, which
// is why PPR-based samplers win on accuracy in the papers the engine
// serves.
package main

import (
	"context"
	"fmt"
	"log"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
)

func main() {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 3000, NumEdges: 24000,
		A: 0.55, B: 0.2, C: 0.15, Noise: 0.05, Seed: 13,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	st := c.Storages[0][0]
	ego := int32(5)
	egoGlobal := st.Locator.Global(0, ego)
	fmt.Printf("building mini-batches for ego vertex %d (degree %d)\n",
		egoGlobal, g.Degree(egoGlobal))

	// Strategy 1: 2-hop fanout sampling, 8 then 4 neighbors.
	khop, err := core.RunKHopSample(context.Background(), st, []int32{ego}, []int{8, 4}, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	hopCount := map[int32]int{}
	for _, h := range khop.HopOf {
		hopCount[h]++
	}
	fmt.Printf("k-hop sample:   %d vertices (%d at hop 1, %d at hop 2), %d edges\n",
		len(khop.Nodes), hopCount[1], hopCount[2], len(khop.EdgeSrc))

	// Strategy 2: top-32 Personalized PageRank.
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5
	top, stats, err := core.RunSSPPRTopK(context.Background(), st, ego, 32, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-32 PPR:     %d pushes over %d iterations touched %d vertices\n",
		stats.Pushes, stats.Iterations, stats.TouchedNodes)

	// How do the two selections relate? Count PPR picks beyond 2 hops of
	// the ego — the vertices fanout sampling cannot reach.
	inKHop := map[int32]bool{}
	for _, v := range khop.Nodes {
		inKHop[v] = true
	}
	within, beyond := 0, 0
	for _, sn := range top {
		gv := int32(st.Locator.Global(sn.Key.Shard, sn.Key.Local))
		if inKHop[gv] {
			within++
		} else {
			beyond++
		}
	}
	fmt.Printf("overlap:        %d of PPR's top-32 appear in the k-hop sample; %d are outside it\n",
		within, beyond)
	fmt.Println("top-8 PPR vertices:")
	for i, sn := range top[:8] {
		gv := st.Locator.Global(sn.Key.Shard, sn.Key.Local)
		marker := " "
		if !inKHop[int32(gv)] {
			marker = "*" // not reachable by the 2-hop fanout sample
		}
		fmt.Printf("  %d. node %-6d π=%.5f %s\n", i+1, gv, sn.Score, marker)
	}
	fmt.Println("(* = outside the k-hop sample)")
}
