// RPC optimization ladder (paper Table 3): run the same SSPPR workload
// under Single → +Batch → +Compress → +Overlap and watch each optimization
// carve time off the local fetch / remote fetch / push breakdown.
package main

import (
	"context"
	"fmt"
	"log"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/metrics"
)

func main() {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 8000, NumEdges: 64000,
		A: 0.45, B: 0.25, C: 0.25, Noise: 0.05, Seed: 5,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	qs := c.EvenQuerySet(4, 17)
	ladder := []struct {
		name    string
		mode    core.FetchMode
		overlap bool
	}{
		{"Single", core.FetchSingle, false},
		{"+Batch", core.FetchBatch, false},
		{"+Compress", core.FetchBatchCompress, false},
		{"+Overlap", core.FetchBatchCompress, true},
	}
	fmt.Printf("%-10s %12s %12s %10s %10s %9s\n",
		"Variant", "LocalFetch", "RemoteFetch", "Push", "Total", "Speedup")
	var baseline float64
	for _, rung := range ladder {
		cfg := core.DefaultConfig()
		cfg.Mode = rung.mode
		cfg.Overlap = rung.overlap
		// Warm once, then measure.
		if _, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap); err != nil {
			log.Fatal(err)
		}
		res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		if err != nil {
			log.Fatal(err)
		}
		total := res.Wall.Seconds()
		if rung.name == "Single" {
			baseline = total
		}
		fmt.Printf("%-10s %11.3fs %11.3fs %9.3fs %9.3fs %8.1fx\n",
			rung.name,
			res.Breakdown.Get(metrics.PhaseLocalFetch).Seconds(),
			res.Breakdown.Get(metrics.PhaseRemoteFetch).Seconds(),
			res.Breakdown.Get(metrics.PhasePush).Seconds(),
			total, baseline/total)
	}
}
