// Embedded multi-process-style deployment: the same file-based bootstrap
// that cmd/pprserve and cmd/pprquery use, driven from one program — write
// shard + locator files, start storage servers with the query service, and
// run thin-client queries routed to each source's owner machine.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pprengine/internal/core"
	"pprengine/internal/deploy"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

func main() {
	dir, err := os.MkdirTemp("", "pprengine-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Preprocess: generate, partition, write shard + locator files
	// (what cmd/gengraph + cmd/partition do).
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 3000, NumEdges: 20000, A: 0.55, B: 0.2, C: 0.15, Seed: 8,
	}))
	const k = 3
	assign, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	shards, loc, err := shard.Build(g, assign, k)
	if err != nil {
		log.Fatal(err)
	}
	locPath := filepath.Join(dir, "locator.bin")
	if err := loc.SaveFile(locPath); err != nil {
		log.Fatal(err)
	}
	for i, s := range shards {
		if err := s.SaveFile(filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("preprocessed: %d nodes into %d shards (cut %.1f%%)\n",
		g.NumNodes, k, partition.Evaluate(g, assign).CutRatio*100)

	// Start one storage server per "machine" (what cmd/pprserve does).
	owners := map[int32]string{}
	var servers []*core.StorageServer
	for i := 0; i < k; i++ {
		srv, addr, err := deploy.Serve(filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i)), locPath, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		owners[int32(i)] = addr
	}
	// Enable the owner-compute query service on each.
	for _, srv := range servers {
		_, cleanup, err := deploy.EnableQueries(context.Background(), srv, owners, core.DefaultConfig(), rpc.LatencyModel{})
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
	}
	fmt.Printf("serving: %v\n", deploy.FormatPeers(owners))

	// Thin client (what cmd/pprquery -owners does): no local shard, queries
	// routed to each source's owner.
	qc, cleanup, err := deploy.ConnectThin(context.Background(), locPath, owners, rpc.LatencyModel{})
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	for _, src := range []graph.NodeID{0, graph.NodeID(g.NumNodes / 2), graph.NodeID(g.NumNodes - 1)} {
		resp, err := qc.Query(context.Background(), src, 3, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		sh, _ := loc.Locate(src)
		fmt.Printf("node %4d (owner shard %d): %d pushes, top-3:", src, sh, resp.Pushes)
		for i := range resp.Globals {
			fmt.Printf(" %d=%.4f", resp.Globals[i], resp.Scores[i])
		}
		fmt.Println()
	}
	// Server-side observability.
	st := servers[0].RPCStats()
	fmt.Printf("shard-0 server: %d queries served, %d bytes out\n",
		st.Requests[rpc.MethodSSPPRQuery], st.BytesOut)
}
