// Distributed Random Walk: the second graph primitive of Figure 4. Walks
// start on every simulated machine, hop across shard boundaries through
// batched sample_one_neighbor RPCs, and come back as global-ID trajectories.
package main

import (
	"context"
	"fmt"
	"log"

	"pprengine/internal/cluster"
	"pprengine/internal/graph"
)

func main() {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 5000, NumEdges: 40000,
		A: 0.55, B: 0.2, C: 0.15, Noise: 0.05, Seed: 3,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 4, ProcsPerMachine: 2, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const walksPerMachine, walkLen = 8, 12
	res, summaries, err := c.RunRandomWalkBatch(context.Background(), walksPerMachine, walkLen, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d walks of length %d across %d machines in %v (%.0f walks/s)\n",
		res.Queries, walkLen, c.Opts.NumMachines, res.Wall, res.Throughput)

	// Show one walk per machine, annotating shard crossings.
	for m := range summaries {
		w := summaries[m][0]
		fmt.Printf("machine %d walk: ", m)
		prevShard := int32(m)
		for i, v := range w {
			sh, _ := c.Locator.Locate(graph.NodeID(v))
			if i > 0 {
				if sh != prevShard {
					fmt.Printf(" =[to shard %d]=> ", sh)
				} else {
					fmt.Print(" -> ")
				}
			}
			fmt.Print(v)
			prevShard = sh
		}
		fmt.Println()
	}

	// How often do walks cross machines? High-quality partitions keep most
	// hops local (the paper's locality argument).
	crossings, hops := 0, 0
	for m := range summaries {
		for _, w := range summaries[m] {
			for i := 1; i < len(w); i++ {
				if w[i] == w[i-1] {
					continue // dead-end padding
				}
				hops++
				s1, _ := c.Locator.Locate(graph.NodeID(w[i-1]))
				s2, _ := c.Locator.Locate(graph.NodeID(w[i]))
				if s1 != s2 {
					crossings++
				}
			}
		}
	}
	fmt.Printf("shard crossings: %d of %d hops (%.1f%%) — edge cut is %.1f%%\n",
		crossings, hops, 100*float64(crossings)/float64(hops), c.Quality.CutRatio*100)
}
