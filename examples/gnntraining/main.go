// GNN training case study (paper §4.5, Figure 7): distributed mini-batch
// training of a ShaDow-style GraphSAGE where every mini-batch subgraph is
// induced from the top-K SSPPR scores computed by the engine, features are
// sliced from a cross-machine feature store, and gradients are synchronized
// with an allreduce every step.
package main

import (
	"context"
	"fmt"
	"log"

	"pprengine/internal/cluster"
	"pprengine/internal/gnn"
	"pprengine/internal/graph"
)

func main() {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 4000, NumEdges: 28000,
		A: 0.5, B: 0.22, C: 0.22, Noise: 0.05, Seed: 11,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 4, ProcsPerMachine: 1, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	cfg := gnn.DefaultTrainConfig()
	cfg.Epochs = 5
	cfg.BatchesPerEpc = 16
	cfg.TopK = 32

	fmt.Printf("training ShaDow-SAGE on %d machines: top-%d PPR subgraphs, %d-dim features, %d classes\n",
		c.Opts.NumMachines, cfg.TopK, cfg.FeatureDim, cfg.NumClasses)
	stats, model, err := gnn.TrainDistributed(context.Background(), c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("epoch %d: loss %.4f, ego accuracy %.3f\n", s.Epoch, s.MeanLoss, s.Accuracy)
	}
	fmt.Printf("model: %d parameters (in=%d hidden=%d classes=%d)\n",
		model.NumParams(), cfg.FeatureDim, cfg.Hidden, cfg.NumClasses)
}
