// Package ppr implements single-machine Personalized PageRank kernels:
//
//   - ForwardPush: the sequential Forward Push of Algorithm 1 in the paper,
//     computing an ε-approximate whole-graph SSPPR vector.
//   - ParallelForwardPush: the frontier-parallel variant (Shun et al. 2016)
//     the engine's distributed implementation is based on; it performs
//     slightly more pushes but exposes batch parallelism.
//   - PowerIteration: the high-precision method used as ground truth
//     (the paper's "DGL SpMM" baseline runs this via SpMV).
//   - MonteCarlo: random-walk-with-restart estimation, for reference.
//
// All kernels operate on weighted graphs: a step from v follows edge (v,u)
// with probability W(v,u)/dw(v), where dw is the weighted out-degree.
package ppr

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pprengine/internal/graph"
	"pprengine/internal/tensor"
)

// Result holds an SSPPR vector as a sparse map from node to estimate,
// along with counters describing the computation.
type Result struct {
	Scores map[graph.NodeID]float64
	Pushes int64 // number of push operations applied
	Iters  int   // frontier iterations (parallel) or total pops (sequential)
}

// ForwardPush runs the sequential Forward Push algorithm (paper Algorithm 1)
// from source s with teleport probability alpha and residual threshold eps.
// It returns the ε-approximate PPR vector restricted to touched nodes.
func ForwardPush(g *graph.Graph, s graph.NodeID, alpha, eps float64) *Result {
	p := make(map[graph.NodeID]float64)
	r := make(map[graph.NodeID]float64)
	r[s] = 1
	// Work queue of activated nodes; a node enters at most once at a time.
	queue := []graph.NodeID{s}
	inQueue := map[graph.NodeID]bool{s: true}
	pushes := int64(0)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		dw := float64(g.WeightedDegree[v])
		rv := r[v]
		if rv <= eps*dw || rv == 0 {
			continue // deactivated since it was enqueued
		}
		pushes++
		p[v] += alpha * rv
		m := (1 - alpha) * rv
		r[v] = 0
		if dw == 0 {
			continue // dangling node absorbs; residual mass is dropped
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			ru := r[u] + float64(ws[i])/dw*m
			r[u] = ru
			if ru > eps*float64(g.WeightedDegree[u]) && !inQueue[u] {
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
	}
	return &Result{Scores: p, Pushes: pushes, Iters: int(pushes)}
}

// ParallelForwardPush runs the frontier-parallel Forward Push (Shun et al.):
// each iteration drains the activated set and pushes all of its nodes in
// parallel. workers <= 0 uses GOMAXPROCS.
func ParallelForwardPush(g *graph.Graph, s graph.NodeID, alpha, eps float64, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes
	p := make([]uint64, n) // atomic float64 bits
	r := make([]uint64, n)
	storeF := func(a []uint64, i graph.NodeID, v float64) {
		atomic.StoreUint64(&a[i], math.Float64bits(v))
	}
	loadF := func(a []uint64, i graph.NodeID) float64 {
		return math.Float64frombits(atomic.LoadUint64(&a[i]))
	}
	addF := func(a []uint64, i graph.NodeID, d float64) float64 {
		for {
			old := atomic.LoadUint64(&a[i])
			nv := math.Float64frombits(old) + d
			if atomic.CompareAndSwapUint64(&a[i], old, math.Float64bits(nv)) {
				return nv
			}
		}
	}
	storeF(r, s, 1)
	frontier := []graph.NodeID{s}
	inFrontier := make([]atomic.Bool, n)
	var pushes atomic.Int64
	iters := 0
	for len(frontier) > 0 {
		iters++
		next := make([][]graph.NodeID, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for _, v := range frontier[lo:hi] {
					inFrontier[v].Store(false)
					dw := float64(g.WeightedDegree[v])
					// Atomically claim the entire residual of v.
					var rv float64
					for {
						old := atomic.LoadUint64(&r[v])
						rv = math.Float64frombits(old)
						if rv == 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&r[v], old, 0) {
							break
						}
					}
					if rv <= eps*dw || rv == 0 {
						if rv != 0 {
							addF(r, v, rv) // give it back; deactivated
						}
						continue
					}
					pushes.Add(1)
					addF(p, v, alpha*rv)
					if dw == 0 {
						continue
					}
					m := (1 - alpha) * rv
					ws := g.EdgeWeights(v)
					for i, u := range g.Neighbors(v) {
						ru := addF(r, u, float64(ws[i])/dw*m)
						if ru > eps*float64(g.WeightedDegree[u]) && inFrontier[u].CompareAndSwap(false, true) {
							next[w] = append(next[w], u)
						}
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
		}
	}
	res := &Result{Scores: make(map[graph.NodeID]float64), Pushes: pushes.Load(), Iters: iters}
	for v := graph.NodeID(0); int(v) < n; v++ {
		if pv := loadF(p, v); pv > 0 {
			res.Scores[v] = pv
		}
	}
	return res
}

// ResidualSum returns the total residual mass left in a result's residual
// map; exported kernels guarantee sum(scores) + residual <= 1 + fp error.
// (Helper for invariant tests; computed from scratch by re-running is not
// possible, so kernels that need it expose it directly.)

// PowerIteration computes a high-precision SSPPR estimate by iterating
// x ← alpha·e_s + (1-alpha)·Pᵀx until the L1 change is below tol, where
// P(v,u) = W(v,u)/dw(v). The returned vector is dense over all nodes.
// Dangling nodes teleport their mass back to the source, matching the
// random-walk-with-restart semantics.
func PowerIteration(g *graph.Graph, s graph.NodeID, alpha, tol float64, maxIters int) (tensor.Vec, int) {
	pt := TransitionTranspose(g)
	n := g.NumNodes
	x := tensor.NewVec(n)
	x[s] = 1
	dangling := make([]bool, n)
	for v := 0; v < n; v++ {
		dangling[v] = g.WeightedDegree[v] == 0
	}
	y := tensor.NewVec(n)
	iters := 0
	for iters = 0; iters < maxIters; iters++ {
		pt.SpMVInto(y, x)
		// Dangling mass restarts at the source.
		lost := 0.0
		for v := 0; v < n; v++ {
			if dangling[v] && x[v] > 0 {
				lost += x[v]
			}
		}
		y[s] += lost
		diff := 0.0
		for v := 0; v < n; v++ {
			nv := (1 - alpha) * y[v]
			if v == int(s) {
				nv += alpha
			}
			diff += math.Abs(nv - x[v])
			x[v] = nv
		}
		if diff < tol {
			iters++
			break
		}
	}
	return x, iters
}

// TransitionTranspose builds Pᵀ in CSR form where P(v,u)=W(v,u)/dw(v), so
// that Pᵀx propagates mass forward along edges.
func TransitionTranspose(g *graph.Graph) *tensor.CSR {
	n := g.NumNodes
	a := &tensor.CSR{Rows: n, Cols: n, Indptr: make([]int64, n+1)}
	// Count in-degree (rows of Pᵀ are destinations).
	for _, u := range g.Adj {
		a.Indptr[u+1]++
	}
	for v := 0; v < n; v++ {
		a.Indptr[v+1] += a.Indptr[v]
	}
	nnz := a.Indptr[n]
	a.ColIdx = make([]int32, nnz)
	a.Values = make([]float64, nnz)
	cursor := make([]int64, n)
	copy(cursor, a.Indptr[:n])
	for v := graph.NodeID(0); int(v) < n; v++ {
		dw := float64(g.WeightedDegree[v])
		if dw == 0 {
			continue
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			j := cursor[u]
			cursor[u]++
			a.ColIdx[j] = int32(v)
			a.Values[j] = float64(ws[i]) / dw
		}
	}
	return a
}

// MonteCarlo estimates SSPPR by simulating walks random walks with restart
// probability alpha from s. The estimate of π(s,v) is the fraction of walk
// terminations at v.
func MonteCarlo(g *graph.Graph, s graph.NodeID, alpha float64, walks int, seed int64) map[graph.NodeID]float64 {
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[graph.NodeID]int)
	for i := 0; i < walks; i++ {
		v := s
		for rng.Float64() > alpha {
			dw := float64(g.WeightedDegree[v])
			if dw == 0 {
				v = s // dangling: restart
				continue
			}
			// Weighted neighbor sampling by inverse CDF.
			target := rng.Float64() * dw
			ws := g.EdgeWeights(v)
			nbrs := g.Neighbors(v)
			acc := 0.0
			next := nbrs[len(nbrs)-1]
			for j, w := range ws {
				acc += float64(w)
				if acc >= target {
					next = nbrs[j]
					break
				}
			}
			v = next
		}
		counts[v]++
	}
	out := make(map[graph.NodeID]float64, len(counts))
	for v, c := range counts {
		out[v] = float64(c) / float64(walks)
	}
	return out
}

// L1Error returns sum_v |approx(v) - exact[v]| over all nodes of exact.
func L1Error(approx map[graph.NodeID]float64, exact tensor.Vec) float64 {
	s := 0.0
	for v, ev := range exact {
		s += math.Abs(approx[graph.NodeID(v)] - ev)
	}
	// Nodes present in approx but outside exact's range (impossible when
	// lengths match the graph) are ignored.
	return s
}

// TopKPrecision returns |topK(approx) ∩ topK(exact)| / k — the paper's
// "top-100 accuracy" metric (§4.2).
func TopKPrecision(approx map[graph.NodeID]float64, exact tensor.Vec, k int) float64 {
	exactTop := tensor.TopK(exact, k)
	exactSet := make(map[int32]struct{}, k)
	for _, v := range exactTop {
		exactSet[v] = struct{}{}
	}
	approxTop := TopKOfMap(approx, k)
	if len(approxTop) == 0 {
		return 0
	}
	hit := 0
	for _, v := range approxTop {
		if _, ok := exactSet[int32(v)]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(approxTop))
}

// TopKOfMap returns the ids of the k largest-valued entries of a sparse
// score map, descending by score (ties: ascending id). If the map has fewer
// than k entries, all of them are returned.
func TopKOfMap(scores map[graph.NodeID]float64, k int) []graph.NodeID {
	type kv struct {
		v graph.NodeID
		x float64
	}
	items := make([]kv, 0, len(scores))
	for v, x := range scores {
		items = append(items, kv{v, x})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].x != items[j].x {
			return items[i].x > items[j].x
		}
		return items[i].v < items[j].v
	})
	if k > len(items) {
		k = len(items)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].v
	}
	return out
}
