package ppr

import (
	"math"
	"testing"

	"pprengine/internal/graph"
)

func TestReversePushRingClosedForm(t *testing.T) {
	// On a directed n-ring, π(s, t) depends only on the distance from s to
	// t: π(s, t) = a(1-a)^d / (1 - (1-a)^n).
	n := 8
	g := graph.Ring(n)
	tgt := graph.NodeID(3)
	res := ReversePush(g, tgt, alpha, 1e-12)
	for s := 0; s < n; s++ {
		d := (int(tgt) - s + n) % n
		want := ringExact(n, d, alpha)
		if math.Abs(res.Scores[graph.NodeID(s)]-want) > 1e-6 {
			t.Fatalf("π(%d,%d) = %v, want %v", s, tgt, res.Scores[graph.NodeID(s)], want)
		}
	}
}

func TestReversePushBoundsAgainstExactColumn(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(60, 300, 9))
	tgt := graph.NodeID(7)
	eps := 1e-4
	res := ReversePush(g, tgt, alpha, eps)
	col := ExactPPRColumn(g, tgt, alpha, 1e-12)
	for s := 0; s < g.NumNodes; s++ {
		est := res.Scores[graph.NodeID(s)]
		exact := col[s]
		// Guarantee: est <= π(s,t) <= est + eps.
		if est > exact+1e-9 {
			t.Fatalf("s=%d: estimate %v exceeds exact %v", s, est, exact)
		}
		if exact > est+eps+1e-9 {
			t.Fatalf("s=%d: exact %v beyond est %v + eps", s, exact, est)
		}
	}
}

func TestReversePushSymmetricGraphIdentity(t *testing.T) {
	// On an undirected unweighted regular graph, π(s,t)·d(s) = π(t,s)·d(t)
	// (reversibility); for a ring doubled to be 2-regular everywhere,
	// π(s,t) = π(t,s). Use the complete graph: all off-diagonal equal.
	g := graph.Complete(6)
	res := ReversePush(g, 2, alpha, 1e-10)
	var vals []float64
	for s := 0; s < 6; s++ {
		if s == 2 {
			continue
		}
		vals = append(vals, res.Scores[graph.NodeID(s)])
	}
	for _, v := range vals[1:] {
		if math.Abs(v-vals[0]) > 1e-9 {
			t.Fatalf("asymmetric estimates on complete graph: %v", vals)
		}
	}
}

func TestFORAMoreAccurateThanLoosePush(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 400, NumEdges: 2400, A: 0.5, B: 0.22, C: 0.22, Seed: 17,
	}))
	src := graph.NodeID(11)
	exact, _ := PowerIteration(g, src, alpha, 1e-12, 100000)
	cfg := DefaultFORAConfig(g)
	cfg.Alpha = alpha
	// Loose push alone vs the same push plus walks.
	loose := ForwardPush(g, src, alpha, cfg.RMax)
	fora := FORA(g, src, cfg)
	l1Loose := L1Error(loose.Scores, exact)
	l1FORA := L1Error(fora.Scores, exact)
	if l1FORA >= l1Loose {
		t.Fatalf("FORA (%v) should beat loose push (%v)", l1FORA, l1Loose)
	}
	// And the estimate is globally sane.
	sum := 0.0
	for _, v := range fora.Scores {
		if v < 0 {
			t.Fatal("negative estimate")
		}
		sum += v
	}
	if sum > 1.05 || sum < 0.8 {
		t.Fatalf("FORA mass = %v", sum)
	}
}

func TestForwardPushResidualInvariant(t *testing.T) {
	// Invariant: p + residual mass == 1 (no dangling nodes reachable).
	g := graph.MakeUndirected(graph.ErdosRenyi(150, 900, 5))
	res := ForwardPushResiduals(g, 3, alpha, 1e-4)
	sum := 0.0
	for _, v := range res.Scores {
		sum += v
	}
	for _, v := range res.Residuals {
		if v < 0 {
			t.Fatal("negative residual")
		}
		sum += v
	}
	// float32 edge weights accumulate ~1e-8 of rounding here.
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mass = %v, want 1", sum)
	}
	if len(res.Residuals) == 0 {
		t.Fatal("loose push should leave residuals")
	}
}

func TestFORADeterministicSeed(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(100, 600, 6))
	cfg := DefaultFORAConfig(g)
	a := FORA(g, 1, cfg)
	b := FORA(g, 1, cfg)
	if len(a.Scores) != len(b.Scores) {
		t.Fatal("nondeterministic")
	}
	for v, x := range a.Scores {
		if b.Scores[v] != x {
			t.Fatal("nondeterministic scores")
		}
	}
}
