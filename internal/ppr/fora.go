package ppr

import (
	"math"
	"math/rand"
	"sort"

	"pprengine/internal/graph"
)

// FORA (Wang et al., cited as [25] — the paper takes its definition of
// approximate whole-graph SSPPR from it) combines the two phases the
// related-work section contrasts: a Forward Push with a loose threshold
// leaves residual mass r(v) on a frontier; Monte-Carlo random walks then
// spend that mass, started from each residual node in proportion to r(v).
// The estimate is
//
//	π̂(s, u) = p(u) + Σ_v r(v) · (walk hits from v to u) / walks(v)
//
// which is unbiased given the Forward Push invariant
// π(s,u) = p(u) + Σ_v r(v)·π(v,u).

// FORAConfig controls the hybrid.
type FORAConfig struct {
	Alpha float64
	// RMax is the forward-push residual threshold (looser than a pure
	// push run; the walks clean up the remainder).
	RMax float64
	// WalksPerUnit scales walk counts: node v starts
	// ceil(r(v) * WalksPerUnit) walks.
	WalksPerUnit float64
	Seed         int64
}

// DefaultFORAConfig chooses rmax and walk counts for a failure probability
// around 1/n on a graph with m edges, following the paper's balancing
// heuristic rmax ∝ sqrt(1/(m·ω)).
func DefaultFORAConfig(g *graph.Graph) FORAConfig {
	n := float64(g.NumNodes)
	if n < 2 {
		n = 2
	}
	omega := n * math.Log(n) // total walk budget
	return FORAConfig{
		Alpha:        0.462,
		RMax:         1 / math.Sqrt(omega*math.Max(1, float64(g.NumEdges()))),
		WalksPerUnit: omega,
		Seed:         1,
	}
}

// FORA runs the hybrid estimator from source s.
func FORA(g *graph.Graph, s graph.NodeID, cfg FORAConfig) *Result {
	fp := ForwardPushResiduals(g, s, cfg.Alpha, cfg.RMax)
	rng := rand.New(rand.NewSource(cfg.Seed))
	est := fp.Scores
	walks := int64(0)
	// Deterministic iteration order so a fixed seed reproduces exactly.
	order := make([]graph.NodeID, 0, len(fp.Residuals))
	for v := range fp.Residuals {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		rv := fp.Residuals[v]
		if rv <= 0 {
			continue
		}
		nw := int(math.Ceil(rv * cfg.WalksPerUnit))
		if nw == 0 {
			continue
		}
		inc := rv / float64(nw)
		for w := 0; w < nw; w++ {
			u := randomWalkEnd(g, v, cfg.Alpha, rng)
			est[u] += inc
			walks++
		}
	}
	return &Result{Scores: est, Pushes: fp.Pushes, Iters: int(walks)}
}

// PushResult extends Result with the leftover residual map.
type PushResult struct {
	Scores    map[graph.NodeID]float64
	Residuals map[graph.NodeID]float64
	Pushes    int64
}

// ForwardPushResiduals is ForwardPush but also returns the residual map
// (needed by FORA's walk phase).
func ForwardPushResiduals(g *graph.Graph, s graph.NodeID, alpha, eps float64) *PushResult {
	p := make(map[graph.NodeID]float64)
	r := map[graph.NodeID]float64{s: 1}
	queue := []graph.NodeID{s}
	inQueue := map[graph.NodeID]bool{s: true}
	pushes := int64(0)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		dw := float64(g.WeightedDegree[v])
		rv := r[v]
		if rv <= eps*dw || rv == 0 {
			continue
		}
		pushes++
		p[v] += alpha * rv
		m := (1 - alpha) * rv
		r[v] = 0
		if dw == 0 {
			continue
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			ru := r[u] + float64(ws[i])/dw*m
			r[u] = ru
			if ru > eps*float64(g.WeightedDegree[u]) && !inQueue[u] {
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
	}
	for v, rv := range r {
		if rv == 0 {
			delete(r, v)
		}
	}
	return &PushResult{Scores: p, Residuals: r, Pushes: pushes}
}

// randomWalkEnd simulates one α-restart walk from v and returns its
// terminal node.
func randomWalkEnd(g *graph.Graph, v graph.NodeID, alpha float64, rng *rand.Rand) graph.NodeID {
	for {
		if rng.Float64() < alpha {
			return v
		}
		dw := float64(g.WeightedDegree[v])
		if dw == 0 {
			return v // dangling: terminate here
		}
		target := rng.Float64() * dw
		ws := g.EdgeWeights(v)
		nbrs := g.Neighbors(v)
		acc := 0.0
		next := nbrs[len(nbrs)-1]
		for j, w := range ws {
			acc += float64(w)
			if acc >= target {
				next = nbrs[j]
				break
			}
		}
		v = next
	}
}
