package ppr

import (
	"pprengine/internal/graph"
	"pprengine/internal/tensor"
)

// ReversePush is the local-update method for single-target PPR (Andersen et
// al., cited as [1] in the paper's related work): it computes an
// ε-approximation of π(s, t) for a fixed target t and *all* sources s by
// pushing along in-edges. The returned sparse map p satisfies
//
//	p[s] <= π(s, t) <= p[s] + eps   for every source s.
//
// On weighted graphs the reverse transition uses P(s,v) = W(s,v)/dw(s),
// matching the forward kernels.
func ReversePush(g *graph.Graph, t graph.NodeID, alpha, eps float64) *Result {
	// Build the in-adjacency once: for target-side pushes we need, for
	// each node v, the set of sources s with an edge s->v and W(s,v)/dw(s).
	in := buildInEdges(g)
	p := make(map[graph.NodeID]float64)
	r := map[graph.NodeID]float64{t: 1}
	queue := []graph.NodeID{t}
	inQueue := map[graph.NodeID]bool{t: true}
	pushes := int64(0)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		rv := r[v]
		if rv <= eps {
			continue
		}
		pushes++
		p[v] += alpha * rv
		r[v] = 0
		m := (1 - alpha) * rv
		lo, hi := in.indptr[v], in.indptr[v+1]
		for i := lo; i < hi; i++ {
			s := in.src[i]
			rs := r[s] + float64(in.prob[i])*m
			r[s] = rs
			if rs > eps && !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}
	return &Result{Scores: p, Pushes: pushes, Iters: int(pushes)}
}

type inEdges struct {
	indptr []int64
	src    []graph.NodeID
	prob   []float32 // W(s,v)/dw(s)
}

func buildInEdges(g *graph.Graph) *inEdges {
	in := &inEdges{indptr: make([]int64, g.NumNodes+1)}
	for _, u := range g.Adj {
		in.indptr[u+1]++
	}
	for v := 0; v < g.NumNodes; v++ {
		in.indptr[v+1] += in.indptr[v]
	}
	nnz := in.indptr[g.NumNodes]
	in.src = make([]graph.NodeID, nnz)
	in.prob = make([]float32, nnz)
	cursor := make([]int64, g.NumNodes)
	copy(cursor, in.indptr[:g.NumNodes])
	for s := graph.NodeID(0); int(s) < g.NumNodes; s++ {
		dw := g.WeightedDegree[s]
		if dw == 0 {
			continue
		}
		ws := g.EdgeWeights(s)
		for i, v := range g.Neighbors(s) {
			j := cursor[v]
			cursor[v]++
			in.src[j] = s
			in.prob[j] = ws[i] / dw
		}
	}
	return in
}

// ExactPPRColumn computes the exact column π(·, t) — π(s, t) for every
// source s — by power-iterating each source. O(|V|) power iterations; test
// helper for tiny graphs only.
func ExactPPRColumn(g *graph.Graph, t graph.NodeID, alpha, tol float64) tensor.Vec {
	col := tensor.NewVec(g.NumNodes)
	for s := 0; s < g.NumNodes; s++ {
		x, _ := PowerIteration(g, graph.NodeID(s), alpha, tol, 100000)
		col[s] = x[t]
	}
	return col
}
