package ppr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pprengine/internal/graph"
)

const alpha = 0.462 // the paper's teleport parameter

// ringExact computes the closed-form PPR on a directed n-ring: the walk
// from s reaches distance k with probability (1-a)^k before restart, so
// π(s, s+k) = a(1-a)^k / (1 - (1-a)^n).
func ringExact(n int, k int, a float64) float64 {
	return a * math.Pow(1-a, float64(k)) / (1 - math.Pow(1-a, float64(n)))
}

func TestForwardPushRingClosedForm(t *testing.T) {
	n := 10
	g := graph.Ring(n)
	res := ForwardPush(g, 0, alpha, 1e-12)
	for k := 0; k < n; k++ {
		want := ringExact(n, k, alpha)
		got := res.Scores[graph.NodeID(k)]
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("π(0,%d) = %v, want %v", k, got, want)
		}
	}
}

func TestPowerIterationRingClosedForm(t *testing.T) {
	n := 10
	g := graph.Ring(n)
	x, iters := PowerIteration(g, 0, alpha, 1e-12, 10000)
	if iters == 10000 {
		t.Fatal("power iteration did not converge")
	}
	for k := 0; k < n; k++ {
		want := ringExact(n, k, alpha)
		if math.Abs(x[k]-want) > 1e-9 {
			t.Fatalf("π(0,%d) = %v, want %v", k, x[k], want)
		}
	}
}

func TestForwardPushMatchesPowerIteration(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 500, NumEdges: 3000, A: 0.55, B: 0.2, C: 0.15, Seed: 2,
	}))
	exact, _ := PowerIteration(g, 7, alpha, 1e-12, 100000)
	res := ForwardPush(g, 7, alpha, 1e-7)
	// Forward Push guarantee: |π̂(v) - π(v)| <= eps * dw(v) ... summed over
	// the graph the error is bounded by eps * sum(dw). Check L1.
	l1 := L1Error(res.Scores, exact)
	var sumDW float64
	for _, d := range g.WeightedDegree {
		sumDW += float64(d)
	}
	if l1 > 1e-7*sumDW {
		t.Fatalf("L1 error %v exceeds bound %v", l1, 1e-7*sumDW)
	}
	// The paper's accuracy claim: top-100 precision >= 0.97 at eps=1e-6.
	res2 := ForwardPush(g, 7, alpha, 1e-6)
	if prec := TopKPrecision(res2.Scores, exact, 100); prec < 0.9 {
		t.Fatalf("top-100 precision = %v", prec)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 400, NumEdges: 2400, A: 0.57, B: 0.19, C: 0.19, Seed: 5,
	}))
	exact, _ := PowerIteration(g, 3, alpha, 1e-12, 100000)
	seq := ForwardPush(g, 3, alpha, 1e-7)
	for _, workers := range []int{1, 2, 4, 8} {
		par := ParallelForwardPush(g, 3, alpha, 1e-7, workers)
		// Both are eps-approximations; they agree with the exact answer
		// within the same bound (they need not agree bit-for-bit with each
		// other because push order differs).
		l1s := L1Error(seq.Scores, exact)
		l1p := L1Error(par.Scores, exact)
		if l1p > 10*l1s+1e-9 {
			t.Fatalf("workers=%d: parallel error %v much worse than sequential %v", workers, l1p, l1s)
		}
		if par.Pushes < seq.Pushes {
			// Parallel does at least as many pushes (Shun et al.).
			t.Logf("note: parallel pushes %d < sequential %d", par.Pushes, seq.Pushes)
		}
	}
}

func TestMassConservation(t *testing.T) {
	// On a graph with no dangling nodes, the total PPR mass of the exact
	// solution is 1 and Forward Push's captured mass is <= 1.
	g := graph.MakeUndirected(graph.ErdosRenyi(200, 800, 3))
	// Ensure no isolated nodes affect the source.
	res := ForwardPush(g, 0, alpha, 1e-8)
	sum := 0.0
	for _, v := range res.Scores {
		if v < 0 {
			t.Fatal("negative PPR score")
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Fatalf("captured mass %v > 1", sum)
	}
	if sum < 0.9 {
		t.Fatalf("captured mass %v too small for eps=1e-8", sum)
	}
	exact, _ := PowerIteration(g, 0, alpha, 1e-12, 100000)
	if s := exact.Sum(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("exact mass = %v, want 1", s)
	}
}

func TestDanglingNode(t *testing.T) {
	// 0 -> 1, 1 has no out-edges. Forward push should terminate and give
	// π(0) ≈ alpha, π(1) ≈ alpha(1-alpha) (subsequent mass dropped).
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	res := ForwardPush(g, 0, alpha, 1e-12)
	if math.Abs(res.Scores[0]-alpha) > 1e-9 {
		t.Fatalf("π(0) = %v", res.Scores[0])
	}
	if math.Abs(res.Scores[1]-alpha*(1-alpha)) > 1e-9 {
		t.Fatalf("π(1) = %v", res.Scores[1])
	}
	// Power iteration restarts dangling mass at the source; just ensure it
	// converges and sums to ~1.
	x, _ := PowerIteration(g, 0, alpha, 1e-12, 100000)
	if math.Abs(x.Sum()-1) > 1e-6 {
		t.Fatalf("power iteration mass = %v", x.Sum())
	}
}

func TestIsolatedSource(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{Src: 1, Dst: 2, Weight: 1}})
	res := ForwardPush(g, 0, alpha, 1e-9)
	if math.Abs(res.Scores[0]-alpha) > 1e-12 || len(res.Scores) != 1 {
		t.Fatalf("isolated source: %v", res.Scores)
	}
}

func TestEpsilonControlsWork(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 1000, NumEdges: 6000, A: 0.55, B: 0.2, C: 0.15, Seed: 9,
	}))
	loose := ForwardPush(g, 1, alpha, 1e-4)
	tight := ForwardPush(g, 1, alpha, 1e-8)
	if loose.Pushes >= tight.Pushes {
		t.Fatalf("pushes: loose %d >= tight %d", loose.Pushes, tight.Pushes)
	}
	if len(loose.Scores) > len(tight.Scores) {
		t.Fatalf("touched: loose %d > tight %d", len(loose.Scores), len(tight.Scores))
	}
}

func TestMonteCarloAgreesRoughly(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(50, 300, 7))
	exact, _ := PowerIteration(g, 5, alpha, 1e-12, 100000)
	mc := MonteCarlo(g, 5, alpha, 200000, 1)
	// Monte Carlo has ~1/sqrt(walks) error; compare the top node.
	top := int32(0)
	for v := 1; v < g.NumNodes; v++ {
		if exact[v] > exact[top] {
			top = int32(v)
		}
	}
	if math.Abs(mc[graph.NodeID(top)]-exact[top]) > 0.02 {
		t.Fatalf("MC estimate %v vs exact %v", mc[graph.NodeID(top)], exact[top])
	}
}

func TestWeightedEdgesRespected(t *testing.T) {
	// Source 0 with two neighbors: weight 9 to node 1, weight 1 to node 2.
	// After one push, r(1)/r(2) = 9, so π(1)/π(2) ≈ 9 for shallow eps.
	g, _ := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 9}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 0, Weight: 9}, {Src: 2, Dst: 0, Weight: 1},
	})
	exact, _ := PowerIteration(g, 0, alpha, 1e-13, 100000)
	ratio := exact[1] / exact[2]
	if math.Abs(ratio-9) > 1e-6 {
		t.Fatalf("weighted ratio = %v, want 9", ratio)
	}
	res := ForwardPush(g, 0, alpha, 1e-10)
	ratioFP := res.Scores[1] / res.Scores[2]
	if math.Abs(ratioFP-9) > 1e-3 {
		t.Fatalf("forward push ratio = %v, want 9", ratioFP)
	}
}

func TestTopKOfMap(t *testing.T) {
	m := map[graph.NodeID]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.9}
	top := TopKOfMap(m, 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Fatalf("top = %v", top)
	}
	if got := TopKOfMap(m, 10); len(got) != 4 {
		t.Fatalf("clamped top = %v", got)
	}
	if len(TopKOfMap(nil, 3)) != 0 {
		t.Fatal("empty map")
	}
}

func TestTransitionTransposeRowStochastic(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(100, 400, 11))
	pt := TransitionTranspose(g)
	// Column sums of Pᵀ = row sums of P = 1 for non-dangling nodes.
	colSum := make([]float64, g.NumNodes)
	for r := 0; r < pt.Rows; r++ {
		for i := pt.Indptr[r]; i < pt.Indptr[r+1]; i++ {
			colSum[pt.ColIdx[i]] += pt.Values[i]
		}
	}
	for v := 0; v < g.NumNodes; v++ {
		if g.WeightedDegree[v] == 0 {
			if colSum[v] != 0 {
				t.Fatalf("dangling node %d has outgoing mass", v)
			}
			continue
		}
		// Weights and degrees are float32; allow their rounding error.
		if math.Abs(colSum[v]-1) > 1e-5 {
			t.Fatalf("node %d transition mass = %v", v, colSum[v])
		}
	}
}

// Property: forward push results are non-negative, bounded by the exact
// value plus eps*dw, and the source always has the largest-or-equal
// residual-free guarantee π(s) >= alpha.
func TestQuickForwardPushBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 10
		g := graph.MakeUndirected(graph.ErdosRenyi(n, int64(rng.Intn(400)+n), seed))
		s := graph.NodeID(rng.Intn(n))
		res := ForwardPush(g, s, alpha, 1e-6)
		if res.Scores[s] < alpha-1e-12 && g.Degree(s) > 0 {
			return false
		}
		sum := 0.0
		for _, v := range res.Scores {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential and parallel forward push touch the same node set
// modulo threshold noise and produce close scores.
func TestQuickParallelCloseToSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 10
		g := graph.MakeUndirected(graph.ErdosRenyi(n, int64(rng.Intn(300)+n), seed))
		s := graph.NodeID(rng.Intn(n))
		seq := ForwardPush(g, s, alpha, 1e-8)
		par := ParallelForwardPush(g, s, alpha, 1e-8, 4)
		for v, sv := range seq.Scores {
			if math.Abs(par.Scores[v]-sv) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardPushSequential(b *testing.B) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 10000, NumEdges: 80000, A: 0.57, B: 0.19, C: 0.19, Seed: 1,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardPush(g, graph.NodeID(i%g.NumNodes), alpha, 1e-6)
	}
}

func BenchmarkForwardPushParallel(b *testing.B) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 10000, NumEdges: 80000, A: 0.57, B: 0.19, C: 0.19, Seed: 1,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelForwardPush(g, graph.NodeID(i%g.NumNodes), alpha, 1e-6, 0)
	}
}

func BenchmarkPowerIteration(b *testing.B) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 10000, NumEdges: 80000, A: 0.57, B: 0.19, C: 0.19, Seed: 1,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PowerIteration(g, graph.NodeID(i%g.NumNodes), alpha, 1e-10, 10000)
	}
}
