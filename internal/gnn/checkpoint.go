package gnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Model checkpointing: parameters are written as framed float32 blocks in
// Params() order. The loader writes into an already-constructed model of
// the same architecture, so the file stays architecture-agnostic.

const (
	ckptMagic   = 0x474e4e43 // "GNNC"
	ckptVersion = 1
)

// SaveParams writes a model's parameters to w.
func SaveParams(w io.Writer, m Model) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	for _, v := range []any{uint32(ckptMagic), uint32(ckptVersion), uint32(len(params))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParams reads parameters written by SaveParams into m. The block
// shapes must match m's architecture exactly.
func LoadParams(r io.Reader, m Model) error {
	br := bufio.NewReader(r)
	var magic, ver, n uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != ckptMagic {
		return fmt.Errorf("gnn: bad checkpoint magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != ckptVersion {
		return fmt.Errorf("gnn: unsupported checkpoint version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	params := m.Params()
	if int(n) != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d blocks, model wants %d", n, len(params))
	}
	for i, p := range params {
		var sz uint32
		if err := binary.Read(br, binary.LittleEndian, &sz); err != nil {
			return err
		}
		if int(sz) != len(p) {
			return fmt.Errorf("gnn: block %d has %d floats, model wants %d", i, sz, len(p))
		}
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return nil
}

// SaveCheckpoint writes the model to path.
func SaveCheckpoint(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveParams(f, m); err != nil {
		return err
	}
	return f.Sync()
}

// LoadCheckpoint reads parameters from path into m.
func LoadCheckpoint(path string, m Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, m)
}
