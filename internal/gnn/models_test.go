package gnn

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func randomBatch(seed int64, n, inDim int, withWeights bool) *Batch {
	rng := rand.New(rand.NewSource(seed))
	b := &Batch{
		N:        n,
		X:        make([]float32, n*inDim),
		EgoIdx:   rng.Intn(n),
		EgoLabel: rng.Intn(2),
	}
	for i := range b.X {
		b.X[i] = float32(rng.NormFloat64())
	}
	for e := 0; e < 2*n; e++ {
		b.EdgeSrc = append(b.EdgeSrc, int32(rng.Intn(n)))
		b.EdgeDst = append(b.EdgeDst, int32(rng.Intn(n)))
	}
	if withWeights {
		b.PPRWeights = make([]float32, n)
		for i := range b.PPRWeights {
			b.PPRWeights[i] = rng.Float32() + 0.01
		}
	}
	return b
}

// gradientCheck verifies analytic against numerical gradients for any model.
func gradientCheck(t *testing.T, m Model, b *Batch) {
	t.Helper()
	_, grads := m.Loss(b)
	params := m.Params()
	const h = 1e-3
	checked := 0
	for pi, p := range params {
		step := len(p)/8 + 1
		for j := 0; j < len(p); j += step {
			orig := p[j]
			p[j] = orig + h
			lp, _ := m.Loss(b)
			p[j] = orig - h
			lm, _ := m.Loss(b)
			p[j] = orig
			num := (float64(lp) - float64(lm)) / (2 * h)
			ana := float64(grads[pi][j])
			if math.Abs(num-ana) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: numerical %v vs analytic %v", pi, j, num, ana)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestGCNGradientCheck(t *testing.T) {
	m := NewGCN(3, 5, 2, 11)
	gradientCheck(t, m, randomBatch(1, 6, 3, false))
}

func TestPPRGoGradientCheck(t *testing.T) {
	m := NewPPRGo(3, 5, 2, 13)
	gradientCheck(t, m, randomBatch(2, 6, 3, true))
}

func TestPPRGoUniformFallback(t *testing.T) {
	// Without PPR weights the model degrades to a plain average — it must
	// still produce finite loss and gradients.
	m := NewPPRGo(3, 4, 2, 5)
	b := randomBatch(3, 5, 3, false)
	loss, grads := m.Loss(b)
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("loss = %v", loss)
	}
	nonzero := false
	for _, g := range grads {
		for _, x := range g {
			if x != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("all-zero gradients")
	}
}

func TestGCNNormSymmetric(t *testing.T) {
	// On an isolated pair with a single directed edge 0->1, Â coefficients
	// must be 1/sqrt(d0*d1) with self loops counted.
	b := &Batch{N: 2, EdgeSrc: []int32{0}, EdgeDst: []int32{1}}
	n := buildGCNNorm(b)
	// Entries: self(0,0) coef 1/sqrt(1*1)=1; self(1,1) coef 1/sqrt(2*2)=0.5;
	// edge (0,1) coef 1/sqrt(1*2).
	got := map[[2]int32]float32{}
	for e := range n.src {
		got[[2]int32{n.src[e], n.dst[e]}] = n.coef[e]
	}
	if got[[2]int32{0, 0}] != 1 {
		t.Fatalf("self(0): %v", got[[2]int32{0, 0}])
	}
	if got[[2]int32{1, 1}] != 0.5 {
		t.Fatalf("self(1): %v", got[[2]int32{1, 1}])
	}
	want := float32(1 / math.Sqrt(2))
	if math.Abs(float64(got[[2]int32{0, 1}]-want)) > 1e-6 {
		t.Fatalf("edge coef: %v want %v", got[[2]int32{0, 1}], want)
	}
}

func TestModelKindsTrainAndGeneralize(t *testing.T) {
	for _, kind := range []ModelKind{ModelSAGE, ModelGCN, ModelPPRGo} {
		kind := kind
		c := trainCluster(t)
		cfg := DefaultTrainConfig()
		cfg.Model = kind
		cfg.Epochs = 4
		cfg.BatchesPerEpc = 12
		stats, model, err := TrainDistributed(context.Background(), c, cfg)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if !(stats[len(stats)-1].MeanLoss < stats[0].MeanLoss) {
			t.Fatalf("kind %d: loss did not decrease: %v", kind, stats)
		}
		// Held-out evaluation beats random guessing (features encode the
		// labels, so a working model generalizes immediately).
		acc, err := Evaluate(context.Background(), c, cfg, model, 24, 999)
		if err != nil {
			t.Fatal(err)
		}
		if acc <= 1.0/float64(cfg.NumClasses)+0.1 {
			t.Fatalf("kind %d: held-out accuracy %.3f barely beats random", kind, acc)
		}
	}
}

func TestColSums(t *testing.T) {
	got := colSums([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("colSums = %v", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := NewSAGE(4, 6, 3, 7)
	path := t.TempDir() + "/model.ckpt"
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	// Load into a differently-initialized model of the same shape.
	m2 := NewSAGE(4, 6, 3, 999)
	if err := LoadCheckpoint(path, m2); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("param %d[%d] differs after round trip", i, j)
			}
		}
	}
	// Architecture mismatch is rejected.
	wrong := NewSAGE(5, 6, 3, 1)
	if err := LoadCheckpoint(path, wrong); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	gcn := NewGCN(4, 6, 3, 1)
	if err := LoadCheckpoint(path, gcn); err == nil {
		t.Fatal("expected block-count mismatch error")
	}
	if err := LoadCheckpoint("/nonexistent/x.ckpt", m); err == nil {
		t.Fatal("expected file error")
	}
}
