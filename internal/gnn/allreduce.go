package gnn

import (
	"context"
	"fmt"
	"sync"

	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// AllreduceHub implements the gradient synchronization of the case study's
// DistributedDataParallel step: every machine contributes its gradient
// vector; once all worldSize contributions arrive, each caller receives the
// element-wise mean. The hub lives on one machine's storage server (rank 0)
// and the others reach it over RPC, which keeps the simulation's
// communication honest.
//
// One hub instance handles an arbitrary number of sequential rounds; a
// round completes when worldSize contributions have arrived.
type AllreduceHub struct {
	worldSize int

	mu      sync.Mutex
	sum     []float32
	count   int
	round   int
	waiters []chan []float32
}

// NewAllreduceHub creates a hub for worldSize participants.
func NewAllreduceHub(worldSize int) *AllreduceHub {
	return &AllreduceHub{worldSize: worldSize}
}

// Contribute adds one gradient vector to the current round and blocks until
// the round's mean is available.
func (h *AllreduceHub) Contribute(grad []float32) ([]float32, error) {
	return h.ContributeCtx(context.Background(), grad)
}

// ContributeCtx is Contribute bounded by a context: when ctx ends before the
// round completes, the call returns ctx.Err(). The contribution itself stays
// in the round (the barrier math cannot be unwound), so an abandoned round
// still completes for the other participants.
func (h *AllreduceHub) ContributeCtx(ctx context.Context, grad []float32) ([]float32, error) {
	h.mu.Lock()
	if h.sum == nil {
		h.sum = make([]float32, len(grad))
	}
	if len(grad) != len(h.sum) {
		h.mu.Unlock()
		return nil, fmt.Errorf("gnn: allreduce size mismatch: %d vs %d", len(grad), len(h.sum))
	}
	for i, g := range grad {
		h.sum[i] += g
	}
	h.count++
	if h.count == h.worldSize {
		mean := make([]float32, len(h.sum))
		inv := float32(1) / float32(h.worldSize)
		for i, s := range h.sum {
			mean[i] = s * inv
		}
		waiters := h.waiters
		h.waiters = nil
		h.sum = nil
		h.count = 0
		h.round++
		h.mu.Unlock()
		for _, w := range waiters {
			w <- mean
		}
		return mean, nil
	}
	ch := make(chan []float32, 1)
	h.waiters = append(h.waiters, ch)
	h.mu.Unlock()
	select {
	case mean := <-ch:
		return mean, nil
	case <-ctx.Done():
		// The buffered channel lets the round completer deliver without
		// blocking even though nobody will read it.
		return nil, ctx.Err()
	}
}

// RegisterHandler installs the hub on an RPC handler registry under
// MethodAllreduce. The payload is a bare float32 vector.
func (h *AllreduceHub) RegisterHandler(handle func(rpc.Method, rpc.Handler)) {
	handle(rpc.MethodAllreduce, func(p []byte) ([]byte, error) {
		grad, err := wire.DecodeF32s(p)
		if err != nil {
			return nil, err
		}
		mean, err := h.Contribute(grad)
		if err != nil {
			return nil, err
		}
		return wire.EncodeF32s(mean), nil
	})
}

// AllreduceClient lets non-rank-0 machines contribute via RPC.
type AllreduceClient struct {
	// Hub is non-nil on the machine that hosts the hub (shared memory).
	Hub *AllreduceHub
	// Client reaches the hub machine otherwise.
	Client *rpc.Client
}

// Sync contributes grad and returns the round mean.
func (a *AllreduceClient) Sync(grad []float32) ([]float32, error) {
	return a.SyncCtx(context.Background(), grad)
}

// SyncCtx is Sync bounded by a context.
func (a *AllreduceClient) SyncCtx(ctx context.Context, grad []float32) ([]float32, error) {
	if a.Hub != nil {
		return a.Hub.ContributeCtx(ctx, grad)
	}
	resp, err := a.Client.SyncCallCtx(ctx, rpc.MethodAllreduce, wire.EncodeF32s(grad))
	if err != nil {
		return nil, err
	}
	return wire.DecodeF32s(resp)
}
