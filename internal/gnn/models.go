package gnn

import (
	"math"
	"math/rand"
)

// Model is the interface the distributed training loop drives; SAGE, GCN
// and PPRGo all satisfy it. Params must return stable views (the optimizer
// mutates them in place) and Loss must return gradients in Params order.
type Model interface {
	Loss(b *Batch) (float32, [][]float32)
	Predict(b *Batch) int
	Params() [][]float32
	NumParams() int
}

var (
	_ Model = (*SAGE)(nil)
	_ Model = (*GCN)(nil)
	_ Model = (*PPRGo)(nil)
)

// --- GCN ---

// GCN is a two-layer graph convolutional network with symmetric
// normalization over the batch subgraph (self-loops added):
//
//	H1 = ReLU(Â X W1 + b1),  logits = Â H1 W2 + b2,  Â = D^-1/2 (A+I) D^-1/2
type GCN struct {
	InDim, Hidden, Classes int
	W1, B1, W2, B2         []float32
}

// NewGCN initializes a GCN with Xavier weights.
func NewGCN(inDim, hidden, classes int, seed int64) *GCN {
	rng := rand.New(rand.NewSource(seed))
	return &GCN{
		InDim: inDim, Hidden: hidden, Classes: classes,
		W1: xavierInit(inDim, hidden, rng),
		B1: make([]float32, hidden),
		W2: xavierInit(hidden, classes, rng),
		B2: make([]float32, classes),
	}
}

// Params returns the parameter views in a fixed order.
func (m *GCN) Params() [][]float32 { return [][]float32{m.W1, m.B1, m.W2, m.B2} }

// NumParams returns the total parameter count.
func (m *GCN) NumParams() int { return paramCount(m.Params()) }

// gcnNorm precomputes the symmetric normalization coefficients for the
// batch: for each edge (s,d) including self loops, 1/sqrt(deg(s)*deg(d))
// where deg counts A+I degrees (in-degree over the directed batch edges).
type gcnNorm struct {
	src, dst []int32
	coef     []float32
}

func buildGCNNorm(b *Batch) *gcnNorm {
	deg := make([]float32, b.N)
	for i := range deg {
		deg[i] = 1 // self loop
	}
	for _, d := range b.EdgeDst {
		deg[d]++
	}
	n := &gcnNorm{}
	emit := func(s, d int32) {
		n.src = append(n.src, s)
		n.dst = append(n.dst, d)
		n.coef = append(n.coef, 1/float32(math.Sqrt(float64(deg[s])*float64(deg[d]))))
	}
	for i := int32(0); i < int32(b.N); i++ {
		emit(i, i)
	}
	for e := range b.EdgeSrc {
		emit(b.EdgeSrc[e], b.EdgeDst[e])
	}
	return n
}

// apply computes out[d] += coef * h[s] for all normalized edges.
func (n *gcnNorm) apply(h []float32, nNodes, d int) []float32 {
	out := make([]float32, nNodes*d)
	for e := range n.src {
		hs := h[int(n.src[e])*d : (int(n.src[e])+1)*d]
		od := out[int(n.dst[e])*d : (int(n.dst[e])+1)*d]
		c := n.coef[e]
		for j := 0; j < d; j++ {
			od[j] += c * hs[j]
		}
	}
	return out
}

// applyTranspose routes gradients backward: gIn[s] += coef * gOut[d].
func (n *gcnNorm) applyTranspose(gOut []float32, nNodes, d int) []float32 {
	gIn := make([]float32, nNodes*d)
	for e := range n.src {
		gd := gOut[int(n.dst[e])*d : (int(n.dst[e])+1)*d]
		gs := gIn[int(n.src[e])*d : (int(n.src[e])+1)*d]
		c := n.coef[e]
		for j := 0; j < d; j++ {
			gs[j] += c * gd[j]
		}
	}
	return gIn
}

func (m *GCN) forward(b *Batch) (logits, h1, ax []float32, mask []bool, norm *gcnNorm) {
	norm = buildGCNNorm(b)
	ax = norm.apply(b.X, b.N, m.InDim)
	h1 = matMul(ax, b.N, m.InDim, m.W1, m.Hidden)
	addBiasRows(h1, b.N, m.Hidden, m.B1)
	mask = relu(h1)
	ah1 := norm.apply(h1, b.N, m.Hidden)
	logits = matMul(ah1, b.N, m.Hidden, m.W2, m.Classes)
	addBiasRows(logits, b.N, m.Classes, m.B2)
	return logits, h1, ax, mask, norm
}

// Loss computes cross-entropy at the ego vertex and all gradients.
func (m *GCN) Loss(b *Batch) (float32, [][]float32) {
	logits, h1, ax, mask, norm := m.forward(b)
	egoLogits := logits[b.EgoIdx*m.Classes : (b.EgoIdx+1)*m.Classes]
	loss, egoGrad := softmaxCrossEntropy(egoLogits, 1, m.Classes, []int{b.EgoLabel})
	gLogits := make([]float32, len(logits))
	copy(gLogits[b.EgoIdx*m.Classes:(b.EgoIdx+1)*m.Classes], egoGrad)

	ah1 := norm.apply(h1, b.N, m.Hidden)
	gW2 := matMulATB(ah1, b.N, m.Hidden, gLogits, m.Classes)
	gB2 := colSums(gLogits, b.N, m.Classes)
	gAh1 := matMulABT(gLogits, b.N, m.Classes, m.W2, m.Hidden)
	gH1 := norm.applyTranspose(gAh1, b.N, m.Hidden)
	reluBackward(gH1, mask)
	gW1 := matMulATB(ax, b.N, m.InDim, gH1, m.Hidden)
	gB1 := colSums(gH1, b.N, m.Hidden)
	return loss, [][]float32{gW1, gB1, gW2, gB2}
}

// Predict returns the ego vertex's argmax class.
func (m *GCN) Predict(b *Batch) int {
	logits, _, _, _, _ := m.forward(b)
	row := logits[b.EgoIdx*m.Classes : (b.EgoIdx+1)*m.Classes]
	return argmaxRows(row, 1, m.Classes)[0]
}

// --- PPRGo ---

// PPRGo (Bojchevski et al., cited in paper §2) decouples feature
// transformation from propagation: an MLP embeds every top-K vertex's raw
// features, and the prediction is the PPR-weighted average of the
// embeddings:
//
//	logits(ego) = Σ_i  π̂(ego, v_i)/Σπ̂ · MLP(x_i)
//
// No message passing over edges at all — propagation happened inside the
// PPR computation. Requires Batch.PPRWeights.
type PPRGo struct {
	InDim, Hidden, Classes int
	W1, B1, W2, B2         []float32
}

// NewPPRGo initializes the MLP.
func NewPPRGo(inDim, hidden, classes int, seed int64) *PPRGo {
	rng := rand.New(rand.NewSource(seed))
	return &PPRGo{
		InDim: inDim, Hidden: hidden, Classes: classes,
		W1: xavierInit(inDim, hidden, rng),
		B1: make([]float32, hidden),
		W2: xavierInit(hidden, classes, rng),
		B2: make([]float32, classes),
	}
}

// Params returns the parameter views in a fixed order.
func (m *PPRGo) Params() [][]float32 { return [][]float32{m.W1, m.B1, m.W2, m.B2} }

// NumParams returns the total parameter count.
func (m *PPRGo) NumParams() int { return paramCount(m.Params()) }

// normWeights returns the PPR weights normalized to sum 1 (uniform if the
// batch carries none).
func (m *PPRGo) normWeights(b *Batch) []float32 {
	w := make([]float32, b.N)
	if len(b.PPRWeights) == b.N {
		var s float32
		for _, x := range b.PPRWeights {
			s += x
		}
		if s > 0 {
			for i, x := range b.PPRWeights {
				w[i] = x / s
			}
			return w
		}
	}
	for i := range w {
		w[i] = 1 / float32(b.N)
	}
	return w
}

func (m *PPRGo) forward(b *Batch) (egoLogits, h1 []float32, mask []bool, w []float32) {
	h1 = matMul(b.X, b.N, m.InDim, m.W1, m.Hidden)
	addBiasRows(h1, b.N, m.Hidden, m.B1)
	mask = relu(h1)
	h2 := matMul(h1, b.N, m.Hidden, m.W2, m.Classes)
	addBiasRows(h2, b.N, m.Classes, m.B2)
	w = m.normWeights(b)
	egoLogits = make([]float32, m.Classes)
	for i := 0; i < b.N; i++ {
		row := h2[i*m.Classes : (i+1)*m.Classes]
		for j := 0; j < m.Classes; j++ {
			egoLogits[j] += w[i] * row[j]
		}
	}
	return egoLogits, h1, mask, w
}

// Loss computes cross-entropy on the PPR-weighted prediction.
func (m *PPRGo) Loss(b *Batch) (float32, [][]float32) {
	egoLogits, h1, mask, w := m.forward(b)
	loss, egoGrad := softmaxCrossEntropy(egoLogits, 1, m.Classes, []int{b.EgoLabel})
	// d loss / d h2[i] = w[i] * egoGrad
	gH2 := make([]float32, b.N*m.Classes)
	for i := 0; i < b.N; i++ {
		for j := 0; j < m.Classes; j++ {
			gH2[i*m.Classes+j] = w[i] * egoGrad[j]
		}
	}
	gW2 := matMulATB(h1, b.N, m.Hidden, gH2, m.Classes)
	gB2 := colSums(gH2, b.N, m.Classes)
	gH1 := matMulABT(gH2, b.N, m.Classes, m.W2, m.Hidden)
	reluBackward(gH1, mask)
	gW1 := matMulATB(b.X, b.N, m.InDim, gH1, m.Hidden)
	gB1 := colSums(gH1, b.N, m.Hidden)
	return loss, [][]float32{gW1, gB1, gW2, gB2}
}

// Predict returns the argmax class of the weighted prediction.
func (m *PPRGo) Predict(b *Batch) int {
	egoLogits, _, _, _ := m.forward(b)
	return argmaxRows(egoLogits, 1, m.Classes)[0]
}

// --- shared helpers ---

func colSums(a []float32, m, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out[j] += a[i*n+j]
		}
	}
	return out
}

func paramCount(ps [][]float32) int {
	n := 0
	for _, p := range ps {
		n += len(p)
	}
	return n
}
