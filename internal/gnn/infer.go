package gnn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/core"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
)

// Forwarder is the inference-time face of a model: ego logits for a batch.
// *SAGE, and any model exposing Forward, satisfies it (the training Model
// interface deliberately does not include Forward — training goes through
// Loss).
type Forwarder interface {
	Forward(b *Batch) []float32
}

// InferService is the end-to-end serving pipeline of §4.5 on one compute
// handle: SSPPR from the ego → top-K subgraph induction + cross-machine
// feature slice (ConvertBatch) → model forward → logits. One instance is
// safe for concurrent use (the model is read-only at inference time).
type InferService struct {
	G     *core.DistGraphStorage
	Model Forwarder
	// TopK bounds the batch (ego always included); NumClasses sizes the
	// logits row.
	TopK       int
	NumClasses int
	// PPR configures the SSPPR stage (DefaultConfig when zero-valued Alpha).
	PPR core.Config
	// Latency, when non-nil, observes end-to-end inference seconds.
	Latency *obs.Histogram
}

// InferResult is one served inference.
type InferResult struct {
	Source    int32     `json:"source"`
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits"`
	BatchSize int       `json:"batch_size"`
	Pushes    int64     `json:"pushes"`
}

// Infer serves one inference for a core vertex of the local shard. The whole
// pipeline runs under one trace: a context already carrying a span joins it,
// otherwise the service's tracer makes the sampling decision at an "infer"
// root, and the SSPPR query, every fetch RPC, and the convert phase appear
// as its descendants.
func (s *InferService) Infer(ctx context.Context, sourceLocal int32) (*InferResult, error) {
	return s.InferAs(ctx, sourceLocal, s.PPR.Tenant, s.PPR.Priority)
}

// InferAs is Infer with an explicit admission identity: the SSPPR stage
// charges tenant's quota bucket and waits at priority when the owner runs an
// admission controller. A shed surfaces as an error matching admit.ErrShed.
func (s *InferService) InferAs(ctx context.Context, sourceLocal int32, tenant string, priority int) (*InferResult, error) {
	start := time.Now()
	tr := s.G.Tracer
	var root obs.ActiveSpan
	if sc := obs.FromContext(ctx); sc.Valid() {
		root = tr.StartSpan(sc, "infer")
	} else {
		root = tr.StartTrace("infer")
	}
	ctx = obs.ContextWith(ctx, root.Context())
	res, err := s.infer(ctx, sourceLocal, tenant, priority)
	root.SetErr(err != nil)
	root.End()
	if err != nil {
		metrics.InferFailures.Inc(1)
		return nil, err
	}
	metrics.InferServed.Inc(1)
	if s.Latency != nil {
		s.Latency.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

func (s *InferService) infer(ctx context.Context, sourceLocal int32, tenant string, priority int) (*InferResult, error) {
	cfg := s.PPR
	if cfg.Alpha == 0 {
		cfg = core.DefaultConfig()
	}
	cfg.Tenant = tenant
	cfg.Priority = priority
	m, stats, err := core.RunSSPPR(ctx, s.G, sourceLocal, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("gnn: infer source %d: ssppr: %w", sourceLocal, err)
	}
	b, err := ConvertBatch(ctx, s.G, m, sourceLocal, s.TopK, s.NumClasses)
	if err != nil {
		return nil, fmt.Errorf("gnn: infer source %d: %w", sourceLocal, err)
	}
	logits := s.Model.Forward(b)
	best := 0
	for c := 1; c < len(logits); c++ {
		if logits[c] > logits[best] {
			best = c
		}
	}
	return &InferResult{
		Source:    sourceLocal,
		Class:     best,
		Logits:    logits,
		BatchSize: b.N,
		Pushes:    stats.Pushes,
	}, nil
}

// Handler returns the HTTP face of the service: GET
// /infer?source=N[&tenant=T&priority=P] serves one inference and returns the
// InferResult as JSON. A request shed by the owner's admission controller
// maps to 429 Too Many Requests with a Retry-After header (whole seconds,
// rounded up), so standard HTTP clients back off correctly. Mounted on the
// obs admin server by cmd/pprserve.
func (s *InferService) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		src, err := strconv.ParseInt(q.Get("source"), 10, 32)
		if err != nil {
			http.Error(w, "missing or invalid ?source=<local vertex id>", http.StatusBadRequest)
			return
		}
		priority := 0
		if p := q.Get("priority"); p != "" {
			pv, err := strconv.Atoi(p)
			if err != nil {
				http.Error(w, "invalid ?priority=<int>", http.StatusBadRequest)
				return
			}
			priority = pv
		}
		res, err := s.InferAs(r.Context(), int32(src), q.Get("tenant"), priority)
		if err != nil {
			var shed *admit.ShedError
			if errors.As(err, &shed) {
				secs := int64(shed.RetryAfter+time.Second-1) / int64(time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
}
