package gnn

import (
	"math"
	"math/rand"
)

// Minimal float32 dense math used by the GraphSAGE model. Matrices are
// row-major [rows x cols] slices.

// matMul computes C[m×n] = A[m×k] · B[k×n].
func matMul(a []float32, m, k int, b []float32, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
	return c
}

// matMulATB computes C[k×n] = Aᵀ[k×m] · B[m×n] for A[m×k].
func matMulATB(a []float32, m, k int, b []float32, n int) []float32 {
	c := make([]float32, k*n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		br := b[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			cr := c[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
	return c
}

// matMulABT computes C[m×k] = A[m×n] · Bᵀ[n×k] for B[k×n].
func matMulABT(a []float32, m, n int, b []float32, k int) []float32 {
	c := make([]float32, m*k)
	for i := 0; i < m; i++ {
		ar := a[i*n : (i+1)*n]
		cr := c[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			br := b[j*n : (j+1)*n]
			s := float32(0)
			for p := 0; p < n; p++ {
				s += ar[p] * br[p]
			}
			cr[j] = s
		}
	}
	return c
}

// addBiasRows adds bias[n] to every row of a[m×n], in place.
func addBiasRows(a []float32, m, n int, bias []float32) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += bias[j]
		}
	}
}

// relu applies max(0,x) in place and returns the mask of active entries.
func relu(a []float32) []bool {
	mask := make([]bool, len(a))
	for i, v := range a {
		if v > 0 {
			mask[i] = true
		} else {
			a[i] = 0
		}
	}
	return mask
}

// reluBackward zeroes gradient entries where the activation was clipped.
func reluBackward(grad []float32, mask []bool) {
	for i := range grad {
		if !mask[i] {
			grad[i] = 0
		}
	}
}

// softmaxCrossEntropy computes the mean loss over rows of logits[m×n] with
// integer targets, and the gradient d(loss)/d(logits).
func softmaxCrossEntropy(logits []float32, m, n int, targets []int) (float32, []float32) {
	grad := make([]float32, len(logits))
	loss := float64(0)
	for i := 0; i < m; i++ {
		row := logits[i*n : (i+1)*n]
		grow := grad[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := float64(0)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			grow[j] = float32(e)
			sum += e
		}
		t := targets[i]
		loss += -math.Log(float64(grow[t])/sum + 1e-12)
		inv := float32(1.0 / sum)
		for j := range grow {
			grow[j] *= inv
		}
		grow[t] -= 1
		// Mean over the batch.
		for j := range grow {
			grow[j] /= float32(m)
		}
	}
	return float32(loss / float64(m)), grad
}

// xavierInit fills a [rows x cols] weight matrix with scaled uniform noise.
func xavierInit(rows, cols int, rng *rand.Rand) []float32 {
	w := make([]float32, rows*cols)
	scale := float32(math.Sqrt(6.0 / float64(rows+cols)))
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * scale
	}
	return w
}

// argmaxRows returns the argmax of each row of a[m×n].
func argmaxRows(a []float32, m, n int) []int {
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		best := 0
		for j := 1; j < n; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
