package gnn

// End-to-end serving-pipeline tests (§4.5): SSPPR → top-K subgraph +
// cross-machine feature slice → GraphSAGE forward. These cover the feature
// tier's correctness properties — failover transparency, pooled-buffer
// hygiene, trace unity, cache savings — and ConvertBatch's edge cases.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"pprengine/internal/chaos"
	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/partition"
	"pprengine/internal/pmap"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// detPPR pins the engine for bitwise-reproducible scores: deterministic
// frontier pops on a single push worker.
func detPPR() core.Config {
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-4
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1
	return cfg
}

// inferOnce runs the serving pipeline once from st and returns the logits.
func inferOnce(t *testing.T, st *core.DistGraphStorage, model *SAGE, src int32, cfg core.Config, topK, classes int) []float32 {
	t.Helper()
	q, _, err := core.RunSSPPR(context.Background(), st, src, cfg, nil)
	if err != nil {
		t.Fatalf("ssppr source %d: %v", src, err)
	}
	b, err := ConvertBatch(context.Background(), st, q, src, topK, classes)
	if err != nil {
		t.Fatalf("convert source %d: %v", src, err)
	}
	return model.Forward(b)
}

func wantBitwise(t *testing.T, want, got []float32, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d logits vs %d", what, len(want), len(got))
	}
	for j := range want {
		if math.Float32bits(want[j]) != math.Float32bits(got[j]) {
			t.Fatalf("%s: logit %d = %v, want %v (not bitwise identical)", what, j, got[j], want[j])
		}
	}
}

// TestServeSurvivesPrimaryKill is the failover-transparency bar for the
// serving path: killing a primary mid-inference-stream (so some ConvertBatch
// feature fetch lands on a dead machine and fails over) must not change a
// single logit bit. The reference run and the chaos run share the same
// shards, features, and model; only the fault plan differs.
func TestServeSurvivesPrimaryKill(t *testing.T) {
	const (
		machines = 3
		topK     = 32
		classes  = 4
	)
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 600, NumEdges: 4000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	a, err := partition.Partition(g, machines, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		t.Fatal(err)
	}
	quality := partition.Evaluate(g, a)
	opts := cluster.Options{
		NumMachines: machines, ProcsPerMachine: 1,
		Replicas:      2,
		ProbeInterval: 20 * time.Millisecond, ProbeTimeout: time.Second,
		BreakerThreshold: 2, FailoverTimeout: 2 * time.Second,
	}
	cfg := detPPR()
	tc := DefaultTrainConfig()
	sources := []int32{1, 2, 3, 5, 8, 13, 21, 34}

	runAll := func(c *cluster.Cluster) [][]float32 {
		t.Helper()
		if _, err := Setup(c, tc); err != nil {
			t.Fatal(err)
		}
		model := NewSAGE(tc.FeatureDim, tc.Hidden, tc.NumClasses, 7)
		out := make([][]float32, len(sources))
		for i, src := range sources {
			out[i] = inferOnce(t, c.Storages[0][0], model, src, cfg, topK, classes)
		}
		return out
	}

	ref, err2 := func() (out [][]float32, err error) {
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return runAll(c), nil
	}()
	if err2 != nil {
		t.Fatal(err2)
	}

	// Chaos run: machine 1's listener dies after its first handful of
	// response writes — deep inside the inference stream, possibly mid-way
	// through a ConvertBatch's fetches — and stays dead. Every later fetch
	// for shard 1 must fail over to its replica.
	inj := chaos.New(7)
	const victim = 1
	inj.SetPlan(victim, chaos.Plan{KillAfterWrites: 40})
	haOpts := opts
	haOpts.Chaos = inj
	c, err := cluster.NewFromShards(shards, loc, haOpts, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := runAll(c)

	if kills := inj.Stats(victim).Kills; kills == 0 {
		t.Fatal("fault plan never fired: the kill must land mid-stream for this test to mean anything")
	}
	if c.HAStats().Failovers == 0 {
		t.Fatal("no failovers recorded despite a killed primary")
	}
	for i := range sources {
		wantBitwise(t, ref[i], got[i], "source "+string(rune('0'+i)))
	}
}

// TestConvertBatchReleasesPooledBuffers asserts the serving path's buffer
// hygiene on the zero-copy profile: after the batches are assembled and
// their futures released, every pooled response frame checked out for
// feature and neighbor fetches must be back in its pool.
func TestConvertBatchReleasesPooledBuffers(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 600, NumEdges: 4000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 5, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := DefaultTrainConfig()
	if _, err := Setup(c, tc); err != nil {
		t.Fatal(err)
	}
	cfg := detPPR()
	cfg.ZeroCopy = true

	baseline := metrics.PoolLiveBytes.Load()
	st := c.Storages[0][0]
	for _, src := range []int32{1, 2, 3, 4, 5} {
		q, _, err := core.RunSSPPR(context.Background(), st, src, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ConvertBatch(context.Background(), st, q, src, tc.TopK, tc.NumClasses); err != nil {
			t.Fatal(err)
		}
	}
	// Server-side response buffers are released asynchronously after the
	// write completes; give them a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if live := metrics.PoolLiveBytes.Load(); live == baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled bytes leaked by the serving path: live %d, want baseline %d",
				metrics.PoolLiveBytes.Load(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInferSingleTrace asserts the observability contract of satellite 3:
// one inference yields exactly one trace — a single "infer" root whose
// descendants (the SSPPR query, the convert-phase fetches, and the remote
// feature RPC's server-side span) all carry the root's trace ID.
func TestInferSingleTrace(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 600, NumEdges: 4000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 5, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := DefaultTrainConfig()
	if _, err := Setup(c, tc); err != nil {
		t.Fatal(err)
	}
	svc := &InferService{
		G:          c.Storages[0][0],
		Model:      NewSAGE(tc.FeatureDim, tc.Hidden, tc.NumClasses, 7),
		TopK:       tc.TopK,
		NumClasses: tc.NumClasses,
		PPR:        detPPR(),
	}
	if _, err := svc.Infer(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	spans := c.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded at TraceSample 1")
	}
	var trace uint64
	roots, featRPCs := 0, 0
	for _, s := range spans {
		if s.Name == "infer" {
			if s.Parent != 0 {
				t.Fatalf("infer span has parent %d, want root", s.Parent)
			}
			roots++
			trace = s.Trace
		}
	}
	if roots != 1 {
		t.Fatalf("got %d infer root spans, want exactly 1", roots)
	}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %q on trace %x, want every span on the infer trace %x", s.Name, s.Trace, trace)
		}
		if s.Name == "rpc:FetchFeatures" {
			featRPCs++
		}
	}
	if featRPCs == 0 {
		t.Fatal("no rpc:FetchFeatures span joined the trace — feature fetches lost their trace context")
	}
}

// TestFeatureCacheCutsServeRPCs re-checks the bench's acceptance bar in
// miniature: with the feature cache and fetch aggregation on, repeating an
// inference set must at least halve the feature wire requests (the working
// set is resident after round one) at bitwise-identical logits.
func TestFeatureCacheCutsServeRPCs(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 600, NumEdges: 4000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	c, err := cluster.New(g, cluster.Options{
		NumMachines: 2, ProcsPerMachine: 1, Seed: 5,
		FeatCacheBytes: 8 << 20,
		AggWindow:      200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := DefaultTrainConfig()
	if _, err := Setup(c, tc); err != nil {
		t.Fatal(err)
	}
	model := NewSAGE(tc.FeatureDim, tc.Hidden, tc.NumClasses, 7)
	cfg := detPPR()
	sources := []int32{1, 2, 3, 4, 5, 6}
	st := c.Storages[0][0]

	featRPCs := func() int64 {
		var n int64
		for _, s := range c.Servers {
			n += s.RPCStats().Requests[rpc.MethodFetchFeatures]
		}
		return n
	}
	round := func() [][]float32 {
		out := make([][]float32, len(sources))
		for i, src := range sources {
			out[i] = inferOnce(t, st, model, src, cfg, tc.TopK, tc.NumClasses)
		}
		return out
	}

	n0 := featRPCs()
	first := round()
	n1 := featRPCs()
	second := round()
	n2 := featRPCs()

	cold, warm := n1-n0, n2-n1
	if cold == 0 {
		t.Fatal("no feature RPCs at all: batches never crossed a machine boundary")
	}
	if 2*warm > cold {
		t.Fatalf("feature cache saved too little: %d RPCs cold round vs %d warm (want >= 2x fewer)", cold, warm)
	}
	for i := range sources {
		wantBitwise(t, first[i], second[i], "warm round")
	}
	if c.FeatCacheStats().Hits == 0 {
		t.Fatal("feature cache recorded no hits")
	}
}

// TestConvertBatchForcesEgo covers the top-K edge case: when the ego scores
// below the cut and the ranked list already fills topK slots, the ego
// replaces the last slot instead of growing the batch past topK.
func TestConvertBatchForcesEgo(t *testing.T) {
	c := trainCluster(t)
	tc := DefaultTrainConfig()
	if _, err := Setup(c, tc); err != nil {
		t.Fatal(err)
	}
	st := c.Storages[0][0]
	cfg := detPPR()
	q, _, err := core.RunSSPPR(context.Background(), st, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := q.Scores()
	const topK = 8
	if len(scores) <= topK {
		t.Fatalf("need more than %d scored vertices to force the ego out, got %d", topK, len(scores))
	}
	// Pick a shard-0 core vertex the walk never reached: score zero, so it
	// cannot be in the top-8, and ConvertBatch must force it in.
	ego := int32(-1)
	for v := int32(0); v < int32(c.Shards[0].NumCore()); v++ {
		if _, ok := scores[pmap.Key{Local: v, Shard: 0}]; !ok {
			ego = v
			break
		}
	}
	if ego < 0 {
		t.Skip("every shard-0 vertex was scored; cannot build the edge case")
	}
	b, err := ConvertBatch(context.Background(), st, q, ego, topK, tc.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != topK {
		t.Fatalf("batch size %d, want exactly topK=%d (ego replaces the last slot)", b.N, topK)
	}
	if b.EgoIdx != topK-1 {
		t.Fatalf("ego index %d, want %d (the replaced last slot)", b.EgoIdx, topK-1)
	}
	if w := b.PPRWeights[b.EgoIdx]; w != 0 {
		t.Fatalf("forced ego's PPR weight = %v, want 0 (it was never scored)", w)
	}
}

// TestConvertBatchNoFeatureStore asserts the typed error for a cluster that
// never attached features — both when the ego's own shard lacks them (local
// path) and when only a remote shard lacks them (error crosses the wire and
// is remapped to the sentinel).
func TestConvertBatchNoFeatureStore(t *testing.T) {
	c := trainCluster(t)
	st := c.Storages[0][0]
	cfg := detPPR()
	q, _, err := core.RunSSPPR(context.Background(), st, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultTrainConfig()
	if _, err := ConvertBatch(context.Background(), st, q, 3, tc.TopK, tc.NumClasses); !errors.Is(err, core.ErrNoFeatureStore) {
		t.Fatalf("local: err = %v, want errors.Is ErrNoFeatureStore", err)
	}

	// Attach features on machine 0 only: the local slice succeeds, the
	// remote fetch must surface the same sentinel through the RPC error.
	feats := MakeFeatures(c.Shards[0], tc.FeatureDim, tc.NumClasses, 1)
	if err := c.Servers[0].AttachFeatures(tc.FeatureDim, feats); err != nil {
		t.Fatal(err)
	}
	st.AttachLocalFeatures(tc.FeatureDim, feats)
	if _, err := ConvertBatch(context.Background(), st, q, 3, tc.TopK, tc.NumClasses); !errors.Is(err, core.ErrNoFeatureStore) {
		t.Fatalf("remote: err = %v, want errors.Is ErrNoFeatureStore", err)
	}
}

// TestConvertBatchDimMismatch asserts the typed error when shards disagree
// on the feature dimension.
func TestConvertBatchDimMismatch(t *testing.T) {
	c := trainCluster(t)
	tc := DefaultTrainConfig()
	feats0 := MakeFeatures(c.Shards[0], 8, tc.NumClasses, 1)
	if err := c.Servers[0].AttachFeatures(8, feats0); err != nil {
		t.Fatal(err)
	}
	c.Storages[0][0].AttachLocalFeatures(8, feats0)
	feats1 := MakeFeatures(c.Shards[1], 16, tc.NumClasses, 2)
	if err := c.Servers[1].AttachFeatures(16, feats1); err != nil {
		t.Fatal(err)
	}

	st := c.Storages[0][0]
	cfg := detPPR()
	q, _, err := core.RunSSPPR(context.Background(), st, 3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertBatch(context.Background(), st, q, 3, tc.TopK, tc.NumClasses); !errors.Is(err, ErrFeatureDimMismatch) {
		t.Fatalf("err = %v, want errors.Is ErrFeatureDimMismatch", err)
	}
}
