package gnn

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
)

// ModelKind selects the architecture for the case study.
type ModelKind int

const (
	// ModelSAGE is the paper's ShaDow-SAGE setup (default).
	ModelSAGE ModelKind = iota
	// ModelGCN swaps in a two-layer GCN over the same PPR subgraphs.
	ModelGCN
	// ModelPPRGo uses PPR scores directly as propagation weights
	// (no message passing; paper §2 background).
	ModelPPRGo
)

// NewModel constructs the selected architecture.
func (k ModelKind) NewModel(inDim, hidden, classes int, seed int64) Model {
	switch k {
	case ModelGCN:
		return NewGCN(inDim, hidden, classes, seed)
	case ModelPPRGo:
		return NewPPRGo(inDim, hidden, classes, seed)
	default:
		return NewSAGE(inDim, hidden, classes, seed)
	}
}

// TrainConfig parameterizes the distributed training run of Figure 7.
type TrainConfig struct {
	Model         ModelKind
	Epochs        int
	BatchesPerEpc int // mini-batches per machine per epoch
	TopK          int // PPR subgraph size
	FeatureDim    int
	Hidden        int
	NumClasses    int
	LR            float64
	PPR           core.Config
	Seed          int64
}

// DefaultTrainConfig returns a small but non-trivial setup.
func DefaultTrainConfig() TrainConfig {
	ppr := core.DefaultConfig()
	ppr.Eps = 1e-4 // the paper notes eps=1e-4 suffices for GNN tasks (§4.2)
	return TrainConfig{
		Epochs:        3,
		BatchesPerEpc: 8,
		TopK:          32,
		FeatureDim:    32,
		Hidden:        32,
		NumClasses:    4,
		LR:            0.01,
		PPR:           ppr,
		Seed:          1,
	}
}

// EpochStats reports one epoch of distributed training.
type EpochStats struct {
	Epoch    int
	MeanLoss float32
	Accuracy float64 // ego-classification accuracy over the epoch's batches
}

// Setup attaches synthetic features to every cluster machine and returns
// per-machine allreduce endpoints (the hub lives on machine 0).
//
// With replication on, every replica server of shard s gets the same
// feature block as s's primary — a replica that serves a failover feature
// fetch must return bitwise-identical rows, or inference results would
// change across a primary kill.
func Setup(c *cluster.Cluster, cfg TrainConfig) ([]*AllreduceClient, error) {
	hub := NewAllreduceHub(c.Opts.NumMachines)
	hub.RegisterHandler(c.Servers[0].Handle)
	ends := make([]*AllreduceClient, c.Opts.NumMachines)
	featsOf := make([][]float32, len(c.Servers))
	for m := range c.Servers {
		feats := MakeFeatures(c.Shards[m], cfg.FeatureDim, cfg.NumClasses, cfg.Seed+int64(m))
		featsOf[m] = feats
		if err := c.Servers[m].AttachFeatures(cfg.FeatureDim, feats); err != nil {
			return nil, err
		}
		for _, st := range c.Storages[m] {
			st.AttachLocalFeatures(cfg.FeatureDim, feats)
		}
		if m == 0 {
			ends[m] = &AllreduceClient{Hub: hub}
		} else {
			// Reuse the first compute process's client to machine 0.
			ends[m] = &AllreduceClient{Client: c.Storages[m][0].Clients[0]}
		}
	}
	for _, machine := range c.ReplicaServers {
		for _, rs := range machine {
			if err := rs.AttachFeatures(cfg.FeatureDim, featsOf[rs.Shard.ShardID]); err != nil {
				return nil, err
			}
		}
	}
	return ends, nil
}

// TrainDistributed runs data-parallel ShaDow-SAGE training over the
// cluster: each machine trains on mini-batches of its own core vertices
// (one compute process per machine), builds subgraphs with the PPR engine,
// and synchronizes gradients through the allreduce hub every step. All
// replicas start from the same seed and apply identical averaged gradients,
// so they stay bit-identical — the DistributedDataParallel contract.
//
// ctx bounds the whole run: it is threaded into every PPR query and
// allreduce wait, so cancelling it stops training at the next batch
// boundary on every machine.
func TrainDistributed(ctx context.Context, c *cluster.Cluster, cfg TrainConfig) ([]EpochStats, Model, error) {
	ends, err := Setup(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	world := c.Opts.NumMachines
	models := make([]Model, world)
	opts := make([]*Adam, world)
	for m := 0; m < world; m++ {
		models[m] = cfg.Model.NewModel(cfg.FeatureDim, cfg.Hidden, cfg.NumClasses, cfg.Seed)
		opts[m] = NewAdam(models[m].Params(), cfg.LR)
	}
	stats := make([]EpochStats, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var mu sync.Mutex
		var lossSum float64
		var correct, total int
		var firstErr error
		var wg sync.WaitGroup
		for m := 0; m < world; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(epoch*1000+m)))
				st := c.Storages[m][0]
				model := models[m]
				for bi := 0; bi < cfg.BatchesPerEpc; bi++ {
					ego := int32(rng.Intn(c.Shards[m].NumCore()))
					q, _, err := core.RunSSPPR(ctx, st, ego, cfg.PPR, nil)
					if err == nil {
						var b *Batch
						b, err = ConvertBatch(ctx, st, q, ego, cfg.TopK, cfg.NumClasses)
						if err == nil {
							loss, grads := model.Loss(b)
							flat := FlattenGrads(grads)
							mean, aerr := ends[m].SyncCtx(ctx, flat)
							if aerr != nil {
								err = aerr
							} else {
								opts[m].Step(model.Params(), UnflattenInto(mean, model.Params()))
								pred := model.Predict(b)
								mu.Lock()
								lossSum += float64(loss)
								total++
								if pred == b.EgoLabel {
									correct++
								}
								mu.Unlock()
							}
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("gnn: machine %d batch %d: %w", m, bi, err)
						}
						mu.Unlock()
						// Keep contributing zero gradients so peers don't
						// deadlock in the allreduce barrier.
						zero := make([]float32, models[m].NumParams())
						for rest := bi; rest < cfg.BatchesPerEpc; rest++ {
							ends[m].Sync(zero)
						}
						return
					}
				}
			}(m)
		}
		wg.Wait()
		if firstErr != nil {
			return stats, nil, firstErr
		}
		es := EpochStats{Epoch: epoch}
		if total > 0 {
			es.MeanLoss = float32(lossSum / float64(total))
			es.Accuracy = float64(correct) / float64(total)
		}
		stats = append(stats, es)
	}
	return stats, models[0], nil
}

// Evaluate measures ego-classification accuracy of a trained model on
// held-out vertices (drawn with a seed disjoint from training). The
// evaluation runs on machine 0's compute process; features must already be
// attached (Setup or TrainDistributed). ctx bounds the whole evaluation.
func Evaluate(ctx context.Context, c *cluster.Cluster, cfg TrainConfig, model Model, samples int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	st := c.Storages[0][0]
	correct := 0
	for i := 0; i < samples; i++ {
		ego := int32(rng.Intn(c.Shards[0].NumCore()))
		q, _, err := core.RunSSPPR(ctx, st, ego, cfg.PPR, nil)
		if err != nil {
			return 0, err
		}
		b, err := ConvertBatch(ctx, st, q, ego, cfg.TopK, cfg.NumClasses)
		if err != nil {
			return 0, err
		}
		if model.Predict(b) == b.EgoLabel {
			correct++
		}
	}
	return float64(correct) / float64(samples), nil
}
