package gnn

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/pmap"
)

// ErrFeatureDimMismatch reports shards that disagree on the feature
// dimension — a deployment wiring error, surfaced as a typed error so
// serving layers can distinguish it from transport failures.
var ErrFeatureDimMismatch = errors.New("gnn: inconsistent feature dims across shards")

// ConvertBatch is the paper's convert_batch (§4.5): given an SSPPR result
// for an ego vertex, it takes the top-K scored vertices (always including
// the ego), induces their subgraph by fetching neighbor lists through the
// distributed storage, and slices their features from the cross-machine
// feature store. Each row's PPR mass rides along with the feature fetch as
// the cache-admission signal. The result is a model-ready Batch. ctx bounds
// all the fetches.
func ConvertBatch(ctx context.Context, g *core.DistGraphStorage, m *core.SSPPR, egoLocal int32, topK, numClasses int) (*Batch, error) {
	scores := m.Scores()
	ego := pmap.Key{Local: egoLocal, Shard: g.ShardID}
	// Rank by score, keep topK, force the ego in.
	keys := topKeys(scores, topK)
	hasEgo := false
	for _, k := range keys {
		if k == ego {
			hasEgo = true
			break
		}
	}
	if !hasEgo {
		if len(keys) == topK && topK > 0 {
			keys[len(keys)-1] = ego
		} else {
			keys = append(keys, ego)
		}
	}
	index := make(map[pmap.Key]int32, len(keys))
	for i, k := range keys {
		index[k] = int32(i)
	}
	// Group by shard for neighbor-info and feature fetches; each row's PPR
	// mass travels with the feature request as the admission signal.
	byShard := make([][]int32, g.NumShards)
	rowOf := make([][]int32, g.NumShards) // batch index per fetched row
	massBy := make([][]float64, g.NumShards)
	for i, k := range keys {
		byShard[k.Shard] = append(byShard[k.Shard], k.Local)
		rowOf[k.Shard] = append(rowOf[k.Shard], int32(i))
		massBy[k.Shard] = append(massBy[k.Shard], scores[k])
	}
	// Issue everything asynchronously (remote shards overlap).
	infoFuts := make([]*core.InfoFuture, g.NumShards)
	featFuts := make([]*core.FeatureFuture, g.NumShards)
	// Every future's pooled payload goes home when the batch assembly is
	// done with it — including on error paths (Release is idempotent and
	// nil-safe, and a no-op on unresolved futures).
	defer func() {
		for _, f := range infoFuts {
			f.Release()
		}
		for _, f := range featFuts {
			f.Release()
		}
	}()
	for sh := int32(0); sh < g.NumShards; sh++ {
		if len(byShard[sh]) == 0 {
			continue
		}
		infoFuts[sh] = g.GetNeighborInfos(ctx, sh, byShard[sh], core.Config{Mode: core.FetchBatchCompress})
		featFuts[sh] = g.FetchFeaturesMass(ctx, sh, byShard[sh], massBy[sh])
	}
	b := &Batch{N: len(keys)}
	var dim int
	// Assemble features. featRows may alias pooled response payloads until
	// the copy into b.X below, which is why the futures stay unreleased
	// until the deferred sweep.
	featRows := make([][]float32, len(keys))
	for sh := int32(0); sh < g.NumShards; sh++ {
		if featFuts[sh] == nil {
			continue
		}
		feats, d, err := featFuts[sh].WaitCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("gnn: feature fetch shard %d: %w", sh, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("gnn: shard %d reported non-positive feature dim %d", sh, d)
		}
		if dim == 0 {
			dim = d
		} else if dim != d {
			return nil, fmt.Errorf("%w: %d vs %d (shard %d)", ErrFeatureDimMismatch, dim, d, sh)
		}
		for i, row := range rowOf[sh] {
			featRows[row] = feats[i*d : (i+1)*d]
		}
	}
	b.X = make([]float32, len(keys)*dim)
	for i, row := range featRows {
		copy(b.X[i*dim:(i+1)*dim], row)
	}
	// Induce edges: keep only neighbors inside the batch. Edge direction
	// src -> dst means messages flow along graph edges.
	for sh := int32(0); sh < g.NumShards; sh++ {
		if infoFuts[sh] == nil {
			continue
		}
		batch, err := infoFuts[sh].WaitCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("gnn: neighbor fetch shard %d: %w", sh, err)
		}
		for i := 0; i < batch.NumRows(); i++ {
			srcIdx := rowOf[sh][i]
			nl, ns, _, _, _ := batch.Row(i)
			for j := range nl {
				if dstIdx, ok := index[pmap.Key{Local: nl[j], Shard: ns[j]}]; ok {
					b.EdgeSrc = append(b.EdgeSrc, srcIdx)
					b.EdgeDst = append(b.EdgeDst, dstIdx)
				}
			}
		}
	}
	b.EgoIdx = int(index[ego])
	egoGlobal := g.Locator.Global(ego.Shard, ego.Local)
	b.EgoLabel = LabelOf(egoGlobal, numClasses)
	b.PPRWeights = make([]float32, len(keys))
	for i, k := range keys {
		b.PPRWeights[i] = float32(scores[k])
	}
	return b, nil
}

// topKeys returns up to k keys with the highest scores (descending; ties by
// key for determinism).
func topKeys(scores map[pmap.Key]float64, k int) []pmap.Key {
	type kv struct {
		k pmap.Key
		v float64
	}
	items := make([]kv, 0, len(scores))
	for key, v := range scores {
		items = append(items, kv{key, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		if items[i].k.Shard != items[j].k.Shard {
			return items[i].k.Shard < items[j].k.Shard
		}
		return items[i].k.Local < items[j].k.Local
	})
	if k > len(items) {
		k = len(items)
	}
	out := make([]pmap.Key, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].k
	}
	return out
}

// LabelOfGlobal is a convenience wrapper for tests.
func LabelOfGlobal(v graph.NodeID, numClasses int) int { return LabelOf(v, numClasses) }
