// Package gnn implements the paper's case study (§4.5, Figure 7):
// distributed mini-batch GNN training where every mini-batch subgraph is
// built from top-K SSPPR scores computed by the engine (ShaDow-SAGE style).
//
// It provides a synthetic feature/label store, the convert_batch subgraph
// induction, a float32 GraphSAGE model with manual backpropagation, Adam,
// and an RPC-based gradient allreduce so the simulated machines train a
// shared model.
package gnn

import (
	"math/rand"

	"pprengine/internal/graph"
	"pprengine/internal/shard"
)

// LabelOf assigns a deterministic synthetic class to every global node ID.
// The class structure is recoverable from features (see MakeFeatures), so a
// working training loop drives the loss down.
func LabelOf(global graph.NodeID, numClasses int) int {
	x := uint64(uint32(global))
	x ^= x >> 16
	x *= 0x45d9f3b
	x ^= x >> 16
	return int(x % uint64(numClasses))
}

// MakeFeatures builds the feature block for one shard: each node's feature
// vector is a noisy embedding of its label — class c contributes a bump on
// coordinates [c*dim/numClasses, (c+1)*dim/numClasses). Row-major
// [NumCore x dim].
func MakeFeatures(s *shard.Shard, dim, numClasses int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, s.NumCore()*dim)
	span := dim / numClasses
	if span == 0 {
		span = 1
	}
	for i, gv := range s.CoreGlobal {
		c := LabelOf(gv, numClasses)
		row := out[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = float32(rng.NormFloat64()) * 0.3
		}
		lo := c * span
		for j := lo; j < lo+span && j < dim; j++ {
			row[j] += 1.0
		}
	}
	return out
}
