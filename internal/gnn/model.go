package gnn

import (
	"math"
	"math/rand"
)

// SAGE is a two-layer GraphSAGE classifier with mean aggregation:
//
//	h1 = ReLU(X·W1self + mean_nbr(X)·W1nbr + b1)
//	logits = h1·W2self + mean_nbr(h1)·W2nbr + b2
//
// The loss is softmax cross-entropy on the batch's ego vertices (ShaDow
// style: each subgraph classifies its root).
type SAGE struct {
	InDim, Hidden, Classes int
	// Parameters, in the fixed Params() order.
	W1self, W1nbr, B1 []float32
	W2self, W2nbr, B2 []float32
}

// NewSAGE initializes a model with Xavier weights from the given seed (all
// machines must use the same seed so data-parallel replicas start equal).
func NewSAGE(inDim, hidden, classes int, seed int64) *SAGE {
	rng := rand.New(rand.NewSource(seed))
	return &SAGE{
		InDim: inDim, Hidden: hidden, Classes: classes,
		W1self: xavierInit(inDim, hidden, rng),
		W1nbr:  xavierInit(inDim, hidden, rng),
		B1:     make([]float32, hidden),
		W2self: xavierInit(hidden, classes, rng),
		W2nbr:  xavierInit(hidden, classes, rng),
		B2:     make([]float32, classes),
	}
}

// Params returns views of all parameter slices in a fixed order.
func (m *SAGE) Params() [][]float32 {
	return [][]float32{m.W1self, m.W1nbr, m.B1, m.W2self, m.W2nbr, m.B2}
}

// NumParams returns the total parameter count.
func (m *SAGE) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p)
	}
	return n
}

// FlattenGrads concatenates gradient slices (same order as Params).
func FlattenGrads(grads [][]float32) []float32 {
	n := 0
	for _, g := range grads {
		n += len(g)
	}
	out := make([]float32, 0, n)
	for _, g := range grads {
		out = append(out, g...)
	}
	return out
}

// UnflattenInto splits flat back into the shapes of like (Params order).
func UnflattenInto(flat []float32, like [][]float32) [][]float32 {
	out := make([][]float32, len(like))
	off := 0
	for i, p := range like {
		out[i] = flat[off : off+len(p)]
		off += len(p)
	}
	return out
}

// Batch is one mini-batch subgraph in the model's input format: node
// features, a directed edge list over batch-local indices (messages flow
// src -> dst), the ego vertex index, and its label.
type Batch struct {
	X        []float32 // [N x InDim]
	N        int
	EdgeSrc  []int32
	EdgeDst  []int32
	EgoIdx   int
	EgoLabel int
	// PPRWeights optionally carries each vertex's PPR score w.r.t. the ego
	// (PPRGo-style models consume it; message-passing models ignore it).
	PPRWeights []float32
}

// meanAggregate computes, for every node, the mean of its in-neighbors'
// rows of h[n×d] according to the batch edges. Nodes with no in-edges get a
// zero row.
func meanAggregate(b *Batch, h []float32, d int) []float32 {
	out := make([]float32, b.N*d)
	deg := make([]float32, b.N)
	for e := range b.EdgeSrc {
		src, dst := b.EdgeSrc[e], b.EdgeDst[e]
		hr := h[int(src)*d : (int(src)+1)*d]
		or := out[int(dst)*d : (int(dst)+1)*d]
		for j := 0; j < d; j++ {
			or[j] += hr[j]
		}
		deg[dst]++
	}
	for i := 0; i < b.N; i++ {
		if deg[i] == 0 {
			continue
		}
		inv := 1 / deg[i]
		row := out[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] *= inv
		}
	}
	return out
}

// meanAggregateBackward routes gradient gOut (w.r.t. the aggregated rows)
// back to the input rows: gIn[src] += gOut[dst]/deg(dst).
func meanAggregateBackward(b *Batch, gOut []float32, d int) []float32 {
	gIn := make([]float32, b.N*d)
	deg := make([]float32, b.N)
	for e := range b.EdgeDst {
		deg[b.EdgeDst[e]]++
	}
	for e := range b.EdgeSrc {
		src, dst := b.EdgeSrc[e], b.EdgeDst[e]
		inv := 1 / deg[dst]
		gr := gOut[int(dst)*d : (int(dst)+1)*d]
		ir := gIn[int(src)*d : (int(src)+1)*d]
		for j := 0; j < d; j++ {
			ir[j] += gr[j] * inv
		}
	}
	return gIn
}

// Forward runs the model on a batch and returns the ego logits.
func (m *SAGE) Forward(b *Batch) []float32 {
	logits, _, _ := m.forward(b)
	return logits[b.EgoIdx*m.Classes : (b.EgoIdx+1)*m.Classes]
}

// forward returns logits[n×C], the hidden layer, and its ReLU mask.
func (m *SAGE) forward(b *Batch) (logits, h1 []float32, mask []bool) {
	agg0 := meanAggregate(b, b.X, m.InDim)
	h1 = matMul(b.X, b.N, m.InDim, m.W1self, m.Hidden)
	hn := matMul(agg0, b.N, m.InDim, m.W1nbr, m.Hidden)
	for i := range h1 {
		h1[i] += hn[i]
	}
	addBiasRows(h1, b.N, m.Hidden, m.B1)
	mask = relu(h1)
	agg1 := meanAggregate(b, h1, m.Hidden)
	logits = matMul(h1, b.N, m.Hidden, m.W2self, m.Classes)
	ln := matMul(agg1, b.N, m.Hidden, m.W2nbr, m.Classes)
	for i := range logits {
		logits[i] += ln[i]
	}
	addBiasRows(logits, b.N, m.Classes, m.B2)
	return logits, h1, mask
}

// Loss runs forward + backward on one batch and returns the cross-entropy
// loss at the ego vertex and the parameter gradients (Params order).
func (m *SAGE) Loss(b *Batch) (float32, [][]float32) {
	logits, h1, mask := m.forward(b)
	// Cross-entropy only at the ego row: build a 1-row view.
	egoLogits := logits[b.EgoIdx*m.Classes : (b.EgoIdx+1)*m.Classes]
	loss, egoGrad := softmaxCrossEntropy(egoLogits, 1, m.Classes, []int{b.EgoLabel})
	gLogits := make([]float32, len(logits))
	copy(gLogits[b.EgoIdx*m.Classes:(b.EgoIdx+1)*m.Classes], egoGrad)

	agg1 := meanAggregate(b, h1, m.Hidden)
	gW2self := matMulATB(h1, b.N, m.Hidden, gLogits, m.Classes)
	gW2nbr := matMulATB(agg1, b.N, m.Hidden, gLogits, m.Classes)
	gB2 := make([]float32, m.Classes)
	for i := 0; i < b.N; i++ {
		for j := 0; j < m.Classes; j++ {
			gB2[j] += gLogits[i*m.Classes+j]
		}
	}
	// Grad wrt h1 via both branches.
	gH1 := matMulABT(gLogits, b.N, m.Classes, m.W2self, m.Hidden)
	gAgg1 := matMulABT(gLogits, b.N, m.Classes, m.W2nbr, m.Hidden)
	gH1agg := meanAggregateBackward(b, gAgg1, m.Hidden)
	for i := range gH1 {
		gH1[i] += gH1agg[i]
	}
	reluBackward(gH1, mask)

	agg0 := meanAggregate(b, b.X, m.InDim)
	gW1self := matMulATB(b.X, b.N, m.InDim, gH1, m.Hidden)
	gW1nbr := matMulATB(agg0, b.N, m.InDim, gH1, m.Hidden)
	gB1 := make([]float32, m.Hidden)
	for i := 0; i < b.N; i++ {
		for j := 0; j < m.Hidden; j++ {
			gB1[j] += gH1[i*m.Hidden+j]
		}
	}
	return loss, [][]float32{gW1self, gW1nbr, gB1, gW2self, gW2nbr, gB2}
}

// Predict returns the argmax class for the batch's ego vertex.
func (m *SAGE) Predict(b *Batch) int {
	logits := m.Forward(b)
	return argmaxRows(logits, 1, m.Classes)[0]
}

// Adam is a standard Adam optimizer over a model's parameter slices.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  [][]float32
}

// NewAdam returns an optimizer with the usual defaults for the given
// parameter shapes.
func NewAdam(params [][]float32, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, len(p))
		a.v[i] = make([]float32, len(p))
	}
	return a
}

// Step applies one update of params -= lr * m̂/(sqrt(v̂)+eps).
func (a *Adam) Step(params, grads [][]float32) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i]
		mi, vi := a.m[i], a.v[i]
		for j := range p {
			gj := float64(g[j])
			mj := a.Beta1*float64(mi[j]) + (1-a.Beta1)*gj
			vj := a.Beta2*float64(vi[j]) + (1-a.Beta2)*gj*gj
			mi[j] = float32(mj)
			vi[j] = float32(vj)
			p[j] -= float32(a.LR * (mj / bc1) / (math.Sqrt(vj/bc2) + a.Eps))
		}
	}
}
