package gnn

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/rpc"
)

func TestMatMulBasics(t *testing.T) {
	// A = [[1,2],[3,4]], B = [[5,6],[7,8]]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := matMul(a, 2, 2, b, 2)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("matMul[%d] = %v", i, c[i])
		}
	}
	// AᵀB with A as 2x2.
	ct := matMulATB(a, 2, 2, b, 2)
	want = []float32{26, 30, 38, 44}
	for i := range want {
		if ct[i] != want[i] {
			t.Fatalf("matMulATB[%d] = %v", i, ct[i])
		}
	}
	// ABᵀ.
	cbt := matMulABT(a, 2, 2, b, 2)
	want = []float32{17, 23, 39, 53}
	for i := range want {
		if cbt[i] != want[i] {
			t.Fatalf("matMulABT[%d] = %v", i, cbt[i])
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Uniform logits: loss = ln(n).
	logits := []float32{0, 0, 0}
	loss, grad := softmaxCrossEntropy(logits, 1, 3, []int{1})
	if math.Abs(float64(loss)-math.Log(3)) > 1e-5 {
		t.Fatalf("loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero and is negative at the target.
	sum := float32(0)
	for _, g := range grad {
		sum += g
	}
	if math.Abs(float64(sum)) > 1e-6 || grad[1] >= 0 {
		t.Fatalf("grad = %v", grad)
	}
}

func TestMeanAggregate(t *testing.T) {
	b := &Batch{N: 3, EdgeSrc: []int32{0, 1, 0}, EdgeDst: []int32{2, 2, 1}}
	h := []float32{1, 2, 3, 4, 5, 6} // 3 nodes x dim 2
	agg := meanAggregate(b, h, 2)
	// node2 gets mean(h0,h1) = (2,3); node1 gets h0 = (1,2); node0 zero.
	want := []float32{0, 0, 1, 2, 2, 3}
	for i := range want {
		if agg[i] != want[i] {
			t.Fatalf("agg = %v", agg)
		}
	}
}

// TestGradientCheck verifies Loss's analytic gradients against numerical
// differentiation on a tiny model and batch.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSAGE(3, 4, 2, 7)
	b := &Batch{
		N:        4,
		X:        make([]float32, 12),
		EdgeSrc:  []int32{0, 1, 2, 3, 1},
		EdgeDst:  []int32{1, 0, 3, 2, 2},
		EgoIdx:   1,
		EgoLabel: 1,
	}
	for i := range b.X {
		b.X[i] = float32(rng.NormFloat64())
	}
	_, grads := m.Loss(b)
	params := m.Params()
	const h = 1e-3
	checked := 0
	for pi, p := range params {
		for j := 0; j < len(p); j += 3 { // sample every 3rd coordinate
			orig := p[j]
			p[j] = orig + h
			lp, _ := m.Loss(b)
			p[j] = orig - h
			lm, _ := m.Loss(b)
			p[j] = orig
			num := (float64(lp) - float64(lm)) / (2 * h)
			ana := float64(grads[pi][j])
			if math.Abs(num-ana) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: numerical %v vs analytic %v", pi, j, num, ana)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("only %d coords checked", checked)
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	// Minimize f(x) = sum x_i^2 from x=1.
	x := []float32{1, 1, 1}
	params := [][]float32{x}
	opt := NewAdam(params, 0.1)
	f := func() float32 {
		s := float32(0)
		for _, v := range x {
			s += v * v
		}
		return s
	}
	start := f()
	for i := 0; i < 200; i++ {
		g := []float32{2 * x[0], 2 * x[1], 2 * x[2]}
		opt.Step(params, [][]float32{g})
	}
	if f() > start/100 {
		t.Fatalf("Adam failed to optimize: %v -> %v", start, f())
	}
}

func TestFlattenUnflatten(t *testing.T) {
	a := [][]float32{{1, 2}, {3}, {4, 5, 6}}
	flat := FlattenGrads(a)
	if len(flat) != 6 || flat[3] != 4 {
		t.Fatalf("flat = %v", flat)
	}
	back := UnflattenInto(flat, a)
	if len(back) != 3 || back[2][2] != 6 || len(back[1]) != 1 {
		t.Fatalf("back = %v", back)
	}
}

func TestLabelOfStable(t *testing.T) {
	seen := map[int]int{}
	for v := graph.NodeID(0); v < 1000; v++ {
		l := LabelOf(v, 4)
		if l < 0 || l >= 4 {
			t.Fatalf("label %d", l)
		}
		if l != LabelOf(v, 4) {
			t.Fatal("unstable label")
		}
		seen[l]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] < 100 {
			t.Fatalf("class %d underrepresented: %v", c, seen)
		}
	}
}

func TestAllreduceHubLocal(t *testing.T) {
	hub := NewAllreduceHub(3)
	var wg sync.WaitGroup
	results := make([][]float32, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			grad := []float32{float32(i), 1}
			mean, err := hub.Contribute(grad)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = mean
		}(i)
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if results[i] == nil || results[i][0] != 1 || results[i][1] != 1 {
			t.Fatalf("rank %d mean = %v", i, results[i])
		}
	}
	// Second round works too.
	done := make(chan []float32, 3)
	for i := 0; i < 3; i++ {
		go func() {
			m, _ := hub.Contribute([]float32{2, 2})
			done <- m
		}()
	}
	for i := 0; i < 3; i++ {
		m := <-done
		if m[0] != 2 {
			t.Fatalf("round 2 mean = %v", m)
		}
	}
}

func TestAllreduceOverRPC(t *testing.T) {
	hub := NewAllreduceHub(2)
	srv := rpc.NewServer()
	hub.RegisterHandler(srv.Handle)
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	local := &AllreduceClient{Hub: hub}
	remote := &AllreduceClient{Client: cl}
	var localMean, remoteMean []float32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); localMean, _ = local.Sync([]float32{0, 4}) }()
	go func() { defer wg.Done(); remoteMean, _ = remote.Sync([]float32{2, 0}) }()
	wg.Wait()
	for _, m := range [][]float32{localMean, remoteMean} {
		if m == nil || m[0] != 1 || m[1] != 2 {
			t.Fatalf("mean = %v", m)
		}
	}
}

func TestAllreduceSizeMismatch(t *testing.T) {
	hub := NewAllreduceHub(2)
	go hub.Contribute([]float32{1, 2})
	for {
		hub.mu.Lock()
		started := hub.count == 1
		hub.mu.Unlock()
		if started {
			break
		}
	}
	if _, err := hub.Contribute([]float32{1}); err == nil {
		t.Fatal("expected size mismatch error")
	}
	// Unblock the waiter.
	hub.Contribute([]float32{1, 0})
}

func trainCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 600, NumEdges: 4000, A: 0.5, B: 0.22, C: 0.22, Seed: 21,
	}))
	c, err := cluster.New(g, cluster.Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConvertBatch(t *testing.T) {
	c := trainCluster(t)
	cfg := DefaultTrainConfig()
	if _, err := Setup(c, cfg); err != nil {
		t.Fatal(err)
	}
	st := c.Storages[0][0]
	ego := int32(3)
	q, _, err := core.RunSSPPR(context.Background(), st, ego, cfg.PPR, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConvertBatch(context.Background(), st, q, ego, cfg.TopK, cfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if b.N == 0 || b.N > cfg.TopK+1 {
		t.Fatalf("batch size %d", b.N)
	}
	if b.EgoIdx < 0 || b.EgoIdx >= b.N {
		t.Fatalf("ego index %d", b.EgoIdx)
	}
	if len(b.X) != b.N*cfg.FeatureDim {
		t.Fatalf("features %d", len(b.X))
	}
	if len(b.EdgeSrc) != len(b.EdgeDst) || len(b.EdgeSrc) == 0 {
		t.Fatalf("edges %d/%d", len(b.EdgeSrc), len(b.EdgeDst))
	}
	for i := range b.EdgeSrc {
		if b.EdgeSrc[i] < 0 || b.EdgeSrc[i] >= int32(b.N) || b.EdgeDst[i] < 0 || b.EdgeDst[i] >= int32(b.N) {
			t.Fatal("edge index out of range")
		}
	}
	egoGlobal := st.Locator.Global(0, ego)
	if b.EgoLabel != LabelOf(egoGlobal, cfg.NumClasses) {
		t.Fatal("ego label wrong")
	}
	// Ego features must match the shard's feature block.
	lf := st.LocalFeatures[int(ego)*cfg.FeatureDim : (int(ego)+1)*cfg.FeatureDim]
	for j := 0; j < cfg.FeatureDim; j++ {
		if b.X[b.EgoIdx*cfg.FeatureDim+j] != lf[j] {
			t.Fatal("ego features mismatch")
		}
	}
}

func TestTrainDistributedLossDecreases(t *testing.T) {
	c := trainCluster(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.BatchesPerEpc = 12
	stats, model, err := TrainDistributed(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != cfg.Epochs || model == nil {
		t.Fatalf("stats = %v", stats)
	}
	first, last := stats[0].MeanLoss, stats[len(stats)-1].MeanLoss
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v (all %v)", first, last, stats)
	}
	if stats[len(stats)-1].Accuracy <= stats[0].Accuracy-0.2 {
		t.Fatalf("accuracy regressed: %v", stats)
	}
}

func TestReplicasStayIdentical(t *testing.T) {
	c := trainCluster(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.BatchesPerEpc = 4
	ends, err := Setup(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	world := 2
	models := []*SAGE{
		NewSAGE(cfg.FeatureDim, cfg.Hidden, cfg.NumClasses, cfg.Seed),
		NewSAGE(cfg.FeatureDim, cfg.Hidden, cfg.NumClasses, cfg.Seed),
	}
	adams := []*Adam{NewAdam(models[0].Params(), cfg.LR), NewAdam(models[1].Params(), cfg.LR)}
	var wg sync.WaitGroup
	for m := 0; m < world; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			st := c.Storages[m][0]
			for bi := 0; bi < 3; bi++ {
				ego := int32(bi)
				q, _, err := core.RunSSPPR(context.Background(), st, ego, cfg.PPR, nil)
				if err != nil {
					t.Error(err)
					return
				}
				b, err := ConvertBatch(context.Background(), st, q, ego, cfg.TopK, cfg.NumClasses)
				if err != nil {
					t.Error(err)
					return
				}
				_, grads := models[m].Loss(b)
				mean, err := ends[m].Sync(FlattenGrads(grads))
				if err != nil {
					t.Error(err)
					return
				}
				adams[m].Step(models[m].Params(), UnflattenInto(mean, models[m].Params()))
			}
		}(m)
	}
	wg.Wait()
	// After synchronized steps, both replicas hold identical parameters.
	p0, p1 := models[0].Params(), models[1].Params()
	for i := range p0 {
		for j := range p0[i] {
			if p0[i][j] != p1[i][j] {
				t.Fatalf("replicas diverged at param %d[%d]: %v vs %v", i, j, p0[i][j], p1[i][j])
			}
		}
	}
}
