package ha

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
)

// Options configures health tracking and failover routing. The zero value
// gets the defaults below.
type Options struct {
	// ProbeInterval is the delay between health pings to each peer.
	// <= 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one ping's round trip. <= 0 means 1s.
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a peer's
	// breaker. <= 0 means DefaultBreakerThreshold.
	BreakerThreshold int
	// AttemptTimeout bounds each routed request attempt, so a blackholed
	// peer (packets silently dropped) converts into a failover instead of a
	// hang. <= 0 means 5s.
	AttemptTimeout time.Duration
	// Tracer, when set, records one "ha:attempt" span per routed attempt of
	// a traced request (see ReplicaRouter.CallTraced). nil disables.
	Tracer *obs.Tracer
}

func (o Options) probeInterval() time.Duration {
	if o.ProbeInterval <= 0 {
		return 500 * time.Millisecond
	}
	return o.ProbeInterval
}

func (o Options) probeTimeout() time.Duration {
	if o.ProbeTimeout <= 0 {
		return time.Second
	}
	return o.ProbeTimeout
}

func (o Options) attemptTimeout() time.Duration {
	if o.AttemptTimeout <= 0 {
		return 5 * time.Second
	}
	return o.AttemptTimeout
}

// peer is one tracked serving machine (or address): its breaker plus probe
// statistics. All endpoints sharing the peer's key feed the same breaker.
type peer struct {
	key       string
	machine   int
	breaker   *Breaker
	endpoints []*Endpoint

	probes        atomic.Int64
	probeFailures atomic.Int64
	lastLatencyNs atomic.Int64
}

// PeerHealth is a point-in-time snapshot of one peer's state.
type PeerHealth struct {
	Key              string
	Machine          int // -1 when unknown
	State            BreakerState
	ConsecutiveFails int
	Probes           int64
	ProbeFailures    int64
	// LastProbeLatency is the most recent successful probe's round trip
	// (0 before the first success).
	LastProbeLatency time.Duration
}

// HealthTracker probes a set of peers with lightweight RPC pings (Echo) and
// maintains one circuit breaker per peer. It is shared by every compute
// process of a machine, like the shard and the cache. Register all peers
// before Start.
type HealthTracker struct {
	opts Options

	mu    sync.Mutex
	peers map[string]*peer
	order []string // registration order, for deterministic snapshots

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewHealthTracker returns an empty tracker.
func NewHealthTracker(opts Options) *HealthTracker {
	return &HealthTracker{
		opts:  opts,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
	}
}

// Register adds ep under its health key. Endpoints sharing a key (one
// machine hosting several shards) share a breaker: the machine fails as a
// unit.
func (t *HealthTracker) Register(ep *Endpoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[ep.Key()]
	if !ok {
		p = &peer{
			key:     ep.Key(),
			machine: ep.Machine,
			breaker: NewBreaker(t.opts.BreakerThreshold),
		}
		t.peers[ep.Key()] = p
		t.order = append(t.order, ep.Key())
	}
	p.endpoints = append(p.endpoints, ep)
}

// Start launches one probe loop per registered peer. Call Stop to end them.
func (t *HealthTracker) Start() {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.order))
	for _, k := range t.order {
		peers = append(peers, t.peers[k])
	}
	t.mu.Unlock()
	for _, p := range peers {
		t.wg.Add(1)
		go t.probeLoop(p)
	}
}

// Stop ends the probe loops and waits for them.
func (t *HealthTracker) Stop() {
	t.once.Do(func() { close(t.stop) })
	t.wg.Wait()
}

func (t *HealthTracker) probeLoop(p *peer) {
	defer t.wg.Done()
	ticker := time.NewTicker(t.opts.probeInterval())
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.ProbePeer(p.key)
		}
	}
}

// ProbePeer sends one health ping to the peer registered under key and feeds
// the outcome into its breaker. Exposed so tests (and serving binaries that
// run their own schedule) can step probing deterministically. Returns the
// probe error, nil on success or for an unknown key.
func (t *HealthTracker) ProbePeer(key string) error {
	t.mu.Lock()
	p := t.peers[key]
	t.mu.Unlock()
	if p == nil || len(p.endpoints) == 0 {
		return nil
	}
	ep := p.endpoints[0]
	p.probes.Add(1)
	metrics.ProbesSent.Inc(1)
	ctx, cancel := context.WithTimeout(context.Background(), t.opts.probeTimeout())
	defer cancel()
	start := time.Now()
	err := probe(ctx, ep)
	if err != nil {
		p.probeFailures.Add(1)
		metrics.ProbeFailures.Inc(1)
		p.breaker.Failure()
		return err
	}
	lat := time.Since(start)
	p.lastLatencyNs.Store(lat.Nanoseconds())
	metrics.ProbeLatencyNs.Set(lat.Nanoseconds())
	p.breaker.Success()
	return nil
}

// probe issues one Echo round trip on ep, dialing a fresh connection when
// the previous one died (the recovery path: a revived machine is only
// reachable through a new connection).
func probe(ctx context.Context, ep *Endpoint) error {
	c, err := ep.Client(ctx)
	if err != nil {
		return err
	}
	_, err = c.SyncCallCtx(ctx, rpc.MethodEcho, []byte("ping"))
	return err
}

// breakerFor returns the breaker tracking key, or nil when untracked.
func (t *HealthTracker) breakerFor(key string) *Breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.peers[key]; p != nil {
		return p.breaker
	}
	return nil
}

// Allow reports whether real traffic may be sent to the peer under key.
// Untracked keys are always allowed.
func (t *HealthTracker) Allow(key string) bool {
	b := t.breakerFor(key)
	return b == nil || b.Allow()
}

// State returns the breaker state for key (BreakerClosed for untracked keys).
func (t *HealthTracker) State(key string) BreakerState {
	if b := t.breakerFor(key); b != nil {
		return b.State()
	}
	return BreakerClosed
}

// ReportSuccess feeds a successful real request into the peer's breaker.
func (t *HealthTracker) ReportSuccess(key string) {
	if b := t.breakerFor(key); b != nil {
		b.Success()
	}
}

// ReportFailure feeds a failed real request into the peer's breaker.
func (t *HealthTracker) ReportFailure(key string) {
	if b := t.breakerFor(key); b != nil {
		b.Failure()
	}
}

// Snapshot returns every peer's health in registration order.
func (t *HealthTracker) Snapshot() []PeerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PeerHealth, 0, len(t.order))
	for _, k := range t.order {
		p := t.peers[k]
		out = append(out, PeerHealth{
			Key:              p.key,
			Machine:          p.machine,
			State:            p.breaker.State(),
			ConsecutiveFails: p.breaker.ConsecutiveFailures(),
			Probes:           p.probes.Load(),
			ProbeFailures:    p.probeFailures.Load(),
			LastProbeLatency: time.Duration(p.lastLatencyNs.Load()),
		})
	}
	return out
}
