package ha

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pprengine/internal/rpc"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 failures state = %v, want closed (threshold 3)", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow traffic")
	}
	if opened := b.Failure(); !opened {
		t.Fatal("third failure should report the open transition")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must not allow traffic")
	}

	// Recovery: success moves open -> half-open (probing), a second success
	// closes, and traffic is allowed again.
	if closed := b.Success(); closed {
		t.Fatal("open -> half-open must not report fully closed")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must allow trial traffic")
	}
	if closed := b.Success(); !closed {
		t.Fatal("half-open -> closed should report the close transition")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}

	// A failure while half-open reopens immediately, regardless of threshold.
	b.Failure()
	b.Failure()
	b.Failure()
	b.Success() // open -> half-open
	if opened := b.Failure(); !opened {
		t.Fatal("half-open failure should reopen the breaker")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after half-open failure", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak was reset)", got)
	}
	if got := b.ConsecutiveFailures(); got != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", got)
	}
}

func TestPlaceRing(t *testing.T) {
	p, err := Place(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	want := Placement{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for s := range want {
		for i := range want[s] {
			if p[s][i] != want[s][i] {
				t.Fatalf("Place(4,2) = %v, want %v", p, want)
			}
		}
	}
}

func TestPlaceWeightedBalanced(t *testing.T) {
	weights := []int64{100, 10, 10, 10}
	p, err := PlaceWeighted(weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Deterministic: same inputs, same placement.
	p2, _ := PlaceWeighted(weights, 2)
	for s := range p {
		for i := range p[s] {
			if p[s][i] != p2[s][i] {
				t.Fatalf("PlaceWeighted not deterministic: %v vs %v", p, p2)
			}
		}
	}
	// The heavy shard 0's replica lands somewhere, and no other machine then
	// receives a second replica before the rest are used: replica load spread.
	load := make([]int64, 4)
	for s, machines := range p {
		for _, m := range machines[1:] {
			load[m] += weights[s]
		}
	}
	var max, min int64 = load[0], load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	// Greedy least-loaded placement keeps the spread within the heaviest
	// single shard's weight.
	if max-min > 100 {
		t.Fatalf("replica load imbalance %v too large for weights %v", load, weights)
	}
}

func TestPlacementHostedReplicas(t *testing.T) {
	p := Placement{{0, 1}, {1, 0}, {2, 0}}
	got := p.HostedReplicas(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("HostedReplicas(0) = %v, want [1 2]", got)
	}
	if got := p.HostedReplicas(2); len(got) != 0 {
		t.Fatalf("HostedReplicas(2) = %v, want none", got)
	}
}

func TestPlacementValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Placement
		k    int
	}{
		{"wrong primary", Placement{{1, 0}, {0, 1}}, 2},
		{"duplicate machine", Placement{{0, 0}, {1, 0}}, 2},
		{"out of range", Placement{{0, 2}, {1, 0}}, 2},
		{"ragged", Placement{{0, 1}, {1}}, 2},
		{"wrong shard count", Placement{{0, 1}}, 2},
	}
	for _, c := range cases {
		if err := c.p.Validate(c.k); err == nil {
			t.Errorf("%s: Validate accepted invalid placement %v", c.name, c.p)
		}
	}
	if _, err := Place(2, 3); err == nil {
		t.Error("Place(2,3) should reject replicas > machines")
	}
	if _, err := PlaceWeighted([]int64{1}, 0); err == nil {
		t.Error("PlaceWeighted with 0 replicas should be rejected")
	}
}

// echoServer runs an rpc.Server answering Echo and a marker method that
// identifies which server handled the request.
func echoServer(t *testing.T, marker string) (*rpc.Server, string) {
	t.Helper()
	srv := rpc.NewServer()
	srv.Handle(rpc.MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle(rpc.MethodGetNeighborInfos, func(p []byte) ([]byte, error) {
		return []byte(marker), nil
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

func routerOver(primAddr, replAddr string, opts Options) (*ReplicaRouter, *HealthTracker) {
	tr := NewHealthTracker(opts)
	prim := NewEndpoint(0, 0, primAddr, "m0", rpc.LatencyModel{})
	repl := NewEndpoint(1, 0, replAddr, "m1", rpc.LatencyModel{})
	tr.Register(prim)
	tr.Register(repl)
	router := NewReplicaRouter(tr, [][]*Endpoint{{prim, repl}}, opts)
	return router, tr
}

func TestRouterPrefersPrimary(t *testing.T) {
	srvA, addrA := echoServer(t, "A")
	defer srvA.Close()
	srvB, addrB := echoServer(t, "B")
	defer srvB.Close()

	router, _ := routerOver(addrA, addrB, Options{AttemptTimeout: 2 * time.Second})
	defer router.Close()

	res, err := router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "A" {
		t.Fatalf("healthy primary: answered by %q, want A", res)
	}
	if got := router.Failovers(); got != 0 {
		t.Fatalf("Failovers = %d, want 0", got)
	}
}

func TestRouterFailsOverToReplica(t *testing.T) {
	srvA, addrA := echoServer(t, "A")
	srvB, addrB := echoServer(t, "B")
	defer srvB.Close()

	opts := Options{AttemptTimeout: 2 * time.Second, BreakerThreshold: 2}
	router, tr := routerOver(addrA, addrB, opts)
	defer router.Close()

	srvA.Close() // primary down before the first request

	res, err := router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "B" {
		t.Fatalf("dead primary: answered by %q, want replica B", res)
	}
	if got := router.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	// The failed attempt fed the primary's breaker; one more failure opens it.
	if got := tr.State("m0"); got != BreakerClosed {
		t.Fatalf("m0 breaker = %v, want closed after 1 failure (threshold 2)", got)
	}
	if _, err := router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.State("m0"); got != BreakerOpen {
		t.Fatalf("m0 breaker = %v, want open after 2 failures", got)
	}

	// With the breaker open the router goes straight to the replica — and an
	// all-served-by-replica call is still counted as a failover.
	before := router.Failovers()
	res, err = router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err != nil || string(res) != "B" {
		t.Fatalf("open breaker: got %q, %v; want B, nil", res, err)
	}
	if router.Failovers() != before+1 {
		t.Fatalf("skipping an open-breaker primary should count as a failover")
	}
}

func TestRouterRemoteErrorDoesNotFailOver(t *testing.T) {
	srvA := rpc.NewServer()
	srvA.Handle(rpc.MethodGetNeighborInfos, func(p []byte) ([]byte, error) {
		return nil, errors.New("bad request")
	})
	addrA, err := srvA.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, addrB := echoServer(t, "B")
	defer srvB.Close()

	router, tr := routerOver(addrA, addrB, Options{AttemptTimeout: 2 * time.Second})
	defer router.Close()

	_, err = router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err == nil {
		t.Fatal("remote handler error should surface, not fail over")
	}
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v should unwrap to rpc.RemoteError", err)
	}
	m, shard, ok := FaultOf(err)
	if !ok || m != 0 || shard != 0 {
		t.Fatalf("FaultOf = (%d, %d, %v), want (0, 0, true)", m, shard, ok)
	}
	if got := router.Failovers(); got != 0 {
		t.Fatalf("Failovers = %d, want 0 for a remote error", got)
	}
	// A remote error is not a health signal.
	if got := tr.State("m0"); got != BreakerClosed {
		t.Fatalf("m0 breaker = %v, want closed", got)
	}
}

func TestProbeRecoveryClosesBreakerAndRestoresPrimary(t *testing.T) {
	srvA, addrA := echoServer(t, "A")
	srvB, addrB := echoServer(t, "B")
	defer srvB.Close()

	opts := Options{
		AttemptTimeout:   time.Second,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 2,
	}
	router, tr := routerOver(addrA, addrB, opts)
	defer router.Close()

	srvA.Close()
	// Probes against the dead primary open its breaker.
	for i := 0; i < 2; i++ {
		if err := tr.ProbePeer("m0"); err == nil {
			t.Fatal("probe against a dead server should fail")
		}
	}
	if got := tr.State("m0"); got != BreakerOpen {
		t.Fatalf("m0 breaker = %v, want open", got)
	}
	res, err := router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err != nil || string(res) != "B" {
		t.Fatalf("got %q, %v; want replica B", res, err)
	}

	// Revive the primary on the same address; probes walk the breaker back
	// through half-open to closed, and traffic returns to the primary.
	srvA2 := restartServer(t, addrA, "A")
	defer srvA2.Close()
	for i := 0; i < 2; i++ {
		if err := tr.ProbePeer("m0"); err != nil {
			t.Fatalf("probe %d after revival failed: %v", i, err)
		}
	}
	if got := tr.State("m0"); got != BreakerClosed {
		t.Fatalf("m0 breaker = %v, want closed after recovery", got)
	}
	res, err = router.Do(context.Background(), 0, rpc.MethodGetNeighborInfos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "A" {
		t.Fatalf("recovered primary: answered by %q, want A", res)
	}

	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Key != "m0" || snap[1].Key != "m1" {
		t.Fatalf("snapshot order = %+v, want m0 then m1", snap)
	}
	if snap[0].Probes != 4 || snap[0].ProbeFailures != 2 {
		t.Fatalf("m0 probes = %d/%d failures, want 4/2", snap[0].Probes, snap[0].ProbeFailures)
	}
	if snap[0].LastProbeLatency <= 0 {
		t.Fatal("successful probe should record a positive latency")
	}
}

// restartServer listens again on the exact address a previous server vacated.
func restartServer(t *testing.T, addr, marker string) *rpc.Server {
	t.Helper()
	srv := rpc.NewServer()
	srv.Handle(rpc.MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle(rpc.MethodGetNeighborInfos, func(p []byte) ([]byte, error) {
		return []byte(marker), nil
	})
	var lis net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv.Serve(lis)
	return srv
}

func TestHealthTrackerBackgroundProbing(t *testing.T) {
	srv, addr := echoServer(t, "A")
	defer srv.Close()

	tr := NewHealthTracker(Options{ProbeInterval: 5 * time.Millisecond, ProbeTimeout: time.Second})
	ep := NewEndpoint(0, 0, addr, "m0", rpc.LatencyModel{})
	tr.Register(ep)
	tr.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := tr.Snapshot(); len(snap) == 1 && snap[0].Probes >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background probe loop never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Stop()
	ep.Close()
	if got := tr.State("m0"); got != BreakerClosed {
		t.Fatalf("healthy peer breaker = %v, want closed", got)
	}
}

func TestEndpointRedialAfterDeath(t *testing.T) {
	srv, addr := echoServer(t, "A")
	ep := NewEndpoint(0, 0, addr, "m0", rpc.LatencyModel{})
	defer ep.Close()

	ctx := context.Background()
	c1, err := ep.Client(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SyncCallCtx(ctx, rpc.MethodEcho, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The old client dies; Client() must hand back a fresh connection once
	// the server is reachable again.
	deadline := time.Now().Add(5 * time.Second)
	for c1.Healthy() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the closed server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv2 := restartServer(t, addr, "A")
	defer srv2.Close()
	c2, err := ep.Client(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("Client() returned the dead client instead of re-dialing")
	}
	if _, err := c2.SyncCallCtx(ctx, rpc.MethodEcho, []byte("hi")); err != nil {
		t.Fatalf("re-dialed client call failed: %v", err)
	}
	reqs, _, _ := ep.NetStats()
	if reqs < 2 {
		t.Fatalf("NetStats requests = %d, want cumulative >= 2 across reconnects", reqs)
	}
}

func TestPeerErrorWrapping(t *testing.T) {
	base := fmt.Errorf("boom")
	err := WrapPeer(2, 1, "x:1", base)
	if !errors.Is(err, base) {
		t.Fatal("WrapPeer must preserve the error chain")
	}
	// Re-wrapping keeps the original attribution.
	err2 := WrapPeer(9, 9, "y:2", err)
	m, shard, ok := FaultOf(err2)
	if !ok || m != 2 || shard != 1 {
		t.Fatalf("FaultOf = (%d, %d, %v), want (2, 1, true)", m, shard, ok)
	}
	if WrapPeer(0, 0, "", nil) != nil {
		t.Fatal("WrapPeer(nil) must be nil")
	}
	if _, _, ok := FaultOf(base); ok {
		t.Fatal("FaultOf on an unattributed error must report !ok")
	}
}
