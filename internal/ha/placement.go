// Package ha adds the robustness layer the paper's engine assumes away:
// shard replication with health-checked failover. The paper (§3.1) serves
// every shard from exactly one Graph Storage server and assumes that server
// stays up for the lifetime of the query stream; a crashed machine therefore
// fails every SSPPR query whose frontier touches its shard. Production
// serving stacks for the same workload (DistDGL, SALIENT++-style systems)
// instead serve each partition from R redundant server processes and route
// around failures. This package provides the three pieces of that layer:
//
//   - Placement: which machines serve which shard (primary + replicas),
//     computed from the partition map so replica bytes stay balanced;
//   - HealthTracker + Breaker: lightweight RPC pings per peer, with a
//     circuit breaker that opens after consecutive failures and closes
//     again once probes recover;
//   - ReplicaRouter: the request path — prefer the primary, fail over to a
//     healthy replica on error/timeout/open breaker, return to the primary
//     when its breaker closes.
//
// Replication here is read-only: the graph is immutable after partitioning,
// so replicas never diverge and a failover returns bit-identical rows.
package ha

import (
	"fmt"
	"sort"
)

// Placement lists, for every shard, the machines serving it. Entry 0 is the
// primary — the shard's owner under the paper's owner-compute rule; the rest
// are replicas in preference order.
type Placement [][]int

// Replicas returns the replication factor (serving machines per shard).
func (p Placement) Replicas() int {
	if len(p) == 0 {
		return 0
	}
	return len(p[0])
}

// Machines returns the serving machines for shard s, primary first.
func (p Placement) Machines(s int) []int { return p[s] }

// HostedReplicas returns the shards machine m serves as a NON-primary
// replica, in shard order — the extra serving duty replication adds on top
// of the machine's own shard.
func (p Placement) HostedReplicas(m int) []int {
	var out []int
	for s, machines := range p {
		for _, host := range machines[1:] {
			if host == m {
				out = append(out, s)
			}
		}
	}
	return out
}

// Validate checks structural invariants: every shard has the same replica
// count, machine indices are in range, shard s's primary is machine s, and no
// machine serves the same shard twice.
func (p Placement) Validate(numMachines int) error {
	if len(p) != numMachines {
		return fmt.Errorf("ha: placement covers %d shards, want %d", len(p), numMachines)
	}
	r := p.Replicas()
	for s, machines := range p {
		if len(machines) != r {
			return fmt.Errorf("ha: shard %d has %d serving machines, want %d", s, len(machines), r)
		}
		if len(machines) == 0 || machines[0] != s {
			return fmt.Errorf("ha: shard %d primary is %v, want machine %d", s, machines, s)
		}
		seen := map[int]bool{}
		for _, m := range machines {
			if m < 0 || m >= numMachines {
				return fmt.Errorf("ha: shard %d served by out-of-range machine %d", s, m)
			}
			if seen[m] {
				return fmt.Errorf("ha: shard %d served twice by machine %d", s, m)
			}
			seen[m] = true
		}
	}
	return nil
}

// Place is the trivial ring placement: shard s is served by machines
// s, s+1, ..., s+replicas-1 (mod K). Deterministic and balanced when shards
// are, but blind to shard sizes; PlaceWeighted is what deployments use.
func Place(numShards, replicas int) (Placement, error) {
	if err := checkReplicas(numShards, replicas); err != nil {
		return nil, err
	}
	p := make(Placement, numShards)
	for s := range p {
		p[s] = make([]int, replicas)
		for i := range p[s] {
			p[s][i] = (s + i) % numShards
		}
	}
	return p, nil
}

// PlaceWeighted computes a replica placement balanced by shard weight
// (typically neighbor-entry counts from the METIS partition map): shard s is
// always primaried on machine s, and its replicas go to the machines with the
// least accumulated replica weight, heaviest shards placed first.
// Deterministic: ties break by machine index, and the input order is fixed by
// sorting on (weight desc, shard asc).
func PlaceWeighted(weights []int64, replicas int) (Placement, error) {
	k := len(weights)
	if err := checkReplicas(k, replicas); err != nil {
		return nil, err
	}
	p := make(Placement, k)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]int64, k) // replica weight accumulated per machine
	for _, s := range order {
		machines := make([]int, 0, replicas)
		machines = append(machines, s)
		taken := map[int]bool{s: true}
		for len(machines) < replicas {
			best := -1
			for m := 0; m < k; m++ {
				if taken[m] {
					continue
				}
				if best < 0 || load[m] < load[best] {
					best = m
				}
			}
			taken[best] = true
			machines = append(machines, best)
			load[best] += weights[s]
		}
		p[s] = machines
	}
	return p, nil
}

func checkReplicas(numShards, replicas int) error {
	if numShards <= 0 {
		return fmt.Errorf("ha: need at least one shard")
	}
	if replicas < 1 {
		return fmt.Errorf("ha: replicas must be >= 1, got %d", replicas)
	}
	if replicas > numShards {
		return fmt.Errorf("ha: %d replicas need at least that many machines, have %d", replicas, numShards)
	}
	return nil
}
