package ha

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
)

// PeerError attributes a request failure to the serving peer that produced
// it: the machine index (when known), the destination shard, and the address
// tried last. It wraps the underlying error for errors.Is/As.
type PeerError struct {
	Machine int   // serving machine index, -1 when unknown
	Shard   int32 // destination shard of the failed request
	Addr    string
	Err     error
}

// Error implements the error interface.
func (e *PeerError) Error() string {
	if e.Machine >= 0 {
		return fmt.Sprintf("machine %d (shard %d, %s): %v", e.Machine, e.Shard, e.Addr, e.Err)
	}
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying error.
func (e *PeerError) Unwrap() error { return e.Err }

// WrapPeer attributes err to (machine, shard) unless it already carries a
// peer attribution. A nil err returns nil.
func WrapPeer(machine int, shard int32, addr string, err error) error {
	if err == nil {
		return nil
	}
	var pe *PeerError
	if errors.As(err, &pe) {
		return err
	}
	return &PeerError{Machine: machine, Shard: shard, Addr: addr, Err: err}
}

// FaultOf extracts the peer attribution from err's chain. ok is false when
// the failure is not attributable to a peer (e.g. a local cancellation).
func FaultOf(err error) (machine int, shard int32, ok bool) {
	var pe *PeerError
	if errors.As(err, &pe) {
		return pe.Machine, pe.Shard, true
	}
	return -1, -1, false
}

// ReplicaRouter routes requests for a shard to one of its serving endpoints:
// the primary while healthy, a replica when the primary's breaker is open or
// an attempt fails, and the primary again once its breaker closes. One
// router per machine, shared by all of its compute processes.
type ReplicaRouter struct {
	tracker *HealthTracker
	opts    Options
	shards  [][]*Endpoint // per shard, primary first; nil for the local shard

	failovers atomic.Int64
}

// NewReplicaRouter returns a router consulting tracker's breakers. endpoints
// must have one entry per shard (primary first); the local shard's entry may
// be nil.
func NewReplicaRouter(tracker *HealthTracker, endpoints [][]*Endpoint, opts Options) *ReplicaRouter {
	return &ReplicaRouter{tracker: tracker, opts: opts, shards: endpoints}
}

// Endpoints returns the serving endpoints for shard (primary first).
func (r *ReplicaRouter) Endpoints(shard int32) []*Endpoint { return r.shards[shard] }

// Failovers returns the number of attempts re-routed away from the
// preferred endpoint (dial failures and failed requests alike).
func (r *ReplicaRouter) Failovers() int64 { return r.failovers.Load() }

// Tracker returns the health tracker the router consults.
func (r *ReplicaRouter) Tracker() *HealthTracker { return r.tracker }

// CallFuture is the pending result of a routed request. It resolves after at
// most one attempt per serving endpoint, each bounded by
// Options.AttemptTimeout; failed transient attempts fail over to the next
// healthy replica. Any number of goroutines may wait on it.
type CallFuture struct {
	done chan struct{}
	res  []byte
	err  error
	// rel releases the winning attempt's pooled response buffer (the rpc
	// future's Release). Set only on success; forwarded via Release.
	rel      func()
	released atomic.Bool
}

// Release recycles the response payload's pooled buffer. Call it once the
// payload (and every view decoded from it) is dead. Idempotent, optional —
// an unreleased payload falls back to the garbage collector.
func (f *CallFuture) Release() {
	select {
	case <-f.done:
	default:
		return
	}
	if f.released.CompareAndSwap(false, true) && f.rel != nil {
		f.rel()
	}
}

// Done returns a channel closed when the final result (after any failovers)
// is available.
func (f *CallFuture) Done() <-chan struct{} { return f.done }

// Wait blocks for the final result.
func (f *CallFuture) Wait() ([]byte, error) {
	<-f.done
	return f.res, f.err
}

// WaitCtx is Wait bounded by the waiter's context. Cancellation detaches
// only this waiter — the routed request keeps running for other waiters
// (routed calls are shared state, like aggregator flushes).
func (f *CallFuture) WaitCtx(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Call issues one request for dstShard with failover: it returns
// immediately with a future driven by a background attempt loop. The loop is
// NOT bound to any query context — like cache flights and aggregator
// flushes, a routed call may be shared by several queries, and each waiter's
// own ctx applies only to its WaitCtx.
func (r *ReplicaRouter) Call(dstShard int32, m rpc.Method, payload []byte) *CallFuture {
	return r.CallTraced(obs.SpanContext{}, dstShard, m, payload)
}

// CallTraced is Call carrying a trace context: each attempt records an
// "ha:attempt" span (errored attempts included, so a trace shows the failed
// primary attempt before the replica that served) and the wire request
// extends the same trace on the serving machine.
func (r *ReplicaRouter) CallTraced(sc obs.SpanContext, dstShard int32, m rpc.Method, payload []byte) *CallFuture {
	f := &CallFuture{done: make(chan struct{})}
	go r.run(f, sc, dstShard, m, payload)
	return f
}

// Do is Call followed by WaitCtx.
func (r *ReplicaRouter) Do(ctx context.Context, dstShard int32, m rpc.Method, payload []byte) ([]byte, error) {
	return r.CallTraced(obs.FromContext(ctx), dstShard, m, payload).WaitCtx(ctx)
}

// run drives the attempt loop: endpoints whose breaker allows traffic are
// tried in preference order (primary first); if every breaker is open, the
// endpoints are tried anyway as a last resort — an open breaker should
// degrade to the replica, never fail a query that could have succeeded.
func (r *ReplicaRouter) run(f *CallFuture, sc obs.SpanContext, dstShard int32, m rpc.Method, payload []byte) {
	defer close(f.done)
	eps := r.shards[dstShard]
	if len(eps) == 0 {
		f.err = &PeerError{Machine: -1, Shard: dstShard, Err: fmt.Errorf("ha: no endpoints for shard %d", dstShard)}
		return
	}
	allowed := make([]*Endpoint, 0, len(eps))
	for _, ep := range eps {
		if r.tracker.Allow(ep.Key()) {
			allowed = append(allowed, ep)
		}
	}
	if len(allowed) == 0 {
		allowed = eps // all breakers open: try everything rather than fail
	}
	var lastErr error
	var lastEp *Endpoint
	for i, ep := range allowed {
		if i > 0 || ep != eps[0] {
			// Any attempt not on the primary is a failover, whether we got
			// here by a failed attempt or by skipping an open breaker.
			r.failovers.Add(1)
			metrics.Failovers.Inc(1)
		}
		res, rel, err := r.attempt(ep, sc, m, payload)
		if err == nil {
			r.tracker.ReportSuccess(ep.Key())
			f.res, f.rel = res, rel
			return
		}
		lastErr, lastEp = err, ep
		if !transientAttempt(err) {
			// A remote handler error is not a machine-health signal — the
			// peer answered — and retrying a replica would fail identically.
			break
		}
		r.tracker.ReportFailure(ep.Key())
	}
	f.err = WrapPeer(lastEp.Machine, dstShard, lastEp.Addr, lastErr)
}

// attempt issues the request on ep once, bounded by the attempt timeout.
// Traced attempts record an "ha:attempt" span whose context rides the wire
// request, so the serving endpoint's span nests under the attempt.
// The returned release func recycles the response's pooled buffer (nil on
// failure); the router forwards it to the CallFuture so the final waiter
// controls the payload's lifetime.
func (r *ReplicaRouter) attempt(ep *Endpoint, sc obs.SpanContext, m rpc.Method, payload []byte) ([]byte, func(), error) {
	span := r.opts.Tracer.StartSpan(sc, "ha:attempt")
	span.SetShard(ep.Shard)
	if c := span.Context(); c.Valid() {
		sc = c
	}
	c, err := ep.dial()
	if err != nil {
		span.SetErr(true)
		span.End()
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(obs.ContextWith(context.Background(), sc), r.opts.attemptTimeout())
	defer cancel()
	fut := c.CallCtx(ctx, m, payload)
	res, err := fut.WaitCtx(ctx)
	span.SetErr(err != nil)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	return res, fut.Release, nil
}

// ReadyCheck reports whether the router can currently reach every remote
// shard: a shard whose serving endpoints ALL have open breakers is considered
// unreachable, and the first such shard is returned as the error. It is the
// /readyz check a serving process registers — a cluster peer going dark
// flips this process not-ready without killing it.
func (r *ReplicaRouter) ReadyCheck() error {
	for shard, eps := range r.shards {
		if len(eps) == 0 {
			continue // local shard
		}
		open := 0
		for _, ep := range eps {
			if r.tracker.State(ep.Key()) == BreakerOpen {
				open++
			}
		}
		if open == len(eps) {
			return fmt.Errorf("ha: all %d endpoints for shard %d have open breakers", len(eps), shard)
		}
	}
	return nil
}

// transientAttempt reports whether a failed attempt should fail over to a
// replica. Unlike rpc.Transient, an expired attempt deadline IS transient
// here: the timeout is the router's own (detecting a blackholed peer), not
// the caller's.
func transientAttempt(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	return rpc.Transient(err)
}

// Close closes every endpoint connection.
func (r *ReplicaRouter) Close() {
	for _, eps := range r.shards {
		for _, ep := range eps {
			ep.Close()
		}
	}
}

// Stats summarizes a router (and its tracker) for experiment reports.
type Stats struct {
	Failovers     int64
	Probes        int64
	ProbeFailures int64
	BreakersOpen  int // peers currently open
}

// Stats returns a snapshot. A nil router reports zeros.
func (r *ReplicaRouter) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{Failovers: r.failovers.Load()}
	for _, ph := range r.tracker.Snapshot() {
		s.Probes += ph.Probes
		s.ProbeFailures += ph.ProbeFailures
		if ph.State == BreakerOpen {
			s.BreakersOpen++
		}
	}
	return s
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Failovers += other.Failovers
	s.Probes += other.Probes
	s.ProbeFailures += other.ProbeFailures
	s.BreakersOpen += other.BreakersOpen
}
