package ha

import (
	"context"
	"sync"
	"time"

	"pprengine/internal/rpc"
)

// Endpoint is one serving process for one shard: an address plus a live RPC
// client that is re-dialed after the connection dies (a crashed machine's
// client is unusable even after the machine recovers, so failback needs a
// fresh connection). Endpoints hosted by the same machine share a health key,
// so a dead machine opens one breaker covering all its shards at once.
type Endpoint struct {
	// Machine is the hosting machine's index, or -1 when unknown (file-based
	// deployments identify peers by address only).
	Machine int
	// Shard is the shard this endpoint serves.
	Shard int32
	// Addr is the dialable address.
	Addr string
	// key groups endpoints that share failure fate (same hosting machine).
	key string

	lat rpc.LatencyModel

	mu     sync.Mutex
	client *rpc.Client
	// Counters of retired (dead, re-dialed) clients, so NetStats is
	// cumulative across reconnects.
	prevReqs, prevSent, prevRecv int64
}

// NewEndpoint describes one serving process. machine may be -1; key groups
// endpoints by hosting machine ("" means the address is the key).
func NewEndpoint(machine int, shard int32, addr, key string, lat rpc.LatencyModel) *Endpoint {
	if key == "" {
		key = addr
	}
	return &Endpoint{Machine: machine, Shard: shard, Addr: addr, key: key, lat: lat}
}

// Key returns the health-tracking key (hosting machine or address).
func (e *Endpoint) Key() string { return e.key }

// Client returns a live client for the endpoint, dialing (or re-dialing a
// dead connection) as needed. ctx bounds the dial.
func (e *Endpoint) Client(ctx context.Context) (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.client != nil && e.client.Healthy() {
		return e.client, nil
	}
	e.retireLocked()
	c, err := rpc.DialCtx(ctx, e.Addr, e.lat)
	if err != nil {
		return nil, err
	}
	e.client = c
	return c, nil
}

// retireLocked accumulates and closes the current client. Caller holds e.mu.
func (e *Endpoint) retireLocked() {
	if e.client == nil {
		return
	}
	e.prevReqs += e.client.RequestsSent.Load()
	e.prevSent += e.client.BytesSent.Load()
	e.prevRecv += e.client.BytesReceived.Load()
	e.client.Close()
	e.client = nil
}

// NetStats returns cumulative client-side traffic through this endpoint,
// including retired connections.
func (e *Endpoint) NetStats() (requests, bytesSent, bytesReceived int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	requests, bytesSent, bytesReceived = e.prevReqs, e.prevSent, e.prevRecv
	if e.client != nil {
		requests += e.client.RequestsSent.Load()
		bytesSent += e.client.BytesSent.Load()
		bytesReceived += e.client.BytesReceived.Load()
	}
	return
}

// Close tears down the current connection.
func (e *Endpoint) Close() {
	e.mu.Lock()
	e.retireLocked()
	e.mu.Unlock()
}

// dialTimeout bounds endpoint dials issued from the request path: a dial to
// a dead-but-routable address must not stall a failover attempt for long.
const dialTimeout = 2 * time.Second

// dial is Client with the standard bounded dial context.
func (e *Endpoint) dial() (*rpc.Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), dialTimeout)
	defer cancel()
	return e.Client(ctx)
}
