package ha

import (
	"sync"

	"pprengine/internal/metrics"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the peer is healthy; requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: a probe succeeded against an open peer; the router
	// sends real traffic again, and the first outcome decides — success
	// closes the breaker, failure reopens it.
	BreakerHalfOpen
	// BreakerOpen: the peer failed Threshold consecutive times; the router
	// skips it and only health probes reach it.
	BreakerOpen
)

// String names the state for logs and reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "breaker(?)"
	}
}

// DefaultBreakerThreshold is the consecutive-failure count that opens a
// breaker when the caller does not configure one.
const DefaultBreakerThreshold = 3

// Breaker is a per-peer circuit breaker fed by both real traffic and health
// probes. State machine:
//
//	Closed --(threshold consecutive failures)--> Open
//	Open --(success, i.e. a recovered probe)--> HalfOpen
//	HalfOpen --(success)--> Closed
//	HalfOpen --(failure)--> Open
//
// Any success resets the consecutive-failure count. Safe for concurrent use.
type Breaker struct {
	threshold int

	mu    sync.Mutex
	state BreakerState
	fails int
}

// NewBreaker returns a closed breaker opening after threshold consecutive
// failures (<= 0 means DefaultBreakerThreshold).
func NewBreaker(threshold int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	return &Breaker{threshold: threshold}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether the router may send real traffic to the peer
// (closed or half-open).
func (b *Breaker) Allow() bool { return b.State() != BreakerOpen }

// Failure records a failed request or probe. It returns true when this
// failure opened the breaker (transition into Open).
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	opened := false
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		opened = true
	case BreakerClosed:
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			opened = true
		}
	}
	if opened {
		metrics.BreakerOpens.Inc(1)
	}
	return opened
}

// Success records a successful request or probe. It returns true when this
// success fully closed the breaker (transition HalfOpen -> Closed).
func (b *Breaker) Success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	switch b.state {
	case BreakerOpen:
		b.state = BreakerHalfOpen
	case BreakerHalfOpen:
		b.state = BreakerClosed
		metrics.BreakerCloses.Inc(1)
		return true
	}
	return false
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
