//go:build race

package mem

// RaceEnabled reports whether the binary was built with the race detector,
// whose instrumentation adds allocations that would trip the alloc-budget
// guard tests.
const RaceEnabled = true
