package mem

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{1 << 20, 11}, {1 << 21, 12}, {1<<21 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	if RaceEnabled {
		t.Skip("the race detector makes sync.Pool drop Puts at random")
	}
	var p Pool
	b := p.Get(1000)
	if b.Len() != 1000 || cap(b.Bytes()) != 1024 {
		t.Fatalf("Get(1000): len %d cap %d", b.Len(), cap(b.Bytes()))
	}
	first := &b.Bytes()[0]
	b.Release()
	// Same class: the released buffer must come back.
	b2 := p.Get(600)
	if &b2.Bytes()[0] != first {
		t.Fatal("pool did not recycle the released buffer")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Live != 1024 {
		t.Fatalf("live = %d, want 1024", st.Live)
	}
	b2.Release()
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("live after release = %d, want 0", live)
	}
}

func TestRefcountSharing(t *testing.T) {
	var p Pool
	b := p.Get(100)
	first := &b.Bytes()[0]
	b.Retain()
	b.Release() // one holder done; buffer still alive
	if got := p.Get(100); &got.Bytes()[0] == first {
		t.Fatal("buffer recycled while a reference was held")
	}
	b.Release() // last holder
	// Drain the one unrelated buffer, then the shared one must be pooled.
	var found bool
	for i := 0; i < 2; i++ {
		if g := p.Get(100); &g.Bytes()[0] == first {
			found = true
		}
	}
	if !found {
		t.Fatal("buffer not recycled after final release")
	}
}

func TestReleasePanicsOnDouble(t *testing.T) {
	var p Pool
	b := p.Get(10)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainPanicsAfterRelease(t *testing.T) {
	var p Pool
	b := p.Get(10)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after Release did not panic")
		}
	}()
	b.Retain()
}

func TestNilBufSafe(t *testing.T) {
	var b *Buf
	b.Release()
	b.Retain()
	if b.Bytes() != nil || b.Len() != 0 {
		t.Fatal("nil Buf has bytes")
	}
}

func TestOversizedNotPooled(t *testing.T) {
	var p Pool
	n := 1<<21 + 1
	b := p.Get(n)
	if b.Len() != n {
		t.Fatalf("len = %d", b.Len())
	}
	if p.Stats().Live != int64(n) {
		t.Fatalf("live = %d, want %d", p.Stats().Live, n)
	}
	b.Release()
	if p.Stats().Live != 0 {
		t.Fatal("oversized release did not return live bytes")
	}
}

// TestPoisonClobbersOnRelease: a holder that keeps raw bytes past Release
// must observe the poison pattern, not its old data.
func TestPoisonClobbersOnRelease(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	var p Pool
	b := p.Get(64)
	raw := b.Bytes()
	for i := range raw {
		raw[i] = byte(i)
	}
	b.Release()
	for i, v := range raw {
		if v != poisonByte {
			t.Fatalf("byte %d = %#x after release, want poison %#x", i, v, poisonByte)
		}
	}
}

func TestWrap(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	s := []byte{1, 2, 3}
	b := Wrap(s)
	if &b.Bytes()[0] != &s[0] {
		t.Fatal("Wrap copied")
	}
	b.Release()
	if s[0] != poisonByte {
		t.Fatal("Wrap'd buffer not poisoned on release")
	}
}

func TestArena(t *testing.T) {
	var a Arena
	x := a.I32(10)
	y := a.I32(20)
	if len(x) != 10 || len(y) != 20 {
		t.Fatal("bad lengths")
	}
	x[9] = 7
	if y[0] != 0 {
		t.Fatal("allocations overlap")
	}
	// Appending to an arena slice must not bleed into the next allocation.
	x = append(x, 99)
	if y[0] != 0 {
		t.Fatal("append to arena slice overwrote the next allocation")
	}
	f := a.F32(5)
	f[4] = 2.5
	a.Reset()
	z := a.I32(10)
	if z[9] != 0 {
		t.Fatal("arena slice not zeroed after Reset reuse")
	}
}

// TestArenaPoisonOnReset: slices held across Reset observe the poison
// pattern (until the slab is re-handed-out), proving stale views can't
// silently read fresh data.
func TestArenaPoisonOnReset(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	var a Arena
	x := a.I32(8)
	x[0] = 42
	f := a.F32(8)
	f[0] = 1.5
	a.Reset()
	if x[0] == 42 {
		t.Fatal("int32 arena slice survived Reset unpoisoned")
	}
	if f[0] == 1.5 {
		t.Fatal("float32 arena slice survived Reset unpoisoned")
	}
}

func TestArenaGrowthKeepsOldAllocationsValid(t *testing.T) {
	var a Arena
	x := a.I32(arenaMinSlab) // fills the first slab exactly
	x[0] = 11
	y := a.I32(arenaMinSlab * 4) // forces a new slab
	y[0] = 22
	if x[0] != 11 {
		t.Fatal("old slab allocation corrupted by growth")
	}
}

func TestArenaPool(t *testing.T) {
	a := GetArena()
	s := a.I32(4)
	s[0] = 1
	PutArena(a)
	b := GetArena()
	v := b.I32(4)
	if v[0] != 0 {
		t.Fatal("pooled arena handed out dirty memory")
	}
	PutArena(b)
	PutArena(nil) // nil-safe
}

func TestConcurrentGetRelease(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get(100 + i)
				raw := b.Bytes()
				for j := range raw {
					raw[j] = seed
				}
				b.Retain()
				for j := range raw {
					if raw[j] != seed {
						panic("buffer shared between holders")
					}
				}
				b.Release()
				b.Release()
			}
		}(byte(g))
	}
	wg.Wait()
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("live = %d after all releases", live)
	}
}

func BenchmarkPoolGetRelease(b *testing.B) {
	var p Pool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(4096)
		buf.Release()
	}
}

func BenchmarkArenaEpoch(b *testing.B) {
	var a Arena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.I32(64)
		_ = a.F32(64)
		a.Reset()
	}
}
