package mem

import (
	"math"
	"sync"

	"pprengine/internal/metrics"
)

// Arena is an epoch-style allocator for decoded rows: I32/F32 carve typed
// slices out of large slabs, and Reset recycles every allocation at once.
// An arena is single-epoch single-owner — not safe for concurrent use, and
// every slice it handed out dies (logically) at Reset. In poison mode Reset
// clobbers the slabs so stale views surface as corrupt data.
type Arena struct {
	i32    []int32
	i32Off int
	f32    []float32
	f32Off int
}

// arenaMinSlab is the smallest slab allocated on growth, in elements.
const arenaMinSlab = 4096

// I32 returns a zeroed int32 slice of length n carved from the arena,
// valid until Reset.
func (a *Arena) I32(n int) []int32 {
	if a.i32Off+n > len(a.i32) {
		size := max(2*len(a.i32), n, arenaMinSlab)
		// The previous slab's live allocations stay valid: the GC keeps the
		// old slab alive for as long as they are referenced.
		a.i32 = make([]int32, size)
		a.i32Off = 0
		metrics.ArenaSlabBytes.Inc(int64(4 * size))
	}
	s := a.i32[a.i32Off : a.i32Off+n : a.i32Off+n]
	a.i32Off += n
	clear(s)
	return s
}

// F32 returns a zeroed float32 slice of length n carved from the arena,
// valid until Reset.
func (a *Arena) F32(n int) []float32 {
	if a.f32Off+n > len(a.f32) {
		size := max(2*len(a.f32), n, arenaMinSlab)
		a.f32 = make([]float32, size)
		a.f32Off = 0
		metrics.ArenaSlabBytes.Inc(int64(4 * size))
	}
	s := a.f32[a.f32Off : a.f32Off+n : a.f32Off+n]
	a.f32Off += n
	clear(s)
	return s
}

// Reset ends the epoch: every slice previously returned by I32/F32 is
// invalid after Reset and its memory will be reused. In poison mode the
// slabs are clobbered immediately so stale views show up in tests.
func (a *Arena) Reset() {
	if poisonOn.Load() {
		const p32 = int32(-0x24242425) // 0xDBDBDBDB
		for i := range a.i32 {
			a.i32[i] = p32
		}
		for i := range a.f32 {
			a.f32[i] = poisonF32
		}
	}
	a.i32Off, a.f32Off = 0, 0
}

// poisonF32 is the float32 whose bit pattern is the poison fill: a large
// negative garbage value that no legitimate weight or degree resembles.
var poisonF32 = math.Float32frombits(0xDBDBDBDB)

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns a reusable arena from the process-wide pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena resets a and returns it to the pool. Nil-safe.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}
