// Package mem provides the zero-copy hot path's memory management: pooled,
// refcounted frame buffers (Pool/Buf) and epoch-style arenas for decoded
// rows (Arena). Both exist to take the steady-state remote-fetch path off
// the garbage collector: a frame buffer is recycled the moment the last
// holder releases it, and an arena hands out decode scratch from a few
// large slabs that are reset wholesale between uses.
//
// Ownership rules (DESIGN.md §5h):
//
//   - Get returns a Buf with one reference owned by the caller. Retain adds
//     a reference for every additional independent holder; each holder calls
//     Release exactly once.
//   - A view that aliases a Buf's bytes (wire.DecodeCSRView) is only valid
//     while at least one reference is held. Release is the holder's promise
//     that no view derived from the buffer will be touched again.
//   - Forgetting to Release is safe: the buffer falls back to the garbage
//     collector and the pool just misses next time. Releasing early (or
//     twice) is the only dangerous mistake, so release hooks exist only
//     where the lifecycle is unambiguous.
//
// SetPoison(true) turns on a debug mode that clobbers a buffer's bytes the
// moment its refcount hits zero, so any view that outlives its Release shows
// up as corrupt data in tests instead of a silent heisenbug.
package mem

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"pprengine/internal/metrics"
)

// Size classes are powers of two from 1<<minClassBits to 1<<maxClassBits.
// Requests above the largest class are allocated directly (counted as pool
// misses) and never pooled: a handful of giant frames should not pin giant
// buffers in the pool.
const (
	minClassBits = 9  // 512 B
	maxClassBits = 21 // 2 MiB — covers readPayload's 1 MiB chunk and typical frames
	numClasses   = maxClassBits - minClassBits + 1
)

// poisonByte is the fill pattern for released buffers in poison mode. As a
// float32 it is a denormal garbage value; as an int32 it is a large negative
// index — either way, a stale view trips validation or score checks fast.
const poisonByte = 0xDB

var poisonOn atomic.Bool

// SetPoison toggles the debug poison mode globally: when on, a buffer's
// bytes are overwritten with 0xDB on final release, before the buffer is
// recycled. Tests use this to prove no decoded view outlives its buffer.
func SetPoison(on bool) { poisonOn.Store(on) }

// PoisonEnabled reports whether poison mode is on.
func PoisonEnabled() bool { return poisonOn.Load() }

// classFor returns the size-class index for a request of n bytes, or -1 when
// n is too large to pool.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Pool hands out refcounted byte buffers in power-of-two size classes.
// The zero value is ready to use. Pools are safe for concurrent use.
type Pool struct {
	classes [numClasses]sync.Pool

	hits     atomic.Int64
	misses   atomic.Int64
	releases atomic.Int64
	live     atomic.Int64 // bytes currently checked out (capacity, not len)
}

// PoolStats is a snapshot of a pool's counters.
type PoolStats struct {
	Hits     int64 // Gets served by recycling a released buffer
	Misses   int64 // Gets that had to allocate (cold pool or oversized)
	Releases int64 // final releases that returned a buffer
	Live     int64 // bytes currently checked out
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Releases: p.releases.Load(),
		Live:     p.live.Load(),
	}
}

// Buf is a refcounted byte buffer, possibly backed by a pool. The zero
// reference state is owned by whoever called Get (refs = 1).
type Buf struct {
	pool  *Pool
	class int // -1: not pooled (oversized or Wrap'd)
	b     []byte
	refs  atomic.Int32
}

// Get returns a buffer of length n with one reference owned by the caller.
// The bytes are not zeroed beyond what the caller will overwrite — callers
// fill the buffer before sharing it.
func (p *Pool) Get(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		p.misses.Add(1)
		metrics.PoolMisses.Inc(1)
		b := &Buf{pool: p, class: -1, b: make([]byte, n)}
		b.refs.Store(1)
		p.live.Add(int64(n))
		metrics.PoolLiveBytes.Add(int64(n))
		return b
	}
	size := 1 << (minClassBits + c)
	if v := p.classes[c].Get(); v != nil {
		b := v.(*Buf)
		b.b = b.b[:n]
		b.refs.Store(1)
		p.hits.Add(1)
		metrics.PoolHits.Inc(1)
		p.live.Add(int64(size))
		metrics.PoolLiveBytes.Add(int64(size))
		return b
	}
	p.misses.Add(1)
	metrics.PoolMisses.Inc(1)
	b := &Buf{pool: p, class: c, b: make([]byte, n, size)}
	b.refs.Store(1)
	p.live.Add(int64(size))
	metrics.PoolLiveBytes.Add(int64(size))
	return b
}

// Wrap adopts an externally-allocated slice as an unpooled refcounted
// buffer: Release semantics apply (poison included) but the memory is left
// to the garbage collector.
func Wrap(b []byte) *Buf {
	buf := &Buf{class: -1, b: b}
	buf.refs.Store(1)
	return buf
}

// Bytes returns the buffer's contents. Valid only while a reference is
// held. Nil-safe: a nil Buf has no bytes.
func (b *Buf) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.b
}

// Len returns the buffer's length. Nil-safe.
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return len(b.b)
}

// SetLen reslices the buffer to n, which must not exceed its capacity.
// Used by encoders that fill a Get(max)-sized buffer partially.
func (b *Buf) SetLen(n int) { b.b = b.b[:n] }

// Retain adds a reference for a new independent holder. Nil-safe.
func (b *Buf) Retain() {
	if b == nil {
		return
	}
	if b.refs.Add(1) <= 1 {
		panic("mem: Retain on a released buffer")
	}
}

// Release drops one reference. When the last reference is dropped the
// buffer's bytes become invalid: in poison mode they are clobbered
// immediately, and pooled buffers are recycled into the pool. Releasing
// more times than Retain+Get granted references panics — that bug class
// (use-after-free through a recycled buffer) must never ship silently.
// Nil-safe: releasing a nil Buf is a no-op.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("mem: Release of an already-released buffer")
	}
	if poisonOn.Load() {
		s := b.b[:cap(b.b)]
		for i := range s {
			s[i] = poisonByte
		}
	}
	if b.pool == nil {
		return // Wrap'd buffer: GC owns the memory
	}
	size := cap(b.b)
	b.pool.releases.Add(1)
	b.pool.live.Add(-int64(size))
	metrics.PoolLiveBytes.Add(-int64(size))
	if b.class >= 0 {
		b.pool.classes[b.class].Put(b)
	}
}
