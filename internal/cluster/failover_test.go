package cluster

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"pprengine/internal/chaos"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/ha"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// haTestShards builds one shard set reused across the clusters of a test, so
// the with-fault and no-fault runs serve bit-identical data.
func haTestShards(t *testing.T, g *graph.Graph, k int) ([]*shard.Shard, *shard.Locator, partition.Quality) {
	t.Helper()
	a, err := partition.Partition(g, k, partition.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, k)
	if err != nil {
		t.Fatal(err)
	}
	return shards, loc, partition.Evaluate(g, a)
}

// detConfig pins the two float-order noise sources (frontier pop order,
// parallel push reduction), making scores bitwise reproducible: any
// difference between runs is then the transport's fault.
func detConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1
	return cfg
}

// streamScores runs every query through its machine's first compute process
// (machines concurrently, a machine's queries sequentially) and returns each
// query's full global score map plus any per-query errors, machine-major.
func streamScores(c *Cluster, qs [][]int32, cfg core.Config) ([]map[int32]float64, []error) {
	total := 0
	for _, q := range qs {
		total += len(q)
	}
	out := make([]map[int32]float64, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	base := 0
	for m := range qs {
		wg.Add(1)
		go func(m, base int) {
			defer wg.Done()
			st := c.Storages[m][0]
			for i, src := range qs[m] {
				sp, _, err := core.RunSSPPR(context.Background(), st, src, cfg, nil)
				if err != nil {
					errs[base+i] = err
					continue
				}
				out[base+i] = core.ScoresGlobal(st, sp)
			}
		}(m, base)
		base += len(qs[m])
	}
	wg.Wait()
	return out, errs
}

func assertSameScores(t *testing.T, want, got []map[int32]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("score sets differ in length: %d vs %d", len(want), len(got))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			t.Fatalf("query %d touched %d nodes in baseline, %d under failover", q, len(want[q]), len(got[q]))
		}
		for node, w := range want[q] {
			g, ok := got[q][node]
			if !ok {
				t.Fatalf("query %d lost node %d under failover", q, node)
			}
			if math.Abs(w-g) > 1e-12 {
				t.Fatalf("query %d node %d: score %g vs %g", q, node, w, g)
			}
		}
	}
}

func TestReplicatedClusterBasics(t *testing.T) {
	g := testGraph(21, 400, 2400)
	shards, loc, quality := haTestShards(t, g, 4)
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 4, ProcsPerMachine: 2, Replicas: 2,
		ProbeInterval: 50 * time.Millisecond,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Placement.Validate(4); err != nil {
		t.Fatal(err)
	}
	replicaServers := 0
	for _, machine := range c.ReplicaServers {
		replicaServers += len(machine)
	}
	if replicaServers != 4 {
		t.Fatalf("%d replica servers, want 4 (one extra copy per shard)", replicaServers)
	}
	for m := 0; m < 4; m++ {
		if c.Routers[m] == nil || c.Trackers[m] == nil {
			t.Fatalf("machine %d missing router/tracker", m)
		}
		for s := int32(0); s < 4; s++ {
			if int(s) == m {
				continue
			}
			if eps := c.Routers[m].Endpoints(s); len(eps) != 2 {
				t.Fatalf("machine %d shard %d: %d endpoints, want 2", m, s, len(eps))
			}
		}
	}
	// With every machine healthy the batch runs entirely on primaries.
	qs := c.EvenQuerySet(4, 11)
	res, err := c.RunSSPPRBatch(context.Background(), qs, detConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d queries failed on a healthy replicated cluster: %v", res.Failed, res.Errors[0])
	}
	if st := c.HAStats(); st.Failovers != 0 {
		t.Fatalf("Failovers = %d on a healthy cluster, want 0", st.Failovers)
	}
	if n := c.NetStats(); n.RequestsSent == 0 {
		t.Fatal("NetStats should count routed endpoint traffic")
	}
}

// TestFailoverKillMidStream is the acceptance scenario: 4 machines with R=2,
// the fault injector crashes machine 1 partway through a query stream, and
// every query must still complete with scores identical to a no-fault run on
// the same shards. After reviving the machine, probes close its breaker and
// traffic returns to the primary.
func TestFailoverKillMidStream(t *testing.T) {
	g := testGraph(22, 500, 3000)
	const victim = 1
	shards, loc, quality := haTestShards(t, g, 4)
	cfg := detConfig()

	// Baseline: same shards, no replication, no faults.
	base, err := NewFromShards(shards, loc, Options{NumMachines: 4, ProcsPerMachine: 1}, quality)
	if err != nil {
		t.Fatal(err)
	}
	qs := base.EvenQuerySet(6, 13)
	wantScores, errs := streamScores(base, qs, cfg)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	base.Close()

	// Faulted run: machine 1 crashes after its 40th response write — mid
	// stream, while queries from the other machines still need shard 1.
	inj := chaos.New(1234)
	inj.SetPlan(victim, chaos.Plan{KillAfterWrites: 40})
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 4, ProcsPerMachine: 1, Replicas: 2,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 2,
		FailoverTimeout:  2 * time.Second,
		Chaos:            inj,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gotScores, errs := streamScores(c, qs, cfg)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed despite replication: %v", i, err)
		}
	}
	if st := inj.Stats(victim); st.Kills != 1 {
		t.Fatalf("injector kills = %d, want 1 (stream too short to trigger the crash?)", st.Kills)
	}
	assertSameScores(t, wantScores, gotScores)
	if st := c.HAStats(); st.Failovers == 0 {
		t.Fatal("no failovers recorded although the primary died mid-stream")
	}

	// Recovery: revive the machine; probes walk its breaker back to closed
	// on every peer's tracker.
	inj.Revive(victim)
	deadline := time.Now().Add(10 * time.Second)
	for {
		closed := true
		for m := 0; m < 4; m++ {
			if m == victim {
				continue
			}
			if c.Trackers[m].State("m1") != ha.BreakerClosed {
				closed = false
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			for m := 0; m < 4; m++ {
				if m != victim {
					t.Logf("machine %d sees m1 as %v", m, c.Trackers[m].State("m1"))
				}
			}
			t.Fatal("breakers never closed after revival")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Traffic returns to the revived primary: a routed request from machine 0
	// to shard 1 lands on machine 1's endpoint, with no new failover.
	primary := c.Routers[0].Endpoints(victim)[0]
	if primary.Machine != victim {
		t.Fatalf("endpoint 0 of shard 1 is machine %d, want %d", primary.Machine, victim)
	}
	reqsBefore, _, _ := primary.NetStats()
	failoversBefore := c.Routers[0].Failovers()
	if _, err := c.Storages[0][0].GetShardStats(victim); err != nil {
		t.Fatalf("routed request after recovery failed: %v", err)
	}
	reqsAfter, _, _ := primary.NetStats()
	if reqsAfter <= reqsBefore {
		t.Fatal("recovered primary received no traffic")
	}
	if c.Routers[0].Failovers() != failoversBefore {
		t.Fatal("request after recovery should not fail over")
	}
}

// TestFailoverBlackhole exercises the timeout path: the victim's packets
// vanish instead of erroring, so only the router's attempt timeout detects
// the failure and converts it into a failover.
func TestFailoverBlackhole(t *testing.T) {
	g := testGraph(23, 300, 1800)
	const victim = 2
	shards, loc, quality := haTestShards(t, g, 3)
	inj := chaos.New(99)
	inj.SetPlan(victim, chaos.Plan{Blackhole: true})
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 3, ProcsPerMachine: 1, Replicas: 2,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 2,
		FailoverTimeout:  300 * time.Millisecond,
		Chaos:            inj,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inj.Kill(victim)
	// A query from machine 0 touching shard 2 must complete: the blackholed
	// attempt times out after FailoverTimeout and the replica serves it.
	qs := c.EvenQuerySet(2, 7)
	res, err := c.RunSSPPRBatch(context.Background(), qs, detConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d queries failed under blackhole: %v", res.Failed, res.Errors[0])
	}
	if st := c.HAStats(); st.Failovers == 0 {
		t.Fatal("no failovers recorded under blackhole")
	}
}

func TestQueryErrorFaultAttribution(t *testing.T) {
	// A peer-attributed error surfaces machine and shard; a plain one does not.
	qe := newQueryError(0, 1, 5, ha.WrapPeer(2, 2, "x:1", context.DeadlineExceeded))
	if qe.FaultMachine != 2 || qe.FaultShard != 2 {
		t.Fatalf("fault = (%d, %d), want (2, 2)", qe.FaultMachine, qe.FaultShard)
	}
	if qe.Error() == "" {
		t.Fatal("empty error string")
	}
	qe = newQueryError(0, 1, 5, context.DeadlineExceeded)
	if qe.FaultMachine != -1 || qe.FaultShard != -1 {
		t.Fatalf("fault = (%d, %d), want (-1, -1) for a local timeout", qe.FaultMachine, qe.FaultShard)
	}
}
