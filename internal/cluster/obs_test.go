package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pprengine/internal/chaos"
	"pprengine/internal/core"
	"pprengine/internal/ha"
	"pprengine/internal/obs"
)

// TestSingleQueryDistributedTrace is the tracing acceptance scenario: on a
// 4-machine cluster with TraceSample=1, one SSPPR query must yield exactly one
// trace whose spans come from at least two machines and cover the query's
// phases (pop, push, remote fetch) plus the remote servers' rpc spans.
func TestSingleQueryDistributedTrace(t *testing.T) {
	g := testGraph(31, 400, 2400)
	c, err := New(g, Options{
		NumMachines: 4, ProcsPerMachine: 1, Seed: 31,
		TraceSample: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := c.EvenQuerySet(1, 5)[0][0]
	st := c.Storages[0][0]
	sp, _, err := core.RunSSPPR(context.Background(), st, src, detConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp == nil {
		t.Fatal("nil result")
	}

	spans := c.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded at TraceSample=1")
	}
	// Find the query's root span and keep only its trace.
	var trace uint64
	for _, s := range spans {
		if s.Name == "query" && s.Parent == 0 {
			if trace != 0 && s.Trace != trace {
				t.Fatalf("multiple root query spans for one query: traces %x and %x", trace, s.Trace)
			}
			trace = s.Trace
		}
	}
	if trace == 0 {
		t.Fatal("no root query span recorded")
	}
	machines := map[int32]bool{}
	names := map[string]int{}
	byID := map[uint64]obs.Span{}
	for _, s := range spans {
		if s.Trace != trace {
			continue
		}
		machines[s.Machine] = true
		names[s.Name]++
		byID[s.ID] = s
	}
	if len(machines) < 2 {
		t.Fatalf("trace spans %d machine(s), want >= 2 (names: %v)", len(machines), names)
	}
	for _, want := range []string{"query", "pop", "push", "remote-fetch"} {
		if names[want] == 0 {
			t.Fatalf("trace has no %q span (names: %v)", want, names)
		}
	}
	rpcSpans := 0
	for name, n := range names {
		if strings.HasPrefix(name, "rpc:") {
			rpcSpans += n
		}
	}
	if rpcSpans == 0 {
		t.Fatalf("trace has no server-side rpc span (names: %v)", names)
	}
	// Every non-root span's parent must be part of the same trace: the
	// cross-machine links were carried by the wire protocol, not guessed.
	for _, s := range byID {
		if s.Parent == 0 {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %q (id %x) has parent %x outside its trace", s.Name, s.ID, s.Parent)
		}
	}
	// The summary view used by /debug/traces agrees.
	sums := obs.SummarizeTraces(spans, 0, 10)
	found := false
	for _, ts := range sums {
		if ts.Trace == trace {
			found = true
			if ts.RootName != "query" {
				t.Fatalf("RootName = %q, want query", ts.RootName)
			}
			sumMachines := map[int32]bool{}
			for _, s := range ts.Spans {
				sumMachines[s.Machine] = true
			}
			if len(sumMachines) < 2 {
				t.Fatalf("summary spans %d machines, want >= 2", len(sumMachines))
			}
		}
	}
	if !found {
		t.Fatal("trace missing from SummarizeTraces output")
	}
}

// metricValue extracts the value of the first sample whose name (with or
// without labels) matches, from Prometheus exposition text. Returns -1 when
// the metric is absent.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	return -1
}

func adminFetch(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestAdminObservesFailover runs the admin server against a live replicated
// cluster: /metrics exposes nonzero engine counters while queries flow,
// failovers and breaker transitions show up after a machine is killed, and
// /readyz flips not-ready when a whole shard becomes unreachable, then
// recovers after revival.
func TestAdminObservesFailover(t *testing.T) {
	g := testGraph(33, 300, 1800)
	const victimShard = 1
	shards, loc, quality := haTestShards(t, g, 3)
	inj := chaos.New(77)
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 3, ProcsPerMachine: 1, Replicas: 2,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 2,
		FailoverTimeout:  300 * time.Millisecond,
		Chaos:            inj,
		TraceSample:      1.0,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	admin := obs.NewAdmin(nil)
	obs.RegisterEngineMetrics(admin.Registry())
	for _, tr := range c.Tracers {
		admin.AttachTracer(tr)
	}
	// Machine 0's view of the cluster gates readiness: when every serving
	// endpoint of some remote shard has an open breaker, this process cannot
	// answer queries touching that shard.
	admin.AddCheck("breakers", c.Routers[0].ReadyCheck)
	addr, err := admin.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Shutdown(context.Background())
	base := "http://" + addr

	// Bootstrapping: not ready until the server says so.
	if code, body := adminFetch(t, base, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady: %d %q, want 503", code, body)
	}
	admin.SetReady(true)
	if code, _ := adminFetch(t, base, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after SetReady: %d, want 200", code)
	}

	// Healthy traffic: counters move.
	if res, err := c.RunSSPPRBatch(context.Background(), c.EvenQuerySet(3, 9), detConfig(), EngineMap); err != nil || res.Failed != 0 {
		t.Fatalf("healthy batch: failed=%d err=%v", res.Failed, err)
	}
	code, text := adminFetch(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, name := range []string{"ppr_wire_requests_total", "ppr_wire_bytes_sent_total", "ppr_probes_sent_total"} {
		if v := metricValue(t, text, name); v <= 0 {
			t.Fatalf("%s = %v after traffic, want > 0", name, v)
		}
	}

	// Kill the victim shard's primary: queries keep succeeding via the
	// replica, and the failover is visible on /metrics.
	primaryHost := c.Placement.Machines(victimShard)[0]
	inj.Kill(primaryHost)
	deadline := time.Now().Add(10 * time.Second)
	for c.Trackers[0].State(fmt.Sprintf("m%d", primaryHost)) == ha.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("victim's breaker never left closed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if res, err := c.RunSSPPRBatch(context.Background(), c.EvenQuerySet(2, 11), detConfig(), EngineMap); err != nil || res.Failed != 0 {
		t.Fatalf("batch under failover: failed=%d err=%v", res.Failed, err)
	}
	_, text = adminFetch(t, base, "/metrics")
	for _, name := range []string{"ppr_breaker_opens_total", "ppr_probe_failures_total"} {
		if v := metricValue(t, text, name); v <= 0 {
			t.Fatalf("%s = %v after killing machine %d, want > 0", name, v, primaryHost)
		}
	}

	// Kill every remaining host of the shard: machine 0 can no longer reach
	// it anywhere, so /readyz must flip 503 (and name the failing check).
	for _, m := range c.Placement.Machines(victimShard)[1:] {
		inj.Kill(m)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, body := adminFetch(t, base, "/readyz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "breakers") {
				t.Fatalf("/readyz 503 body %q does not name the check", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped not-ready after the shard went dark")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Revival closes the breakers and readiness recovers.
	for _, m := range c.Placement.Machines(victimShard) {
		inj.Revive(m)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code, _ := adminFetch(t, base, "/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after revival")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The traced batches surface on /debug/traces.
	code, body := adminFetch(t, base, "/debug/traces?limit=5")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", code)
	}
	if !strings.Contains(body, `"root_name": "query"`) {
		t.Fatalf("/debug/traces has no query trace: %s", body)
	}
}
