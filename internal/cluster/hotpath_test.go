package cluster

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/mem"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// TestZeroCopyPoisonedScoresIdentical is the end-to-end aliasing-safety
// check of the zero-copy hot path. It runs the same concurrent query batch
// with copy decoding (the reference), then over the zero-copy path plain,
// with cross-query aggregation, and with the dynamic cache — all with buffer
// poisoning enabled, so any pooled payload released while a decoded view
// still reads it is overwritten with 0xDB bytes instead of staying
// plausibly intact. Under the deterministic engine config the passes must
// produce bitwise-identical scores; a single poisoned float anywhere in a
// result indicts a buffer released before its last reader. The cache pass
// runs its query set twice — the second round is served largely from cached
// rows that must have been copied out before their source buffers were
// recycled by the first round's churn.
func TestZeroCopyPoisonedScoresIdentical(t *testing.T) {
	mem.SetPoison(true)
	defer mem.SetPoison(false)

	const machines = 4
	const procs = 8
	g := testGraph(13, 800, 4800)
	a, err := partition.Partition(g, machines, partition.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		t.Fatal(err)
	}
	quality := partition.Evaluate(g, a)

	cfg := core.DefaultConfig()
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1
	cfg.Eps = 1e-5

	runPass := func(zeroCopy, aggregated bool, cacheBytes int64, rounds int) []map[int32]float64 {
		t.Helper()
		passCfg := cfg
		passCfg.ZeroCopy = zeroCopy
		passCfg.CacheBytes = cacheBytes
		opts := Options{
			NumMachines:     machines,
			ProcsPerMachine: procs,
			ZeroCopy:        zeroCopy,
			CacheBytes:      cacheBytes,
			// The link latency creates in-flight windows so concurrent
			// fetches actually share flushes and single-flight fills.
			Latency: rpc.LatencyModel{Base: 2 * time.Millisecond},
		}
		if aggregated {
			opts.AggWindow = 5 * time.Millisecond
		}
		c, err := NewFromShards(shards, loc, opts, quality)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		qs := c.EvenQuerySet(procs*2, 9)
		var out []map[int32]float64
		for round := 0; round < rounds; round++ {
			out = make([]map[int32]float64, machines*len(qs[0]))
			var wg sync.WaitGroup
			for m := 0; m < machines; m++ {
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(m, p int) {
						defer wg.Done()
						st := c.Storages[m][p]
						for i := p; i < len(qs[m]); i += procs {
							sp, _, err := core.RunSSPPR(context.Background(), st, qs[m][i], passCfg, nil)
							if err != nil {
								t.Errorf("machine %d proc %d: %v", m, p, err)
								return
							}
							out[m*len(qs[m])+i] = core.ScoresGlobal(st, sp)
						}
					}(m, p)
				}
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
		}
		return out
	}

	ref := runPass(false, false, 0, 1)
	for _, pass := range []struct {
		name       string
		aggregated bool
		cacheBytes int64
		rounds     int
	}{
		{"zerocopy", false, 0, 1},
		{"zerocopy+agg", true, 0, 1},
		{"zerocopy+cache", false, 16 << 20, 2},
	} {
		got := runPass(true, pass.aggregated, pass.cacheBytes, pass.rounds)
		for q := range ref {
			if len(ref[q]) != len(got[q]) {
				t.Fatalf("%s: query %d touched %d nodes copy-decoded, %d zero-copy",
					pass.name, q, len(ref[q]), len(got[q]))
			}
			for node, w := range ref[q] {
				v, ok := got[q][node]
				if !ok || math.Float64bits(v) != math.Float64bits(w) {
					t.Fatalf("%s: query %d node %d: copy-decoded %v, zero-copy %v (poisoned view?)",
						pass.name, q, node, w, got[q][node])
				}
			}
		}
	}
}
