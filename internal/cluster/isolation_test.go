package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/rpc"
	"pprengine/internal/wire"
)

// slowShard makes machine m's neighbor-info handlers sleep for d before
// answering — one misbehaving storage server in an otherwise healthy
// cluster.
func slowShard(c *Cluster, m int, d time.Duration) {
	sh := c.Shards[m]
	slow := func(encode func(*wire.NeighborInfos) []byte) rpc.Handler {
		return func(p []byte) ([]byte, error) {
			time.Sleep(d)
			ids, err := wire.DecodeIDList(p)
			if err != nil {
				return nil, err
			}
			infos, err := core.BuildInfos(sh, ids)
			if err != nil {
				return nil, err
			}
			return encode(infos), nil
		}
	}
	c.Servers[m].Handle(rpc.MethodGetNeighborInfos, slow(wire.EncodeCSR))
	c.Servers[m].Handle(rpc.MethodGetNeighborInfosLoL, slow(wire.EncodeLoL))
	c.Servers[m].Handle(rpc.MethodGetNeighborInfoOne, slow(wire.EncodeLoL))
}

// TestBatchTimeoutIsolation is the issue's isolation scenario: one shard's
// storage server answers far slower than the per-query deadline, so every
// query that needs it times out — while queries on the other machine, which
// never touch the slow shard remotely, complete normally. One query's
// timeout must not abort the batch.
func TestBatchTimeoutIsolation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    core.FetchMode
		eps     float64
		timeout time.Duration
	}{
		{"compress", core.FetchBatchCompress, 1e-7, 50 * time.Millisecond},
		{"batch", core.FetchBatch, 1e-7, 50 * time.Millisecond},
		// The Single ablation pays one round trip per vertex, so even the
		// healthy machine needs real time; its deadline is looser but still
		// well under the slow shard's delay.
		{"single", core.FetchSingle, 1e-5, 150 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(11, 300, 1800)
			c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// Machine 1 answers neighbor fetches after 300ms — far past the
			// 50ms query deadline. Machine 1's own queries read shard 1
			// through shared memory and only fetch from (healthy) shard 0.
			slowShard(c, 1, 300*time.Millisecond)

			cfg := core.DefaultConfig()
			cfg.Mode = tc.mode
			cfg.Eps = tc.eps // enough work that machine 0 must fetch from shard 1
			cfg.QueryTimeout = tc.timeout
			queries := c.EvenQuerySet(4, 5)
			res, err := c.RunSSPPRBatch(context.Background(), queries, cfg, EngineMap)
			if err != nil {
				t.Fatalf("batch must not abort on per-query timeouts: %v", err)
			}
			if res.Failed == 0 {
				t.Fatal("expected machine 0's queries to time out against the slow shard")
			}
			if res.Failed == res.Queries {
				t.Fatal("machine 1's queries should have survived")
			}
			if res.Timeouts < int64(res.Failed) {
				t.Fatalf("Timeouts = %d, Failed = %d", res.Timeouts, res.Failed)
			}
			for _, qe := range res.Errors {
				if qe.Machine != 0 {
					t.Fatalf("machine %d failed a query: %v", qe.Machine, qe)
				}
				if !errors.Is(qe, context.DeadlineExceeded) {
					t.Fatalf("failure is not a deadline expiry: %v", qe)
				}
			}
		})
	}
}

// TestBatchContextCancelled: when the batch context itself is cancelled,
// RunSSPPRBatch reports every query failed and returns the context error.
func TestBatchContextCancelled(t *testing.T) {
	g := testGraph(12, 200, 1200)
	c, err := New(g, Options{NumMachines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.RunSSPPRBatch(ctx, c.EvenQuerySet(3, 9), core.DefaultConfig(), EngineMap)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if res.Failed != res.Queries || res.Queries == 0 {
		t.Fatalf("Failed = %d of %d, want all", res.Failed, res.Queries)
	}
}

// TestWalkBatchContextCancelled: same contract for the random-walk batch.
func TestWalkBatchContextCancelled(t *testing.T) {
	g := testGraph(13, 200, 1200)
	c, err := New(g, Options{NumMachines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = c.RunRandomWalkBatch(ctx, 4, 10, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
