package cluster

import (
	"context"
	"math"
	"testing"

	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/ppr"
)

func testGraph(seed int64, n int, m int64) *graph.Graph {
	return graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: n, NumEdges: m, A: 0.55, B: 0.2, C: 0.15, Seed: seed,
	}))
}

func TestNewClusterBasics(t *testing.T) {
	g := testGraph(1, 400, 2400)
	c, err := New(g, Options{NumMachines: 4, ProcsPerMachine: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Shards) != 4 || len(c.Servers) != 4 || len(c.Storages) != 4 {
		t.Fatal("wrong machine count")
	}
	for m := range c.Storages {
		if len(c.Storages[m]) != 2 {
			t.Fatal("wrong proc count")
		}
		for _, st := range c.Storages[m] {
			if st.ShardID != int32(m) || st.Local != c.Shards[m] {
				t.Fatal("storage wiring wrong")
			}
		}
	}
	total := 0
	for _, s := range c.Shards {
		total += s.NumCore()
	}
	if total != g.NumNodes {
		t.Fatalf("shards cover %d of %d nodes", total, g.NumNodes)
	}
	if c.Quality.EdgeCut <= 0 || c.Quality.Balance <= 0 {
		t.Fatalf("quality not computed: %+v", c.Quality)
	}
}

func TestClusterErrors(t *testing.T) {
	g := testGraph(2, 100, 500)
	if _, err := New(g, Options{NumMachines: 0}); err == nil {
		t.Fatal("expected error for 0 machines")
	}
}

func TestEvenQuerySet(t *testing.T) {
	g := testGraph(3, 300, 1500)
	c, err := New(g, Options{NumMachines: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(10, 7)
	if len(qs) != 3 {
		t.Fatal("machines")
	}
	for m, q := range qs {
		if len(q) != 10 {
			t.Fatalf("machine %d: %d queries", m, len(q))
		}
		for _, l := range q {
			if int(l) >= c.Shards[m].NumCore() || l < 0 {
				t.Fatalf("query id out of range")
			}
		}
	}
	// Determinism.
	qs2 := c.EvenQuerySet(10, 7)
	for m := range qs {
		for i := range qs[m] {
			if qs[m][i] != qs2[m][i] {
				t.Fatal("query set not deterministic")
			}
		}
	}
}

func TestRunSSPPRBatchBothEngines(t *testing.T) {
	g := testGraph(4, 400, 2400)
	c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(4, 11)
	cfg := core.DefaultConfig()
	for _, kind := range []EngineKind{EngineMap, EngineTensor} {
		res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Queries != 8 {
			t.Fatalf("%v: queries = %d", kind, res.Queries)
		}
		if res.Throughput <= 0 || res.Wall <= 0 {
			t.Fatalf("%v: no throughput", kind)
		}
		if res.Pushes == 0 {
			t.Fatalf("%v: no pushes", kind)
		}
		if res.Breakdown.Count(metrics.PhasePush) == 0 {
			t.Fatalf("%v: empty breakdown", kind)
		}
		if res.RemoteFraction() <= 0 || res.RemoteFraction() >= 1 {
			t.Fatalf("%v: remote fraction = %v", kind, res.RemoteFraction())
		}
	}
}

func TestClusterResultsMatchGroundTruth(t *testing.T) {
	g := testGraph(5, 300, 1800)
	c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Run one query directly through a cluster storage handle and compare
	// to power iteration.
	src := c.Shards[0].CoreGlobal[3]
	exact, _ := ppr.PowerIteration(g, src, 0.462, 1e-12, 100000)
	m, _, err := core.RunSSPPR(context.Background(), c.Storages[0][0], 3, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := core.ScoresGlobal(c.Storages[0][0], m)
	prec := 0
	top := 50
	exactTop := ppr.TopKOfMap(mapFromVec(exact), top)
	approxSet := map[graph.NodeID]bool{}
	for _, v := range ppr.TopKOfMap(mapFromScores(scores), top) {
		approxSet[v] = true
	}
	for _, v := range exactTop {
		if approxSet[v] {
			prec++
		}
	}
	if float64(prec)/float64(top) < 0.9 {
		t.Fatalf("top-%d precision = %d/%d", top, prec, top)
	}
}

func mapFromVec(v []float64) map[graph.NodeID]float64 {
	m := make(map[graph.NodeID]float64, len(v))
	for i, x := range v {
		if x > 0 {
			m[graph.NodeID(i)] = x
		}
	}
	return m
}

func mapFromScores(s map[int32]float64) map[graph.NodeID]float64 {
	m := make(map[graph.NodeID]float64, len(s))
	for k, v := range s {
		m[graph.NodeID(k)] = v
	}
	return m
}

func TestHashPartitionHasMoreRemoteTraffic(t *testing.T) {
	g := testGraph(6, 500, 3000)
	qs := [][]int32{}
	var fracMinCut, fracHash float64
	for _, pk := range []PartitionKind{PartitionMinCut, PartitionHash} {
		c, err := New(g, Options{NumMachines: 4, ProcsPerMachine: 1, Partitioner: pk, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		qs = c.EvenQuerySet(4, 13)
		res, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap)
		if err != nil {
			t.Fatal(err)
		}
		if pk == PartitionMinCut {
			fracMinCut = res.RemoteFraction()
		} else {
			fracHash = res.RemoteFraction()
		}
		c.Close()
	}
	if fracMinCut >= fracHash {
		t.Fatalf("min-cut remote fraction %v should beat hash %v", fracMinCut, fracHash)
	}
}

func TestRunRandomWalkBatch(t *testing.T) {
	g := testGraph(7, 300, 2000)
	c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, summaries, err := c.RunRandomWalkBatch(context.Background(), 6, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 12 {
		t.Fatalf("queries = %d", res.Queries)
	}
	for m := range summaries {
		if len(summaries[m]) != 6 {
			t.Fatalf("machine %d walks = %d", m, len(summaries[m]))
		}
		for i, w := range summaries[m] {
			if len(w) != 6 {
				t.Fatalf("machine %d walk %d len = %d", m, i, len(w))
			}
			if w[0] < 0 || int(w[0]) >= g.NumNodes {
				t.Fatal("bad walk start")
			}
		}
	}
}

func TestLDGPartitionOption(t *testing.T) {
	g := testGraph(8, 200, 1200)
	c, err := New(g, Options{NumMachines: 2, Partitioner: PartitionLDG, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(2, 1)
	if _, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap); err != nil {
		t.Fatal(err)
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineMap.String() != "PPR Engine" || EngineTensor.String() != "PyTorch Tensor" {
		t.Fatal("labels")
	}
}

func TestThroughputScalesWithProcs(t *testing.T) {
	// Weak smoke check: 2 procs should not be slower than ~55% of 1 proc's
	// per-query pace on the same workload (i.e. some parallel speedup).
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	g := testGraph(9, 2000, 16000)
	var tp1, tp2 float64
	for _, procs := range []int{1, 4} {
		c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: procs, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		qs := c.EvenQuerySet(16, 3)
		// Warm up.
		if _, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap); err != nil {
			t.Fatal(err)
		}
		res, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap)
		if err != nil {
			t.Fatal(err)
		}
		if procs == 1 {
			tp1 = res.Throughput
		} else {
			tp2 = res.Throughput
		}
		c.Close()
	}
	if math.IsNaN(tp1) || tp2 < tp1*0.8 {
		t.Fatalf("4-proc throughput %v much worse than 1-proc %v", tp2, tp1)
	}
}

func TestClusterHaloOption(t *testing.T) {
	g := testGraph(10, 300, 2000)
	c, err := New(g, Options{NumMachines: 2, ProcsPerMachine: 1, CacheHaloRows: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, s := range c.Shards {
		if !s.HasHaloRows() {
			t.Fatal("halo rows not built")
		}
	}
	qs := c.EvenQuerySet(4, 9)
	res, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaloRows == 0 {
		t.Fatal("halo rows not used at query time")
	}
}

func TestSingleMachineCluster(t *testing.T) {
	// k=1: everything is local; the engine must work without any RPC.
	g := testGraph(11, 200, 1200)
	c, err := New(g, Options{NumMachines: 1, ProcsPerMachine: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(4, 3)
	res, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteRows != 0 {
		t.Fatalf("single machine produced remote rows: %d", res.RemoteRows)
	}
	if res.LocalRows == 0 || res.Pushes == 0 {
		t.Fatal("no work done")
	}
}
