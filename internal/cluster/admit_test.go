package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/chaos"
	"pprengine/internal/core"
)

// TestHedgeSlowReplicaDeterministic is the tail-latency acceptance scenario:
// machine 1 is slow but alive (every socket IO delayed well under the probe
// timeout, so breakers stay closed and failover never engages), hedged
// fetches race the replica after a short delay, and the hedge must win at
// least once — with scores bitwise-identical to an unhedged baseline on the
// same shards, and with wins counted as hedge wins, not failovers.
func TestHedgeSlowReplicaDeterministic(t *testing.T) {
	g := testGraph(31, 400, 2400)
	const victim = 1
	shards, loc, quality := haTestShards(t, g, 4)
	cfg := detConfig()

	// Baseline: same shards, no replication, no faults, no hedging.
	base, err := NewFromShards(shards, loc, Options{NumMachines: 4, ProcsPerMachine: 1}, quality)
	if err != nil {
		t.Fatal(err)
	}
	qs := base.EvenQuerySet(6, 17)
	wantScores, errs := streamScores(base, qs, cfg)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	base.Close()

	inj := chaos.New(555)
	inj.SetPlan(victim, chaos.Plan{Delay: 2 * time.Millisecond})
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 4, ProcsPerMachine: 1, Replicas: 2,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Chaos:         inj,
		Hedge:         true,
		HedgeDelay:    500 * time.Microsecond,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for m := 0; m < 4; m++ {
		if c.Hedgers[m] == nil {
			t.Fatalf("machine %d has no hedger although Hedge was requested", m)
		}
	}

	gotScores, errs := streamScores(c, qs, cfg)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed under a slow replica: %v", i, err)
		}
	}
	assertSameScores(t, wantScores, gotScores)

	hs := c.HedgeStats()
	if hs.Hedges == 0 {
		t.Fatal("no hedges launched although machine 1 delays every IO past the hedge delay")
	}
	if hs.Wins == 0 {
		t.Fatalf("no hedge wins out of %d hedges against a 2ms-per-IO victim", hs.Hedges)
	}
	// Satellite invariant: a hedge win is NOT a failover. The victim never
	// failed a request — it was merely slow — so ha's failover count must
	// stay untouched.
	if st := c.HAStats(); st.Failovers != 0 {
		t.Fatalf("Failovers = %d in a slow-but-alive scenario; hedge wins must not inflate failover stats", st.Failovers)
	}
}

// TestAdmissionShedsAtClusterLevel drives one machine's compute handle far
// past its admission cap from concurrent goroutines: the cap plus a short
// queue admit a few queries, everything else is shed with a typed error in
// well under the deadline, and the cluster-level snapshot accounts for every
// outcome.
func TestAdmissionShedsAtClusterLevel(t *testing.T) {
	g := testGraph(32, 400, 2400)
	shards, loc, quality := haTestShards(t, g, 2)
	c, err := NewFromShards(shards, loc, Options{
		NumMachines: 2, ProcsPerMachine: 4,
		AdmitMaxInFlight: 1,
		AdmitMaxQueue:    1,
		AdmitTenantRate:  64,
	}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for m := 0; m < 2; m++ {
		if c.Admits[m] == nil {
			t.Fatalf("machine %d has no admission controller", m)
		}
	}

	cfg := core.DefaultConfig()
	cfg.Tenant = "itest"
	const lanes = 8
	const perLane = 4
	qs := c.EvenQuerySet(1, 9)
	var completed, shed atomic.Int64
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			m := lane % 2
			st := c.Storages[m][lane%4]
			for i := 0; i < perLane; i++ {
				_, _, err := core.RunSSPPR(context.Background(), st, qs[m][0], cfg, nil)
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, admit.ErrShed):
					var se *admit.ShedError
					if !errors.As(err, &se) {
						t.Errorf("shed error lost its type: %v", err)
						return
					}
					if se.Tenant != "itest" {
						t.Errorf("shed tenant = %q, want itest", se.Tenant)
					}
					shed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(lane)
	}
	wg.Wait()

	if completed.Load() == 0 {
		t.Fatal("no queries completed")
	}
	if shed.Load() == 0 {
		t.Fatalf("no sheds although %d lanes contend for cap 1 + queue 1 per machine", lanes)
	}
	snap := c.AdmitStats()
	if snap.Admitted != completed.Load() {
		t.Fatalf("snapshot admitted = %d, completed = %d", snap.Admitted, completed.Load())
	}
	if snap.Shed() != shed.Load() {
		t.Fatalf("snapshot shed = %d, observed = %d", snap.Shed(), shed.Load())
	}
	if len(snap.Tenants) == 0 {
		t.Fatal("snapshot lists no tenants after a tenant-tagged batch")
	}
}
