package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// TestAggregationScoresMatchAndRequestsDrop is the end-to-end check of
// cross-query fetch aggregation: 32 concurrent queries (4 machines x 8
// procs) run twice on identical shards, aggregation off then on. The
// aggregated run must produce bitwise-identical per-query scores (the
// engine runs in its deterministic configuration, so transport is the only
// variable) while sending at least 2x fewer wire requests. Run under -race
// this also hammers the aggregator's shared state from many procs.
func TestAggregationScoresMatchAndRequestsDrop(t *testing.T) {
	const machines = 4
	const procs = 8
	g := testGraph(11, 800, 4800)
	a, err := partition.Partition(g, machines, partition.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		t.Fatal(err)
	}
	quality := partition.Evaluate(g, a)

	cfg := core.DefaultConfig()
	// Deterministic engine config: sorted pops and single-threaded push make
	// scores bitwise reproducible, so any divergence indicts the aggregator.
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1
	// A looser eps keeps pushes light relative to fetches — the fetch-bound
	// regime aggregation targets — without shrinking the frontier to nothing.
	cfg.Eps = 1e-5

	type pass struct {
		scores   []map[int32]float64
		requests int64
		queryReq int64 // per-query accounting rollup
	}
	runPass := func(aggregated bool) pass {
		t.Helper()
		opts := Options{
			NumMachines:     machines,
			ProcsPerMachine: procs,
			// The link latency creates the in-flight windows during which
			// concurrent fetches pile up and merge.
			Latency: rpc.LatencyModel{Base: 5 * time.Millisecond},
		}
		if aggregated {
			opts.AggWindow = 10 * time.Millisecond
		}
		c, err := NewFromShards(shards, loc, opts, quality)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Three queries per proc, round-robin like RunSSPPRBatch, so every
		// machine holds 8 concurrent queries for most of the pass instead of
		// just during a brief overlap.
		qs := c.EvenQuerySet(procs*3, 9)
		before := c.NetStats()
		out := make([]map[int32]float64, machines*len(qs[0]))
		var queryReq int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for m := 0; m < machines; m++ {
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(m, p int) {
					defer wg.Done()
					st := c.Storages[m][p]
					for i := p; i < len(qs[m]); i += procs {
						sp, stats, err := core.RunSSPPR(context.Background(), st, qs[m][i], cfg, nil)
						if err != nil {
							t.Errorf("machine %d proc %d: %v", m, p, err)
							return
						}
						out[m*len(qs[m])+i] = core.ScoresGlobal(st, sp)
						mu.Lock()
						queryReq += stats.RPCRequests
						mu.Unlock()
					}
				}(m, p)
			}
		}
		wg.Wait()
		after := c.NetStats()
		if aggregated {
			st := c.AggStats()
			if st.Flushes == 0 || st.Shared == 0 {
				t.Fatalf("aggregators idle: %+v", st)
			}
		}
		return pass{scores: out, requests: after.RequestsSent - before.RequestsSent, queryReq: queryReq}
	}

	plain := runPass(false)
	agg := runPass(true)
	if t.Failed() {
		t.FailNow()
	}

	for q := range plain.scores {
		want, got := plain.scores[q], agg.scores[q]
		if len(want) != len(got) {
			t.Fatalf("query %d touched %d nodes plain, %d aggregated", q, len(want), len(got))
		}
		for node, w := range want {
			if v, ok := got[node]; !ok || v != w {
				t.Fatalf("query %d node %d: plain %v aggregated %v", q, node, w, got[node])
			}
		}
	}
	if agg.requests*2 > plain.requests {
		t.Fatalf("aggregation saved too little: %d requests vs %d plain (want >= 2x fewer)",
			agg.requests, plain.requests)
	}
	// The per-query accounting must add up to the true wire totals on both
	// passes — a shared flush is charged exactly once.
	if plain.queryReq != plain.requests {
		t.Fatalf("plain pass accounting: queries report %d requests, wire saw %d", plain.queryReq, plain.requests)
	}
	if agg.queryReq != agg.requests {
		t.Fatalf("agg pass accounting: queries report %d requests, wire saw %d", agg.queryReq, agg.requests)
	}
}

// TestAggregationBatchAccounting runs the batch driver with aggregation on
// and checks the RunResult rollup mirrors the wire counters.
func TestAggregationBatchAccounting(t *testing.T) {
	g := testGraph(12, 500, 3000)
	c, err := New(g, Options{
		NumMachines:     3,
		ProcsPerMachine: 3,
		AggWindow:       time.Millisecond,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(6, 3)
	before := c.NetStats()
	res, err := c.RunSSPPRBatch(context.Background(), qs, core.DefaultConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	after := c.NetStats()
	wire := after.RequestsSent - before.RequestsSent
	if res.RPCRequests != wire {
		t.Fatalf("RunResult.RPCRequests = %d, wire counters saw %d", res.RPCRequests, wire)
	}
	wireBytes := after.BytesSent - before.BytesSent
	if res.RequestBytes != wireBytes {
		t.Fatalf("RunResult.RequestBytes = %d, wire counters saw %d", res.RequestBytes, wireBytes)
	}
	if res.Failed != 0 {
		t.Fatalf("%d queries failed: %v", res.Failed, res.Errors[0])
	}
}
