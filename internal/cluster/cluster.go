// Package cluster simulates the paper's experimental setup (§4.1): a
// K-machine deployment built on one host, where each simulated machine owns
// one graph shard served by a Graph Storage server, and runs P compute
// processes that access the local shard through shared memory and remote
// shards through RPC. The paper spawns K×(P+1) OS processes; here machines
// are goroutine groups and the storage servers listen on loopback TCP.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/agg"
	"pprengine/internal/cache"
	"pprengine/internal/chaos"
	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/graph"
	"pprengine/internal/ha"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// PartitionKind selects the partitioning algorithm used at preprocessing.
type PartitionKind int

const (
	// PartitionMinCut is the METIS-style multilevel min-cut partitioner
	// (the paper's choice).
	PartitionMinCut PartitionKind = iota
	// PartitionHash assigns node v to shard v % K (locality-free baseline).
	PartitionHash
	// PartitionLDG is the streaming linear-deterministic-greedy baseline.
	PartitionLDG
)

// Options configures cluster construction.
type Options struct {
	NumMachines     int
	ProcsPerMachine int
	Partitioner     PartitionKind
	// Latency optionally models a network link on remote calls.
	Latency rpc.LatencyModel
	// CacheHaloRows enables the higher-hop halo cache (paper §3.2.1):
	// each shard also stores the neighbor rows of its 1-hop halo nodes,
	// trading memory for less RPC traffic.
	CacheHaloRows bool
	// CacheBytes, when > 0, gives every machine a dynamic neighbor-row
	// cache of that byte budget (internal/cache), shared by all of the
	// machine's compute processes: repeated remote fetches hit shared
	// memory and concurrent fetches of one vertex coalesce into one RPC.
	CacheBytes int64
	// AggWindow / AggRows, when either is > 0, give every machine a
	// per-destination-shard cross-query fetch aggregator (internal/agg),
	// shared by all of the machine's compute processes: concurrent queries'
	// remote fetches to one shard merge into one wire request. AggWindow
	// bounds how long a batch waits behind an in-flight flush; AggRows caps
	// a merged request's rows. Zero/zero (the default) disables aggregation.
	AggWindow time.Duration
	AggRows   int
	// ZeroCopy makes each machine's fetch aggregators decode flush responses
	// as views over the pooled payload (agg.Options.ZeroCopy). It governs the
	// machine-shared aggregators only; the per-query fetch paths follow
	// core.Config.ZeroCopy. Set both for a fully zero-copy hot path.
	ZeroCopy bool
	// FeatCacheBytes, when > 0, gives every machine a feature-row cache of
	// that byte budget (cache.FeatureCache) shared by its compute processes,
	// backing the GNN serving path: repeated feature fetches of hot vertices
	// hit shared memory and concurrent fetches of one row coalesce into one
	// RPC. FeatAdmitMass is its admission threshold — a fetched row is
	// cached only when the highest PPR mass among requesting queries reaches
	// it (0 admits every row). Feature-fetch aggregation piggybacks on
	// AggWindow/AggRows.
	FeatCacheBytes int64
	FeatAdmitMass  float64
	Seed           int64

	// Replicas, when >= 2, serves every shard from that many machines
	// (internal/ha): shard s stays primaried on machine s, and its extra
	// copies are placed on the least-loaded machines. Every compute process
	// then routes remote fetches through a per-machine ReplicaRouter that
	// fails over to a healthy replica when the primary errors, times out, or
	// has an open circuit breaker. 0 or 1 (the default) disables replication.
	Replicas int
	// ProbeInterval / ProbeTimeout configure the per-machine health pings
	// driving the breakers (defaults: 500ms / 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerThreshold opens a peer's breaker after this many consecutive
	// failures (default ha.DefaultBreakerThreshold).
	BreakerThreshold int
	// FailoverTimeout bounds each routed request attempt, converting a
	// blackholed peer into a failover instead of a hang (default 5s).
	FailoverTimeout time.Duration
	// Chaos, when non-nil, wraps every storage listener (primaries and
	// replicas) in the fault injector, so tests and the failover experiment
	// can kill, blackhole, drop, or delay individual machines.
	Chaos *chaos.Injector

	// AdmitMaxInFlight, when > 0, gives every machine an admission
	// controller (internal/admit) shared by its compute processes: at most
	// that many queries execute concurrently, AdmitMaxQueue more wait in a
	// priority queue, and the rest are shed early with a typed error.
	// AdmitTenantRate/AdmitTenantBurst configure the per-tenant token
	// buckets (0 disables quotas). 0 disables admission control entirely.
	AdmitMaxInFlight int
	AdmitMaxQueue    int
	AdmitTenantRate  float64
	AdmitTenantBurst float64
	// Hedge, with replication on, gives every machine a hedged remote-fetch
	// layer (admit.Hedger) over its replica router: a fetch whose primary
	// outlives the hedge delay is duplicated to a healthy replica and the
	// first response wins. HedgeDelay fixes the delay; 0 adapts it to the
	// observed per-shard p95. Ignored when Replicas < 2.
	Hedge      bool
	HedgeDelay time.Duration

	// Mutable gives every machine a delta-CSR mutation store (internal/delta)
	// shared by its primary server, hosted replica servers, and compute
	// processes, plus one cluster-wide mutation coordinator (on machine 0):
	// the cluster then accepts streaming graph mutations via Mutate, queries
	// pin a mutation epoch at admission, and reads resolve base CSR + deltas
	// as of that epoch. Off (the default), the engine is byte-for-byte the
	// static paper system.
	Mutable bool
	// CompactInterval, when > 0 (requires Mutable), runs each machine's
	// background compactor at that period: deltas at or below the oldest
	// pinned epoch are folded into fresh base CSRs and the epochs retired.
	// 0 leaves compaction to the MaxEpochs overflow trigger (or manual
	// Store.Compact calls).
	CompactInterval time.Duration
	// MaxEpochs caps each store's live (uncompacted) epochs; an Apply pushing
	// past it triggers a compaction. 0 = unbounded. Requires Mutable.
	MaxEpochs int

	// TraceSample, when > 0, gives every machine an obs.Tracer sampling
	// roughly that fraction of queries head-based (1.0 = every query). A
	// sampled query's trace context rides the wire, so one query yields one
	// trace spanning every machine it touched. TraceBuf caps each machine's
	// span ring buffer (0 = obs.DefaultRingSize).
	TraceSample float64
	TraceBuf    int
}

// aggEnabled reports whether the options ask for fetch aggregation.
func (o Options) aggEnabled() bool { return o.AggWindow > 0 || o.AggRows > 0 }

// haEnabled reports whether the options ask for shard replication.
func (o Options) haEnabled() bool { return o.Replicas >= 2 }

// haOptions translates the cluster knobs to the ha layer's.
func (o Options) haOptions() ha.Options {
	return ha.Options{
		ProbeInterval:    o.ProbeInterval,
		ProbeTimeout:     o.ProbeTimeout,
		BreakerThreshold: o.BreakerThreshold,
		AttemptTimeout:   o.FailoverTimeout,
	}
}

// Cluster is a running simulated deployment.
type Cluster struct {
	Opts     Options
	Shards   []*shard.Shard
	Locator  *shard.Locator
	Servers  []*core.StorageServer
	Addrs    []string
	Quality  partition.Quality
	Storages [][]*core.DistGraphStorage // [machine][proc]
	// Caches holds the per-machine dynamic neighbor-row caches (nil entries
	// when Opts.CacheBytes is 0).
	Caches []*cache.Cache
	// Aggs holds each machine's shard-indexed fetch aggregators (nil when
	// aggregation is off). Like Caches, one slice per machine is shared by
	// all of its compute processes, so aggregation works across processes.
	Aggs [][]*agg.Aggregator
	// FeatCaches / FeatAggs are the feature tier's machine-shared analogues
	// of Caches / Aggs (nil entries when Opts.FeatCacheBytes is 0 /
	// aggregation is off).
	FeatCaches []*cache.FeatureCache
	FeatAggs   [][]*agg.FeatureAggregator

	// Replication state (all nil/empty when Opts.Replicas < 2). Servers and
	// Addrs above keep their per-shard primary meaning; the extra serving
	// processes live here.
	Placement ha.Placement
	// ReplicaServers[m] lists the StorageServers machine m runs for shards
	// it replicates (in Placement.HostedReplicas(m) order).
	ReplicaServers [][]*core.StorageServer
	// Routers[m] / Trackers[m] are machine m's failover router and health
	// tracker, shared by all of its compute processes.
	Routers  []*ha.ReplicaRouter
	Trackers []*ha.HealthTracker

	// Admits[m] is machine m's admission controller (nil entries when
	// Opts.AdmitMaxInFlight is 0), shared by all of its compute processes so
	// the concurrency cap and tenant buckets are machine-wide, like the
	// cache. Hedgers[m] is its hedged-fetch layer (nil unless Opts.Hedge and
	// replication are both on).
	Admits  []*admit.Controller
	Hedgers []*admit.Hedger

	// Deltas[m] is machine m's delta-CSR mutation store (nil entries unless
	// Opts.Mutable), shared by its primary server, hosted replica servers,
	// and compute processes — machine-level shared state like the shard.
	// Coord is the cluster's single mutation coordinator, wired over machine
	// 0's store with RPC appliers to every machine.
	Deltas []*delta.Store
	Coord  *delta.Coordinator

	// Tracers[m] is machine m's span recorder (nil entries when
	// Opts.TraceSample is 0). Shared by the machine's storage server(s),
	// compute processes, aggregators, and router — exactly the sharing a real
	// machine's processes would get from a node-local trace agent.
	Tracers []*obs.Tracer

	clients      []*rpc.Client  // all direct clients, for Close and NetStats
	endpoints    []*ha.Endpoint // all router endpoints, for NetStats
	compactStops []func()       // background compactor stops, for Close
	mu           sync.Mutex
}

// New partitions g, builds shards, starts one storage server per machine,
// and connects ProcsPerMachine compute handles on every machine.
func New(g *graph.Graph, opts Options) (*Cluster, error) {
	if opts.NumMachines <= 0 {
		return nil, fmt.Errorf("cluster: NumMachines must be positive")
	}
	if opts.ProcsPerMachine <= 0 {
		opts.ProcsPerMachine = 1
	}
	var assign partition.Assignment
	var err error
	switch opts.Partitioner {
	case PartitionHash:
		assign = partition.HashPartition(g.NumNodes, opts.NumMachines)
	case PartitionLDG:
		assign = partition.LDGPartition(g, opts.NumMachines, 0.05)
	default:
		assign, err = partition.Partition(g, opts.NumMachines, partition.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
	}
	shards, loc, err := shard.BuildWithOptions(g, assign, opts.NumMachines,
		shard.BuildOptions{CacheHaloRows: opts.CacheHaloRows})
	if err != nil {
		return nil, err
	}
	return NewFromShards(shards, loc, opts, partition.Evaluate(g, assign))
}

// NewFromShards assembles a cluster from prebuilt shards (callers that cache
// partition assignments use this to skip repartitioning).
func NewFromShards(shards []*shard.Shard, loc *shard.Locator, opts Options, quality partition.Quality) (*Cluster, error) {
	if opts.NumMachines != len(shards) {
		return nil, fmt.Errorf("cluster: %d machines but %d shards", opts.NumMachines, len(shards))
	}
	if opts.ProcsPerMachine <= 0 {
		opts.ProcsPerMachine = 1
	}
	c := &Cluster{
		Opts:    opts,
		Shards:  shards,
		Locator: loc,
		Quality: quality,
	}
	// One tracer per machine when tracing is on, created before any serving
	// process so primaries, replicas, and compute handles all share it.
	c.Tracers = make([]*obs.Tracer, opts.NumMachines)
	if opts.TraceSample > 0 {
		for m := 0; m < opts.NumMachines; m++ {
			c.Tracers[m] = obs.NewTracer(int32(m), opts.TraceSample, opts.TraceBuf)
		}
	}
	// Start the primary storage servers: shard m served by machine m, the
	// paper's layout. With chaos on, each listener is wrapped so the injector
	// can fail the machine.
	for m := 0; m < opts.NumMachines; m++ {
		srv := core.NewStorageServer(shards[m], loc)
		if c.Tracers[m] != nil {
			srv.AttachTracer(c.Tracers[m])
		}
		addr, err := startServer(srv, m, opts.Chaos)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Servers = append(c.Servers, srv)
		c.Addrs = append(c.Addrs, addr)
	}
	// servingAddrs[s][i] is the address of shard s's i-th serving machine
	// (index 0 = the primary). Without replication each shard has exactly its
	// primary.
	servingAddrs := make([][]string, opts.NumMachines)
	for s, a := range c.Addrs {
		servingAddrs[s] = []string{a}
	}
	if opts.haEnabled() {
		if err := c.startReplicas(servingAddrs); err != nil {
			c.Close()
			return nil, err
		}
	}
	if opts.Mutable {
		// One delta store per machine, built AFTER replica placement so it
		// bases every shard the machine serves (own + hosted replicas): one
		// ApplyMutations delivery per machine then keeps primary and replica
		// rows in lockstep, which is what makes failover score-identical.
		c.Deltas = make([]*delta.Store, opts.NumMachines)
		for m := 0; m < opts.NumMachines; m++ {
			bases := map[int32]*shard.Shard{int32(m): shards[m]}
			if opts.haEnabled() {
				for _, s := range c.Placement.HostedReplicas(m) {
					bases[int32(s)] = shards[s]
				}
			}
			st := delta.NewStore(loc, bases)
			if opts.MaxEpochs > 0 {
				st.SetMaxEpochs(opts.MaxEpochs)
			}
			c.Deltas[m] = st
			c.Servers[m].AttachDelta(st)
			if opts.haEnabled() {
				for _, rs := range c.ReplicaServers[m] {
					rs.AttachDelta(st)
				}
			}
			if opts.CompactInterval > 0 {
				c.compactStops = append(c.compactStops, st.StartCompactor(opts.CompactInterval))
			}
		}
	}
	// Connect compute processes: every process owns clients to all remote
	// machines (the paper registers each process in the RPC group).
	c.Storages = make([][]*core.DistGraphStorage, opts.NumMachines)
	c.Caches = make([]*cache.Cache, opts.NumMachines)
	c.Aggs = make([][]*agg.Aggregator, opts.NumMachines)
	c.FeatCaches = make([]*cache.FeatureCache, opts.NumMachines)
	c.FeatAggs = make([][]*agg.FeatureAggregator, opts.NumMachines)
	c.Routers = make([]*ha.ReplicaRouter, opts.NumMachines)
	c.Trackers = make([]*ha.HealthTracker, opts.NumMachines)
	c.Admits = make([]*admit.Controller, opts.NumMachines)
	c.Hedgers = make([]*admit.Hedger, opts.NumMachines)
	for m := 0; m < opts.NumMachines; m++ {
		if opts.CacheBytes > 0 {
			// One cache per machine, shared by all its compute processes —
			// like the shard, it is machine-level shared memory.
			c.Caches[m] = cache.New(opts.CacheBytes)
		}
		// The feature cache is machine-shared for the same reason.
		c.FeatCaches[m] = cache.NewFeatures(opts.FeatCacheBytes, opts.FeatAdmitMass)
		if opts.haEnabled() {
			c.buildRouter(m, servingAddrs)
			if opts.Hedge {
				c.Hedgers[m] = admit.NewHedger(c.Routers[m], admit.HedgeOptions{
					Delay:  opts.HedgeDelay,
					Tracer: c.Tracers[m],
				})
			}
		}
		if opts.AdmitMaxInFlight > 0 {
			// Admission is machine-level for the same reason as the cache:
			// the concurrency cap models the machine's capacity, so every
			// compute process must draw from the same slot pool.
			c.Admits[m] = admit.NewController(admit.Options{
				MaxInFlight: opts.AdmitMaxInFlight,
				MaxQueue:    opts.AdmitMaxQueue,
				TenantRate:  opts.AdmitTenantRate,
				TenantBurst: opts.AdmitTenantBurst,
			})
			if c.Deltas != nil {
				// Admitted queries pin their mutation epoch at grant time, so
				// a query queued behind a burst still reads the snapshot it
				// was admitted under.
				c.Admits[m].SetEpochSource(c.Deltas[m].PinCurrent, c.Deltas[m].Unpin)
			}
		}
		c.Storages[m] = make([]*core.DistGraphStorage, opts.ProcsPerMachine)
		for p := 0; p < opts.ProcsPerMachine; p++ {
			clients := make([]*rpc.Client, opts.NumMachines)
			for j := 0; j < opts.NumMachines; j++ {
				if j == m {
					continue
				}
				cl, err := rpc.Dial(c.Addrs[j], opts.Latency)
				if err != nil {
					c.Close()
					return nil, err
				}
				clients[j] = cl
				c.clients = append(c.clients, cl)
			}
			c.Storages[m][p] = core.NewDistGraphStorage(int32(m), shards[m], loc, clients)
			if c.Tracers[m] != nil {
				c.Storages[m][p].AttachTracer(c.Tracers[m])
			}
			if c.Caches[m] != nil {
				c.Storages[m][p].AttachCache(c.Caches[m])
			}
			if c.FeatCaches[m] != nil {
				c.Storages[m][p].AttachFeatureCache(c.FeatCaches[m])
			}
			if c.Routers[m] != nil {
				c.Storages[m][p].AttachRouter(c.Routers[m])
			}
			if c.Hedgers[m] != nil {
				c.Storages[m][p].AttachHedger(c.Hedgers[m])
			}
			if c.Admits[m] != nil {
				c.Storages[m][p].AttachAdmission(c.Admits[m])
			}
			if c.Deltas != nil {
				c.Storages[m][p].AttachDelta(c.Deltas[m])
			}
			if opts.aggEnabled() && p == 0 {
				// One aggregator per (machine, destination shard), shared by
				// every process of the machine: all of a machine's traffic to
				// a shard funnels through one coalescing point, like the
				// cache. With replication on, flushes go through the router so
				// a merged request fails over as a unit; otherwise they use
				// the first process's clients (agg.New is nil for the nil
				// local client).
				aopts := agg.Options{Window: opts.AggWindow, MaxRows: opts.AggRows, ZeroCopy: opts.ZeroCopy, Tracer: c.Tracers[m]}
				if c.Hedgers[m] != nil {
					// Aggregated flushes hedge as a unit: the merged request
					// goes through the hedger so a slow primary costs one
					// duplicate wire request, not one per coalesced query.
					c.Aggs[m] = core.HedgedAggregators(c.Hedgers[m], int32(opts.NumMachines), int32(m), aopts)
					c.FeatAggs[m] = core.HedgedFeatureAggregators(c.Hedgers[m], int32(opts.NumMachines), int32(m), aopts)
				} else if c.Routers[m] != nil {
					c.Aggs[m] = core.RoutedAggregators(c.Routers[m], int32(opts.NumMachines), int32(m), aopts)
					c.FeatAggs[m] = core.RoutedFeatureAggregators(c.Routers[m], int32(opts.NumMachines), int32(m), aopts)
				} else {
					aggs := make([]*agg.Aggregator, opts.NumMachines)
					faggs := make([]*agg.FeatureAggregator, opts.NumMachines)
					for j, cl := range clients {
						aggs[j] = agg.New(cl, aopts)
						faggs[j] = agg.NewFeature(cl, aopts)
					}
					c.Aggs[m] = aggs
					c.FeatAggs[m] = faggs
				}
			}
			if c.Aggs[m] != nil {
				c.Storages[m][p].AttachAggregators(c.Aggs[m])
			}
			if c.FeatAggs[m] != nil {
				c.Storages[m][p].AttachFeatureAggregators(c.FeatAggs[m])
			}
		}
	}
	if opts.Mutable {
		if err := c.buildCoordinator(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// buildCoordinator wires the cluster's single mutation coordinator over
// machine 0's delta store, with dedicated RPC clients to every machine's
// primary endpoint: one applier per machine (its store covers every shard
// the machine serves, replicas included), and a row fetcher for resolving
// mutations whose source shard machine 0 does not base. Machine 0's own
// applier loops back over RPC; its store dedups the batch by epoch, so the
// delivery path is exercised uniformly.
func (c *Cluster) buildCoordinator() error {
	k := c.Opts.NumMachines
	mirrors := make([]*rpc.Client, k)
	for j := 0; j < k; j++ {
		cl, err := rpc.Dial(c.Addrs[j], c.Opts.Latency)
		if err != nil {
			return err
		}
		mirrors[j] = cl
		c.mu.Lock()
		c.clients = append(c.clients, cl)
		c.mu.Unlock()
	}
	appliers := make([]delta.Applier, k)
	for j := 0; j < k; j++ {
		cl := mirrors[j]
		appliers[j] = func(ctx context.Context, payload []byte) error {
			resp, err := cl.SyncCallCtx(ctx, rpc.MethodApplyMutations, payload)
			if err != nil {
				return err
			}
			_, err = wire.DecodeMutationAck(resp)
			return err
		}
	}
	fetch := func(ctx context.Context, sh, local int32, epoch uint64) (delta.RemoteRow, error) {
		// Shard s is primaried on machine s; its primary's store bases it.
		resp, err := mirrors[sh].SyncCallCtx(ctx, rpc.MethodGetNeighborInfosAt,
			wire.EncodeIDListAt(epoch, []int32{local}))
		if err != nil {
			return delta.RemoteRow{}, err
		}
		infos, err := wire.DecodeCSR(resp)
		if err != nil {
			return delta.RemoteRow{}, err
		}
		if infos.NumRows() != 1 {
			return delta.RemoteRow{}, fmt.Errorf("cluster: row fetch returned %d rows, want 1", infos.NumRows())
		}
		locals, shards, weights, _ := infos.Row(0)
		return delta.RemoteRow{
			Locals:  locals,
			Shards:  shards,
			Weights: weights,
			WDeg:    infos.RowWDeg[0],
		}, nil
	}
	c.Coord = delta.NewCoordinator(c.Deltas[0], appliers, fetch)
	return nil
}

// Mutate resolves and applies a batch of graph mutations cluster-wide,
// returning the epoch at which they became visible. Requires Opts.Mutable.
func (c *Cluster) Mutate(ctx context.Context, muts []delta.Mutation) (uint64, error) {
	if c.Coord == nil {
		return 0, fmt.Errorf("cluster: not mutable (set Options.Mutable)")
	}
	return c.Coord.Apply(ctx, muts)
}

// DeltaStats returns every machine's delta-store snapshot (nil when the
// cluster is not mutable).
func (c *Cluster) DeltaStats() []delta.Snapshot {
	if c.Deltas == nil {
		return nil
	}
	out := make([]delta.Snapshot, len(c.Deltas))
	for m, st := range c.Deltas {
		out[m] = st.Stats()
	}
	return out
}

// startServer serves srv on a fresh loopback listener — wrapped in the fault
// injector under machine's identity when chaos is on — and returns the
// dialable address.
func startServer(srv *core.StorageServer, machine int, inj *chaos.Injector) (string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := lis.Addr().String()
	if inj != nil {
		lis = inj.WrapListener(machine, lis)
	}
	go srv.ServeListener(lis)
	return addr, nil
}

// startReplicas computes the replica placement and starts, on every machine,
// one extra StorageServer per shard it replicates — a separate serving
// process over the SAME immutable shard data, so a failover returns
// bit-identical rows. It extends servingAddrs[s] with the replica addresses
// in placement order.
func (c *Cluster) startReplicas(servingAddrs [][]string) error {
	k := c.Opts.NumMachines
	weights := make([]int64, k)
	for s, sh := range c.Shards {
		weights[s] = int64(sh.NumCore())
	}
	pl, err := ha.PlaceWeighted(weights, c.Opts.Replicas)
	if err != nil {
		return err
	}
	c.Placement = pl
	c.ReplicaServers = make([][]*core.StorageServer, k)
	addrOf := make(map[[2]int]string) // (shard, machine) -> replica address
	for m := 0; m < k; m++ {
		for _, s := range pl.HostedReplicas(m) {
			srv := core.NewStorageServer(c.Shards[s], c.Locator)
			if c.Tracers[m] != nil {
				// A replica's spans carry its HOSTING machine's identity —
				// that is what a failover trace must show.
				srv.AttachTracer(c.Tracers[m])
			}
			addr, err := startServer(srv, m, c.Opts.Chaos)
			if err != nil {
				return err
			}
			c.ReplicaServers[m] = append(c.ReplicaServers[m], srv)
			addrOf[[2]int{s, m}] = addr
		}
	}
	for s := 0; s < k; s++ {
		for _, m := range pl.Machines(s)[1:] {
			servingAddrs[s] = append(servingAddrs[s], addrOf[[2]int{s, m}])
		}
	}
	return nil
}

// buildRouter assembles machine m's health tracker and replica router over
// every remote shard's serving endpoints. Endpoints are keyed by hosting
// machine, so one dead machine opens one breaker covering all shards it
// serves, and starts background probing.
func (c *Cluster) buildRouter(m int, servingAddrs [][]string) {
	hopts := c.Opts.haOptions()
	hopts.Tracer = c.Tracers[m]
	tr := ha.NewHealthTracker(hopts)
	eps := make([][]*ha.Endpoint, c.Opts.NumMachines)
	for s := 0; s < c.Opts.NumMachines; s++ {
		if s == m {
			continue // local shard: shared memory, never routed
		}
		for i, host := range c.Placement.Machines(s) {
			ep := ha.NewEndpoint(host, int32(s), servingAddrs[s][i], fmt.Sprintf("m%d", host), c.Opts.Latency)
			eps[s] = append(eps[s], ep)
			tr.Register(ep)
			c.endpoints = append(c.endpoints, ep)
		}
	}
	tr.Start()
	c.Trackers[m] = tr
	c.Routers[m] = ha.NewReplicaRouter(tr, eps, hopts)
}

// Spans gathers every machine's recorded spans into one slice — the
// cluster-wide trace view a collector would assemble from the per-machine
// ring buffers. Empty when tracing is off.
func (c *Cluster) Spans() []obs.Span {
	var out []obs.Span
	for _, tr := range c.Tracers {
		if tr != nil {
			out = append(out, tr.Spans()...)
		}
	}
	return out
}

// NetStats aggregates client-side traffic counters over every compute
// process's RPC clients. The experiment harness diffs snapshots around a
// batch to report bytes-on-wire.
type NetStats struct {
	RequestsSent  int64
	BytesSent     int64
	BytesReceived int64
}

// NetStats returns the cumulative client-side traffic totals, including the
// failover routers' endpoint connections (which carry all remote traffic
// when replication is on).
func (c *Cluster) NetStats() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n NetStats
	for _, cl := range c.clients {
		n.RequestsSent += cl.RequestsSent.Load()
		n.BytesSent += cl.BytesSent.Load()
		n.BytesReceived += cl.BytesReceived.Load()
	}
	for _, ep := range c.endpoints {
		reqs, sent, recv := ep.NetStats()
		n.RequestsSent += reqs
		n.BytesSent += sent
		n.BytesReceived += recv
	}
	return n
}

// HAStats sums the per-machine failover counters (zero value when
// replication is disabled).
func (c *Cluster) HAStats() ha.Stats {
	var s ha.Stats
	for _, r := range c.Routers {
		s.Add(r.Stats()) // nil-safe
	}
	return s
}

// AdmitStats sums the per-machine admission snapshots (zero value when
// admission control is disabled).
func (c *Cluster) AdmitStats() admit.Snapshot {
	var s admit.Snapshot
	for _, a := range c.Admits {
		s.Add(a.Snapshot()) // nil-safe
	}
	return s
}

// HedgeStats sums the per-machine hedging counters (zero value when
// hedging is disabled).
func (c *Cluster) HedgeStats() admit.HedgeStats {
	var s admit.HedgeStats
	for _, h := range c.Hedgers {
		s.Add(h.Stats()) // nil-safe
	}
	return s
}

// CacheStats sums the per-machine dynamic-cache counters (zero value when
// the cache is disabled).
func (c *Cluster) CacheStats() cache.Stats {
	var s cache.Stats
	for _, ch := range c.Caches {
		cs := ch.Stats() // nil-safe
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Coalesced += cs.Coalesced
		s.Evictions += cs.Evictions
		s.Entries += cs.Entries
		s.Bytes += cs.Bytes
	}
	return s
}

// AggStats sums the per-machine fetch-aggregator counters (zero value when
// aggregation is disabled).
func (c *Cluster) AggStats() agg.Stats {
	var s agg.Stats
	for _, machine := range c.Aggs {
		for _, a := range machine {
			st := a.Stats() // nil-safe
			s.Add(st)
		}
	}
	return s
}

// FeatCacheStats sums the per-machine feature-cache counters (zero value
// when the feature cache is disabled).
func (c *Cluster) FeatCacheStats() cache.FeatStats {
	var s cache.FeatStats
	for _, fc := range c.FeatCaches {
		s.Add(fc.Stats()) // nil-safe
	}
	return s
}

// FeatAggStats sums the per-machine feature-fetch-aggregator counters (zero
// value when aggregation is disabled).
func (c *Cluster) FeatAggStats() agg.Stats {
	var s agg.Stats
	for _, machine := range c.FeatAggs {
		for _, a := range machine {
			s.Add(a.Stats()) // nil-safe
		}
	}
	return s
}

// Close shuts down all clients and servers, stopping the health probe loops
// and replica servers first.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, stop := range c.compactStops {
		stop()
	}
	c.compactStops = nil
	for _, tr := range c.Trackers {
		if tr != nil {
			tr.Stop()
		}
	}
	c.Trackers = nil
	for _, r := range c.Routers {
		if r != nil {
			r.Close()
		}
	}
	c.Routers = nil
	c.endpoints = nil
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = nil
	for _, machine := range c.ReplicaServers {
		for _, s := range machine {
			s.Close()
		}
	}
	c.ReplicaServers = nil
	for _, s := range c.Servers {
		s.Close()
	}
	c.Servers = nil
}

// EvenQuerySet draws per-machine query sources uniformly from each
// machine's core nodes — the paper's "root nodes of a batch are evenly
// distributed across all machines". It returns, per machine, a slice of
// local vertex IDs of length queriesPerMachine.
func (c *Cluster) EvenQuerySet(queriesPerMachine int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int32, c.Opts.NumMachines)
	for m := range out {
		n := c.Shards[m].NumCore()
		if n == 0 {
			out[m] = nil // a starved shard gets no queries
			continue
		}
		qs := make([]int32, queriesPerMachine)
		for i := range qs {
			qs[i] = int32(rng.Intn(n))
		}
		out[m] = qs
	}
	return out
}

// EngineKind selects which SSPPR implementation a run uses.
type EngineKind int

const (
	// EngineMap is the paper's PPR Engine (hashmap-based operators).
	EngineMap EngineKind = iota
	// EngineTensor is the tensor-based baseline.
	EngineTensor
)

// String names the engine for report rows.
func (k EngineKind) String() string {
	if k == EngineTensor {
		return "PyTorch Tensor"
	}
	return "PPR Engine"
}

// QueryError records one query's failure inside a batch: which machine and
// compute process ran it, the local source vertex, and the error. Failures
// are isolated — the rest of the batch keeps running. When the failure is
// attributable to a serving peer (transport error, remote handler error),
// FaultMachine/FaultShard identify it; both are -1 for local failures such
// as a query's own deadline expiring.
type QueryError struct {
	Machine int
	Proc    int
	Source  int32
	Err     error
	// FaultMachine is the serving machine that produced the error (-1 when
	// the failure is not a peer fault or the machine is unknown).
	FaultMachine int
	// FaultShard is the destination shard of the failed request (-1 when not
	// a peer fault).
	FaultShard int
}

// newQueryError builds a QueryError, extracting peer attribution from err's
// chain (see ha.PeerError).
func newQueryError(machine, proc int, src int32, err error) QueryError {
	qe := QueryError{Machine: machine, Proc: proc, Source: src, Err: err, FaultMachine: -1, FaultShard: -1}
	if fm, fs, ok := ha.FaultOf(err); ok {
		qe.FaultMachine = fm
		qe.FaultShard = int(fs)
	}
	return qe
}

// Error implements the error interface.
func (e QueryError) Error() string {
	if e.FaultShard >= 0 {
		return fmt.Sprintf("machine %d proc %d source %d (fault: machine %d shard %d): %v",
			e.Machine, e.Proc, e.Source, e.FaultMachine, e.FaultShard, e.Err)
	}
	return fmt.Sprintf("machine %d proc %d source %d: %v", e.Machine, e.Proc, e.Source, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e QueryError) Unwrap() error { return e.Err }

// RunResult aggregates one batch run over the whole cluster.
type RunResult struct {
	Queries    int // queries issued (successful + failed)
	Failed     int // queries that returned an error (see Errors)
	Wall       time.Duration
	Throughput float64 // successful queries per second across all machines
	Breakdown  *metrics.Breakdown
	Pushes     int64
	LocalRows  int64
	RemoteRows int64
	HaloRows   int64 // remote rows served by the halo cache
	// CacheHits counts remote rows served by the dynamic neighbor-row cache;
	// CacheCoalesced counts rows that piggybacked on an in-flight fetch.
	// Both are 0 when Options.CacheBytes is 0.
	CacheHits      int64
	CacheCoalesced int64
	// RPCRequests / RequestBytes roll up the per-query wire accounting
	// (core.QueryStats): requests issued and request payload bytes. With
	// aggregation a shared flush is charged once, to the query that opened
	// it, so the sums still equal the true wire totals.
	RPCRequests  int64
	RequestBytes int64
	Timeouts     int64 // queries aborted by deadline or cancellation
	Retries      int64 // transient-error RPC retries across all queries
	// Errors lists the per-query failures. A timed-out query lands here
	// with context.DeadlineExceeded in its chain while the rest of the
	// batch completes normally (partial results, not batch abort).
	Errors []QueryError
}

// RemoteFraction returns the fraction of fetched rows served over RPC.
func (r RunResult) RemoteFraction() float64 {
	total := r.LocalRows + r.RemoteRows
	if total == 0 {
		return 0
	}
	return float64(r.RemoteRows) / float64(total)
}

// RunSSPPRBatch processes queriesByMachine (local source IDs per machine):
// machine m's queries are split round-robin over its P compute processes,
// each process runs its share sequentially, and the wall clock covers the
// slowest process (synchronization included, per §2.1.2). The per-process
// breakdowns are merged into the result.
//
// ctx bounds the whole batch; cfg.QueryTimeout additionally bounds every
// individual query. Failures are isolated: a query that times out or errors
// is recorded in RunResult.Errors and its process moves on to its next
// query. The returned error is non-nil only when the batch context itself
// ended (ctx.Err()) or every single query failed.
func (c *Cluster) RunSSPPRBatch(ctx context.Context, queriesByMachine [][]int32, cfg core.Config, kind EngineKind) (RunResult, error) {
	procs := c.Opts.ProcsPerMachine
	var res RunResult
	breakdowns := make([][]*metrics.Breakdown, c.Opts.NumMachines)
	type acc struct {
		pushes, localRows, remoteRows, haloRows int64
		cacheHits, cacheCoalesced               int64
		rpcRequests, requestBytes               int64
		timeouts, retries                       int64
		errs                                    []QueryError
	}
	accs := make([][]acc, c.Opts.NumMachines)
	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < c.Opts.NumMachines; m++ {
		breakdowns[m] = make([]*metrics.Breakdown, procs)
		accs[m] = make([]acc, procs)
		for p := 0; p < procs; p++ {
			breakdowns[m][p] = metrics.NewBreakdown()
			// Round-robin assignment of the machine's queries to procs.
			mine := make([]int32, 0, len(queriesByMachine[m])/procs+1)
			for i := p; i < len(queriesByMachine[m]); i += procs {
				mine = append(mine, queriesByMachine[m][i])
			}
			res.Queries += len(mine)
			wg.Add(1)
			go func(m, p int, mine []int32) {
				defer wg.Done()
				st := c.Storages[m][p]
				bd := breakdowns[m][p]
				a := &accs[m][p]
				for _, src := range mine {
					if ctx.Err() != nil {
						// Batch cancelled: mark the remaining queries failed.
						a.errs = append(a.errs, newQueryError(m, p, src, ctx.Err()))
						continue
					}
					var err error
					var stats core.QueryStats
					switch kind {
					case EngineTensor:
						_, stats, err = core.RunTensorSSPPR(ctx, st, src, cfg, bd)
					default:
						_, stats, err = core.RunSSPPR(ctx, st, src, cfg, bd)
					}
					a.timeouts += stats.Timeouts
					a.retries += stats.Retries
					a.rpcRequests += stats.RPCRequests
					a.requestBytes += stats.RequestBytes
					if err != nil {
						a.errs = append(a.errs, newQueryError(m, p, src, err))
						continue
					}
					a.pushes += stats.Pushes
					a.localRows += stats.LocalRows
					a.remoteRows += stats.RemoteRows
					a.haloRows += stats.HaloRows
					a.cacheHits += stats.CacheHits
					a.cacheCoalesced += stats.CacheCoalesced
				}
			}(m, p, mine)
		}
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Breakdown = metrics.NewBreakdown()
	for m := range breakdowns {
		for p := range breakdowns[m] {
			res.Breakdown.Merge(breakdowns[m][p])
			res.Pushes += accs[m][p].pushes
			res.LocalRows += accs[m][p].localRows
			res.RemoteRows += accs[m][p].remoteRows
			res.HaloRows += accs[m][p].haloRows
			res.CacheHits += accs[m][p].cacheHits
			res.CacheCoalesced += accs[m][p].cacheCoalesced
			res.RPCRequests += accs[m][p].rpcRequests
			res.RequestBytes += accs[m][p].requestBytes
			res.Timeouts += accs[m][p].timeouts
			res.Retries += accs[m][p].retries
			res.Errors = append(res.Errors, accs[m][p].errs...)
		}
	}
	res.Failed = len(res.Errors)
	res.Throughput = metrics.Throughput(res.Queries-res.Failed, res.Wall)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if res.Queries > 0 && res.Failed == res.Queries {
		return res, fmt.Errorf("cluster: all %d queries failed, first: %w", res.Queries, res.Errors[0])
	}
	return res, nil
}

// RunRandomWalkBatch starts walksPerMachine walks on every machine (roots
// drawn from its core nodes) and runs them through the distributed
// random-walk primitive, one batch per compute process.
//
// ctx bounds the whole batch. Failure isolation is per compute process (one
// RunRandomWalk call advances all of a process's walks in lockstep): a
// failed process's walks land in RunResult.Errors with nil summaries while
// the other processes' walks complete. The returned error is non-nil only
// when ctx ended or every process failed.
func (c *Cluster) RunRandomWalkBatch(ctx context.Context, walksPerMachine, walkLen int, seed int64) (RunResult, [][][]int32, error) {
	procs := c.Opts.ProcsPerMachine
	roots := c.EvenQuerySet(walksPerMachine, seed)
	var res RunResult
	summaries := make([][][]int32, c.Opts.NumMachines)
	breakdowns := make([]*metrics.Breakdown, c.Opts.NumMachines*procs)
	errs := make([][]QueryError, c.Opts.NumMachines*procs)
	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < c.Opts.NumMachines; m++ {
		summaries[m] = make([][]int32, walksPerMachine)
		res.Queries += walksPerMachine
		for p := 0; p < procs; p++ {
			bd := metrics.NewBreakdown()
			breakdowns[m*procs+p] = bd
			var mine []int32
			var idxs []int
			for i := p; i < len(roots[m]); i += procs {
				mine = append(mine, roots[m][i])
				idxs = append(idxs, i)
			}
			wg.Add(1)
			go func(m, p int, mine []int32, idxs []int) {
				defer wg.Done()
				if len(mine) == 0 {
					return
				}
				sum, err := core.RunRandomWalk(ctx, c.Storages[m][p], mine, walkLen, seed+int64(m*1000+p), bd)
				if err != nil {
					qes := make([]QueryError, len(mine))
					for k, src := range mine {
						qes[k] = newQueryError(m, p, src, err)
					}
					errs[m*procs+p] = qes
					return
				}
				for k, i := range idxs {
					summaries[m][i] = sum[k]
				}
			}(m, p, mine, idxs)
		}
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Breakdown = metrics.NewBreakdown()
	for _, bd := range breakdowns {
		res.Breakdown.Merge(bd)
	}
	for _, qes := range errs {
		res.Errors = append(res.Errors, qes...)
	}
	res.Failed = len(res.Errors)
	for _, qe := range res.Errors {
		if errors.Is(qe.Err, context.Canceled) || errors.Is(qe.Err, context.DeadlineExceeded) {
			res.Timeouts++
		}
	}
	res.Throughput = metrics.Throughput(res.Queries-res.Failed, res.Wall)
	if err := ctx.Err(); err != nil {
		return res, summaries, err
	}
	if res.Queries > 0 && res.Failed == res.Queries {
		return res, summaries, fmt.Errorf("cluster: all %d walks failed, first: %w", res.Queries, res.Errors[0])
	}
	return res, summaries, nil
}
