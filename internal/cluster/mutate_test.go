package cluster

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"pprengine/internal/chaos"
	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// mutableCluster builds a mutable cluster over prebuilt shards, failing the
// test on error.
func mutableCluster(t *testing.T, shards []*shard.Shard, loc *shard.Locator, q partition.Quality, opts Options) *Cluster {
	t.Helper()
	opts.Mutable = true
	c, err := NewFromShards(shards, loc, opts, q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// twoComponentGraph builds a graph of two disconnected halves (ring + chord
// in each), so mutations confined to one component are guaranteed disjoint
// from the push footprint of a query sourced in the other. Dyadic weights
// keep incremental weighted-degree arithmetic exact.
func twoComponentGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	h := n / 2
	var edges []graph.Edge
	addRing := func(lo, size int) {
		for i := 0; i < size; i++ {
			v := int32(lo + i)
			edges = append(edges,
				graph.Edge{Src: v, Dst: int32(lo + (i+1)%size), Weight: 1},
				graph.Edge{Src: v, Dst: int32(lo + (i+7)%size), Weight: 0.5},
			)
		}
	}
	addRing(0, h)
	addRing(h, n-h)
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return graph.MakeUndirected(g)
}

// TestMutableClusterEpochReads is the wiring smoke test: a mutation routed
// through the coordinator lands on every machine at the same epoch, and an
// epoch-pinned query sees the new edge while the static (epoch-0) read path
// still serves the base CSR.
func TestMutableClusterEpochReads(t *testing.T) {
	g := testGraph(31, 300, 1800)
	shards, loc, quality := haTestShards(t, g, 2)
	c := mutableCluster(t, shards, loc, quality, Options{NumMachines: 2, ProcsPerMachine: 1})
	defer c.Close()

	epoch, err := c.Mutate(context.Background(), []delta.Mutation{
		{Op: delta.OpAddEdge, Src: 0, Dst: 5, Weight: 0.5},
		{Op: delta.OpAddEdge, Src: 7, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first batch landed at epoch %d, want 1", epoch)
	}
	for m, snap := range c.DeltaStats() {
		if snap.Epoch != epoch {
			t.Fatalf("machine %d at epoch %d, want %d (mirror lost?)", m, snap.Epoch, epoch)
		}
		if snap.OpsApplied == 0 {
			t.Fatalf("machine %d applied no ops", m)
		}
	}
	// A pinned query runs against the overlay without error; the same query
	// with the cluster's delta store detached from the epoch (PinnedEpoch
	// left 0 on a non-mutable cluster) is covered by every other test file.
	sh, local := loc.Locate(0)
	st := c.Storages[sh][0]
	cfg := detConfig()
	if _, _, err := core.RunSSPPRTopK(context.Background(), st, local, 5, cfg, nil); err != nil {
		t.Fatalf("epoch-pinned query failed: %v", err)
	}
}

// TestMutationBurstMidStream is the liveness half of the acceptance
// scenario: on a 4-machine R=2 cluster, a mutation burst lands through the
// coordinator while a query stream is in flight on every machine. Every
// query must complete, and after the burst every machine's store must sit
// at the same epoch.
func TestMutationBurstMidStream(t *testing.T) {
	g := testGraph(32, 500, 3000)
	shards, loc, quality := haTestShards(t, g, 4)
	c := mutableCluster(t, shards, loc, quality, Options{
		NumMachines: 4, ProcsPerMachine: 2, Replicas: 2,
		ProbeInterval: 50 * time.Millisecond,
	})
	defer c.Close()

	const batches = 12
	var wg sync.WaitGroup
	wg.Add(1)
	mutErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			_, err := c.Mutate(context.Background(), []delta.Mutation{
				{Op: delta.OpAddEdge, Src: graph.NodeID(i * 3 % 500), Dst: graph.NodeID((i*11 + 7) % 500), Weight: 0.5},
				{Op: delta.OpAddEdge, Src: graph.NodeID((i*17 + 1) % 500), Dst: graph.NodeID(i * 5 % 500), Weight: 0.25},
			})
			if err != nil {
				mutErr <- err
				return
			}
		}
	}()

	qs := c.EvenQuerySet(8, 17)
	res, err := c.RunSSPPRBatch(context.Background(), qs, detConfig(), EngineMap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d queries failed during the mutation burst: %v", res.Failed, res.Errors[0])
	}
	wg.Wait()
	select {
	case err := <-mutErr:
		t.Fatalf("mutation batch failed: %v", err)
	default:
	}
	for m, snap := range c.DeltaStats() {
		if snap.Epoch != batches {
			t.Fatalf("machine %d at epoch %d after the burst, want %d", m, snap.Epoch, batches)
		}
		if len(snap.PinnedEpochs) != 0 {
			t.Fatalf("machine %d left pins behind: %v", m, snap.PinnedEpochs)
		}
	}
}

// TestIncrementalTopKBitwise anchors the incremental SSPPR acceptance
// criterion: when the mutations since a cached run don't touch the query's
// push footprint — and likewise under Config.IncrementalExact when they do —
// the incremental top-K must be bitwise identical to a fresh full run at the
// same epoch. The default re-push path is checked against the full run at
// approximation level.
func TestIncrementalTopKBitwise(t *testing.T) {
	g := twoComponentGraph(t, 200)
	a := partition.HashPartition(g.NumNodes, 2)
	shards, loc, err := shard.Build(g, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := mutableCluster(t, shards, loc, partition.Evaluate(g, a), Options{NumMachines: 2, ProcsPerMachine: 1})
	defer c.Close()

	cfg := detConfig()
	const k = 10
	ctx := context.Background()
	sh, local := loc.Locate(0) // source in component A ([0, 100))
	st := c.Storages[sh][0]
	cache := core.NewResidCache(4)

	fresh := func() []core.ScoredNode {
		top, _, err := core.RunSSPPRTopK(ctx, st, local, k, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return top
	}
	bitwise := func(phase string, want, got []core.ScoredNode) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s: top-K lengths differ: %d vs %d", phase, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: rank %d differs: %+v vs %+v", phase, i, want[i], got[i])
			}
		}
	}

	// First run seeds the cache.
	top0, _, ic, err := core.RunSSPPRIncrementalTopK(ctx, st, cache, local, k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Mode != "full" {
		t.Fatalf("cold cache ran in mode %q, want full", ic.Mode)
	}
	bitwise("cold", fresh(), top0)

	// Mutations confined to component B: disjoint from the footprint, so the
	// cached state must be served bitwise-unchanged — and must equal a fresh
	// full run at the new epoch.
	if _, err := c.Mutate(ctx, []delta.Mutation{
		{Op: delta.OpAddEdge, Src: 150, Dst: 160, Weight: 0.25},
		{Op: delta.OpDelEdge, Src: 120, Dst: 121},
		{Op: delta.OpAddVertex, Src: graph.NodeID(g.NumNodes)},
	}); err != nil {
		t.Fatal(err)
	}
	top1, _, ic, err := runIncremental(ctx, st, cache, local, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Mode != "hit" {
		t.Fatalf("disjoint mutations ran in mode %q (mutated=%d), want hit", ic.Mode, ic.Mutated)
	}
	bitwise("disjoint", fresh(), top1)

	// Overlapping mutation (the source's own row) under IncrementalExact:
	// falls back to a full run, so bitwise identity again holds.
	if _, err := c.Mutate(ctx, []delta.Mutation{
		{Op: delta.OpAddEdge, Src: 0, Dst: 50, Weight: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	exact := cfg
	exact.IncrementalExact = true
	top2, _, ic, err := core.RunSSPPRIncrementalTopK(ctx, st, cache, local, k, exact, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Mode != "full" {
		t.Fatalf("IncrementalExact overlap ran in mode %q, want full", ic.Mode)
	}
	bitwise("exact-overlap", fresh2(ctx, t, st, local, k, exact), top2)

	// Overlapping mutation on the default path: seeded re-push. Both it and
	// the fresh run are eps-approximations of the same exact PPR, so scores
	// agree to approximation level.
	if _, err := c.Mutate(ctx, []delta.Mutation{
		{Op: delta.OpAddEdge, Src: 3, Dst: 40, Weight: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	top3, _, ic, err := core.RunSSPPRIncrementalTopK(ctx, st, cache, local, k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Mode != "repush" {
		t.Fatalf("overlap ran in mode %q, want repush", ic.Mode)
	}
	want := fresh()
	wantBy := map[int64]float64{}
	for _, sn := range want {
		wantBy[int64(sn.Key.Shard)<<32|int64(sn.Key.Local)] = sn.Score
	}
	for _, sn := range top3 {
		w, ok := wantBy[int64(sn.Key.Shard)<<32|int64(sn.Key.Local)]
		if !ok {
			continue // tail membership may differ at approximation level
		}
		if math.Abs(w-sn.Score) > 1e-3 {
			t.Fatalf("repush diverged on %+v: %g vs %g", sn.Key, sn.Score, w)
		}
	}
	if top3[0].Key != want[0].Key {
		t.Fatalf("repush top-1 %+v, fresh top-1 %+v", top3[0].Key, want[0].Key)
	}
}

// runIncremental is a small indirection so the test reads uniformly.
func runIncremental(ctx context.Context, st *core.DistGraphStorage, cache *core.ResidCache, local int32, k int, cfg core.Config) ([]core.ScoredNode, core.QueryStats, core.IncStats, error) {
	return core.RunSSPPRIncrementalTopK(ctx, st, cache, local, k, cfg, nil)
}

// fresh2 runs a fresh full top-K with the given config (used where the
// incremental call carried a non-default config).
func fresh2(ctx context.Context, t *testing.T, st *core.DistGraphStorage, local int32, k int, cfg core.Config) []core.ScoredNode {
	t.Helper()
	cfg.IncrementalExact = false
	top, _, err := core.RunSSPPRTopK(ctx, st, local, k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// TestKillPrimaryDuringCompaction is the durability half of the acceptance
// scenario: after a mutation stream, a replicated cluster loses a primary
// mid-query-stream while every machine's compactor folds the deltas — and
// every query still completes with scores identical to a fault-free mutable
// cluster at the same epoch, proving replicas apply mirrored batches to the
// same state and compaction preserves pinned views.
func TestKillPrimaryDuringCompaction(t *testing.T) {
	g := testGraph(33, 500, 3000)
	const victim = 1
	// Two independent shard/locator builds of the same partition: add-vertex
	// extends the locator in place (machine-shared state), so the baseline
	// and faulted clusters each need their own copy.
	shards, loc, quality := haTestShards(t, g, 4)
	shards2, loc2, _ := haTestShards(t, g, 4)
	cfg := detConfig()
	muts := [][]delta.Mutation{
		{{Op: delta.OpAddEdge, Src: 10, Dst: 480, Weight: 0.5}, {Op: delta.OpAddEdge, Src: 301, Dst: 17, Weight: 1}},
		{{Op: delta.OpDelEdge, Src: 10, Dst: 480}, {Op: delta.OpAddEdge, Src: 77, Dst: 402, Weight: 0.25}},
		{{Op: delta.OpAddVertex, Src: 500}, {Op: delta.OpAddEdge, Src: 500, Dst: 3, Weight: 1}},
	}
	applyAll := func(c *Cluster) uint64 {
		var last uint64
		for _, b := range muts {
			e, err := c.Mutate(context.Background(), b)
			if err != nil {
				t.Fatal(err)
			}
			last = e
		}
		return last
	}

	// Baseline: mutable, unreplicated, fault-free.
	base := mutableCluster(t, shards, loc, quality, Options{NumMachines: 4, ProcsPerMachine: 1})
	baseEpoch := applyAll(base)
	qs := base.EvenQuerySet(6, 19)
	wantScores, errs := streamScores(base, qs, cfg)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	base.Close()

	// Faulted run: same shards and mutations, R=2; machine 1 crashes after
	// its 40th response write while a compaction races the stream on every
	// machine.
	inj := chaos.New(4321)
	inj.SetPlan(victim, chaos.Plan{KillAfterWrites: 40})
	c := mutableCluster(t, shards2, loc2, quality, Options{
		NumMachines: 4, ProcsPerMachine: 1, Replicas: 2,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 2,
		FailoverTimeout:  2 * time.Second,
		Chaos:            inj,
	})
	defer c.Close()
	if e := applyAll(c); e != baseEpoch {
		t.Fatalf("faulted cluster at epoch %d after mutations, baseline at %d", e, baseEpoch)
	}

	compacted := make(chan delta.CompactStats, len(c.Deltas))
	var cwg sync.WaitGroup
	for _, st := range c.Deltas {
		cwg.Add(1)
		go func(st *delta.Store) {
			defer cwg.Done()
			// Let the stream get going so the fold races live pins.
			time.Sleep(5 * time.Millisecond)
			compacted <- st.Compact()
		}(st)
	}

	gotScores, errs := streamScores(c, qs, cfg)
	cwg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed despite replication: %v", i, err)
		}
	}
	if st := inj.Stats(victim); st.Kills != 1 {
		t.Fatalf("injector kills = %d, want 1 (stream too short to trigger the crash?)", st.Kills)
	}
	assertSameScores(t, wantScores, gotScores)
	close(compacted)
	ran := 0
	for cs := range compacted {
		if cs.RowsBaked > 0 || cs.EpochsRetired > 0 {
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no machine's compaction folded anything")
	}
}
