package cluster

import (
	"context"
	"math"
	"sync"
	"testing"

	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// TestAffinityScoresBitwiseIdentical is the correctness gate of the
// shard-affinity compute layer. Every push path claims all of a batch's row
// residuals before applying any neighbor delta, in global row order, so under
// DeterministicPop the engines are interchangeable at the bit level: the
// single-worker striped baseline, the single-goroutine flat-table path, and
// the full worker pool must all produce identical float64 scores. The pool
// pass pins PushWorkers=4 so the two-round claim/merge machinery runs even on
// single-core CI — and under -race this doubles as the data-race check on the
// worker-ownership discipline.
func TestAffinityScoresBitwiseIdentical(t *testing.T) {
	const machines = 3
	const procs = 4
	g := testGraph(17, 600, 3600)
	a, err := partition.Partition(g, machines, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		t.Fatal(err)
	}
	quality := partition.Evaluate(g, a)
	c, err := NewFromShards(shards, loc, Options{NumMachines: machines, ProcsPerMachine: procs}, quality)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := c.EvenQuerySet(procs*2, 21)

	runPass := func(affinity bool, pushWorkers int) []map[int32]float64 {
		t.Helper()
		cfg := core.DefaultConfig()
		cfg.Eps = 1e-5
		cfg.DeterministicPop = true
		cfg.Affinity = affinity
		cfg.PushWorkers = pushWorkers
		out := make([]map[int32]float64, machines*len(qs[0]))
		var wg sync.WaitGroup
		for m := 0; m < machines; m++ {
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(m, p int) {
					defer wg.Done()
					st := c.Storages[m][p]
					for i := p; i < len(qs[m]); i += procs {
						sp, _, err := core.RunSSPPR(context.Background(), st, qs[m][i], cfg, nil)
						if err != nil {
							t.Errorf("machine %d proc %d: %v", m, p, err)
							return
						}
						out[m*len(qs[m])+i] = core.ScoresGlobal(st, sp)
					}
				}(m, p)
			}
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		return out
	}

	ref := runPass(false, 1)
	for _, pass := range []struct {
		name        string
		pushWorkers int
	}{
		{"affinity-sequential", 1}, // flat tables, no pool
		{"affinity-pool", 4},       // two-round claim/merge across 4 workers
	} {
		got := runPass(true, pass.pushWorkers)
		for q := range ref {
			if len(ref[q]) != len(got[q]) {
				t.Fatalf("%s: query %d touched %d nodes baseline, %d affinity",
					pass.name, q, len(ref[q]), len(got[q]))
			}
			for node, w := range ref[q] {
				v, ok := got[q][node]
				if !ok || math.Float64bits(v) != math.Float64bits(w) {
					t.Fatalf("%s: query %d node %d: baseline %v, affinity %v",
						pass.name, q, node, w, got[q][node])
				}
			}
		}
	}
}
