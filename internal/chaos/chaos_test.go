package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"pprengine/internal/rpc"
)

// serveWithChaos starts an rpc echo server behind a chaos-wrapped listener.
func serveWithChaos(t *testing.T, in *Injector, machine int) (*rpc.Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	srv.Handle(rpc.MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	go srv.Serve(in.WrapListener(machine, lis))
	return srv, lis.Addr().String()
}

func dial(t *testing.T, addr string) *rpc.Client {
	t.Helper()
	c, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNoFaultsPassThrough(t *testing.T) {
	in := New(1)
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()
	res, err := c.SyncCall(rpc.MethodEcho, []byte("hello"))
	if err != nil || string(res) != "hello" {
		t.Fatalf("got %q, %v; want hello", res, err)
	}
	if st := in.Stats(0); st.Writes != 1 || st.Down || st.Kills != 0 {
		t.Fatalf("stats = %+v, want 1 write, up, 0 kills", st)
	}
}

func TestKillFailsFastAndReviveRestores(t *testing.T) {
	in := New(1)
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()
	if _, err := c.SyncCall(rpc.MethodEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}

	in.Kill(0)
	if !in.Down(0) {
		t.Fatal("Down(0) = false after Kill")
	}
	// The open connection was closed: the pending and subsequent calls fail
	// fast instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.SyncCallCtx(ctx, rpc.MethodEcho, []byte("b")); err == nil {
		t.Fatal("call to a killed machine should fail")
	}
	// A fresh connection also dies immediately while down.
	c2 := dial(t, addr)
	defer c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := c2.SyncCallCtx(ctx2, rpc.MethodEcho, []byte("c")); err == nil {
		t.Fatal("call on a fresh connection to a killed machine should fail")
	}

	in.Revive(0)
	c3 := dial(t, addr)
	defer c3.Close()
	res, err := c3.SyncCall(rpc.MethodEcho, []byte("d"))
	if err != nil || string(res) != "d" {
		t.Fatalf("after revive: got %q, %v; want d", res, err)
	}
	if st := in.Stats(0); st.Kills != 1 {
		t.Fatalf("Kills = %d, want 1", st.Kills)
	}
}

func TestBlackholeHangsUntilTimeout(t *testing.T) {
	in := New(1)
	in.SetPlan(0, Plan{Blackhole: true})
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()
	if _, err := c.SyncCall(rpc.MethodEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}

	in.Kill(0)
	// Blackhole: no error, no response — only the caller's deadline fires.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := c.SyncCallCtx(ctx, rpc.MethodEcho, []byte("b"))
	if err != context.DeadlineExceeded {
		t.Fatalf("blackholed call: err = %v, want context.DeadlineExceeded", err)
	}
	in.Revive(0)
	// The same machine answers again on a fresh connection.
	c2 := dial(t, addr)
	defer c2.Close()
	res, err := c2.SyncCall(rpc.MethodEcho, []byte("c"))
	if err != nil || string(res) != "c" {
		t.Fatalf("after revive: got %q, %v; want c", res, err)
	}
}

func TestKillAfterWritesIsDeterministic(t *testing.T) {
	in := New(7)
	in.SetPlan(0, Plan{KillAfterWrites: 3})
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()

	ok := 0
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := c.SyncCallCtx(ctx, rpc.MethodEcho, []byte{byte(i)})
		cancel()
		if err != nil {
			break
		}
		ok++
	}
	if ok != 3 {
		t.Fatalf("%d calls succeeded before the crash, want exactly 3", ok)
	}
	st := in.Stats(0)
	if st.Writes != 3 || st.Kills != 1 || !st.Down {
		t.Fatalf("stats = %+v, want 3 writes, 1 kill, down", st)
	}
}

func TestDropRateSeededDeterminism(t *testing.T) {
	// The same seed must produce the same drop pattern.
	pattern := func(seed int64) []bool {
		in := New(seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.chance(0.5)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
		}
	}
	if diff {
		t.Fatal("same seed produced different drop patterns")
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw patterns")
	}
}

func TestDroppedResponseLeavesCallerHanging(t *testing.T) {
	in := New(1)
	in.SetPlan(0, Plan{DropRate: 1.0}) // drop everything
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := c.SyncCallCtx(ctx, rpc.MethodEcho, []byte("a"))
	if err != context.DeadlineExceeded {
		t.Fatalf("dropped response: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	in := New(1)
	in.SetPlan(0, Plan{Delay: 30 * time.Millisecond})
	srv, addr := serveWithChaos(t, in, 0)
	defer srv.Close()
	c := dial(t, addr)
	defer c.Close()
	start := time.Now()
	if _, err := c.SyncCall(rpc.MethodEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Read gate + write gate each sleep once.
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 30ms of injected delay", el)
	}
}
