// Package chaos injects deterministic faults into the engine's TCP transport
// for failover testing. It wraps net.Listener/net.Conn (the layer below the
// rpc framing), so the rpc and ha packages are exercised unmodified — exactly
// the failures they would see in production: connections that die (machine
// crash), packets that vanish (blackhole), frames that are dropped or
// delayed.
//
// Determinism: all randomness comes from one seeded math/rand source guarded
// by a mutex, and the kill-after-N trigger counts response writes rather than
// wall-clock time, so a test or experiment replays identically for a given
// seed and plan. No fault is scheduled off the clock.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Plan configures the faults for one machine. The zero value injects nothing.
type Plan struct {
	// DropRate drops each outbound response frame write with this probability
	// (0..1), drawn from the injector's seeded RNG. The connection stays up;
	// the client sees a missing response (and, since frames are
	// length-prefixed on a stream, a desynchronized connection — which is the
	// point: partial writes corrupt streams).
	DropRate float64
	// Delay sleeps this long before every read and write while the machine
	// is up — crude latency injection.
	Delay time.Duration
	// KillAfterWrites kills the machine (closes every connection, rejects
	// new ones) after this many successful response writes, when > 0. This
	// is the deterministic "crash mid-stream" trigger.
	KillAfterWrites int64
	// Blackhole, when the machine is down, makes connections hang instead of
	// erroring: reads and writes block until Revive (or the peer's timeout).
	// Without it a killed machine fails fast with closed connections.
	Blackhole bool
}

// Injector manages fault state for the machines of one simulated cluster.
// Wrap each machine's listener with WrapListener before serving.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	machines map[int]*machineState
}

// machineState is the per-machine fault state shared by all wrapped
// connections of that machine.
type machineState struct {
	inj  *Injector
	id   int
	plan Plan

	mu     sync.Mutex
	down   bool
	unfroz chan struct{} // closed on revive; blackholed I/O waits on it
	writes int64         // successful response writes, for KillAfterWrites
	kills  int64
	conns  map[*faultConn]struct{}
}

// New returns an injector with the given RNG seed. The same seed and plans
// reproduce the same drop decisions.
func New(seed int64) *Injector {
	return &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		machines: make(map[int]*machineState),
	}
}

// SetPlan installs (or replaces) machine's fault plan. Call before traffic
// for deterministic replay.
func (in *Injector) SetPlan(machine int, plan Plan) {
	st := in.state(machine)
	st.mu.Lock()
	st.plan = plan
	st.mu.Unlock()
}

func (in *Injector) state(machine int) *machineState {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.machines[machine]
	if !ok {
		st = &machineState{
			inj:    in,
			id:     machine,
			unfroz: make(chan struct{}),
			conns:  make(map[*faultConn]struct{}),
		}
		in.machines[machine] = st
	}
	return st
}

// chance draws one Bernoulli sample from the shared seeded RNG.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// Kill takes machine down: existing connections are closed (or frozen, with
// Blackhole) and new ones are rejected the same way until Revive.
func (in *Injector) Kill(machine int) { in.state(machine).kill() }

// Revive brings machine back up. Previously frozen connections unblock (and
// then typically fail, since their peer gave up); new connections work.
func (in *Injector) Revive(machine int) { in.state(machine).revive() }

// Down reports whether machine is currently killed.
func (in *Injector) Down(machine int) bool {
	st := in.state(machine)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.down
}

// Stats summarizes what the injector has done to one machine.
type Stats struct {
	Down   bool
	Writes int64 // response frame writes that went through
	Kills  int64 // times the machine was taken down
}

// Stats returns machine's fault statistics.
func (in *Injector) Stats(machine int) Stats {
	st := in.state(machine)
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{Down: st.down, Writes: st.writes, Kills: st.kills}
}

func (st *machineState) kill() {
	st.mu.Lock()
	if st.down {
		st.mu.Unlock()
		return
	}
	st.down = true
	st.kills++
	conns := make([]*faultConn, 0, len(st.conns))
	for c := range st.conns {
		conns = append(conns, c)
	}
	blackhole := st.plan.Blackhole
	st.mu.Unlock()
	if !blackhole {
		// Crash semantics: every open connection dies. The rpc client's read
		// loop sees EOF, marks itself dead, and fails pending calls — which
		// is what drives the router's failover.
		for _, c := range conns {
			c.Conn.Close()
		}
	}
}

func (st *machineState) revive() {
	st.mu.Lock()
	if !st.down {
		st.mu.Unlock()
		return
	}
	st.down = false
	close(st.unfroz)
	st.unfroz = make(chan struct{})
	st.mu.Unlock()
}

// gate blocks while the machine is down and blackholing. It returns false
// when the caller should fail the I/O instead (machine down, fail-fast mode).
// closed unblocks a frozen wait when the connection itself is closed — a
// server shutting down must be able to reap readers of a still-blackholed
// machine.
func (st *machineState) gate(closed <-chan struct{}) bool {
	for {
		st.mu.Lock()
		if !st.down {
			delay := st.plan.Delay
			st.mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			return true
		}
		if !st.plan.Blackhole {
			st.mu.Unlock()
			return false
		}
		wait := st.unfroz
		st.mu.Unlock()
		select {
		case <-wait: // Revive
		case <-closed:
			return false
		}
	}
}

// WrapListener wraps lis so every accepted connection is subject to
// machine's fault plan. Safe to call before any plan is set.
func (in *Injector) WrapListener(machine int, lis net.Listener) net.Listener {
	return &faultListener{Listener: lis, st: in.state(machine)}
}

type faultListener struct {
	net.Listener
	st *machineState
}

// Accept never surfaces fault-injected errors to the server's accept loop
// (a real crashed machine's listener does not return errors to anyone — it
// is simply gone, and rpc.Server.Serve must keep running for after Revive).
// While the machine is down, accepted connections are immediately killed
// (fail-fast) or frozen (blackhole).
func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, st: l.st, closed: make(chan struct{})}
	l.st.mu.Lock()
	l.st.conns[fc] = struct{}{}
	down, blackhole := l.st.down, l.st.plan.Blackhole
	l.st.mu.Unlock()
	if down && !blackhole {
		conn.Close() // the machine is "off": connections die instantly
	}
	return fc, nil
}

// faultConn applies the machine's plan to one server-side connection.
type faultConn struct {
	net.Conn
	st     *machineState
	closed chan struct{} // closed by Close; unblocks blackholed gates
	once   sync.Once
}

func (c *faultConn) Read(p []byte) (int, error) {
	if !c.st.gate(c.closed) {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Read(p)
}

// Write intercepts outbound response frames: each whole-frame write (the rpc
// server issues exactly one Write per response frame) may be dropped by
// DropRate, counts toward KillAfterWrites, and is frozen during a blackhole.
func (c *faultConn) Write(p []byte) (int, error) {
	if !c.st.gate(c.closed) {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	st := c.st
	st.mu.Lock()
	drop := st.inj.chance(st.plan.DropRate)
	var killNow bool
	if !drop {
		st.writes++
		if st.plan.KillAfterWrites > 0 && st.writes == st.plan.KillAfterWrites {
			killNow = true
		}
	}
	st.mu.Unlock()
	if drop {
		// Lie about success so the rpc server does not treat the connection
		// as broken; the client just never hears back.
		return len(p), nil
	}
	n, err := c.Conn.Write(p)
	if killNow {
		// The deterministic mid-stream crash: this response got out, nothing
		// after it will.
		st.kill()
	}
	return n, err
}

func (c *faultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	c.st.mu.Lock()
	delete(c.st.conns, c)
	c.st.mu.Unlock()
	return c.Conn.Close()
}
