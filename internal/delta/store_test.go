package delta

import (
	"context"
	"fmt"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// testGraph builds a small directed graph plus its sharding. Weights are
// dyadic rationals so incremental weighted-degree arithmetic is exact and the
// delta-vs-rebuild oracle can compare float columns bitwise.
func testGraph(t *testing.T, k int) ([]graph.Edge, *graph.Graph, []*shard.Shard, *shard.Locator, partition.Assignment) {
	t.Helper()
	const n = 12
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges,
			graph.Edge{Src: int32(v), Dst: int32((v + 1) % n), Weight: 1},
			graph.Edge{Src: int32(v), Dst: int32((v + 5) % n), Weight: 0.5},
		)
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	a := partition.HashPartition(n, k)
	shards, loc, err := shard.BuildWithOptions(g, a, k, shard.BuildOptions{CacheHaloRows: true})
	if err != nil {
		t.Fatal(err)
	}
	return edges, g, shards, loc, a
}

func allBases(shards []*shard.Shard) map[int32]*shard.Shard {
	m := make(map[int32]*shard.Shard, len(shards))
	for _, s := range shards {
		m[s.ShardID] = s
	}
	return m
}

// applyEdits mirrors the mutation stream onto a plain edge list, the oracle
// for from-scratch rebuilds.
func applyEdits(edges []graph.Edge, muts []Mutation) []graph.Edge {
	out := append([]graph.Edge(nil), edges...)
	for _, m := range muts {
		switch m.Op {
		case OpAddEdge:
			out = append(out, graph.Edge{Src: m.Src, Dst: m.Dst, Weight: m.Weight})
		case OpDelEdge:
			for i, e := range out {
				if e.Src == m.Src && e.Dst == m.Dst {
					out = append(out[:i], out[i+1:]...)
					break
				}
			}
		}
	}
	return out
}

// TestDeltaMatchesRebuild is the package's semantic anchor: after a mutation
// stream (edge adds, deletes, an appended vertex), every row read through the
// delta store at the final epoch must equal, array for array, the row of a
// from-scratch Build of the mutated graph with the same assignment.
func TestDeltaMatchesRebuild(t *testing.T) {
	const k = 2
	edges, _, shards, loc, a := testGraph(t, k)
	store := NewStore(loc, allBases(shards))
	coord := NewCoordinator(store, nil, nil)

	muts := []Mutation{
		{Op: OpAddEdge, Src: 0, Dst: 7, Weight: 2},
		{Op: OpAddEdge, Src: 3, Dst: 0, Weight: 0.25},
		{Op: OpDelEdge, Src: 5, Dst: 6},
		{Op: OpAddVertex, Src: 12},
		{Op: OpAddEdge, Src: 12, Dst: 4, Weight: 1},
		{Op: OpAddEdge, Src: 2, Dst: 12, Weight: 0.5},
	}
	// Apply in two batches to exercise multi-epoch chains.
	if _, err := coord.Apply(context.Background(), muts[:3]); err != nil {
		t.Fatal(err)
	}
	epoch, err := coord.Apply(context.Background(), muts[3:])
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}

	// From-scratch rebuild of the mutated graph. The new vertex keeps the
	// shard the coordinator chose.
	newSh, newLocal, ok := loc.TryLocate(12)
	if !ok {
		t.Fatal("appended vertex not in locator")
	}
	if want := loc.CoreCount(newSh) - 1; newLocal != want {
		t.Fatalf("appended local = %d, want %d", newLocal, want)
	}
	g2, err := graph.FromEdges(13, applyEdits(edges, muts))
	if err != nil {
		t.Fatal(err)
	}
	a2 := append(append(partition.Assignment{}, a...), newSh)
	fresh, loc2, err := shard.Build(g2, a2, k)
	if err != nil {
		t.Fatal(err)
	}

	for sh := int32(0); sh < k; sh++ {
		n := int(loc.CoreCount(sh))
		if n != fresh[sh].NumCore() {
			t.Fatalf("shard %d: core count %d, want %d", sh, n, fresh[sh].NumCore())
		}
		locals := make([]int32, n)
		for i := range locals {
			locals[i] = int32(i)
		}
		got, err := store.VertexProps(sh, locals, epoch)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < n; l++ {
			want := fresh[sh].VertexProp(int32(l))
			if err := sameVP(got[l], want); err != nil {
				t.Errorf("shard %d local %d: %v", sh, l, err)
			}
		}
	}
	// Locator agreement on the appended vertex.
	if s2, l2 := loc2.Locate(12); s2 != newSh || l2 != newLocal {
		t.Fatalf("rebuilt locator placed 12 at (%d,%d), delta at (%d,%d)", s2, l2, newSh, newLocal)
	}
}

func sameVP(got, want shard.VertexProp) error {
	if got.WDeg != want.WDeg {
		return fmt.Errorf("WDeg %g != %g", got.WDeg, want.WDeg)
	}
	if len(got.Locals) != len(want.Locals) {
		return fmt.Errorf("degree %d != %d", len(got.Locals), len(want.Locals))
	}
	for j := range got.Locals {
		if got.Locals[j] != want.Locals[j] || got.Shards[j] != want.Shards[j] ||
			got.Weights[j] != want.Weights[j] || got.WDegs[j] != want.WDegs[j] {
			return fmt.Errorf("entry %d: (%d,%d,%g,%g) != (%d,%d,%g,%g)", j,
				got.Shards[j], got.Locals[j], got.Weights[j], got.WDegs[j],
				want.Shards[j], want.Locals[j], want.Weights[j], want.WDegs[j])
		}
	}
	return nil
}

// TestEpochIsolation: a pinned epoch's reads are immune to later mutations
// and to compaction while pinned; compaction after release retires it.
func TestEpochIsolation(t *testing.T) {
	_, _, shards, loc, _ := testGraph(t, 2)
	store := NewStore(loc, allBases(shards))
	coord := NewCoordinator(store, nil, nil)
	ctx := context.Background()

	if _, err := coord.Apply(ctx, []Mutation{{Op: OpAddEdge, Src: 0, Dst: 3, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	e1 := store.PinCurrent()
	if e1 != 1 {
		t.Fatalf("pinned %d, want 1", e1)
	}
	sh0, l0 := loc.Locate(0)
	before, err := store.VertexProps(sh0, []int32{l0}, e1)
	if err != nil {
		t.Fatal(err)
	}
	degAt1 := len(before[0].Locals)

	if _, err := coord.Apply(ctx, []Mutation{{Op: OpAddEdge, Src: 0, Dst: 4, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	// Pinned view unchanged; current view sees the new edge.
	at1, _ := store.VertexProps(sh0, []int32{l0}, e1)
	if len(at1[0].Locals) != degAt1 {
		t.Fatalf("pinned view changed: %d -> %d", degAt1, len(at1[0].Locals))
	}
	at2, _ := store.VertexProps(sh0, []int32{l0}, 2)
	if len(at2[0].Locals) != degAt1+1 {
		t.Fatalf("current view degree %d, want %d", len(at2[0].Locals), degAt1+1)
	}

	// Compaction can only fold up to the pin.
	st := store.Compact()
	if st.Boundary != e1 {
		t.Fatalf("boundary %d, want %d", st.Boundary, e1)
	}
	again, err := store.VertexProps(sh0, []int32{l0}, e1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameVP(again[0], before[0]); err != nil {
		t.Fatalf("pinned view changed across compaction: %v", err)
	}

	store.Unpin(e1)
	st = store.Compact()
	if st.Boundary != 2 {
		t.Fatalf("post-release boundary %d, want 2", st.Boundary)
	}
	if _, err := store.VertexProps(sh0, []int32{l0}, e1); err == nil {
		t.Fatal("retired epoch still readable")
	}
	// The compacted base itself must serve the newest epoch.
	final, err := store.VertexProps(sh0, []int32{l0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(final[0].Locals) != degAt1+1 {
		t.Fatalf("post-compact degree %d, want %d", len(final[0].Locals), degAt1+1)
	}
}

// TestCompactionPreservesViews: reads at a pinned epoch are identical before
// and after a compaction that rebuilds the base CSR under them, across every
// row of every shard.
func TestCompactionPreservesViews(t *testing.T) {
	_, _, shards, loc, _ := testGraph(t, 2)
	store := NewStore(loc, allBases(shards))
	coord := NewCoordinator(store, nil, nil)
	ctx := context.Background()

	if _, err := coord.Apply(ctx, []Mutation{
		{Op: OpAddEdge, Src: 1, Dst: 8, Weight: 1},
		{Op: OpDelEdge, Src: 2, Dst: 3},
	}); err != nil {
		t.Fatal(err)
	}
	e := store.PinCurrent()
	if _, err := coord.Apply(ctx, []Mutation{{Op: OpAddEdge, Src: 8, Dst: 1, Weight: 2}}); err != nil {
		t.Fatal(err)
	}

	type rowKey struct{ sh, l int32 }
	snap := map[rowKey]shard.VertexProp{}
	for sh := int32(0); sh < 2; sh++ {
		for l := int32(0); l < loc.CoreCount(sh); l++ {
			vps, err := store.VertexProps(sh, []int32{l}, e)
			if err != nil {
				t.Fatal(err)
			}
			snap[rowKey{sh, l}] = vps[0]
		}
	}
	if st := store.Compact(); st.Boundary != e {
		t.Fatalf("boundary %d, want %d", st.Boundary, e)
	}
	for k, want := range snap {
		vps, err := store.VertexProps(k.sh, []int32{k.l}, e)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameVP(vps[0], want); err != nil {
			t.Errorf("shard %d local %d changed across compaction: %v", k.sh, k.l, err)
		}
	}
}

func TestMutatedSinceAndEpochGap(t *testing.T) {
	_, _, shards, loc, _ := testGraph(t, 2)
	store := NewStore(loc, allBases(shards))
	coord := NewCoordinator(store, nil, nil)
	ctx := context.Background()

	if _, err := coord.Apply(ctx, []Mutation{{Op: OpAddEdge, Src: 0, Dst: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Apply(ctx, []Mutation{{Op: OpAddEdge, Src: 7, Dst: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	keys, ok := store.MutatedSince(1, 2)
	if !ok || len(keys) != 1 {
		t.Fatalf("MutatedSince(1,2) = %v, %v; want one key", keys, ok)
	}
	sh7, l7 := loc.Locate(7)
	if keys[0] != (Key{sh7, l7}) {
		t.Fatalf("mutated key %v, want vertex 7 at (%d,%d)", keys[0], sh7, l7)
	}
	if keys, ok := store.MutatedSince(0, 2); !ok || len(keys) != 2 {
		t.Fatalf("MutatedSince(0,2) = %v, %v; want two keys", keys, ok)
	}
	if _, ok := store.MutatedSince(1, 99); ok {
		t.Fatal("future asOf should be unavailable")
	}

	// Replay is a no-op; a gap is refused.
	replay := &wire.MutationBatch{Epoch: 1}
	if err := store.Apply(replay); err != nil {
		t.Fatalf("replay: %v", err)
	}
	gap := &wire.MutationBatch{Epoch: 9}
	if err := store.Apply(gap); err == nil {
		t.Fatal("epoch gap not refused")
	}

	store.Compact()
	if _, ok := store.MutatedSince(1, 2); ok {
		t.Fatal("retired since should be unavailable")
	}
}

// TestMirrorDeterminism: two stores basing different shards, fed the same
// resolved batches, must agree on every row either can serve — the property
// that keeps replica failover score-identical.
func TestMirrorDeterminism(t *testing.T) {
	const k = 2
	_, _, shards, loc, _ := testGraph(t, k)
	// Machine A bases shard 0, machine B bases both (as a replica host would).
	a := NewStore(loc, map[int32]*shard.Shard{0: shards[0]})
	b := NewStore(loc, allBases(shards))
	coord := NewCoordinator(b, []Applier{
		func(_ context.Context, payload []byte) error {
			mb, err := wire.DecodeMutationBatch(payload)
			if err != nil {
				return err
			}
			return a.Apply(mb)
		},
	}, nil)
	ctx := context.Background()
	if _, err := coord.Apply(ctx, []Mutation{
		{Op: OpAddEdge, Src: 0, Dst: 9, Weight: 1},
		{Op: OpAddEdge, Src: 4, Dst: 0, Weight: 0.5},
		{Op: OpDelEdge, Src: 0, Dst: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs diverged: %d vs %d", a.Epoch(), b.Epoch())
	}
	locals := make([]int32, loc.CoreCount(0))
	for i := range locals {
		locals[i] = int32(i)
	}
	va, err := a.VertexProps(0, locals, 1)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.VertexProps(0, locals, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range va {
		if err := sameVP(va[i], vb[i]); err != nil {
			t.Errorf("local %d: %v", i, err)
		}
	}
}
