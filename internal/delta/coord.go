package delta

import (
	"context"
	"fmt"
	"sync"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// OpKind labels an unresolved client mutation.
type OpKind uint8

const (
	OpAddEdge OpKind = iota
	OpDelEdge
	OpAddVertex
)

// Mutation is one client mutation in global-ID space, before resolution.
type Mutation struct {
	Op     OpKind
	Src    graph.NodeID // AddVertex: the new vertex's ID
	Dst    graph.NodeID
	Weight float32
}

// Applier delivers an encoded mutation batch to one machine (its primary
// RPC endpoint). A failed delivery leaves that machine stale: it refuses
// later batches (epoch gap) until repaired, and epoch-pinned reads to it
// fail over.
type Applier func(ctx context.Context, payload []byte) error

// RemoteRow is a coordinator-side view of a row it does not base locally.
type RemoteRow struct {
	Locals  []int32
	Shards  []int32
	Weights []float32
	WDeg    float32
}

// RowFetcher reads a row from its owning machine at the given epoch, for
// resolving mutations whose source the coordinator does not serve.
type RowFetcher func(ctx context.Context, sh, local int32, epoch uint64) (RemoteRow, error)

// Coordinator turns client mutations into resolved, epoch-stamped batches
// and broadcasts them to every machine. There is one coordinator per
// cluster: epochs are assigned from its local store's counter, which is what
// makes them monotonic. Resolution translates global IDs to (shard, local),
// places new vertices with the LDG streaming heuristic (most already-placed
// in-batch neighbors, discounted by shard load), and pre-resolves every
// op's weighted degrees so mirrors apply by pure arithmetic.
type Coordinator struct {
	mu        sync.Mutex
	store     *Store
	loc       *shard.Locator
	appliers  []Applier
	fetch     RowFetcher
	imbalance float64
}

// NewCoordinator wires a coordinator over the local machine's store. The
// appliers cover every machine (including this one — the local store dedups
// its own batch by epoch). fetch may be nil when the coordinator bases every
// shard it will be asked to mutate.
func NewCoordinator(store *Store, appliers []Applier, fetch RowFetcher) *Coordinator {
	return &Coordinator{
		store:     store,
		loc:       store.Locator(),
		appliers:  appliers,
		fetch:     fetch,
		imbalance: 0.05,
	}
}

// pendRow is a row's tentative state during intra-batch resolution.
type pendRow struct {
	haveEntries bool
	locals      []int32
	shards      []int32
	weights     []float32
}

// Apply resolves muts into one batch at epoch store.Epoch()+1, applies it to
// the local store, and broadcasts it to every machine. It returns the new
// epoch. Resolution errors (unknown IDs, deleting an absent edge,
// non-positive weights) reject the whole batch before anything is applied;
// delivery failures to remote machines are counted and reported but do not
// fail the batch — the dead machine is already not serving.
func (c *Coordinator) Apply(ctx context.Context, muts []Mutation) (uint64, error) {
	if len(muts) == 0 {
		return c.store.Epoch(), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	batch, err := c.resolveLocked(ctx, muts)
	if err != nil {
		return 0, fmt.Errorf("delta: resolve: %w", err)
	}
	if err := c.store.Apply(batch); err != nil {
		return 0, err
	}
	payload := wire.EncodeMutationBatch(batch)
	var failed int
	var firstErr error
	var wg sync.WaitGroup
	errs := make([]error, len(c.appliers))
	for i, ap := range c.appliers {
		if ap == nil {
			continue
		}
		wg.Add(1)
		go func(i int, ap Applier) {
			defer wg.Done()
			errs[i] = ap(ctx, payload)
		}(i, ap)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed > 0 {
		metrics.MutationMirrorFailures.Inc(int64(failed))
	}
	return batch.Epoch, nil
}

func (c *Coordinator) resolveLocked(ctx context.Context, muts []Mutation) (*wire.MutationBatch, error) {
	var (
		epoch     = c.store.Epoch() + 1
		pendWDeg  = map[Key]float32{}
		pendRows  = map[Key]*pendRow{}
		pendPlace = map[graph.NodeID]Key{}
		pendCount = map[int32]int32{}
		pendAdds  = 0
		k         = c.loc.NumShards()
	)

	resolveAddr := func(v graph.NodeID) (Key, bool) {
		if key, ok := pendPlace[v]; ok {
			return key, true
		}
		sh, l, ok := c.loc.TryLocate(v)
		return Key{sh, l}, ok
	}

	// seedRow loads a row's entries into the tentative state on first touch.
	seedRow := func(key Key) (*pendRow, error) {
		pr := pendRows[key]
		if pr == nil {
			pr = &pendRow{}
			pendRows[key] = pr
		}
		if pr.haveEntries {
			return pr, nil
		}
		if locals, shards, weights, wdeg, ok := c.store.CurrentRow(key); ok {
			pr.locals, pr.shards, pr.weights = locals, shards, weights
			if _, have := pendWDeg[key]; !have {
				pendWDeg[key] = wdeg
			}
		} else if c.fetch != nil {
			rr, err := c.fetch(ctx, key.Shard, key.Local, c.store.Epoch())
			if err != nil {
				return nil, fmt.Errorf("fetch row (%d,%d): %w", key.Shard, key.Local, err)
			}
			pr.locals, pr.shards, pr.weights = rr.Locals, rr.Shards, rr.Weights
			if _, have := pendWDeg[key]; !have {
				pendWDeg[key] = rr.WDeg
			}
		} else {
			return nil, fmt.Errorf("row (%d,%d) not resolvable locally and no fetcher", key.Shard, key.Local)
		}
		pr.haveEntries = true
		return pr, nil
	}

	curWDeg := func(key Key) (float32, error) {
		if w, ok := pendWDeg[key]; ok {
			return w, nil
		}
		if w, ok := c.store.CurrentWDeg(key); ok {
			pendWDeg[key] = w
			return w, nil
		}
		// Fall back to a row read (its header carries the degree).
		if _, err := seedRow(key); err != nil {
			return 0, err
		}
		return pendWDeg[key], nil
	}

	batch := &wire.MutationBatch{Epoch: epoch, Ops: make([]wire.MutOp, 0, len(muts))}
	for i, m := range muts {
		switch m.Op {
		case OpAddVertex:
			next := graph.NodeID(c.loc.NumNodes() + pendAdds)
			if m.Src != next {
				return nil, fmt.Errorf("mutation %d: add-vertex %d out of order (next dense ID is %d)", i, m.Src, next)
			}
			sh := c.placeVertexLocked(m.Src, muts, pendPlace, pendCount, pendAdds, k)
			local := c.loc.CoreCount(sh) + pendCount[sh]
			key := Key{sh, local}
			pendPlace[m.Src] = key
			pendCount[sh]++
			pendAdds++
			pendWDeg[key] = 0
			pendRows[key] = &pendRow{haveEntries: true}
			batch.Ops = append(batch.Ops, wire.MutOp{
				Kind: wire.MutAddVertex, SrcShard: sh, SrcLocal: local, Global: int32(m.Src),
			})

		case OpAddEdge:
			if m.Weight <= 0 {
				return nil, fmt.Errorf("mutation %d: add-edge weight %g must be positive", i, m.Weight)
			}
			src, ok := resolveAddr(m.Src)
			if !ok {
				return nil, fmt.Errorf("mutation %d: unknown source %d", i, m.Src)
			}
			dst, ok := resolveAddr(m.Dst)
			if !ok {
				return nil, fmt.Errorf("mutation %d: unknown target %d", i, m.Dst)
			}
			srcW, err := curWDeg(src)
			if err != nil {
				return nil, fmt.Errorf("mutation %d: %w", i, err)
			}
			dstW, err := curWDeg(dst)
			if err != nil {
				return nil, fmt.Errorf("mutation %d: %w", i, err)
			}
			batch.Ops = append(batch.Ops, wire.MutOp{
				Kind:     wire.MutAddEdge,
				SrcShard: src.Shard, SrcLocal: src.Local,
				DstShard: dst.Shard, DstLocal: dst.Local,
				Weight: m.Weight, SrcWDeg: srcW, DstWDeg: dstW,
			})
			pendWDeg[src] = srcW + m.Weight
			if pr := pendRows[src]; pr != nil && pr.haveEntries {
				pr.locals = append(pr.locals, dst.Local)
				pr.shards = append(pr.shards, dst.Shard)
				pr.weights = append(pr.weights, m.Weight)
			}

		case OpDelEdge:
			src, ok := resolveAddr(m.Src)
			if !ok {
				return nil, fmt.Errorf("mutation %d: unknown source %d", i, m.Src)
			}
			dst, ok := resolveAddr(m.Dst)
			if !ok {
				return nil, fmt.Errorf("mutation %d: unknown target %d", i, m.Dst)
			}
			pr, err := seedRow(src)
			if err != nil {
				return nil, fmt.Errorf("mutation %d: %w", i, err)
			}
			j := -1
			for idx := range pr.locals {
				if pr.shards[idx] == dst.Shard && pr.locals[idx] == dst.Local {
					j = idx
					break
				}
			}
			if j < 0 {
				return nil, fmt.Errorf("mutation %d: edge %d->%d not present", i, m.Src, m.Dst)
			}
			w := pr.weights[j]
			srcW, err := curWDeg(src)
			if err != nil {
				return nil, fmt.Errorf("mutation %d: %w", i, err)
			}
			batch.Ops = append(batch.Ops, wire.MutOp{
				Kind:     wire.MutDelEdge,
				SrcShard: src.Shard, SrcLocal: src.Local,
				DstShard: dst.Shard, DstLocal: dst.Local,
				Weight: w, SrcWDeg: srcW,
			})
			pendWDeg[src] = srcW - w
			pr.locals = append(pr.locals[:j], pr.locals[j+1:]...)
			pr.shards = append(pr.shards[:j], pr.shards[j+1:]...)
			pr.weights = append(pr.weights[:j], pr.weights[j+1:]...)

		default:
			return nil, fmt.Errorf("mutation %d: unknown op %d", i, m.Op)
		}
	}
	return batch, nil
}

// placeVertexLocked chooses a shard for a new vertex with the LDG streaming
// rule (partition.LDGPartition): most already-placed neighbors, discounted by
// a load penalty, ties toward the lightest shard. Neighbors are the other
// endpoints of this batch's edges that touch the new vertex.
func (c *Coordinator) placeVertexLocked(v graph.NodeID, muts []Mutation,
	pendPlace map[graph.NodeID]Key, pendCount map[int32]int32, pendAdds, k int) int32 {

	score := make([]float64, k)
	for _, m := range muts {
		if m.Op != OpAddEdge && m.Op != OpDelEdge {
			continue
		}
		var other graph.NodeID
		switch v {
		case m.Src:
			other = m.Dst
		case m.Dst:
			other = m.Src
		default:
			continue
		}
		if key, ok := pendPlace[other]; ok {
			score[key.Shard]++
		} else if sh, _, ok := c.loc.TryLocate(other); ok {
			score[sh]++
		}
	}
	total := float64(c.loc.NumNodes() + pendAdds + 1)
	capacity := total/float64(k)*(1+c.imbalance) + 1
	load := func(sh int32) float64 {
		return float64(c.loc.CoreCount(sh) + pendCount[sh])
	}
	best, bestScore := int32(0), -1.0
	for sh := int32(0); int(sh) < k; sh++ {
		s := score[sh] * (1 - load(sh)/capacity)
		if s > bestScore || (s == bestScore && load(sh) < load(best)) {
			bestScore = s
			best = sh
		}
	}
	return best
}
