// Package delta is the streaming-mutation tier layered over the immutable
// per-shard CSR (ROADMAP item 4). Each machine runs one Store shared by its
// primary server, its hosted replica servers, and its compute processes. The
// Store keeps, per mutated vertex, a chain of materialized row *versions*
// (full neighbor tuples, one per mutation epoch) plus a chain of weighted-
// degree overrides, all layered over the untouched base shards:
//
//   - A query pins an epoch at admission. Every read it makes — local fetch,
//     remote fetch, halo row — resolves to "newest version at or below the
//     pinned epoch, else the base CSR", with the denormalized neighbor-degree
//     columns re-patched through the override chains. Two queries pinned at
//     different epochs see two consistent graphs through the same arrays.
//   - Mutations arrive as *resolved* batches (wire.MutationBatch): global IDs
//     already translated to (shard, local), new vertices already placed, and
//     pre-op weighted degrees already resolved by the coordinator. Applying a
//     batch is therefore deterministic pure arithmetic, so every machine —
//     owner, replica host, or bystander — lands in the identical state and a
//     failover stays score-identical.
//   - A compactor (compact.go) periodically rebuilds the based shards' CSRs
//     as of the oldest pinned epoch, folds the chains below that boundary,
//     and retires the epochs underneath.
//
// Epoch 0 is the pre-mutation base graph: a zero pinned epoch bypasses the
// store entirely and reads are byte-for-byte the legacy static path.
package delta

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// Key addresses a vertex by its (shard, local) pair.
type Key struct {
	Shard int32
	Local int32
}

// rowV is one materialized version of a vertex's neighbor row. The wdegs
// column holds values resolved as of this version's epoch; read-time patching
// re-resolves any neighbor whose degree changed later, so stale baked values
// are never observable.
type rowV struct {
	epoch   uint64
	wdeg    float32
	locals  []int32
	shards  []int32
	weights []float32
	wdegs   []float32
}

// wdegV is one weighted-degree override: vertex's out-degree as of epoch.
type wdegV struct {
	epoch uint64
	val   float32
}

// Store is one machine's delta overlay. All methods are safe for concurrent
// use; reads take a shared lock per batch, not per row.
type Store struct {
	loc *shard.Locator

	mu    sync.RWMutex
	bases map[int32]*shard.Shard // shards this machine serves (own + replicas)
	rows  map[Key][]rowV         // version chains, ascending epoch
	wdeg  map[Key][]wdegV        // degree-override chains, ascending epoch
	newV  map[Key]graph.NodeID   // appended vertices not yet baked into a base

	epoch   uint64           // newest applied epoch
	retired uint64           // epochs <= retired are folded and unpinnable
	epochs  []uint64         // live epochs, ascending
	log     map[uint64][]Key // vertices whose row or degree changed at epoch
	pins    map[uint64]int   // epoch -> pinned-query refcount

	maxEpochs   int
	kick        chan struct{} // nudges a running compactor
	waitCh      chan struct{} // closed+replaced on every Apply, wakes WaitEpoch
	compactorOn bool
	compactions uint64
	opsApplied  uint64
	lastPause   time.Duration
}

// NewStore builds a Store over the shards this machine serves. The locator is
// shared machine state: Apply extends it (idempotently) when vertices are
// appended.
func NewStore(loc *shard.Locator, bases map[int32]*shard.Shard) *Store {
	bs := make(map[int32]*shard.Shard, len(bases))
	for sh, b := range bases {
		bs[sh] = b
	}
	return &Store{
		loc:   loc,
		bases: bs,
		rows:  make(map[Key][]rowV),
		wdeg:  make(map[Key][]wdegV),
		newV:  make(map[Key]graph.NodeID),
		log:    make(map[uint64][]Key),
		pins:   make(map[uint64]int),
		kick:   make(chan struct{}, 1),
		waitCh: make(chan struct{}),
	}
}

// WaitEpoch blocks until the store has applied epoch e (returning nil
// immediately if it already has) or ctx ends. It closes the coordinator's
// resolve-then-broadcast window: the coordinator's local store advances to
// a new epoch before the mirrors finish delivering, so a query admitted on
// the coordinator's machine in that window can pin an epoch a remote
// machine is still about to apply. The remote's epoch-pinned read path
// waits here instead of failing — the epoch is known to exist (a pin names
// an assigned epoch), so the mirror is in flight or the machine is stale
// and the caller's deadline converts the wait into the error.
func (s *Store) WaitEpoch(ctx context.Context, e uint64) error {
	for {
		s.mu.RLock()
		cur, ch := s.epoch, s.waitCh
		s.mu.RUnlock()
		if cur >= e {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("delta: epoch %d not applied here (store at %d): %w", e, cur, ctx.Err())
		}
	}
}

// SetMaxEpochs caps the number of live (uncompacted) epochs: when an Apply
// pushes past the cap, the store compacts — via the background compactor if
// one is running, else synchronously.
func (s *Store) SetMaxEpochs(n int) {
	s.mu.Lock()
	s.maxEpochs = n
	s.mu.Unlock()
}

// Locator returns the shared locator the store patches.
func (s *Store) Locator() *shard.Locator { return s.loc }

// Epoch returns the newest applied epoch (0 before any mutation).
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// RetiredFloor returns the compaction boundary: epochs at or below it are
// folded and can no longer be pinned or diffed against.
func (s *Store) RetiredFloor() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retired
}

// PinCurrent pins the newest epoch and returns it. A pinned epoch's deltas
// survive compaction until every pin is released. Epoch 0 (no mutations yet)
// is not refcounted — the base graph never goes away.
func (s *Store) PinCurrent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch > 0 {
		s.pins[s.epoch]++
	}
	return s.epoch
}

// Unpin releases one PinCurrent reference on e. Unpinning epoch 0 is a no-op.
func (s *Store) Unpin(e uint64) {
	if e == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.pins[e]; n > 1 {
		s.pins[e] = n - 1
	} else {
		delete(s.pins, e)
	}
}

// HasBase reports whether this store serves shard sh locally.
func (s *Store) HasBase(sh int32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bases[sh] != nil
}

// Base returns the current (possibly compacted) base CSR for shard sh.
func (s *Store) Base(sh int32) *shard.Shard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bases[sh]
}

// Apply installs one resolved mutation batch. Batches must arrive in epoch
// order: a batch at or below the store's epoch is a mirrored retry and is
// ignored; a gap means this machine missed a broadcast (it was down) and the
// store refuses to apply, leaving itself stale — epoch-pinned reads beyond
// its epoch fail and queries fail over to an up-to-date replica.
func (s *Store) Apply(b *wire.MutationBatch) error {
	s.mu.Lock()
	if b.Epoch <= s.epoch {
		s.mu.Unlock()
		return nil
	}
	if b.Epoch != s.epoch+1 {
		at, want := s.epoch, b.Epoch
		s.mu.Unlock()
		return fmt.Errorf("delta: epoch gap: store at %d, batch is %d", at, want)
	}
	e := b.Epoch
	touched := make(map[Key]struct{})
	for i := range b.Ops {
		if err := s.applyOpLocked(e, &b.Ops[i], touched); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("delta: batch %d op %d: %w", e, i, err)
		}
	}
	keys := make([]Key, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	s.log[e] = keys
	s.epochs = append(s.epochs, e)
	s.epoch = e
	s.opsApplied += uint64(len(b.Ops))
	close(s.waitCh) // wake epoch waiters (WaitEpoch)
	s.waitCh = make(chan struct{})
	needCompact := s.maxEpochs > 0 && len(s.epochs) > s.maxEpochs
	background := s.compactorOn
	s.mu.Unlock()

	metrics.MutationBatches.Inc(1)
	metrics.MutationOps.Inc(int64(len(b.Ops)))
	if needCompact {
		if background {
			select {
			case s.kick <- struct{}{}:
			default: // compactor already nudged
			}
		} else {
			s.Compact()
		}
	}
	return nil
}

func (s *Store) applyOpLocked(e uint64, op *wire.MutOp, touched map[Key]struct{}) error {
	switch op.Kind {
	case wire.MutAddVertex:
		k := Key{op.SrcShard, op.SrcLocal}
		if err := s.loc.Extend(graph.NodeID(op.Global), op.SrcShard, op.SrcLocal); err != nil {
			return err
		}
		s.newV[k] = graph.NodeID(op.Global)
		s.rows[k] = appendVersion(s.rows[k], rowV{epoch: e})
		s.setWDegLocked(k, e, 0)
		touched[k] = struct{}{}
		metrics.VerticesAppended.Inc(1)
		return nil

	case wire.MutAddEdge:
		src := Key{op.SrcShard, op.SrcLocal}
		newW := op.SrcWDeg + op.Weight
		s.setWDegLocked(src, e, newW)
		touched[src] = struct{}{}
		if old, ok := s.rowAtLocked(src, e); ok {
			dst := Key{op.DstShard, op.DstLocal}
			dstW := op.DstWDeg
			if w, ok := s.wdegAtLocked(dst, e); ok {
				dstW = w
			}
			nv := rowV{
				epoch:   e,
				wdeg:    newW,
				locals:  append(append(make([]int32, 0, len(old.Locals)+1), old.Locals...), op.DstLocal),
				shards:  append(append(make([]int32, 0, len(old.Shards)+1), old.Shards...), op.DstShard),
				weights: append(append(make([]float32, 0, len(old.Weights)+1), old.Weights...), op.Weight),
				wdegs:   append(append(make([]float32, 0, len(old.WDegs)+1), old.WDegs...), dstW),
			}
			s.rows[src] = appendVersion(s.rows[src], nv)
		}
		metrics.EdgesInserted.Inc(1)
		return nil

	case wire.MutDelEdge:
		src := Key{op.SrcShard, op.SrcLocal}
		s.setWDegLocked(src, e, op.SrcWDeg-op.Weight)
		touched[src] = struct{}{}
		if old, ok := s.rowAtLocked(src, e); ok {
			j := -1
			for i := range old.Locals {
				if old.Shards[i] == op.DstShard && old.Locals[i] == op.DstLocal {
					j = i
					break
				}
			}
			if j < 0 {
				return fmt.Errorf("edge (%d,%d)->(%d,%d) not present",
					op.SrcShard, op.SrcLocal, op.DstShard, op.DstLocal)
			}
			n := len(old.Locals) - 1
			nv := rowV{
				epoch:   e,
				wdeg:    op.SrcWDeg - op.Weight,
				locals:  dropIdx32(old.Locals, j, n),
				shards:  dropIdx32(old.Shards, j, n),
				weights: dropIdxF(old.Weights, j, n),
				wdegs:   dropIdxF(old.WDegs, j, n),
			}
			s.rows[src] = appendVersion(s.rows[src], nv)
		}
		metrics.EdgesDeleted.Inc(1)
		return nil
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

func dropIdx32(a []int32, j, n int) []int32 {
	out := make([]int32, 0, n)
	out = append(out, a[:j]...)
	return append(out, a[j+1:]...)
}

func dropIdxF(a []float32, j, n int) []float32 {
	out := make([]float32, 0, n)
	out = append(out, a[:j]...)
	return append(out, a[j+1:]...)
}

// appendVersion appends v to chain, replacing the last version if it carries
// the same epoch (intra-batch re-materialization).
func appendVersion(chain []rowV, v rowV) []rowV {
	if n := len(chain); n > 0 && chain[n-1].epoch == v.epoch {
		chain[n-1] = v
		return chain
	}
	return append(chain, v)
}

func (s *Store) setWDegLocked(k Key, e uint64, v float32) {
	chain := s.wdeg[k]
	if n := len(chain); n > 0 && chain[n-1].epoch == e {
		chain[n-1].val = v
		return
	}
	s.wdeg[k] = append(chain, wdegV{epoch: e, val: v})
}

// wdegAtLocked returns the newest degree override for k at or below e.
func (s *Store) wdegAtLocked(k Key, e uint64) (float32, bool) {
	chain := s.wdeg[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].epoch <= e {
			return chain[i].val, true
		}
	}
	return 0, false
}

// rowAtLocked resolves the row of k as of epoch e: newest materialized
// version at or below e, else the base CSR, else a based shard's halo cache.
// The returned view has its degree columns patched through the override
// chains (copy-on-write — shared arrays are never scribbled on). ok=false
// means this store has no local source for the row.
func (s *Store) rowAtLocked(k Key, e uint64) (shard.VertexProp, bool) {
	for chain, i := s.rows[k], 0; i < len(chain); i++ {
		v := &chain[len(chain)-1-i]
		if v.epoch <= e {
			vp := shard.VertexProp{
				Local: k.Local, WDeg: v.wdeg,
				Locals: v.locals, Shards: v.shards,
				Weights: v.weights, WDegs: v.wdegs,
			}
			return s.patchVPLocked(vp, k, e), true
		}
	}
	if k.Local < s.loc.BaseCoreCount(k.Shard) {
		if base := s.bases[k.Shard]; base != nil {
			return s.patchVPLocked(base.VertexProp(k.Local), k, e), true
		}
		for _, b := range s.bases {
			if vp, ok := b.HaloRow(k.Shard, k.Local); ok {
				return s.patchVPLocked(vp, k, e), true
			}
		}
	}
	return shard.VertexProp{}, false
}

// patchVPLocked re-resolves vp's denormalized degree columns as of epoch e.
// It copies WDegs only when an override actually changes a value.
func (s *Store) patchVPLocked(vp shard.VertexProp, k Key, e uint64) shard.VertexProp {
	if len(s.wdeg) == 0 {
		return vp
	}
	if w, ok := s.wdegAtLocked(k, e); ok {
		vp.WDeg = w
	}
	copied := false
	for i := range vp.WDegs {
		w, ok := s.wdegAtLocked(Key{vp.Shards[i], vp.Locals[i]}, e)
		if !ok || w == vp.WDegs[i] {
			continue
		}
		if !copied {
			vp.WDegs = append([]float32(nil), vp.WDegs...)
			copied = true
		}
		vp.WDegs[i] = w
	}
	return vp
}

// VertexProps resolves a batch of rows of shard sh as of epoch e under one
// shared lock — the read behind both the local fetch and the epoch-pinned
// remote handler. It fails if e has not reached this store (stale mirror) or
// a local is unknown at e.
func (s *Store) VertexProps(sh int32, locals []int32, e uint64) ([]shard.VertexProp, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e > s.epoch {
		return nil, fmt.Errorf("delta: epoch %d not applied here (store at %d)", e, s.epoch)
	}
	if e < s.retired {
		return nil, fmt.Errorf("delta: epoch %d retired (floor %d)", e, s.retired)
	}
	out := make([]shard.VertexProp, len(locals))
	for i, l := range locals {
		vp, ok := s.rowAtLocked(Key{sh, l}, e)
		if !ok {
			return nil, fmt.Errorf("delta: shard %d local %d unknown at epoch %d", sh, l, e)
		}
		out[i] = vp
	}
	return out, nil
}

// CheckLocalAt validates that (sh, local) names a vertex that exists at
// epoch e, including appended vertices.
func (s *Store) CheckLocalAt(sh, local int32, e uint64) error {
	if local < 0 {
		return fmt.Errorf("delta: negative local %d", local)
	}
	if local < s.loc.BaseCoreCount(sh) {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.rows[Key{sh, local}] {
		if v.epoch <= e {
			return nil
		}
	}
	return fmt.Errorf("delta: shard %d local %d does not exist at epoch %d", sh, local, e)
}

// PatchHalo re-resolves a halo-cached row as of epoch e: the row's
// materialized version if it was mutated, else the cached row with its degree
// columns patched. Chains are global state (every machine applies every
// batch), so halo reads never need an RPC to stay epoch-consistent.
func (s *Store) PatchHalo(vp shard.VertexProp, sh, local int32, e uint64) shard.VertexProp {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := Key{sh, local}
	for chain, i := s.rows[k], 0; i < len(chain); i++ {
		v := &chain[len(chain)-1-i]
		if v.epoch <= e {
			return s.patchVPLocked(shard.VertexProp{
				Local: local, WDeg: v.wdeg,
				Locals: v.locals, Shards: v.shards,
				Weights: v.weights, WDegs: v.wdegs,
			}, k, e)
		}
	}
	return s.patchVPLocked(vp, k, e)
}

// MutatedSince returns the set of vertices whose row or degree changed in
// (since, asOf]. ok=false means the diff is unavailable — since has been
// retired by compaction or asOf has not reached this store — and the caller
// must fall back to a full recompute.
func (s *Store) MutatedSince(since, asOf uint64) ([]Key, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if since < s.retired || asOf > s.epoch || since > asOf {
		return nil, false
	}
	set := make(map[Key]struct{})
	for _, e := range s.epochs {
		if e <= since {
			continue
		}
		if e > asOf {
			break
		}
		for _, k := range s.log[e] {
			set[k] = struct{}{}
		}
	}
	out := make([]Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out, true
}

// RowPair returns k's row at two epochs in one locked pass — the incremental
// SSPPR re-push needs (old, new) views of every mutated vertex to compute the
// residual correction. okOld/okNew report per-epoch availability.
func (s *Store) RowPair(k Key, oldE, newE uint64) (oldVP, newVP shard.VertexProp, okOld, okNew bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if oldE >= s.retired {
		oldVP, okOld = s.rowAtLocked(k, oldE)
	}
	if newE >= s.retired && newE <= s.epoch {
		newVP, okNew = s.rowAtLocked(k, newE)
	}
	return
}

// CurrentRow resolves k's row at the newest epoch, for coordinator-side
// resolution. The returned slices are copies safe to hold across mutations.
func (s *Store) CurrentRow(k Key) (locals, shards []int32, weights []float32, wdeg float32, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vp, ok := s.rowAtLocked(k, s.epoch)
	if !ok {
		return nil, nil, nil, 0, false
	}
	return append([]int32(nil), vp.Locals...), append([]int32(nil), vp.Shards...),
		append([]float32(nil), vp.Weights...), vp.WDeg, true
}

// CurrentWDeg resolves k's weighted out-degree at the newest epoch: override
// chain first, then any based shard's core or halo arrays.
func (s *Store) CurrentWDeg(k Key) (float32, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if w, ok := s.wdegAtLocked(k, s.epoch); ok {
		return w, true
	}
	if base := s.bases[k.Shard]; base != nil && int(k.Local) < base.NumCore() {
		return base.CoreWDeg[k.Local], true
	}
	for _, b := range s.bases {
		if vp, ok := b.HaloRow(k.Shard, k.Local); ok {
			return vp.WDeg, true
		}
	}
	return 0, false
}

// Snapshot is a point-in-time summary of the store, JSON-shaped for the
// pprserve /debug/epochs endpoint.
type Snapshot struct {
	Epoch         uint64         `json:"epoch"`
	RetiredFloor  uint64         `json:"retired_floor"`
	LiveEpochs    int            `json:"live_epochs"`
	PinnedEpochs  map[uint64]int `json:"pinned_epochs"`
	DeltaRows     int            `json:"delta_rows"`
	WDegOverrides int            `json:"wdeg_overrides"`
	NewVertices   int            `json:"new_vertices"`
	OpsApplied    uint64         `json:"ops_applied"`
	Compactions   uint64         `json:"compactions"`
	LastPauseNs   int64          `json:"last_compact_pause_ns"`
}

// Stats returns a snapshot of the store's state.
func (s *Store) Stats() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pins := make(map[uint64]int, len(s.pins))
	for e, n := range s.pins {
		pins[e] = n
	}
	return Snapshot{
		Epoch:         s.epoch,
		RetiredFloor:  s.retired,
		LiveEpochs:    len(s.epochs),
		PinnedEpochs:  pins,
		DeltaRows:     len(s.rows),
		WDegOverrides: len(s.wdeg),
		NewVertices:   len(s.newV),
		OpsApplied:    s.opsApplied,
		Compactions:   s.compactions,
		LastPauseNs:   int64(s.lastPause),
	}
}
