package delta

import (
	"sort"
	"sync"
	"time"

	"pprengine/internal/graph"
	"pprengine/internal/metrics"
	"pprengine/internal/shard"
)

// CompactStats summarizes one compaction pass.
type CompactStats struct {
	Boundary      uint64        // epoch everything at or below was folded to
	EpochsRetired int           // live epochs pruned
	RowsBaked     int           // version chains folded or dropped
	ShardsRebuilt int           // based shards whose CSR was rebuilt
	Pause         time.Duration // time the store's write lock was held
}

// Compact merges deltas into fresh base CSRs and retires old epochs. The
// boundary B is the oldest pinned epoch (or the newest epoch when nothing is
// pinned): queries pinned at or above B observe identical reads before and
// after, because every based shard's CSR is rebuilt to its exact as-of-B
// state, non-based chains are folded to a single as-of-B version, and the
// degree-override chains keep an as-of-B entry (re-patching a baked value is
// idempotent). Epochs at or below B become unpinnable; an incremental query
// whose cached epoch fell below B falls back to a full run.
//
// Compact holds the store's write lock for the whole rebuild — that pause is
// the cost the -exp mutate benchmark measures against MaxEpochs/interval.
func (s *Store) Compact() CompactStats {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	b := s.epoch
	for e, n := range s.pins {
		if n > 0 && e < b {
			b = e
		}
	}
	st := CompactStats{Boundary: b}
	if b <= s.retired {
		return st
	}

	// Rebuild every based shard to its exact as-of-B state. rowAtLocked
	// consults s.bases during the rebuild, so swap each shard in only after
	// its arrays are complete.
	rebuilt := make(map[int32]*shard.Shard, len(s.bases))
	for sh, base := range s.bases {
		rebuilt[sh] = s.rebuildBaseLocked(sh, base, b)
	}
	for sh, ns := range rebuilt {
		s.bases[sh] = ns
		st.ShardsRebuilt++
	}

	// Fold chains: based-shard keys are fully baked into the rebuilt CSRs,
	// so their versions at or below B are dropped; other keys keep a single
	// as-of-B version so halo patching and remote-miss materialization still
	// resolve.
	for k, chain := range s.rows {
		i := len(chain)
		for i > 0 && chain[i-1].epoch > b {
			i--
		}
		if i == 0 {
			continue // fully above the boundary
		}
		st.RowsBaked++
		if _, based := s.bases[k.Shard]; based {
			if i == len(chain) {
				delete(s.rows, k)
			} else {
				s.rows[k] = append([]rowV(nil), chain[i:]...)
			}
			continue
		}
		fold := chain[i-1]
		fold.epoch = b
		s.rows[k] = append([]rowV{fold}, chain[i:]...)
	}
	for k, chain := range s.wdeg {
		i := len(chain)
		for i > 0 && chain[i-1].epoch > b {
			i--
		}
		if i == 0 {
			continue
		}
		fold := chain[i-1]
		fold.epoch = b
		s.wdeg[k] = append([]wdegV{fold}, chain[i:]...)
	}
	// Appended vertices of based shards with creation at or below B now have
	// real base rows; forget their append records.
	for k := range s.newV {
		if _, based := s.bases[k.Shard]; !based {
			continue
		}
		if _, still := s.rows[k]; !still {
			delete(s.newV, k)
		}
	}

	// Retire epochs at or below the boundary.
	keep := s.epochs[:0]
	for _, e := range s.epochs {
		if e <= b {
			delete(s.log, e)
			st.EpochsRetired++
		} else {
			keep = append(keep, e)
		}
	}
	s.epochs = keep
	s.retired = b
	s.compactions++
	s.lastPause = time.Since(start)
	st.Pause = s.lastPause

	metrics.Compactions.Inc(1)
	metrics.EpochsRetired.Inc(int64(st.EpochsRetired))
	return st
}

// rebuildBaseLocked materializes shard sh's exact as-of-B CSR: base rows with
// mutated rows spliced in and degree columns re-patched, appended vertices
// (created at or below B) promoted to real core rows, and the halo row cache
// rebuilt the same way.
func (s *Store) rebuildBaseLocked(sh int32, base *shard.Shard, b uint64) *shard.Shard {
	n0 := base.NumCore()
	// Appended locals form a dense suffix in creation-epoch order; take the
	// prefix created at or below B.
	appended := []graph.NodeID{}
	for l := int32(n0); ; l++ {
		k := Key{sh, l}
		g, ok := s.newV[k]
		if !ok {
			break
		}
		chain := s.rows[k]
		if len(chain) == 0 || chain[0].epoch > b {
			break
		}
		appended = append(appended, g)
	}
	n := n0 + len(appended)

	ns := &shard.Shard{
		ShardID:    sh,
		NumShards:  base.NumShards,
		CoreGlobal: append(append(make([]graph.NodeID, 0, n), base.CoreGlobal...), appended...),
		Indptr:     make([]int64, 1, n+1),
		CoreWDeg:   make([]float32, 0, n),
	}
	for l := int32(0); int(l) < n; l++ {
		vp, ok := s.rowAtLocked(Key{sh, l}, b)
		if !ok {
			// Unreachable for a based shard; keep the base row raw.
			vp = base.VertexProp(l)
		}
		ns.NbrLocal = append(ns.NbrLocal, vp.Locals...)
		ns.NbrShard = append(ns.NbrShard, vp.Shards...)
		ns.NbrWeight = append(ns.NbrWeight, vp.Weights...)
		ns.NbrWDeg = append(ns.NbrWDeg, vp.WDegs...)
		ns.CoreWDeg = append(ns.CoreWDeg, vp.WDeg)
		ns.Indptr = append(ns.Indptr, int64(len(ns.NbrLocal)))
	}

	if base.HasHaloRows() {
		ns.HaloKeys = append([]uint64(nil), base.HaloKeys...)
		ns.HaloIndptr = make([]int64, 1, len(ns.HaloKeys)+1)
		ns.HaloWDeg = make([]float32, 0, len(ns.HaloKeys))
		for _, hk := range ns.HaloKeys {
			hsh, hl := int32(hk>>32), int32(uint32(hk))
			vp, ok := s.rowAtLocked(Key{hsh, hl}, b)
			if !ok {
				vp, _ = base.HaloRow(hsh, hl)
			}
			ns.HaloNbrLocal = append(ns.HaloNbrLocal, vp.Locals...)
			ns.HaloNbrShard = append(ns.HaloNbrShard, vp.Shards...)
			ns.HaloNbrWeight = append(ns.HaloNbrWeight, vp.Weights...)
			ns.HaloNbrWDeg = append(ns.HaloNbrWDeg, vp.WDegs...)
			ns.HaloWDeg = append(ns.HaloWDeg, vp.WDeg)
			ns.HaloIndptr = append(ns.HaloIndptr, int64(len(ns.HaloNbrLocal)))
		}
		// Ignoring the error: key/indptr lengths are consistent by
		// construction above.
		_ = ns.RebuildHaloIndex()
	}
	return ns
}

// NeedsCompact reports whether the live-epoch count exceeds the configured
// cap.
func (s *Store) NeedsCompact() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxEpochs > 0 && len(s.epochs) > s.maxEpochs
}

// StartCompactor runs Compact every interval (and immediately when an Apply
// overflows MaxEpochs) until the returned stop function is called.
func (s *Store) StartCompactor(interval time.Duration) (stop func()) {
	s.mu.Lock()
	s.compactorOn = true
	s.mu.Unlock()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Compact()
			case <-s.kick:
				s.Compact()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.compactorOn = false
			s.mu.Unlock()
			close(done)
			wg.Wait()
		})
	}
}

// sortKeys orders keys by (shard, local) — deterministic iteration for tests
// and the incremental re-push.
func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Shard != keys[j].Shard {
			return keys[i].Shard < keys[j].Shard
		}
		return keys[i].Local < keys[j].Local
	})
}

// SortKeys exposes the canonical (shard, local) ordering of mutation keys.
func SortKeys(keys []Key) { sortKeys(keys) }
