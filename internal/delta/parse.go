package delta

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pprengine/internal/graph"
)

// ParseMutations reads the line-oriented mutation format used by
// `pprquery -mutate` and `POST /mutate`:
//
//	add-edge <src> <dst> <weight>
//	del-edge <src> <dst>
//	add-vertex <id>
//
// IDs are global node IDs; blank lines and #-comments are ignored. New
// vertices must use the next dense global ID (the coordinator rejects gaps).
func ParseMutations(r io.Reader) ([]Mutation, error) {
	var out []Mutation
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "add-edge":
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: add-edge wants <src> <dst> <weight>", line)
			}
			src, err1 := parseNode(f[1])
			dst, err2 := parseNode(f[2])
			w, err3 := strconv.ParseFloat(f[3], 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("line %d: bad add-edge %q", line, text)
			}
			out = append(out, Mutation{Op: OpAddEdge, Src: src, Dst: dst, Weight: float32(w)})
		case "del-edge":
			if len(f) != 3 {
				return nil, fmt.Errorf("line %d: del-edge wants <src> <dst>", line)
			}
			src, err1 := parseNode(f[1])
			dst, err2 := parseNode(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad del-edge %q", line, text)
			}
			out = append(out, Mutation{Op: OpDelEdge, Src: src, Dst: dst})
		case "add-vertex":
			if len(f) != 2 {
				return nil, fmt.Errorf("line %d: add-vertex wants <id>", line)
			}
			id, err := parseNode(f[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad add-vertex %q", line, text)
			}
			out = append(out, Mutation{Op: OpAddVertex, Src: id})
		default:
			return nil, fmt.Errorf("line %d: unknown mutation %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseNode(s string) (graph.NodeID, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad node ID %q", s)
	}
	return graph.NodeID(v), nil
}

// FormatMutations renders mutations back to the line format ParseMutations
// reads — the round-trip `pprquery -mutate` uses to forward a validated
// file to the coordinator's /mutate endpoint.
func FormatMutations(muts []Mutation) string {
	var b strings.Builder
	for _, m := range muts {
		switch m.Op {
		case OpAddEdge:
			fmt.Fprintf(&b, "add-edge %d %d %g\n", m.Src, m.Dst, m.Weight)
		case OpDelEdge:
			fmt.Fprintf(&b, "del-edge %d %d\n", m.Src, m.Dst)
		case OpAddVertex:
			fmt.Fprintf(&b, "add-vertex %d\n", m.Src)
		}
	}
	return b.String()
}
