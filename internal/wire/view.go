// View-based decoders for the zero-copy hot path: where DecodeCSR/DecodeLoL
// copy every array onto the heap, the *View variants alias the payload
// in place (CSR, when the host layout allows it) or carve their arrays out
// of a caller-supplied arena (LoL, and the CSR fallback). The returned
// NeighborInfos is a *view*: it is valid only while the payload's buffer
// is retained (see mem.Buf) or until the arena is reset.

package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"pprengine/internal/mem"
)

// hostLittleEndian reports whether the host's native integer layout matches
// the wire's little-endian encoding, which is what makes in-place aliasing
// of int32/float32 arrays legal.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CanAlias reports whether a decoder may reinterpret b's bytes in place as
// 4-byte elements: the host must be little-endian and b 4-byte aligned.
// Pooled frame buffers are allocator-aligned, and every array inside a CSR
// payload starts at a multiple of 4, so the hot path aliases; odd inputs
// (sub-slices, big-endian hosts) fall back to copying.
func CanAlias(b []byte) bool {
	if !hostLittleEndian {
		return false
	}
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

// aliasI32s reinterprets the first 4n bytes of b as an []int32 without
// copying. The caller has bounds-checked b and established CanAlias.
func aliasI32s(b []byte, n int) ([]int32, []byte) {
	if n == 0 {
		return []int32{}, b
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), b[4*n:]
}

// aliasF32s is aliasI32s for float32.
func aliasF32s(b []byte, n int) ([]float32, []byte) {
	if n == 0 {
		return []float32{}, b
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n), b[4*n:]
}

// DecodeIDListView parses an EncodeIDList payload, aliasing the IDs in place
// when the host allows it (the IDs start at payload offset 4, so a 4-aligned
// payload keeps them aligned). The returned slice is a view: valid only
// while the payload's buffer is. Hosts that cannot alias fall back to the
// copying decoder.
func DecodeIDListView(b []byte) ([]int32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short ID list")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b)-4 != 4*n {
		return DecodeIDList(b) // exact error messages live in one place
	}
	if !CanAlias(b[4:]) {
		return DecodeIDList(b)
	}
	ids, _ := aliasI32s(b[4:], n)
	return ids, nil
}

// arenaI32 allocates n int32s from a, or the heap when a is nil.
func arenaI32(a *mem.Arena, n int) []int32 {
	if a != nil {
		return a.I32(n)
	}
	return make([]int32, n)
}

// arenaF32 allocates n float32s from a, or the heap when a is nil.
func arenaF32(a *mem.Arena, n int) []float32 {
	if a != nil {
		return a.F32(n)
	}
	return make([]float32, n)
}

// copyI32s decodes n int32s from b into dst (len n), returning the rest.
func copyI32s(dst []int32, b []byte) []byte {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return b[4*len(dst):]
}

// copyF32s decodes n float32s from b into dst (len n), returning the rest.
func copyF32s(dst []float32, b []byte) []byte {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return b[4*len(dst):]
}

// CSRSize returns the exact length of EncodeCSR(n)'s output.
func CSRSize(n *NeighborInfos) int {
	return 8 + 4*(len(n.Indptr)+len(n.Locals)+len(n.Shards)+
		len(n.Weights)+len(n.WDegs)+len(n.RowWDeg))
}

// EncodeCSRTo appends EncodeCSR(n)'s encoding to dst and returns the
// extended slice. With cap(dst) >= CSRSize(n) (e.g. a pooled buffer sized
// by CSRSize) no allocation happens and the result shares dst's backing
// array.
func EncodeCSRTo(dst []byte, n *NeighborInfos) []byte {
	rows := n.NumRows()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(n.Locals)))
	dst = putI32s(dst, n.Indptr)
	dst = putI32s(dst, n.Locals)
	dst = putI32s(dst, n.Shards)
	dst = putF32s(dst, n.Weights)
	dst = putF32s(dst, n.WDegs)
	dst = putF32s(dst, n.RowWDeg)
	return dst
}

// DecodeCSRView parses an EncodeCSR payload without copying when possible:
// on a little-endian host with an aligned payload the returned arrays alias
// b directly; otherwise they are decoded into a (or the heap when a is
// nil). Either way the result is a view — valid only while b's buffer is
// retained and a is not reset.
func DecodeCSRView(b []byte, a *mem.Arena) (*NeighborInfos, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wire: short CSR header")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	entries := int(binary.LittleEndian.Uint32(b[4:]))
	rest := b[8:]
	indptrLen := 0
	if rows > 0 {
		indptrLen = rows + 1
	}
	need := 4 * (indptrLen + 4*entries + rows)
	if len(rest) < need {
		return nil, fmt.Errorf("wire: short buffer for %d int32s", indptrLen)
	}
	if len(rest) > need {
		return nil, fmt.Errorf("wire: %d trailing bytes in CSR payload", len(rest)-need)
	}
	n := &NeighborInfos{}
	if CanAlias(b) {
		if rows > 0 {
			n.Indptr, rest = aliasI32s(rest, indptrLen)
		} else {
			n.Indptr = []int32{}
		}
		n.Locals, rest = aliasI32s(rest, entries)
		n.Shards, rest = aliasI32s(rest, entries)
		n.Weights, rest = aliasF32s(rest, entries)
		n.WDegs, rest = aliasF32s(rest, entries)
		n.RowWDeg, _ = aliasF32s(rest, rows)
	} else {
		if rows > 0 {
			n.Indptr = arenaI32(a, indptrLen)
			rest = copyI32s(n.Indptr, rest)
		} else {
			n.Indptr = []int32{}
		}
		n.Locals = arenaI32(a, entries)
		rest = copyI32s(n.Locals, rest)
		n.Shards = arenaI32(a, entries)
		rest = copyI32s(n.Shards, rest)
		n.Weights = arenaF32(a, entries)
		rest = copyF32s(n.Weights, rest)
		n.WDegs = arenaF32(a, entries)
		rest = copyF32s(n.WDegs, rest)
		n.RowWDeg = arenaF32(a, rows)
		copyF32s(n.RowWDeg, rest)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// FeatureResponseSize returns the exact length of EncodeFeatureResponse's
// output for n floats.
func FeatureResponseSize(n int) int { return 8 + 4*n }

// AppendFeatureHeader appends a feature response's [dim][count] header to
// dst — the first half of an encode that gathers rows straight into a
// pooled buffer (pair with AppendF32s per row).
func AppendFeatureHeader(dst []byte, dim, count int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dim))
	return binary.LittleEndian.AppendUint32(dst, uint32(count))
}

// AppendF32s appends v in the wire's little-endian float32 layout.
func AppendF32s(dst []byte, v []float32) []byte { return putF32s(dst, v) }

// DecodeFeatureResponseView parses an EncodeFeatureResponse payload without
// copying when possible: the floats start at payload offset 8, so on a
// little-endian host with a 4-aligned payload the returned slice aliases b
// directly — valid only while b's buffer is retained. Odd inputs fall back
// to the copying decoder (which also owns the exact error messages).
func DecodeFeatureResponseView(b []byte) (dim int, feats []float32, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: short feature response")
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b)-8 != 4*n || !CanAlias(b[8:]) {
		return DecodeFeatureResponse(b)
	}
	dim = int(binary.LittleEndian.Uint32(b))
	feats, _ = aliasF32s(b[8:], n)
	return dim, feats, nil
}

// DecodeLoLView parses an EncodeLoL payload into a NeighborInfos whose
// arrays are carved from a (or the heap when a is nil). The interleaved
// list-of-lists layout can never be aliased in place, but a two-pass decode
// sizes every array exactly, so a warm arena makes the steady state
// allocation-free where DecodeLoL reallocates per batch. The result is a
// view into a: valid only until the arena is reset.
func DecodeLoLView(b []byte, a *mem.Arena) (*NeighborInfos, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short LoL header")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	body := b[4:]

	// Pass 1: validate the row structure and count total entries, committing
	// no memory for an untrusted header's claims.
	entries := 0
	rest := body
	for i := 0; i < rows; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("wire: truncated LoL row %d", i)
		}
		rest = rest[4:]
		deg := 0
		for t := 0; t < 4; t++ {
			d, r2, err := readTensorHeader(rest)
			if err != nil {
				return nil, err
			}
			if t == 0 {
				deg = d
			} else if d != deg {
				return nil, fmt.Errorf("wire: LoL row %d tensor count mismatch", i)
			}
			if len(r2) < 4*deg {
				return nil, fmt.Errorf("wire: short buffer for %d int32s", deg)
			}
			rest = r2[4*deg:]
		}
		entries += deg
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in LoL payload", len(rest))
	}

	// Pass 2: exact-size allocation, then a straight fill. The structure was
	// validated above, so this walk cannot fail.
	n := &NeighborInfos{
		Locals:  arenaI32(a, entries),
		Shards:  arenaI32(a, entries),
		Weights: arenaF32(a, entries),
		WDegs:   arenaF32(a, entries),
		RowWDeg: arenaF32(a, rows),
	}
	if rows > 0 {
		n.Indptr = arenaI32(a, rows+1)
	} else {
		n.Indptr = []int32{}
	}
	rest = body
	off := 0
	for i := 0; i < rows; i++ {
		n.RowWDeg[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		var deg int
		deg, rest, _ = readTensorHeader(rest)
		rest = copyI32s(n.Locals[off:off+deg], rest)
		_, rest, _ = readTensorHeader(rest)
		rest = copyI32s(n.Shards[off:off+deg], rest)
		_, rest, _ = readTensorHeader(rest)
		rest = copyF32s(n.Weights[off:off+deg], rest)
		_, rest, _ = readTensorHeader(rest)
		rest = copyF32s(n.WDegs[off:off+deg], rest)
		off += deg
		n.Indptr[i+1] = int32(off)
	}
	return n, nil
}
