// Package wire defines the payload encodings exchanged between compute
// processes and graph-storage servers. It is where the paper's "Compress"
// optimization (§3.2.3) lives:
//
//   - The CSR encoding packs a whole batch of neighbor infos into five
//     contiguous arrays behind a single header — the same structure as the
//     Graph Shard itself, so responses are consumed zero-copy through the
//     VertexProp-style Row accessor.
//
//   - The list-of-lists (LoL) encoding mimics the naive "list of small
//     tensors with non-equal lengths": every per-node array carries its own
//     tensor-style header, inflating both bytes on the wire and per-element
//     encode/decode work. It exists as the ablation baseline.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// NeighborInfos is a batch of neighbor information for a list of requested
// vertices, in CSR layout: row i of the batch describes the i-th requested
// vertex, and its neighbor tuples live at [Indptr[i], Indptr[i+1]).
type NeighborInfos struct {
	Indptr  []int32
	Locals  []int32
	Shards  []int32
	Weights []float32
	WDegs   []float32
	// RowWDeg is the weighted degree of each requested vertex itself,
	// needed by push to compute W(v,u)/dw(v).
	RowWDeg []float32
}

// NumRows returns the number of vertices in the batch.
func (n *NeighborInfos) NumRows() int {
	if len(n.Indptr) == 0 {
		return 0
	}
	return len(n.Indptr) - 1
}

// Row returns the neighbor tuple slices of batch row i (aliases, no copy).
func (n *NeighborInfos) Row(i int) (locals, shards []int32, weights, wdegs []float32) {
	lo, hi := n.Indptr[i], n.Indptr[i+1]
	return n.Locals[lo:hi], n.Shards[lo:hi], n.Weights[lo:hi], n.WDegs[lo:hi]
}

// Validate checks CSR invariants.
func (n *NeighborInfos) Validate() error {
	if len(n.Indptr) == 0 {
		if len(n.Locals) != 0 {
			return fmt.Errorf("wire: entries without indptr")
		}
		return nil
	}
	if n.Indptr[0] != 0 {
		return fmt.Errorf("wire: Indptr[0] != 0")
	}
	last := n.Indptr[len(n.Indptr)-1]
	if int(last) != len(n.Locals) || len(n.Locals) != len(n.Shards) ||
		len(n.Locals) != len(n.Weights) || len(n.Locals) != len(n.WDegs) {
		return fmt.Errorf("wire: array length mismatch")
	}
	if len(n.RowWDeg) != n.NumRows() {
		return fmt.Errorf("wire: RowWDeg length %d != rows %d", len(n.RowWDeg), n.NumRows())
	}
	for i := 1; i < len(n.Indptr); i++ {
		if n.Indptr[i] < n.Indptr[i-1] {
			return fmt.Errorf("wire: Indptr not monotone")
		}
	}
	return nil
}

// --- primitive helpers ---

func putI32s(b []byte, v []int32) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

func putF32s(b []byte, v []float32) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
	}
	return b
}

func getI32s(b []byte, n int) ([]int32, []byte, error) {
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("wire: short buffer for %d int32s", n)
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, b[4*n:], nil
}

func getF32s(b []byte, n int) ([]float32, []byte, error) {
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("wire: short buffer for %d float32s", n)
	}
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, b[4*n:], nil
}

// EncodeIDList serializes a request: a list of local vertex IDs.
func EncodeIDList(ids []int32) []byte {
	b := make([]byte, 0, 4+4*len(ids))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	return putI32s(b, ids)
}

// DecodeIDList parses an EncodeIDList payload.
func DecodeIDList(b []byte) ([]int32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short ID list")
	}
	n := int(binary.LittleEndian.Uint32(b))
	ids, rest, err := getI32s(b[4:], n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in ID list", len(rest))
	}
	return ids, nil
}

// --- CSR (compressed) neighbor-info encoding ---

// EncodeCSR serializes a NeighborInfos batch in the compressed format:
// one header, then six contiguous arrays.
func EncodeCSR(n *NeighborInfos) []byte {
	rows := n.NumRows()
	entries := len(n.Locals)
	b := make([]byte, 0, 8+4*(rows+1)+16*entries+4*rows)
	b = binary.LittleEndian.AppendUint32(b, uint32(rows))
	b = binary.LittleEndian.AppendUint32(b, uint32(entries))
	b = putI32s(b, n.Indptr)
	b = putI32s(b, n.Locals)
	b = putI32s(b, n.Shards)
	b = putF32s(b, n.Weights)
	b = putF32s(b, n.WDegs)
	b = putF32s(b, n.RowWDeg)
	return b
}

// DecodeCSR parses an EncodeCSR payload.
func DecodeCSR(b []byte) (*NeighborInfos, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wire: short CSR header")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	entries := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	n := &NeighborInfos{}
	var err error
	if rows > 0 {
		if n.Indptr, b, err = getI32s(b, rows+1); err != nil {
			return nil, err
		}
	} else {
		n.Indptr = []int32{}
	}
	if n.Locals, b, err = getI32s(b, entries); err != nil {
		return nil, err
	}
	if n.Shards, b, err = getI32s(b, entries); err != nil {
		return nil, err
	}
	if n.Weights, b, err = getF32s(b, entries); err != nil {
		return nil, err
	}
	if n.WDegs, b, err = getF32s(b, entries); err != nil {
		return nil, err
	}
	if n.RowWDeg, b, err = getF32s(b, rows); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in CSR payload", len(b))
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// --- list-of-lists (uncompressed) neighbor-info encoding ---

// tensorHeaderSize mimics the fixed per-tensor wrapping cost (dtype, shape,
// strides metadata) that a tensor RPC backend pays for every small tensor in
// a list-of-lists response.
const tensorHeaderSize = 16

func putTensorHeader(b []byte, n int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(n)) // shape
	b = binary.LittleEndian.AppendUint32(b, 4)         // dtype size
	b = binary.LittleEndian.AppendUint64(b, uint64(n)) // numel, redundant on purpose
	return b
}

func readTensorHeader(b []byte) (int, []byte, error) {
	if len(b) < tensorHeaderSize {
		return 0, nil, fmt.Errorf("wire: short tensor header")
	}
	n := int(binary.LittleEndian.Uint32(b))
	return n, b[tensorHeaderSize:], nil
}

// EncodeLoL serializes the batch as a list of per-node tensor groups: for
// every requested vertex, four individually-headed arrays plus its own
// weighted degree. This is deliberately the expensive format.
func EncodeLoL(n *NeighborInfos) []byte {
	rows := n.NumRows()
	b := make([]byte, 0, 4+rows*(4+4*tensorHeaderSize)+16*len(n.Locals))
	b = binary.LittleEndian.AppendUint32(b, uint32(rows))
	for i := 0; i < rows; i++ {
		locals, shards, weights, wdegs := n.Row(i)
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(n.RowWDeg[i]))
		b = putTensorHeader(b, len(locals))
		b = putI32s(b, locals)
		b = putTensorHeader(b, len(shards))
		b = putI32s(b, shards)
		b = putTensorHeader(b, len(weights))
		b = putF32s(b, weights)
		b = putTensorHeader(b, len(wdegs))
		b = putF32s(b, wdegs)
	}
	return b
}

// DecodeLoL parses an EncodeLoL payload into the same NeighborInfos form.
func DecodeLoL(b []byte) (*NeighborInfos, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short LoL header")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// The row count is a capacity hint from an untrusted header: clamp it by
	// what the payload could possibly hold (every row costs at least its
	// RowWDeg plus four tensor headers) so a corrupt or hostile count cannot
	// force a huge speculative allocation. An inflated count that survives
	// the clamp still fails the truncation checks inside the loop.
	hint := min(rows, len(b)/(4+4*tensorHeaderSize))
	n := &NeighborInfos{
		Indptr:  make([]int32, 1, hint+1),
		RowWDeg: make([]float32, 0, hint),
	}
	for i := 0; i < rows; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("wire: truncated LoL row %d", i)
		}
		n.RowWDeg = append(n.RowWDeg, math.Float32frombits(binary.LittleEndian.Uint32(b)))
		b = b[4:]
		var deg int
		var err error
		if deg, b, err = readTensorHeader(b); err != nil {
			return nil, err
		}
		var locals []int32
		if locals, b, err = getI32s(b, deg); err != nil {
			return nil, err
		}
		var d2 int
		if d2, b, err = readTensorHeader(b); err != nil {
			return nil, err
		}
		if d2 != deg {
			return nil, fmt.Errorf("wire: LoL row %d shard count mismatch", i)
		}
		var shards []int32
		if shards, b, err = getI32s(b, deg); err != nil {
			return nil, err
		}
		if d2, b, err = readTensorHeader(b); err != nil {
			return nil, err
		}
		if d2 != deg {
			return nil, fmt.Errorf("wire: LoL row %d weight count mismatch", i)
		}
		var weights []float32
		if weights, b, err = getF32s(b, deg); err != nil {
			return nil, err
		}
		if d2, b, err = readTensorHeader(b); err != nil {
			return nil, err
		}
		if d2 != deg {
			return nil, fmt.Errorf("wire: LoL row %d wdeg count mismatch", i)
		}
		var wdegs []float32
		if wdegs, b, err = getF32s(b, deg); err != nil {
			return nil, err
		}
		n.Locals = append(n.Locals, locals...)
		n.Shards = append(n.Shards, shards...)
		n.Weights = append(n.Weights, weights...)
		n.WDegs = append(n.WDegs, wdegs...)
		n.Indptr = append(n.Indptr, int32(len(n.Locals)))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in LoL payload", len(b))
	}
	if rows == 0 {
		n.Indptr = []int32{}
	}
	return n, nil
}

// --- sample-one-neighbor encoding (random walk) ---

// SampleRequest asks the destination shard to sample one out-neighbor for
// each listed core vertex, using the given seed for reproducibility.
type SampleRequest struct {
	Seed   int64
	Locals []int32
}

// EncodeSampleRequest serializes r.
func EncodeSampleRequest(r *SampleRequest) []byte {
	b := make([]byte, 0, 12+4*len(r.Locals))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Seed))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Locals)))
	return putI32s(b, r.Locals)
}

// DecodeSampleRequest parses an EncodeSampleRequest payload.
func DecodeSampleRequest(b []byte) (*SampleRequest, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("wire: short sample request")
	}
	r := &SampleRequest{Seed: int64(binary.LittleEndian.Uint64(b))}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	var err error
	if r.Locals, b, err = getI32s(b[12:], n); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in sample request")
	}
	return r, nil
}

// SampleResponse carries, per requested vertex, the sampled neighbor's
// (local, shard) address and its global ID (for the walk summary). A vertex
// with no out-neighbors gets local = -1.
type SampleResponse struct {
	Locals  []int32
	Shards  []int32
	Globals []int32
}

// EncodeSampleResponse serializes r.
func EncodeSampleResponse(r *SampleResponse) []byte {
	b := make([]byte, 0, 4+12*len(r.Locals))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Locals)))
	b = putI32s(b, r.Locals)
	b = putI32s(b, r.Shards)
	b = putI32s(b, r.Globals)
	return b
}

// DecodeSampleResponse parses an EncodeSampleResponse payload.
func DecodeSampleResponse(b []byte) (*SampleResponse, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short sample response")
	}
	n := int(binary.LittleEndian.Uint32(b))
	r := &SampleResponse{}
	var err error
	if r.Locals, b, err = getI32s(b[4:], n); err != nil {
		return nil, err
	}
	if r.Shards, b, err = getI32s(b, n); err != nil {
		return nil, err
	}
	if r.Globals, b, err = getI32s(b, n); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in sample response")
	}
	return r, nil
}

// --- k-hop fanout sampling encoding (GraphSAGE-style BFS primitive) ---

// SampleNRequest asks a shard to sample up to Fanout weighted out-neighbors
// (without replacement) for each listed core vertex.
type SampleNRequest struct {
	Seed   int64
	Fanout int32
	Locals []int32
}

// EncodeSampleNRequest serializes r.
func EncodeSampleNRequest(r *SampleNRequest) []byte {
	b := make([]byte, 0, 16+4*len(r.Locals))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Seed))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Fanout))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Locals)))
	return putI32s(b, r.Locals)
}

// DecodeSampleNRequest parses an EncodeSampleNRequest payload.
func DecodeSampleNRequest(b []byte) (*SampleNRequest, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("wire: short sampleN request")
	}
	r := &SampleNRequest{
		Seed:   int64(binary.LittleEndian.Uint64(b)),
		Fanout: int32(binary.LittleEndian.Uint32(b[8:])),
	}
	n := int(binary.LittleEndian.Uint32(b[12:]))
	var err error
	if r.Locals, b, err = getI32s(b[16:], n); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in sampleN request")
	}
	return r, nil
}

// SampleNResponse is a ragged batch of sampled neighbors: row i holds the
// sampled neighbors of the i-th requested vertex at
// [Indptr[i], Indptr[i+1]).
type SampleNResponse struct {
	Indptr  []int32
	Locals  []int32
	Shards  []int32
	Globals []int32
}

// Row returns row i's slices.
func (r *SampleNResponse) Row(i int) (locals, shards, globals []int32) {
	lo, hi := r.Indptr[i], r.Indptr[i+1]
	return r.Locals[lo:hi], r.Shards[lo:hi], r.Globals[lo:hi]
}

// NumRows returns the number of rows.
func (r *SampleNResponse) NumRows() int {
	if len(r.Indptr) == 0 {
		return 0
	}
	return len(r.Indptr) - 1
}

// EncodeSampleNResponse serializes r.
func EncodeSampleNResponse(r *SampleNResponse) []byte {
	rows := r.NumRows()
	b := make([]byte, 0, 8+4*(rows+1)+12*len(r.Locals))
	b = binary.LittleEndian.AppendUint32(b, uint32(rows))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Locals)))
	b = putI32s(b, r.Indptr)
	b = putI32s(b, r.Locals)
	b = putI32s(b, r.Shards)
	b = putI32s(b, r.Globals)
	return b
}

// DecodeSampleNResponse parses an EncodeSampleNResponse payload.
func DecodeSampleNResponse(b []byte) (*SampleNResponse, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("wire: short sampleN response")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	entries := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	r := &SampleNResponse{}
	var err error
	if rows > 0 {
		if r.Indptr, b, err = getI32s(b, rows+1); err != nil {
			return nil, err
		}
	} else {
		r.Indptr = []int32{}
	}
	if r.Locals, b, err = getI32s(b, entries); err != nil {
		return nil, err
	}
	if r.Shards, b, err = getI32s(b, entries); err != nil {
		return nil, err
	}
	if r.Globals, b, err = getI32s(b, entries); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in sampleN response")
	}
	return r, nil
}

// --- shard statistics encoding ---

// ShardStats mirrors shard.Stats for the RPC surface (paper §3.2.2: the
// engine "includes several methods for retrieving critical statistics
// about the graph").
type ShardStats struct {
	ShardID      int32
	NumShards    int32
	NumCore      int64
	NumEntries   int64
	HaloNodes    int64
	MemoryBytes  int64
	RemoteFrac   float64
	AvgOutDegree float64
}

// EncodeShardStats serializes s.
func EncodeShardStats(s *ShardStats) []byte {
	b := make([]byte, 0, 56)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.ShardID))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.NumShards))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumCore))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumEntries))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.HaloNodes))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.MemoryBytes))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.RemoteFrac))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.AvgOutDegree))
	return b
}

// DecodeShardStats parses an EncodeShardStats payload.
func DecodeShardStats(b []byte) (*ShardStats, error) {
	if len(b) != 56 {
		return nil, fmt.Errorf("wire: shard stats has %d bytes, want 56", len(b))
	}
	return &ShardStats{
		ShardID:      int32(binary.LittleEndian.Uint32(b)),
		NumShards:    int32(binary.LittleEndian.Uint32(b[4:])),
		NumCore:      int64(binary.LittleEndian.Uint64(b[8:])),
		NumEntries:   int64(binary.LittleEndian.Uint64(b[16:])),
		HaloNodes:    int64(binary.LittleEndian.Uint64(b[24:])),
		MemoryBytes:  int64(binary.LittleEndian.Uint64(b[32:])),
		RemoteFrac:   math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
		AvgOutDegree: math.Float64frombits(binary.LittleEndian.Uint64(b[48:])),
	}, nil
}

// --- owner-compute query dispatch encoding ---

func putF64s(b []byte, v []float64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func getF64s(b []byte, n int) ([]float64, []byte, error) {
	if len(b) < 8*n {
		return nil, nil, fmt.Errorf("wire: short buffer for %d float64s", n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, b[8*n:], nil
}

// QueryRequest asks the owner machine to run one SSPPR query for a core
// vertex of its shard and return the top-K results (owner-compute rule over
// RPC: clients never pull the graph, they push the query).
type QueryRequest struct {
	SourceLocal int32
	TopK        int32
	Alpha       float64
	Eps         float64
	// TimeoutMs propagates the client's deadline so the owner stops
	// computing once the client has given up. 0 means no client deadline.
	TimeoutMs uint32
	// Priority and Tenant feed the owner's admission controller: the quota
	// bucket the query draws from and its wait-queue band. Zero/empty are
	// the defaults and keep the encoding at its pre-admission layout.
	Priority int32
	Tenant   string
}

// maxTenantLen caps the tenant ID's encoded length.
const maxTenantLen = 255

// EncodeQueryRequest serializes r. Requests with no admission identity
// (Priority 0, empty Tenant) keep the 28-byte pre-admission layout, so
// default-config clients stay wire-compatible with older servers. A tenant
// longer than 255 bytes is truncated.
func EncodeQueryRequest(r *QueryRequest) []byte {
	tenant := r.Tenant
	if len(tenant) > maxTenantLen {
		tenant = tenant[:maxTenantLen]
	}
	b := make([]byte, 0, 33+len(tenant))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.SourceLocal))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.TopK))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Alpha))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Eps))
	b = binary.LittleEndian.AppendUint32(b, r.TimeoutMs)
	if r.Priority == 0 && tenant == "" {
		return b
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Priority))
	b = append(b, byte(len(tenant)))
	b = append(b, tenant...)
	return b
}

// DecodeQueryRequest parses an EncodeQueryRequest payload. Older layouts are
// still accepted: 24 bytes (pre-deadline) and 28 bytes (pre-admission).
func DecodeQueryRequest(b []byte) (*QueryRequest, error) {
	if len(b) != 24 && len(b) != 28 && len(b) < 33 {
		return nil, fmt.Errorf("wire: query request has %d bytes, want 24, 28, or >= 33", len(b))
	}
	r := &QueryRequest{
		SourceLocal: int32(binary.LittleEndian.Uint32(b)),
		TopK:        int32(binary.LittleEndian.Uint32(b[4:])),
		Alpha:       math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		Eps:         math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}
	if len(b) >= 28 {
		r.TimeoutMs = binary.LittleEndian.Uint32(b[24:])
	}
	if len(b) >= 33 {
		r.Priority = int32(binary.LittleEndian.Uint32(b[28:]))
		n := int(b[32])
		if len(b) != 33+n {
			return nil, fmt.Errorf("wire: query request tenant claims %d bytes, %d remain", n, len(b)-33)
		}
		r.Tenant = string(b[33:])
	}
	return r, nil
}

// QueryResponse carries the ranked results plus the query statistics.
type QueryResponse struct {
	Globals    []int32
	Scores     []float64
	Iterations int32
	Pushes     int64
	Touched    int32
}

// EncodeQueryResponse serializes r.
func EncodeQueryResponse(r *QueryResponse) []byte {
	b := make([]byte, 0, 20+12*len(r.Globals))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Globals)))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Iterations))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Pushes))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Touched))
	b = putI32s(b, r.Globals)
	b = putF64s(b, r.Scores)
	return b
}

// DecodeQueryResponse parses an EncodeQueryResponse payload.
func DecodeQueryResponse(b []byte) (*QueryResponse, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("wire: short query response")
	}
	n := int(binary.LittleEndian.Uint32(b))
	r := &QueryResponse{
		Iterations: int32(binary.LittleEndian.Uint32(b[4:])),
		Pushes:     int64(binary.LittleEndian.Uint64(b[8:])),
		Touched:    int32(binary.LittleEndian.Uint32(b[16:])),
	}
	var err error
	if r.Globals, b, err = getI32s(b[20:], n); err != nil {
		return nil, err
	}
	if r.Scores, b, err = getF64s(b, n); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in query response")
	}
	return r, nil
}

// --- feature fetch encoding (GNN case study) ---

// EncodeFeatureResponse serializes a row-major [len(ids) x dim] feature
// block.
func EncodeFeatureResponse(dim int, feats []float32) []byte {
	b := make([]byte, 0, 8+4*len(feats))
	b = binary.LittleEndian.AppendUint32(b, uint32(dim))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(feats)))
	return putF32s(b, feats)
}

// DecodeFeatureResponse parses an EncodeFeatureResponse payload.
func DecodeFeatureResponse(b []byte) (dim int, feats []float32, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: short feature response")
	}
	dim = int(binary.LittleEndian.Uint32(b))
	n := int(binary.LittleEndian.Uint32(b[4:]))
	feats, rest, err := getF32s(b[8:], n)
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("wire: trailing bytes in feature response")
	}
	return dim, feats, nil
}

// EncodeF32s serializes a bare float32 vector (gradient allreduce payloads).
func EncodeF32s(v []float32) []byte {
	b := make([]byte, 0, 4+4*len(v))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return putF32s(b, v)
}

// DecodeF32s parses an EncodeF32s payload.
func DecodeF32s(b []byte) ([]float32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short f32 vector")
	}
	n := int(binary.LittleEndian.Uint32(b))
	v, rest, err := getF32s(b[4:], n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes in f32 vector")
	}
	return v, nil
}

// TraceContextSize is the encoded length of a trace context: two uint64s
// (trace ID then span ID), appended to a request frame header when the
// frame's traced flag is set.
const TraceContextSize = 16

// AppendTraceContext appends a trace context (trace ID, span ID) to dst in
// the wire's little-endian layout.
func AppendTraceContext(dst []byte, traceID, spanID uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	return binary.LittleEndian.AppendUint64(dst, spanID)
}

// DecodeTraceContext parses an AppendTraceContext block.
func DecodeTraceContext(b []byte) (traceID, spanID uint64, err error) {
	if len(b) < TraceContextSize {
		return 0, 0, fmt.Errorf("wire: short trace context (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:]), nil
}
