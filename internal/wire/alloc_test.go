package wire

import (
	"testing"

	"pprengine/internal/mem"
)

// Alloc-regression guards: the view decoders exist so the row-decode path
// stops allocating per batch. These budgets keep future changes from
// silently reintroducing per-row copies. The budgets are per decoded batch:
// the NeighborInfos header itself plus nothing else once the arena is warm.

func TestDecodeCSRViewAllocBudget(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	enc := aligned(EncodeCSR(benchInfos()))
	if !CanAlias(enc) {
		t.Skip("host cannot alias")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeCSRView(enc, nil); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation: the *NeighborInfos header. Every array aliases enc.
	if allocs > 1 {
		t.Fatalf("DecodeCSRView allocates %.1f objects per batch, budget 1", allocs)
	}
}

func TestDecodeLoLViewAllocBudget(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	enc := EncodeLoL(benchInfos())
	var a mem.Arena
	if _, err := DecodeLoLView(enc, &a); err != nil { // warm the slabs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Reset()
		if _, err := DecodeLoLView(enc, &a); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation: the *NeighborInfos header. Arrays come from the warm
	// arena.
	if allocs > 1 {
		t.Fatalf("DecodeLoLView allocates %.1f objects per batch, budget 1", allocs)
	}
}

// The copy decoders are the ablation baseline — assert they really do
// allocate per batch, so the bench comparison keeps meaning something.
func TestDecodeCSRCopyAllocates(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	enc := EncodeCSR(benchInfos())
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecodeCSR(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs < 6 {
		t.Fatalf("DecodeCSR allocates %.1f objects, expected one per array", allocs)
	}
}
