package wire

import (
	"encoding/binary"
	"math"
	"testing"

	"pprengine/internal/mem"
)

// Every decoder in this package parses bytes that arrive off the network.
// The fuzz targets assert the shared contract: arbitrary input either
// decodes or returns an error — no panics (slice bounds, nil derefs) and no
// allocation driven by an unvalidated header count. Seeds pair each valid
// encoding with corrupt variants (truncations, inflated counts).

// corruptions returns data plus standard mutations worth seeding.
func corruptions(data []byte) [][]byte {
	out := [][]byte{data}
	if len(data) > 0 {
		out = append(out, data[:len(data)-1])                       // truncated tail
		out = append(out, append(data[:len(data):len(data)], 0xAA)) // trailing junk
	}
	if len(data) >= 4 {
		huge := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(huge, 0x7fffffff) // inflate leading count
		out = append(out, huge)
	}
	return out
}

func validInfos() *NeighborInfos {
	return &NeighborInfos{
		Indptr:  []int32{0, 2, 2, 5},
		Locals:  []int32{1, 2, 3, 4, 5},
		Shards:  []int32{0, 1, 0, 1, 2},
		Weights: []float32{1, 2, 3, 4, 5},
		WDegs:   []float32{2, 4, 6, 8, 10},
		RowWDeg: []float32{3, 0, 12},
	}
}

func FuzzDecodeCSR(f *testing.F) {
	for _, s := range corruptions(EncodeCSR(validInfos())) {
		f.Add(s)
	}
	f.Add(EncodeCSR(&NeighborInfos{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeCSR(data)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("decoded CSR fails its own invariants: %v", err)
		}
	})
}

func FuzzDecodeLoL(f *testing.F) {
	for _, s := range corruptions(EncodeLoL(validInfos())) {
		f.Add(s)
	}
	f.Add(EncodeLoL(&NeighborInfos{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeLoL(data)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("decoded LoL fails CSR invariants: %v", err)
		}
	})
}

// FuzzDecodeCSRView holds the view decoder to the copy decoder's verdict:
// both accept or both reject, and on accept the decoded batches are
// identical — whether the view aliased the payload or fell back to a copy.
func FuzzDecodeCSRView(f *testing.F) {
	for _, s := range corruptions(EncodeCSR(validInfos())) {
		f.Add(s)
	}
	f.Add(EncodeCSR(&NeighborInfos{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := DecodeCSR(data)
		for _, b := range [][]byte{aligned(data), misalignedFuzz(data)} {
			var a mem.Arena
			v, err := DecodeCSRView(b, &a)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("view err = %v, copy err = %v", err, refErr)
			}
			if err == nil {
				checkInfosMatch(t, ref, v)
			}
		}
	})
}

// FuzzDecodeLoLView does the same for the LoL pair.
func FuzzDecodeLoLView(f *testing.F) {
	for _, s := range corruptions(EncodeLoL(validInfos())) {
		f.Add(s)
	}
	f.Add(EncodeLoL(&NeighborInfos{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := DecodeLoL(data)
		var a mem.Arena
		v, err := DecodeLoLView(data, &a)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("view err = %v, copy err = %v", err, refErr)
		}
		if err == nil {
			checkInfosMatch(t, ref, v)
		}
	})
}

// misalignedFuzz is misaligned() tolerant of empty input.
func misalignedFuzz(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return misaligned(b)
}

func FuzzDecodeIDList(f *testing.F) {
	for _, s := range corruptions(EncodeIDList([]int32{7, 8, 9})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, err := DecodeIDList(data)
		if err == nil {
			_ = ids
		}
	})
}

func FuzzDecodeSampleRequest(f *testing.F) {
	for _, s := range corruptions(EncodeSampleRequest(&SampleRequest{Seed: 99, Locals: []int32{1, 2}})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeSampleRequest(data)
	})
}

func FuzzDecodeSampleResponse(f *testing.F) {
	valid := EncodeSampleResponse(&SampleResponse{
		Locals: []int32{1, -1}, Shards: []int32{0, -1}, Globals: []int32{10, -1},
	})
	for _, s := range corruptions(valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeSampleResponse(data)
	})
}

func FuzzDecodeSampleNRequest(f *testing.F) {
	for _, s := range corruptions(EncodeSampleNRequest(&SampleNRequest{Seed: 5, Fanout: 3, Locals: []int32{1}})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeSampleNRequest(data)
	})
}

func FuzzDecodeSampleNResponse(f *testing.F) {
	valid := EncodeSampleNResponse(&SampleNResponse{
		Indptr: []int32{0, 1, 3}, Locals: []int32{4, 5, 6},
		Shards: []int32{0, 1, 0}, Globals: []int32{40, 50, 60},
	})
	for _, s := range corruptions(valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeSampleNResponse(data)
	})
}

func FuzzDecodeShardStats(f *testing.F) {
	for _, s := range corruptions(EncodeShardStats(&ShardStats{ShardID: 1, NumShards: 4, NumCore: 100})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeShardStats(data)
	})
}

func FuzzDecodeQueryRequest(f *testing.F) {
	for _, s := range corruptions(EncodeQueryRequest(&QueryRequest{SourceLocal: 3, TopK: 10, Alpha: 0.462, Eps: 1e-6, TimeoutMs: 100})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeQueryRequest(data)
	})
}

func FuzzDecodeQueryResponse(f *testing.F) {
	valid := EncodeQueryResponse(&QueryResponse{
		Globals: []int32{1, 2}, Scores: []float64{0.5, 0.25},
		Iterations: 7, Pushes: 1000, Touched: 55,
	})
	for _, s := range corruptions(valid) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeQueryResponse(data)
		if err != nil {
			return
		}
		if len(r.Globals) != len(r.Scores) {
			t.Fatalf("decoded response with %d globals but %d scores", len(r.Globals), len(r.Scores))
		}
	})
}

func FuzzDecodeFeatureResponse(f *testing.F) {
	for _, s := range corruptions(EncodeFeatureResponse(4, []float32{1, 2, 3, 4, 5, 6, 7, 8})) {
		f.Add(s)
	}
	f.Add(EncodeFeatureResponse(0, nil))
	f.Add(EncodeFeatureResponse(3, []float32{-1.5, 0, 2.25})) // one row, dim 3
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeFeatureResponse(data)
	})
}

// FuzzDecodeFeatureResponseView holds the view decoder to the copy
// decoder's verdict on both aligned and misaligned inputs.
func FuzzDecodeFeatureResponseView(f *testing.F) {
	for _, s := range corruptions(EncodeFeatureResponse(2, []float32{1, 2, 3, 4})) {
		f.Add(s)
	}
	f.Add(EncodeFeatureResponse(0, nil))
	f.Add(EncodeFeatureResponse(8, []float32{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Fuzz(func(t *testing.T, data []byte) {
		refDim, ref, refErr := DecodeFeatureResponse(data)
		for _, b := range [][]byte{aligned(data), misalignedFuzz(data)} {
			dim, feats, err := DecodeFeatureResponseView(b)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("view err = %v, copy err = %v", err, refErr)
			}
			if err != nil {
				continue
			}
			if dim != refDim || len(feats) != len(ref) {
				t.Fatalf("view (dim %d, %d floats) vs copy (dim %d, %d floats)", dim, len(feats), refDim, len(ref))
			}
			for i := range ref {
				if math.Float32bits(feats[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("view[%d] = %v, copy = %v", i, feats[i], ref[i])
				}
			}
		}
	})
}

func FuzzDecodeF32s(f *testing.F) {
	for _, s := range corruptions(EncodeF32s([]float32{1.5, -2.5})) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeF32s(data)
	})
}
