package wire

import (
	"math/rand"
	"slices"
	"testing"

	"pprengine/internal/mem"
)

// checkInfosMatch compares two batches by content. Unlike assertEqualInfos
// it treats nil and empty slices as equal: the view decoders return empty
// (possibly arena-backed) slices where the copy decoders return nil.
func checkInfosMatch(t *testing.T, want, got *NeighborInfos) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("rows %d vs %d", want.NumRows(), got.NumRows())
	}
	if !slices.Equal(want.Indptr, got.Indptr) {
		t.Fatalf("indptr %v vs %v", want.Indptr, got.Indptr)
	}
	if !slices.Equal(want.Locals, got.Locals) || !slices.Equal(want.Shards, got.Shards) {
		t.Fatal("ids differ")
	}
	if !slices.Equal(want.Weights, got.Weights) || !slices.Equal(want.WDegs, got.WDegs) {
		t.Fatal("weights differ")
	}
	if !slices.Equal(want.RowWDeg, got.RowWDeg) {
		t.Fatalf("row wdeg %v vs %v", want.RowWDeg, got.RowWDeg)
	}
}

// aligned returns a copy of b whose base address is 4-byte aligned.
func aligned(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// misaligned returns a copy of b that CanAlias rejects (on a little-endian
// host: a 4-byte-misaligned base; on big-endian any copy qualifies).
func misaligned(b []byte) []byte {
	raw := make([]byte, len(b)+4)
	for off := 0; off < 4; off++ {
		s := raw[off : off+len(b)]
		if !CanAlias(s) {
			copy(s, b)
			return s
		}
	}
	panic("could not construct a buffer CanAlias rejects")
}

func TestCSRSizeMatchesEncode(t *testing.T) {
	for _, n := range []*NeighborInfos{sampleInfos(), {}} {
		if got, want := CSRSize(n), len(EncodeCSR(n)); got != want {
			t.Fatalf("CSRSize = %d, EncodeCSR len = %d", got, want)
		}
	}
}

func TestEncodeCSRTo(t *testing.T) {
	n := sampleInfos()
	want := EncodeCSR(n)
	dst := make([]byte, 0, CSRSize(n))
	out := EncodeCSRTo(dst, n)
	if len(out) != len(want) {
		t.Fatalf("len %d vs %d", len(out), len(want))
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("EncodeCSRTo reallocated despite sufficient capacity")
	}
}

func TestDecodeCSRViewAliased(t *testing.T) {
	n := sampleInfos()
	b := aligned(EncodeCSR(n))
	got, err := DecodeCSRView(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkInfosMatch(t, n, got)
	if !CanAlias(b) {
		t.Skip("host cannot alias")
	}
	// The view must alias the payload: mutating the payload shows through.
	b[8] ^= 0xFF // first Indptr byte
	if got.Indptr[0] == 0 {
		t.Fatal("aliased view did not observe payload mutation")
	}
}

func TestDecodeCSRViewMisalignedFallsBack(t *testing.T) {
	n := sampleInfos()
	b := misaligned(EncodeCSR(n))
	var a mem.Arena
	got, err := DecodeCSRView(b, &a)
	if err != nil {
		t.Fatal(err)
	}
	checkInfosMatch(t, n, got)
	// The fallback copies: payload mutation must NOT show through.
	b[8] ^= 0xFF
	if got.Indptr[0] != 0 {
		t.Fatal("copy-fallback view aliases the payload")
	}
}

func TestDecodeCSRViewEmpty(t *testing.T) {
	got, err := DecodeCSRView(aligned(EncodeCSR(&NeighborInfos{})), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

func TestDecodeCSRViewCorruption(t *testing.T) {
	n := sampleInfos()
	good := aligned(EncodeCSR(n))
	cases := [][]byte{
		good[:4],               // short header
		good[:len(good)-3],     // truncated arrays
		append(aligned(good), 0, 0, 0, 0), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeCSRView(b, nil); err == nil {
			t.Fatalf("case %d: corrupt payload decoded", i)
		}
	}
	// Non-monotone indptr must fail Validate.
	bad := aligned(EncodeCSR(n))
	copy(bad[8:], []byte{5, 0, 0, 0}) // Indptr[0] = 5
	if _, err := DecodeCSRView(bad, nil); err == nil {
		t.Fatal("invalid CSR passed Validate")
	}
}

func TestDecodeLoLView(t *testing.T) {
	n := sampleInfos()
	var a mem.Arena
	got, err := DecodeLoLView(EncodeLoL(n), &a)
	if err != nil {
		t.Fatal(err)
	}
	checkInfosMatch(t, n, got)

	// Heap fallback (nil arena) works too.
	got2, err := DecodeLoLView(EncodeLoL(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkInfosMatch(t, n, got2)

	// Empty batch.
	if got3, err := DecodeLoLView(EncodeLoL(&NeighborInfos{}), &a); err != nil || got3.NumRows() != 0 {
		t.Fatalf("empty: %v rows=%d", err, got3.NumRows())
	}
}

func TestDecodeLoLViewCorruption(t *testing.T) {
	n := sampleInfos()
	good := EncodeLoL(n)
	for i, b := range [][]byte{
		good[:2],           // short header
		good[:len(good)-2], // truncated last array
		append(append([]byte{}, good...), 7), // trailing byte
	} {
		if _, err := DecodeLoLView(b, nil); err == nil {
			t.Fatalf("case %d: corrupt LoL decoded", i)
		}
	}
	// Mismatched tensor headers within a row.
	bad := append([]byte{}, good...)
	// Row 0 starts at offset 4: rowwdeg(4) + header(16). The second tensor
	// header begins after the first array (2 entries): 4+4+16+8 = 32.
	bad[32]++ // bump shard tensor count
	if _, err := DecodeLoLView(bad, nil); err == nil {
		t.Fatal("mismatched tensor headers decoded")
	}
}

// TestViewMatchesCopyDecodersRandom cross-checks the view decoders against
// the copy decoders on random batches.
func TestViewMatchesCopyDecodersRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a mem.Arena
	for trial := 0; trial < 50; trial++ {
		rows := rng.Intn(8)
		n := &NeighborInfos{Indptr: make([]int32, rows+1)}
		if rows == 0 {
			n.Indptr = []int32{}
		}
		for i := 0; i < rows; i++ {
			deg := rng.Intn(5)
			for d := 0; d < deg; d++ {
				n.Locals = append(n.Locals, rng.Int31n(100))
				n.Shards = append(n.Shards, rng.Int31n(4))
				n.Weights = append(n.Weights, rng.Float32())
				n.WDegs = append(n.WDegs, rng.Float32()*10)
			}
			n.Indptr[i+1] = int32(len(n.Locals))
			n.RowWDeg = append(n.RowWDeg, rng.Float32()*10)
		}
		a.Reset()
		fromCSR, err := DecodeCSRView(aligned(EncodeCSR(n)), &a)
		if err != nil {
			t.Fatal(err)
		}
		checkInfosMatch(t, n, fromCSR)
		fromLoL, err := DecodeLoLView(EncodeLoL(n), &a)
		if err != nil {
			t.Fatal(err)
		}
		checkInfosMatch(t, n, fromLoL)
	}
}

// TestPoisonedBufferNotObservableThroughView: once every reference to a
// pooled payload is released, a correctly-lifecycled consumer has already
// copied what it needs; this test proves the *converse* — a view read after
// release observes poison, never stale-but-plausible data.
func TestPoisonedBufferNotObservableThroughView(t *testing.T) {
	mem.SetPoison(true)
	defer mem.SetPoison(false)
	var p mem.Pool
	n := sampleInfos()
	enc := EncodeCSR(n)
	buf := p.Get(len(enc))
	copy(buf.Bytes(), enc)
	v, err := DecodeCSRView(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !CanAlias(buf.Bytes()) {
		t.Skip("host cannot alias")
	}
	locals0 := v.Locals[0]
	buf.Release()
	if v.Locals[0] == locals0 {
		t.Fatal("view still shows pre-release data after Release with poison on")
	}
}

func BenchmarkDecodeCSR(b *testing.B) {
	enc := aligned(EncodeCSR(benchInfos()))
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCSR(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCSRView(b *testing.B) {
	enc := aligned(EncodeCSR(benchInfos()))
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCSRView(enc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLoL(b *testing.B) {
	enc := EncodeLoL(benchInfos())
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeLoL(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLoLView(b *testing.B) {
	enc := EncodeLoL(benchInfos())
	var a mem.Arena
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		a.Reset()
		if _, err := DecodeLoLView(enc, &a); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInfos builds a 64-row batch with degree 16 — a realistic remote
// fetch for the benchmarks above.
func benchInfos() *NeighborInfos {
	const rows, deg = 64, 16
	n := &NeighborInfos{Indptr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for d := 0; d < deg; d++ {
			n.Locals = append(n.Locals, int32(i*deg+d))
			n.Shards = append(n.Shards, int32(d%4))
			n.Weights = append(n.Weights, float32(d)+0.5)
			n.WDegs = append(n.WDegs, float32(d)+1)
		}
		n.Indptr[i+1] = int32(len(n.Locals))
		n.RowWDeg = append(n.RowWDeg, float32(i)+1)
	}
	return n
}
