// Mutation wire format: the payloads behind MethodApplyMutations and the
// epoch-pinned variant of the neighbor-info fetch (MethodGetNeighborInfosAt).
//
// A mutation batch travels fully *resolved*: the coordinator has already
// translated global node IDs to (shard, local) addresses and chosen a shard
// for every new vertex, so every receiving machine — owners and replicas
// alike — applies the identical ordered op list against identical prior
// state and lands in the identical post state. That is what keeps a
// failed-over replica score-identical to the primary it replaced.

package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mutation op kinds.
const (
	MutAddEdge   uint8 = 0 // add (or stack) a weighted directed edge src -> dst
	MutDelEdge   uint8 = 1 // remove the first src -> dst entry
	MutAddVertex uint8 = 2 // append a new vertex at the pre-assigned address
)

// MutOp is one resolved mutation. For edge ops Src/Dst are both meaningful;
// for MutAddVertex, (SrcShard, SrcLocal) is the address the coordinator
// assigned and Global is the new vertex's global ID.
//
// SrcWDeg and DstWDeg carry the coordinator's resolution of the endpoints'
// weighted out-degrees *before* this op: a mirror that bases neither
// endpoint's shard can still update the source's degree-override chain
// (SrcWDeg ± Weight) and stamp the new neighbor entry's denormalized degree
// column (DstWDeg) by pure arithmetic, without a remote read. For MutDelEdge,
// Weight is the weight of the entry being removed, also pre-resolved.
type MutOp struct {
	Kind     uint8
	SrcShard int32
	SrcLocal int32
	DstShard int32
	DstLocal int32
	Weight   float32
	SrcWDeg  float32
	DstWDeg  float32
	Global   int32
}

// MutationBatch is one atomically-applied group of resolved mutations. The
// coordinator assigns Epoch: applying the batch makes its effects visible to
// every query that pins Epoch or later, and invisible to earlier pins.
type MutationBatch struct {
	Epoch uint64
	Ops   []MutOp
}

const mutOpSize = 1 + 4*8

// MutationBatchSize returns the exact encoded size of b.
func MutationBatchSize(b *MutationBatch) int { return 12 + mutOpSize*len(b.Ops) }

// EncodeMutationBatch serializes b.
func EncodeMutationBatch(b *MutationBatch) []byte {
	out := make([]byte, 0, MutationBatchSize(b))
	out = binary.LittleEndian.AppendUint64(out, b.Epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Ops)))
	for i := range b.Ops {
		op := &b.Ops[i]
		out = append(out, op.Kind)
		out = binary.LittleEndian.AppendUint32(out, uint32(op.SrcShard))
		out = binary.LittleEndian.AppendUint32(out, uint32(op.SrcLocal))
		out = binary.LittleEndian.AppendUint32(out, uint32(op.DstShard))
		out = binary.LittleEndian.AppendUint32(out, uint32(op.DstLocal))
		out = binary.LittleEndian.AppendUint32(out, floatBits(op.Weight))
		out = binary.LittleEndian.AppendUint32(out, floatBits(op.SrcWDeg))
		out = binary.LittleEndian.AppendUint32(out, floatBits(op.DstWDeg))
		out = binary.LittleEndian.AppendUint32(out, uint32(op.Global))
	}
	return out
}

// DecodeMutationBatch parses an EncodeMutationBatch payload. The result owns
// its memory (no aliasing): mutation batches are retained past the handler.
func DecodeMutationBatch(b []byte) (*MutationBatch, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("wire: short mutation batch")
	}
	out := &MutationBatch{Epoch: binary.LittleEndian.Uint64(b)}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if len(b) != mutOpSize*n {
		return nil, fmt.Errorf("wire: mutation batch claims %d ops, %d bytes remain", n, len(b))
	}
	out.Ops = make([]MutOp, n)
	for i := 0; i < n; i++ {
		op := &out.Ops[i]
		op.Kind = b[0]
		if op.Kind > MutAddVertex {
			return nil, fmt.Errorf("wire: mutation op %d has unknown kind %d", i, op.Kind)
		}
		op.SrcShard = int32(binary.LittleEndian.Uint32(b[1:]))
		op.SrcLocal = int32(binary.LittleEndian.Uint32(b[5:]))
		op.DstShard = int32(binary.LittleEndian.Uint32(b[9:]))
		op.DstLocal = int32(binary.LittleEndian.Uint32(b[13:]))
		op.Weight = floatFrom(binary.LittleEndian.Uint32(b[17:]))
		op.SrcWDeg = floatFrom(binary.LittleEndian.Uint32(b[21:]))
		op.DstWDeg = floatFrom(binary.LittleEndian.Uint32(b[25:]))
		op.Global = int32(binary.LittleEndian.Uint32(b[29:]))
		b = b[mutOpSize:]
	}
	return out, nil
}

// EncodeMutationAck serializes a mutation response: the epoch the receiving
// store reached after applying the batch.
func EncodeMutationAck(epoch uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), epoch)
}

// DecodeMutationAck parses an EncodeMutationAck payload.
func DecodeMutationAck(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: mutation ack has %d bytes, want 8", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// --- epoch-pinned ID list (MethodGetNeighborInfosAt requests) ---

// EncodeIDListAt serializes an epoch-pinned fetch request: the pinned epoch
// followed by the EncodeIDList layout. The server answers with the rows'
// state as of that epoch (base CSR plus all deltas with epoch <= pinned).
func EncodeIDListAt(epoch uint64, ids []int32) []byte {
	b := make([]byte, 0, 12+4*len(ids))
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	return putI32s(b, ids)
}

// DecodeIDListAt parses an EncodeIDListAt payload (copying decoder).
func DecodeIDListAt(b []byte) (uint64, []int32, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: short epoch ID list")
	}
	epoch := binary.LittleEndian.Uint64(b)
	ids, err := DecodeIDList(b[8:])
	return epoch, ids, err
}

// DecodeIDListAtView is DecodeIDListAt with the IDs aliased in place when the
// host allows it. The epoch header is 8 bytes, so a 4-aligned payload keeps
// the IDs (at offset 12) 4-aligned too. The returned slice is a view: valid
// only while the payload's buffer is.
func DecodeIDListAtView(b []byte) (uint64, []int32, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: short epoch ID list")
	}
	epoch := binary.LittleEndian.Uint64(b)
	ids, err := DecodeIDListView(b[8:])
	return epoch, ids, err
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }
func floatFrom(u uint32) float32 { return math.Float32frombits(u) }
