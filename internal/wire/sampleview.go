// View-based codecs for the k-hop sampling RPC, extending the zero-copy hot
// path (view.go) to MethodSampleNeighbors: the server encodes straight into a
// pooled buffer, the client aliases the response payload in place (or decodes
// it into an arena), and request locals are aliased on the serving side. Same
// validity rules as the neighbor-fetch views: a decoded view lives only while
// the payload's buffer is retained and the arena is not reset.

package wire

import (
	"encoding/binary"
	"fmt"

	"pprengine/internal/mem"
)

// SampleNSize returns the exact length of EncodeSampleNResponse(r)'s output.
func SampleNSize(r *SampleNResponse) int {
	return 8 + 4*(len(r.Indptr)+len(r.Locals)+len(r.Shards)+len(r.Globals))
}

// EncodeSampleNTo appends EncodeSampleNResponse(r)'s encoding to dst and
// returns the extended slice. With cap(dst) >= SampleNSize(r) (a pooled
// buffer sized by SampleNSize) no allocation happens and the result shares
// dst's backing array.
func EncodeSampleNTo(dst []byte, r *SampleNResponse) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.NumRows()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Locals)))
	dst = putI32s(dst, r.Indptr)
	dst = putI32s(dst, r.Locals)
	dst = putI32s(dst, r.Shards)
	return putI32s(dst, r.Globals)
}

// DecodeSampleNRequestView parses an EncodeSampleNRequest payload, aliasing
// the locals in place when the host allows it (they start at payload offset
// 16, so a 4-aligned payload keeps them aligned). Returned by value so a
// handler's request never escapes to the heap; the Locals slice is a view
// into b. Odd inputs fall back to the copying decoder, which owns the exact
// error messages.
func DecodeSampleNRequestView(b []byte) (SampleNRequest, error) {
	if len(b) >= 16 {
		n := int(binary.LittleEndian.Uint32(b[12:]))
		if len(b)-16 == 4*n && CanAlias(b[16:]) {
			locals, _ := aliasI32s(b[16:], n)
			return SampleNRequest{
				Seed:   int64(binary.LittleEndian.Uint64(b)),
				Fanout: int32(binary.LittleEndian.Uint32(b[8:])),
				Locals: locals,
			}, nil
		}
	}
	r, err := DecodeSampleNRequest(b)
	if err != nil {
		return SampleNRequest{}, err
	}
	return *r, nil
}

// DecodeSampleNResponseView parses an EncodeSampleNResponse payload into r
// without copying when possible: on a little-endian host with an aligned
// payload the arrays alias b directly (every array starts 4-aligned after
// the 8-byte header); otherwise they are decoded into a, or the heap when a
// is nil. Decoding into a caller-owned struct keeps the steady state
// allocation-free. r is a view — valid only while b's buffer is retained and
// a is not reset.
func DecodeSampleNResponseView(b []byte, a *mem.Arena, r *SampleNResponse) error {
	if len(b) < 8 {
		return fmt.Errorf("wire: short sampleN response")
	}
	rows := int(binary.LittleEndian.Uint32(b))
	entries := int(binary.LittleEndian.Uint32(b[4:]))
	rest := b[8:]
	indptrLen := 0
	if rows > 0 {
		indptrLen = rows + 1
	}
	need := 4 * (indptrLen + 3*entries)
	if len(rest) != need {
		// Malformed sizes: the copying decoder owns the exact errors.
		dec, err := DecodeSampleNResponse(b)
		if err != nil {
			return err
		}
		*r = *dec
		return nil
	}
	if CanAlias(b) {
		if rows > 0 {
			r.Indptr, rest = aliasI32s(rest, indptrLen)
		} else {
			r.Indptr = []int32{}
		}
		r.Locals, rest = aliasI32s(rest, entries)
		r.Shards, rest = aliasI32s(rest, entries)
		r.Globals, _ = aliasI32s(rest, entries)
		return nil
	}
	if rows > 0 {
		r.Indptr = arenaI32(a, indptrLen)
		rest = copyI32s(r.Indptr, rest)
	} else {
		r.Indptr = []int32{}
	}
	r.Locals = arenaI32(a, entries)
	rest = copyI32s(r.Locals, rest)
	r.Shards = arenaI32(a, entries)
	rest = copyI32s(r.Shards, rest)
	r.Globals = arenaI32(a, entries)
	copyI32s(r.Globals, rest)
	return nil
}
