package wire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleInfos() *NeighborInfos {
	return &NeighborInfos{
		Indptr:  []int32{0, 2, 2, 5},
		Locals:  []int32{1, 2, 3, 4, 5},
		Shards:  []int32{0, 1, 0, 0, 1},
		Weights: []float32{0.5, 1.5, 2.5, 3.5, 4.5},
		WDegs:   []float32{1, 2, 3, 4, 5},
		RowWDeg: []float32{2.0, 0, 10.5},
	}
}

func assertEqualInfos(t *testing.T, a, b *NeighborInfos) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	if !reflect.DeepEqual(a.Indptr, b.Indptr) {
		t.Fatalf("indptr %v vs %v", a.Indptr, b.Indptr)
	}
	if !reflect.DeepEqual(a.Locals, b.Locals) || !reflect.DeepEqual(a.Shards, b.Shards) {
		t.Fatal("ids differ")
	}
	if !reflect.DeepEqual(a.Weights, b.Weights) || !reflect.DeepEqual(a.WDegs, b.WDegs) {
		t.Fatal("weights differ")
	}
	if !reflect.DeepEqual(a.RowWDeg, b.RowWDeg) {
		t.Fatalf("row wdeg %v vs %v", a.RowWDeg, b.RowWDeg)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	n := sampleInfos()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCSR(EncodeCSR(n))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInfos(t, n, got)
}

func TestLoLRoundTrip(t *testing.T) {
	n := sampleInfos()
	got, err := DecodeLoL(EncodeLoL(n))
	if err != nil {
		t.Fatal(err)
	}
	assertEqualInfos(t, n, got)
}

func TestCompressionActuallySmaller(t *testing.T) {
	// A realistic batch: many rows with small degrees — CSR must be
	// substantially smaller than list-of-lists.
	rng := rand.New(rand.NewSource(1))
	n := &NeighborInfos{Indptr: []int32{0}}
	for i := 0; i < 200; i++ {
		deg := rng.Intn(8) + 1
		for j := 0; j < deg; j++ {
			n.Locals = append(n.Locals, int32(rng.Intn(1000)))
			n.Shards = append(n.Shards, int32(rng.Intn(4)))
			n.Weights = append(n.Weights, rng.Float32())
			n.WDegs = append(n.WDegs, rng.Float32()*10)
		}
		n.Indptr = append(n.Indptr, int32(len(n.Locals)))
		n.RowWDeg = append(n.RowWDeg, rng.Float32()*10)
	}
	csr := len(EncodeCSR(n))
	lol := len(EncodeLoL(n))
	if csr >= lol {
		t.Fatalf("CSR (%d bytes) should be smaller than LoL (%d bytes)", csr, lol)
	}
	t.Logf("csr=%dB lol=%dB ratio=%.2f", csr, lol, float64(lol)/float64(csr))
}

func TestEmptyBatch(t *testing.T) {
	n := &NeighborInfos{Indptr: []int32{}, RowWDeg: []float32{}}
	got, err := DecodeCSR(EncodeCSR(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	got, err = DecodeLoL(EncodeLoL(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("LoL rows = %d", got.NumRows())
	}
}

func TestRowAccessor(t *testing.T) {
	n := sampleInfos()
	locals, shards, weights, wdegs := n.Row(2)
	if len(locals) != 3 || locals[0] != 3 || shards[2] != 1 ||
		weights[1] != 3.5 || wdegs[0] != 3 {
		t.Fatalf("Row(2) wrong: %v %v %v %v", locals, shards, weights, wdegs)
	}
	locals, _, _, _ = n.Row(1)
	if len(locals) != 0 {
		t.Fatal("Row(1) should be empty")
	}
}

func TestDecodeCorruption(t *testing.T) {
	n := sampleInfos()
	csr := EncodeCSR(n)
	if _, err := DecodeCSR(csr[:len(csr)-3]); err == nil {
		t.Fatal("truncated CSR should fail")
	}
	if _, err := DecodeCSR(append(csr, 0)); err == nil {
		t.Fatal("padded CSR should fail")
	}
	lol := EncodeLoL(n)
	if _, err := DecodeLoL(lol[:len(lol)-1]); err == nil {
		t.Fatal("truncated LoL should fail")
	}
	if _, err := DecodeCSR(nil); err == nil {
		t.Fatal("nil CSR should fail")
	}
}

func TestIDListRoundTrip(t *testing.T) {
	ids := []int32{5, 0, -1, 1 << 30}
	got, err := DecodeIDList(EncodeIDList(ids))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, got) {
		t.Fatalf("%v vs %v", ids, got)
	}
	empty, err := DecodeIDList(EncodeIDList(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty list: %v %v", empty, err)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	req := &SampleRequest{Seed: -42, Locals: []int32{1, 2, 3}}
	got, err := DecodeSampleRequest(EncodeSampleRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != -42 || !reflect.DeepEqual(got.Locals, req.Locals) {
		t.Fatalf("%+v", got)
	}
	resp := &SampleResponse{
		Locals:  []int32{7, -1},
		Shards:  []int32{1, 0},
		Globals: []int32{100, -1},
	}
	got2, err := DecodeSampleResponse(EncodeSampleResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, resp) {
		t.Fatalf("%+v vs %+v", got2, resp)
	}
}

func TestFeatureRoundTrip(t *testing.T) {
	feats := []float32{1, 2, 3, 4, 5, 6}
	dim, got, err := DecodeFeatureResponse(EncodeFeatureResponse(3, feats))
	if err != nil {
		t.Fatal(err)
	}
	if dim != 3 || !reflect.DeepEqual(got, feats) {
		t.Fatalf("dim=%d got=%v", dim, got)
	}
}

func TestF32sRoundTrip(t *testing.T) {
	v := []float32{0, -1.5, 3.25}
	got, err := DecodeF32s(EncodeF32s(v))
	if err != nil || !reflect.DeepEqual(got, v) {
		t.Fatalf("%v %v", got, err)
	}
}

// Property: both encodings round-trip arbitrary random batches and agree
// with each other.
func TestQuickEncodingsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(20)
		n := &NeighborInfos{Indptr: make([]int32, 1, rows+1)}
		for i := 0; i < rows; i++ {
			deg := rng.Intn(6)
			for j := 0; j < deg; j++ {
				n.Locals = append(n.Locals, int32(rng.Intn(1<<20)))
				n.Shards = append(n.Shards, int32(rng.Intn(16)))
				n.Weights = append(n.Weights, rng.Float32())
				n.WDegs = append(n.WDegs, rng.Float32()*100)
			}
			n.Indptr = append(n.Indptr, int32(len(n.Locals)))
			n.RowWDeg = append(n.RowWDeg, rng.Float32()*100)
		}
		if rows == 0 {
			n.Indptr = []int32{}
			n.RowWDeg = []float32{}
		}
		a, err := DecodeCSR(EncodeCSR(n))
		if err != nil {
			return false
		}
		b, err := DecodeLoL(EncodeLoL(n))
		if err != nil {
			return false
		}
		if a.NumRows() != b.NumRows() || a.NumRows() != rows {
			return false
		}
		eqI := func(x, y []int32) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		eqF := func(x, y []float32) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		for i := 0; i < rows; i++ {
			al, as, aw, ad := a.Row(i)
			bl, bs, bw, bd := b.Row(i)
			// Element-wise compare: nil vs empty slices are equivalent here.
			if !eqI(al, bl) || !eqI(as, bs) || !eqF(aw, bw) || !eqF(ad, bd) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleNRoundTrip(t *testing.T) {
	req := &SampleNRequest{Seed: 42, Fanout: 5, Locals: []int32{1, 2, 3}}
	got, err := DecodeSampleNRequest(EncodeSampleNRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Fanout != 5 || !reflect.DeepEqual(got.Locals, req.Locals) {
		t.Fatalf("%+v", got)
	}
	resp := &SampleNResponse{
		Indptr:  []int32{0, 2, 2, 3},
		Locals:  []int32{1, 2, 3},
		Shards:  []int32{0, 1, 0},
		Globals: []int32{10, 20, 30},
	}
	got2, err := DecodeSampleNResponse(EncodeSampleNResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumRows() != 3 {
		t.Fatalf("rows = %d", got2.NumRows())
	}
	l, s, g := got2.Row(0)
	if len(l) != 2 || l[1] != 2 || s[1] != 1 || g[1] != 20 {
		t.Fatalf("row 0: %v %v %v", l, s, g)
	}
	if l, _, _ := got2.Row(1); len(l) != 0 {
		t.Fatal("row 1 should be empty")
	}
	// Corruption.
	if _, err := DecodeSampleNResponse(EncodeSampleNResponse(resp)[:5]); err == nil {
		t.Fatal("truncated response should fail")
	}
	if _, err := DecodeSampleNRequest([]byte{1, 2}); err == nil {
		t.Fatal("short request should fail")
	}
	// Empty response round trip.
	empty, err := DecodeSampleNResponse(EncodeSampleNResponse(&SampleNResponse{Indptr: []int32{}}))
	if err != nil || empty.NumRows() != 0 {
		t.Fatalf("empty: %v %v", empty, err)
	}
}

func TestShardStatsRoundTrip(t *testing.T) {
	s := &ShardStats{
		ShardID: 3, NumShards: 8, NumCore: 1000, NumEntries: 50000,
		HaloNodes: 200, MemoryBytes: 1 << 20, RemoteFrac: 0.25, AvgOutDegree: 50.5,
	}
	got, err := DecodeShardStats(EncodeShardStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *s {
		t.Fatalf("%+v vs %+v", got, s)
	}
	if _, err := DecodeShardStats([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload should fail")
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	r := &QueryRequest{SourceLocal: 42, TopK: 10, Alpha: 0.462, Eps: 1e-6, TimeoutMs: 1500}
	b := EncodeQueryRequest(r)
	if len(b) != 28 {
		t.Fatalf("encoded length %d, want 28", len(b))
	}
	got, err := DecodeQueryRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
}

func TestQueryRequestLegacyDecode(t *testing.T) {
	// Pre-deadline clients send 24 bytes (no TimeoutMs); decode must accept
	// them and report no client deadline.
	r := &QueryRequest{SourceLocal: 7, TopK: 3, Alpha: 0.2, Eps: 1e-4, TimeoutMs: 9999}
	legacy := EncodeQueryRequest(r)[:24]
	got, err := DecodeQueryRequest(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeoutMs != 0 {
		t.Fatalf("legacy TimeoutMs = %d, want 0", got.TimeoutMs)
	}
	if got.SourceLocal != r.SourceLocal || got.TopK != r.TopK || got.Alpha != r.Alpha || got.Eps != r.Eps {
		t.Fatalf("legacy decode: %+v", got)
	}
	if _, err := DecodeQueryRequest(legacy[:20]); err == nil {
		t.Fatal("expected error for truncated request")
	}
}

func TestQueryRequestTenantRoundTrip(t *testing.T) {
	r := &QueryRequest{SourceLocal: 42, TopK: 10, Alpha: 0.462, Eps: 1e-6, TimeoutMs: 1500,
		Priority: -3, Tenant: "team-α"}
	b := EncodeQueryRequest(r)
	if want := 33 + len(r.Tenant); len(b) != want {
		t.Fatalf("encoded length %d, want %d", len(b), want)
	}
	got, err := DecodeQueryRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip: %+v vs %+v", got, r)
	}
	// Priority alone (empty tenant) must still use the extended layout.
	p := &QueryRequest{SourceLocal: 1, Priority: 5}
	got, err = DecodeQueryRequest(EncodeQueryRequest(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Priority != 5 || got.Tenant != "" {
		t.Fatalf("priority-only decode: %+v", got)
	}
	// Tenant-length/body mismatches must be rejected, not sliced blindly.
	if _, err := DecodeQueryRequest(b[:len(b)-1]); err == nil {
		t.Fatal("expected error for truncated tenant")
	}
	if _, err := DecodeQueryRequest(append(append([]byte{}, b...), 'x')); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
	// Over-long tenants are truncated, not corrupted.
	long := &QueryRequest{Tenant: strings.Repeat("t", 300)}
	got, err = DecodeQueryRequest(EncodeQueryRequest(long))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tenant) != 255 {
		t.Fatalf("truncated tenant length %d, want 255", len(got.Tenant))
	}
}

func TestQueryRequestDefaultIdentityStaysLegacy(t *testing.T) {
	// The zero admission identity must keep the 28-byte pre-admission layout
	// so default-config clients interoperate with older servers.
	r := &QueryRequest{SourceLocal: 9, TopK: 5, Alpha: 0.3, Eps: 1e-5, TimeoutMs: 100}
	if b := EncodeQueryRequest(r); len(b) != 28 {
		t.Fatalf("encoded length %d, want legacy 28", len(b))
	}
}
