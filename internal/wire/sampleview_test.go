package wire

import (
	"bytes"
	"reflect"
	"testing"

	"pprengine/internal/mem"
)

func sampleResp() *SampleNResponse {
	return &SampleNResponse{
		Indptr:  []int32{0, 2, 2, 5},
		Locals:  []int32{1, 2, 3, 4, 5},
		Shards:  []int32{0, 1, 0, 2, 1},
		Globals: []int32{10, 20, 30, 40, 50},
	}
}

func TestEncodeSampleNToMatchesEncode(t *testing.T) {
	r := sampleResp()
	want := EncodeSampleNResponse(r)
	if SampleNSize(r) != len(want) {
		t.Fatalf("SampleNSize = %d, encoded %d", SampleNSize(r), len(want))
	}
	buf := make([]byte, 0, SampleNSize(r))
	got := EncodeSampleNTo(buf, r)
	if !bytes.Equal(got, want) {
		t.Fatal("EncodeSampleNTo produced different bytes")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("sized EncodeSampleNTo reallocated")
	}

	empty := &SampleNResponse{Indptr: []int32{}}
	if !bytes.Equal(EncodeSampleNTo(nil, empty), EncodeSampleNResponse(empty)) {
		t.Fatal("empty response bytes differ")
	}
}

func TestDecodeSampleNResponseViewAliases(t *testing.T) {
	want := sampleResp()
	enc := aligned(EncodeSampleNResponse(want))
	if !CanAlias(enc) {
		t.Skip("host cannot alias")
	}
	var got SampleNResponse
	if err := DecodeSampleNResponseView(enc, nil, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("view decode mismatch: %+v vs %+v", got, want)
	}
	// The arrays must be views into enc, not copies.
	enc[8] = 9 // first Indptr entry
	if got.Indptr[0] != 9 {
		t.Fatal("Indptr does not alias the payload")
	}
}

func TestDecodeSampleNResponseViewArenaFallback(t *testing.T) {
	want := sampleResp()
	enc := misaligned(EncodeSampleNResponse(want))
	var a mem.Arena
	var got SampleNResponse
	if err := DecodeSampleNResponseView(enc, &a, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("arena decode mismatch: %+v vs %+v", got, want)
	}
	// Copied, not aliased: mutating the payload must not leak through.
	enc[8]++
	if got.Indptr[0] != 0 {
		t.Fatal("arena decode aliased the payload")
	}
}

func TestDecodeSampleNResponseViewEmptyAndMalformed(t *testing.T) {
	empty := &SampleNResponse{Indptr: []int32{}}
	var got SampleNResponse
	if err := DecodeSampleNResponseView(aligned(EncodeSampleNResponse(empty)), nil, &got); err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	enc := EncodeSampleNResponse(sampleResp())
	for _, bad := range [][]byte{nil, enc[:5], enc[:len(enc)-3]} {
		if err := DecodeSampleNResponseView(aligned(bad), nil, &got); err == nil {
			t.Fatalf("malformed payload (len %d) decoded", len(bad))
		}
	}
}

func TestDecodeSampleNRequestView(t *testing.T) {
	want := &SampleNRequest{Seed: -42, Fanout: 5, Locals: []int32{7, 8, 9}}
	enc := aligned(EncodeSampleNRequest(want))
	got, err := DecodeSampleNRequestView(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed || got.Fanout != want.Fanout || !reflect.DeepEqual(got.Locals, want.Locals) {
		t.Fatalf("%+v", got)
	}
	if CanAlias(enc[16:]) {
		enc[16] = 99
		if got.Locals[0] != 99 {
			t.Fatal("request locals do not alias the payload")
		}
	}
	// The misaligned fall-back still decodes correctly (by copying).
	got2, err := DecodeSampleNRequestView(misaligned(EncodeSampleNRequest(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Locals, want.Locals) {
		t.Fatalf("fallback locals %v", got2.Locals)
	}
	if _, err := DecodeSampleNRequestView([]byte{1, 2}); err == nil {
		t.Fatal("short request should fail")
	}
}

func TestDecodeSampleNResponseViewAllocBudget(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	enc := aligned(EncodeSampleNResponse(sampleResp()))
	if !CanAlias(enc) {
		t.Skip("host cannot alias")
	}
	var resp SampleNResponse
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeSampleNResponseView(enc, nil, &resp); err != nil {
			t.Fatal(err)
		}
	})
	// Decoding into a caller-owned struct must be allocation-free: the whole
	// point of the sampling view path.
	if allocs > 0 {
		t.Fatalf("DecodeSampleNResponseView allocates %.1f objects per batch, budget 0", allocs)
	}
}
