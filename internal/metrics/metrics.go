// Package metrics provides the phase-timing instrumentation behind the
// paper's runtime-breakdown experiments (Table 3, Figure 6): cumulative
// wall-time per phase (local fetch, remote fetch, push, pop), plus
// throughput accounting.
//
// Timers are sharded per goroutine usage pattern: each worker owns a
// Breakdown and breakdowns are merged at the end, so timing adds no
// synchronization to the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Phase labels match the paper's breakdown rows.
type Phase int

const (
	PhaseLocalFetch Phase = iota
	PhaseRemoteFetch
	PhasePush
	PhasePop
	numPhases
)

// String returns the phase's display name.
func (p Phase) String() string {
	switch p {
	case PhaseLocalFetch:
		return "LocalFetch"
	case PhaseRemoteFetch:
		return "RemoteFetch"
	case PhasePush:
		return "Push"
	case PhasePop:
		return "Pop"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Breakdown accumulates time per phase. A nil *Breakdown is valid and all
// methods are no-ops on it, so instrumentation can be disabled by passing
// nil.
type Breakdown struct {
	durs   [numPhases]time.Duration
	counts [numPhases]int64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown { return &Breakdown{} }

// Add records d under phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if b == nil {
		return
	}
	b.durs[p] += d
	b.counts[p]++
}

// Time runs f and charges its duration to p.
func (b *Breakdown) Time(p Phase, f func()) {
	if b == nil {
		f()
		return
	}
	start := time.Now()
	f()
	b.durs[p] += time.Since(start)
	b.counts[p]++
}

// Start begins a manual measurement; call the returned stop function to
// charge the elapsed time to p.
func (b *Breakdown) Start(p Phase) (stop func()) {
	if b == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		b.durs[p] += time.Since(start)
		b.counts[p]++
	}
}

// Get returns the accumulated duration for p.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	return b.durs[p]
}

// Count returns the number of samples recorded for p.
func (b *Breakdown) Count(p Phase) int64 {
	if b == nil {
		return 0
	}
	return b.counts[p]
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	var t time.Duration
	for _, d := range b.durs {
		t += d
	}
	return t
}

// Merge adds other's samples into b.
func (b *Breakdown) Merge(other *Breakdown) {
	if b == nil || other == nil {
		return
	}
	for i := range b.durs {
		b.durs[i] += other.durs[i]
		b.counts[i] += other.counts[i]
	}
}

// Reset zeroes all accumulators.
func (b *Breakdown) Reset() {
	if b == nil {
		return
	}
	for i := range b.durs {
		b.durs[i] = 0
		b.counts[i] = 0
	}
}

// String renders the breakdown as "LocalFetch=12ms RemoteFetch=40ms ...".
func (b *Breakdown) String() string {
	if b == nil {
		return "<nil>"
	}
	parts := make([]string, 0, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		parts = append(parts, fmt.Sprintf("%s=%v", p, b.durs[p].Round(time.Microsecond)))
	}
	return strings.Join(parts, " ")
}

// Throughput converts a query count and wall time into queries/second.
func Throughput(queries int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(queries) / wall.Seconds()
}

// Counter is a simple atomic event counter usable from many goroutines.
type Counter struct{ v atomic.Int64 }

// Inc adds n.
func (c *Counter) Inc(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-observed value (e.g. the most recent probe
// latency), usable from many goroutines.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (for up-and-down quantities like resident
// cache bytes).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the stored value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Engine-wide query-lifecycle counters. The rpc layer and the SSPPR drivers
// increment these; serving binaries read them for health reporting.
var (
	// QueryTimeouts counts queries aborted by a deadline or cancellation.
	QueryTimeouts Counter
	// RPCRetries counts backoff rounds taken by rpc.Client.CallRetry.
	RPCRetries Counter
	// CacheHits counts remote rows served from the dynamic neighbor-row
	// cache instead of RPC.
	CacheHits Counter
	// CacheMisses counts rows that started a fetch (single-flight leaders).
	CacheMisses Counter
	// CacheEvictions counts rows evicted to stay under the byte budget.
	CacheEvictions Counter
	// CacheCoalesced counts rows that piggybacked on another query's
	// in-flight fetch instead of issuing their own RPC.
	CacheCoalesced Counter
	// AggFlushes counts merged wire requests sent by the cross-query fetch
	// aggregator (internal/agg).
	AggFlushes Counter
	// AggRows counts neighbor rows carried by aggregated flushes.
	AggRows Counter
	// AggShared counts fetches whose flush also carried another query's
	// fetch — the round trips actually amortized by aggregation.
	AggShared Counter
	// Failovers counts routed requests that were re-issued to a replica
	// after the preferred endpoint failed (internal/ha).
	Failovers Counter
	// BreakerOpens / BreakerCloses count peer circuit-breaker transitions
	// into the open and (fully) closed states.
	BreakerOpens  Counter
	BreakerCloses Counter
	// ProbesSent / ProbeFailures count health-check pings issued by the
	// per-machine health trackers and the pings that failed.
	ProbesSent    Counter
	ProbeFailures Counter
	// ProbeLatencyNs holds the most recent successful probe round trip in
	// nanoseconds, across all trackers of the process.
	ProbeLatencyNs Gauge
	// CacheBytes / CacheEntries track the resident size of the process's
	// dynamic neighbor-row caches (internal/cache updates them on insert and
	// eviction), so a scrape sees live occupancy without walking the stripes.
	CacheBytes   Gauge
	CacheEntries Gauge
	// WireRequests / WireBytesSent / WireBytesReceived count client-side RPC
	// traffic across every rpc.Client of the process — the wire-level totals
	// the /metrics endpoint exposes.
	WireRequests      Counter
	WireBytesSent     Counter
	WireBytesReceived Counter
	// PoolHits / PoolMisses count frame-buffer checkouts served by
	// recycling a released buffer vs. by a fresh allocation (internal/mem).
	PoolHits   Counter
	PoolMisses Counter
	// PoolLiveBytes tracks bytes currently checked out of the frame-buffer
	// pools — buffers handed to handlers or futures and not yet released.
	PoolLiveBytes Gauge
	// ArenaSlabBytes counts bytes committed to decode-arena slabs. Slabs are
	// reused across epochs, so this grows only when an arena outgrows its
	// slab — a hot steady state stops moving it entirely.
	ArenaSlabBytes Counter
	// PmapGrows counts flat probe-table stripe rehashes in the affinity
	// engine (internal/pmap Flat/FlatSet). Bumped once per grow, never per
	// map op; a steady state with fitting capacity hints stops moving it.
	PmapGrows Counter
	// PmapOwnedUpdates counts neighbor updates applied through an
	// owner-compute push (the affinity merge phase and pushOwned's
	// ApplyOwned), i.e. residual-map mutations that ran without any lock.
	PmapOwnedUpdates Counter
	// PmapAffinityRounds counts push rounds executed by the shard-affinity
	// worker pools (Config.Affinity).
	PmapAffinityRounds Counter
	// FeatCacheHits / FeatCacheMisses / FeatCacheCoalesced count feature
	// rows served from the machine-wide feature cache, rows that started a
	// fetch (single-flight leaders), and rows that piggybacked on another
	// inference's in-flight fetch.
	FeatCacheHits      Counter
	FeatCacheMisses    Counter
	FeatCacheCoalesced Counter
	// FeatCacheEvictions counts feature rows evicted under the byte budget;
	// FeatCacheRejected counts fetched rows the mass-based admission policy
	// declined to cache (their PPR mass was below the threshold).
	FeatCacheEvictions Counter
	FeatCacheRejected  Counter
	// FeatCacheBytes / FeatCacheEntries track the resident size of the
	// process's feature-row caches.
	FeatCacheBytes   Gauge
	FeatCacheEntries Gauge
	// FeatAggFlushes / FeatAggRows / FeatAggShared mirror the neighbor-fetch
	// aggregation counters for the feature-fetch aggregator.
	FeatAggFlushes Counter
	FeatAggRows    Counter
	FeatAggShared  Counter
	// InferServed / InferFailures count end-to-end inference requests
	// (SSPPR → ConvertBatch → model forward) served and failed.
	InferServed   Counter
	InferFailures Counter
	// QueriesAdmitted counts queries granted an execution slot by the
	// admission controller (internal/admit); the shed counters break
	// rejections down by reason: empty tenant token bucket (quota), remaining
	// deadline budget below the observed p50 service time (deadline), and a
	// saturated wait queue (queue).
	QueriesAdmitted     Counter
	QueriesShedQuota    Counter
	QueriesShedDeadline Counter
	QueriesShedQueue    Counter
	// AdmitQueueDepth / AdmitInFlight track the admission controller's wait
	// queue and in-flight query occupancy.
	AdmitQueueDepth Gauge
	AdmitInFlight   Gauge
	// Hedges counts duplicate remote-fetch attempts issued by the hedger
	// after the primary outlived the hedge delay; HedgeWins counts the
	// hedged attempts that produced the winning response. A hedge win is
	// never also counted as a failover.
	Hedges    Counter
	HedgeWins Counter
	// MutationBatches / MutationOps count resolved mutation batches applied
	// to a delta store and the individual ops inside them; the breakdown
	// counters split ops by kind.
	MutationBatches  Counter
	MutationOps      Counter
	EdgesInserted    Counter
	EdgesDeleted     Counter
	VerticesAppended Counter
	// MutationMirrorFailures counts mutation broadcasts that failed to reach
	// a machine (the machine applies nothing and serves stale epochs until it
	// recovers; queries fail over to its replicas).
	MutationMirrorFailures Counter
	// Compactions counts delta-store compaction passes; EpochsRetired counts
	// epochs folded below the compaction boundary and no longer pinnable.
	Compactions   Counter
	EpochsRetired Counter
	// IncrementalHits counts incremental SSPPR queries answered straight from
	// the cached residual state (mutation frontier missed the query's
	// footprint); IncrementalRepushes counts queries answered by re-pushing
	// from the mutated frontier; IncrementalFullRuns counts fallbacks to a
	// fresh full push (cold cache, retired epoch, or exact mode overlap).
	IncrementalHits     Counter
	IncrementalRepushes Counter
	IncrementalFullRuns Counter
)

// AtomicBreakdown is a Breakdown safe for concurrent merges: a long-lived
// accumulator (e.g. a query service summing every served query's phase
// timings) that scrape-time readers can sample without locks.
type AtomicBreakdown struct {
	durs   [numPhases]atomic.Int64 // nanoseconds
	counts [numPhases]atomic.Int64
}

// Merge adds b's samples into a. Nil receivers and arguments are no-ops.
func (a *AtomicBreakdown) Merge(b *Breakdown) {
	if a == nil || b == nil {
		return
	}
	for i := range b.durs {
		a.durs[i].Add(int64(b.durs[i]))
		a.counts[i].Add(b.counts[i])
	}
}

// Get returns the accumulated duration for p.
func (a *AtomicBreakdown) Get(p Phase) time.Duration {
	if a == nil {
		return 0
	}
	return time.Duration(a.durs[p].Load())
}

// Count returns the number of samples recorded for p.
func (a *AtomicBreakdown) Count(p Phase) int64 {
	if a == nil {
		return 0
	}
	return a.counts[p].Load()
}

// Phases lists every phase label, for adapters that register one metric
// series per phase.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Summary holds repeated-run statistics (the paper reports an average of 10
// runs after 4 warm-ups).
type Summary struct {
	Mean, Min, Max, Stddev float64
	Runs                   int
}

// Summarize computes run statistics over samples.
func Summarize(samples []float64) Summary {
	s := Summary{Runs: len(samples)}
	if len(samples) == 0 {
		return s
	}
	s.Min = samples[0]
	s.Max = samples[0]
	sum := 0.0
	for _, x := range samples {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(samples))
	var ss float64
	for _, x := range samples {
		d := x - s.Mean
		ss += d * d
	}
	if len(samples) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return s
}

// Median returns the median of samples (not modifying the input).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	c := append([]float64(nil), samples...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
