package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhasePush, 10*time.Millisecond)
	b.Add(PhasePush, 5*time.Millisecond)
	b.Add(PhaseLocalFetch, 2*time.Millisecond)
	if b.Get(PhasePush) != 15*time.Millisecond {
		t.Fatalf("push = %v", b.Get(PhasePush))
	}
	if b.Count(PhasePush) != 2 || b.Count(PhaseLocalFetch) != 1 {
		t.Fatal("counts wrong")
	}
	if b.Total() != 17*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
	b.Reset()
	if b.Total() != 0 || b.Count(PhasePush) != 0 {
		t.Fatal("reset failed")
	}
}

func TestBreakdownTimeAndStart(t *testing.T) {
	b := NewBreakdown()
	b.Time(PhasePop, func() { time.Sleep(2 * time.Millisecond) })
	if b.Get(PhasePop) < 2*time.Millisecond {
		t.Fatalf("Time undercounted: %v", b.Get(PhasePop))
	}
	stop := b.Start(PhaseRemoteFetch)
	time.Sleep(time.Millisecond)
	stop()
	if b.Get(PhaseRemoteFetch) < time.Millisecond {
		t.Fatal("Start/stop undercounted")
	}
}

func TestNilBreakdownIsNoop(t *testing.T) {
	var b *Breakdown
	b.Add(PhasePush, time.Second)
	b.Time(PhasePop, func() {})
	b.Start(PhasePop)()
	b.Merge(NewBreakdown())
	b.Reset()
	if b.Get(PhasePush) != 0 || b.Total() != 0 || b.Count(PhasePop) != 0 {
		t.Fatal("nil breakdown should read zero")
	}
	if b.String() != "<nil>" {
		t.Fatal("nil String")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add(PhasePush, time.Millisecond)
	b.Add(PhasePush, 2*time.Millisecond)
	b.Add(PhasePop, time.Millisecond)
	a.Merge(b)
	if a.Get(PhasePush) != 3*time.Millisecond || a.Get(PhasePop) != time.Millisecond {
		t.Fatalf("merge wrong: %v", a)
	}
	if a.Count(PhasePush) != 2 {
		t.Fatal("merge counts wrong")
	}
}

func TestString(t *testing.T) {
	b := NewBreakdown()
	b.Add(PhaseLocalFetch, time.Millisecond)
	s := b.String()
	if !strings.Contains(s, "LocalFetch=1ms") || !strings.Contains(s, "Push=0s") {
		t.Fatalf("String = %q", s)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseLocalFetch: "LocalFetch", PhaseRemoteFetch: "RemoteFetch",
		PhasePush: "Push", PhasePop: "Pop",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
	if Phase(99).String() != "Phase(99)" {
		t.Fatal("unknown phase name")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(128, 2*time.Second); got != 64 {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(10, 0) != 0 {
		t.Fatal("zero wall time should give 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 800 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Runs != 4 {
		t.Fatalf("%+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if z := Summarize(nil); z.Runs != 0 || z.Mean != 0 {
		t.Fatalf("%+v", z)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Stddev != 0 {
		t.Fatalf("%+v", one)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	in := []float64{9, 1}
	Median(in)
	if in[0] != 9 {
		t.Fatal("Median must not mutate input")
	}
}
