package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// AggRow is one pass of the cross-query fetch-aggregation benchmark.
type AggRow struct {
	Pass          string
	RequestsSent  int64 // wire requests during the pass (client counters)
	BytesSent     int64 // request bytes on the wire during the pass
	RPCRequests   int64 // per-query accounting rollup (must match the wire)
	RequestBytes  int64
	Flushes       int64 // merged requests sent by the aggregators
	SharedFetches int64 // fetches whose flush carried another query's fetch
	Throughput    float64
}

// AggBench measures cross-query RPC fetch aggregation on a concurrent query
// stream: twitter-sim on 4 machines with 8 compute processes each, so every
// machine runs 8 queries at a time. The same batch runs twice on identical
// shards — aggregation off (the seed behavior), then on — and the report
// diffs wire traffic. A link latency makes flushes overlap deterministically
// enough for concurrent fetches to coalesce; correctness is asserted by
// comparing every query's full score map between the two clusters (the
// aggregator only changes transport, so scores must agree to float64
// round-off, checked at 1e-9).
func AggBench(p Params, window time.Duration, maxRows int) (Report, []AggRow, error) {
	if window <= 0 {
		window = 10 * time.Millisecond
	}
	const machines = 4
	const procs = 16
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5 // lighter pushes keep the workload fetch-bound, the regime aggregation targets
	r := Report{Title: fmt.Sprintf("Cross-query fetch aggregation on twitter-sim (%d machines x %d procs, window=%v)", machines, procs, window)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-10s %9s %12s %9s %12s %9s %8s %11s",
		"Pass", "RPCs", "ReqBytes", "QryRPCs", "QryBytes", "Flushes", "Shared", "Queries/s"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)
	// The link latency is what makes aggregation visible at this scale: while
	// a flush's round trip is on the wire, the machine's other procs enqueue
	// behind it and merge into the next flush.
	lat := rpc.LatencyModel{Base: 5 * time.Millisecond}

	var rows []AggRow
	var qs [][]int32
	var plainScores []map[int32]float64
	for _, pass := range []string{"off", "agg"} {
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs, Latency: lat}
		if pass == "agg" {
			opts.AggWindow = window
			opts.AggRows = maxRows
		}
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		if qs == nil {
			qs = c.EvenQuerySet(minInt(p.Queries, procs*2), 97)
		}
		before := c.NetStats()
		res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		after := c.NetStats()
		st := c.AggStats()
		row := AggRow{
			Pass:          pass,
			RequestsSent:  after.RequestsSent - before.RequestsSent,
			BytesSent:     after.BytesSent - before.BytesSent,
			RPCRequests:   res.RPCRequests,
			RequestBytes:  res.RequestBytes,
			Flushes:       st.Flushes,
			SharedFetches: st.Shared,
			Throughput:    res.Throughput,
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-10s %9d %12d %9d %12d %9d %8d %11.1f",
			row.Pass, row.RequestsSent, row.BytesSent, row.RPCRequests, row.RequestBytes,
			row.Flushes, row.SharedFetches, row.Throughput))

		// Identity check under a deterministic engine config: Pop order and
		// single-threaded push are the only float-order noise sources, so with
		// them pinned any score difference is the aggregator's fault.
		detCfg := cfg
		detCfg.DeterministicPop = true
		detCfg.PushWorkers = 1
		scores, err := concurrentScores(c, qs, detCfg)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		if plainScores == nil {
			plainScores = scores
		} else if err := compareScores(plainScores, scores); err != nil {
			c.Close()
			return r, nil, err
		}
		c.Close()
	}
	if len(rows) == 2 && rows[1].RequestsSent > 0 {
		r.Lines = append(r.Lines, fmt.Sprintf("requests: %d -> %d (%.2fx fewer), scores identical across %d queries",
			rows[0].RequestsSent, rows[1].RequestsSent,
			float64(rows[0].RequestsSent)/float64(rows[1].RequestsSent), countQueries(qs)))
	}
	return r, rows, nil
}

// concurrentScores runs every query of qs concurrently (machine m's queries
// round-robin over its procs, like RunSSPPRBatch) and returns each query's
// full global score map, in qs order flattened machine-major.
func concurrentScores(c *cluster.Cluster, qs [][]int32, cfg core.Config) ([]map[int32]float64, error) {
	procs := c.Opts.ProcsPerMachine
	out := make([]map[int32]float64, countQueries(qs))
	errs := make([]error, len(out))
	base := 0
	var wg sync.WaitGroup
	for m := range qs {
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(m, p, base int) {
				defer wg.Done()
				st := c.Storages[m][p]
				for i := p; i < len(qs[m]); i += procs {
					sp, _, err := core.RunSSPPR(context.Background(), st, qs[m][i], cfg, nil)
					if err != nil {
						errs[base+i] = err
						continue
					}
					out[base+i] = core.ScoresGlobal(st, sp)
				}
			}(m, p, base)
		}
		base += len(qs[m])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// compareScores asserts two runs' per-query score maps agree within 1e-9.
func compareScores(want, got []map[int32]float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("agg: score sets differ in length: %d vs %d", len(want), len(got))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			return fmt.Errorf("agg: query %d touched %d nodes without aggregation, %d with", q, len(want[q]), len(got[q]))
		}
		for node, w := range want[q] {
			g, ok := got[q][node]
			if !ok {
				return fmt.Errorf("agg: query %d lost node %d under aggregation", q, node)
			}
			if math.Abs(w-g) > 1e-9 {
				return fmt.Errorf("agg: query %d node %d score %g vs %g", q, node, w, g)
			}
		}
	}
	return nil
}

func countQueries(qs [][]int32) int {
	n := 0
	for _, q := range qs {
		n += len(q)
	}
	return n
}
