package experiments

import (
	"context"
	"fmt"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// TraceOverheadRow is one sampling rate's measurement in the tracing-overhead
// experiment.
type TraceOverheadRow struct {
	SampleRate float64 `json:"sample_rate"`
	Throughput float64 `json:"throughput_qps"` // best measured repeat
	OverheadPc float64 `json:"overhead_pct"`   // vs the rate-0 baseline
	Spans      int64   `json:"spans"`          // spans recorded across all machines
}

// TraceOverhead measures the cost of distributed tracing: the same SSPPR
// batch on a 4-machine twitter-sim cluster at sampling rates 0 (tracing
// compiled in but never sampling), 0.01 (a production-style rate), and 1.0
// (every query traced). Overhead is reported against the rate-0 run; the
// acceptance bar is <5% at 0.01. Each rate takes the best of p.Repeats
// measured batches so scheduler noise doesn't masquerade as tracing cost.
func TraceOverhead(p Params) (Report, []TraceOverheadRow, error) {
	const machines = 4
	cfg := core.DefaultConfig()
	r := Report{Title: fmt.Sprintf("Tracing overhead on twitter-sim (%d machines, head-based sampling)", machines)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-12s %12s %10s %10s", "SampleRate", "Queries/s", "Overhead", "Spans"))
	var rows []TraceOverheadRow
	baseline := 0.0
	for _, rate := range []float64{0, 0.01, 1.0} {
		c, err := buildTraceCluster("twitter-sim", p, machines, rate)
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, 64), 61)
		best := 0.0
		for i := 0; i < p.Warmup+p.Repeats; i++ {
			res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
			if err != nil {
				c.Close()
				return r, nil, err
			}
			if i >= p.Warmup && res.Throughput > best {
				best = res.Throughput
			}
		}
		spans := int64(len(c.Spans()))
		c.Close()
		if rate == 0 {
			baseline = best
		}
		overhead := 0.0
		if baseline > 0 {
			overhead = (baseline - best) / baseline * 100
		}
		row := TraceOverheadRow{SampleRate: rate, Throughput: best, OverheadPc: overhead, Spans: spans}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-12g %12.1f %9.1f%% %10d",
			rate, row.Throughput, row.OverheadPc, row.Spans))
	}
	return r, rows, nil
}

// buildTraceCluster is buildCacheCluster's shape with a per-machine tracer
// sampling rate instead of a cache budget.
func buildTraceCluster(name string, p Params, machines int, sampleRate float64) (*cluster.Cluster, error) {
	spec, err := p.Spec(name)
	if err != nil {
		return nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{NumMachines: machines, ProcsPerMachine: 1, TraceSample: sampleRate}
	return cluster.NewFromShards(shards, loc, opts, partition.Evaluate(g, a))
}
