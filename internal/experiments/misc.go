package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/metrics"
)

// tensorRandomWalkThroughput measures the client-side-sampling Random Walk
// baseline over the cluster (one batch per machine's first process).
func tensorRandomWalkThroughput(c *cluster.Cluster, p Params, walkLen int) (float64, error) {
	roots := c.EvenQuerySet(p.Queries, 11)
	run := func() (float64, error) {
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		start := time.Now()
		for m := range c.Storages {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				_, err := core.RunTensorRandomWalk(context.Background(), c.Storages[m][0], roots[m], walkLen, int64(m), metrics.NewBreakdown())
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(m)
		}
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		total := p.Queries * len(c.Storages)
		return metrics.Throughput(total, time.Since(start)), nil
	}
	for i := 0; i < p.Warmup; i++ {
		if _, err := run(); err != nil {
			return 0, err
		}
	}
	var sum float64
	n := maxInt(p.Repeats, 1)
	for i := 0; i < n; i++ {
		tp, err := run()
		if err != nil {
			return 0, err
		}
		sum += tp
	}
	return sum / float64(n), nil
}

// IntroRow holds the speedup comparisons claimed in the paper's
// introduction for Ogbn-products: engine vs tensor Forward Push (83x there)
// and engine vs tensor Random Walk (1.7x there).
type IntroRow struct {
	Workload      string
	EngineTP      float64
	TensorTP      float64
	EngineSpeedup float64
}

// Intro reproduces the introduction's products comparison on products-sim
// (4 machines). The tensor Random Walk substitute samples client-side from
// fetched neighbor lists (see DESIGN.md); the paper's point — Random Walk
// barely benefits from native operators while Forward Push benefits
// enormously — survives the substitution.
func Intro(p Params) (Report, []IntroRow, error) {
	spec, err := p.Spec("products-sim")
	if err != nil {
		return Report{}, nil, err
	}
	const machines = 4
	c, err := buildCluster(spec, machines, 1, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	defer c.Close()
	cfg := core.DefaultConfig()
	var rows []IntroRow

	// Forward Push: engine vs tensor.
	qs := c.EvenQuerySet(minInt(p.Queries, 8), 31)
	engineTP, _, err := measuredRun(p, func() (cluster.RunResult, error) {
		return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
	})
	if err != nil {
		return Report{}, nil, err
	}
	qsT := c.EvenQuerySet(minInt(p.Queries, 4), 31)
	tensorTP, _, err := measuredRun(p, func() (cluster.RunResult, error) {
		return c.RunSSPPRBatch(context.Background(), qsT, core.TensorBaselineConfig(), cluster.EngineTensor)
	})
	if err != nil {
		return Report{}, nil, err
	}
	rows = append(rows, IntroRow{"Forward Push", engineTP, tensorTP, engineTP / tensorTP})

	// Random Walk: the engine's server-side sampling vs client-side
	// sampling over fetched neighbor infos.
	walkTPengine, _, err := measuredRun(p, func() (cluster.RunResult, error) {
		res, _, err := c.RunRandomWalkBatch(context.Background(), p.Queries, 16, 11)
		return res, err
	})
	if err != nil {
		return Report{}, nil, err
	}
	walkTPtensor, err := tensorRandomWalkThroughput(c, p, 16)
	if err != nil {
		return Report{}, nil, err
	}
	rows = append(rows, IntroRow{"Random Walk", walkTPengine, walkTPtensor, walkTPengine / walkTPtensor})

	r := Report{Title: "Intro claim: engine vs tensor on products-sim (4 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %14s %14s %10s", "Workload", "Engine q/s", "Tensor q/s", "Speedup"))
	for _, row := range rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %14.1f %14.1f %9.1fx",
			row.Workload, row.EngineTP, row.TensorTP, row.EngineSpeedup))
	}
	return r, rows, nil
}

// PartQualityRow compares partitioners end to end.
type PartQualityRow struct {
	Partitioner string
	EdgeCut     int64
	CutRatio    float64
	RemoteFrac  float64
	Throughput  float64
}

// PartQuality is the extra ablation from DESIGN.md §5: min-cut vs LDG vs
// hash partitioning on twitter-sim, 4 machines, measuring edge cut, runtime
// remote-traffic fraction, and end-to-end SSPPR throughput.
func PartQuality(p Params) (Report, []PartQualityRow, error) {
	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return Report{}, nil, err
	}
	const machines = 4
	cfg := core.DefaultConfig()
	kinds := []struct {
		name string
		kind cluster.PartitionKind
	}{
		{"min-cut (METIS-like)", cluster.PartitionMinCut},
		{"LDG streaming", cluster.PartitionLDG},
		{"hash", cluster.PartitionHash},
	}
	r := Report{Title: "Partitioner quality ablation on twitter-sim (4 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-22s %12s %10s %12s %12s",
		"Partitioner", "EdgeCut", "CutRatio", "RemoteFrac", "Queries/s"))
	var rows []PartQualityRow
	for _, kd := range kinds {
		c, err := buildCluster(spec, machines, 1, kd.kind)
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, 16), 41)
		tp, last, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		})
		quality := c.Quality
		c.Close()
		if err != nil {
			return r, nil, err
		}
		row := PartQualityRow{
			Partitioner: kd.name,
			EdgeCut:     quality.EdgeCut,
			CutRatio:    quality.CutRatio,
			RemoteFrac:  last.RemoteFraction(),
			Throughput:  tp,
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-22s %12d %10.3f %12.3f %12.1f",
			row.Partitioner, row.EdgeCut, row.CutRatio, row.RemoteFrac, row.Throughput))
	}
	return r, rows, nil
}
