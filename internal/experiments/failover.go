package experiments

import (
	"context"
	"fmt"
	"time"

	"pprengine/internal/chaos"
	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/ha"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// FailoverRow is one pass of the replication/failover benchmark.
type FailoverRow struct {
	Pass          string
	Queries       int
	Failed        int
	Failovers     int64
	Probes        int64
	ProbeFailures int64
	Throughput    float64
	// ScoresMatch reports whether the pass's deterministic score maps were
	// bitwise-checked against the no-fault baseline (only the faulted pass
	// runs the check; the others inherit it trivially).
	ScoresMatch bool
}

// FailoverBench measures the engine's behavior when a serving machine crashes
// mid-stream. Three passes over identical shards of twitter-sim (4 machines,
// 8 compute procs each):
//
//   - baseline: no replication, no faults — the seed behavior;
//   - faulted: R=2, the fault injector crashes machine 1 after its Nth
//     response write, mid-batch. Every query must still complete, served by
//     the replica, and a deterministic re-run's score maps must equal the
//     baseline's exactly (same engine config pinning float order);
//   - recovered: the machine is revived, health probes close its circuit
//     breaker on every peer, and a final batch runs with zero new failovers
//     (traffic back on the primary).
//
// The paper's engine has no fault-tolerance story; this experiment documents
// the replication layer's cost (availability and throughput under failure)
// rather than reproducing a paper figure.
//
// replicas, probeInterval and breakerThreshold tune the HA layer (<= 0
// selects the defaults: R=2, 50ms probes, threshold 3).
func FailoverBench(p Params, replicas int, probeInterval time.Duration, breakerThreshold int) (Report, []FailoverRow, error) {
	const machines = 4
	const procs = 8
	const victim = 1
	if replicas < 2 {
		replicas = 2
	}
	if replicas > machines {
		replicas = machines
	}
	if probeInterval <= 0 {
		probeInterval = 50 * time.Millisecond
	}
	if breakerThreshold <= 0 {
		breakerThreshold = 3
	}
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5 // fetch-bound regime: remote traffic is what fails over
	detCfg := cfg
	detCfg.DeterministicPop = true
	detCfg.PushWorkers = 1

	r := Report{Title: fmt.Sprintf("Shard replication failover on twitter-sim (%d machines x %d procs, R=%d, kill machine %d mid-stream)", machines, procs, replicas, victim)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-10s %8s %7s %10s %7s %9s %11s %7s",
		"Pass", "Queries", "Failed", "Failovers", "Probes", "ProbeErr", "Queries/s", "Scores"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)

	emit := func(row FailoverRow) {
		match := "-"
		if row.ScoresMatch {
			match = "exact"
		}
		r.Lines = append(r.Lines, fmt.Sprintf("%-10s %8d %7d %10d %7d %9d %11.1f %7s",
			row.Pass, row.Queries, row.Failed, row.Failovers, row.Probes, row.ProbeFailures,
			row.Throughput, match))
	}

	// Pass 1 — baseline: plain cluster, collect throughput and the
	// deterministic score maps the faulted pass must reproduce.
	base, err := cluster.NewFromShards(shards, loc, cluster.Options{
		NumMachines: machines, ProcsPerMachine: procs,
	}, quality)
	if err != nil {
		return r, nil, err
	}
	qs := base.EvenQuerySet(minInt(p.Queries, procs*2), 53)
	nq := countQueries(qs)
	netBefore := base.NetStats()
	res, err := base.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
	if err != nil {
		base.Close()
		return r, nil, err
	}
	// The victim answers roughly a quarter of the batch's wire requests (one
	// of four machines); killing it halfway through that share lands the
	// crash mid-stream at any scale.
	batchRequests := base.NetStats().RequestsSent - netBefore.RequestsSent
	killAfter := batchRequests / 8
	if killAfter < 1 {
		killAfter = 1
	}
	baseScores, err := concurrentScores(base, qs, detCfg)
	base.Close()
	if err != nil {
		return r, nil, err
	}
	rows := []FailoverRow{{Pass: "baseline", Queries: nq, Failed: res.Failed, Throughput: res.Throughput}}
	emit(rows[0])

	// Pass 2 — faulted: the victim crashes partway through the measured
	// batch. The batch must complete with zero failed queries, and a
	// deterministic re-run on the (still dead) cluster must match the
	// baseline scores exactly.
	inj := chaos.New(4242)
	inj.SetPlan(victim, chaos.Plan{KillAfterWrites: killAfter})
	c, err := cluster.NewFromShards(shards, loc, cluster.Options{
		NumMachines: machines, ProcsPerMachine: procs, Replicas: replicas,
		ProbeInterval:    probeInterval,
		ProbeTimeout:     time.Second,
		BreakerThreshold: breakerThreshold,
		FailoverTimeout:  5 * time.Second,
		Chaos:            inj,
	}, quality)
	if err != nil {
		return r, nil, err
	}
	defer c.Close()
	res, err = c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
	if err != nil {
		return r, nil, err
	}
	if st := inj.Stats(victim); st.Kills == 0 {
		return r, nil, fmt.Errorf("failover: the batch finished before the crash trigger (%d writes); lower KillAfterWrites", st.Writes)
	}
	faultScores, err := concurrentScores(c, qs, detCfg)
	if err != nil {
		return r, nil, fmt.Errorf("failover: query failed despite replication: %w", err)
	}
	if err := compareScores(baseScores, faultScores); err != nil {
		return r, nil, fmt.Errorf("failover: results diverged from the no-fault run: %w", err)
	}
	hst := c.HAStats()
	row := FailoverRow{
		Pass: "faulted", Queries: nq, Failed: res.Failed,
		Failovers: hst.Failovers, Probes: hst.Probes, ProbeFailures: hst.ProbeFailures,
		Throughput: res.Throughput, ScoresMatch: true,
	}
	rows = append(rows, row)
	emit(row)
	if hst.Failovers == 0 {
		return r, nil, fmt.Errorf("failover: no failovers recorded although the victim died mid-stream")
	}

	// Pass 3 — recovered: revive, wait for every peer's breaker on the victim
	// to close, then measure a batch that should run entirely on primaries.
	inj.Revive(victim)
	key := fmt.Sprintf("m%d", victim)
	deadline := time.Now().Add(30 * time.Second)
	for {
		closed := true
		for m := 0; m < machines; m++ {
			if m == victim {
				continue
			}
			if c.Trackers[m].State(key) != ha.BreakerClosed {
				closed = false
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			return r, nil, fmt.Errorf("failover: breakers never closed after revival")
		}
		time.Sleep(25 * time.Millisecond)
	}
	failoversBefore := c.HAStats().Failovers
	res, err = c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
	if err != nil {
		return r, nil, err
	}
	hst = c.HAStats()
	row = FailoverRow{
		Pass: "recovered", Queries: nq, Failed: res.Failed,
		Failovers: hst.Failovers - failoversBefore, Probes: hst.Probes, ProbeFailures: hst.ProbeFailures,
		Throughput: res.Throughput,
	}
	rows = append(rows, row)
	emit(row)
	r.Lines = append(r.Lines, fmt.Sprintf(
		"availability under failure: %d/%d queries, %d failovers; after recovery: %d failovers, breaker closed on all peers",
		nq-rows[1].Failed, nq, rows[1].Failovers, row.Failovers))
	return r, rows, nil
}
