package experiments

import (
	"context"
	"fmt"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
)

// Fig5aRow is one (dataset, machines) throughput sample.
type Fig5aRow struct {
	Dataset    string
	Machines   int
	Throughput float64
	RemoteFrac float64
}

// Fig5a reproduces the machine-scalability curve: machines ∈ {2,4,8}, one
// compute process per machine, partitions = machines, 256 total queries
// (scaled by p.Queries*8 to stay proportionate at small scales).
func Fig5a(p Params) (Report, []Fig5aRow, error) {
	machinesList := []int{2, 4, 8}
	cfg := core.DefaultConfig()
	r := Report{Title: "Figure 5a: Scalability vs number of machines (1 proc/machine)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %9s %14s %12s", "Dataset", "Machines", "Queries/s", "RemoteFrac"))
	var rows []Fig5aRow
	for _, spec := range p.specs() {
		var base float64
		for _, k := range machinesList {
			c, err := buildCluster(spec, k, 1, cluster.PartitionMinCut)
			if err != nil {
				return r, nil, err
			}
			// Fixed total problem size of 256 queries (paper), spread
			// evenly; smaller when p.Queries is reduced.
			total := minInt(256, p.Queries*8)
			qs := c.EvenQuerySet(total/k, 3)
			tp, last, err := measuredRun(p, func() (cluster.RunResult, error) {
				return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
			})
			c.Close()
			if err != nil {
				return r, nil, err
			}
			row := Fig5aRow{Dataset: spec.Name, Machines: k, Throughput: tp, RemoteFrac: last.RemoteFraction()}
			rows = append(rows, row)
			speedup := ""
			if k == machinesList[0] {
				base = tp
			} else if base > 0 {
				speedup = fmt.Sprintf(" (%.2fx vs %d mach)", tp/base, machinesList[0])
			}
			r.Lines = append(r.Lines, fmt.Sprintf("%-18s %9d %14.1f %12.3f%s",
				row.Dataset, row.Machines, row.Throughput, row.RemoteFrac, speedup))
		}
	}
	return r, rows, nil
}

// Fig5bRow is one (dataset, procs, mode) sample of the inter-SSPPR
// parallelism study.
type Fig5bRow struct {
	Dataset string
	Procs   int
	Weak    bool
	Seconds float64
}

// Fig5b reproduces the inter-SSPPR parallelization analysis: 2 machines,
// computing processes per machine ∈ {1,2,4,8}; strong scaling fixes the
// total at 128 queries, weak scaling fixes 128 queries per process (scaled
// down via p.Queries).
func Fig5b(p Params) (Report, []Fig5bRow, error) {
	procsList := []int{1, 2, 4, 8}
	const machines = 2
	cfg := core.DefaultConfig()
	r := Report{Title: "Figure 5b: Inter-SSPPR parallelism (2 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %6s %8s %10s", "Dataset", "Procs", "Mode", "Time"))
	var rows []Fig5bRow
	strongTotal := p.Queries // per machine at procs=1
	for _, spec := range p.specs() {
		var strongBase, weakBase float64
		for _, procs := range procsList {
			c, err := buildCluster(spec, machines, procs, cluster.PartitionMinCut)
			if err != nil {
				return r, nil, err
			}
			// Strong: fixed per-machine total.
			qsStrong := c.EvenQuerySet(strongTotal, 5)
			_, lastS, err := measuredRun(p, func() (cluster.RunResult, error) {
				return c.RunSSPPRBatch(context.Background(), qsStrong, cfg, cluster.EngineMap)
			})
			if err != nil {
				c.Close()
				return r, nil, err
			}
			// Weak: fixed per-process count, total grows with procs.
			weakPerProc := strongTotal / 4
			if weakPerProc < 4 {
				weakPerProc = 4
			}
			qsWeak := c.EvenQuerySet(weakPerProc*procs, 5)
			_, lastW, err := measuredRun(p, func() (cluster.RunResult, error) {
				return c.RunSSPPRBatch(context.Background(), qsWeak, cfg, cluster.EngineMap)
			})
			c.Close()
			if err != nil {
				return r, nil, err
			}
			sSec := lastS.Wall.Seconds()
			wSec := lastW.Wall.Seconds()
			rows = append(rows,
				Fig5bRow{spec.Name, procs, false, sSec},
				Fig5bRow{spec.Name, procs, true, wSec})
			strongNote, weakNote := "", ""
			if procs == 1 {
				strongBase, weakBase = sSec, wSec
			} else {
				strongNote = fmt.Sprintf(" (%.2fx)", strongBase/sSec)
				// Weak scaling: ideal is flat time while work grows.
				weakNote = fmt.Sprintf(" (eff %.2f)", weakBase/wSec)
			}
			r.Lines = append(r.Lines,
				fmt.Sprintf("%-18s %6d %8s %9.3fs%s", spec.Name, procs, "strong", sSec, strongNote),
				fmt.Sprintf("%-18s %6d %8s %9.3fs%s", spec.Name, procs, "weak", wSec, weakNote))
		}
	}
	return r, rows, nil
}
