package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/ppr"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// HaloRow is one rung of the halo-cache ablation.
type HaloRow struct {
	Config      string
	RemoteFrac  float64 // fetched rows served over RPC
	HaloFrac    float64 // fetched rows served by the halo cache
	MemoryBytes int64   // total shard memory
	Throughput  float64
}

// Halo ablates the §3.2.1 halo-depth trade-off on twitter-sim (4 machines):
// columns-only halo (the default) vs cached halo rows. More stored data,
// less communication.
func Halo(p Params) (Report, []HaloRow, error) {
	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return Report{}, nil, err
	}
	g := spec.GenerateCached()
	const machines = 4
	assign, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	cfg := core.DefaultConfig()
	r := Report{Title: "Halo-depth ablation on twitter-sim (4 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12s %10s %12s %12s",
		"Halo", "RemoteFrac", "HaloFrac", "ShardMem", "Queries/s"))
	var rows []HaloRow
	for _, cached := range []bool{false, true} {
		shards, loc, err := shard.BuildWithOptions(g, assign, machines, shard.BuildOptions{CacheHaloRows: cached})
		if err != nil {
			return r, nil, err
		}
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: 1, CacheHaloRows: cached}
		c, err := cluster.NewFromShards(shards, loc, opts, partition.Evaluate(g, assign))
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, 16), 51)
		tp, last, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		})
		c.Close()
		if err != nil {
			return r, nil, err
		}
		var mem int64
		for _, s := range shards {
			st := shard.ComputeStats(s)
			mem += st.MemoryBytes
			// Halo rows add their own arrays beyond the base estimate.
			mem += int64(len(s.HaloNbrLocal)) * 16
			mem += int64(len(s.HaloKeys)) * 16
		}
		total := last.LocalRows + last.RemoteRows + last.HaloRows
		name := "1-hop (cols)"
		if cached {
			name = "2-hop (rows)"
		}
		row := HaloRow{
			Config:      name,
			RemoteFrac:  float64(last.RemoteRows) / float64(total),
			HaloFrac:    float64(last.HaloRows) / float64(total),
			MemoryBytes: mem,
			Throughput:  tp,
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12.3f %10.3f %10.1fMB %12.1f",
			row.Config, row.RemoteFrac, row.HaloFrac, float64(row.MemoryBytes)/(1<<20), row.Throughput))
	}
	return r, rows, nil
}

// EpsRow is one point of the ε sweep.
type EpsRow struct {
	Eps        float64
	Throughput float64
	Top100     float64
	Touched    float64 // average touched nodes per query
}

// EpsSweep sweeps the residual threshold on products-sim, connecting the
// paper's two claims: ε=1e-6 gives 97%+ top-100 precision (§4.2) while
// ε=1e-4 is already enough for GNN tasks at far less cost.
func EpsSweep(p Params) (Report, []EpsRow, error) {
	spec, err := p.Spec("products-sim")
	if err != nil {
		return Report{}, nil, err
	}
	g := spec.GenerateCached()
	const machines = 4
	c, err := buildCluster(spec, machines, 1, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	defer c.Close()
	// Precision reference: power iteration on a few sources.
	rng := rand.New(rand.NewSource(77))
	type ref struct {
		src   graph.NodeID
		exact []float64
	}
	var refs []ref
	for i := 0; i < 3; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes))
		exact, _ := ppr.PowerIteration(g, src, 0.462, 1e-10, 500)
		refs = append(refs, ref{src, exact})
	}
	r := Report{Title: "Epsilon sweep on products-sim (4 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%10s %12s %10s %12s", "eps", "Queries/s", "top-100", "Touched"))
	var rows []EpsRow
	for _, eps := range []float64{1e-4, 1e-5, 1e-6, 1e-7} {
		cfg := core.DefaultConfig()
		cfg.Eps = eps
		qs := c.EvenQuerySet(minInt(p.Queries, 16), 61)
		tp, _, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		})
		if err != nil {
			return r, nil, err
		}
		var prec, touched float64
		for _, rf := range refs {
			res := ppr.ForwardPush(g, rf.src, 0.462, eps)
			prec += ppr.TopKPrecision(res.Scores, rf.exact, 100)
			touched += float64(len(res.Scores))
		}
		row := EpsRow{Eps: eps, Throughput: tp, Top100: prec / float64(len(refs)), Touched: touched / float64(len(refs))}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%10.0e %12.1f %10.3f %12.0f",
			row.Eps, row.Throughput, row.Top100, row.Touched))
	}
	return r, rows, nil
}

// LatencyRow is one point of the network-sensitivity sweep.
type LatencyRow struct {
	Base       time.Duration
	Throughput float64
	OverlapTP  float64 // with overlap enabled
}

// NetLatency sweeps a synthetic per-message link latency on friendster-sim
// (2 machines), showing how the engine's throughput degrades with slower
// interconnects and how much the overlap optimization buys back — the
// regime (real cross-machine links) the paper targets but simulates on one
// host, as do we.
func NetLatency(p Params) (Report, []LatencyRow, error) {
	spec, err := p.Spec("friendster-sim")
	if err != nil {
		return Report{}, nil, err
	}
	g := spec.GenerateCached()
	const machines = 2
	assign, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	shards, loc, err := shard.Build(g, assign, machines)
	if err != nil {
		return Report{}, nil, err
	}
	r := Report{Title: "Network latency sensitivity on friendster-sim (2 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%12s %14s %14s %10s", "Latency", "No overlap", "Overlap", "Gain"))
	var rows []LatencyRow
	for _, base := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond} {
		opts := cluster.Options{
			NumMachines: machines, ProcsPerMachine: 1,
			Latency: rpc.LatencyModel{Base: base, BytesPerSec: 1e9},
		}
		c, err := cluster.NewFromShards(shards, loc, opts, partition.Evaluate(g, assign))
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, 8), 71)
		cfgNo := core.DefaultConfig()
		cfgNo.Overlap = false
		tpNo, _, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfgNo, cluster.EngineMap)
		})
		if err != nil {
			c.Close()
			return r, nil, err
		}
		cfgYes := core.DefaultConfig()
		tpYes, _, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfgYes, cluster.EngineMap)
		})
		c.Close()
		if err != nil {
			return r, nil, err
		}
		row := LatencyRow{Base: base, Throughput: tpNo, OverlapTP: tpYes}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%12v %14.1f %14.1f %9.2fx",
			base, tpNo, tpYes, tpYes/tpNo))
	}
	return r, rows, nil
}
