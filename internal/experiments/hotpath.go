package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/metrics"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// HotpathRow is one pass of the zero-copy hot-path benchmark.
type HotpathRow struct {
	Pass         string
	RemoteRows   int64   // rows fetched over RPC during the measured batch
	AllocBytes   uint64  // heap bytes allocated during the batch (MemStats.TotalAlloc delta)
	AllocObjects uint64  // heap objects allocated (MemStats.Mallocs delta)
	BytesPerRow  float64 // AllocBytes / RemoteRows
	PoolHits     int64   // frame-buffer pool hits during the batch
	PoolMisses   int64   // pool misses (fresh allocations) during the batch
	Throughput   float64 // queries per second
}

// HotpathBench measures what the zero-copy hot path saves: the same
// concurrent SSPPR batch runs on identical shards with ZeroCopy off (every
// response copy-decoded onto the heap — the pre-pooling profile), with
// ZeroCopy on, and with ZeroCopy on plus cross-query aggregation, and the
// report diffs heap allocation per remote row. Correctness is asserted the
// same way as the aggregation benchmark, but stricter: under DeterministicPop
// with a single push worker the decode path is the only difference between
// passes, so every query's scores must be BITWISE identical — any drift means
// a view exposed bytes it did not own.
//
// The allocation numbers are whole-process (the simulated storage servers
// encode responses in-process too), so the deltas understate the client-side
// saving; the acceptance bar of >= 2x fewer allocated bytes per remote row is
// conservative.
func HotpathBench(p Params) (Report, []HotpathRow, error) {
	const machines = 4
	const procs = 8
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5 // fetch-bound regime: remote rows dominate, like the agg bench
	r := Report{Title: fmt.Sprintf("Zero-copy hot path on twitter-sim (%d machines x %d procs)", machines, procs)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %10s %14s %12s %11s %9s %9s %11s",
		"Pass", "RemoteRows", "AllocBytes", "AllocObjs", "Bytes/Row", "PoolHits", "PoolMiss", "Queries/s"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)

	var rows []HotpathRow
	var qs [][]int32
	var refScores []map[int32]float64
	for _, pass := range []string{"off", "zerocopy", "zerocopy+agg"} {
		cfg.ZeroCopy = pass != "off"
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs, Latency: rpc.LatencyModel{}}
		if pass == "zerocopy+agg" {
			opts.AggWindow = 200 * time.Microsecond
			opts.ZeroCopy = true
		}
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		if qs == nil {
			qs = c.EvenQuerySet(minInt(p.Queries, procs*2), 131)
		}

		// Warm the buffer pools and the connections, then measure a clean
		// window: GC first so the deltas are allocation, not collection noise.
		if _, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap); err != nil {
			c.Close()
			return r, nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		hits0, misses0 := metrics.PoolHits.Load(), metrics.PoolMisses.Load()
		res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		runtime.ReadMemStats(&after)
		row := HotpathRow{
			Pass:         pass,
			RemoteRows:   res.RemoteRows,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			AllocObjects: after.Mallocs - before.Mallocs,
			PoolHits:     metrics.PoolHits.Load() - hits0,
			PoolMisses:   metrics.PoolMisses.Load() - misses0,
			Throughput:   res.Throughput,
		}
		if row.RemoteRows > 0 {
			row.BytesPerRow = float64(row.AllocBytes) / float64(row.RemoteRows)
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %10d %14d %12d %11.1f %9d %9d %11.1f",
			row.Pass, row.RemoteRows, row.AllocBytes, row.AllocObjects, row.BytesPerRow,
			row.PoolHits, row.PoolMisses, row.Throughput))

		// Bitwise score identity: with Pop order and push parallelism pinned,
		// the only difference between passes is where the decoded bytes live.
		detCfg := cfg
		detCfg.DeterministicPop = true
		detCfg.PushWorkers = 1
		scores, err := concurrentScores(c, qs, detCfg)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		if refScores == nil {
			refScores = scores
		} else if err := compareScoresExact(refScores, scores); err != nil {
			c.Close()
			return r, nil, fmt.Errorf("hotpath: pass %q: %w", pass, err)
		}
		c.Close()
	}
	if len(rows) >= 2 && rows[0].BytesPerRow > 0 && rows[1].BytesPerRow > 0 {
		r.Lines = append(r.Lines, fmt.Sprintf(
			"allocated bytes/remote row: %.1f -> %.1f (%.2fx fewer), scores bitwise identical across %d queries",
			rows[0].BytesPerRow, rows[1].BytesPerRow,
			rows[0].BytesPerRow/rows[1].BytesPerRow, countQueries(qs)))
	}
	return r, rows, nil
}

// compareScoresExact asserts two runs' per-query score maps are bitwise
// identical — no tolerance. The zero-copy passes change only where decoded
// bytes are stored, never the float values or accumulation order, so under a
// deterministic engine config any difference is a buffer-ownership bug.
func compareScoresExact(want, got []map[int32]float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("score sets differ in length: %d vs %d", len(want), len(got))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			return fmt.Errorf("query %d touched %d nodes in the reference pass, %d in this one", q, len(want[q]), len(got[q]))
		}
		for node, w := range want[q] {
			g, ok := got[q][node]
			if !ok {
				return fmt.Errorf("query %d: node %d missing", q, node)
			}
			if math.Float64bits(w) != math.Float64bits(g) {
				return fmt.Errorf("query %d node %d: score %v vs %v (not bitwise identical)", q, node, w, g)
			}
		}
	}
	return nil
}
