package experiments

import (
	"context"
	"fmt"
	"reflect"
	"runtime"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/metrics"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// Hotpath2Row is one pass of the hot-path round-two benchmark: either an
// SSPPR compute pass (Section A) or a k-hop sampling pass (Section B).
type Hotpath2Row struct {
	Section string // "ssppr" or "khop"
	Pass    string

	// Section A: pop/push-phase throughput of the compute engine.
	Pushes       int64
	PopPushSec   float64 // wall seconds spent in the Pop+Push phases
	PushesPerSec float64 // Pushes / PopPushSec
	AffRounds    int64   // affinity push rounds (on-pass only)
	OwnedUpdates int64   // lock-free neighbor updates applied

	// Section B: allocation cost of k-hop fanout sampling.
	SampledRows  int64   // frontier rows sampling was requested for
	AllocBytes   uint64  // MemStats.TotalAlloc delta over the measured batch
	BytesPerRow  float64 // AllocBytes / SampledRows
	AllocObjects uint64
}

// Hotpath2Bench measures the second round of hot-path work. Section A runs
// the same concurrent SSPPR batch with the shard-affinity engine off
// (PR 7-era striped maps + fork-join pushOwned) and on (flat probe tables +
// long-lived worker pool), and reports pop/push-phase throughput — pushes
// per second spent inside the Pop and Push phases, so fetch time does not
// dilute the comparison. Correctness is the strictest kind: under
// DeterministicPop every push path claims row residuals before applying any
// neighbor delta in global row order, so affinity scores must be BITWISE
// identical to the single-worker baseline.
//
// Section B runs an identical k-hop fanout-sampling batch with the sampling
// zero-copy path off (heap-built responses, heap encode, copy decode, the
// PR 7 sampling baseline) and on (arena-built exact-size rows, pooled
// response buffers, aliasing view decode) and reports allocated bytes per
// sampled row. The samples themselves must be deep-equal across passes —
// the arena path consumes the rng draw for draw.
func Hotpath2Bench(p Params) (Report, []Hotpath2Row, error) {
	const machines = 4
	const procs = 8
	r := Report{Title: fmt.Sprintf("Hot path round two: affinity compute + sampling views on twitter-sim (%d machines x %d procs)", machines, procs)}

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)

	var rows []Hotpath2Row

	// --- Section A: shard-affinity SSPPR compute ---
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12s %12s %14s %10s %12s",
		"SSPPR pass", "Pushes", "PopPush(s)", "Pushes/s", "AffRounds", "OwnedUpds"))
	cfg := core.DefaultConfig()
	var refScores []map[int32]float64
	for _, pass := range []string{"affinity-off", "affinity-on"} {
		cfg.Affinity = pass == "affinity-on"
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs, Latency: rpc.LatencyModel{}}
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, procs*2), 131)

		// Warm pools, connections, and the per-query table capacities, then
		// measure a clean window.
		if _, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap); err != nil {
			c.Close()
			return r, nil, err
		}
		runtime.GC()
		aff0, owned0 := metrics.PmapAffinityRounds.Load(), metrics.PmapOwnedUpdates.Load()
		res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		row := Hotpath2Row{
			Section:      "ssppr",
			Pass:         pass,
			Pushes:       res.Pushes,
			PopPushSec:   (res.Breakdown.Get(metrics.PhasePop) + res.Breakdown.Get(metrics.PhasePush)).Seconds(),
			AffRounds:    metrics.PmapAffinityRounds.Load() - aff0,
			OwnedUpdates: metrics.PmapOwnedUpdates.Load() - owned0,
		}
		if row.PopPushSec > 0 {
			row.PushesPerSec = float64(row.Pushes) / row.PopPushSec
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12d %12.4f %14.0f %10d %12d",
			row.Pass, row.Pushes, row.PopPushSec, row.PushesPerSec, row.AffRounds, row.OwnedUpdates))

		// Bitwise score identity: the off pass pins PushWorkers=1, the on
		// pass keeps its full worker pool — claims-first push order makes
		// them indistinguishable under DeterministicPop.
		detCfg := cfg
		detCfg.DeterministicPop = true
		if !cfg.Affinity {
			detCfg.PushWorkers = 1
		}
		scores, err := concurrentScores(c, qs, detCfg)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		if refScores == nil {
			refScores = scores
		} else if err := compareScoresExact(refScores, scores); err != nil {
			c.Close()
			return r, nil, fmt.Errorf("hotpath2: pass %q: %w", pass, err)
		}
		c.Close()
	}
	if len(rows) == 2 && rows[0].PushesPerSec > 0 {
		r.Lines = append(r.Lines, fmt.Sprintf(
			"pop/push throughput: %.0f -> %.0f pushes/s (%.2fx), scores bitwise identical across %d workers vs 1",
			rows[0].PushesPerSec, rows[1].PushesPerSec,
			rows[1].PushesPerSec/rows[0].PushesPerSec, cfg.PushWorkers))
	}

	// --- Section B: k-hop sampling allocations ---
	r.Lines = append(r.Lines, "")
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12s %14s %12s %11s",
		"k-hop pass", "SampledRows", "AllocBytes", "AllocObjs", "Bytes/Row"))
	opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs, Latency: rpc.LatencyModel{}}
	c, err := cluster.NewFromShards(shards, loc, opts, quality)
	if err != nil {
		return r, nil, err
	}
	defer c.Close()
	fanouts := []int{10, 10}
	roots := c.EvenQuerySet(minInt(p.Queries, procs*2), 137)
	// One long-lived sampler per machine, like a training loop would hold:
	// the warm batch grows its dedup index and scratch once, and the measured
	// batch reuses them.
	samplers := make([]*core.KHopSampler, machines)
	for m := range samplers {
		samplers[m] = core.NewKHopSampler()
	}
	var refSamples []*core.KHopResult
	for _, pass := range []string{"views-off", "views-on"} {
		on := pass == "views-on"
		// The toggle is structural (the sampling path has no per-query
		// Config): flip it on every server and every compute handle so the
		// off pass exercises the legacy heap path end to end.
		for _, srv := range c.Servers {
			srv.SetSampleZeroCopy(on)
		}
		for _, machine := range c.ReplicaServers {
			for _, srv := range machine {
				srv.SetSampleZeroCopy(on)
			}
		}
		for _, machine := range c.Storages {
			for _, st := range machine {
				st.SetSampleZeroCopy(on)
			}
		}

		runBatch := func() ([]*core.KHopResult, int64, error) {
			var out []*core.KHopResult
			var sampled int64
			for m := range roots {
				if len(roots[m]) == 0 {
					continue
				}
				res, err := samplers[m].Run(context.Background(), c.Storages[m][0], roots[m], fanouts, 977, nil)
				if err != nil {
					return nil, 0, err
				}
				// Every node that appeared before the last hop was in a
				// frontier exactly once — a row the samplers processed.
				for _, h := range res.HopOf {
					if int(h) < len(fanouts) {
						sampled++
					}
				}
				out = append(out, res)
			}
			return out, sampled, nil
		}
		if _, _, err := runBatch(); err != nil { // warm pools and scratch
			return r, nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		samples, sampled, err := runBatch()
		if err != nil {
			return r, nil, err
		}
		runtime.ReadMemStats(&after)
		row := Hotpath2Row{
			Section:      "khop",
			Pass:         pass,
			SampledRows:  sampled,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			AllocObjects: after.Mallocs - before.Mallocs,
		}
		if sampled > 0 {
			row.BytesPerRow = float64(row.AllocBytes) / float64(sampled)
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %12d %14d %12d %11.1f",
			row.Pass, row.SampledRows, row.AllocBytes, row.AllocObjects, row.BytesPerRow))

		// Sample identity: the arena path consumes the rng draw for draw, so
		// the sampled computation graphs must match exactly.
		if refSamples == nil {
			refSamples = samples
		} else if err := compareKHop(refSamples, samples); err != nil {
			return r, nil, fmt.Errorf("hotpath2: pass %q: %w", pass, err)
		}
	}
	if n := len(rows); n >= 2 && rows[n-2].BytesPerRow > 0 && rows[n-1].BytesPerRow > 0 {
		r.Lines = append(r.Lines, fmt.Sprintf(
			"allocated bytes/sampled row: %.1f -> %.1f (%.2fx fewer), samples identical across passes",
			rows[n-2].BytesPerRow, rows[n-1].BytesPerRow,
			rows[n-2].BytesPerRow/rows[n-1].BytesPerRow))
	}
	return r, rows, nil
}

// compareKHop asserts two k-hop batches sampled identical computation graphs.
func compareKHop(want, got []*core.KHopResult) error {
	if len(want) != len(got) {
		return fmt.Errorf("khop result counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			return fmt.Errorf("khop batch %d sampled a different graph (%d vs %d nodes, %d vs %d edges)",
				i, len(want[i].Nodes), len(got[i].Nodes), len(want[i].EdgeSrc), len(got[i].EdgeSrc))
		}
	}
	return nil
}
