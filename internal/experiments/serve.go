package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/gnn"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// ServeRow is one pass of the end-to-end GNN serving benchmark.
type ServeRow struct {
	Pass        string
	Inferences  int     // inferences served during the measured window
	FeatRPCs    int64   // MethodFetchFeatures wire requests (all servers)
	CacheHits   int64   // feature rows served from the feature cache
	CacheMisses int64   // feature rows that went to the wire (flight leaders)
	AggFlushes  int64   // merged feature flushes
	Throughput  float64 // inferences per second
}

// ServeBench measures what the feature tier saves on the end-to-end serving
// pipeline (§4.5: SSPPR → top-K subgraph → cross-machine feature slice →
// GraphSAGE forward). The same inference set runs three times per pass over
// identical shards, features, and model weights:
//
//	direct       every ConvertBatch issues per-shard feature RPCs
//	cached+agg   machine-wide feature cache (PPR-mass admission) plus
//	             cross-query feature-fetch aggregation
//	+zerocopy    the cached+aggregated path with view decoding — feature
//	             responses stay in pooled buffers
//
// Repeating the set makes the cache's steady state visible: after the first
// round the working set is resident, so the cached passes issue a fraction
// of the direct pass's feature RPCs. The engine runs DeterministicPop with
// one push worker, so the served logits must be BITWISE identical across
// passes — the feature tier moves bytes, it must never change them.
func ServeBench(p Params) (Report, []ServeRow, error) {
	const (
		machines = 4
		procs    = 2
		dim      = 32
		hidden   = 32
		classes  = 4
		topK     = 64
		rounds   = 3
	)
	r := Report{Title: fmt.Sprintf("GNN serving pipeline on twitter-sim (%d machines x %d procs, %d rounds)", machines, procs, rounds)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-22s %8s %9s %10s %10s %9s %9s",
		"Pass", "Infers", "FeatRPCs", "CacheHits", "CacheMiss", "AggFlush", "Infer/s"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)

	// Engine config pinned for bitwise reproducibility: the only difference
	// between passes is how feature bytes travel.
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1

	var rows []ServeRow
	var sources [][]int32
	var refLogits [][]float32
	for _, pass := range []string{"direct", "cached+agg", "cached+agg+zerocopy"} {
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs}
		zc := pass == "cached+agg+zerocopy"
		if pass != "direct" {
			opts.FeatCacheBytes = 32 << 20
			opts.AggWindow = 200 * time.Microsecond
			opts.ZeroCopy = zc
		}
		cfg.ZeroCopy = zc
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		// The non-zerocopy passes copy-decode direct feature responses too,
		// so "direct" reproduces the pre-pooling profile end to end.
		for _, machine := range c.Storages {
			for _, st := range machine {
				st.SetFeatureZeroCopy(zc)
			}
		}
		tc := gnn.DefaultTrainConfig()
		tc.FeatureDim, tc.Hidden, tc.NumClasses = dim, hidden, classes
		if _, err := gnn.Setup(c, tc); err != nil {
			c.Close()
			return r, nil, err
		}
		model := gnn.NewSAGE(dim, hidden, classes, 7)
		if sources == nil {
			sources = c.EvenQuerySet(minInt(p.Queries, 6), 211)
		}

		// Warm connections (not the feature cache: warm-up uses the plain
		// query path) and snapshot the wire counters.
		if _, err := c.RunSSPPRBatch(context.Background(), sources, cfg, cluster.EngineMap); err != nil {
			c.Close()
			return r, nil, err
		}
		feat0 := featRPCCount(c)
		hits0, miss0 := c.FeatCacheStats().Hits, c.FeatCacheStats().Misses
		flush0 := c.FeatAggStats().Flushes

		// Machines serve concurrently (their caches and aggregators are
		// machine-shared state); each machine's inference stream is
		// sequential, and logits are collected per machine so the flattened
		// order is deterministic regardless of scheduling.
		perMachine := make([][][]float32, machines)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, machines)
		for m := 0; m < machines; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				st := c.Storages[m][0]
				for round := 0; round < rounds; round++ {
					for _, src := range sources[m] {
						q, _, err := core.RunSSPPR(context.Background(), st, src, cfg, nil)
						if err != nil {
							errs[m] = err
							return
						}
						b, err := gnn.ConvertBatch(context.Background(), st, q, src, topK, classes)
						if err != nil {
							errs[m] = err
							return
						}
						perMachine[m] = append(perMachine[m], model.Forward(b))
					}
				}
			}(m)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				c.Close()
				return r, nil, fmt.Errorf("serve: pass %q: %w", pass, err)
			}
		}
		var logits [][]float32
		for _, l := range perMachine {
			logits = append(logits, l...)
		}
		row := ServeRow{
			Pass:        pass,
			Inferences:  len(logits),
			FeatRPCs:    featRPCCount(c) - feat0,
			CacheHits:   c.FeatCacheStats().Hits - hits0,
			CacheMisses: c.FeatCacheStats().Misses - miss0,
			AggFlushes:  c.FeatAggStats().Flushes - flush0,
			Throughput:  float64(len(logits)) / elapsed.Seconds(),
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-22s %8d %9d %10d %10d %9d %9.1f",
			row.Pass, row.Inferences, row.FeatRPCs, row.CacheHits, row.CacheMisses, row.AggFlushes, row.Throughput))

		if refLogits == nil {
			refLogits = logits
		} else if err := compareLogitsExact(refLogits, logits); err != nil {
			c.Close()
			return r, nil, fmt.Errorf("serve: pass %q: %w", pass, err)
		}
		c.Close()
	}

	// Acceptance: the cached+aggregated tier must at least halve the feature
	// RPC count at identical logits (steady state: round 1 fills, 2-3 hit).
	direct, cached := rows[0].FeatRPCs, rows[1].FeatRPCs
	if cached <= 0 || direct < 2*cached {
		return r, rows, fmt.Errorf("serve: feature tier saved too little: %d feature RPCs direct vs %d cached+agg (want >= 2x fewer)", direct, cached)
	}
	r.Lines = append(r.Lines, fmt.Sprintf(
		"feature RPCs: %d -> %d (%.2fx fewer), logits bitwise identical across %d inferences",
		direct, cached, float64(direct)/float64(cached), rows[0].Inferences))
	return r, rows, nil
}

// featRPCCount sums MethodFetchFeatures requests over every storage server
// of the cluster (replica servers included, when present).
func featRPCCount(c *cluster.Cluster) int64 {
	var n int64
	for _, s := range c.Servers {
		n += s.RPCStats().Requests[rpc.MethodFetchFeatures]
	}
	for _, machine := range c.ReplicaServers {
		for _, s := range machine {
			n += s.RPCStats().Requests[rpc.MethodFetchFeatures]
		}
	}
	return n
}

// compareLogitsExact asserts two passes served bitwise-identical logits.
func compareLogitsExact(want, got [][]float32) error {
	if len(want) != len(got) {
		return fmt.Errorf("logit sets differ in length: %d vs %d", len(want), len(got))
	}
	for q := range want {
		if len(want[q]) != len(got[q]) {
			return fmt.Errorf("inference %d: %d logits vs %d", q, len(want[q]), len(got[q]))
		}
		for j := range want[q] {
			if math.Float32bits(want[q][j]) != math.Float32bits(got[q][j]) {
				return fmt.Errorf("inference %d logit %d: %v vs %v (not bitwise identical)", q, j, want[q][j], got[q][j])
			}
		}
	}
	return nil
}
