package experiments

import (
	"strings"
	"testing"
)

// quickParams keep every experiment fast enough for the regular test run.
func quickParams() Params {
	return Params{Scale: 32, Warmup: 0, Repeats: 1, Queries: 4}
}

func TestTable1(t *testing.T) {
	p := quickParams()
	r, rows := Table1(p)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(r.String(), "twitter-sim") {
		t.Fatalf("report missing dataset: %s", r)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	p := quickParams()
	_, rows, err := Table2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// The paper's headline ordering: PPR Engine >> PyTorch Tensor.
		if row.PPREngine <= row.PyTorchTensor {
			t.Fatalf("%s: engine %.1f not faster than tensor %.1f",
				row.Dataset, row.PPREngine, row.PyTorchTensor)
		}
		// The engine-vs-SpMM position is scale-dependent: compiled power
		// iteration over a test-scale graph is cheap, whereas the paper's
		// graphs make any whole-graph method slow. Recorded, not asserted
		// (see EXPERIMENTS.md "honest divergences").
		if row.DGLSpMM <= 0 {
			t.Fatalf("%s: missing SpMM row", row.Dataset)
		}
	}
}

func TestAccuracyClaim(t *testing.T) {
	p := quickParams()
	_, rows, err := Accuracy(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Top100 < 0.9 {
			t.Fatalf("%s: top-100 precision %.3f below 0.9", row.Dataset, row.Top100)
		}
		// The FP-vs-PI speed ratio is scale-dependent (FP's locality only
		// pays off on graphs much larger than the tiny test scale), so it
		// is recorded but not asserted here; see EXPERIMENTS.md.
		if row.FPSpeedup <= 0 {
			t.Fatalf("%s: missing FP/PI ratio", row.Dataset)
		}
	}
}

func TestTable3LadderImproves(t *testing.T) {
	p := quickParams()
	_, rows, err := Table3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Batch must beat Single decisively; the full ladder must beat Single.
	if rows[1].Speedup < 2 {
		t.Fatalf("+Batch speedup only %.1fx", rows[1].Speedup)
	}
	if rows[3].Speedup < rows[1].Speedup*0.8 {
		t.Fatalf("ladder regressed: %+v", rows)
	}
}

func TestFig5aRuns(t *testing.T) {
	p := quickParams()
	p.Queries = 2
	_, rows, err := Fig5a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Remote fraction grows with machine count (more partitions => more
	// cross-shard edges), per the paper's observation.
	for d := 0; d < 4; d++ {
		r2 := rows[d*3].RemoteFrac
		r8 := rows[d*3+2].RemoteFrac
		if r8 < r2 {
			t.Fatalf("dataset %s: remote fraction fell from %.3f (2) to %.3f (8)",
				rows[d*3].Dataset, r2, r8)
		}
	}
}

func TestFig6PushShare(t *testing.T) {
	p := quickParams()
	_, rows, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// For every dataset the engine's per-query push time must undercut the
	// tensor baseline's (the paper reports 5-16x).
	for i := 0; i < len(rows); i += 2 {
		tensor, engine := rows[i], rows[i+1]
		if engine.Push >= tensor.Push {
			t.Fatalf("%s: engine push %v not faster than tensor push %v",
				engine.Dataset, engine.Push, tensor.Push)
		}
	}
}

func TestIntroComparison(t *testing.T) {
	p := quickParams()
	_, rows, err := Intro(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fp, rw := rows[0], rows[1]
	if fp.EngineSpeedup <= 1 {
		t.Fatalf("forward push speedup %.2fx", fp.EngineSpeedup)
	}
	// The paper's structural claim: FP gains far exceed RW gains.
	if fp.EngineSpeedup < 2*rw.EngineSpeedup {
		t.Fatalf("FP speedup %.1fx should dwarf RW speedup %.1fx",
			fp.EngineSpeedup, rw.EngineSpeedup)
	}
}

func TestPartQualityOrdering(t *testing.T) {
	p := quickParams()
	_, rows, err := PartQuality(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	minCut, hash := rows[0], rows[2]
	if minCut.EdgeCut >= hash.EdgeCut {
		t.Fatalf("min-cut edge cut %d not below hash %d", minCut.EdgeCut, hash.EdgeCut)
	}
	if minCut.RemoteFrac >= hash.RemoteFrac {
		t.Fatalf("min-cut remote frac %.3f not below hash %.3f", minCut.RemoteFrac, hash.RemoteFrac)
	}
}

func TestFig7LossDecreases(t *testing.T) {
	p := quickParams()
	_, stats, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 2 {
		t.Fatalf("stats = %v", stats)
	}
	if !(stats[len(stats)-1].MeanLoss < stats[0].MeanLoss) {
		t.Fatalf("loss did not decrease: %v", stats)
	}
}

func TestFig5bRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := quickParams()
	p.Queries = 4
	_, rows, err := Fig5b(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*4*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Seconds <= 0 {
			t.Fatalf("non-positive time: %+v", row)
		}
	}
}

func TestHaloAblation(t *testing.T) {
	p := quickParams()
	_, rows, err := Halo(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	plain, cached := rows[0], rows[1]
	if cached.RemoteFrac >= plain.RemoteFrac {
		t.Fatalf("halo rows did not reduce remote traffic: %.3f vs %.3f",
			cached.RemoteFrac, plain.RemoteFrac)
	}
	if cached.HaloFrac <= 0 || plain.HaloFrac != 0 {
		t.Fatalf("halo fractions wrong: %+v", rows)
	}
	if cached.MemoryBytes <= plain.MemoryBytes {
		t.Fatalf("halo rows should cost memory: %d vs %d",
			cached.MemoryBytes, plain.MemoryBytes)
	}
}

func TestEpsSweepMonotone(t *testing.T) {
	p := quickParams()
	_, rows, err := EpsSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tighter eps touches at least as many nodes and is never better than
	// ~equal throughput; precision is non-decreasing (within noise).
	for i := 1; i < len(rows); i++ {
		if rows[i].Touched < rows[i-1].Touched {
			t.Fatalf("touched not monotone: %+v", rows)
		}
		if rows[i].Top100+0.05 < rows[i-1].Top100 {
			t.Fatalf("precision regressed sharply: %+v", rows)
		}
	}
	if rows[len(rows)-1].Top100 < 0.9 {
		t.Fatalf("tightest eps precision %.3f", rows[len(rows)-1].Top100)
	}
}

func TestNetLatencySweep(t *testing.T) {
	p := quickParams()
	p.Queries = 6
	p.Repeats = 2
	_, rows, err := NetLatency(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A 10ms link must hurt throughput unambiguously.
	if rows[2].Throughput >= rows[0].Throughput {
		t.Fatalf("10ms latency did not reduce throughput: %+v", rows)
	}
	// On this single-core host overlap has almost no local work to hide,
	// so its benefit is within scheduling noise; assert only that it is
	// not catastrophically worse. The positive overlap gain is reported
	// (not asserted) by the netlatency experiment at larger scales.
	if rows[2].OverlapTP < rows[2].Throughput*0.6 {
		t.Fatalf("overlap collapsed under latency: %+v", rows[2])
	}
}

func TestModelsComparison(t *testing.T) {
	p := quickParams()
	_, rows, err := Models(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Every architecture must learn the synthetic task well beyond
		// random (0.25 for 4 classes).
		if row.HeldOut < 0.4 {
			t.Fatalf("%s: held-out accuracy %.3f", row.Model, row.HeldOut)
		}
	}
}

func TestCacheBenchSecondPassCheaper(t *testing.T) {
	p := quickParams()
	p.Queries = 8
	_, rows, err := CacheBench(p, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (two passes x two budgets)", len(rows))
	}
	off1, off2, on1, on2 := rows[0], rows[1], rows[2], rows[3]
	// Cache disabled: both passes pay full price and report no cache stats —
	// the ablation baseline is untouched.
	if off1.CacheHits != 0 || off2.CacheHits != 0 || off1.CacheCoalesced != 0 {
		t.Fatalf("cache-off passes report cache stats: %+v %+v", off1, off2)
	}
	if off2.RemoteRows == 0 || off2.BytesSent == 0 {
		t.Fatalf("cache-off second pass did no remote work: %+v", off2)
	}
	// Cache enabled: the repeated pass fetches strictly less over the wire.
	if on2.RemoteRows >= on1.RemoteRows || on2.RemoteRows >= off2.RemoteRows {
		t.Fatalf("cached second pass RemoteRows not lower: on1=%d on2=%d off2=%d",
			on1.RemoteRows, on2.RemoteRows, off2.RemoteRows)
	}
	if on2.BytesSent >= off2.BytesSent {
		t.Fatalf("cached second pass bytes not lower: %d vs %d", on2.BytesSent, off2.BytesSent)
	}
	if on2.CacheHits == 0 {
		t.Fatal("cached second pass recorded no hits")
	}
}

func TestTraceOverheadRuns(t *testing.T) {
	p := quickParams()
	p.Queries = 2
	_, rows, err := TraceOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (rates 0, 0.01, 1)", len(rows))
	}
	// Rate 0 records nothing; rate 1 records every query's spans. Overhead
	// numbers are noise-dominated at this scale, so only span counts are
	// asserted.
	if rows[0].Spans != 0 {
		t.Fatalf("rate 0 recorded %d spans", rows[0].Spans)
	}
	if rows[2].Spans == 0 {
		t.Fatal("rate 1 recorded no spans")
	}
	if rows[2].Throughput <= 0 {
		t.Fatalf("rate 1 throughput = %v", rows[2].Throughput)
	}
}
