// Package experiments implements every table and figure of the paper's
// evaluation section as a reusable function, shared by cmd/pprbench and the
// root-level benchmarks. Each experiment returns structured rows plus a
// formatted report.
//
// Scale: experiments accept a downscale factor applied to the dataset
// stand-ins (1 = the sizes in DESIGN.md §6; 8 or 16 for quick runs). The
// shapes the paper reports — ordering of methods, scaling trends, breakdown
// proportions — are stable across scales; absolute numbers are not.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/datasets"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// Params are the global experiment knobs (paper §4.1 defaults).
type Params struct {
	Scale   int // dataset downscale factor (1 = full stand-in size)
	Warmup  int // warm-up runs before measuring
	Repeats int // measured runs, averaged
	Queries int // SSPPR queries per machine for throughput runs
}

// DefaultParams mirror the paper where feasible: 4 warm-ups, averaging,
// 128-query batches. Repeats defaults to 3 (the paper uses 10) to keep the
// full suite under a few minutes; raise it for tighter confidence.
func DefaultParams() Params {
	return Params{Scale: 1, Warmup: 1, Repeats: 3, Queries: 32}
}

// specs returns the four dataset stand-ins at the requested scale.
func (p Params) specs() []datasets.Spec {
	out := make([]datasets.Spec, len(datasets.Specs))
	for i, s := range datasets.Specs {
		if p.Scale > 1 {
			out[i] = s.Scaled(p.Scale)
		} else {
			out[i] = s
		}
	}
	return out
}

// Spec returns the (possibly scaled) stand-in by base name.
func (p Params) Spec(name string) (datasets.Spec, error) {
	s, err := datasets.Lookup(name)
	if err != nil {
		return s, err
	}
	if p.Scale > 1 {
		s = s.Scaled(p.Scale)
	}
	return s, nil
}

// --- partition cache: partitioning dominates preprocessing time, and many
// experiments reuse the same (dataset, k) split. ---

type partKey struct {
	name string
	k    int
	kind cluster.PartitionKind
}

var (
	partMu    sync.Mutex
	partCache = map[partKey]partition.Assignment{}
)

// assignmentFor partitions g (cached by dataset name and k).
func assignmentFor(name string, g *graph.Graph, k int, kind cluster.PartitionKind) (partition.Assignment, error) {
	key := partKey{name, k, kind}
	partMu.Lock()
	defer partMu.Unlock()
	if a, ok := partCache[key]; ok {
		return a, nil
	}
	var a partition.Assignment
	var err error
	switch kind {
	case cluster.PartitionHash:
		a = partition.HashPartition(g.NumNodes, k)
	case cluster.PartitionLDG:
		a = partition.LDGPartition(g, k, 0.05)
	default:
		a, err = partition.Partition(g, k, partition.Options{Seed: 42})
		if err != nil {
			return nil, err
		}
	}
	partCache[key] = a
	return a, nil
}

// buildCluster assembles a cluster from a cached assignment.
func buildCluster(spec datasets.Spec, k, procs int, kind cluster.PartitionKind) (*cluster.Cluster, error) {
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, k, kind)
	if err != nil {
		return nil, err
	}
	shards, loc, err := shard.Build(g, a, k)
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{NumMachines: k, ProcsPerMachine: procs, Partitioner: kind}
	return cluster.NewFromShards(shards, loc, opts, partition.Evaluate(g, a))
}

// measuredRun repeats a runnable with warm-ups and returns mean throughput
// plus the final run's result (for breakdowns).
func measuredRun(p Params, run func() (cluster.RunResult, error)) (float64, cluster.RunResult, error) {
	for i := 0; i < p.Warmup; i++ {
		if _, err := run(); err != nil {
			return 0, cluster.RunResult{}, err
		}
	}
	var sum float64
	var last cluster.RunResult
	n := p.Repeats
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		res, err := run()
		if err != nil {
			return 0, cluster.RunResult{}, err
		}
		sum += res.Throughput
		last = res
	}
	return sum / float64(n), last, nil
}

// Report is a formatted experiment output.
type Report struct {
	Title string
	Lines []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	b.WriteString("== " + r.Title + " ==\n")
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
