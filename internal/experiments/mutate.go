package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// MutateRow is one measured pass of the streaming-mutation benchmark.
type MutateRow struct {
	Pass      string  `json:"pass"`
	Queries   int     `json:"queries"`
	Mutations int     `json:"mutations"`
	Epoch     uint64  `json:"epoch"`
	Hits      int     `json:"hits"`     // incremental answers served from cache unchanged
	Repushes  int     `json:"repushes"` // incremental answers re-pushed from the mutated frontier
	Fulls     int     `json:"fulls"`    // incremental answers that fell back to a full run
	TotalMs   float64 `json:"total_ms"`
	PerQryMs  float64 `json:"per_query_ms"`
	Speedup   float64 `json:"speedup_vs_full"` // full-pass wall / incremental-pass wall
	// CompactPauseMs is the longest write-lock pause any machine's compactor
	// held while folding the round's deltas (the "compaction pause" cost).
	CompactPauseMs float64 `json:"compact_pause_ms"`
	RowsBaked      int     `json:"rows_baked"`
}

// MutateBench measures the streaming-mutation tier (DESIGN.md §5l) on
// twitter-sim: after an answered query set, a localized mutation burst lands
// through the coordinator, and the same queries are re-answered at the new
// epoch two ways — incrementally (cached residual state, re-push from the
// mutated frontier) and from scratch. The headline number is the incremental
// speedup; the acceptance bar is >= 2x on a localized burst. Each round also
// compacts every machine's store and reports the longest write-lock pause.
//
// Correctness is asserted inline: an incremental answer served from
// unchanged cache ("hit") must be bitwise identical to the fresh full run at
// the same epoch (DeterministicPop pins float order on both sides).
func MutateBench(p Params) (Report, []MutateRow, error) {
	const machines = 4
	const queriesPerMachine = 8
	const burstEdges = 24
	r := Report{Title: fmt.Sprintf("Streaming mutations on twitter-sim (%d machines, %d queries, localized %d-edge bursts)",
		machines, machines*queriesPerMachine, burstEdges)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-12s %8s %5s %7s %6s %9s %8s %9s %11s %9s",
		"Pass", "Queries", "Hits", "Repush", "Full", "Total ms", "ms/q", "Speedup", "Compact ms", "Baked"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	c, err := cluster.NewFromShards(shards, loc, cluster.Options{
		NumMachines: machines, ProcsPerMachine: 1, Mutable: true,
	}, partition.Evaluate(g, a))
	if err != nil {
		return r, nil, err
	}
	defer c.Close()

	// Bitwise comparability between the incremental and full passes needs
	// the deterministic engine (same float order on both sides).
	cfg := core.DefaultConfig()
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1

	qs := c.EvenQuerySet(queriesPerMachine, 71)
	nq := countQueries(qs)
	caches := make([]*core.ResidCache, machines)
	for m := range caches {
		caches[m] = core.NewResidCache(queriesPerMachine)
	}
	const topK = 32

	// incrementalPass answers every query through its machine's residual
	// cache (machines concurrently, a machine's queries sequentially — the
	// serving shape) and tallies the mode each answer took.
	incrementalPass := func() (time.Duration, [][]core.ScoredNode, []string, *MutateRow, error) {
		out := make([][]core.ScoredNode, nq)
		modes := make([]string, nq)
		errs := make([]error, nq)
		var wg sync.WaitGroup
		start := time.Now()
		base := 0
		for m := range qs {
			wg.Add(1)
			go func(m, base int) {
				defer wg.Done()
				st := c.Storages[m][0]
				for i, src := range qs[m] {
					top, _, ic, err := core.RunSSPPRIncrementalTopK(context.Background(), st, caches[m], src, topK, cfg, nil)
					out[base+i], modes[base+i], errs[base+i] = top, ic.Mode, err
				}
			}(m, base)
			base += len(qs[m])
		}
		wg.Wait()
		wall := time.Since(start)
		row := &MutateRow{}
		for i := range errs {
			if errs[i] != nil {
				return 0, nil, nil, nil, errs[i]
			}
			switch modes[i] {
			case "hit":
				row.Hits++
			case "repush":
				row.Repushes++
			default:
				row.Fulls++
			}
		}
		return wall, out, modes, row, nil
	}

	// fullPass answers the same queries from scratch at the current epoch.
	fullPass := func() (time.Duration, [][]core.ScoredNode, error) {
		out := make([][]core.ScoredNode, nq)
		errs := make([]error, nq)
		var wg sync.WaitGroup
		start := time.Now()
		base := 0
		for m := range qs {
			wg.Add(1)
			go func(m, base int) {
				defer wg.Done()
				st := c.Storages[m][0]
				for i, src := range qs[m] {
					top, _, err := core.RunSSPPRTopK(context.Background(), st, src, topK, cfg, nil)
					out[base+i], errs[base+i] = top, err
				}
			}(m, base)
			base += len(qs[m])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, nil, err
			}
		}
		return time.Since(start), out, nil
	}

	// burst applies a localized batch: edges among a contiguous window of
	// global IDs, sliding per round so every round mutates fresh rows.
	n := int64(g.NumNodes)
	burst := func(round int) (uint64, error) {
		lo := (n / 2) + int64(round*burstEdges)%(n/4)
		muts := make([]delta.Mutation, 0, burstEdges)
		for i := 0; i < burstEdges; i++ {
			muts = append(muts, delta.Mutation{
				Op:     delta.OpAddEdge,
				Src:    graph.NodeID(lo + int64(i)%32),
				Dst:    graph.NodeID(lo + int64(i*7+1)%32),
				Weight: 0.5,
			})
		}
		return c.Mutate(context.Background(), muts)
	}

	emit := func(row MutateRow) {
		speedup, compact := "-", "-"
		if row.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
		}
		if row.CompactPauseMs > 0 {
			compact = fmt.Sprintf("%.3f", row.CompactPauseMs)
		}
		r.Lines = append(r.Lines, fmt.Sprintf("%-12s %8d %5d %7d %6d %9.1f %8.2f %9s %11s %9d",
			row.Pass, row.Queries, row.Hits, row.Repushes, row.Fulls,
			row.TotalMs, row.PerQryMs, speedup, compact, row.RowsBaked))
	}

	var rows []MutateRow
	// Round 0 — cold: every query runs full and seeds its machine's cache.
	coldWall, _, _, coldRow, err := incrementalPass()
	if err != nil {
		return r, nil, err
	}
	coldRow.Pass, coldRow.Queries = "cold", nq
	coldRow.TotalMs = float64(coldWall.Microseconds()) / 1e3
	coldRow.PerQryMs = coldRow.TotalMs / float64(nq)
	rows = append(rows, *coldRow)
	emit(*coldRow)

	repeats := p.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for round := 0; round < repeats; round++ {
		epoch, err := burst(round)
		if err != nil {
			return r, nil, err
		}
		incWall, incTop, modes, row, err := incrementalPass()
		if err != nil {
			return r, nil, err
		}
		fullWall, fullTop, err := fullPass()
		if err != nil {
			return r, nil, err
		}
		// Footprint-disjoint ("hit") and fallback ("full") answers must equal
		// the fresh run bitwise — the benchmark doubles as the correctness
		// oracle. Re-pushed answers agree at approximation level only and are
		// covered by the integration tests.
		for q := range incTop {
			if modes[q] == "repush" {
				continue
			}
			if len(incTop[q]) != len(fullTop[q]) {
				return r, nil, fmt.Errorf("mutate: query %d top-K lengths differ at epoch %d", q, epoch)
			}
			for i := range incTop[q] {
				if incTop[q][i] != fullTop[q][i] {
					return r, nil, fmt.Errorf("mutate: query %d (%s) rank %d diverged at epoch %d: %+v vs %+v",
						q, modes[q], i, epoch, incTop[q][i], fullTop[q][i])
				}
			}
		}
		var pause time.Duration
		baked := 0
		for _, st := range c.Deltas {
			cs := st.Compact()
			if cs.Pause > pause {
				pause = cs.Pause
			}
			baked += cs.RowsBaked
		}
		row.Pass = fmt.Sprintf("round-%d", round+1)
		row.Queries = nq
		row.Mutations = burstEdges
		row.Epoch = epoch
		row.TotalMs = float64(incWall.Microseconds()) / 1e3
		row.PerQryMs = row.TotalMs / float64(nq)
		row.Speedup = float64(fullWall) / float64(incWall)
		row.CompactPauseMs = float64(pause.Nanoseconds()) / 1e6
		row.RowsBaked = baked
		rows = append(rows, *row)
		emit(*row)
	}
	return r, rows, nil
}
