package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/chaos"
	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// OverloadRow is one pass of the overload/admission/hedging benchmark.
type OverloadRow struct {
	Pass      string
	Queries   int
	Completed int
	Timeouts  int
	Shed      int
	// MeanShedMicros is the mean wall time a shed query spent before its
	// typed rejection — the "fail in microseconds, not after the deadline"
	// claim, measured.
	MeanShedMicros float64
	// MeanTimeoutMs is the mean wall time a timed-out query burned before
	// giving up (≈ the full deadline: the cost admission control avoids).
	MeanTimeoutMs float64
	P50Ms         float64
	P99Ms         float64
	Hedges        int64
	HedgeWins     int64
	Failovers     int64
	Throughput    float64
	// ScoresMatch reports the hedged pass's deterministic score maps were
	// bitwise-checked against the unhedged pass.
	ScoresMatch bool
}

// latencyStats is one pass's per-query outcome accounting.
type latencyStats struct {
	completed []time.Duration // wall time of successful queries
	shed      []time.Duration // wall time until a typed admission shed
	timedOut  []time.Duration // wall time until a deadline/cancel abort
	failed    int             // other failures
	wall      time.Duration
}

func (s *latencyStats) percentileMs(p float64) float64 {
	if len(s.completed) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.completed...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func meanMicros(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return float64(sum) / float64(len(ds)) / float64(time.Microsecond)
}

// timedRun executes qs like RunSSPPRBatch (machine m's queries round-robin
// over its procs, each proc sequential) but records every query's individual
// wall time and outcome class — the overload experiment is about latency
// distributions, which the batch rollup does not keep.
func timedRun(c *cluster.Cluster, qs [][]int32, cfg core.Config) latencyStats {
	procs := c.Opts.ProcsPerMachine
	accs := make([][]latencyStats, len(qs))
	var wg sync.WaitGroup
	start := time.Now()
	for m := range qs {
		accs[m] = make([]latencyStats, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(m, p int) {
				defer wg.Done()
				st := c.Storages[m][p]
				a := &accs[m][p]
				for i := p; i < len(qs[m]); i += procs {
					qStart := time.Now()
					_, _, err := core.RunSSPPR(context.Background(), st, qs[m][i], cfg, nil)
					dur := time.Since(qStart)
					switch {
					case err == nil:
						a.completed = append(a.completed, dur)
					case errors.Is(err, admit.ErrShed):
						a.shed = append(a.shed, dur)
					case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
						a.timedOut = append(a.timedOut, dur)
					default:
						a.failed++
					}
				}
			}(m, p)
		}
	}
	wg.Wait()
	var out latencyStats
	out.wall = time.Since(start)
	for m := range accs {
		for p := range accs[m] {
			out.completed = append(out.completed, accs[m][p].completed...)
			out.shed = append(out.shed, accs[m][p].shed...)
			out.timedOut = append(out.timedOut, accs[m][p].timedOut...)
			out.failed += accs[m][p].failed
		}
	}
	return out
}

// OverloadBench drives a 4-machine cluster past saturation and measures how
// admission control and hedged fetches change the failure mode.
//
// Part 1 — admission (DESIGN.md §5k): the same past-saturation batch (far
// more concurrent queries than cores, every query under a deadline) runs on
// two identical clusters. Without admission every query executes, all of
// them slow down together, and the losers burn their full deadline before
// failing. With a per-machine in-flight cap and a small wait queue, excess
// queries are shed in microseconds with a typed error while the admitted
// ones finish well inside their budget — the overload cliff becomes a slope.
//
// Part 2 — hedging: with R=2 replication and the fault injector delaying
// one machine's serving sockets ("slow but not dead": probes still succeed,
// breakers stay closed, failover never triggers), the same batch runs with
// and without hedged fetches. The hedge fires after hedgeDelay and the
// replica's fast response wins; deterministic score maps must match the
// unhedged pass bitwise, hedge wins must not be double-counted as failovers.
//
// maxInFlight/maxQueue <= 0 pick core-count-derived defaults; hedgeDelay <= 0
// means 1ms.
func OverloadBench(p Params, maxInFlight, maxQueue int, hedgeDelay time.Duration) (Report, []OverloadRow, error) {
	const machines = 4
	cores := runtime.NumCPU()
	// Oversubscribe 3x the cores so the no-admission pass genuinely
	// saturates: per-query latency inflates with concurrency and deadlines
	// start expiring late.
	procs := maxInt(8, 3*cores/machines)
	if maxInFlight <= 0 {
		// Cap admitted concurrency around half the cores across the cluster:
		// admitted queries run near solo speed.
		maxInFlight = maxInt(1, cores/(2*machines))
	}
	if maxQueue <= 0 {
		maxQueue = 2 * maxInFlight
	}
	if hedgeDelay <= 0 {
		hedgeDelay = time.Millisecond
	}
	cfg := core.DefaultConfig()
	cfg.Eps = 1e-5

	r := Report{Title: fmt.Sprintf("Serving under overload on twitter-sim (%d machines x %d procs on %d cores; admit cap=%d queue=%d; hedge delay=%v)",
		machines, procs, cores, maxInFlight, maxQueue, hedgeDelay)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-12s %7s %9s %8s %6s %9s %10s %8s %8s %7s %6s %9s",
		"Pass", "Queries", "Completed", "Timeout", "Shed", "Shed(µs)", "ToFail(ms)", "p50(ms)", "p99(ms)", "Hedges", "Wins", "Queries/s"))

	spec, err := p.Spec("twitter-sim")
	if err != nil {
		return r, nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return r, nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return r, nil, err
	}
	quality := partition.Evaluate(g, a)

	var rows []OverloadRow
	emit := func(row OverloadRow) {
		rows = append(rows, row)
		match := "-"
		if row.ScoresMatch {
			match = " scores exact"
		}
		r.Lines = append(r.Lines, fmt.Sprintf("%-12s %7d %9d %8d %6d %9.1f %10.1f %8.2f %8.2f %7d %6d %9.1f%s",
			row.Pass, row.Queries, row.Completed, row.Timeouts, row.Shed,
			row.MeanShedMicros, row.MeanTimeoutMs, row.P50Ms, row.P99Ms,
			row.Hedges, row.HedgeWins, row.Throughput, match))
	}

	// --- Part 1: admission control past saturation ---

	// Calibrate the deadline on an unloaded cluster: run a few queries
	// sequentially and take the median as the solo service time. The batch
	// deadline is 8x that — generous for an admitted query, hopeless once
	// tens of queries contend for the same cores.
	calib, err := cluster.NewFromShards(shards, loc, cluster.Options{
		NumMachines: machines, ProcsPerMachine: 1,
	}, quality)
	if err != nil {
		return r, nil, err
	}
	var solo []time.Duration
	calibQs := calib.EvenQuerySet(4, 11)
	for m := range calibQs {
		for _, src := range calibQs[m] {
			start := time.Now()
			if _, _, err := core.RunSSPPR(context.Background(), calib.Storages[m][0], src, cfg, nil); err != nil {
				calib.Close()
				return r, nil, err
			}
			solo = append(solo, time.Since(start))
		}
	}
	calib.Close()
	sort.Slice(solo, func(i, j int) bool { return solo[i] < solo[j] })
	soloP50 := solo[len(solo)/2]
	deadline := 8 * soloP50
	if deadline < 20*time.Millisecond {
		deadline = 20 * time.Millisecond
	}
	r.Lines = append(r.Lines, fmt.Sprintf("calibration: solo p50 %.2fms -> per-query deadline %v", float64(soloP50)/float64(time.Millisecond), deadline))

	loadCfg := cfg
	loadCfg.QueryTimeout = deadline
	var qs [][]int32
	for _, pass := range []string{"overload", "admit"} {
		opts := cluster.Options{NumMachines: machines, ProcsPerMachine: procs}
		if pass == "admit" {
			opts.AdmitMaxInFlight = maxInFlight
			opts.AdmitMaxQueue = maxQueue
		}
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		if qs == nil {
			qs = c.EvenQuerySet(minInt(p.Queries, procs*2), 71)
		}
		if pass == "admit" {
			// Warm the controllers' p50 estimate (deadline feasibility only
			// engages after MinSamples completions) the way a live server
			// warms it: a light trickle of admitted queries.
			warmQs := c.EvenQuerySet(10, 13)
			warmCfg := cfg
			timedRun(c, warmQs, warmCfg)
		}
		st := timedRun(c, qs, loadCfg)
		row := OverloadRow{
			Pass:           pass,
			Queries:        countQueries(qs),
			Completed:      len(st.completed),
			Timeouts:       len(st.timedOut),
			Shed:           len(st.shed),
			MeanShedMicros: meanMicros(st.shed),
			MeanTimeoutMs:  meanMicros(st.timedOut) / 1e3,
			P50Ms:          st.percentileMs(0.50),
			P99Ms:          st.percentileMs(0.99),
			Throughput:     float64(len(st.completed)) / st.wall.Seconds(),
		}
		if pass == "admit" {
			snap := c.AdmitStats()
			if snap.Shed() == 0 {
				c.Close()
				return r, nil, fmt.Errorf("overload: admission pass shed nothing although concurrency (%d) far exceeds the cap (%d)", machines*procs, machines*maxInFlight)
			}
			if len(st.shed) > 0 && time.Duration(row.MeanShedMicros*float64(time.Microsecond)) > deadline/4 {
				c.Close()
				return r, nil, fmt.Errorf("overload: sheds took %.0fµs on average — not an early rejection against a %v deadline", row.MeanShedMicros, deadline)
			}
			if len(st.completed) == 0 {
				c.Close()
				return r, nil, fmt.Errorf("overload: admission pass completed no queries")
			}
		}
		c.Close()
		emit(row)
	}

	// --- Part 2: hedged fetches against a slow replica ---

	// The victim is slow but NOT dead: its sockets gain a per-IO delay well
	// under the probe timeout, so health probes keep succeeding, breakers
	// stay closed, and the failover path never engages. Only hedging helps.
	const victim = 1
	const ioDelay = 3 * time.Millisecond
	hedgeProcs := 2
	hedgeQs := [][]int32(nil)
	detCfg := cfg
	detCfg.DeterministicPop = true
	detCfg.PushWorkers = 1
	var slowScores []map[int32]float64
	var slowMean time.Duration
	for _, pass := range []string{"slow", "slow+hedge"} {
		inj := chaos.New(777)
		inj.SetPlan(victim, chaos.Plan{Delay: ioDelay})
		opts := cluster.Options{
			NumMachines: machines, ProcsPerMachine: hedgeProcs,
			Replicas:      2,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  time.Second,
			Chaos:         inj,
		}
		if pass == "slow+hedge" {
			opts.Hedge = true
			opts.HedgeDelay = hedgeDelay
		}
		c, err := cluster.NewFromShards(shards, loc, opts, quality)
		if err != nil {
			return r, nil, err
		}
		if hedgeQs == nil {
			hedgeQs = c.EvenQuerySet(minInt(p.Queries, 8), 29)
		}
		st := timedRun(c, hedgeQs, cfg)
		if st.failed > 0 || len(st.timedOut) > 0 {
			c.Close()
			return r, nil, fmt.Errorf("overload: %s pass had %d failures and %d timeouts", pass, st.failed, len(st.timedOut))
		}
		scores, err := concurrentScores(c, hedgeQs, detCfg)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		hs := c.HedgeStats()
		ha := c.HAStats()
		row := OverloadRow{
			Pass:       pass,
			Queries:    countQueries(hedgeQs),
			Completed:  len(st.completed),
			P50Ms:      st.percentileMs(0.50),
			P99Ms:      st.percentileMs(0.99),
			Hedges:     hs.Hedges,
			HedgeWins:  hs.Wins,
			Failovers:  ha.Failovers,
			Throughput: float64(len(st.completed)) / st.wall.Seconds(),
		}
		var mean time.Duration
		for _, d := range st.completed {
			mean += d
		}
		mean /= time.Duration(len(st.completed))
		if pass == "slow" {
			slowScores = scores
			slowMean = mean
		} else {
			if err := compareScores(slowScores, scores); err != nil {
				c.Close()
				return r, nil, fmt.Errorf("overload: hedged scores diverged: %w", err)
			}
			row.ScoresMatch = true
			if hs.Wins == 0 {
				c.Close()
				return r, nil, fmt.Errorf("overload: no hedge wins although machine %d delays every IO by %v (hedge delay %v)", victim, ioDelay, hedgeDelay)
			}
			if ha.Failovers != 0 {
				c.Close()
				return r, nil, fmt.Errorf("overload: %d failovers recorded in a slow-but-alive scenario — hedge wins are being double-counted", ha.Failovers)
			}
			if mean >= slowMean {
				c.Close()
				return r, nil, fmt.Errorf("overload: hedging did not help: mean %v vs %v unhedged", mean, slowMean)
			}
			r.Lines = append(r.Lines, fmt.Sprintf("hedging: mean %.2fms -> %.2fms (%.2fx), %d/%d hedges won, 0 failovers, scores bitwise-identical",
				float64(slowMean)/float64(time.Millisecond), float64(mean)/float64(time.Millisecond),
				float64(slowMean)/float64(mean), hs.Wins, hs.Hedges))
		}
		c.Close()
		emit(row)
	}
	if len(rows) >= 2 {
		r.Lines = append(r.Lines, fmt.Sprintf(
			"degradation: without admission %d/%d queries burned ~%.0fms each before failing; with it %d sheds answered in ~%.0fµs and completions stayed at p99 %.1fms",
			rows[0].Timeouts, rows[0].Queries, rows[0].MeanTimeoutMs,
			rows[1].Shed, rows[1].MeanShedMicros, rows[1].P99Ms))
	}
	return r, rows, nil
}
