package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/datasets"
	"pprengine/internal/graph"
	"pprengine/internal/ppr"
)

// Table1 reproduces the dataset-statistics table.
func Table1(p Params) (Report, []datasets.Table1Row) {
	rows := datasets.Table1(p.specs())
	r := Report{Title: "Table 1: Datasets (scaled stand-ins)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %-18s %10s %12s %8s %8s", "Name", "StandsIn", "|V|", "|E|", "d_avg", "d_max"))
	for _, row := range rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-18s %-18s %10d %12d %8.1f %8d",
			row.Name, row.StandsIn, row.V, row.E, row.DAvg, row.DMax))
	}
	return r, rows
}

// Table2Row is one dataset's throughput comparison (queries/second).
type Table2Row struct {
	Dataset       string
	DGLSpMM       float64 // ideal-x4 single-machine power iteration
	PyTorchTensor float64 // distributed tensor forward push
	PPREngine     float64 // the engine
}

// Table2 reproduces the headline throughput comparison: a 4-machine
// scenario with 3 compute processes per machine. Power iteration runs
// single-machine and is multiplied by 4 (the paper's "ideal case"), using
// tolerance 1e-10; the forward-push methods use α=0.462, ε=1e-6.
func Table2(p Params) (Report, []Table2Row, error) {
	const machines, procs = 4, 3
	cfg := core.DefaultConfig()
	var rows []Table2Row
	r := Report{Title: "Table 2: Throughput (queries/s), 4 machines x 3 procs"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %14s %16s %14s %10s %10s",
		"Dataset", "DGL SpMM", "PyTorch Tensor", "PPR Engine", "Eng/Tensor", "Eng/SpMM"))
	for _, spec := range p.specs() {
		g := spec.GenerateCached()
		dgl := powerIterationThroughput(g, machines, minInt(p.Queries, 8), 4321)

		c, err := buildCluster(spec, machines, procs, cluster.PartitionMinCut)
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(p.Queries, 7)
		// The tensor baseline is orders of magnitude slower; run it with a
		// reduced query count and identical per-query accounting.
		qsTensor := c.EvenQuerySet(minInt(p.Queries, 4), 7)
		tensorTP, _, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qsTensor, core.TensorBaselineConfig(), cluster.EngineTensor)
		})
		if err != nil {
			c.Close()
			return r, nil, err
		}
		engineTP, _, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		})
		c.Close()
		if err != nil {
			return r, nil, err
		}
		row := Table2Row{Dataset: spec.Name, DGLSpMM: dgl, PyTorchTensor: tensorTP, PPREngine: engineTP}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-18s %14.3f %16.3f %14.1f %9.1fx %9.1fx",
			row.Dataset, row.DGLSpMM, row.PyTorchTensor, row.PPREngine,
			row.PPREngine/row.PyTorchTensor, row.PPREngine/row.DGLSpMM))
	}
	return r, rows, nil
}

// powerIterationThroughput measures single-machine power iteration
// (tol=1e-10) and scales by the machine count, the paper's idealized "DGL
// SpMM" number.
func powerIterationThroughput(g *graph.Graph, machines, queries int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < queries; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes))
		ppr.PowerIteration(g, src, 0.462, 1e-10, 500)
	}
	wall := time.Since(start)
	perMachine := float64(queries) / wall.Seconds()
	return perMachine * float64(machines)
}

// AccuracyRow reports the §4.2 accuracy claim for one dataset.
type AccuracyRow struct {
	Dataset   string
	Eps       float64
	Top100    float64 // precision vs power-iteration ground truth
	L1        float64
	FPSpeedup float64 // forward push vs power iteration, single machine
}

// Accuracy verifies that Forward Push at ε=1e-6 reaches 97%+ top-100
// precision against the power-iteration ground truth (§4.2), and measures
// the single-machine speed ratio between the two.
func Accuracy(p Params, sources int) (Report, []AccuracyRow, error) {
	r := Report{Title: "Accuracy (4.2): Forward Push eps=1e-6 vs Power Iteration 1e-10"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %10s %10s %12s %10s", "Dataset", "eps", "top-100", "L1", "FP/PI"))
	var rows []AccuracyRow
	for _, spec := range p.specs() {
		g := spec.GenerateCached()
		rng := rand.New(rand.NewSource(99))
		var precSum, l1Sum float64
		var fpTime, piTime time.Duration
		for q := 0; q < sources; q++ {
			src := graph.NodeID(rng.Intn(g.NumNodes))
			t0 := time.Now()
			exact, _ := ppr.PowerIteration(g, src, 0.462, 1e-10, 500)
			piTime += time.Since(t0)
			t0 = time.Now()
			res := ppr.ForwardPush(g, src, 0.462, 1e-6)
			fpTime += time.Since(t0)
			precSum += ppr.TopKPrecision(res.Scores, exact, 100)
			l1Sum += ppr.L1Error(res.Scores, exact)
		}
		row := AccuracyRow{
			Dataset:   spec.Name,
			Eps:       1e-6,
			Top100:    precSum / float64(sources),
			L1:        l1Sum / float64(sources),
			FPSpeedup: piTime.Seconds() / fpTime.Seconds(),
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-18s %10.0e %10.3f %12.2e %9.1fx",
			row.Dataset, row.Eps, row.Top100, row.L1, row.FPSpeedup))
	}
	return r, rows, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
