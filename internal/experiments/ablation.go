package experiments

import (
	"context"
	"fmt"
	"time"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/gnn"
	"pprengine/internal/metrics"
)

// Table3Row is one rung of the RPC-optimization ladder.
type Table3Row struct {
	Name        string
	LocalFetch  time.Duration
	RemoteFetch time.Duration
	Push        time.Duration
	Total       time.Duration // wall time of the batch
	Speedup     float64       // vs the Single baseline
}

// Table3 reproduces the RPC-optimization ablation on friendster-sim
// (paper Table 3): Single → +Batch → +Compress → +Overlap, reporting the
// per-phase time breakdown and cumulative speedup. 2 machines, 1 process
// each, a batch of queries per machine.
func Table3(p Params) (Report, []Table3Row, error) {
	spec, err := p.Spec("friendster-sim")
	if err != nil {
		return Report{}, nil, err
	}
	const machines = 2
	c, err := buildCluster(spec, machines, 1, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	defer c.Close()
	// The Single baseline is hundreds of times slower; use a small query
	// batch for every rung so rows are comparable.
	queries := minInt(p.Queries, 4)
	qs := c.EvenQuerySet(queries, 17)
	ladder := []struct {
		name    string
		mode    core.FetchMode
		overlap bool
	}{
		{"Single", core.FetchSingle, false},
		{"+Batch", core.FetchBatch, false},
		{"+Compress", core.FetchBatchCompress, false},
		{"+Overlap", core.FetchBatchCompress, true},
	}
	r := Report{Title: "Table 3: RPC optimizations on friendster-sim (2 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-10s %12s %12s %10s %10s %9s",
		"Variant", "LocalFetch", "RemoteFetch", "Push", "Total", "Speedup"))
	var rows []Table3Row
	var baseline time.Duration
	for _, rung := range ladder {
		cfg := core.DefaultConfig()
		cfg.Mode = rung.mode
		cfg.Overlap = rung.overlap
		_, last, err := measuredRun(p, func() (cluster.RunResult, error) {
			return c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
		})
		if err != nil {
			return r, nil, err
		}
		row := Table3Row{
			Name:        rung.name,
			LocalFetch:  last.Breakdown.Get(metrics.PhaseLocalFetch),
			RemoteFetch: last.Breakdown.Get(metrics.PhaseRemoteFetch),
			Push:        last.Breakdown.Get(metrics.PhasePush),
			Total:       last.Wall,
		}
		if rung.name == "Single" {
			baseline = last.Wall
			row.Speedup = 1
		} else if last.Wall > 0 {
			row.Speedup = float64(baseline) / float64(last.Wall)
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-10s %12s %12s %10s %10s %8.1fx",
			row.Name, fmtDuration(row.LocalFetch), fmtDuration(row.RemoteFetch),
			fmtDuration(row.Push), fmtDuration(row.Total), row.Speedup))
	}
	return r, rows, nil
}

// Fig6Row is the per-phase ratio breakdown of one (dataset, engine) pair.
type Fig6Row struct {
	Dataset     string
	Engine      string
	LocalFetch  time.Duration
	RemoteFetch time.Duration
	Push        time.Duration
	PushRatio   float64 // engine-relative comparison helper
}

// Fig6 reproduces the runtime-breakdown comparison: both methods batch RPC
// requests (compressed) and disable overlap for a clean attribution, as the
// paper does; activated-node retrieval (pop) time is recorded separately
// and omitted from the rows, again following the paper.
func Fig6(p Params) (Report, []Fig6Row, error) {
	const machines = 4
	engineCfg := core.DefaultConfig()
	engineCfg.Overlap = false
	tensorCfg := core.TensorBaselineConfig()
	tensorCfg.Overlap = false
	r := Report{Title: "Figure 6: Runtime breakdown (batching on, overlap off; pop omitted)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-18s %-15s %12s %12s %10s %8s",
		"Dataset", "Engine", "LocalFetch", "RemoteFetch", "Push", "Push%"))
	var rows []Fig6Row
	for _, spec := range p.specs() {
		c, err := buildCluster(spec, machines, 1, cluster.PartitionMinCut)
		if err != nil {
			return r, nil, err
		}
		for _, kind := range []cluster.EngineKind{cluster.EngineTensor, cluster.EngineMap} {
			queries := p.Queries
			if kind == cluster.EngineTensor {
				queries = minInt(queries, 4)
			}
			cfg := engineCfg
			if kind == cluster.EngineTensor {
				cfg = tensorCfg
			}
			qs := c.EvenQuerySet(queries, 23)
			_, last, err := measuredRun(p, func() (cluster.RunResult, error) {
				return c.RunSSPPRBatch(context.Background(), qs, cfg, kind)
			})
			if err != nil {
				c.Close()
				return r, nil, err
			}
			lf := last.Breakdown.Get(metrics.PhaseLocalFetch)
			rf := last.Breakdown.Get(metrics.PhaseRemoteFetch)
			ps := last.Breakdown.Get(metrics.PhasePush)
			total := lf + rf + ps
			pct := 0.0
			if total > 0 {
				pct = float64(ps) / float64(total) * 100
			}
			// Normalize to per-query time so the tensor row (fewer
			// queries) is comparable.
			norm := func(d time.Duration) time.Duration {
				return d / time.Duration(maxInt(queries*machines, 1))
			}
			row := Fig6Row{
				Dataset: spec.Name, Engine: kind.String(),
				LocalFetch: norm(lf), RemoteFetch: norm(rf), Push: norm(ps),
				PushRatio: pct,
			}
			rows = append(rows, row)
			r.Lines = append(r.Lines, fmt.Sprintf("%-18s %-15s %12s %12s %10s %7.1f%%",
				row.Dataset, row.Engine, fmtDuration(row.LocalFetch),
				fmtDuration(row.RemoteFetch), fmtDuration(row.Push), row.PushRatio))
		}
		c.Close()
	}
	return r, rows, nil
}

// Fig7 runs the GNN-training case study and reports per-epoch loss.
func Fig7(p Params) (Report, []gnn.EpochStats, error) {
	spec, err := p.Spec("products-sim")
	if err != nil {
		return Report{}, nil, err
	}
	// A smaller graph keeps the case study brisk at any scale.
	if p.Scale == 1 {
		spec = spec.Scaled(8)
	}
	c, err := buildCluster(spec, 4, 1, cluster.PartitionMinCut)
	if err != nil {
		return Report{}, nil, err
	}
	defer c.Close()
	cfg := gnn.DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.BatchesPerEpc = 16
	stats, _, err := gnn.TrainDistributed(context.Background(), c, cfg)
	if err != nil {
		return Report{}, nil, err
	}
	r := Report{Title: "Figure 7 / 4.5: Distributed ShaDow-SAGE training with PPR subgraphs"}
	r.Lines = append(r.Lines, fmt.Sprintf("%6s %10s %10s", "Epoch", "MeanLoss", "Accuracy"))
	for _, s := range stats {
		r.Lines = append(r.Lines, fmt.Sprintf("%6d %10.4f %10.3f", s.Epoch, s.MeanLoss, s.Accuracy))
	}
	return r, stats, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ModelRow compares one architecture on the case-study pipeline.
type ModelRow struct {
	Model     string
	FinalLoss float32
	TrainAcc  float64
	HeldOut   float64
}

// Models extends the Figure 7 case study across architectures: the same
// distributed PPR mini-batch pipeline feeding ShaDow-SAGE, a GCN, and
// PPRGo-style weighted propagation (all referenced in the paper's
// background section).
func Models(p Params) (Report, []ModelRow, error) {
	spec, err := p.Spec("products-sim")
	if err != nil {
		return Report{}, nil, err
	}
	if p.Scale == 1 {
		spec = spec.Scaled(8)
	}
	kinds := []struct {
		name string
		kind gnn.ModelKind
	}{
		{"ShaDow-SAGE", gnn.ModelSAGE},
		{"GCN", gnn.ModelGCN},
		{"PPRGo", gnn.ModelPPRGo},
	}
	r := Report{Title: "Case-study architectures on PPR mini-batches (4 machines)"}
	r.Lines = append(r.Lines, fmt.Sprintf("%-14s %10s %10s %10s", "Model", "FinalLoss", "TrainAcc", "HeldOut"))
	var rows []ModelRow
	for _, kd := range kinds {
		c, err := buildCluster(spec, 4, 1, cluster.PartitionMinCut)
		if err != nil {
			return r, nil, err
		}
		cfg := gnn.DefaultTrainConfig()
		cfg.Model = kd.kind
		cfg.Epochs = 4
		cfg.BatchesPerEpc = 16
		stats, model, err := gnn.TrainDistributed(context.Background(), c, cfg)
		if err != nil {
			c.Close()
			return r, nil, err
		}
		heldOut, err := gnn.Evaluate(context.Background(), c, cfg, model, 32, 4242)
		c.Close()
		if err != nil {
			return r, nil, err
		}
		row := ModelRow{
			Model:     kd.name,
			FinalLoss: stats[len(stats)-1].MeanLoss,
			TrainAcc:  stats[len(stats)-1].Accuracy,
			HeldOut:   heldOut,
		}
		rows = append(rows, row)
		r.Lines = append(r.Lines, fmt.Sprintf("%-14s %10.4f %10.3f %10.3f",
			row.Model, row.FinalLoss, row.TrainAcc, row.HeldOut))
	}
	return r, rows, nil
}
