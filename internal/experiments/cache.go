package experiments

import (
	"context"
	"fmt"

	"pprengine/internal/cluster"
	"pprengine/internal/core"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// CacheRow is one pass of the dynamic-cache benchmark.
type CacheRow struct {
	Pass           string
	RemoteRows     int64 // rows actually fetched over RPC
	CacheHits      int64 // rows served by the dynamic cache
	CacheCoalesced int64 // rows that joined an in-flight fetch
	RequestsSent   int64 // RPC requests issued during the pass
	BytesSent      int64 // request bytes on the wire during the pass
	Throughput     float64
}

// CacheBench measures the cross-query neighbor-row cache on a
// repeated-source workload: the same query batch runs twice on twitter-sim
// (4 machines), first with the cache disabled (the ablation baseline, both
// passes identical), then with a byte-budgeted cache attached. With the
// cache, the second pass serves previously fetched remote rows from shared
// memory, so its RemoteRows and bytes-on-wire drop while the stats with the
// cache disabled are unchanged from the seed behavior.
func CacheBench(p Params, cacheBytes int64) (Report, []CacheRow, error) {
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	const machines = 4
	cfg := core.DefaultConfig()
	r := Report{Title: fmt.Sprintf("Dynamic neighbor-row cache on twitter-sim (%d machines, %dMB budget)", machines, cacheBytes>>20)}
	r.Lines = append(r.Lines, fmt.Sprintf("%-22s %11s %10s %10s %9s %12s %11s",
		"Pass", "RemoteRows", "CacheHits", "Coalesced", "RPCs", "ReqBytes", "Queries/s"))
	var rows []CacheRow
	for _, budget := range []int64{0, cacheBytes} {
		c, err := buildCacheCluster("twitter-sim", p, machines, budget)
		if err != nil {
			return r, nil, err
		}
		qs := c.EvenQuerySet(minInt(p.Queries, 64), 73)
		label := "no cache"
		if budget > 0 {
			label = "cache"
		}
		for pass := 1; pass <= 2; pass++ {
			before := c.NetStats()
			res, err := c.RunSSPPRBatch(context.Background(), qs, cfg, cluster.EngineMap)
			if err != nil {
				c.Close()
				return r, nil, err
			}
			after := c.NetStats()
			row := CacheRow{
				Pass:           fmt.Sprintf("%s, pass %d", label, pass),
				RemoteRows:     res.RemoteRows,
				CacheHits:      res.CacheHits,
				CacheCoalesced: res.CacheCoalesced,
				RequestsSent:   after.RequestsSent - before.RequestsSent,
				BytesSent:      after.BytesSent - before.BytesSent,
				Throughput:     res.Throughput,
			}
			rows = append(rows, row)
			r.Lines = append(r.Lines, fmt.Sprintf("%-22s %11d %10d %10d %9d %12d %11.1f",
				row.Pass, row.RemoteRows, row.CacheHits, row.CacheCoalesced,
				row.RequestsSent, row.BytesSent, row.Throughput))
		}
		if budget > 0 {
			cs := c.CacheStats()
			r.Lines = append(r.Lines, fmt.Sprintf("cache state: %d entries, %.1fMB, %d evictions",
				cs.Entries, float64(cs.Bytes)/(1<<20), cs.Evictions))
		}
		c.Close()
	}
	return r, rows, nil
}

// buildCacheCluster is buildCluster plus a per-machine dynamic-cache budget
// (0 disables the cache).
func buildCacheCluster(name string, p Params, machines int, cacheBytes int64) (*cluster.Cluster, error) {
	spec, err := p.Spec(name)
	if err != nil {
		return nil, err
	}
	g := spec.GenerateCached()
	a, err := assignmentFor(spec.Name, g, machines, cluster.PartitionMinCut)
	if err != nil {
		return nil, err
	}
	shards, loc, err := shard.Build(g, a, machines)
	if err != nil {
		return nil, err
	}
	opts := cluster.Options{NumMachines: machines, ProcsPerMachine: 1, CacheBytes: cacheBytes}
	return cluster.NewFromShards(shards, loc, opts, partition.Evaluate(g, a))
}
