// Incremental locator maintenance for streaming mutations: new vertices are
// appended to the Locator through a copy-on-write extension instead of a full
// Build. The base arrays stay immutable — the hot Locate/Global paths on
// pre-existing nodes remain plain array indexing with no synchronization —
// and globals at or beyond the base length resolve through an atomically
// swapped extension block.
//
// Appends follow the same rule Build uses (each shard hands out local IDs in
// arrival order), so for a stream of strictly increasing global IDs the
// patched locator is bit-identical to a from-scratch Build of the grown
// graph with the same assignment. TestLocatorExtendEqualsRebuild pins this.
package shard

import (
	"fmt"

	"pprengine/internal/graph"
)

// locExt is one immutable snapshot of the appended-vertex mappings. Writers
// clone-and-swap under extMu; readers load the pointer once and index freely.
type locExt struct {
	base     int                // len(ShardOf) at build time; globals >= base live here
	shardOf  []int32            // [global-base] -> shard
	localOf  []int32            // [global-base] -> local
	globalOf [][]graph.NodeID   // per shard, locals appended past the base core count
}

func (l *Locator) loadExt() *locExt { return l.ext.Load() }

// NumNodes returns the number of globals the locator can resolve, including
// appended vertices.
func (l *Locator) NumNodes() int {
	if e := l.loadExt(); e != nil {
		return e.base + len(e.shardOf)
	}
	return len(l.ShardOf)
}

// BaseCoreCount returns the number of preprocessing-time core locals of sh,
// excluding appended vertices.
func (l *Locator) BaseCoreCount(sh int32) int32 { return int32(len(l.GlobalOf[sh])) }

// CoreCount returns the number of core locals of sh, including appended
// vertices — the next free local ID.
func (l *Locator) CoreCount(sh int32) int32 {
	n := int32(len(l.GlobalOf[sh]))
	if e := l.loadExt(); e != nil {
		n += int32(len(e.globalOf[sh]))
	}
	return n
}

// Extend registers an appended vertex: global resolves to (sh, local) and
// Global(sh, local) resolves back. Appends must be dense: global must be the
// next unmapped global ID and local the next free local of sh. Extend is
// idempotent — re-registering an identical mapping is a no-op, so the
// broadcast apply path can patch a locator shared by many stores (the
// in-process cluster) without double-appending.
func (l *Locator) Extend(global graph.NodeID, sh, local int32) error {
	if int(sh) >= l.NumShards() || sh < 0 {
		return fmt.Errorf("locator: extend to invalid shard %d", sh)
	}
	l.extMu.Lock()
	defer l.extMu.Unlock()
	old := l.ext.Load()
	base := len(l.ShardOf)
	if old != nil {
		base = old.base
	}
	// Idempotence: already mapped?
	if int(global) < base {
		return fmt.Errorf("locator: global %d already in base", global)
	}
	if old != nil && int(global)-base < len(old.shardOf) {
		if old.shardOf[int(global)-base] == sh && old.localOf[int(global)-base] == local {
			return nil
		}
		return fmt.Errorf("locator: global %d already mapped to (%d,%d), refusing (%d,%d)",
			global, old.shardOf[int(global)-base], old.localOf[int(global)-base], sh, local)
	}
	next := base
	if old != nil {
		next += len(old.shardOf)
	}
	if int(global) != next {
		return fmt.Errorf("locator: non-dense extend: global %d, next unmapped is %d", global, next)
	}
	wantLocal := int32(len(l.GlobalOf[sh]))
	if old != nil {
		wantLocal += int32(len(old.globalOf[sh]))
	}
	if local != wantLocal {
		return fmt.Errorf("locator: shard %d next free local is %d, got %d", sh, wantLocal, local)
	}
	ne := &locExt{base: base, globalOf: make([][]graph.NodeID, l.NumShards())}
	if old != nil {
		ne.shardOf = append(ne.shardOf, old.shardOf...)
		ne.localOf = append(ne.localOf, old.localOf...)
		for s := range old.globalOf {
			ne.globalOf[s] = append(ne.globalOf[s], old.globalOf[s]...)
		}
	}
	ne.shardOf = append(ne.shardOf, sh)
	ne.localOf = append(ne.localOf, local)
	ne.globalOf[sh] = append(ne.globalOf[sh], global)
	l.ext.Store(ne)
	return nil
}

// TryLocate is Locate for possibly-appended globals: it returns ok=false
// instead of panicking when v is unmapped.
func (l *Locator) TryLocate(v graph.NodeID) (sh, local int32, ok bool) {
	if v < 0 {
		return 0, 0, false
	}
	if int(v) < len(l.ShardOf) {
		return l.ShardOf[v], l.LocalOf[v], true
	}
	if e := l.loadExt(); e != nil && int(v)-e.base < len(e.shardOf) {
		return e.shardOf[int(v)-e.base], e.localOf[int(v)-e.base], true
	}
	return 0, 0, false
}
