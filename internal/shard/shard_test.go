package shard

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
)

// paperExample builds the 2-shard example of Figure 2-style layouts: a small
// graph with a known partition.
func paperExample(t *testing.T) (*graph.Graph, []*Shard, *Locator) {
	t.Helper()
	// 5 nodes. Shard 0: {0,1,2}; shard 1: {3,4}.
	// Edges (weighted, directed both ways where listed):
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 0, Weight: 2},
		{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 1, Weight: 1},
		{Src: 2, Dst: 3, Weight: 4}, {Src: 3, Dst: 2, Weight: 4}, // cross-shard
		{Src: 3, Dst: 4, Weight: 3}, {Src: 4, Dst: 3, Weight: 3},
		{Src: 1, Dst: 4, Weight: 5}, {Src: 4, Dst: 1, Weight: 5}, // cross-shard
	}
	g, err := graph.FromEdges(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	a := partition.Assignment{0, 0, 0, 1, 1}
	shards, loc, err := Build(g, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, shards, loc
}

func TestBuildBasic(t *testing.T) {
	g, shards, loc := paperExample(t)
	if len(shards) != 2 {
		t.Fatalf("shards = %d", len(shards))
	}
	s0, s1 := shards[0], shards[1]
	if s0.NumCore() != 3 || s1.NumCore() != 2 {
		t.Fatalf("core counts: %d %d", s0.NumCore(), s1.NumCore())
	}
	for _, s := range shards {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Total neighbor entries = total directed edges.
	if s0.NumNeighborEntries()+s1.NumNeighborEntries() != g.NumEdges() {
		t.Fatal("neighbor entries don't cover all edges")
	}
	// Locator round-trips.
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		sh, lc := loc.Locate(v)
		if loc.Global(sh, lc) != v {
			t.Fatalf("locator round trip failed for %d", v)
		}
	}
	if loc.NumShards() != 2 {
		t.Fatal("NumShards")
	}
}

func TestVertexPropContents(t *testing.T) {
	g, shards, loc := paperExample(t)
	// Node 2 (shard 0): neighbors 1 (local, shard 0) and 3 (halo, shard 1).
	sh, lc := loc.Locate(2)
	if sh != 0 {
		t.Fatalf("node 2 in shard %d", sh)
	}
	vp := shards[0].VertexProp(lc)
	if vp.Degree() != 2 {
		t.Fatalf("degree = %d", vp.Degree())
	}
	// WDeg of node 2 = 1 + 4 = 5.
	if vp.WDeg != 5 {
		t.Fatalf("WDeg = %v, want 5", vp.WDeg)
	}
	found3 := false
	for i := range vp.Locals {
		gv := loc.Global(vp.Shards[i], vp.Locals[i])
		switch gv {
		case 1:
			if vp.Weights[i] != 1 {
				t.Fatalf("weight to 1 = %v", vp.Weights[i])
			}
			// Node 1's weighted degree = 2+1+5 = 8.
			if vp.WDegs[i] != 8 {
				t.Fatalf("wdeg of nbr 1 = %v, want 8", vp.WDegs[i])
			}
		case 3:
			found3 = true
			if vp.Shards[i] != 1 {
				t.Fatalf("node 3 should be halo in shard 1")
			}
			if vp.Weights[i] != 4 {
				t.Fatalf("weight to 3 = %v", vp.Weights[i])
			}
			// Node 3's weighted degree = 4+3 = 7.
			if vp.WDegs[i] != 7 {
				t.Fatalf("wdeg of nbr 3 = %v, want 7", vp.WDegs[i])
			}
		default:
			t.Fatalf("unexpected neighbor %d", gv)
		}
	}
	if !found3 {
		t.Fatal("halo neighbor 3 missing")
	}
	_ = g
}

func TestShardNeighborsMatchGraph(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 400, NumEdges: 2400, A: 0.55, B: 0.2, C: 0.15, Seed: 10,
	}))
	a, err := partition.Partition(g, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := Build(g, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		sh, lc := loc.Locate(v)
		vp := shards[sh].VertexProp(lc)
		if vp.Degree() != g.Degree(v) {
			t.Fatalf("node %d degree mismatch: %d vs %d", v, vp.Degree(), g.Degree(v))
		}
		want := make(map[graph.NodeID]float32)
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			want[u] = ws[i]
		}
		for i := range vp.Locals {
			gv := loc.Global(vp.Shards[i], vp.Locals[i])
			w, ok := want[gv]
			if !ok {
				t.Fatalf("node %d: spurious neighbor %d", v, gv)
			}
			if w != vp.Weights[i] {
				t.Fatalf("node %d -> %d weight %v vs %v", v, gv, vp.Weights[i], w)
			}
			if vp.WDegs[i] != g.WeightedDegree[gv] {
				t.Fatalf("node %d: nbr %d wdeg %v vs %v", v, gv, vp.WDegs[i], g.WeightedDegree[gv])
			}
		}
		if vp.WDeg != g.WeightedDegree[v] {
			t.Fatalf("node %d core wdeg mismatch", v)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.Ring(4)
	if _, _, err := Build(g, partition.Assignment{0, 0}, 2); err == nil {
		t.Fatal("short assignment should error")
	}
	if _, _, err := Build(g, partition.Assignment{0, 0, 5, 0}, 2); err == nil {
		t.Fatal("invalid shard label should error")
	}
}

func TestCheckLocal(t *testing.T) {
	_, shards, _ := paperExample(t)
	if err := shards[0].CheckLocal(0); err != nil {
		t.Fatal(err)
	}
	if err := shards[0].CheckLocal(3); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := shards[0].CheckLocal(-1); err == nil {
		t.Fatal("expected negative error")
	}
}

func TestComputeStats(t *testing.T) {
	_, shards, _ := paperExample(t)
	st := ComputeStats(shards[0])
	// Shard 0 entries: node0 (1), node1 (3), node2 (2) = 6.
	if st.NumEntries != 6 {
		t.Fatalf("entries = %d", st.NumEntries)
	}
	// Cross entries from shard 0: 2->3 and 1->4 = 2 of 6.
	if st.RemoteFrac < 0.33 || st.RemoteFrac > 0.34 {
		t.Fatalf("remoteFrac = %v", st.RemoteFrac)
	}
	if st.HaloNodes != 2 {
		t.Fatalf("halo = %d, want 2 (nodes 3 and 4)", st.HaloNodes)
	}
	if st.MemoryBytes <= 0 {
		t.Fatal("memory estimate missing")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, shards, _ := paperExample(t)
	for _, s := range shards {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if s2.ShardID != s.ShardID || s2.NumShards != s.NumShards || s2.NumCore() != s.NumCore() {
			t.Fatal("header mismatch")
		}
		for i := range s.NbrLocal {
			if s.NbrLocal[i] != s2.NbrLocal[i] || s.NbrShard[i] != s2.NbrShard[i] ||
				s.NbrWeight[i] != s2.NbrWeight[i] || s.NbrWDeg[i] != s2.NbrWDeg[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	_, shards, _ := paperExample(t)
	path := t.TempDir() + "/s0.shard"
	if err := shards[0].SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCore() != shards[0].NumCore() {
		t.Fatal("file round trip mismatch")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5, 6, 7})); err == nil {
		t.Fatal("expected error")
	}
}

// Property: for random graphs and partitions, Build covers every edge
// exactly once and the locator is a bijection.
func TestQuickBuildBijection(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 10
		k := int(kRaw%4) + 1
		g := graph.MakeUndirected(graph.ErdosRenyi(n, int64(rng.Intn(300)+10), seed))
		a := make(partition.Assignment, n)
		for i := range a {
			a[i] = int32(rng.Intn(k))
		}
		shards, loc, err := Build(g, a, k)
		if err != nil {
			return false
		}
		var entries int64
		seen := make(map[graph.NodeID]bool, n)
		for _, s := range shards {
			if s.Validate() != nil {
				return false
			}
			entries += s.NumNeighborEntries()
			for lc, gv := range s.CoreGlobal {
				if seen[gv] {
					return false // node in two shards
				}
				seen[gv] = true
				if sh2, lc2 := loc.Locate(gv); sh2 != s.ShardID || lc2 != int32(lc) {
					return false
				}
			}
		}
		return entries == g.NumEdges() && len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
