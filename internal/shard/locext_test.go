package shard

import (
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
)

// TestLocatorExtendEqualsRebuild pins the satellite contract: appending
// vertices through Extend yields exactly the locator a from-scratch Build of
// the grown graph produces with the same assignment. Build hands out locals
// in global-ID order per shard, so a stream of increasing global IDs must
// land on identical (shard, local) addresses either way.
func TestLocatorExtendEqualsRebuild(t *testing.T) {
	const n, k = 10, 3
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32((v + 1) % n), Weight: 1})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	a := partition.HashPartition(n, k)
	_, loc, err := Build(g, a, k)
	if err != nil {
		t.Fatal(err)
	}

	// Append three vertices to chosen shards.
	adds := []struct {
		global graph.NodeID
		sh     int32
	}{{10, 2}, {11, 0}, {12, 2}}
	for _, ad := range adds {
		local := loc.CoreCount(ad.sh)
		if err := loc.Extend(ad.global, ad.sh, local); err != nil {
			t.Fatal(err)
		}
		// Idempotent replay (the broadcast path re-patches a shared locator).
		if err := loc.Extend(ad.global, ad.sh, local); err != nil {
			t.Fatalf("idempotent replay: %v", err)
		}
	}
	// Conflicting replay must be refused.
	if err := loc.Extend(10, 1, loc.CoreCount(1)); err == nil {
		t.Fatal("conflicting re-extend accepted")
	}
	// Non-dense global must be refused.
	if err := loc.Extend(99, 0, loc.CoreCount(0)); err == nil {
		t.Fatal("non-dense extend accepted")
	}

	// From-scratch rebuild of the grown graph (new vertices need no edges for
	// the locator; reuse the same ring).
	g2, err := graph.FromEdges(n+len(adds), edges)
	if err != nil {
		t.Fatal(err)
	}
	a2 := append(append(partition.Assignment{}, a...), 2, 0, 2)
	_, loc2, err := Build(g2, a2, k)
	if err != nil {
		t.Fatal(err)
	}

	if loc.NumNodes() != loc2.NumNodes() {
		t.Fatalf("NumNodes %d != %d", loc.NumNodes(), loc2.NumNodes())
	}
	for v := graph.NodeID(0); int(v) < loc.NumNodes(); v++ {
		s1, l1 := loc.Locate(v)
		s2, l2 := loc2.Locate(v)
		if s1 != s2 || l1 != l2 {
			t.Errorf("Locate(%d): patched (%d,%d), rebuilt (%d,%d)", v, s1, l1, s2, l2)
		}
	}
	for sh := int32(0); sh < k; sh++ {
		if loc.CoreCount(sh) != loc2.CoreCount(sh) {
			t.Fatalf("shard %d core count %d != %d", sh, loc.CoreCount(sh), loc2.CoreCount(sh))
		}
		for l := int32(0); l < loc.CoreCount(sh); l++ {
			if loc.Global(sh, l) != loc2.Global(sh, l) {
				t.Errorf("Global(%d,%d): patched %d, rebuilt %d", sh, l, loc.Global(sh, l), loc2.Global(sh, l))
			}
		}
	}

	// TryLocate covers appended and unknown globals.
	if sh, l, ok := loc.TryLocate(11); !ok || sh != 0 || l != loc.BaseCoreCount(0) {
		t.Fatalf("TryLocate(11) = (%d,%d,%v)", sh, l, ok)
	}
	if _, _, ok := loc.TryLocate(13); ok {
		t.Fatal("TryLocate of unmapped global succeeded")
	}
}
