// Package shard implements the Graph Shard data structure of paper §3.2.2:
// each partition of the input graph becomes a CSR block whose rows are the
// partition's core nodes and whose columns carry, per neighbor, the tuple
// (local ID, shard ID, edge weight, weighted degree). One-hop halo nodes —
// neighbors owned by other shards — appear only as columns, never as rows,
// so a shard can answer any neighborhood request about its own core nodes
// without contacting other machines.
//
// Nodes are addressed by (shard ID, local ID) everywhere; the global ID is
// kept only for user-facing conversion (GlobalID / Locate).
package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
)

// Shard holds one partition in the CSR layout of Figure 3. All arrays are
// contiguous; a core node's neighbor block is the half-open index range
// [Indptr[v], Indptr[v+1]).
type Shard struct {
	ShardID   int32
	NumShards int32

	// CoreGlobal maps a core node's local ID to its global ID.
	CoreGlobal []graph.NodeID

	// CSR over core rows.
	Indptr []int64
	// Per-neighbor tuples, parallel arrays.
	NbrLocal  []int32   // neighbor's local ID in its home shard
	NbrShard  []int32   // neighbor's home shard
	NbrWeight []float32 // edge weight
	NbrWDeg   []float32 // neighbor's weighted out-degree (for threshold checks)

	// CoreWDeg caches each core node's own weighted out-degree.
	CoreWDeg []float32

	// Optional halo row cache (see halo.go). HaloKeys[i] packs the i-th
	// cached halo node's (shard<<32 | local); its neighbor tuples live at
	// [HaloIndptr[i], HaloIndptr[i+1]).
	HaloKeys      []uint64
	HaloIndptr    []int64
	HaloNbrLocal  []int32
	HaloNbrShard  []int32
	HaloNbrWeight []float32
	HaloNbrWDeg   []float32
	HaloWDeg      []float32

	haloIndex map[uint64]int32 // packed key -> row; rebuilt on load
}

// NumCore returns the number of core nodes.
func (s *Shard) NumCore() int { return len(s.CoreGlobal) }

// NumNeighborEntries returns the number of stored neighbor tuples.
func (s *Shard) NumNeighborEntries() int64 {
	if len(s.Indptr) == 0 {
		return 0
	}
	return s.Indptr[len(s.Indptr)-1]
}

// VertexProp is a view of one core node's neighbor information — the engine
// passes these across layers without copying (paper §3.2.3: "we directly
// pass a vector of shared pointers of VertexProp ... without taking
// ownership of the original data"). All slices alias the shard's arrays.
type VertexProp struct {
	Local   int32
	WDeg    float32
	Locals  []int32
	Shards  []int32
	Weights []float32
	WDegs   []float32
}

// Degree returns the node's out-degree.
func (vp VertexProp) Degree() int { return len(vp.Locals) }

// VertexProp returns the view for core node local. It panics if local is out
// of range — server handlers validate IDs before calling.
func (s *Shard) VertexProp(local int32) VertexProp {
	lo, hi := s.Indptr[local], s.Indptr[local+1]
	return VertexProp{
		Local:   local,
		WDeg:    s.CoreWDeg[local],
		Locals:  s.NbrLocal[lo:hi],
		Shards:  s.NbrShard[lo:hi],
		Weights: s.NbrWeight[lo:hi],
		WDegs:   s.NbrWDeg[lo:hi],
	}
}

// CheckLocal validates that local is a core node ID of this shard.
func (s *Shard) CheckLocal(local int32) error {
	if local < 0 || int(local) >= s.NumCore() {
		return fmt.Errorf("shard %d: local ID %d out of range [0,%d)", s.ShardID, local, s.NumCore())
	}
	return nil
}

// Validate checks the structural invariants of the shard.
func (s *Shard) Validate() error {
	n := s.NumCore()
	if len(s.Indptr) != n+1 {
		return fmt.Errorf("shard %d: len(Indptr)=%d want %d", s.ShardID, len(s.Indptr), n+1)
	}
	if n > 0 && s.Indptr[0] != 0 {
		return fmt.Errorf("shard %d: Indptr[0] != 0", s.ShardID)
	}
	for i := 0; i < n; i++ {
		if s.Indptr[i+1] < s.Indptr[i] {
			return fmt.Errorf("shard %d: Indptr not monotone at %d", s.ShardID, i)
		}
	}
	m := s.NumNeighborEntries()
	for _, arr := range []int{len(s.NbrLocal), len(s.NbrShard)} {
		if int64(arr) != m {
			return fmt.Errorf("shard %d: neighbor array length %d want %d", s.ShardID, arr, m)
		}
	}
	if int64(len(s.NbrWeight)) != m || int64(len(s.NbrWDeg)) != m {
		return fmt.Errorf("shard %d: weight array lengths wrong", s.ShardID)
	}
	if len(s.CoreWDeg) != n {
		return fmt.Errorf("shard %d: len(CoreWDeg)=%d want %d", s.ShardID, len(s.CoreWDeg), n)
	}
	for i := int64(0); i < m; i++ {
		if s.NbrShard[i] < 0 || s.NbrShard[i] >= s.NumShards {
			return fmt.Errorf("shard %d: NbrShard[%d]=%d out of range", s.ShardID, i, s.NbrShard[i])
		}
		if s.NbrLocal[i] < 0 {
			return fmt.Errorf("shard %d: NbrLocal[%d]=%d negative", s.ShardID, i, s.NbrLocal[i])
		}
	}
	return nil
}

// Locator maps between global node IDs and (shard, local) addresses for a
// partitioned graph. Built at preprocessing time; vertices appended by the
// streaming-mutation tier are grafted on through a copy-on-write extension
// (see locext.go) so the base arrays stay immutable and lock-free to read.
type Locator struct {
	ShardOf []int32 // global -> shard
	LocalOf []int32 // global -> local ID within its shard
	// GlobalOf[shard][local] -> global
	GlobalOf [][]graph.NodeID

	extMu sync.Mutex // serializes Extend; readers never take it
	ext   atomic.Pointer[locExt]
}

// Locate returns the (shard, local) address of global node v, or (-1, -1)
// when v is unknown to this locator — e.g. a vertex appended by the
// streaming-mutation tier after this locator was serialized to a file.
func (l *Locator) Locate(v graph.NodeID) (shard, local int32) {
	if v >= 0 && int(v) < len(l.ShardOf) {
		return l.ShardOf[v], l.LocalOf[v]
	}
	if e := l.ext.Load(); e != nil {
		if i := int(v) - e.base; i >= 0 && i < len(e.shardOf) {
			return e.shardOf[i], e.localOf[i]
		}
	}
	return -1, -1
}

// Global returns the global ID for a (shard, local) address, or -1 when the
// address is unknown to this locator (see Locate).
func (l *Locator) Global(shard, local int32) graph.NodeID {
	if shard < 0 || int(shard) >= len(l.GlobalOf) || local < 0 {
		return -1
	}
	if int(local) < len(l.GlobalOf[shard]) {
		return l.GlobalOf[shard][local]
	}
	if e := l.ext.Load(); e != nil {
		if i := int(local) - len(l.GlobalOf[shard]); i < len(e.globalOf[shard]) {
			return e.globalOf[shard][i]
		}
	}
	return -1
}

// NumShards returns the shard count.
func (l *Locator) NumShards() int { return len(l.GlobalOf) }

// Build converts a partitioned graph into per-shard Graph Shards plus the
// Locator. Assignment a must label every node of g with a shard in [0, k).
//
// This is the preprocessing step of paper §4.1: it materializes, for every
// core node, the full neighbor tuple array, including each neighbor's
// weighted degree — trading ~1.5x memory for never having to aggregate edge
// weights across machines at query time.
func Build(g *graph.Graph, a partition.Assignment, numShards int) ([]*Shard, *Locator, error) {
	if len(a) != g.NumNodes {
		return nil, nil, fmt.Errorf("shard: assignment covers %d nodes, graph has %d", len(a), g.NumNodes)
	}
	loc := &Locator{
		ShardOf:  make([]int32, g.NumNodes),
		LocalOf:  make([]int32, g.NumNodes),
		GlobalOf: make([][]graph.NodeID, numShards),
	}
	for v := 0; v < g.NumNodes; v++ {
		p := a[v]
		if p < 0 || int(p) >= numShards {
			return nil, nil, fmt.Errorf("shard: node %d assigned to invalid shard %d (k=%d)", v, p, numShards)
		}
		loc.ShardOf[v] = p
		loc.LocalOf[v] = int32(len(loc.GlobalOf[p]))
		loc.GlobalOf[p] = append(loc.GlobalOf[p], graph.NodeID(v))
	}
	if g.WeightedDegree == nil {
		g.ComputeWeightedDegrees()
	}
	shards := make([]*Shard, numShards)
	for p := 0; p < numShards; p++ {
		core := loc.GlobalOf[p]
		s := &Shard{
			ShardID:    int32(p),
			NumShards:  int32(numShards),
			CoreGlobal: core,
			Indptr:     make([]int64, len(core)+1),
			CoreWDeg:   make([]float32, len(core)),
		}
		var total int64
		for i, gv := range core {
			total += int64(g.Degree(gv))
			s.CoreWDeg[i] = g.WeightedDegree[gv]
		}
		s.NbrLocal = make([]int32, 0, total)
		s.NbrShard = make([]int32, 0, total)
		s.NbrWeight = make([]float32, 0, total)
		s.NbrWDeg = make([]float32, 0, total)
		for i, gv := range core {
			ws := g.EdgeWeights(gv)
			for j, u := range g.Neighbors(gv) {
				s.NbrLocal = append(s.NbrLocal, loc.LocalOf[u])
				s.NbrShard = append(s.NbrShard, loc.ShardOf[u])
				s.NbrWeight = append(s.NbrWeight, ws[j])
				s.NbrWDeg = append(s.NbrWDeg, g.WeightedDegree[u])
			}
			s.Indptr[i+1] = int64(len(s.NbrLocal))
		}
		shards[p] = s
	}
	return shards, loc, nil
}

// Stats reports shard-level statistics used in logs and the partition
// quality experiments.
type Stats struct {
	ShardID      int32
	NumCore      int
	NumEntries   int64
	RemoteFrac   float64 // fraction of neighbor entries pointing off-shard
	HaloNodes    int     // distinct off-shard (shard,local) columns
	MemoryBytes  int64   // approximate in-memory footprint
	AvgOutDegree float64
}

// ComputeStats scans the shard once.
func ComputeStats(s *Shard) Stats {
	st := Stats{ShardID: s.ShardID, NumCore: s.NumCore(), NumEntries: s.NumNeighborEntries()}
	halo := make(map[int64]struct{})
	remote := int64(0)
	for i := range s.NbrLocal {
		if s.NbrShard[i] != s.ShardID {
			remote++
			halo[int64(s.NbrShard[i])<<32|int64(s.NbrLocal[i])] = struct{}{}
		}
	}
	if st.NumEntries > 0 {
		st.RemoteFrac = float64(remote) / float64(st.NumEntries)
		st.AvgOutDegree = float64(st.NumEntries) / float64(st.NumCore)
	}
	st.HaloNodes = len(halo)
	st.MemoryBytes = int64(len(s.Indptr))*8 + st.NumEntries*(4+4+4+4) + int64(st.NumCore)*(4+4)
	return st
}

// --- serialization ---

const (
	shardMagic   = 0x53485244 // "SHRD"
	shardVersion = 2
)

// Encode writes the shard in a framed little-endian binary format,
// including the halo row cache when present.
func (s *Shard) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var haloEntries int64
	if n := len(s.HaloIndptr); n > 0 {
		haloEntries = s.HaloIndptr[n-1]
	}
	for _, v := range []any{
		uint32(shardMagic), uint32(shardVersion),
		s.ShardID, s.NumShards,
		int64(s.NumCore()), s.NumNeighborEntries(),
		int64(len(s.HaloKeys)), haloEntries,
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	arrays := []any{s.CoreGlobal, s.Indptr, s.NbrLocal, s.NbrShard, s.NbrWeight, s.NbrWDeg, s.CoreWDeg}
	if len(s.HaloKeys) > 0 {
		arrays = append(arrays, s.HaloKeys, s.HaloIndptr,
			s.HaloNbrLocal, s.HaloNbrShard, s.HaloNbrWeight, s.HaloNbrWDeg, s.HaloWDeg)
	}
	for _, arr := range arrays {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a shard written by Encode.
func Decode(r io.Reader) (*Shard, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var mg, ver uint32
	if err := binary.Read(br, binary.LittleEndian, &mg); err != nil {
		return nil, err
	}
	if mg != shardMagic {
		return nil, fmt.Errorf("shard: bad magic %#x", mg)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != shardVersion {
		return nil, fmt.Errorf("shard: unsupported version %d", ver)
	}
	s := &Shard{}
	var n, m, haloN, haloM int64
	if err := binary.Read(br, binary.LittleEndian, &s.ShardID); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &s.NumShards); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &haloN); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &haloM); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 || haloN < 0 || haloM < 0 {
		return nil, fmt.Errorf("shard: negative sizes")
	}
	s.CoreGlobal = make([]graph.NodeID, n)
	s.Indptr = make([]int64, n+1)
	s.NbrLocal = make([]int32, m)
	s.NbrShard = make([]int32, m)
	s.NbrWeight = make([]float32, m)
	s.NbrWDeg = make([]float32, m)
	s.CoreWDeg = make([]float32, n)
	arrays := []any{s.CoreGlobal, s.Indptr, s.NbrLocal, s.NbrShard, s.NbrWeight, s.NbrWDeg, s.CoreWDeg}
	if haloN > 0 {
		s.HaloKeys = make([]uint64, haloN)
		s.HaloIndptr = make([]int64, haloN+1)
		s.HaloNbrLocal = make([]int32, haloM)
		s.HaloNbrShard = make([]int32, haloM)
		s.HaloNbrWeight = make([]float32, haloM)
		s.HaloNbrWDeg = make([]float32, haloM)
		s.HaloWDeg = make([]float32, haloN)
		arrays = append(arrays, s.HaloKeys, s.HaloIndptr,
			s.HaloNbrLocal, s.HaloNbrShard, s.HaloNbrWeight, s.HaloNbrWDeg, s.HaloWDeg)
	}
	for _, arr := range arrays {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.rebuildHaloIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveFile writes the shard to path.
func (s *Shard) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.Encode(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a shard from path.
func LoadFile(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
