package shard

import (
	"bytes"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
)

func buildHaloShards(t *testing.T) (*graph.Graph, []*Shard, *Locator) {
	t.Helper()
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 300, NumEdges: 1800, A: 0.55, B: 0.2, C: 0.15, Seed: 13,
	}))
	a, err := partition.Partition(g, 3, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := BuildWithOptions(g, a, 3, BuildOptions{CacheHaloRows: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, shards, loc
}

func TestHaloRowsMatchHomeShard(t *testing.T) {
	_, shards, _ := buildHaloShards(t)
	for _, s := range shards {
		if !s.HasHaloRows() {
			t.Fatalf("shard %d missing halo rows", s.ShardID)
		}
		if s.NumHaloRows() == 0 {
			t.Fatalf("shard %d has zero halo rows", s.ShardID)
		}
		// Every cached halo row must equal the home shard's core row.
		for _, k := range s.HaloKeys {
			sh := int32(k >> 32)
			local := int32(uint32(k))
			cached, ok := s.HaloRow(sh, local)
			if !ok {
				t.Fatal("HaloRow miss for cached key")
			}
			home := shards[sh].VertexProp(local)
			if cached.WDeg != home.WDeg || len(cached.Locals) != len(home.Locals) {
				t.Fatalf("halo row mismatch for (%d,%d)", sh, local)
			}
			for i := range home.Locals {
				if cached.Locals[i] != home.Locals[i] || cached.Shards[i] != home.Shards[i] ||
					cached.Weights[i] != home.Weights[i] || cached.WDegs[i] != home.WDegs[i] {
					t.Fatalf("halo row entry %d mismatch for (%d,%d)", i, sh, local)
				}
			}
		}
	}
}

func TestHaloRowNeverServesCoreOrUnknown(t *testing.T) {
	_, shards, _ := buildHaloShards(t)
	s := shards[0]
	// Own-core addresses must miss even if a same-ID halo exists.
	if _, ok := s.HaloRow(s.ShardID, 0); ok {
		t.Fatal("HaloRow must not serve the shard's own core nodes")
	}
	if _, ok := s.HaloRow(99, 0); ok {
		t.Fatal("HaloRow hit for nonexistent shard")
	}
}

func TestHaloCoversAllRemoteColumns(t *testing.T) {
	_, shards, _ := buildHaloShards(t)
	for _, s := range shards {
		for i := range s.NbrLocal {
			if s.NbrShard[i] == s.ShardID {
				continue
			}
			if _, ok := s.HaloRow(s.NbrShard[i], s.NbrLocal[i]); !ok {
				t.Fatalf("shard %d: remote column (%d,%d) not in halo cache",
					s.ShardID, s.NbrShard[i], s.NbrLocal[i])
			}
		}
	}
}

func TestHaloSerializationRoundTrip(t *testing.T) {
	_, shards, _ := buildHaloShards(t)
	for _, s := range shards {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !s2.HasHaloRows() || s2.NumHaloRows() != s.NumHaloRows() {
			t.Fatalf("halo cache lost in round trip: %d vs %d", s2.NumHaloRows(), s.NumHaloRows())
		}
		for _, k := range s.HaloKeys {
			sh := int32(k >> 32)
			local := int32(uint32(k))
			a, okA := s.HaloRow(sh, local)
			b, okB := s2.HaloRow(sh, local)
			if !okA || !okB || a.WDeg != b.WDeg || len(a.Locals) != len(b.Locals) {
				t.Fatalf("halo row (%d,%d) differs after round trip", sh, local)
			}
		}
	}
}

func TestNoHaloSerializationStillWorks(t *testing.T) {
	g := graph.Ring(6)
	shards, _, err := Build(g, partition.Assignment{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := shards[0].Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.HasHaloRows() {
		t.Fatal("unexpected halo rows")
	}
}

func TestHaloMemoryOverheadReported(t *testing.T) {
	g, shards, _ := buildHaloShards(t)
	_ = g
	st := ComputeStats(shards[0])
	if st.HaloNodes != shards[0].NumHaloRows() {
		t.Fatalf("stats halo %d vs cache %d", st.HaloNodes, shards[0].NumHaloRows())
	}
}
