package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pprengine/internal/graph"
)

// Locator serialization: the preprocessing step writes one locator file
// next to the shard files so that independently started server/compute
// processes agree on the global↔(shard,local) mapping.

const (
	locMagic   = 0x4c4f4354 // "LOCT"
	locVersion = 1
)

// Encode writes the locator in a framed little-endian binary format. Only
// ShardOf/LocalOf are stored; GlobalOf is reconstructed on load.
func (l *Locator) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, v := range []any{
		uint32(locMagic), uint32(locVersion),
		int64(len(l.ShardOf)), int32(l.NumShards()),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, l.ShardOf); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, l.LocalOf); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeLocator reads a locator written by Encode and rebuilds GlobalOf.
func DecodeLocator(r io.Reader) (*Locator, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var mg, ver uint32
	var n int64
	var k int32
	if err := binary.Read(br, binary.LittleEndian, &mg); err != nil {
		return nil, err
	}
	if mg != locMagic {
		return nil, fmt.Errorf("shard: bad locator magic %#x", mg)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != locVersion {
		return nil, fmt.Errorf("shard: unsupported locator version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	if n < 0 || k < 0 {
		return nil, fmt.Errorf("shard: negative locator sizes")
	}
	l := &Locator{
		ShardOf:  make([]int32, n),
		LocalOf:  make([]int32, n),
		GlobalOf: make([][]graph.NodeID, k),
	}
	if err := binary.Read(br, binary.LittleEndian, l.ShardOf); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, l.LocalOf); err != nil {
		return nil, err
	}
	// Rebuild GlobalOf: count core sizes, then fill by position.
	for v := int64(0); v < n; v++ {
		sh := l.ShardOf[v]
		if sh < 0 || sh >= k {
			return nil, fmt.Errorf("shard: locator node %d in invalid shard %d", v, sh)
		}
	}
	sizes := make([]int32, k)
	for v := int64(0); v < n; v++ {
		lc := l.LocalOf[v]
		if lc+1 > sizes[l.ShardOf[v]] {
			sizes[l.ShardOf[v]] = lc + 1
		}
	}
	for s := int32(0); s < k; s++ {
		l.GlobalOf[s] = make([]graph.NodeID, sizes[s])
		for i := range l.GlobalOf[s] {
			l.GlobalOf[s][i] = -1
		}
	}
	for v := int64(0); v < n; v++ {
		l.GlobalOf[l.ShardOf[v]][l.LocalOf[v]] = graph.NodeID(v)
	}
	for s := int32(0); s < k; s++ {
		for i, g := range l.GlobalOf[s] {
			if g == -1 {
				return nil, fmt.Errorf("shard: locator hole at (%d,%d)", s, i)
			}
		}
	}
	return l, nil
}

// SaveFile writes the locator to path.
func (l *Locator) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.Encode(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadLocatorFile reads a locator from path.
func LoadLocatorFile(path string) (*Locator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeLocator(f)
}
