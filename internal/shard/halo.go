package shard

import (
	"fmt"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
)

// Halo row caching implements the knob discussed in paper §3.2.1: "The
// higher the hop value for halo nodes, the lower the communication
// requirements and the higher the amount of stored data." The default
// shard caches halo nodes as columns only (their IDs, weights and degrees),
// which answers any request *about core nodes* locally. With halo rows
// cached, the shard additionally stores the full neighbor row of every
// 1-hop halo node, so a traversal that expands a halo node is served from
// shared memory instead of RPC — trading memory for communication.

// BuildOptions controls shard construction.
type BuildOptions struct {
	// CacheHaloRows stores the neighbor rows of 1-hop halo nodes in each
	// shard (the "2-hop halo" configuration).
	CacheHaloRows bool
}

// haloKey packs a (shard, local) address.
func haloKey(sh, local int32) uint64 {
	return uint64(uint32(sh))<<32 | uint64(uint32(local))
}

// HaloRow returns the cached neighbor row of halo node (sh, local) if this
// shard stores it. It never returns rows for the shard's own core nodes —
// use VertexProp for those.
func (s *Shard) HaloRow(sh, local int32) (VertexProp, bool) {
	if s.haloIndex == nil || sh == s.ShardID {
		return VertexProp{}, false
	}
	ri, ok := s.haloIndex[haloKey(sh, local)]
	if !ok {
		return VertexProp{}, false
	}
	lo, hi := s.HaloIndptr[ri], s.HaloIndptr[ri+1]
	return VertexProp{
		Local:   local,
		WDeg:    s.HaloWDeg[ri],
		Locals:  s.HaloNbrLocal[lo:hi],
		Shards:  s.HaloNbrShard[lo:hi],
		Weights: s.HaloNbrWeight[lo:hi],
		WDegs:   s.HaloNbrWDeg[lo:hi],
	}, true
}

// HasHaloRows reports whether this shard caches halo rows.
func (s *Shard) HasHaloRows() bool { return s.haloIndex != nil }

// NumHaloRows returns the number of cached halo rows.
func (s *Shard) NumHaloRows() int { return len(s.HaloKeys) }

// buildHaloRows populates the halo row cache from the full graph (a
// preprocessing-time operation; at query time the graph is sharded).
func (s *Shard) buildHaloRows(g *graph.Graph, loc *Locator) {
	// Collect distinct halo (shard, local) pairs from the columns.
	seen := make(map[uint64]struct{})
	var order []uint64
	for i := range s.NbrLocal {
		if s.NbrShard[i] == s.ShardID {
			continue
		}
		k := haloKey(s.NbrShard[i], s.NbrLocal[i])
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		order = append(order, k)
	}
	s.HaloKeys = order
	s.HaloIndptr = make([]int64, len(order)+1)
	s.HaloWDeg = make([]float32, len(order))
	s.haloIndex = make(map[uint64]int32, len(order))
	var total int64
	for i, k := range order {
		sh := int32(k >> 32)
		local := int32(uint32(k))
		gv := loc.Global(sh, local)
		total += int64(g.Degree(gv))
		s.haloIndex[k] = int32(i)
	}
	s.HaloNbrLocal = make([]int32, 0, total)
	s.HaloNbrShard = make([]int32, 0, total)
	s.HaloNbrWeight = make([]float32, 0, total)
	s.HaloNbrWDeg = make([]float32, 0, total)
	for i, k := range order {
		sh := int32(k >> 32)
		local := int32(uint32(k))
		gv := loc.Global(sh, local)
		s.HaloWDeg[i] = g.WeightedDegree[gv]
		ws := g.EdgeWeights(gv)
		for j, u := range g.Neighbors(gv) {
			s.HaloNbrLocal = append(s.HaloNbrLocal, loc.LocalOf[u])
			s.HaloNbrShard = append(s.HaloNbrShard, loc.ShardOf[u])
			s.HaloNbrWeight = append(s.HaloNbrWeight, ws[j])
			s.HaloNbrWDeg = append(s.HaloNbrWDeg, g.WeightedDegree[u])
		}
		s.HaloIndptr[i+1] = int64(len(s.HaloNbrLocal))
	}
}

// RebuildHaloIndex reconstructs the halo lookup map from HaloKeys. Callers
// that assemble a Shard from arrays directly (deserialization, the delta
// compactor's fresh-base rebuild) use it to make HaloRow work.
func (s *Shard) RebuildHaloIndex() error { return s.rebuildHaloIndex() }

// rebuildHaloIndex reconstructs the lookup map after deserialization.
func (s *Shard) rebuildHaloIndex() error {
	if len(s.HaloKeys) == 0 {
		return nil
	}
	if len(s.HaloIndptr) != len(s.HaloKeys)+1 {
		return fmt.Errorf("shard %d: halo indptr length mismatch", s.ShardID)
	}
	s.haloIndex = make(map[uint64]int32, len(s.HaloKeys))
	for i, k := range s.HaloKeys {
		s.haloIndex[k] = int32(i)
	}
	return nil
}

// BuildWithOptions is Build plus construction options.
func BuildWithOptions(g *graph.Graph, a partition.Assignment, numShards int, opts BuildOptions) ([]*Shard, *Locator, error) {
	shards, loc, err := Build(g, a, numShards)
	if err != nil {
		return nil, nil, err
	}
	if opts.CacheHaloRows {
		for _, s := range shards {
			s.buildHaloRows(g, loc)
		}
	}
	return shards, loc, nil
}
