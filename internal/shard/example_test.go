package shard_test

import (
	"fmt"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/shard"
)

// Example_figure2 reconstructs the spirit of the paper's Figure 2: a small
// weighted graph split into two shards, where nodes are addressed as
// (local ID, shard ID) and cross-shard neighbors appear as halo columns.
func Example_figure2() {
	// Global graph: 5 nodes. Shard 0 gets {0,1,2}, shard 1 gets {3,4}.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 0, Weight: 2},
		{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 1, Weight: 1},
		{Src: 2, Dst: 3, Weight: 4}, {Src: 3, Dst: 2, Weight: 4}, // cut edge
		{Src: 3, Dst: 4, Weight: 3}, {Src: 4, Dst: 3, Weight: 3},
	}
	g, _ := graph.FromEdges(5, edges)
	assign := partition.Assignment{0, 0, 0, 1, 1}
	shards, loc, _ := shard.Build(g, assign, 2)

	// Node 2 lives on shard 0; its neighbor 3 is a halo node from shard 1.
	sh, local := loc.Locate(2)
	vp := shards[sh].VertexProp(local)
	for i := range vp.Locals {
		kind := "core"
		if vp.Shards[i] != sh {
			kind = "halo"
		}
		fmt.Printf("neighbor (%d,%d) [%s] weight=%g nbr-wdeg=%g\n",
			vp.Locals[i], vp.Shards[i], kind, vp.Weights[i], vp.WDegs[i])
	}
	// The weighted degree of node 2 itself is stored with the row.
	fmt.Printf("dw(2) = %g\n", vp.WDeg)
	// Output:
	// neighbor (1,0) [core] weight=1 nbr-wdeg=3
	// neighbor (0,1) [halo] weight=4 nbr-wdeg=7
	// dw(2) = 5
}
