package cache

import (
	"context"
	"sync"
	"sync/atomic"

	"pprengine/internal/metrics"
)

// featRowOverhead approximates the fixed per-entry cost: the entry struct,
// the map slot, and the slice header.
const featRowOverhead = 64

// featBytes is the budget charge for one cached feature row.
func featBytes(row []float32) int64 {
	return featRowOverhead + 4*int64(len(row))
}

// featEntry is one resident feature row in a stripe's LRU list.
type featEntry struct {
	key        ckey
	row        []float32
	bytes      int64
	prev, next *featEntry
}

type featStripe struct {
	mu      sync.Mutex
	items   map[ckey]*featEntry
	head    *featEntry
	tail    *featEntry
	bytes   int64
	budget  int64
	flights map[ckey]*FeatFlight
}

// FeatureCache is the feature-tier sibling of Cache: a sharded,
// byte-budgeted LRU of feature rows keyed by (shard ID, local ID) with the
// same single-flight fetch deduplication, plus one policy the neighbor-row
// cache does not need — mass-based admission. Feature rows are fixed-size
// and a serving workload's working set is the union of many top-K
// subgraphs, so caching every fetched row would cycle the LRU with one-off
// cold vertices. Following the probabilistic-caching idea of Kaler et al.
// (communication-efficient GNN sampling), a fetched row is admitted only
// when the PPR mass that requested it clears a threshold: hub vertices
// that dominate many egos' top-K sets carry high mass and stick, long-tail
// rows pass through without evicting them.
type FeatureCache struct {
	stripes   [numShards]featStripe
	admitMass float64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	rejected  atomic.Int64
}

// NewFeatures returns a feature cache bounded by maxBytes (split evenly
// across the lock stripes). Rows are admitted only when the highest PPR
// mass among the queries that reserved them reaches admitMass; 0 admits
// every row. It returns nil when maxBytes <= 0 — the "disabled" value.
func NewFeatures(maxBytes int64, admitMass float64) *FeatureCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &FeatureCache{admitMass: admitMass}
	per := maxBytes / numShards
	if per < featRowOverhead {
		per = featRowOverhead
	}
	for i := range c.stripes {
		c.stripes[i] = featStripe{
			items:   make(map[ckey]*featEntry),
			budget:  per,
			flights: make(map[ckey]*FeatFlight),
		}
	}
	return c
}

func (c *FeatureCache) stripeFor(key ckey) *featStripe {
	return &c.stripes[mix(key.addr)&(numShards-1)]
}

// GetOrReserve is the fetch-path entry point, with the same contract as
// Cache.GetOrReserve: exactly one of a hit (row, true, nil, false), flight
// leadership (_, false, flight, true — the caller MUST Fulfill or
// AttachSource), or a coalesced wait (_, false, flight, false). mass is the
// requesting row's PPR mass; the flight remembers the highest mass seen
// across all reservers, and the admission policy reads that maximum at
// Fulfill time — a row two low-mass queries collide on may still earn its
// slot from a third, high-mass one.
func (c *FeatureCache) GetOrReserve(sh, local int32, mass float64) ([]float32, bool, *FeatFlight, bool) {
	return c.GetOrReserveAt(sh, local, 0, mass)
}

// GetOrReserveAt is GetOrReserve keyed by (shard, local, epoch). Vertices
// appended by the delta tier get their feature rows keyed under the epoch
// that created them, and epoch-pinned serving paths never read another
// epoch's fill. Epoch 0 is the static base graph.
func (c *FeatureCache) GetOrReserveAt(sh, local int32, epoch uint64, mass float64) ([]float32, bool, *FeatFlight, bool) {
	key := ckey{addr: pack(sh, local), epoch: epoch}
	s := c.stripeFor(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		metrics.FeatCacheHits.Inc(1)
		return e.row, true, nil, false
	}
	if f, ok := s.flights[key]; ok {
		if mass > f.mass {
			f.mass = mass // guarded by the stripe lock, like the table itself
		}
		s.mu.Unlock()
		c.coalesced.Add(1)
		metrics.FeatCacheCoalesced.Inc(1)
		return nil, false, f, false
	}
	f := &FeatFlight{
		c:     c,
		key:   key,
		mass:  mass,
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	s.flights[key] = f
	s.mu.Unlock()
	c.misses.Add(1)
	metrics.FeatCacheMisses.Inc(1)
	return nil, false, f, true
}

// moveToFront makes e the list head. Caller holds s.mu.
func (s *featStripe) moveToFront(e *featEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the list. Caller holds s.mu.
func (s *featStripe) unlink(e *featEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// add inserts a row, evicting from the LRU tail until the stripe fits its
// budget. Rows larger than the whole stripe budget are not admitted.
func (c *FeatureCache) add(key ckey, row []float32) {
	b := featBytes(row)
	s := c.stripeFor(key)
	s.mu.Lock()
	if _, dup := s.items[key]; dup {
		s.mu.Unlock()
		return
	}
	if b > s.budget {
		s.mu.Unlock()
		return
	}
	var evicted, freed int64
	for s.bytes+b > s.budget && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		s.bytes -= victim.bytes
		freed += victim.bytes
		evicted++
	}
	e := &featEntry{key: key, row: row, bytes: b}
	s.items[key] = e
	s.moveToFront(e)
	s.bytes += b
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		metrics.FeatCacheEvictions.Inc(evicted)
	}
	metrics.FeatCacheBytes.Add(b - freed)
	metrics.FeatCacheEntries.Add(1 - evicted)
}

// removeFlight deletes f from the flight table if it is still the
// registered flight for its key.
func (c *FeatureCache) removeFlight(key ckey, f *FeatFlight) {
	s := c.stripeFor(key)
	s.mu.Lock()
	if cur, ok := s.flights[key]; ok && cur == f {
		delete(s.flights, key)
	}
	s.mu.Unlock()
}

// FeatStats is a point-in-time snapshot of the feature-cache counters.
type FeatStats struct {
	Hits      int64 // rows served from the cache
	Misses    int64 // rows that started a fetch (flight leaders)
	Coalesced int64 // rows that piggybacked on another fetch
	Evictions int64 // rows evicted under the byte budget
	Rejected  int64 // fetched rows the admission policy declined to cache
	Entries   int64 // resident rows
	Bytes     int64 // resident bytes (approximate)
}

// Add accumulates other into s.
func (s *FeatStats) Add(other FeatStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Coalesced += other.Coalesced
	s.Evictions += other.Evictions
	s.Rejected += other.Rejected
	s.Entries += other.Entries
	s.Bytes += other.Bytes
}

// Stats returns a snapshot. A nil cache reports zeros.
func (c *FeatureCache) Stats() FeatStats {
	if c == nil {
		return FeatStats{}
	}
	st := FeatStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Entries += int64(len(s.items))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// FeatFlight is one in-flight fetch of a single feature row, shared by
// every inference that missed on the key while the fetch was pending. Same
// lifecycle as Flight (AttachSource / Fulfill / any-participant resolve);
// the row handed to Fulfill must be cache-owned (copied out of the RPC
// response).
type FeatFlight struct {
	c    *FeatureCache
	key  ckey
	mass float64 // max PPR mass among reservers; stripe-lock guarded

	once sync.Once
	done chan struct{}
	row  []float32
	err  error

	ready   chan struct{} // closed by AttachSource
	src     <-chan struct{}
	resolve func()
}

// AttachSource arms external resolution: src is closed when the underlying
// response is available, and resolve (idempotent, multi-goroutine safe)
// turns it into Fulfill calls. Must be called at most once, by the leader.
func (f *FeatFlight) AttachSource(src <-chan struct{}, resolve func()) {
	f.src = src
	f.resolve = resolve
	close(f.ready)
}

// Fulfill completes the flight: on success the row is inserted into the
// cache iff the flight's highest requester mass clears the admission
// threshold; in all cases the flight leaves the in-flight table and every
// waiter is released. Extra calls are no-ops.
func (f *FeatFlight) Fulfill(row []float32, err error) {
	f.once.Do(func() {
		if err == nil {
			s := f.c.stripeFor(f.key)
			s.mu.Lock()
			mass := f.mass
			s.mu.Unlock()
			if mass >= f.c.admitMass {
				f.c.add(f.key, row)
			} else {
				f.c.rejected.Add(1)
				metrics.FeatCacheRejected.Inc(1)
			}
		}
		f.row, f.err = row, err
		f.c.removeFlight(f.key, f)
		close(f.done)
	})
}

// Wait blocks until the flight resolves or ctx ends. Like Flight.Wait, any
// participant can drive the resolve once the source fires, so an abandoned
// leader never strands the waiters.
func (f *FeatFlight) Wait(ctx context.Context) ([]float32, error) {
	select {
	case <-f.done:
		return f.row, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.ready:
	}
	select {
	case <-f.done:
		return f.row, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-f.src:
		f.resolve()
		<-f.done
		return f.row, f.err
	}
}
