package cache

import "testing"

// TestEpochKeyIsolation is the mutation-tier regression test: a neighbor row
// cached at epoch N must never answer a read pinned at epoch N+1 (or any
// other epoch) — the delta tier relies on the cache key, not invalidation,
// to keep epoch-pinned queries consistent.
func TestEpochKeyIsolation(t *testing.T) {
	c := New(1 << 20)

	rowN := Row{Locals: []int32{1, 2}, Shards: []int32{0, 0}, Weights: []float32{1, 1}, WDegs: []float32{2, 2}, WDeg: 2}
	_, hit, fl, leader := c.GetOrReserveAt(0, 7, 5)
	if hit || !leader {
		t.Fatalf("first reserve at epoch 5: hit=%v leader=%v", hit, leader)
	}
	fl.Fulfill(rowN, nil)

	// Same vertex, same epoch: a hit with the fulfilled row.
	got, hit, _, _ := c.GetOrReserveAt(0, 7, 5)
	if !hit || len(got.Locals) != 2 || got.WDeg != 2 {
		t.Fatalf("epoch-5 reread: hit=%v row=%+v", hit, got)
	}
	if r, ok := c.GetAt(0, 7, 5); !ok || r.WDeg != 2 {
		t.Fatalf("GetAt(epoch 5) = %+v, %v", r, ok)
	}

	// Epoch N+1 must miss — the cached epoch-5 row would be stale there.
	_, hit, fl6, leader := c.GetOrReserveAt(0, 7, 6)
	if hit {
		t.Fatal("epoch-6 read served the epoch-5 row")
	}
	if !leader {
		t.Fatal("epoch-6 miss did not elect a leader")
	}
	rowN1 := Row{Locals: []int32{1, 2, 3}, Shards: []int32{0, 0, 1}, Weights: []float32{1, 1, 1}, WDegs: []float32{2, 2, 1}, WDeg: 3}
	fl6.Fulfill(rowN1, nil)

	// Both epochs now resident, each serving its own view.
	if r, ok := c.GetAt(0, 7, 5); !ok || r.WDeg != 2 {
		t.Fatalf("epoch-5 row clobbered: %+v, %v", r, ok)
	}
	if r, ok := c.GetAt(0, 7, 6); !ok || r.WDeg != 3 {
		t.Fatalf("epoch-6 row wrong: %+v, %v", r, ok)
	}
	// The base epoch (0) was never filled and must miss too.
	if _, ok := c.Get(0, 7); ok {
		t.Fatal("epoch-0 read served a delta-epoch row")
	}

	// Flights are epoch-exact as well: a pending epoch-7 fetch must not
	// coalesce an epoch-8 reader.
	_, _, _, lead7 := c.GetOrReserveAt(0, 9, 7)
	if !lead7 {
		t.Fatal("expected epoch-7 leadership")
	}
	_, _, _, lead8 := c.GetOrReserveAt(0, 9, 8)
	if !lead8 {
		t.Fatal("epoch-8 read coalesced onto the epoch-7 flight")
	}
}

// TestFeatureEpochKeyIsolation pins the same contract for the feature cache.
func TestFeatureEpochKeyIsolation(t *testing.T) {
	c := NewFeatures(1<<20, 0)

	_, hit, fl, leader := c.GetOrReserveAt(1, 3, 2, 1.0)
	if hit || !leader {
		t.Fatalf("first reserve: hit=%v leader=%v", hit, leader)
	}
	fl.Fulfill([]float32{1, 2, 3}, nil)

	if row, hit, _, _ := c.GetOrReserveAt(1, 3, 2, 1.0); !hit || len(row) != 3 {
		t.Fatalf("epoch-2 reread: hit=%v row=%v", hit, row)
	}
	_, hit, fl3, leader := c.GetOrReserveAt(1, 3, 3, 1.0)
	if hit {
		t.Fatal("epoch-3 read served the epoch-2 feature row")
	}
	if !leader {
		t.Fatal("epoch-3 miss did not elect a leader")
	}
	fl3.Fulfill([]float32{4, 5, 6}, nil)
	if row, hit, _, _ := c.GetOrReserveAt(1, 3, 3, 1.0); !hit || row[0] != 4 {
		t.Fatalf("epoch-3 reread: hit=%v row=%v", hit, row)
	}
	if _, hit, flz, _ := c.GetOrReserve(1, 3, 1.0); hit {
		t.Fatal("epoch-0 read served a delta-epoch feature row")
	} else {
		flz.Fulfill(nil, nil) // clean up the flight table
	}
}
