package cache

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func fulfillRow(f *FeatFlight, v float32, dim int) []float32 {
	row := make([]float32, dim)
	for i := range row {
		row[i] = v
	}
	f.Fulfill(row, nil)
	return row
}

func TestFeatureCacheHitAfterAdmit(t *testing.T) {
	c := NewFeatures(1<<20, 0)
	_, hit, f, leader := c.GetOrReserve(2, 7, 0.3)
	if hit || !leader {
		t.Fatalf("first access: hit=%v leader=%v, want miss+leadership", hit, leader)
	}
	want := fulfillRow(f, 1.5, 8)
	row, hit, _, _ := c.GetOrReserve(2, 7, 0.3)
	if !hit {
		t.Fatal("second access missed after an admitted fulfill")
	}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row[%d] = %v, want %v", i, row[i], want[i])
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeatureCacheMassAdmission(t *testing.T) {
	c := NewFeatures(1<<20, 0.5)
	// Below-threshold mass: the fetch completes but the row is not cached.
	_, _, f, leader := c.GetOrReserve(0, 1, 0.1)
	if !leader {
		t.Fatal("expected flight leadership")
	}
	fulfillRow(f, 1, 4)
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("low-mass fulfill: stats = %+v, want rejected and nothing resident", st)
	}
	if _, hit, f2, leader := c.GetOrReserve(0, 1, 0.1); hit || !leader {
		t.Fatalf("re-access after rejection: hit=%v leader=%v, want a fresh miss", hit, leader)
	} else {
		fulfillRow(f2, 1, 4)
	}
	// At/above threshold: admitted.
	_, _, f3, leader := c.GetOrReserve(0, 2, 0.5)
	if !leader {
		t.Fatal("expected flight leadership")
	}
	fulfillRow(f3, 2, 4)
	if _, hit, _, _ := c.GetOrReserve(0, 2, 0); !hit {
		t.Fatal("high-mass row was not admitted")
	}
}

func TestFeatureCacheCoalesceTakesMaxMass(t *testing.T) {
	c := NewFeatures(1<<20, 0.5)
	// The leader's own mass is below the threshold...
	_, _, f, leader := c.GetOrReserve(1, 3, 0.1)
	if !leader {
		t.Fatal("expected flight leadership")
	}
	// ...but a high-mass query coalesces onto the same flight, so the row
	// earns its slot from the maximum mass seen.
	_, hit, f2, leader2 := c.GetOrReserve(1, 3, 0.9)
	if hit || leader2 || f2 != f {
		t.Fatalf("coalesce: hit=%v leader=%v sameFlight=%v", hit, leader2, f2 == f)
	}
	want := fulfillRow(f, 3, 4)
	got, err := f2.Wait(context.Background())
	if err != nil || len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("coalesced wait = %v, %v", got, err)
	}
	if _, hit, _, _ := c.GetOrReserve(1, 3, 0); !hit {
		t.Fatal("max-mass admission failed: row not resident")
	}
	if st := c.Stats(); st.Coalesced != 1 {
		t.Fatalf("stats = %+v, want 1 coalesced", st)
	}
}

func TestFeatureCacheEvictsUnderBudget(t *testing.T) {
	const maxBytes = 16 << 10
	c := NewFeatures(maxBytes, 0)
	for i := int32(0); i < 300; i++ {
		_, _, f, leader := c.GetOrReserve(0, i, 1)
		if !leader {
			t.Fatalf("key %d: expected leadership", i)
		}
		fulfillRow(f, float32(i), 64)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overflowing the budget: stats = %+v", st)
	}
	if st.Bytes > maxBytes {
		t.Fatalf("resident bytes %d exceed the %d budget", st.Bytes, maxBytes)
	}
	if st.Entries >= 300 {
		t.Fatalf("all %d rows resident despite the budget", st.Entries)
	}
}

func TestFeatureCacheOversizedRowNotAdmitted(t *testing.T) {
	// Budget so small each stripe can hold only the fixed overhead: no
	// non-empty row fits, and add must decline rather than evict forever.
	c := NewFeatures(1, 0)
	_, _, f, _ := c.GetOrReserve(0, 0, 1)
	fulfillRow(f, 1, 1024)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized row was admitted: stats = %+v", st)
	}
}

func TestFeatureCacheAnyParticipantResolves(t *testing.T) {
	c := NewFeatures(1<<20, 0)
	_, _, f, leader := c.GetOrReserve(4, 4, 1)
	if !leader {
		t.Fatal("expected flight leadership")
	}
	src := make(chan struct{})
	f.AttachSource(src, func() { f.Fulfill([]float32{42}, nil) })
	_, _, f2, _ := c.GetOrReserve(4, 4, 1)

	// The leader abandons the flight; a waiter must still complete it once
	// the source fires.
	done := make(chan error, 1)
	go func() {
		row, err := f2.Wait(context.Background())
		if err == nil && (len(row) != 1 || row[0] != 42) {
			err = fmt.Errorf("row = %v", row)
		}
		done <- err
	}()
	close(src)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never resolved the armed flight")
	}
}

func TestFeatureCacheErrorNotCached(t *testing.T) {
	c := NewFeatures(1<<20, 0)
	_, _, f, _ := c.GetOrReserve(5, 5, 1)
	boom := errors.New("boom")
	f.Fulfill(nil, boom)
	if _, err := f.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("wait err = %v, want the fulfill error", err)
	}
	if _, hit, _, leader := c.GetOrReserve(5, 5, 1); hit || !leader {
		t.Fatalf("after a failed fetch: hit=%v leader=%v, want a fresh miss", hit, leader)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed fetch left residue: stats = %+v", st)
	}
}

func TestFeatureCacheWaitHonorsContext(t *testing.T) {
	c := NewFeatures(1<<20, 0)
	_, _, f, _ := c.GetOrReserve(6, 6, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	f.Fulfill([]float32{1}, nil) // release the flight table entry
}
