// Package cache implements the dynamic remote-neighbor-row cache that sits
// between the query drivers and the RPC layer. The paper's halo cache
// (§3.2.1) is static: it short-circuits remote fetches only for neighbors
// captured at partition time. Under a heavy query stream the same hub
// vertices are re-fetched over RPC by every query that touches them — on
// power-law graphs a small set of high-degree vertices dominates that
// traffic. This package adds the missing dynamic layer:
//
//   - a sharded, byte-budgeted LRU of decoded neighbor rows keyed by
//     (shard ID, local ID, mutation epoch). The base graph is immutable and
//     the delta tier (internal/delta) never rewrites an epoch once applied,
//     so entries never need invalidation: a row cached at epoch N simply
//     cannot answer a read pinned at epoch N+1 — the keys differ — and stale
//     epochs age out of the LRU. Static deployments use epoch 0 throughout
//     and see the original single-key behavior;
//
//   - single-flight deduplication of in-flight fetches: when several
//     concurrent queries miss on the same vertex, exactly one RPC is issued
//     and every query waits on the same Flight. The response populates the
//     cache and resolves all waiters at once.
//
// The cache is shared by all queries of a machine (like the shard itself);
// all methods are safe for concurrent use.
package cache

import (
	"context"
	"sync"
	"sync/atomic"

	"pprengine/internal/metrics"
)

// Row is one remote vertex's decoded neighbor row — the cached analogue of
// shard.VertexProp, with slices the cache owns (copied out of the RPC
// response so one hot row does not pin a whole response buffer).
type Row struct {
	Locals  []int32
	Shards  []int32
	Weights []float32
	WDegs   []float32
	// WDeg is the vertex's own weighted out-degree.
	WDeg float32
}

// rowOverhead approximates the fixed per-entry cost: the entry struct, the
// map slot, and the four slice headers.
const rowOverhead = 96

// Bytes returns the approximate memory footprint charged against the budget.
func (r Row) Bytes() int64 {
	return rowOverhead + int64(len(r.Locals))*16 // 2×int32 + 2×float32 per neighbor
}

// numShards is the lock-striping factor. Addresses are packed
// (shard<<32|local), so the mix below must spread both halves.
const numShards = 16

func pack(sh, local int32) uint64 {
	return uint64(uint32(sh))<<32 | uint64(uint32(local))
}

// ckey is the full cache key: a packed (shard, local) address plus the
// mutation epoch the row was resolved at. Exact equality — never a hash — is
// what guarantees an epoch-N row is invisible to an epoch-N+1 read. The
// stripe is derived from the address alone, so every epoch of one vertex
// lives on the one stripe StripeOf reports.
type ckey struct {
	addr  uint64
	epoch uint64
}

// mix is a 64-bit finalizer (splitmix64) so consecutive local IDs spread
// across stripes.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// entry is one resident row in a stripe's LRU list (head = most recent).
type entry struct {
	key        ckey
	row        Row
	bytes      int64
	prev, next *entry
}

type stripe struct {
	mu      sync.Mutex
	items   map[ckey]*entry
	head    *entry
	tail    *entry
	bytes   int64
	budget  int64
	flights map[ckey]*Flight
}

// Cache is a sharded LRU of neighbor rows under a global byte budget, plus
// the single-flight table for in-flight fetches.
type Cache struct {
	stripes [numShards]stripe

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// New returns a cache bounded by maxBytes (split evenly across the lock
// stripes). It returns nil when maxBytes <= 0, and a nil *Cache is the
// "disabled" value callers test against.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{}
	per := maxBytes / numShards
	if per < rowOverhead {
		per = rowOverhead // always admit at least one minimal row per stripe
	}
	for i := range c.stripes {
		c.stripes[i] = stripe{
			items:   make(map[ckey]*entry),
			budget:  per,
			flights: make(map[ckey]*Flight),
		}
	}
	return c
}

func (c *Cache) stripeFor(key ckey) *stripe {
	return &c.stripes[mix(key.addr)&(numShards-1)]
}

// Stripes returns the lock-striping factor — the unit of ownership a
// shard-affinity compute layer can partition cache work by (worker w owning
// stripes s with s % workers == w, the rule of DESIGN.md §5j).
func (c *Cache) Stripes() int { return numShards }

// StripeOf returns the stripe index that owns (sh, local)'s entry — the same
// derivation every internal path uses, exported so affinity workers can keep
// their cache touches on owned stripes and avoid cross-worker lock traffic.
func (c *Cache) StripeOf(sh, local int32) int {
	return int(mix(pack(sh, local)) & (numShards - 1))
}

// Get returns the cached row for (sh, local) at epoch 0 — the static-graph
// entry point, equivalent to GetAt with the base epoch.
func (c *Cache) Get(sh, local int32) (Row, bool) {
	return c.GetAt(sh, local, 0)
}

// GetAt returns the cached row for (sh, local) as resolved at the given
// mutation epoch, marking it most recently used. Rows cached at any other
// epoch never match.
func (c *Cache) GetAt(sh, local int32, epoch uint64) (Row, bool) {
	key := ckey{addr: pack(sh, local), epoch: epoch}
	s := c.stripeFor(key)
	s.mu.Lock()
	e, ok := s.items[key]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		return Row{}, false
	}
	c.hits.Add(1)
	metrics.CacheHits.Inc(1)
	return e.row, true
}

// GetOrReserve is the fetch-path entry point. It returns exactly one of:
//
//   - a cache hit: (row, true, nil, false);
//   - leadership of a new flight: (_, false, flight, true) — the caller MUST
//     issue the fetch and either Fulfill the flight or AttachSource so any
//     waiter can resolve it;
//   - a coalesced wait on an existing flight: (_, false, flight, false) —
//     the caller just Waits.
func (c *Cache) GetOrReserve(sh, local int32) (Row, bool, *Flight, bool) {
	return c.GetOrReserveAt(sh, local, 0)
}

// GetOrReserveAt is GetOrReserve keyed by (shard, local, epoch): hits,
// flights, and fills are all epoch-exact, so a query pinned at epoch N+1 can
// never be served — or coalesced onto — a row resolved at epoch N. Epoch 0 is
// the static base graph (what GetOrReserve uses).
func (c *Cache) GetOrReserveAt(sh, local int32, epoch uint64) (Row, bool, *Flight, bool) {
	key := ckey{addr: pack(sh, local), epoch: epoch}
	s := c.stripeFor(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		metrics.CacheHits.Inc(1)
		return e.row, true, nil, false
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		metrics.CacheCoalesced.Inc(1)
		return Row{}, false, f, false
	}
	f := &Flight{
		c:     c,
		key:   key,
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	s.flights[key] = f
	s.mu.Unlock()
	c.misses.Add(1)
	metrics.CacheMisses.Inc(1)
	return Row{}, false, f, true
}

// moveToFront makes e the list head. Caller holds s.mu.
func (s *stripe) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the list. Caller holds s.mu.
func (s *stripe) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// add inserts a row, evicting from the LRU tail until the stripe fits its
// budget. Rows larger than the whole stripe budget are not admitted.
func (c *Cache) add(key ckey, row Row) {
	b := row.Bytes()
	s := c.stripeFor(key)
	s.mu.Lock()
	if _, dup := s.items[key]; dup {
		// A (vertex, epoch) pair resolves to exactly one row, so a duplicate
		// insert carries identical data.
		s.mu.Unlock()
		return
	}
	if b > s.budget {
		s.mu.Unlock()
		return
	}
	var evicted, freed int64
	for s.bytes+b > s.budget && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		s.bytes -= victim.bytes
		freed += victim.bytes
		evicted++
	}
	e := &entry{key: key, row: row, bytes: b}
	s.items[key] = e
	s.moveToFront(e)
	s.bytes += b
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		metrics.CacheEvictions.Inc(evicted)
	}
	// Process-wide occupancy gauges for the /metrics endpoint.
	metrics.CacheBytes.Add(b - freed)
	metrics.CacheEntries.Add(1 - evicted)
}

// removeFlight deletes f from the flight table if it is still the registered
// flight for its key (identity-compared, so a successor flight for the same
// key is never removed by a stale completion).
func (c *Cache) removeFlight(key ckey, f *Flight) {
	s := c.stripeFor(key)
	s.mu.Lock()
	if cur, ok := s.flights[key]; ok && cur == f {
		delete(s.flights, key)
	}
	s.mu.Unlock()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // rows served from the cache
	Misses    int64 // rows that started a fetch (flight leaders)
	Coalesced int64 // rows that piggybacked on another query's fetch
	Evictions int64 // rows evicted to stay under the byte budget
	Entries   int64 // resident rows
	Bytes     int64 // resident bytes (approximate)
}

// Stats returns a snapshot. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Entries += int64(len(s.items))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Flight is one in-flight fetch of a single vertex row, shared by every
// query that missed on the key while the fetch was pending.
//
// Lifecycle: the leader (the caller GetOrReserve elected) issues the RPC and
// calls AttachSource with the RPC future's done channel plus a resolve
// callback that decodes the response and Fulfills every flight of the
// request group. Resolution can then be driven by ANY participant — leader
// or waiter — whichever observes the response first, so a leader that
// abandons its query (deadline, batch abort) never strands the waiters: the
// next Wait resolves the group itself once the response arrives.
type Flight struct {
	c   *Cache
	key ckey

	once sync.Once
	done chan struct{}
	row  Row
	err  error

	ready   chan struct{} // closed by AttachSource
	src     <-chan struct{}
	resolve func()
}

// AttachSource arms external resolution: src is closed when the underlying
// response (or failure) is available, and resolve — which must be safe to
// call from multiple goroutines — turns it into Fulfill calls. Must be
// called at most once, by the flight's leader.
func (f *Flight) AttachSource(src <-chan struct{}, resolve func()) {
	f.src = src
	f.resolve = resolve
	close(f.ready)
}

// Fulfill completes the flight: on success the row is inserted into the
// cache, and in all cases the flight is removed from the in-flight table and
// every waiter is released. Extra calls are no-ops.
func (f *Flight) Fulfill(row Row, err error) {
	f.once.Do(func() {
		if err == nil {
			f.c.add(f.key, row)
		}
		f.row, f.err = row, err
		f.c.removeFlight(f.key, f)
		close(f.done)
	})
}

// Wait blocks until the flight resolves or ctx ends. A ctx expiry abandons
// only this waiter; the flight itself stays pending for the others and still
// populates the cache when the response arrives.
func (f *Flight) Wait(ctx context.Context) (Row, error) {
	select {
	case <-f.done:
		return f.row, f.err
	case <-ctx.Done():
		return Row{}, ctx.Err()
	case <-f.ready:
	}
	select {
	case <-f.done:
		return f.row, f.err
	case <-ctx.Done():
		return Row{}, ctx.Err()
	case <-f.src:
		// The response is in; resolve the group ourselves (idempotent) so
		// no waiter depends on the leader still being around.
		f.resolve()
		<-f.done
		return f.row, f.err
	}
}
