package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mkRow builds a row with deg neighbors (Bytes() = rowOverhead + 16*deg).
func mkRow(deg int) Row {
	r := Row{
		Locals:  make([]int32, deg),
		Shards:  make([]int32, deg),
		Weights: make([]float32, deg),
		WDegs:   make([]float32, deg),
		WDeg:    float32(deg),
	}
	for i := range r.Locals {
		r.Locals[i] = int32(i)
	}
	return r
}

// fulfillLeader reserves (sh, local), requires leadership, and fulfills with
// row — the test shorthand for "insert".
func fulfillLeader(t *testing.T, c *Cache, sh, local int32, row Row) {
	t.Helper()
	_, hit, fl, leader := c.GetOrReserve(sh, local)
	if hit || !leader {
		t.Fatalf("GetOrReserve(%d,%d): hit=%v leader=%v, want fresh leader", sh, local, hit, leader)
	}
	fl.Fulfill(row, nil)
}

// sameStripeLocals returns n shard-0 local IDs that all hash to one stripe,
// for deterministic LRU tests despite the striping.
func sameStripeLocals(c *Cache, n int) []int32 {
	want := c.stripeFor(ckey{addr: pack(0, 0)})
	out := []int32{0}
	for l := int32(1); len(out) < n; l++ {
		if c.stripeFor(ckey{addr: pack(0, l)}) == want {
			out = append(out, l)
		}
	}
	return out
}

func TestDisabledCacheIsNil(t *testing.T) {
	if New(0) != nil || New(-5) != nil {
		t.Fatal("New with non-positive budget must return nil")
	}
	var c *Cache
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zeros", s)
	}
}

func TestHitAfterFulfill(t *testing.T) {
	c := New(1 << 20)
	fulfillLeader(t, c, 3, 7, mkRow(5))
	row, ok := c.Get(3, 7)
	if !ok || len(row.Locals) != 5 || row.WDeg != 5 {
		t.Fatalf("Get after Fulfill: ok=%v row=%+v", ok, row)
	}
	row2, hit, _, _ := c.GetOrReserve(3, 7)
	if !hit || len(row2.Locals) != 5 {
		t.Fatalf("GetOrReserve after Fulfill: hit=%v", hit)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 entry", st)
	}
	if st.Bytes != mkRow(5).Bytes() {
		t.Fatalf("stats bytes = %d, want %d", st.Bytes, mkRow(5).Bytes())
	}
}

func TestKeysAreShardQualified(t *testing.T) {
	c := New(1 << 20)
	fulfillLeader(t, c, 1, 42, mkRow(1))
	if _, ok := c.Get(2, 42); ok {
		t.Fatal("local 42 of shard 2 must not hit shard 1's entry")
	}
	if _, ok := c.Get(1, 42); !ok {
		t.Fatal("lost the shard-1 entry")
	}
}

func TestLRUEviction(t *testing.T) {
	// Per-stripe budget of 2 minimal rows (2 * rowOverhead).
	c := New(numShards * 2 * rowOverhead)
	ls := sameStripeLocals(c, 3)
	fulfillLeader(t, c, 0, ls[0], mkRow(0))
	fulfillLeader(t, c, 0, ls[1], mkRow(0))
	// Touch ls[0] so ls[1] is the LRU victim.
	if _, ok := c.Get(0, ls[0]); !ok {
		t.Fatal("ls[0] missing before eviction")
	}
	fulfillLeader(t, c, 0, ls[2], mkRow(0))
	if _, ok := c.Get(0, ls[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(0, ls[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(0, ls[2]); !ok {
		t.Fatal("new entry not resident")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizeRowNotAdmitted(t *testing.T) {
	c := New(numShards * rowOverhead) // stripe budget fits only a 0-degree row
	_, _, fl, leader := c.GetOrReserve(0, 1)
	if !leader {
		t.Fatal("want leadership")
	}
	fl.Fulfill(mkRow(64), nil) // 96+1024 bytes > 96 budget
	if _, ok := c.Get(0, 1); ok {
		t.Fatal("over-budget row must not be admitted")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want empty cache", st)
	}
}

func TestSingleFlightCoalesce(t *testing.T) {
	c := New(1 << 20)
	_, _, leaderFl, leader := c.GetOrReserve(2, 9)
	if !leader {
		t.Fatal("first reserve must lead")
	}
	_, hit, waiterFl, leader2 := c.GetOrReserve(2, 9)
	if hit || leader2 {
		t.Fatalf("second reserve: hit=%v leader=%v, want coalesced wait", hit, leader2)
	}
	if waiterFl != leaderFl {
		t.Fatal("waiter must share the leader's flight")
	}
	got := make(chan Row, 1)
	go func() {
		row, err := waiterFl.Wait(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- row
	}()
	leaderFl.Fulfill(mkRow(3), nil)
	select {
	case row := <-got:
		if len(row.Locals) != 3 {
			t.Fatalf("waiter row has %d neighbors, want 3", len(row.Locals))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never released")
	}
	if st := c.Stats(); st.Coalesced != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 coalesced", st)
	}
}

func TestFailedFlightNotCachedAndRetryable(t *testing.T) {
	c := New(1 << 20)
	wantErr := errors.New("boom")
	_, _, fl, _ := c.GetOrReserve(0, 4)
	done := make(chan error, 1)
	go func() {
		_, err := fl.Wait(context.Background())
		done <- err
	}()
	fl.Fulfill(Row{}, wantErr)
	if err := <-done; !errors.Is(err, wantErr) {
		t.Fatalf("waiter error = %v, want %v", err, wantErr)
	}
	if _, ok := c.Get(0, 4); ok {
		t.Fatal("failed fetch must not populate the cache")
	}
	// The flight is gone: the next toucher becomes a fresh leader.
	_, hit, fl2, leader := c.GetOrReserve(0, 4)
	if hit || !leader {
		t.Fatalf("after failure: hit=%v leader=%v, want new leader", hit, leader)
	}
	fl2.Fulfill(mkRow(1), nil)
	if _, ok := c.Get(0, 4); !ok {
		t.Fatal("retry after failure did not cache")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	c := New(1 << 20)
	_, _, fl, _ := c.GetOrReserve(5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fl.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v, want Canceled", err)
	}
	// The ctx expiry abandons only that waiter; the flight still completes.
	fl.Fulfill(mkRow(2), nil)
	if _, ok := c.Get(5, 5); !ok {
		t.Fatal("flight no longer populates the cache after a waiter gave up")
	}
}

func TestAttachSourceAnyParticipantResolves(t *testing.T) {
	// The leader arms external resolution and then disappears: a waiter that
	// sees the source channel close must resolve the flight itself.
	c := New(1 << 20)
	_, _, fl, leader := c.GetOrReserve(1, 1)
	if !leader {
		t.Fatal("want leadership")
	}
	src := make(chan struct{})
	var resolves atomic.Int64
	fl.AttachSource(src, func() {
		resolves.Add(1)
		fl.Fulfill(mkRow(4), nil)
	})
	_, _, waiterFl, _ := c.GetOrReserve(1, 1)
	got := make(chan Row, 1)
	go func() {
		row, err := waiterFl.Wait(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- row
	}()
	close(src) // the "response" lands; no one calls Fulfill on the waiter's behalf
	select {
	case row := <-got:
		if len(row.Locals) != 4 {
			t.Fatalf("row has %d neighbors, want 4", len(row.Locals))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never resolved the flight itself")
	}
	if _, ok := c.Get(1, 1); !ok {
		t.Fatal("waiter-driven resolution must still populate the cache")
	}
}

func TestConcurrentReserveElectsOneLeader(t *testing.T) {
	c := New(1 << 20)
	const workers = 32
	var leaders atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			row, hit, fl, leader := c.GetOrReserve(7, 7)
			switch {
			case hit:
				if len(row.Locals) != 2 {
					t.Errorf("hit row has %d neighbors", len(row.Locals))
				}
			case leader:
				leaders.Add(1)
				fl.Fulfill(mkRow(2), nil)
			default:
				got, err := fl.Wait(context.Background())
				if err != nil || len(got.Locals) != 2 {
					t.Errorf("waiter: row=%+v err=%v", got, err)
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := leaders.Load(); n != 1 {
		t.Fatalf("%d leaders elected, want exactly 1", n)
	}
}

func TestDuplicateInsertIsNoop(t *testing.T) {
	c := New(1 << 20)
	fulfillLeader(t, c, 0, 0, mkRow(1))
	c.add(ckey{addr: pack(0, 0)}, mkRow(1))
	if st := c.Stats(); st.Entries != 1 || st.Bytes != mkRow(1).Bytes() {
		t.Fatalf("stats after duplicate insert = %+v", st)
	}
}

// StripeOf must agree with the stripe every internal path (Get/Put/Reserve)
// actually locks, or affinity workers partitioning cache work by stripe would
// contend on stripes they believe they own.
func TestStripeOfMatchesInternalPlacement(t *testing.T) {
	c := New(1 << 20)
	if c.Stripes() != numShards {
		t.Fatalf("Stripes() = %d, want %d", c.Stripes(), numShards)
	}
	for sh := int32(0); sh < 5; sh++ {
		for local := int32(-2); local < 400; local++ {
			si := c.StripeOf(sh, local)
			if si < 0 || si >= c.Stripes() {
				t.Fatalf("StripeOf(%d,%d) = %d out of range", sh, local, si)
			}
			if want := &c.stripes[si]; c.stripeFor(ckey{addr: pack(sh, local)}) != want {
				t.Fatalf("StripeOf(%d,%d) = %d but stripeFor locks a different stripe", sh, local, si)
			}
		}
	}
	// Spot-check the placement is actually striped, not collapsed onto one
	// stripe by a degenerate hash.
	seen := map[int]bool{}
	for local := int32(0); local < 256; local++ {
		seen[c.StripeOf(0, local)] = true
	}
	if len(seen) < c.Stripes()/2 {
		t.Fatalf("256 keys landed on only %d/%d stripes", len(seen), c.Stripes())
	}
}
