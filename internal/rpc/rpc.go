// Package rpc implements the point-to-point asynchronous communication layer
// between simulated machines — the stand-in for PyTorch RPC over TensorPipe
// (paper §3.1). It provides length-prefixed binary framing over any
// net.Conn, request multiplexing with futures, and a handler-registry
// server.
//
// Like TensorPipe, the transport is happiest with few large messages:
// every request pays framing, syscall, and scheduling overhead, which is
// what makes the paper's batching optimization (§3.2.3) matter. An optional
// latency/bandwidth model adds a deterministic per-message and per-byte
// delay to emulate a datacenter link instead of loopback.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Method identifies a server-side handler.
type Method uint8

// Well-known methods used by the graph engine. Users may register any value.
const (
	MethodGetNeighborInfos    Method = 1 // batched, CSR-compressed response
	MethodGetNeighborInfosLoL Method = 2 // batched, list-of-lists response
	MethodGetNeighborInfoOne  Method = 3 // single vertex (the "Single" ablation)
	MethodSampleOneNeighbor   Method = 4 // random-walk step
	MethodGetShardStats       Method = 5
	MethodFetchFeatures       Method = 6 // GNN feature store
	MethodAllreduce           Method = 7 // gradient sync for the case study
	MethodSampleNeighbors     Method = 8 // k-hop fanout sampling (GraphSAGE)
	MethodSSPPRQuery          Method = 9 // owner-compute query dispatch
	MethodEcho                Method = 63
)

const (
	flagRequest  = 0x00
	flagResponse = 0x01
	flagError    = 0x02

	maxFrameSize = 1 << 30
)

// Handler processes one request payload and returns the response payload.
type Handler func(payload []byte) ([]byte, error)

// LatencyModel adds synthetic delay to every message of size n bytes:
// Base + n/BytesPerSec. A zero model means raw transport speed.
type LatencyModel struct {
	Base        time.Duration
	BytesPerSec float64
}

// Delay returns the synthetic delay for a message of n bytes.
func (l LatencyModel) Delay(n int) time.Duration {
	d := l.Base
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(n) / l.BytesPerSec * float64(time.Second))
	}
	return d
}

func (l LatencyModel) apply(n int) {
	if d := l.Delay(n); d > 0 {
		time.Sleep(d)
	}
}

// writeFrame writes one frame: [len u32][reqID u64][flags u8][method u8][payload].
func writeFrame(w io.Writer, buf *[]byte, reqID uint64, flags byte, method Method, payload []byte) error {
	need := 4 + 10 + len(payload)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	binary.LittleEndian.PutUint32(b, uint32(10+len(payload)))
	binary.LittleEndian.PutUint64(b[4:], reqID)
	b[12] = flags
	b[13] = byte(method)
	copy(b[14:], payload)
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader, hdr *[14]byte) (reqID uint64, flags byte, method Method, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size < 10 || size > maxFrameSize {
		err = fmt.Errorf("rpc: bad frame size %d", size)
		return
	}
	if _, err = io.ReadFull(r, hdr[4:14]); err != nil {
		return
	}
	reqID = binary.LittleEndian.Uint64(hdr[4:12])
	flags = hdr[12]
	method = Method(hdr[13])
	payload = make([]byte, size-10)
	_, err = io.ReadFull(r, payload)
	return
}

// Server dispatches incoming requests to registered handlers. Each accepted
// connection gets a reader goroutine; each request runs in its own goroutine
// so slow handlers do not head-of-line block the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[Method]Handler
	lis      net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	conns    sync.Map // *net.Conn set for shutdown

	// MaxRequestBytes rejects request payloads larger than this when > 0
	// (a guard against misbehaving clients; responses are not limited).
	MaxRequestBytes int

	reqCounts  [256]atomic.Int64
	errCounts  [256]atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	connsTotal atomic.Int64
}

// Stats is a snapshot of server-side counters.
type Stats struct {
	Requests    map[Method]int64
	Errors      map[Method]int64
	BytesIn     int64
	BytesOut    int64
	Connections int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:    map[Method]int64{},
		Errors:      map[Method]int64{},
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		Connections: s.connsTotal.Load(),
	}
	for m := 0; m < 256; m++ {
		if n := s.reqCounts[m].Load(); n > 0 {
			st.Requests[Method(m)] = n
		}
		if n := s.errCounts[m].Load(); n > 0 {
			st.Errors[Method(m)] = n
		}
	}
	return st
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[Method]Handler)}
}

// Handle registers h for method m, replacing any previous handler.
func (s *Server) Handle(m Method, h Handler) {
	s.mu.Lock()
	s.handlers[m] = h
	s.mu.Unlock()
}

// Serve accepts connections on lis until Close. It returns after the
// listener fails (normally: after Close).
func (s *Server) Serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	closed := s.closed.Load()
	s.mu.Unlock()
	if closed {
		lis.Close()
		return
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Register under the lock so Close cannot start waiting between
		// the accept and the wg.Add (Add must not race with Wait at zero).
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns.Store(conn, struct{}{})
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.conns.Delete(conn)
		}()
	}
}

// ListenAndServe listens on a fresh loopback TCP port and serves in a
// background goroutine. It returns the address clients should dial.
func (s *Server) ListenAndServe() (addr string, err error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(lis)
	return lis.Addr().String(), nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.connsTotal.Add(1)
	var wmu sync.Mutex
	var hdr [14]byte
	for {
		reqID, flags, method, payload, err := readFrame(conn, &hdr)
		if err != nil {
			return
		}
		if flags != flagRequest {
			continue // protocol misuse; drop
		}
		s.reqCounts[method].Add(1)
		s.bytesIn.Add(int64(len(payload)))
		s.mu.RLock()
		h, ok := s.handlers[method]
		s.mu.RUnlock()
		if max := s.MaxRequestBytes; max > 0 && len(payload) > max {
			s.errCounts[method].Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				var wbuf []byte
				wmu.Lock()
				writeFrame(conn, &wbuf, reqID, flagError, method,
					[]byte(fmt.Sprintf("rpc: request of %d bytes exceeds server limit %d", len(payload), max)))
				wmu.Unlock()
			}()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var wbuf []byte
			if !ok {
				s.errCounts[method].Add(1)
				wmu.Lock()
				writeFrame(conn, &wbuf, reqID, flagError, method, []byte(fmt.Sprintf("rpc: no handler for method %d", method)))
				wmu.Unlock()
				return
			}
			resp, err := h(payload)
			wmu.Lock()
			defer wmu.Unlock()
			if err != nil {
				s.errCounts[method].Add(1)
				writeFrame(conn, &wbuf, reqID, flagError, method, []byte(err.Error()))
				return
			}
			s.bytesOut.Add(int64(len(resp)))
			writeFrame(conn, &wbuf, reqID, flagResponse, method, resp)
		}()
	}
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to finish.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	// Taking the lock here flushes any in-flight connection registration
	// in Serve; new ones observe closed and bail out.
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	s.wg.Wait()
}

// Future is the pending result of an asynchronous Call.
type Future struct {
	ch  chan result
	res result
	got bool
}

type result struct {
	payload []byte
	err     error
}

// Wait blocks until the response arrives and returns it. Wait may be called
// multiple times; subsequent calls return the cached result.
func (f *Future) Wait() ([]byte, error) {
	if !f.got {
		f.res = <-f.ch
		f.got = true
	}
	return f.res.payload, f.res.err
}

// Client is a connection to one remote server, safe for concurrent use.
// Responses are demultiplexed to futures by request ID, so many calls can be
// in flight at once — the engine overlaps remote fetches with local work by
// issuing Calls early and Waiting late (paper's "Overlap" optimization).
type Client struct {
	conn    net.Conn
	wmu     sync.Mutex
	wbuf    []byte
	nextID  atomic.Uint64
	pending sync.Map // reqID -> chan result
	lat     LatencyModel
	closed  atomic.Bool

	// Stats counts traffic for the experiment harness.
	RequestsSent  atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
}

// Dial connects to a server address with the given synthetic latency model.
func Dial(addr string, lat LatencyModel) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn, lat), nil
}

// DialRetry dials addr, retrying with backoff until timeout — for
// deployment bootstrap, where peer servers start in arbitrary order.
func DialRetry(addr string, lat LatencyModel, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	wait := 50 * time.Millisecond
	for {
		c, err := Dial(addr, lat)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rpc: dial %s: gave up after %v: %w", addr, timeout, err)
		}
		time.Sleep(wait)
		if wait < time.Second {
			wait *= 2
		}
	}
}

// NewClient wraps an established connection (e.g. one end of net.Pipe for
// in-process transports).
func NewClient(conn net.Conn, lat LatencyModel) *Client {
	c := &Client{conn: conn, lat: lat}
	go c.readLoop()
	return c
}

var errClientClosed = errors.New("rpc: client closed")

func (c *Client) readLoop() {
	var hdr [14]byte
	for {
		reqID, flags, _, payload, err := readFrame(c.conn, &hdr)
		if err != nil {
			// Connection gone: fail all pending calls.
			c.pending.Range(func(k, v any) bool {
				v.(chan result) <- result{nil, errClientClosed}
				c.pending.Delete(k)
				return true
			})
			return
		}
		ch, ok := c.pending.LoadAndDelete(reqID)
		if !ok {
			continue
		}
		c.BytesReceived.Add(int64(len(payload)))
		if flags == flagError {
			ch.(chan result) <- result{nil, fmt.Errorf("rpc: remote error: %s", payload)}
		} else {
			ch.(chan result) <- result{payload, nil}
		}
	}
}

// Call sends a request and returns a Future for its response. The synthetic
// latency model charges the request and response legs to the waiter, not the
// sender, so Calls still return immediately.
func (c *Client) Call(m Method, payload []byte) *Future {
	ch := make(chan result, 1)
	f := &Future{ch: ch}
	if c.closed.Load() {
		ch <- result{nil, errClientClosed}
		return f
	}
	id := c.nextID.Add(1)
	c.pending.Store(id, ch)
	c.wmu.Lock()
	err := writeFrame(c.conn, &c.wbuf, id, flagRequest, m, payload)
	c.wmu.Unlock()
	if err != nil {
		if _, ok := c.pending.LoadAndDelete(id); ok {
			ch <- result{nil, err}
		}
		return f
	}
	c.RequestsSent.Add(1)
	c.BytesSent.Add(int64(len(payload)))
	if c.lat.Base > 0 || c.lat.BytesPerSec > 0 {
		// Model the request leg; the response leg is charged on receipt by
		// wrapping the future channel. For simplicity both legs are charged
		// here against the payload size.
		sz := len(payload)
		inner := ch
		outer := make(chan result, 1)
		f.ch = outer
		go func() {
			r := <-inner
			c.lat.apply(sz + len(r.payload))
			outer <- r
		}()
	}
	return f
}

// SyncCall is Call followed by Wait.
func (c *Client) SyncCall(m Method, payload []byte) ([]byte, error) {
	return c.Call(m, payload).Wait()
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.conn.Close()
}
