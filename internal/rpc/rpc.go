// Package rpc implements the point-to-point asynchronous communication layer
// between simulated machines — the stand-in for PyTorch RPC over TensorPipe
// (paper §3.1). It provides length-prefixed binary framing over any
// net.Conn, request multiplexing with futures, and a handler-registry
// server.
//
// Like TensorPipe, the transport is happiest with few large messages:
// every request pays framing, syscall, and scheduling overhead, which is
// what makes the paper's batching optimization (§3.2.3) matter. An optional
// latency/bandwidth model adds a deterministic per-message and per-byte
// delay to emulate a datacenter link instead of loopback.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/mem"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/wire"
)

// framePool recycles frame payload buffers across requests: every payload
// readFrame returns is checked out of this pool and flows back in when its
// last holder releases it (server: after the response is written; client:
// when the caller releases its Future). A payload that is never released
// falls back to the garbage collector — safe, just not recycled.
var framePool mem.Pool

// Method identifies a server-side handler.
type Method uint8

// Well-known methods used by the graph engine. Users may register any value.
const (
	MethodGetNeighborInfos    Method = 1 // batched, CSR-compressed response
	MethodGetNeighborInfosLoL Method = 2 // batched, list-of-lists response
	MethodGetNeighborInfoOne  Method = 3 // single vertex (the "Single" ablation)
	MethodSampleOneNeighbor   Method = 4 // random-walk step
	MethodGetShardStats       Method = 5
	MethodFetchFeatures       Method = 6 // GNN feature store
	MethodAllreduce           Method = 7 // gradient sync for the case study
	MethodSampleNeighbors     Method = 8 // k-hop fanout sampling (GraphSAGE)
	MethodSSPPRQuery          Method = 9 // owner-compute query dispatch
	MethodApplyMutations      Method = 10 // resolved mutation batch (delta overlay)
	MethodGetNeighborInfosAt  Method = 11 // epoch-pinned variant of GetNeighborInfos
	MethodEcho                Method = 63
)

const (
	flagRequest  = 0x00
	flagResponse = 0x01
	flagError    = 0x02
	// flagTraced marks a request frame that carries a trace context: 16
	// extra bytes (trace ID, span ID — wire.AppendTraceContext layout)
	// between the fixed header and the payload, counted in the length
	// prefix. Only requests carry it; responses are matched to their
	// request's future, which already knows the trace. Untraced frames are
	// byte-identical to the pre-tracing protocol.
	flagTraced = 0x04

	maxFrameSize = 1 << 30
)

// Handler processes one request payload and returns the response payload.
// The payload aliases a pooled frame buffer: it is valid only for the
// duration of the call (plus the response write), so a handler that wants to
// keep request bytes must copy them. Returning the payload itself as the
// response is legal — the server writes the response before recycling the
// request buffer.
type Handler func(payload []byte) ([]byte, error)

// HandlerCtx is a Handler that also receives the request's context, which
// carries the caller's trace context when the request frame was traced.
// Handlers that fan out further RPCs pass the context on so the whole query
// stays one trace. The payload lifetime contract is Handler's.
type HandlerCtx func(ctx context.Context, payload []byte) ([]byte, error)

// HandlerBuf is a HandlerCtx whose response is a pooled buffer: the server
// writes the frame and then releases the caller's reference, so a handler
// can encode straight into a mem.Pool checkout and have it recycled the
// moment the bytes are on the wire. A nil response buffer means an empty
// response.
type HandlerBuf func(ctx context.Context, payload []byte) (*mem.Buf, error)

// LatencyModel adds synthetic delay to every message of size n bytes:
// Base + n/BytesPerSec. A zero model means raw transport speed.
type LatencyModel struct {
	Base        time.Duration
	BytesPerSec float64
}

// Delay returns the synthetic delay for a message of n bytes.
func (l LatencyModel) Delay(n int) time.Duration {
	d := l.Base
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(n) / l.BytesPerSec * float64(time.Second))
	}
	return d
}

const (
	// vectoredMin is the payload size from which writeFrame switches to a
	// net.Buffers vectored write (writev on TCP) instead of copying the
	// payload into the connection's scratch buffer. Below it, one small
	// copy plus a single Write beats two syscall-visible buffers.
	vectoredMin = 4 << 10
	// writeScratchCap bounds the per-connection scratch buffer across
	// frames: a scratch grown past it is dropped after the write so one
	// oversized frame does not pin its high-water mark per connection
	// forever.
	writeScratchCap = 64 << 10
)

// writeFrame writes one frame: [len u32][reqID u64][flags u8][method u8]
// [trace?][payload], where the 16-byte trace context block is present iff
// flags has flagTraced set (and is counted in len). Large payloads are not
// copied: the header and payload go out as one vectored write, so writeFrame
// never owns (or duplicates) the payload memory.
func writeFrame(w io.Writer, buf *[]byte, reqID uint64, flags byte, method Method, sc obs.SpanContext, payload []byte) error {
	trace := 0
	if flags&flagTraced != 0 {
		trace = wire.TraceContextSize
	}
	if len(payload) >= vectoredMin {
		var hdr [14 + wire.TraceContextSize]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(10+trace+len(payload)))
		binary.LittleEndian.PutUint64(hdr[4:], reqID)
		hdr[12] = flags
		hdr[13] = byte(method)
		if trace > 0 {
			wire.AppendTraceContext(hdr[14:14:14+trace], sc.TraceID, sc.SpanID)
		}
		bufs := net.Buffers{hdr[:14+trace], payload}
		_, err := bufs.WriteTo(w)
		return err
	}
	need := 4 + 10 + trace + len(payload)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	binary.LittleEndian.PutUint32(b, uint32(10+trace+len(payload)))
	binary.LittleEndian.PutUint64(b[4:], reqID)
	b[12] = flags
	b[13] = byte(method)
	if trace > 0 {
		wire.AppendTraceContext(b[14:14:14+trace], sc.TraceID, sc.SpanID)
	}
	copy(b[14+trace:], payload)
	_, err := w.Write(b)
	if cap(*buf) > writeScratchCap {
		*buf = nil
	}
	return err
}

// readFrame parses one frame from r. The returned payload is checked out of
// p with one reference owned by the caller; a nil payload means the frame
// was empty. On error no payload reference is retained.
func readFrame(p *mem.Pool, r io.Reader, hdr *[14]byte) (reqID uint64, flags byte, method Method, sc obs.SpanContext, payload *mem.Buf, err error) {
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size < 10 || size > maxFrameSize {
		err = fmt.Errorf("rpc: bad frame size %d", size)
		return
	}
	if _, err = io.ReadFull(r, hdr[4:14]); err != nil {
		return
	}
	reqID = binary.LittleEndian.Uint64(hdr[4:12])
	flags = hdr[12]
	method = Method(hdr[13])
	rest := int(size - 10)
	if flags&flagTraced != 0 {
		if rest < wire.TraceContextSize {
			err = fmt.Errorf("rpc: traced frame of size %d lacks trace context", size)
			return
		}
		var tb [wire.TraceContextSize]byte
		if _, err = io.ReadFull(r, tb[:]); err != nil {
			return
		}
		sc.TraceID, sc.SpanID, _ = wire.DecodeTraceContext(tb[:])
		rest -= wire.TraceContextSize
	}
	payload, err = readPayload(p, r, rest)
	return
}

// payloadChunk bounds how much readPayload commits ahead of the bytes that
// have actually arrived.
const payloadChunk = 1 << 20

// readPayload reads exactly n payload bytes into a buffer checked out of p.
// Payloads up to one chunk — the overwhelmingly common case — come from the
// pool; larger ones are read in bounded chunks so a corrupt or hostile size
// claim (up to maxFrameSize) cannot force a huge up-front allocation: memory
// grows only as bytes actually arrive, and a truncated stream errors after
// at most one chunk of overshoot. On error the checked-out buffer has
// already been released.
func readPayload(p *mem.Pool, r io.Reader, n int) (*mem.Buf, error) {
	if n == 0 {
		return nil, nil
	}
	if n <= payloadChunk {
		buf := p.Get(n)
		if _, err := io.ReadFull(r, buf.Bytes()); err != nil {
			buf.Release()
			return nil, err
		}
		return buf, nil
	}
	var b []byte
	for len(b) < n {
		chunk := min(payloadChunk, n-len(b))
		off := len(b)
		b = append(b, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, b[off:]); err != nil {
			return nil, err
		}
	}
	return mem.Wrap(b), nil
}

// Server dispatches incoming requests to registered handlers. Each accepted
// connection gets a reader goroutine; each request runs in its own goroutine
// so slow handlers do not head-of-line block the connection.
type Server struct {
	mu       sync.RWMutex
	handlers map[Method]HandlerBuf
	tracer   atomic.Pointer[obs.Tracer]
	lis      net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool
	conns    sync.Map // *net.Conn set for shutdown

	// reqWG counts in-flight request handlers only (wg also includes
	// per-connection reader goroutines, which exit only when their
	// connection closes — waiting on wg alone would never drain).
	reqWG sync.WaitGroup

	// MaxRequestBytes rejects request payloads larger than this when > 0
	// (a guard against misbehaving clients; responses are not limited).
	MaxRequestBytes int

	reqCounts  [256]atomic.Int64
	errCounts  [256]atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	connsTotal atomic.Int64
}

// Stats is a snapshot of server-side counters.
type Stats struct {
	Requests    map[Method]int64
	Errors      map[Method]int64
	BytesIn     int64
	BytesOut    int64
	Connections int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:    map[Method]int64{},
		Errors:      map[Method]int64{},
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		Connections: s.connsTotal.Load(),
	}
	for m := 0; m < 256; m++ {
		if n := s.reqCounts[m].Load(); n > 0 {
			st.Requests[Method(m)] = n
		}
		if n := s.errCounts[m].Load(); n > 0 {
			st.Errors[Method(m)] = n
		}
	}
	return st
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[Method]HandlerBuf)}
}

// Handle registers h for method m, replacing any previous handler.
func (s *Server) Handle(m Method, h Handler) {
	s.HandleCtx(m, func(_ context.Context, payload []byte) ([]byte, error) {
		return h(payload)
	})
}

// HandleCtx registers a context-aware handler for method m. The context
// passed to h carries the request's trace context (obs.FromContext) when the
// client traced the call.
func (s *Server) HandleCtx(m Method, h HandlerCtx) {
	s.HandleBuf(m, func(ctx context.Context, payload []byte) (*mem.Buf, error) {
		resp, err := h(ctx, payload)
		if err != nil || resp == nil {
			return nil, err
		}
		return mem.Wrap(resp), nil
	})
}

// HandleBuf registers a handler whose response is a pooled buffer the
// server releases after the frame is written (see HandlerBuf).
func (s *Server) HandleBuf(m Method, h HandlerBuf) {
	s.mu.Lock()
	s.handlers[m] = h
	s.mu.Unlock()
}

// SetTracer attaches a tracer; the server then records one "rpc:<method>"
// span per traced request it handles, parented to the caller's span. A nil
// tracer (the default) just forwards the trace context to handlers.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer.Store(t) }

// Serve accepts connections on lis until Close. It returns after the
// listener fails (normally: after Close).
func (s *Server) Serve(lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	closed := s.closed.Load()
	s.mu.Unlock()
	if closed {
		lis.Close()
		return
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Register under the lock so Close cannot start waiting between
		// the accept and the wg.Add (Add must not race with Wait at zero).
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns.Store(conn, struct{}{})
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.conns.Delete(conn)
		}()
	}
}

// ListenAndServe listens on a fresh loopback TCP port and serves in a
// background goroutine. It returns the address clients should dial.
func (s *Server) ListenAndServe() (addr string, err error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(lis)
	return lis.Addr().String(), nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.connsTotal.Add(1)
	// One write buffer per connection, owned by whoever holds wmu: responses
	// are serialized on the connection anyway, so sharing the buffer costs
	// nothing and lets writeFrame reuse it across requests instead of
	// reallocating in every request goroutine.
	var wmu sync.Mutex
	var wbuf []byte
	var hdr [14]byte
	for {
		reqID, flags, method, sc, payload, err := readFrame(&framePool, conn, &hdr)
		if err != nil {
			return
		}
		if flags&^flagTraced != flagRequest {
			payload.Release()
			continue // protocol misuse; drop
		}
		s.reqCounts[method].Add(1)
		s.bytesIn.Add(int64(payload.Len()))
		// The draining check and reqWG.Add share the read lock so they cannot
		// interleave with Shutdown's write-locked draining flip: once Shutdown
		// starts waiting on reqWG, no new handler can join it.
		s.mu.RLock()
		h, ok := s.handlers[method]
		draining := s.draining.Load()
		if !draining {
			s.reqWG.Add(1)
		}
		s.mu.RUnlock()
		if draining {
			payload.Release()
			s.errCounts[method].Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				wmu.Lock()
				writeFrame(conn, &wbuf, reqID, flagError, method, obs.SpanContext{}, []byte("rpc: server shutting down"))
				wmu.Unlock()
			}()
			continue
		}
		if max := s.MaxRequestBytes; max > 0 && payload.Len() > max {
			n := payload.Len()
			payload.Release()
			s.errCounts[method].Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.reqWG.Done()
				wmu.Lock()
				writeFrame(conn, &wbuf, reqID, flagError, method, obs.SpanContext{},
					[]byte(fmt.Sprintf("rpc: request of %d bytes exceeds server limit %d", n, max)))
				wmu.Unlock()
			}()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.reqWG.Done()
			// The request buffer is recycled once the response is on the
			// wire — not before, because a handler may legally return (a view
			// of) the request payload as its response.
			defer payload.Release()
			if !ok {
				s.errCounts[method].Add(1)
				wmu.Lock()
				writeFrame(conn, &wbuf, reqID, flagError, method, obs.SpanContext{}, []byte(fmt.Sprintf("rpc: no handler for method %d", method)))
				wmu.Unlock()
				return
			}
			// Traced requests get a server-side span; the handler context
			// carries that span (or the remote one when no tracer is
			// attached), so handler-issued RPCs extend the same trace.
			ctx := context.Background()
			var span obs.ActiveSpan
			if sc.Valid() {
				if tr := s.tracer.Load(); tr != nil {
					span = tr.StartSpan(sc, "rpc:"+method.name())
					ctx = obs.ContextWith(ctx, span.Context())
				} else {
					ctx = obs.ContextWith(ctx, sc)
				}
			}
			resp, err := h(ctx, payload.Bytes())
			span.SetErr(err != nil)
			span.End()
			wmu.Lock()
			defer wmu.Unlock()
			if err != nil {
				resp.Release()
				s.errCounts[method].Add(1)
				writeFrame(conn, &wbuf, reqID, flagError, method, obs.SpanContext{}, []byte(err.Error()))
				return
			}
			s.bytesOut.Add(int64(resp.Len()))
			writeFrame(conn, &wbuf, reqID, flagResponse, method, obs.SpanContext{}, resp.Bytes())
			resp.Release()
		}()
	}
}

// name returns a stable label for well-known methods (the numeric value for
// others) without allocating on the known path.
func (m Method) name() string {
	switch m {
	case MethodGetNeighborInfos:
		return "GetNeighborInfos"
	case MethodGetNeighborInfosLoL:
		return "GetNeighborInfosLoL"
	case MethodGetNeighborInfoOne:
		return "GetNeighborInfoOne"
	case MethodSampleOneNeighbor:
		return "SampleOneNeighbor"
	case MethodGetShardStats:
		return "GetShardStats"
	case MethodFetchFeatures:
		return "FetchFeatures"
	case MethodAllreduce:
		return "Allreduce"
	case MethodSampleNeighbors:
		return "SampleNeighbors"
	case MethodSSPPRQuery:
		return "SSPPRQuery"
	case MethodApplyMutations:
		return "ApplyMutations"
	case MethodGetNeighborInfosAt:
		return "GetNeighborInfosAt"
	case MethodEcho:
		return "Echo"
	}
	return fmt.Sprintf("method-%d", m)
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to finish.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	// Taking the lock here flushes any in-flight connection registration
	// in Serve; new ones observe closed and bail out.
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	s.wg.Wait()
}

// Shutdown drains the server gracefully: it stops accepting connections,
// rejects requests arriving on existing connections (clients get an error
// response instead of a hang), waits for in-flight handlers up to ctx, then
// force-closes the remaining connections. Returns ctx.Err() when the drain
// deadline expired before every handler finished, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	// Flip draining under the write lock: serveConn reads it (and joins
	// reqWG) under the read lock, so after this no new handler can start.
	s.mu.Lock()
	s.draining.Store(true)
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	s.wg.Wait()
	return err
}

// Future is the pending result of an asynchronous Call. It is safe for any
// number of goroutines to Wait on the same future concurrently; all of them
// observe the same result once it resolves.
type Future struct {
	id       uint64
	reqSize  int
	c        *Client // issuing client; nil for pre-failed futures
	done     chan struct{}
	buf      *mem.Buf // pooled backing of payload; nil for empty/error results
	released atomic.Bool
	payload  []byte
	err      error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func failedFuture(err error) *Future {
	f := newFuture()
	f.complete(nil, err)
	return f
}

// complete resolves the future. Completion must happen exactly once; the
// client guarantees this by routing every completion path through
// pending.LoadAndDelete on the request ID.
func (f *Future) complete(buf *mem.Buf, err error) {
	f.buf = buf
	f.payload = buf.Bytes()
	f.err = err
	close(f.done)
}

// Release returns the response payload's pooled buffer for reuse. It is the
// waiter's declaration that the payload — and every view decoded from it —
// will not be touched again. Release is idempotent, nil-safe on unresolved
// or failed futures, and optional: an unreleased payload just falls back to
// the garbage collector.
func (f *Future) Release() {
	select {
	case <-f.done:
	default:
		return // unresolved: nothing checked out yet
	}
	if f.released.CompareAndSwap(false, true) {
		f.buf.Release()
	}
}

// Done returns a channel that is closed when the response (or failure) is
// available, for use in select loops alongside other events.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the response arrives and returns it. Wait may be called
// multiple times and from multiple goroutines; every call returns the same
// result.
func (f *Future) Wait() ([]byte, error) {
	<-f.done
	return f.payload, f.err
}

// WaitCtx is Wait with a context: it returns ctx.Err() as soon as ctx is
// done, even if the response has not arrived. Cancellation also releases the
// call's slot in the pending table and resolves the future with ctx.Err()
// for every other waiter (a late response is then dropped), so abandoned
// calls do not accumulate client state. Cancellation is resolved here, on
// the wait path, rather than by a per-call watcher goroutine — a client with
// thousands of calls in flight holds zero goroutines for them.
func (f *Future) WaitCtx(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.payload, f.err
	case <-ctx.Done():
		if f.c != nil {
			// Exactly-once with a racing response or connection death: fail
			// only resolves the future if the slot is still pending.
			f.c.fail(f.id, ctx.Err())
		}
		return nil, ctx.Err()
	}
}

// Client is a connection to one remote server, safe for concurrent use.
// Responses are demultiplexed to futures by request ID, so many calls can be
// in flight at once — the engine overlaps remote fetches with local work by
// issuing Calls early and Waiting late (paper's "Overlap" optimization).
type Client struct {
	conn    net.Conn
	wmu     sync.Mutex
	wbuf    []byte
	nextID  atomic.Uint64
	pending sync.Map // reqID -> *Future
	lat     LatencyModel
	closed  atomic.Bool // Close was called
	dead    atomic.Bool // read loop exited; the connection is unusable

	// Stats counts traffic for the experiment harness.
	RequestsSent  atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
	// Retries counts backoff rounds taken by CallRetry on this client.
	Retries atomic.Int64
}

// Dial connects to a server address with the given synthetic latency model.
func Dial(addr string, lat LatencyModel) (*Client, error) {
	return DialCtx(context.Background(), addr, lat)
}

// DialCtx is Dial bounded by a context: connection establishment is
// abandoned when ctx is done.
func DialCtx(ctx context.Context, addr string, lat LatencyModel) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn, lat), nil
}

// RetryPolicy bounds the exponential backoff shared by CallRetry and
// DialRetryCtx. The zero value is usable: it means 4 attempts, 50ms base
// backoff, 1s backoff cap.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// <= 0 means 4.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it. <= 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. <= 0 means 1s.
	MaxBackoff time.Duration
	// OnRetry, when non-nil, is invoked before each backoff sleep with the
	// 1-based retry number and the error that caused it.
	OnRetry func(retry int, err error)
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

// Backoff returns the sleep before retry number attempt (0-based):
// BaseBackoff << attempt, capped at MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// sleepCtx sleeps for d, capped so the sleep never overshoots ctx's
// deadline, and returns ctx.Err() as soon as ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < d {
			if rem <= 0 {
				// The deadline already passed; ctx.Err() may still be nil for
				// a short window before the context's own timer fires, so
				// report the expiry directly rather than spinning.
				if err := ctx.Err(); err != nil {
					return err
				}
				return context.DeadlineExceeded
			}
			d = rem
		}
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// DialRetry dials addr, retrying with backoff until timeout — for
// deployment bootstrap, where peer servers start in arbitrary order.
func DialRetry(addr string, lat LatencyModel, timeout time.Duration) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialRetryCtx(ctx, addr, lat, RetryPolicy{})
}

// DialRetryCtx dials addr with bounded exponential backoff until ctx is
// done. Unlike CallRetry it has no attempt bound: bootstrap keeps trying for
// as long as the caller's context allows.
func DialRetryCtx(ctx context.Context, addr string, lat LatencyModel, p RetryPolicy) (*Client, error) {
	for attempt := 0; ; attempt++ {
		c, err := DialCtx(ctx, addr, lat)
		if err == nil {
			return c, nil
		}
		if attempt > 0 && p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if serr := sleepCtx(ctx, p.Backoff(attempt)); serr != nil {
			return nil, fmt.Errorf("rpc: dial %s: gave up (%w): %w", addr, serr, err)
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("rpc: dial %s: gave up (%w): %w", addr, ctx.Err(), err)
		}
	}
}

// NewClient wraps an established connection (e.g. one end of net.Pipe for
// in-process transports).
func NewClient(conn net.Conn, lat LatencyModel) *Client {
	c := &Client{conn: conn, lat: lat}
	go c.readLoop()
	return c
}

// ErrClientClosed is returned by calls issued after the client was closed or
// its connection died, and by pending calls when that happens mid-flight.
var ErrClientClosed = errors.New("rpc: client closed")

// RemoteError is a failure reported by the remote handler, as opposed to a
// transport failure. Remote errors are not transient: retrying the identical
// request would fail the same way.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// Transient reports whether err is a transport-level failure that a retry
// (possibly on a fresh connection) could plausibly cure. Remote handler
// errors and context cancellation/expiry are permanent.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}

func (c *Client) readLoop() {
	var hdr [14]byte
	for {
		reqID, flags, _, _, payload, err := readFrame(&framePool, c.conn, &hdr)
		if err != nil {
			// Connection gone: mark the client dead so new Calls fail fast,
			// then fail every pending call exactly once.
			c.dead.Store(true)
			c.failPending()
			return
		}
		v, ok := c.pending.LoadAndDelete(reqID)
		if !ok {
			// Cancelled or unknown request; drop the late response and
			// recycle its buffer immediately — no waiter will.
			payload.Release()
			continue
		}
		f := v.(*Future)
		n := payload.Len()
		c.BytesReceived.Add(int64(n))
		metrics.WireBytesReceived.Inc(int64(n))
		var res *mem.Buf
		var rerr error
		if flags == flagError {
			rerr = &RemoteError{Msg: string(payload.Bytes())}
			payload.Release()
		} else {
			res = payload
		}
		if d := c.lat.Delay(f.reqSize + n); d > 0 {
			// The synthetic latency model charges both legs to the waiter,
			// not the read loop, so other responses are not delayed.
			go func() {
				time.Sleep(d)
				f.complete(res, rerr)
			}()
		} else {
			f.complete(res, rerr)
		}
	}
}

// failPending resolves every registered future with ErrClientClosed.
func (c *Client) failPending() {
	c.pending.Range(func(k, _ any) bool {
		c.fail(k.(uint64), ErrClientClosed)
		return true
	})
}

// fail completes the future registered under id with err, if it is still
// pending. LoadAndDelete makes completion exactly-once even when a response,
// a cancellation, and a connection death race.
func (c *Client) fail(id uint64, err error) {
	if v, ok := c.pending.LoadAndDelete(id); ok {
		v.(*Future).complete(nil, err)
	}
}

// Call sends a request and returns a Future for its response. Calls issued
// after the client closed (or its read loop died) fail immediately with
// ErrClientClosed.
func (c *Client) Call(m Method, payload []byte) *Future {
	return c.CallCtx(context.Background(), m, payload)
}

// CallCtx is Call with cancellation: a ctx that is already done fails the
// call immediately, and a later WaitCtx observes cancellation by failing the
// pending slot itself (see Future.WaitCtx). No watcher goroutine is spawned
// per call — cancellation of an in-flight request is resolved entirely on
// the wait path, so issuing N calls costs N pending-map entries and nothing
// else. The request itself still reaches the server — like most RPC
// systems, cancellation stops the waiting, not the remote work.
func (c *Client) CallCtx(ctx context.Context, m Method, payload []byte) *Future {
	if err := ctx.Err(); err != nil {
		return failedFuture(err)
	}
	if c.closed.Load() || c.dead.Load() {
		return failedFuture(ErrClientClosed)
	}
	f := newFuture()
	f.id = c.nextID.Add(1)
	f.reqSize = len(payload)
	f.c = c
	// A sampled trace context on ctx rides the request frame so the remote
	// server's spans join the caller's trace.
	flags := byte(flagRequest)
	sc := obs.FromContext(ctx)
	if sc.Valid() {
		flags |= flagTraced
	}
	c.pending.Store(f.id, f)
	c.wmu.Lock()
	err := writeFrame(c.conn, &c.wbuf, f.id, flags, m, sc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.fail(f.id, err)
		return f
	}
	if c.closed.Load() || c.dead.Load() {
		// The read loop may have died between registration and the write;
		// its sweep can miss a future stored after the sweep began, so
		// re-check and fail our own slot (fail is exactly-once).
		c.fail(f.id, ErrClientClosed)
		return f
	}
	c.RequestsSent.Add(1)
	c.BytesSent.Add(int64(len(payload)))
	metrics.WireRequests.Inc(1)
	metrics.WireBytesSent.Inc(int64(len(payload)))
	return f
}

// Healthy reports whether the client can still issue calls: it has not been
// closed and its read loop is alive. A false return means every future call
// would fail fast with ErrClientClosed — callers holding long-lived client
// references (failover endpoints) use this to decide when to re-dial.
func (c *Client) Healthy() bool { return !c.closed.Load() && !c.dead.Load() }

// SyncCall is Call followed by Wait.
func (c *Client) SyncCall(m Method, payload []byte) ([]byte, error) {
	return c.SyncCallCtx(context.Background(), m, payload)
}

// SyncCallCtx is CallCtx followed by WaitCtx. The returned payload is an
// ordinary heap copy: the convenience API stays release-free (the pooled
// frame buffer is recycled here), and hot paths that care about the copy
// hold the Future directly.
func (c *Client) SyncCallCtx(ctx context.Context, m Method, payload []byte) ([]byte, error) {
	f := c.CallCtx(ctx, m, payload)
	p, err := f.WaitCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), p...)
	f.Release()
	return out, nil
}

// CallRetry issues the request up to p.MaxAttempts times with bounded
// exponential backoff between attempts, retrying only transient transport
// errors (see Transient) and never sleeping past ctx's deadline. The request
// must be idempotent. This generalizes the backoff loop DialRetry uses for
// bootstrap.
func (c *Client) CallRetry(ctx context.Context, m Method, payload []byte, p RetryPolicy) ([]byte, error) {
	attempts := p.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.Retries.Add(1)
			metrics.RPCRetries.Inc(1)
			if p.OnRetry != nil {
				p.OnRetry(a, lastErr)
			}
			if err := sleepCtx(ctx, p.Backoff(a-1)); err != nil {
				return nil, fmt.Errorf("rpc: call method %d: %w (last error: %v)", m, err, lastErr)
			}
		}
		resp, err := c.SyncCallCtx(ctx, m, payload)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !Transient(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("rpc: call method %d: gave up after %d attempts: %w", m, attempts, lastErr)
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.conn.Close()
}
