package rpc

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerKillMidFlight is the regression test for the hang where a call
// issued after the read loop exited never completed: the server dies while a
// request is blocked in its handler, the pending future must fail promptly,
// and every subsequent Call must fail immediately with ErrClientClosed
// instead of parking a future nobody will ever resolve.
func TestServerKillMidFlight(t *testing.T) {
	s := NewServer()
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		close(entered)
		<-release
		return p, nil
	})
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := c.Call(MethodEcho, []byte("stuck"))
	<-entered
	// Kill the server while the request is mid-flight. Close waits for the
	// handler, so release it from another goroutine.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	s.Close()

	select {
	case <-f.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("pending future never resolved after server death")
	}
	if _, err := f.Wait(); err == nil {
		t.Fatal("pending call should fail when the connection dies")
	}

	// The client must now be dead: new calls fail fast, not hang.
	start := time.Now()
	if _, err := c.SyncCall(MethodEcho, []byte("after")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-death call: err = %v, want ErrClientClosed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("post-death call took %v; should fail immediately", d)
	}
}

// TestConcurrentWaiters has two goroutines waiting on the same future — one
// via Wait, one via WaitCtx — and both must observe the same response.
func TestConcurrentWaiters(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr, LatencyModel{Base: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := []byte("shared")
	f := c.Call(MethodEcho, payload)
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		results[0], errs[0] = f.Wait()
	}()
	go func() {
		defer wg.Done()
		results[1], errs[1] = f.WaitCtx(context.Background())
	}()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], payload) {
			t.Fatalf("waiter %d: resp = %q", i, results[i])
		}
	}
}

// TestWaitCtxDeadline: a short per-call deadline against a slow handler
// returns context.DeadlineExceeded at roughly the deadline, not the handler
// duration.
func TestWaitCtxDeadline(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); s.Close() }()
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.SyncCallCtx(ctx, MethodEcho, []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// CallCtx releases the pending slot at cancellation, so the client keeps
	// working for later calls once the handler is unblocked.
}

// TestCallCtxPreCancelled: a call on an already-done context fails without
// touching the wire.
func TestCallCtxPreCancelled(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SyncCallCtx(ctx, MethodEcho, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if c.RequestsSent.Load() != 0 {
		t.Fatal("pre-cancelled call should not hit the wire")
	}
}

// TestCallRetryFirstTry: a successful first attempt does no retries and the
// counters stay zero.
func TestCallRetryFirstTry(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.CallRetry(context.Background(), MethodEcho, []byte("ok"), RetryPolicy{MaxAttempts: 3})
	if err != nil || !bytes.Equal(resp, []byte("ok")) {
		t.Fatalf("resp = %q, err = %v", resp, err)
	}
	if c.Retries.Load() != 0 {
		t.Fatalf("Retries = %d, want 0", c.Retries.Load())
	}
}

// TestCallRetryExhausts: against a dead endpoint every attempt fails with
// the transient ErrClientClosed, so CallRetry runs all attempts, counts each
// retry, invokes OnRetry, and gives up with the last error wrapped.
func TestCallRetryExhausts(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close() // kill the endpoint; the client's read loop marks it dead

	// Wait for the client to notice the death so every attempt fails fast.
	deadline := time.Now().Add(2 * time.Second)
	for !c.dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed server death")
		}
		time.Sleep(time.Millisecond)
	}

	var onRetryCalls atomic.Int64
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		OnRetry:     func(retry int, err error) { onRetryCalls.Add(1) },
	}
	_, err = c.CallRetry(context.Background(), MethodEcho, []byte("x"), p)
	if !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want wrapped ErrClientClosed", err)
	}
	if got := c.Retries.Load(); got != 2 {
		t.Fatalf("Retries = %d, want 2 (3 attempts)", got)
	}
	if got := onRetryCalls.Load(); got != 2 {
		t.Fatalf("OnRetry called %d times, want 2", got)
	}
}

// TestCallRetryPermanentError: remote handler errors are not transient and
// must not be retried.
func TestCallRetryPermanentError(t *testing.T) {
	s := NewServer()
	var calls atomic.Int64
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("bad request")
	})
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.CallRetry(context.Background(), MethodEcho, []byte("x"), RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1 (no retry on permanent error)", got)
	}
	if c.Retries.Load() != 0 {
		t.Fatalf("Retries = %d, want 0", c.Retries.Load())
	}
}

// TestCallRetryDeadlineCapsBackoff: when ctx expires during backoff,
// CallRetry returns the ctx error promptly instead of sleeping the full
// backoff schedule.
func TestCallRetryDeadlineCapsBackoff(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !c.dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed server death")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Second, MaxBackoff: 10 * time.Second}
	start := time.Now()
	_, err = c.CallRetry(ctx, MethodEcho, []byte("x"), p)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("CallRetry slept %v past a 30ms deadline", elapsed)
	}
}

// TestDialRetryCtxCancelled: cancelling the context aborts the dial-retry
// loop promptly even with a long backoff configured.
func TestDialRetryCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// 127.0.0.1:1 is reserved and should refuse quickly.
	_, err := DialRetryCtx(ctx, "127.0.0.1:1", LatencyModel{}, RetryPolicy{BaseBackoff: 10 * time.Second})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("DialRetryCtx took %v to honor cancellation", elapsed)
	}
}

// TestBackoffSchedule pins the doubling-and-cap arithmetic.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	// Zero value defaults.
	z := RetryPolicy{}
	if z.attempts() != 4 {
		t.Fatalf("zero attempts() = %d", z.attempts())
	}
	if z.Backoff(0) != 50*time.Millisecond {
		t.Fatalf("zero Backoff(0) = %v", z.Backoff(0))
	}
}
