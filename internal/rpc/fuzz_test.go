package rpc

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"

	"pprengine/internal/mem"
	"pprengine/internal/obs"
)

// frameBytes builds a wire frame from parts (what writeFrame would emit).
func frameBytes(reqID uint64, flags byte, method Method, sc obs.SpanContext, payload []byte) []byte {
	var buf bytes.Buffer
	var wbuf []byte
	if err := writeFrame(&buf, &wbuf, reqID, flags, method, sc, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader. It must
// either parse a frame or return an error — never panic, never commit large
// allocations for size claims the stream cannot back up, and never leak a
// pooled buffer on the error path.
func FuzzReadFrame(f *testing.F) {
	none := obs.SpanContext{}
	traced := obs.SpanContext{TraceID: 0xfeedbeefcafe, SpanID: 0x1234}
	f.Add(frameBytes(1, 0, MethodGetNeighborInfos, none, []byte("payload")))
	f.Add(frameBytes(42, flagResponse, MethodSampleOneNeighbor, none, nil))
	f.Add(frameBytes(7, flagError, MethodGetShardStats, none, []byte("boom")))
	f.Add(frameBytes(9, flagRequest|flagTraced, MethodSSPPRQuery, traced, []byte("q"))) // traced request
	f.Add(frameBytes(10, flagRequest|flagTraced, MethodEcho, traced, nil))              // traced, empty payload
	f.Add(frameBytes(11, flagRequest|flagTraced, MethodEcho, traced, nil)[:18])         // truncated trace block
	f.Add([]byte{})                                                // empty stream
	f.Add([]byte{9, 0, 0, 0})                                      // size below the 10-byte header
	f.Add([]byte{255, 255, 255, 255})                              // size above maxFrameSize
	f.Add(frameBytes(3, 0, 0, none, nil)[:8])                      // truncated header
	f.Add(frameBytes(3, 0, 0, none, make([]byte, 64))[:20])        // truncated payload
	f.Add(frameBytes(2, 0, 0, none, make([]byte, vectoredMin+3)))  // vectored-write frame
	short := frameBytes(5, flagTraced, MethodEcho, traced, nil)    // traced flag but size too small
	binary.LittleEndian.PutUint32(short, 12)
	f.Add(short[:16])
	hostile := binary.LittleEndian.AppendUint32(nil, maxFrameSize) // claims 1 GiB
	hostile = append(hostile, make([]byte, 14)...)                 // ...delivers 14 bytes
	f.Add(hostile)

	var hdr [14]byte
	f.Fuzz(func(t *testing.T, data []byte) {
		var pool mem.Pool
		r := bytes.NewReader(data)
		reqID, flags, method, sc, payload, err := readFrame(&pool, r, &hdr)
		if err != nil {
			if live := pool.Stats().Live; live != 0 {
				t.Fatalf("failed parse leaked %d pooled bytes", live)
			}
			return
		}
		// A successfully parsed frame must round-trip, trace context included.
		again := frameBytes(reqID, flags, method, sc, payload.Bytes())
		if !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("parsed frame does not round-trip: % x vs % x", again, data[:len(again)])
		}
		payload.Release()
		if live := pool.Stats().Live; live != 0 {
			t.Fatalf("released frame left %d pooled bytes checked out", live)
		}
	})
}

// TestReadFrameHostileSizeBoundedAlloc: a frame header claiming the maximum
// size with almost no bytes behind it must fail after allocating at most a
// chunk or two — not the full 1 GiB claim.
func TestReadFrameHostileSizeBoundedAlloc(t *testing.T) {
	stream := binary.LittleEndian.AppendUint32(nil, maxFrameSize)
	stream = append(stream, make([]byte, 100)...)

	var pool mem.Pool
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var hdr [14]byte
	_, _, _, _, _, err := readFrame(&pool, bytes.NewReader(stream), &hdr)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated 1 GiB claim parsed without error")
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 4*payloadChunk {
		t.Fatalf("hostile size claim allocated %d bytes, want < %d", alloc, 4*payloadChunk)
	}
}

// TestReadPayloadLargeHonest: chunked reading still returns big payloads
// intact when the bytes really arrive.
func TestReadPayloadLargeHonest(t *testing.T) {
	n := payloadChunk*2 + 12345
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i * 31)
	}
	var pool mem.Pool
	got, err := readPayload(&pool, bytes.NewReader(want), n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("large payload corrupted by chunked read")
	}
	got.Release()
}

// TestReadPayloadTruncatedLarge: a large claim over a short stream errors.
func TestReadPayloadTruncatedLarge(t *testing.T) {
	data := make([]byte, payloadChunk+10)
	var pool mem.Pool
	if _, err := readPayload(&pool, bytes.NewReader(data), 3*payloadChunk); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestReadPayloadTruncatedNoLeak: chaos-injected truncated frames (streams
// that die mid-payload) produce clean errors with every pooled buffer back
// in the pool.
func TestReadPayloadTruncatedNoLeak(t *testing.T) {
	var pool mem.Pool
	for _, n := range []int{1, 100, 4096, payloadChunk} {
		data := make([]byte, n-1) // one byte short
		if _, err := readPayload(&pool, bytes.NewReader(data), n); err == nil {
			t.Fatalf("n=%d: truncated payload parsed", n)
		}
		if live := pool.Stats().Live; live != 0 {
			t.Fatalf("n=%d: truncated read leaked %d pooled bytes", n, live)
		}
	}
	if pool.Stats().Releases != 4 {
		t.Fatalf("releases = %d, want 4", pool.Stats().Releases)
	}
}
