package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestCallCtxNoWatcherGoroutines: issuing many context-carrying calls must
// not spawn a goroutine per call. Cancellation is resolved in the wait path
// (Future.WaitCtx fails the pending slot itself), so 10k in-flight calls
// cost 10k pending-map entries and zero goroutines.
func TestCallCtxNoWatcherGoroutines(t *testing.T) {
	conn, peer := net.Pipe()
	// Discard everything the client writes so sendFrame never blocks; never
	// answer, so every call stays in flight.
	go io.Copy(io.Discard, peer)
	c := NewClient(conn, LatencyModel{})
	defer func() {
		c.Close()
		peer.Close()
	}()

	runtime.GC()
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	const calls = 10_000
	futs := make([]*Future, calls)
	for i := range futs {
		futs[i] = c.CallCtx(ctx, MethodGetNeighborInfos, []byte{0, 0, 0, 0})
	}

	// Allow any stray goroutines to reach a steady state before measuring.
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	if grew := runtime.NumGoroutine() - base; grew > 50 {
		t.Fatalf("%d calls in flight grew goroutines by %d (want ~0: no per-call watcher)", calls, grew)
	}

	// Cancellation still works without watchers: every waiter resolves with
	// the context error via the wait path.
	cancel()
	for i, f := range futs {
		if _, err := f.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", i, err)
		}
	}

	// The pending table must be fully drained — cancelled slots are removed,
	// not leaked until connection teardown.
	left := 0
	c.pending.Range(func(_, _ any) bool {
		left++
		return true
	})
	if left != 0 {
		t.Fatalf("%d pending entries leaked after cancellation", left)
	}
}
