package rpc

import (
	"bytes"
	"context"
	"testing"

	"pprengine/internal/obs"
)

// TestTraceContextFrameRoundTrip exercises the traced frame layout directly:
// the 16-byte trace block rides between header and payload, and untraced
// frames stay byte-identical to the legacy layout.
func TestTraceContextFrameRoundTrip(t *testing.T) {
	sc := obs.SpanContext{TraceID: 0xabcdef0123456789, SpanID: 0x42}
	payload := []byte("neighbor request")
	data := frameBytes(77, flagRequest|flagTraced, MethodGetNeighborInfos, sc, payload)
	if want := 4 + 10 + 16 + len(payload); len(data) != want {
		t.Fatalf("traced frame is %d bytes, want %d", len(data), want)
	}

	var hdr [14]byte
	reqID, flags, method, got, pl, err := readFrame(&framePool, bytes.NewReader(data), &hdr)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 77 || flags != flagRequest|flagTraced || method != MethodGetNeighborInfos {
		t.Fatalf("header mismatch: id=%d flags=%x m=%d", reqID, flags, method)
	}
	if got != sc {
		t.Fatalf("trace context = %+v, want %+v", got, sc)
	}
	if !bytes.Equal(pl.Bytes(), payload) {
		t.Fatalf("payload corrupted: %q", pl.Bytes())
	}
	pl.Release()

	// Untraced frames carry no trace block: the legacy layout exactly.
	plain := frameBytes(77, flagRequest, MethodGetNeighborInfos, obs.SpanContext{}, payload)
	if want := 4 + 10 + len(payload); len(plain) != want {
		t.Fatalf("plain frame is %d bytes, want %d", len(plain), want)
	}
	_, _, _, zero, plainPl, err := readFrame(&framePool, bytes.NewReader(plain), &hdr)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Valid() {
		t.Fatalf("plain frame produced trace context %+v", zero)
	}
	plainPl.Release()
}

// TestTracePropagationOverWire runs a real client/server pair and checks
// that a trace context on the caller's context reaches the handler, and that
// a server with a tracer attached records an rpc:<method> span parented to
// the caller's span.
func TestTracePropagationOverWire(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	serverTracer := obs.NewTracer(1, 0, 64) // rate 0: records only remote-initiated spans
	srv.SetTracer(serverTracer)

	gotSC := make(chan obs.SpanContext, 1)
	srv.HandleCtx(MethodEcho, func(ctx context.Context, payload []byte) ([]byte, error) {
		gotSC <- obs.FromContext(ctx)
		return payload, nil
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clientTracer := obs.NewTracer(0, 1.0, 64)
	root := clientTracer.StartTrace("query")
	rc := root.Context()
	ctx := obs.ContextWith(context.Background(), rc)
	resp, err := c.SyncCallCtx(ctx, MethodEcho, []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("echo = %q, %v", resp, err)
	}
	root.End()

	handlerSC := <-gotSC
	if !handlerSC.Valid() || handlerSC.TraceID != rc.TraceID {
		t.Fatalf("handler saw %+v, want trace %d", handlerSC, rc.TraceID)
	}
	// The handler context's span is the server-side rpc span, a child of the
	// client's root — not the root itself.
	if handlerSC.SpanID == rc.SpanID {
		t.Fatal("handler context carries the client span, not a server span")
	}
	spans := serverTracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "rpc:Echo" || s.Trace != rc.TraceID || s.Parent != rc.SpanID || s.Machine != 1 {
		t.Fatalf("server span wrong: %+v", s)
	}

	// Untraced calls reach handlers with no trace context and record nothing.
	resp, err = c.SyncCallCtx(context.Background(), MethodEcho, []byte("plain"))
	if err != nil || string(resp) != "plain" {
		t.Fatalf("plain echo = %q, %v", resp, err)
	}
	if sc := <-gotSC; sc.Valid() {
		t.Fatalf("untraced call leaked trace context %+v", sc)
	}
	if n := serverTracer.Recorded(); n != 1 {
		t.Fatalf("untraced call recorded a span (total %d)", n)
	}
}

// TestTracedErrorPath: a failing traced handler records an errored span and
// still returns the remote error.
func TestTracedErrorPath(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	tr := obs.NewTracer(0, 0, 16)
	srv.SetTracer(tr)
	srv.Handle(MethodEcho, func(payload []byte) ([]byte, error) {
		return nil, context.DeadlineExceeded
	})
	addr, err := srv.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := obs.ContextWith(context.Background(), obs.SpanContext{TraceID: 5, SpanID: 6})
	if _, err := c.SyncCallCtx(ctx, MethodEcho, nil); err == nil {
		t.Fatal("expected remote error")
	}
	spans := tr.Spans()
	if len(spans) != 1 || !spans[0].Err {
		t.Fatalf("want one errored span, got %+v", spans)
	}
}
