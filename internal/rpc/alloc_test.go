package rpc

import (
	"bytes"
	"testing"

	"pprengine/internal/mem"
	"pprengine/internal/obs"
)

// TestWriteFrameLargePayloadBypassesScratch: payloads at or above
// vectoredMin must go out as a vectored write, never copied into the
// per-connection scratch buffer.
func TestWriteFrameLargePayloadBypassesScratch(t *testing.T) {
	var out bytes.Buffer
	var wbuf []byte
	payload := make([]byte, vectoredMin)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := writeFrame(&out, &wbuf, 9, flagResponse, MethodGetNeighborInfos, obs.SpanContext{}, payload); err != nil {
		t.Fatal(err)
	}
	if wbuf != nil {
		t.Fatalf("large frame grew the scratch buffer to %d bytes", cap(wbuf))
	}
	// The emitted frame is byte-identical to the copying path's.
	var hdr [14]byte
	var pool mem.Pool
	reqID, flags, method, _, pl, err := readFrame(&pool, bytes.NewReader(out.Bytes()), &hdr)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 9 || flags != flagResponse || method != MethodGetNeighborInfos || !bytes.Equal(pl.Bytes(), payload) {
		t.Fatal("vectored frame does not round-trip")
	}
	pl.Release()
}

// TestWriteScratchShrinks: a scratch buffer that somehow grew past
// writeScratchCap is dropped after the next write instead of pinning its
// high-water capacity for the connection's lifetime.
func TestWriteScratchShrinks(t *testing.T) {
	var out bytes.Buffer
	wbuf := make([]byte, 0, writeScratchCap*4)
	if err := writeFrame(&out, &wbuf, 1, flagRequest, MethodEcho, obs.SpanContext{}, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if cap(wbuf) > writeScratchCap {
		t.Fatalf("scratch kept %d bytes of capacity, cap is %d", cap(wbuf), writeScratchCap)
	}
}

// TestReadFrameAllocBudget guards the frame-read hot path: once the pool is
// warm, parsing a frame and releasing its payload must not allocate per
// frame. Budget 2 tolerates a GC emptying the pool mid-run (one Buf + one
// backing array); the regression this guards against — a fresh buffer per
// frame, every frame — would sit at 2+ permanently and flake loudly.
func TestReadFrameAllocBudget(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	data := frameBytes(4, flagResponse, MethodGetNeighborInfos, obs.SpanContext{}, make([]byte, 8<<10))
	var pool mem.Pool
	var hdr [14]byte
	r := bytes.NewReader(data)
	// Warm the pool.
	if _, _, _, _, pl, err := readFrame(&pool, r, &hdr); err != nil {
		t.Fatal(err)
	} else {
		pl.Release()
	}
	allocs := testing.AllocsPerRun(500, func() {
		r.Reset(data)
		_, _, _, _, pl, err := readFrame(&pool, r, &hdr)
		if err != nil {
			t.Fatal(err)
		}
		pl.Release()
	})
	if allocs > 2 {
		t.Fatalf("frame read allocates %.1f objects per frame, budget 2", allocs)
	}
	if st := pool.Stats(); st.Hits == 0 {
		t.Fatalf("pool never hit: %+v", st)
	}
}

func BenchmarkReadFrameRelease(b *testing.B) {
	data := frameBytes(4, flagResponse, MethodGetNeighborInfos, obs.SpanContext{}, make([]byte, 8<<10))
	var pool mem.Pool
	var hdr [14]byte
	r := bytes.NewReader(data)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		_, _, _, _, pl, err := readFrame(&pool, r, &hdr)
		if err != nil {
			b.Fatal(err)
		}
		pl.Release()
	}
}

func BenchmarkWriteFrameVectored(b *testing.B) {
	payload := make([]byte, 64<<10)
	var wbuf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		var sink countWriter
		if err := writeFrame(&sink, &wbuf, uint64(i), flagResponse, MethodGetNeighborInfos, obs.SpanContext{}, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// countWriter discards writes without buffering (bytes.Buffer would dominate
// the write benchmark's allocations).
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
