package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func startEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		return p, nil
	})
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestEchoRoundTrip(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []byte("hello graph engine")
	resp, err := c.SyncCall(MethodEcho, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatalf("resp = %q", resp)
	}
	if c.RequestsSent.Load() != 1 || c.BytesSent.Load() != int64(len(payload)) {
		t.Fatal("stats not counted")
	}
}

func TestEmptyPayload(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	resp, err := c.SyncCall(MethodEcho, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	if _, err := c.SyncCall(Method(42), []byte("x")); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestHandlerError(t *testing.T) {
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	addr, err := s.ListenAndServe()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	_, err = c.SyncCall(MethodEcho, []byte("x"))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("boom")) {
		t.Fatalf("err = %v", err)
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		return p, nil
	})
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte(fmt.Sprintf("msg-%d", i))
			got, err := c.SyncCall(MethodEcho, want)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("mismatch: %q vs %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFuturesResolveOutOfOrder(t *testing.T) {
	// A slow handler and a fast handler: the fast response must not wait
	// for the slow one (asynchronous demux).
	s := NewServer()
	block := make(chan struct{})
	s.Handle(Method(10), func(p []byte) ([]byte, error) {
		<-block
		return []byte("slow"), nil
	})
	s.Handle(Method(11), func(p []byte) ([]byte, error) {
		return []byte("fast"), nil
	})
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()

	slowF := c.Call(Method(10), nil)
	fastF := c.Call(Method(11), nil)
	done := make(chan struct{})
	go func() {
		resp, err := fastF.Wait()
		if err == nil && string(resp) == "fast" {
			close(done)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("fast response blocked behind slow handler")
	}
	close(block)
	if resp, err := slowF.Wait(); err != nil || string(resp) != "slow" {
		t.Fatalf("slow: %q %v", resp, err)
	}
}

func TestWaitIdempotent(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	f := c.Call(MethodEcho, []byte("x"))
	r1, err1 := f.Wait()
	r2, err2 := f.Wait()
	if err1 != nil || err2 != nil || !bytes.Equal(r1, r2) {
		t.Fatal("Wait not idempotent")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	defer close(block)
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	f := c.Call(MethodEcho, []byte("x"))
	c.Close()
	if _, err := f.Wait(); err == nil {
		t.Fatal("pending call should fail after Close")
	}
	// Calls after Close fail immediately.
	if _, err := c.SyncCall(MethodEcho, []byte("y")); err == nil {
		t.Fatal("call after Close should fail")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	if _, err := c.SyncCall(MethodEcho, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Subsequent calls should fail, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := c.SyncCall(MethodEcho, []byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error after server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call hung after server close")
	}
}

func TestLatencyModel(t *testing.T) {
	lm := LatencyModel{Base: 10 * time.Millisecond, BytesPerSec: 1e6}
	d := lm.Delay(1000)
	if d != 11*time.Millisecond {
		t.Fatalf("Delay = %v, want 11ms", d)
	}
	if (LatencyModel{}).Delay(1<<20) != 0 {
		t.Fatal("zero model should have zero delay")
	}
	_, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{Base: 20 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	if _, err := c.SyncCall(MethodEcho, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("latency model not applied: %v", el)
	}
}

func TestInProcessPipeTransport(t *testing.T) {
	// NewClient over net.Pipe: the in-process transport path.
	srv, cli := net.Pipe()
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	go s.serveConn(srv)
	c := NewClient(cli, LatencyModel{})
	defer c.Close()
	resp, err := c.SyncCall(MethodEcho, []byte("pipe"))
	if err != nil || string(resp) != "pipe" {
		t.Fatalf("%q %v", resp, err)
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := startEchoServer(t)
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i)
	}
	resp, err := c.SyncCall(MethodEcho, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}

func BenchmarkRPCSmallCalls(b *testing.B) {
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SyncCall(MethodEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCBatchedCalls(b *testing.B) {
	// One call carrying 256 small records vs 256 calls: quantifies the
	// per-request overhead that motivates batching.
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	payload := make([]byte, 16*256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SyncCall(MethodEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDialRetryWaitsForServer(t *testing.T) {
	// Reserve a port, start the server shortly after the first dial fails.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // free it; DialRetry will fail until we rebind
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	go func() {
		time.Sleep(150 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		s.Serve(l2)
	}()
	defer s.Close()
	c, err := DialRetry(addr, LatencyModel{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.SyncCall(MethodEcho, []byte("hi")); err != nil || string(resp) != "hi" {
		t.Fatalf("%q %v", resp, err)
	}
}

func TestDialRetryTimesOut(t *testing.T) {
	start := time.Now()
	_, err := DialRetry("127.0.0.1:1", LatencyModel{}, 200*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ran far past its deadline")
	}
}

func TestServerStats(t *testing.T) {
	s := NewServer()
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.SyncCall(MethodEcho, []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	c.SyncCall(Method(40), nil) // unknown method -> error counter
	st := s.Stats()
	if st.Requests[MethodEcho] != 3 {
		t.Fatalf("requests = %v", st.Requests)
	}
	if st.Errors[Method(40)] != 1 {
		t.Fatalf("errors = %v", st.Errors)
	}
	if st.BytesIn < 12 || st.BytesOut < 12 {
		t.Fatalf("bytes: %+v", st)
	}
	if st.Connections != 1 {
		t.Fatalf("connections = %d", st.Connections)
	}
}

func TestServerMaxRequestBytes(t *testing.T) {
	s := NewServer()
	s.MaxRequestBytes = 16
	s.Handle(MethodEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.ListenAndServe()
	defer s.Close()
	c, _ := Dial(addr, LatencyModel{})
	defer c.Close()
	// Small request passes.
	if _, err := c.SyncCall(MethodEcho, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	// Oversized request is rejected with an error, connection survives.
	if _, err := c.SyncCall(MethodEcho, make([]byte, 64)); err == nil {
		t.Fatal("oversized request should fail")
	}
	if _, err := c.SyncCall(MethodEcho, []byte("ok")); err != nil {
		t.Fatalf("connection broken after rejection: %v", err)
	}
}
