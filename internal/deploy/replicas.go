package deploy

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pprengine/internal/admit"
	"pprengine/internal/cache"
	"pprengine/internal/core"
	"pprengine/internal/ha"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// ParseReplicaPeers parses "1=hostA:7001|hostB:7001,2=hostC:7002" into a
// shard → serving-address list map. The first address of each shard is its
// primary (the owner under owner-compute); the rest are replicas in failover
// preference order. A spec without '|' separators is exactly the ParsePeers
// syntax, so existing single-copy deployments parse unchanged.
func ParseReplicaPeers(spec string) (map[int32][]string, error) {
	peers := map[int32][]string{}
	if strings.TrimSpace(spec) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("deploy: bad peer %q (want shard=host:port[|host:port...])", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("deploy: bad peer shard id %q", kv[0])
		}
		var addrs []string
		for _, addr := range strings.Split(kv[1], "|") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("deploy: empty address for shard %d", id)
			}
			addrs = append(addrs, addr)
		}
		peers[int32(id)] = addrs
	}
	return peers, nil
}

// FormatReplicaPeers renders a replica-peer map back to the flag syntax.
func FormatReplicaPeers(peers map[int32][]string) string {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, strings.Join(peers[int32(id)], "|")))
	}
	return strings.Join(parts, ",")
}

// PrimaryPeers projects a replica-peer map onto the single-address form the
// non-replicated bootstrap paths take (each shard's primary).
func PrimaryPeers(peers map[int32][]string) map[int32]string {
	out := make(map[int32]string, len(peers))
	for id, addrs := range peers {
		if len(addrs) > 0 {
			out[id] = addrs[0]
		}
	}
	return out
}

// PlanReplicas computes a replica placement from per-shard weights (core-node
// or byte counts from the partition map): shard s's primary is machine s, and
// each of the replicas-1 extra copies goes to the least-loaded other machine.
// Ops tooling uses this to decide which shard files to ship where before
// starting the extra pprserve processes.
func PlanReplicas(weights []int64, replicas int) (ha.Placement, error) {
	return ha.PlaceWeighted(weights, replicas)
}

// buildRouter assembles a health tracker + replica router over peers for a
// compute process owning localShard, verifies every shard's primary is
// reachable under ctx (replicas may come up later; probing adopts them), and
// starts background probing. Addresses are also the health keys: a file-based
// deployment identifies peers by address, not machine index.
func buildRouter(ctx context.Context, localShard, k int32, peers map[int32][]string, haOpts ha.Options, lat rpc.LatencyModel) (*ha.ReplicaRouter, func(), error) {
	tracker := ha.NewHealthTracker(haOpts)
	endpoints := make([][]*ha.Endpoint, k)
	for j := int32(0); j < k; j++ {
		if j == localShard {
			continue
		}
		addrs, ok := peers[j]
		if !ok || len(addrs) == 0 {
			return nil, nil, fmt.Errorf("deploy: no serving address for shard %d", j)
		}
		for i, addr := range addrs {
			// The primary of shard j is machine j by the owner-compute
			// convention; replica hosts are only known by address here.
			machine := -1
			if i == 0 {
				machine = int(j)
			}
			ep := ha.NewEndpoint(machine, j, addr, "", lat)
			endpoints[j] = append(endpoints[j], ep)
			tracker.Register(ep)
		}
	}
	router := ha.NewReplicaRouter(tracker, endpoints, haOpts)
	cleanup := func() {
		tracker.Stop()
		router.Close()
	}
	for j := int32(0); j < k; j++ {
		if j == localShard {
			continue
		}
		// Fail fast only when NO copy of the shard is reachable: a dead
		// primary with a live replica is exactly the situation replication
		// exists for, and must not block bootstrap. Probing adopts whichever
		// endpoints come up later.
		var lastErr error
		reachable := false
		for _, ep := range endpoints[j] {
			if _, err := ep.Client(ctx); err == nil {
				reachable = true
				break
			} else {
				lastErr = err
			}
		}
		if !reachable {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: no serving copy of shard %d reachable (last: %w)", j, lastErr)
		}
	}
	tracker.Start()
	return router, cleanup, nil
}

// ConnectHA builds a compute-process handle with replicated remote serving:
// like Connect, but every remote shard may list several serving addresses.
// It starts a health tracker probing each distinct address and attaches a
// ReplicaRouter, so remote fetches prefer the primary and fail over to
// replicas when it is unreachable. The returned cleanup stops probing and
// closes every connection.
func ConnectHA(ctx context.Context, shardPath, locatorPath string, peers map[int32][]string, cfg core.Config, haOpts ha.Options, lat rpc.LatencyModel) (*core.DistGraphStorage, *ha.ReplicaRouter, func(), error) {
	s, err := shard.LoadFile(shardPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("deploy: load shard: %w", err)
	}
	loc, err := shard.LoadLocatorFile(locatorPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("deploy: load locator: %w", err)
	}
	router, cleanup, err := buildRouter(ctx, s.ShardID, s.NumShards, peers, haOpts, lat)
	if err != nil {
		return nil, nil, nil, err
	}
	compute := core.NewDistGraphStorage(s.ShardID, s, loc, make([]*rpc.Client, s.NumShards))
	compute.AttachRouter(router)
	attachHedger(compute, router, cfg, haOpts)
	if cfg.CacheBytes > 0 {
		compute.AttachCache(cache.New(cfg.CacheBytes))
	}
	if cfg.AggEnabled() {
		compute.AttachFetchAggregators(cfg.AggOptions())
	}
	attachFeatureTier(compute, cfg)
	return compute, router, cleanup, nil
}

// attachHedger wires a hedged-fetch layer over the router when the config
// asks for it. It must run before the aggregator attachments so merged
// flushes route through the hedger too.
func attachHedger(compute *core.DistGraphStorage, router *ha.ReplicaRouter, cfg core.Config, haOpts ha.Options) {
	if !cfg.Hedge {
		return
	}
	ho := cfg.HedgeOptions()
	ho.Tracer = haOpts.Tracer
	compute.AttachHedger(admit.NewHedger(router, ho))
}

// EnableQueriesHA is EnableQueries with replicated peers: the query owner's
// compute handle routes remote fetches through a ReplicaRouter, so served
// queries survive a peer machine's crash. The compute handle is returned
// for higher serving tiers (the GNN inference service), and the router so
// the serving process can wire its ReadyCheck into an admin server's
// /readyz. The returned cleanup stops probing and closes every connection.
func EnableQueriesHA(ctx context.Context, srv *core.StorageServer, peers map[int32][]string, cfg core.Config, haOpts ha.Options, lat rpc.LatencyModel) (*core.DistGraphStorage, *ha.ReplicaRouter, func(), error) {
	if haOpts.Tracer == nil {
		haOpts.Tracer = srv.Tracer()
	}
	router, cleanup, err := buildRouter(ctx, srv.Shard.ShardID, srv.Shard.NumShards, peers, haOpts, lat)
	if err != nil {
		return nil, nil, nil, err
	}
	compute := core.NewDistGraphStorage(srv.Shard.ShardID, srv.Shard, srv.Locator, make([]*rpc.Client, srv.Shard.NumShards))
	compute.AttachTracer(srv.Tracer())
	compute.AttachRouter(router)
	attachHedger(compute, router, cfg, haOpts)
	if cfg.CacheBytes > 0 {
		compute.AttachCache(cache.New(cfg.CacheBytes))
	}
	if cfg.AggEnabled() {
		compute.AttachFetchAggregators(cfg.AggOptions())
	}
	attachFeatureTier(compute, cfg)
	attachAdmission(compute, cfg)
	if err := srv.EnableQueryService(compute, cfg); err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	return compute, router, cleanup, nil
}

// Replicated reports whether a replica-peer map actually lists more than one
// serving address for any shard (i.e. whether the HA paths are worth wiring).
func Replicated(peers map[int32][]string) bool {
	for _, addrs := range peers {
		if len(addrs) > 1 {
			return true
		}
	}
	return false
}

// ValidateReplicas checks that every shard in peers lists at least r serving
// addresses (for a -replicas flag asserting the expected redundancy).
func ValidateReplicas(peers map[int32][]string, r int) error {
	if r <= 1 {
		return nil
	}
	for id, addrs := range peers {
		if len(addrs) < r {
			return fmt.Errorf("deploy: shard %d lists %d serving address(es), want >= %d (-replicas)", id, len(addrs), r)
		}
	}
	return nil
}
