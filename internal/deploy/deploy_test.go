package deploy

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/graph"
	"pprengine/internal/ha"
	"pprengine/internal/partition"
	"pprengine/internal/ppr"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// writeDeployment partitions a graph and writes shard + locator files.
func writeDeployment(t *testing.T, g *graph.Graph, k int) (dir string) {
	t.Helper()
	dir = t.TempDir()
	a, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, a, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		if err := s.SaveFile(filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := loc.SaveFile(filepath.Join(dir, "locator.bin")); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLocatorRoundTrip(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(200, 1000, 3))
	a, _ := partition.Partition(g, 3, partition.Options{Seed: 2})
	_, loc, err := shard.Build(g, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/loc.bin"
	if err := loc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := shard.LoadLocatorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != 3 {
		t.Fatal("shards")
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes; v++ {
		s1, l1 := loc.Locate(v)
		s2, l2 := got.Locate(v)
		if s1 != s2 || l1 != l2 {
			t.Fatalf("node %d: (%d,%d) vs (%d,%d)", v, s1, l1, s2, l2)
		}
		if got.Global(s2, l2) != v {
			t.Fatalf("global round trip broken at %d", v)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("1=127.0.0.1:7001, 2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[1] != "127.0.0.1:7001" || peers[2] != "127.0.0.1:7002" {
		t.Fatalf("%v", peers)
	}
	if FormatPeers(peers) != "1=127.0.0.1:7001,2=127.0.0.1:7002" {
		t.Fatalf("format: %s", FormatPeers(peers))
	}
	if _, err := ParsePeers("nonsense"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParsePeers("x=1:2"); err == nil {
		t.Fatal("expected id error")
	}
	empty, err := ParsePeers("  ")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v %v", empty, err)
	}
}

// TestFileBasedDeploymentEndToEnd is the integration test for the
// cmd/pprserve + cmd/pprquery path: shards and locator written to disk,
// servers bootstrapped from files on real TCP ports, a compute process
// connected from files + peer addresses, and query results checked against
// the single-machine ground truth.
func TestFileBasedDeploymentEndToEnd(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 300, NumEdges: 1800, A: 0.55, B: 0.2, C: 0.15, Seed: 8,
	}))
	const k = 3
	dir := writeDeployment(t, g, k)
	locPath := filepath.Join(dir, "locator.bin")

	// Start servers for shards 1 and 2 (shard 0 is "this machine").
	peers := map[int32]string{}
	for i := 1; i < k; i++ {
		srv, addr, err := Serve(filepath.Join(dir, fmt.Sprintf("shard-%d.bin", i)), locPath, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		peers[int32(i)] = addr
	}

	st, cleanup, err := Connect(context.Background(), filepath.Join(dir, "shard-0.bin"), locPath, peers, rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	src := st.Locator.Global(0, 4)
	m, stats, err := core.RunSSPPR(context.Background(), st, 4, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteRows == 0 {
		t.Fatal("expected remote traffic through real deployment")
	}
	scores := core.ScoresGlobal(st, m)
	exact, _ := ppr.PowerIteration(g, src, 0.462, 1e-12, 100000)
	l1 := 0.0
	for v, ev := range exact {
		l1 += math.Abs(scores[int32(v)] - ev)
	}
	var sumDW float64
	for _, d := range g.WeightedDegree {
		sumDW += float64(d)
	}
	if l1 > 1e-6*sumDW {
		t.Fatalf("deployment results off: L1 %v", l1)
	}
}

func TestConnectMissingPeer(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(100, 500, 4))
	dir := writeDeployment(t, g, 2)
	_, _, err := Connect(context.Background(), filepath.Join(dir, "shard-0.bin"), filepath.Join(dir, "locator.bin"),
		map[int32]string{}, rpc.LatencyModel{})
	if err == nil {
		t.Fatal("expected missing-peer error")
	}
}

func TestServeBadFiles(t *testing.T) {
	if _, _, err := Serve("/nonexistent/shard.bin", "/nonexistent/loc.bin", ":0"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLocatorDecodeGarbage(t *testing.T) {
	path := t.TempDir() + "/bad.bin"
	if err := writeFile(path, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.LoadLocatorFile(path); err == nil {
		t.Fatal("expected decode error")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func TestParseReplicaPeers(t *testing.T) {
	peers, err := ParseReplicaPeers("1=127.0.0.1:7001|127.0.0.1:7101, 2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || len(peers[1]) != 2 || peers[1][1] != "127.0.0.1:7101" || len(peers[2]) != 1 {
		t.Fatalf("%v", peers)
	}
	if got := FormatReplicaPeers(peers); got != "1=127.0.0.1:7001|127.0.0.1:7101,2=127.0.0.1:7002" {
		t.Fatalf("format: %s", got)
	}
	if !Replicated(peers) {
		t.Fatal("Replicated = false with a two-address shard")
	}
	prim := PrimaryPeers(peers)
	if prim[1] != "127.0.0.1:7001" || prim[2] != "127.0.0.1:7002" {
		t.Fatalf("primaries: %v", prim)
	}
	// Plain ParsePeers syntax parses unchanged and reports non-replicated.
	single, err := ParseReplicaPeers("1=a:1,2=b:2")
	if err != nil || Replicated(single) {
		t.Fatalf("single-copy spec: %v %v", single, err)
	}
	if _, err := ParseReplicaPeers("1=a:1|"); err == nil {
		t.Fatal("expected empty-address error")
	}
	if _, err := ParseReplicaPeers("x=a:1"); err == nil {
		t.Fatal("expected id error")
	}
}

func TestValidateReplicas(t *testing.T) {
	peers := map[int32][]string{1: {"a:1", "b:1"}, 2: {"c:1"}}
	if err := ValidateReplicas(peers, 0); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReplicas(peers, 2); err == nil {
		t.Fatal("shard 2 has one address; want error at R=2")
	}
	peers[2] = append(peers[2], "d:1")
	if err := ValidateReplicas(peers, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPlanReplicas(t *testing.T) {
	// Four shards with skewed weights: every shard's primary is itself, each
	// extra copy goes to the least-loaded other machine, copies per shard are
	// distinct, and the plan validates.
	pl, err := PlanReplicas([]int64{100, 10, 10, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(4); err != nil {
		t.Fatal(err)
	}
	if pl.Replicas() != 2 {
		t.Fatalf("replicas = %d", pl.Replicas())
	}
	for s := 0; s < 4; s++ {
		machines := pl.Machines(s)
		if machines[0] != s {
			t.Fatalf("shard %d primary = %d, want itself", s, machines[0])
		}
		seen := map[int]bool{}
		for _, m := range machines {
			if seen[m] {
				t.Fatalf("shard %d served twice by machine %d", s, m)
			}
			seen[m] = true
		}
	}
	// The heavy shard 0's replica should not land every light shard's replica
	// onto one machine: counting hosted replicas, no machine hosts more than
	// two at R=2 with four shards (greedy least-loaded).
	for m := 0; m < 4; m++ {
		if n := len(pl.HostedReplicas(m)); n > 2 {
			t.Fatalf("machine %d hosts %d replicas", m, n)
		}
	}
	if _, err := PlanReplicas([]int64{1, 2}, 3); err == nil {
		t.Fatal("R > machines must fail")
	}
}

// TestConnectHAFailover is the file-based deployment's failover test: two
// pprserve processes serve shard 1 (primary + replica); killing the primary
// mid-session leaves queries running against the replica.
func TestConnectHAFailover(t *testing.T) {
	g := graph.MakeUndirected(graph.RMAT(graph.RMATConfig{
		NumNodes: 300, NumEdges: 1800, A: 0.55, B: 0.2, C: 0.15, Seed: 9,
	}))
	const k = 2
	dir := writeDeployment(t, g, k)
	locPath := filepath.Join(dir, "locator.bin")

	primary, primAddr, err := Serve(filepath.Join(dir, "shard-1.bin"), locPath, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, replAddr, err := Serve(filepath.Join(dir, "shard-1.bin"), locPath, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	peers := map[int32][]string{1: {primAddr, replAddr}}
	// Pin float order so the only variable between the two runs is the
	// serving endpoint; replicas serve identical bytes, so scores must match.
	cfg := core.DefaultConfig()
	cfg.DeterministicPop = true
	cfg.PushWorkers = 1
	st, router, cleanup, err := ConnectHA(context.Background(), filepath.Join(dir, "shard-0.bin"), locPath, peers, cfg,
		ha.Options{ProbeInterval: 20 * time.Millisecond, ProbeTimeout: time.Second, BreakerThreshold: 2, AttemptTimeout: 2 * time.Second},
		rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	run := func() (map[int32]float64, error) {
		m, _, err := core.RunSSPPR(context.Background(), st, 0, cfg, nil)
		if err != nil {
			return nil, err
		}
		return core.ScoresGlobal(st, m), nil
	}
	before, err := run()
	if err != nil {
		t.Fatal(err)
	}
	primary.Close() // the primary machine "crashes"
	after, err := run()
	if err != nil {
		t.Fatalf("query after primary crash: %v", err)
	}
	if len(before) != len(after) {
		t.Fatalf("score sets differ: %d vs %d nodes", len(before), len(after))
	}
	for v, s := range before {
		if math.Abs(after[v]-s) > 1e-12 {
			t.Fatalf("node %d: %g vs %g after failover", v, s, after[v])
		}
	}
	if router.Failovers() == 0 {
		t.Fatal("no failovers recorded after the primary died")
	}
}

// TestGracefulShutdownDrains exercises the pprserve drain path: Shutdown
// completes while an in-flight request finishes, and new requests are
// rejected during the drain.
func TestGracefulShutdownDrains(t *testing.T) {
	g := graph.MakeUndirected(graph.ErdosRenyi(150, 700, 5))
	dir := writeDeployment(t, g, 2)
	srv, addr, err := Serve(filepath.Join(dir, "shard-1.bin"), filepath.Join(dir, "locator.bin"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr, rpc.LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SyncCall(rpc.MethodEcho, []byte("up")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if _, err := c.SyncCall(rpc.MethodEcho, []byte("down")); err == nil {
		t.Fatal("request after shutdown should fail")
	}
}
