// Mutation bootstrap for real deployments: every serving process gets a
// delta-CSR store over its shard, and exactly one process (the coordinator)
// additionally resolves client mutations and broadcasts epoch-stamped
// batches to its peers — the file-based analogue of cluster.Options.Mutable.
package deploy

import (
	"context"
	"fmt"
	"time"

	"pprengine/internal/core"
	"pprengine/internal/delta"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
	"pprengine/internal/wire"
)

// MutateOptions configures a serving process's mutation tier.
type MutateOptions struct {
	// Coordinator makes this process the cluster's mutation coordinator:
	// it accepts client mutations, assigns epochs from its own store, and
	// mirrors batches to every peer. Exactly one process per deployment
	// must set it (conventionally shard 0's).
	Coordinator bool
	// CompactInterval, when > 0, runs the background compactor at that
	// period. 0 leaves compaction to the MaxEpochs overflow trigger.
	CompactInterval time.Duration
	// MaxEpochs caps live (uncompacted) epochs; an Apply pushing past it
	// triggers a compaction. 0 = unbounded.
	MaxEpochs int
}

// EnableMutations upgrades a running storage server into a mutation
// endpoint: its shard gains a delta-CSR store, the ApplyMutations and
// epoch-pinned fetch handlers are registered, and compute (when non-nil,
// the process's query handle) reads through the store with epoch pinning
// at admission. With opts.Coordinator set it also builds the deployment's
// mutation coordinator over the peer addresses (the same map EnableQueries
// uses); the returned coordinator is nil otherwise. The returned cleanup
// stops the compactor and closes the coordinator's clients. ctx bounds the
// coordinator's peer dials.
func EnableMutations(ctx context.Context, srv *core.StorageServer, compute *core.DistGraphStorage, peers map[int32]string, opts MutateOptions, lat rpc.LatencyModel) (*delta.Store, *delta.Coordinator, func(), error) {
	store := delta.NewStore(srv.Locator, map[int32]*shard.Shard{srv.Shard.ShardID: srv.Shard})
	if opts.MaxEpochs > 0 {
		store.SetMaxEpochs(opts.MaxEpochs)
	}
	srv.AttachDelta(store)
	if compute != nil {
		compute.AttachDelta(store)
		if compute.Admit != nil {
			// Queries pin their mutation epoch at admission, so a query
			// queued behind a burst still reads its admission snapshot.
			compute.Admit.SetEpochSource(store.PinCurrent, store.Unpin)
		}
	}
	var stops []func()
	if opts.CompactInterval > 0 {
		stops = append(stops, store.StartCompactor(opts.CompactInterval))
	}
	cleanup := func() {
		for _, stop := range stops {
			stop()
		}
	}
	if !opts.Coordinator {
		return store, nil, cleanup, nil
	}

	// Coordinator: one applier per peer shard (the local store was already
	// written by Coordinator.Apply, so its slot stays nil), and a row
	// fetcher that reads a mutation source's current row from its owner.
	k := srv.Shard.NumShards
	clients := make([]*rpc.Client, k)
	for j := int32(0); j < k; j++ {
		if j == srv.Shard.ShardID {
			continue
		}
		addr, ok := peers[j]
		if !ok {
			cleanup()
			return nil, nil, nil, fmt.Errorf("deploy: coordinator needs a peer address for shard %d", j)
		}
		c, err := dialPeer(ctx, addr, lat)
		if err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("deploy: dial shard %d at %s: %w", j, addr, err)
		}
		clients[j] = c
		stops = append(stops, func() { c.Close() })
	}
	appliers := make([]delta.Applier, k)
	for j := int32(0); j < k; j++ {
		if clients[j] == nil {
			continue
		}
		cl := clients[j]
		appliers[j] = func(ctx context.Context, payload []byte) error {
			resp, err := cl.SyncCallCtx(ctx, rpc.MethodApplyMutations, payload)
			if err != nil {
				return err
			}
			_, err = wire.DecodeMutationAck(resp)
			return err
		}
	}
	fetch := func(ctx context.Context, sh, local int32, epoch uint64) (delta.RemoteRow, error) {
		if clients[sh] == nil {
			return delta.RemoteRow{}, fmt.Errorf("deploy: no client for shard %d", sh)
		}
		resp, err := clients[sh].SyncCallCtx(ctx, rpc.MethodGetNeighborInfosAt,
			wire.EncodeIDListAt(epoch, []int32{local}))
		if err != nil {
			return delta.RemoteRow{}, err
		}
		infos, err := wire.DecodeCSR(resp)
		if err != nil {
			return delta.RemoteRow{}, err
		}
		if infos.NumRows() != 1 {
			return delta.RemoteRow{}, fmt.Errorf("deploy: row fetch returned %d rows, want 1", infos.NumRows())
		}
		locals, shards, weights, _ := infos.Row(0)
		return delta.RemoteRow{Locals: locals, Shards: shards, Weights: weights, WDeg: infos.RowWDeg[0]}, nil
	}
	coord := delta.NewCoordinator(store, appliers, fetch)
	return store, coord, cleanup, nil
}
