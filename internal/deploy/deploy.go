// Package deploy bootstraps real multi-process deployments from files on
// disk: cmd/partition writes shard + locator files, cmd/pprserve turns one
// shard file into a Graph Storage server on a TCP address, and cmd/pprquery
// (or any embedding program) connects a compute process that holds one
// shard locally and reaches the rest over the network — the production
// topology the paper's single-host experiments simulate.
package deploy

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"pprengine/internal/admit"
	"pprengine/internal/cache"
	"pprengine/internal/core"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// DefaultDialTimeout bounds peer dials when the caller's context carries no
// deadline of its own.
const DefaultDialTimeout = 30 * time.Second

// dialPeer dials one peer under ctx, applying DefaultDialTimeout when ctx
// has no deadline (so a bare context.Background() can't hang bootstrap
// forever).
func dialPeer(ctx context.Context, addr string, lat rpc.LatencyModel) (*rpc.Client, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultDialTimeout)
		defer cancel()
	}
	return rpc.DialRetryCtx(ctx, addr, lat, rpc.RetryPolicy{})
}

// Serve loads a shard and its locator from disk and serves it on
// listenAddr ("host:port"; ":0" picks a free port). It returns the running
// server and the bound address.
func Serve(shardPath, locatorPath, listenAddr string) (*core.StorageServer, string, error) {
	s, err := shard.LoadFile(shardPath)
	if err != nil {
		return nil, "", fmt.Errorf("deploy: load shard: %w", err)
	}
	loc, err := shard.LoadLocatorFile(locatorPath)
	if err != nil {
		return nil, "", fmt.Errorf("deploy: load locator: %w", err)
	}
	srv := core.NewStorageServer(s, loc)
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, "", err
	}
	go srv.ServeListener(lis)
	return srv, lis.Addr().String(), nil
}

// EnableQueries upgrades a running storage server into a query owner: it
// connects a compute handle to the given peers and registers the SSPPR
// query handler, so thin clients can dispatch queries for this shard's core
// vertices. The compute handle is returned so the serving process can run
// higher tiers on it (the GNN inference service); the returned cleanup
// closes the peer clients. ctx bounds the peer dials (DefaultDialTimeout
// applies when it has no deadline).
func EnableQueries(ctx context.Context, srv *core.StorageServer, peers map[int32]string, cfg core.Config, lat rpc.LatencyModel) (*core.DistGraphStorage, func(), error) {
	k := srv.Shard.NumShards
	clients := make([]*rpc.Client, k)
	var opened []*rpc.Client
	cleanup := func() {
		for _, c := range opened {
			c.Close()
		}
	}
	for j := int32(0); j < k; j++ {
		if j == srv.Shard.ShardID {
			continue
		}
		addr, ok := peers[j]
		if !ok {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: query service needs a peer address for shard %d", j)
		}
		c, err := dialPeer(ctx, addr, lat)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: dial shard %d at %s: %w", j, addr, err)
		}
		clients[j] = c
		opened = append(opened, c)
	}
	compute := core.NewDistGraphStorage(srv.Shard.ShardID, srv.Shard, srv.Locator, clients)
	// The owner's compute handle shares the server's tracer (nil when tracing
	// is off), so a served query's driver-side spans land in the same ring
	// buffer as the server's rpc spans.
	compute.AttachTracer(srv.Tracer())
	if cfg.CacheBytes > 0 {
		// The owner's compute handle gets its own dynamic neighbor-row cache:
		// queries for this shard's sources repeatedly touch the same remote
		// hubs, which is exactly the access pattern the cache serves.
		compute.AttachCache(cache.New(cfg.CacheBytes))
	}
	if cfg.AggEnabled() {
		// One fetch aggregator per remote peer: the query service runs many
		// clients' queries concurrently on this handle, so their per-shard
		// fetches coalesce into merged wire requests.
		compute.AttachFetchAggregators(cfg.AggOptions())
	}
	attachFeatureTier(compute, cfg)
	attachAdmission(compute, cfg)
	if err := srv.EnableQueryService(compute, cfg); err != nil {
		cleanup()
		return nil, nil, err
	}
	return compute, cleanup, nil
}

// attachFeatureTier wires the feature-row cache and feature-fetch
// aggregators onto a compute handle from the config knobs — the serving
// tier's analogue of the neighbor cache/agg attachment above.
func attachFeatureTier(compute *core.DistGraphStorage, cfg core.Config) {
	if cfg.FeatCacheBytes > 0 {
		compute.AttachFeatureCache(cache.NewFeatures(cfg.FeatCacheBytes, cfg.FeatAdmitMass))
	}
	if cfg.AggEnabled() {
		compute.AttachFeatureFetchAggregators(cfg.AggOptions())
	}
}

// attachAdmission wires an admission controller onto a serving compute
// handle from the config knobs. The controller stays reachable as
// compute.Admit, so the serving process can expose its ReadyCheck and
// Snapshot through an admin server.
func attachAdmission(compute *core.DistGraphStorage, cfg core.Config) {
	if cfg.AdmitEnabled() {
		compute.AttachAdmission(admit.NewController(cfg.AdmitOptions()))
	}
}

// ConnectThin builds a thin query client: no local shard, just connections
// to every owner's query service plus the locator for routing. ctx bounds
// the dials.
func ConnectThin(ctx context.Context, locatorPath string, addrs map[int32]string, lat rpc.LatencyModel) (*core.QueryClient, func(), error) {
	loc, err := shard.LoadLocatorFile(locatorPath)
	if err != nil {
		return nil, nil, fmt.Errorf("deploy: load locator: %w", err)
	}
	k := loc.NumShards()
	clients := make([]*rpc.Client, k)
	var opened []*rpc.Client
	cleanup := func() {
		for _, c := range opened {
			c.Close()
		}
	}
	for j := 0; j < k; j++ {
		addr, ok := addrs[int32(j)]
		if !ok {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: thin client needs an address for every shard; missing %d", j)
		}
		c, err := rpc.DialCtx(ctx, addr, lat)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		clients[j] = c
		opened = append(opened, c)
	}
	return core.NewQueryClient(clients, loc.Locate), cleanup, nil
}

// ParsePeers parses "1=host:port,2=host:port" into a shard→address map.
func ParsePeers(spec string) (map[int32]string, error) {
	peers := map[int32]string{}
	if strings.TrimSpace(spec) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("deploy: bad peer %q (want shard=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("deploy: bad peer shard id %q", kv[0])
		}
		peers[int32(id)] = kv[1]
	}
	return peers, nil
}

// FormatPeers renders a peer map back to the flag syntax (for logs).
func FormatPeers(peers map[int32]string) string {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, peers[int32(id)]))
	}
	return strings.Join(parts, ",")
}

// Connect builds a compute-process handle: the local shard is loaded from
// disk (shared memory in a real deployment) and every other shard is
// reached through its peer address. The returned cleanup closes all
// clients. ctx bounds the peer dials (DefaultDialTimeout applies when it
// has no deadline).
func Connect(ctx context.Context, shardPath, locatorPath string, peers map[int32]string, lat rpc.LatencyModel) (*core.DistGraphStorage, func(), error) {
	s, err := shard.LoadFile(shardPath)
	if err != nil {
		return nil, nil, fmt.Errorf("deploy: load shard: %w", err)
	}
	loc, err := shard.LoadLocatorFile(locatorPath)
	if err != nil {
		return nil, nil, fmt.Errorf("deploy: load locator: %w", err)
	}
	k := s.NumShards
	clients := make([]*rpc.Client, k)
	var opened []*rpc.Client
	cleanup := func() {
		for _, c := range opened {
			c.Close()
		}
	}
	for j := int32(0); j < k; j++ {
		if j == s.ShardID {
			continue
		}
		addr, ok := peers[j]
		if !ok {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: no peer address for shard %d", j)
		}
		c, err := dialPeer(ctx, addr, lat)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("deploy: dial shard %d at %s: %w", j, addr, err)
		}
		clients[j] = c
		opened = append(opened, c)
	}
	return core.NewDistGraphStorage(s.ShardID, s, loc, clients), cleanup, nil
}
