// Package datasets defines the synthetic stand-ins for the paper's four
// evaluation graphs (Table 1). The real datasets (Ogbn-products, Twitter,
// Friendster, Ogbn-papers100M) have 120M–3.6B edges and cannot be shipped or
// processed in this environment, so each stand-in is an R-MAT graph scaled
// down ~50–500x while matching the property that drives the experiments:
// average degree and degree skew (Twitter's supernodes vs Friendster's
// bounded maximum degree). All graphs are made undirected with random edge
// weights, exactly as the paper preprocesses its datasets (§4.1).
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"pprengine/internal/graph"
)

// Spec describes one named dataset stand-in.
type Spec struct {
	Name     string // short name used by -data flags
	StandsIn string // the paper dataset it substitutes
	Nodes    int
	Edges    int64 // directed edge target before symmetrization
	A, B, C  float64
	Noise    float64
	MaxDeg   int // 0 = uncapped
	Seed     int64
}

// Specs lists the four stand-ins in the paper's Table 1 order. Sizes are
// chosen so the full benchmark suite runs in minutes on one host.
var Specs = []Spec{
	{Name: "products-sim", StandsIn: "Ogbn-products", Nodes: 1 << 16, Edges: 1_600_000, A: 0.50, B: 0.22, C: 0.22, Noise: 0.05, Seed: 101},
	{Name: "twitter-sim", StandsIn: "Twitter", Nodes: 1 << 17, Edges: 3_600_000, A: 0.62, B: 0.17, C: 0.17, Noise: 0.10, Seed: 102},
	// Friendster has bounded skew (paper dmax/davg ≈ 90 vs Twitter's
	// ≈ 52000); a gentle R-MAT keeps the max degree low without a hard cap.
	{Name: "friendster-sim", StandsIn: "Friendster", Nodes: 1 << 17, Edges: 3_700_000, A: 0.35, B: 0.25, C: 0.25, Noise: 0.05, Seed: 103},
	{Name: "papers-sim", StandsIn: "Ogbn-papers100M", Nodes: 1 << 17, Edges: 1_900_000, A: 0.55, B: 0.20, C: 0.20, Noise: 0.05, Seed: 104},
}

// Names returns the stand-in names in order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Generate materializes the stand-in graph: R-MAT, symmetrized, weighted.
func (s Spec) Generate() *graph.Graph {
	g := graph.RMAT(graph.RMATConfig{
		NumNodes:  s.Nodes,
		NumEdges:  s.Edges,
		A:         s.A,
		B:         s.B,
		C:         s.C,
		Noise:     s.Noise,
		MaxDegree: s.MaxDeg,
		Seed:      s.Seed,
	})
	return graph.MakeUndirected(g)
}

// Scaled returns a proportionally smaller variant (divide nodes and edges by
// factor), for fast tests and CI-scale benchmarks.
func (s Spec) Scaled(factor int) Spec {
	out := s
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	out.Nodes = s.Nodes / factor
	if out.Nodes < 1024 {
		out.Nodes = 1024
	}
	out.Edges = s.Edges / int64(factor)
	if out.Edges < int64(out.Nodes) {
		out.Edges = int64(out.Nodes)
	}
	if out.MaxDeg > 0 {
		// Keep the degree cap proportionate so the capped dataset stays
		// less skewed than the uncapped ones at any scale.
		out.MaxDeg /= factor
		if out.MaxDeg < 16 {
			out.MaxDeg = 16
		}
	}
	return out
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// GenerateCached memoizes Generate by spec name so benchmarks that reuse a
// dataset pay generation cost once per process.
func (s Spec) GenerateCached() *graph.Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[s.Name]; ok {
		return g
	}
	g := s.Generate()
	cache[s.Name] = g
	return g
}

// Table1Row matches the columns of the paper's Table 1.
type Table1Row struct {
	Name     string
	StandsIn string
	V        int
	E        int64 // undirected edge count (stored directed entries / 2)
	DAvg     float64
	DMax     int
}

// Table1 computes the dataset statistics table over all stand-ins (or the
// provided scaled variants).
func Table1(specs []Spec) []Table1Row {
	rows := make([]Table1Row, 0, len(specs))
	for _, s := range specs {
		g := s.GenerateCached()
		st := graph.ComputeStats(g)
		rows = append(rows, Table1Row{
			Name:     s.Name,
			StandsIn: s.StandsIn,
			V:        st.NumNodes,
			E:        st.NumEdges / 2,
			DAvg:     st.AvgDegree,
			DMax:     st.MaxDegree,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].V < rows[j].V })
	return rows
}
