package datasets

import (
	"testing"

	"pprengine/internal/graph"
)

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatal("wrong spec")
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestScaledSpecs(t *testing.T) {
	for _, s := range Specs {
		sc := s.Scaled(64)
		if sc.Nodes >= s.Nodes || sc.Edges >= s.Edges {
			t.Fatalf("%s not scaled", s.Name)
		}
		if sc.Nodes < 1024 || sc.Edges < int64(sc.Nodes) {
			t.Fatalf("%s scaled below floors: %+v", s.Name, sc)
		}
	}
}

func TestGeneratedPropertiesMatchIntent(t *testing.T) {
	// Use heavily scaled variants to keep the test fast; skew ordering
	// should be preserved by R-MAT parameters.
	tw, _ := Lookup("twitter-sim")
	fr, _ := Lookup("friendster-sim")
	gTW := tw.Scaled(32).Generate()
	gFR := fr.Scaled(32).Generate()
	stTW := graph.ComputeStats(gTW)
	stFR := graph.ComputeStats(gFR)
	if err := gTW.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := gFR.Validate(); err != nil {
		t.Fatal(err)
	}
	// Twitter-sim must be much more skewed than friendster-sim, relative
	// to average degree.
	skewTW := float64(stTW.MaxDegree) / stTW.AvgDegree
	skewFR := float64(stFR.MaxDegree) / stFR.AvgDegree
	if skewTW < 2*skewFR {
		t.Fatalf("skew ordering broken: twitter %f vs friendster %f", skewTW, skewFR)
	}
}

func TestGenerateCachedReuses(t *testing.T) {
	s := Specs[0].Scaled(128)
	g1 := s.GenerateCached()
	g2 := s.GenerateCached()
	if g1 != g2 {
		t.Fatal("cache miss on second call")
	}
}

func TestTable1(t *testing.T) {
	specs := []Spec{Specs[0].Scaled(128), Specs[1].Scaled(128)}
	rows := Table1(specs)
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	for _, r := range rows {
		if r.V == 0 || r.E == 0 || r.DAvg <= 0 || r.DMax <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
}
