package obs

import (
	"context"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("query")
	if sp.Context().Valid() {
		t.Fatal("nil tracer produced a valid span context")
	}
	sp.SetShard(3)
	sp.SetErr(true)
	sp.End() // must not panic
	child := tr.StartSpan(SpanContext{TraceID: 1, SpanID: 2}, "child")
	child.End()
	if tr.Recorded() != 0 || tr.Spans() != nil || tr.Machine() != -1 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestStrideSampling(t *testing.T) {
	tr := NewTracer(0, 0.25, 64) // stride 4
	sampled := 0
	for i := 0; i < 100; i++ {
		sp := tr.StartTrace("q")
		if sp.Context().Valid() {
			sampled++
			sp.End()
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at rate 0.25, want 25", sampled)
	}

	always := NewTracer(0, 1.0, 64)
	for i := 0; i < 10; i++ {
		sp := always.StartTrace("q")
		if !sp.Context().Valid() {
			t.Fatal("rate 1.0 skipped a trace")
		}
		sp.End()
	}

	never := NewTracer(0, 0, 64)
	if sp := never.StartTrace("q"); sp.Context().Valid() {
		t.Fatal("rate 0 sampled a locally-started trace")
	}
	// rate 0 must still record remote-initiated spans: servers participate in
	// traces the coordinator sampled.
	remote := SpanContext{TraceID: 42, SpanID: 7}
	sp := never.StartSpan(remote, "rpc:Echo")
	if !sp.Context().Valid() {
		t.Fatal("rate 0 refused a remote-parented span")
	}
	sp.End()
	if never.Recorded() != 1 {
		t.Fatalf("recorded %d spans, want 1", never.Recorded())
	}
}

func TestSpanParentage(t *testing.T) {
	tr := NewTracer(2, 1.0, 64)
	root := tr.StartTrace("query")
	rc := root.Context()
	child := tr.StartSpan(rc, "remote-fetch")
	child.SetShard(5)
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace %d != root trace %d", cc.TraceID, rc.TraceID)
	}
	if cc.SpanID == rc.SpanID {
		t.Fatal("child span ID equals parent span ID")
	}
	child.SetErr(true)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring is oldest-first; child ended first.
	if spans[0].Name != "remote-fetch" || spans[0].Parent != rc.SpanID || spans[0].Shard != 5 || !spans[0].Err {
		t.Fatalf("child span wrong: %+v", spans[0])
	}
	if spans[1].Name != "query" || spans[1].Parent != 0 || spans[1].Machine != 2 {
		t.Fatalf("root span wrong: %+v", spans[1])
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(0, 1.0, 4)
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace("q")
		sp.SetShard(int32(i))
		sp.End()
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded %d, want 10", tr.Recorded())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int32(6 + i); s.Shard != want {
			t.Fatalf("span %d shard = %d, want %d (oldest-first order)", i, s.Shard, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if sc := FromContext(ctx); sc.Valid() {
		t.Fatal("empty context carried a span context")
	}
	// Invalid contexts don't allocate a new ctx.
	if got := ContextWith(ctx, SpanContext{}); got != ctx {
		t.Fatal("ContextWith(zero) returned a new context")
	}
	sc := SpanContext{TraceID: 11, SpanID: 22}
	if got := FromContext(ContextWith(ctx, sc)); got != sc {
		t.Fatalf("round-trip got %+v, want %+v", got, sc)
	}
}

func TestIDsDistinctAcrossMachines(t *testing.T) {
	a, b := NewTracer(0, 1.0, 16), NewTracer(1, 1.0, 16)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range []*Tracer{a, b} {
			sp := tr.StartTrace("q")
			sc := sp.Context()
			if seen[sc.TraceID] || seen[sc.SpanID] {
				t.Fatal("duplicate ID across machines")
			}
			seen[sc.TraceID], seen[sc.SpanID] = true, true
			sp.End()
		}
	}
}

func TestSummarizeTraces(t *testing.T) {
	mk := func(trace, parent uint64, name string, dur time.Duration) Span {
		return Span{Trace: trace, ID: trace*100 + uint64(dur), Parent: parent, Name: name, DurNs: int64(dur)}
	}
	spans := []Span{
		mk(1, 0, "query", 50*time.Millisecond),
		mk(1, 1, "remote-fetch", 20*time.Millisecond),
		mk(2, 0, "query", 200*time.Millisecond),
		mk(3, 9, "rpc:GetNeighborInfos", 5*time.Millisecond), // rootless: peer's view
	}
	out := SummarizeTraces(spans, 0, 0)
	if len(out) != 3 {
		t.Fatalf("got %d traces, want 3", len(out))
	}
	if out[0].Trace != 2 || out[1].Trace != 1 {
		t.Fatalf("not sorted slowest-first: %v %v", out[0].Trace, out[1].Trace)
	}
	if len(out[1].Spans) != 2 {
		t.Fatalf("trace 1 has %d spans, want 2", len(out[1].Spans))
	}
	if out[2].RootName != "" || out[2].RootDurNs != int64(5*time.Millisecond) {
		t.Fatalf("rootless trace summary wrong: %+v", out[2])
	}

	// minDur filters by root duration; limit truncates after sorting.
	out = SummarizeTraces(spans, 10*time.Millisecond, 1)
	if len(out) != 1 || out[0].Trace != 2 {
		t.Fatalf("filtered summary wrong: %+v", out)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(0, 1.0, 128)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.StartTrace("q")
				child := tr.StartSpan(sp.Context(), "c")
				child.End()
				sp.End()
				tr.Spans()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tr.Recorded() != 8*200*2 {
		t.Fatalf("recorded %d, want %d", tr.Recorded(), 8*200*2)
	}
}
