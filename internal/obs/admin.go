package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Admin is the per-process observability HTTP server (pprserve -admin-addr):
//
//	/metrics       Prometheus text exposition of the attached registry
//	/healthz       liveness — 200 as long as the process serves HTTP
//	/readyz        readiness — bootstrap flag plus named checks (breakers)
//	/debug/traces  recent traces from the attached tracers, slowest first,
//	               as JSON (?min_ms=N&limit=N)
//	/debug/pprof/  the standard runtime profiles
//
// Liveness and readiness are deliberately split: a draining server is alive
// (don't kill it harder) but not ready (stop sending it queries), which is
// exactly the SIGTERM window.
type Admin struct {
	reg *Registry

	mu      sync.Mutex
	tracers []*Tracer
	checks  []readyCheck
	extra   map[string]http.Handler
	ready   atomic.Bool

	srv *http.Server
}

type readyCheck struct {
	name string
	fn   func() error
}

// NewAdmin returns an admin server over reg (nil gets a fresh empty
// registry). It starts not-ready; call SetReady(true) once bootstrap
// (shard load, peer dials) finished.
func NewAdmin(reg *Registry) *Admin {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Admin{reg: reg}
}

// Registry returns the metrics registry the admin serves.
func (a *Admin) Registry() *Registry { return a.reg }

// AttachTracer adds a tracer whose spans /debug/traces serves. Multiple
// tracers (a simulated multi-machine cluster in one process) are merged.
func (a *Admin) AttachTracer(t *Tracer) {
	if t == nil {
		return
	}
	a.mu.Lock()
	a.tracers = append(a.tracers, t)
	a.mu.Unlock()
}

// SetReady flips the bootstrap readiness flag: false until the serving
// process finished loading its shard and dialing peers, and again false the
// moment a SIGTERM drain begins.
func (a *Admin) SetReady(ready bool) { a.ready.Store(ready) }

// AddCheck registers a named readiness check evaluated on every /readyz
// request; any check returning an error makes the endpoint report 503.
func (a *Admin) AddCheck(name string, fn func() error) {
	a.mu.Lock()
	a.checks = append(a.checks, readyCheck{name: name, fn: fn})
	a.mu.Unlock()
}

// Handle mounts an application endpoint (exact path match) on the admin
// server — pprserve's /infer, for example. Extra routes are looked up at
// request time, so a handler registered after ListenAndServe still serves;
// they never shadow the fixed admin endpoints.
func (a *Admin) Handle(pattern string, h http.Handler) {
	a.mu.Lock()
	if a.extra == nil {
		a.extra = make(map[string]http.Handler)
	}
	a.extra[pattern] = h
	a.mu.Unlock()
}

// Handler returns the admin mux, for embedding or tests.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/debug/traces", a.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pat := mux.Handler(r); pat == "" || pat == "/" {
			a.mu.Lock()
			h := a.extra[r.URL.Path]
			a.mu.Unlock()
			if h != nil {
				h.ServeHTTP(w, r)
				return
			}
		}
		mux.ServeHTTP(w, r)
	})
}

// ListenAndServe binds addr and serves the admin endpoints in a background
// goroutine, returning the bound address (addr may use port 0).
func (a *Admin) ListenAndServe(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	a.srv = &http.Server{Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(lis)
	return lis.Addr().String(), nil
}

// Shutdown drains the admin server gracefully (it is last in the SIGTERM
// sequence so /healthz answers while the storage server drains).
func (a *Admin) Shutdown(ctx context.Context) error {
	if a.srv == nil {
		return nil
	}
	return a.srv.Shutdown(ctx)
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.reg.WritePrometheus(w)
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: bootstrapping or draining")
		return
	}
	a.mu.Lock()
	checks := append([]readyCheck(nil), a.checks...)
	a.mu.Unlock()
	for _, c := range checks {
		if err := c.fn(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %s: %v\n", c.name, err)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// traceJSON is the /debug/traces wire shape: hex trace IDs for greppability,
// durations in both ns (machine) and ms (human).
type traceJSON struct {
	Trace  string  `json:"trace"`
	RootMs float64 `json:"root_ms"`
	Root   string  `json:"root_name,omitempty"`
	Spans  []Span  `json:"spans"`
}

func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	minMs, _ := strconv.ParseFloat(r.URL.Query().Get("min_ms"), 64)
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 {
		limit = 20
	}
	a.mu.Lock()
	tracers := append([]*Tracer(nil), a.tracers...)
	a.mu.Unlock()
	var spans []Span
	for _, t := range tracers {
		spans = append(spans, t.Spans()...)
	}
	sums := SummarizeTraces(spans, time.Duration(minMs*float64(time.Millisecond)), limit)
	out := make([]traceJSON, 0, len(sums))
	for _, ts := range sums {
		sort.Slice(ts.Spans, func(i, j int) bool { return ts.Spans[i].Start < ts.Spans[j].Start })
		out = append(out, traceJSON{
			Trace:  fmt.Sprintf("%016x", ts.Trace),
			RootMs: float64(ts.RootDurNs) / 1e6,
			Root:   ts.RootName,
			Spans:  ts.Spans,
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// TraceIDString renders a trace ID the way log lines and /debug/traces do.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }
