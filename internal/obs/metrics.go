package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Instrument kinds, matching the Prometheus TYPE lines the encoder emits.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Labels are a metric series' label set. The registry renders them sorted by
// key, so two Labels maps with equal contents identify the same series.
type Labels map[string]string

// Counter is a monotonically increasing float series.
type Counter struct{ v atomicFloat }

// Add increments the counter by v (v must be >= 0; negative adds are
// ignored to keep the series monotone).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a float series that can move both ways.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size distribution. Buckets hold
// per-bucket (non-cumulative) counts internally; the encoder emits the
// cumulative form Prometheus expects, with the implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// DefBuckets are latency buckets in seconds, spanning 100µs to 10s.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// atomicFloat is a float64 with atomic add/load via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// series is one label set's instrument within a family: a direct instrument
// or a scrape-time read function (adapter over an external counter).
type series struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one metric name: its help, type, and series in registration
// order.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; instrument
// updates are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family for name, checking type
// consistency.
func (r *Registry) familyFor(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// seriesFor returns (creating if needed) the series for labels within f.
// Caller holds r.mu.
func (f *family) seriesFor(labels Labels) (*series, bool) {
	key := renderLabels(labels)
	if s, ok := f.byLabels[key]; ok {
		return s, false
	}
	s := &series{labels: key}
	f.byLabels[key] = s
	f.series = append(f.series, s)
	return s, true
}

// Counter returns the counter series for (name, labels), registering the
// family on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.familyFor(name, help, typeCounter).seriesFor(labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.familyFor(name, help, typeGauge).seriesFor(labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram series for (name, labels) with the given
// bucket upper bounds (nil uses DefBuckets). Bounds must be sorted
// ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.familyFor(name, help, typeHistogram).seriesFor(labels)
	if fresh {
		s.hist = &Histogram{bounds: buckets, counts: make([]atomic.Int64, len(buckets))}
	}
	return s.hist
}

// CounterFunc registers a counter series whose value is read by fn at scrape
// time — the adapter form, bridging existing atomic counters (e.g.
// internal/metrics globals) into the registry without double accounting.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyFor(name, help, typeCounter).seriesFor(labels)
	s.fn = fn
}

// GaugeFunc is CounterFunc for gauge semantics.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyFor(name, help, typeGauge).seriesFor(labels)
	s.fn = fn
}

// renderLabels renders a label set as {k="v",...}, keys sorted, values
// escaped per the Prometheus text format. Empty labels render as "".
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + `="` + escapeLabelValue(labels[k]) + `"`
	}
	return out + "}"
}
