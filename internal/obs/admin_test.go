package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_total", "Admin test counter.", nil).Add(9)
	a := NewAdmin(reg)
	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown(context.Background())
	base := "http://" + addr

	if code, body := adminGet(t, base, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Readiness: 503 before bootstrap, 200 after, 503 again when a check
	// fails or the drain flag flips.
	if code, _ := adminGet(t, base, "/readyz"); code != 503 {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	a.SetReady(true)
	if code, _ := adminGet(t, base, "/readyz"); code != 200 {
		t.Fatalf("/readyz after SetReady = %d, want 200", code)
	}
	checkErr := errors.New("shard 1 unreachable")
	a.AddCheck("breakers", func() error { return checkErr })
	if code, body := adminGet(t, base, "/readyz"); code != 503 || !contains(body, "breakers") || !contains(body, "shard 1 unreachable") {
		t.Fatalf("/readyz with failing check = %d %q", code, body)
	}
	checkErr = nil
	if code, _ := adminGet(t, base, "/readyz"); code != 200 {
		t.Fatal("/readyz did not recover when check passed")
	}
	a.SetReady(false)
	if code, _ := adminGet(t, base, "/readyz"); code != 503 {
		t.Fatal("/readyz did not flip on SetReady(false)")
	}

	code, body := adminGet(t, base, "/metrics")
	if code != 200 || !contains(body, "admin_test_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	if code, body := adminGet(t, base, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestAdminTraces(t *testing.T) {
	a := NewAdmin(nil)
	fast := NewTracer(0, 1.0, 64)
	slow := NewTracer(1, 1.0, 64)
	a.AttachTracer(fast)
	a.AttachTracer(slow)

	sp := fast.StartTrace("query")
	child := fast.StartSpan(sp.Context(), "remote-fetch")
	child.End()
	sp.End()
	// A slower trace on the other machine's tracer, with a synthetic
	// duration large enough to pass a min_ms filter.
	root := slow.StartTrace("query")
	rc := root.Context()
	root.End()
	slow.mu.Lock()
	for i := range slow.ring {
		if slow.ring[i].ID == rc.SpanID {
			slow.ring[i].DurNs = int64(80 * time.Millisecond)
		}
	}
	slow.mu.Unlock()

	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown(context.Background())
	base := "http://" + addr

	code, body := adminGet(t, base, "/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces = %d", code)
	}
	var out []struct {
		Trace  string  `json:"trace"`
		RootMs float64 `json:"root_ms"`
		Root   string  `json:"root_name"`
		Spans  []Span  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON from /debug/traces: %v\n%s", err, body)
	}
	if len(out) != 2 {
		t.Fatalf("got %d traces, want 2", len(out))
	}
	if out[0].Trace != fmt.Sprintf("%016x", rc.TraceID) || out[0].RootMs < 79 {
		t.Fatalf("slowest trace first: %+v", out[0])
	}
	if out[1].Root != "query" || len(out[1].Spans) != 2 {
		t.Fatalf("fast trace summary wrong: %+v", out[1])
	}

	// min_ms filters the fast trace out; limit caps the result.
	code, body = adminGet(t, base, "/debug/traces?min_ms=50")
	if code != 200 {
		t.Fatalf("/debug/traces?min_ms=50 = %d", code)
	}
	out = out[:0]
	json.Unmarshal([]byte(body), &out)
	if len(out) != 1 || out[0].RootMs < 79 {
		t.Fatalf("min_ms filter wrong: %+v", out)
	}
}
