// Package obs is the engine's observability subsystem: lightweight
// distributed tracing (per-query spans propagated inside the wire
// protocol's request frames), a metrics registry with a Prometheus
// text-format encoder, and the admin HTTP server that exposes both to a
// live cluster (DESIGN.md §5g).
//
// Tracing follows the engine's nil-is-disabled convention (like
// metrics.Breakdown): a nil *Tracer and the zero SpanContext are no-ops
// everywhere, so the instrumented hot paths cost one pointer check when
// tracing is off. Sampling is head-based: the coordinator that starts a
// query decides once whether the trace is recorded, and every downstream
// machine simply records spans for any request frame that carries a trace
// context. At a 1% sample rate the per-query cost is one atomic increment.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a position in a trace: the trace it belongs to and
// the span that is the parent of any work done under it. The zero value
// means "not traced" and is what every unsampled query carries.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// ctxKey carries a SpanContext through context.Context values.
type ctxKey struct{}

// ContextWith returns ctx carrying sc. An invalid sc returns ctx unchanged,
// so untraced paths allocate nothing.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the SpanContext from ctx (zero when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Span is one recorded unit of work. Spans are small fixed-shape records so
// a ring buffer of them stays cache-friendly and allocation-free to reuse.
type Span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Machine is the simulated machine (shard index of the recorder's host)
	// the span ran on; Shard is the destination shard a fetch-type span
	// targeted (-1 when not applicable).
	Machine int32  `json:"machine"`
	Shard   int32  `json:"shard"`
	Name    string `json:"name"`
	Start   int64  `json:"start"` // UnixNano
	DurNs   int64  `json:"dur_ns"`
	Err     bool   `json:"err,omitempty"`
}

// Tracer records spans for one machine into a fixed-size ring buffer.
// StartTrace applies head-based stride sampling; StartSpan follows its
// parent's sampling decision (recording whenever the parent is valid), which
// is what lets a server record spans for remote-initiated traces without a
// sampling decision of its own. A nil Tracer is the disabled value: every
// method is a no-op returning zero values.
type Tracer struct {
	machine int32
	stride  uint64 // sample 1 in stride StartTrace calls; 0 = never
	seq     atomic.Uint64
	ids     atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int // ring write cursor
	total int64
}

// DefaultRingSize is the per-machine span buffer capacity applied when
// NewTracer gets capacity <= 0.
const DefaultRingSize = 8192

// NewTracer returns a tracer for the given machine. sampleRate is the
// fraction of locally-started traces recorded (1 in round(1/rate)); <= 0
// disables local sampling while still recording spans of remote-initiated
// traces, which is the right default for a serving process.
func NewTracer(machine int32, sampleRate float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	var stride uint64
	if sampleRate > 0 {
		if sampleRate >= 1 {
			stride = 1
		} else {
			stride = uint64(1/sampleRate + 0.5)
			if stride == 0 {
				stride = 1
			}
		}
	}
	return &Tracer{machine: machine, stride: stride, ring: make([]Span, 0, capacity)}
}

// Machine returns the machine index the tracer records for (-1 on nil).
func (t *Tracer) Machine() int32 {
	if t == nil {
		return -1
	}
	return t.machine
}

// newID mints a process-unique nonzero ID, salted by machine so IDs from
// different machines of one simulated cluster never collide.
func (t *Tracer) newID() uint64 {
	return (uint64(uint32(t.machine))+1)<<40 | t.ids.Add(1)
}

// ActiveSpan is a span being timed. The zero value (unsampled or nil
// tracer) is valid: every method is a no-op and Context returns the zero
// SpanContext, so callers never branch on whether tracing is on.
type ActiveSpan struct {
	t *Tracer
	s Span
}

// Context returns the SpanContext identifying this span (zero when the span
// is not recording), for propagation to child work.
func (a *ActiveSpan) Context() SpanContext {
	if a.t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.s.Trace, SpanID: a.s.ID}
}

// SetShard tags the span with the destination shard of the work it times.
func (a *ActiveSpan) SetShard(shard int32) {
	if a.t != nil {
		a.s.Shard = shard
	}
}

// SetErr marks the span as failed.
func (a *ActiveSpan) SetErr(failed bool) {
	if a.t != nil {
		a.s.Err = failed
	}
}

// End stops the span's clock and records it into the tracer's ring.
func (a *ActiveSpan) End() {
	if a.t == nil {
		return
	}
	a.s.DurNs = time.Now().UnixNano() - a.s.Start
	a.t.record(a.s)
	a.t = nil
}

// StartTrace starts a new root span named name, applying the tracer's
// sampling stride. Unsampled calls return the zero ActiveSpan.
func (t *Tracer) StartTrace(name string) ActiveSpan {
	if t == nil || t.stride == 0 {
		return ActiveSpan{}
	}
	if (t.seq.Add(1)-1)%t.stride != 0 {
		return ActiveSpan{}
	}
	return ActiveSpan{t: t, s: Span{
		Trace:   t.newID(),
		ID:      t.newID(),
		Machine: t.machine,
		Shard:   -1,
		Name:    name,
		Start:   time.Now().UnixNano(),
	}}
}

// StartSpan starts a child span of parent. An invalid parent (the unsampled
// case) returns the zero ActiveSpan, so child instrumentation follows the
// root's sampling decision for free.
func (t *Tracer) StartSpan(parent SpanContext, name string) ActiveSpan {
	if t == nil || !parent.Valid() {
		return ActiveSpan{}
	}
	return ActiveSpan{t: t, s: Span{
		Trace:   parent.TraceID,
		ID:      t.newID(),
		Parent:  parent.SpanID,
		Machine: t.machine,
		Shard:   -1,
		Name:    name,
		Start:   time.Now().UnixNano(),
	}}
}

// record appends s to the ring, overwriting the oldest span when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Recorded returns the total number of spans recorded (including any the
// ring has since overwritten). A nil tracer reports 0.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns a snapshot of the buffered spans, oldest first. A nil
// tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSummary groups one trace's buffered spans for the /debug/traces
// endpoint: the identifying root (when buffered on this machine), the
// trace's total span count here, and the spans themselves.
type TraceSummary struct {
	Trace uint64 `json:"trace"`
	// RootDurNs is the duration of the trace's root span when this machine
	// holds it, else the longest local span's (a serving peer sees only its
	// own side of the trace).
	RootDurNs int64  `json:"root_dur_ns"`
	RootName  string `json:"root_name"`
	Spans     []Span `json:"spans"`
}

// Traces groups the buffered spans by trace and returns the slowest traces
// first (by root duration), keeping only traces whose root lasted at least
// minDur and at most limit entries (limit <= 0 means all).
func (t *Tracer) Traces(minDur time.Duration, limit int) []TraceSummary {
	return SummarizeTraces(t.Spans(), minDur, limit)
}

// SummarizeTraces is Traces over an arbitrary span set — callers holding
// several machines' tracers concatenate their Spans() to get cluster-wide
// trace views.
func SummarizeTraces(spans []Span, minDur time.Duration, limit int) []TraceSummary {
	byTrace := map[uint64]*TraceSummary{}
	var order []uint64
	for _, s := range spans {
		ts, ok := byTrace[s.Trace]
		if !ok {
			ts = &TraceSummary{Trace: s.Trace}
			byTrace[s.Trace] = ts
			order = append(order, s.Trace)
		}
		ts.Spans = append(ts.Spans, s)
		if s.Parent == 0 || (ts.RootName == "" && s.DurNs > ts.RootDurNs) {
			ts.RootDurNs = s.DurNs
			if s.Parent == 0 {
				ts.RootName = s.Name
			}
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for _, id := range order {
		ts := byTrace[id]
		if time.Duration(ts.RootDurNs) >= minDur {
			out = append(out, *ts)
		}
	}
	// Slowest first; insertion sort keeps this dependency-free and the sets
	// are small (bounded by the ring).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RootDurNs > out[j-1].RootDurNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
