package obs

import (
	"runtime"

	"pprengine/internal/metrics"
)

// counterOf adapts an engine metrics.Counter to a scrape-time read.
func counterOf(c *metrics.Counter) func() float64 {
	return func() float64 { return float64(c.Load()) }
}

// RegisterEngineMetrics bridges the engine's global counters
// (internal/metrics) into r: query lifecycle, cache, aggregation, wire
// traffic, and HA failover/breaker counters. Values are read at scrape
// time, so the hot paths keep their existing single-atomic-increment cost.
func RegisterEngineMetrics(r *Registry) {
	r.CounterFunc("ppr_query_timeouts_total", "Queries aborted by a deadline or cancellation.", nil, counterOf(&metrics.QueryTimeouts))
	r.CounterFunc("ppr_rpc_retries_total", "Backoff rounds taken by rpc.Client.CallRetry.", nil, counterOf(&metrics.RPCRetries))

	r.CounterFunc("ppr_cache_hits_total", "Remote rows served from the dynamic neighbor-row cache.", nil, counterOf(&metrics.CacheHits))
	r.CounterFunc("ppr_cache_misses_total", "Rows that started a fetch (single-flight leaders).", nil, counterOf(&metrics.CacheMisses))
	r.CounterFunc("ppr_cache_coalesced_total", "Rows that piggybacked on an in-flight fetch.", nil, counterOf(&metrics.CacheCoalesced))
	r.CounterFunc("ppr_cache_evictions_total", "Rows evicted to stay under the cache byte budget.", nil, counterOf(&metrics.CacheEvictions))
	r.GaugeFunc("ppr_cache_bytes", "Resident bytes across the process's neighbor-row caches.", nil,
		func() float64 { return float64(metrics.CacheBytes.Load()) })
	r.GaugeFunc("ppr_cache_entries", "Resident rows across the process's neighbor-row caches.", nil,
		func() float64 { return float64(metrics.CacheEntries.Load()) })

	r.CounterFunc("ppr_agg_flushes_total", "Merged wire requests sent by the cross-query fetch aggregator.", nil, counterOf(&metrics.AggFlushes))
	r.CounterFunc("ppr_agg_rows_total", "Neighbor rows carried by aggregated flushes.", nil, counterOf(&metrics.AggRows))
	r.CounterFunc("ppr_agg_shared_total", "Fetches whose flush also carried another query's fetch.", nil, counterOf(&metrics.AggShared))

	r.CounterFunc("ppr_feat_cache_hits_total", "Feature rows served from the feature-row cache.", nil, counterOf(&metrics.FeatCacheHits))
	r.CounterFunc("ppr_feat_cache_misses_total", "Feature rows that started a fetch (single-flight leaders).", nil, counterOf(&metrics.FeatCacheMisses))
	r.CounterFunc("ppr_feat_cache_coalesced_total", "Feature rows that piggybacked on an in-flight fetch.", nil, counterOf(&metrics.FeatCacheCoalesced))
	r.CounterFunc("ppr_feat_cache_evictions_total", "Feature rows evicted to stay under the cache byte budget.", nil, counterOf(&metrics.FeatCacheEvictions))
	r.CounterFunc("ppr_feat_cache_rejected_total", "Fetched feature rows declined by the mass-admission policy.", nil, counterOf(&metrics.FeatCacheRejected))
	r.GaugeFunc("ppr_feat_cache_bytes", "Resident bytes across the process's feature-row caches.", nil,
		func() float64 { return float64(metrics.FeatCacheBytes.Load()) })
	r.GaugeFunc("ppr_feat_cache_entries", "Resident rows across the process's feature-row caches.", nil,
		func() float64 { return float64(metrics.FeatCacheEntries.Load()) })

	r.CounterFunc("ppr_feat_agg_flushes_total", "Merged wire requests sent by the feature-fetch aggregator.", nil, counterOf(&metrics.FeatAggFlushes))
	r.CounterFunc("ppr_feat_agg_rows_total", "Feature rows carried by aggregated flushes.", nil, counterOf(&metrics.FeatAggRows))
	r.CounterFunc("ppr_feat_agg_shared_total", "Feature fetches whose flush also carried another query's fetch.", nil, counterOf(&metrics.FeatAggShared))

	r.CounterFunc("ppr_infer_served_total", "GNN inferences served end to end.", nil, counterOf(&metrics.InferServed))
	r.CounterFunc("ppr_infer_failures_total", "GNN inferences that failed.", nil, counterOf(&metrics.InferFailures))

	r.CounterFunc("ppr_mem_pool_hits_total", "Frame-buffer checkouts served by recycling a released buffer.", nil, counterOf(&metrics.PoolHits))
	r.CounterFunc("ppr_mem_pool_misses_total", "Frame-buffer checkouts that had to allocate.", nil, counterOf(&metrics.PoolMisses))
	r.GaugeFunc("ppr_mem_pool_live_bytes", "Bytes currently checked out of the frame-buffer pools.", nil,
		func() float64 { return float64(metrics.PoolLiveBytes.Load()) })
	r.CounterFunc("ppr_mem_arena_slab_bytes_total", "Bytes committed to decode-arena slabs.", nil, counterOf(&metrics.ArenaSlabBytes))

	r.CounterFunc("ppr_pmap_grows_total", "Flat probe-table stripe rehashes in the affinity engine.", nil, counterOf(&metrics.PmapGrows))
	r.CounterFunc("ppr_pmap_owned_updates_total", "Neighbor updates applied lock-free through owner-compute pushes.", nil, counterOf(&metrics.PmapOwnedUpdates))
	r.CounterFunc("ppr_pmap_affinity_rounds_total", "Push rounds executed by the shard-affinity worker pools.", nil, counterOf(&metrics.PmapAffinityRounds))

	r.CounterFunc("ppr_wire_requests_total", "Client-side RPC requests sent.", nil, counterOf(&metrics.WireRequests))
	r.CounterFunc("ppr_wire_bytes_sent_total", "Client-side request payload bytes sent.", nil, counterOf(&metrics.WireBytesSent))
	r.CounterFunc("ppr_wire_bytes_received_total", "Client-side response payload bytes received.", nil, counterOf(&metrics.WireBytesReceived))

	r.CounterFunc("ppr_admit_admitted_total", "Queries granted an execution slot by the admission controller.", nil, counterOf(&metrics.QueriesAdmitted))
	r.CounterFunc("ppr_admit_shed_total", "Queries shed by the admission controller, by reason.", Labels{"reason": "quota"}, counterOf(&metrics.QueriesShedQuota))
	r.CounterFunc("ppr_admit_shed_total", "Queries shed by the admission controller, by reason.", Labels{"reason": "deadline"}, counterOf(&metrics.QueriesShedDeadline))
	r.CounterFunc("ppr_admit_shed_total", "Queries shed by the admission controller, by reason.", Labels{"reason": "queue"}, counterOf(&metrics.QueriesShedQueue))
	r.GaugeFunc("ppr_admit_queue_depth", "Queries waiting in the admission queue.", nil,
		func() float64 { return float64(metrics.AdmitQueueDepth.Load()) })
	r.GaugeFunc("ppr_admit_inflight", "Queries currently holding an admission slot.", nil,
		func() float64 { return float64(metrics.AdmitInFlight.Load()) })

	r.CounterFunc("ppr_hedges_total", "Duplicate remote-fetch attempts issued after the primary outlived the hedge delay.", nil, counterOf(&metrics.Hedges))
	r.CounterFunc("ppr_hedge_wins_total", "Hedged attempts that produced the winning response.", nil, counterOf(&metrics.HedgeWins))

	r.CounterFunc("ppr_failovers_total", "Routed requests re-issued to a replica after the preferred endpoint failed.", nil, counterOf(&metrics.Failovers))
	r.CounterFunc("ppr_breaker_opens_total", "Peer circuit-breaker transitions into the open state.", nil, counterOf(&metrics.BreakerOpens))
	r.CounterFunc("ppr_breaker_closes_total", "Peer circuit-breaker transitions back to closed.", nil, counterOf(&metrics.BreakerCloses))
	r.CounterFunc("ppr_probes_sent_total", "Health pings issued by the per-machine health trackers.", nil, counterOf(&metrics.ProbesSent))
	r.CounterFunc("ppr_probe_failures_total", "Health pings that failed.", nil, counterOf(&metrics.ProbeFailures))
	r.GaugeFunc("ppr_probe_latency_seconds", "Most recent successful probe round trip.", nil,
		func() float64 { return float64(metrics.ProbeLatencyNs.Load()) / 1e9 })
}

// RegisterPhaseMetrics exposes an accumulated per-phase breakdown (the
// paper's Table 3 dimensions) as one counter pair per phase: cumulative
// seconds and sample counts, labeled by phase.
func RegisterPhaseMetrics(r *Registry, ab *metrics.AtomicBreakdown) {
	for _, p := range metrics.Phases() {
		p := p
		labels := Labels{"phase": p.String()}
		r.CounterFunc("ppr_phase_seconds_total", "Cumulative wall time per query phase.", labels,
			func() float64 { return ab.Get(p).Seconds() })
		r.CounterFunc("ppr_phase_ops_total", "Timed operations per query phase.", labels,
			func() float64 { return float64(ab.Count(p)) })
	}
}

// RegisterGoMetrics exposes basic process health: goroutine count and heap
// occupancy. ReadMemStats runs at scrape time only.
func RegisterGoMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
