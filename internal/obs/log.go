package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger the ppr* commands share behind
// -log-level and -log-format. level is one of debug|info|warn|error,
// format one of text|json.
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}
