package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// then one sample line per series, histograms expanded into cumulative
// le-bucketed samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family list under the lock; instrument reads are atomic
	// and fn adapters must run outside it (they may take other locks).
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.counter.Value()))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative bucket series, _sum and _count for one
// histogram series. The le label is appended to the series' own labels.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", formatValue(bound)), cum)
	}
	// The +Inf bucket equals the total count by construction; emit the total
	// rather than cum+inf so a scrape racing Observe stays internally
	// consistent (count is incremented last).
	total := h.count.Load()
	if c := cum + h.inf.Load(); c > total {
		total = c
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, total)
}

// withLabel appends one extra label to an already-rendered label block.
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// formatValue renders a sample value the way Prometheus expects: shortest
// representation that round-trips, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
