package obs

import (
	"bufio"
	"flag"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the registry the golden file encodes: every
// instrument kind, a labeled family, escaping edge cases, and a scrape-time
// adapter.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ppr_test_requests_total", "Requests handled.", nil).Add(3)
	r.Counter("ppr_test_ops_total", "Ops by phase.", Labels{"phase": "pop", "shard": "2"}).Add(2)
	r.Counter("ppr_test_ops_total", "Ops by phase.", Labels{"shard": "2", "phase": "push"}).Add(5)
	r.Gauge("ppr_test_queue_depth", "Current queue depth.", nil).Set(7.5)
	r.Counter("ppr_test_escape_total", "Help with \\ backslash and\nnewline.", Labels{"path": "a\\b\"c\n"}).Inc()
	h := r.Histogram("ppr_test_latency_seconds", "Query latency.", nil, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	r.CounterFunc("ppr_test_adapter_total", "Scrape-time adapter.", nil, func() float64 { return 42 })
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	const path = "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden (-want +got):\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestLabelDedup verifies equal label sets identify the same series
// regardless of map iteration order, and distinct sets stay distinct.
func TestLabelDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Labels{"a": "1", "b": "2"})
	b := r.Counter("x_total", "x", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Fatal("equal label sets produced distinct series")
	}
	c := r.Counter("x_total", "x", Labels{"a": "1", "b": "3"})
	if a == c {
		t.Fatal("distinct label sets shared a series")
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("m_total", "m", nil)
	c.Add(5)
	c.Add(-3) // ignored
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %v, want 6", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "d", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "d", nil)
}

// TestHistogramInvariants renders a randomly-filled histogram and checks the
// text-format invariants: cumulative buckets are monotone non-decreasing,
// the +Inf bucket equals _count, and _sum matches the observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_seconds", "inv", nil, []float64{0.25, 0.5, 1, 2})
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 1000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 4 // spills past the last bound ~half the time
		sum += v
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var buckets []int64
	var infVal, countVal int64 = -1, -1
	var sumVal float64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		switch {
		case strings.HasPrefix(name, "inv_seconds_bucket"):
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			buckets = append(buckets, v)
			if strings.Contains(name, `le="+Inf"`) {
				infVal = v
			}
		case name == "inv_seconds_sum":
			sumVal, _ = strconv.ParseFloat(val, 64)
		case name == "inv_seconds_count":
			countVal, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if len(buckets) != 5 {
		t.Fatalf("got %d bucket lines, want 5 (4 bounds + +Inf)", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("cumulative buckets not monotone: %v", buckets)
		}
	}
	if infVal != countVal || countVal != n {
		t.Fatalf("+Inf bucket %d, _count %d, want both %d", infVal, countVal, n)
	}
	if diff := sumVal - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("_sum = %v, want %v", sumVal, sum)
	}
}

func TestEngineAdaptersRender(t *testing.T) {
	r := NewRegistry()
	RegisterEngineMetrics(r)
	RegisterGoMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ppr_cache_hits_total", "ppr_agg_flushes_total", "ppr_wire_requests_total",
		"ppr_failovers_total", "ppr_breaker_opens_total", "go_goroutines",
	} {
		if !strings.Contains(out, "\n"+want+" ") && !strings.Contains(out, "\n"+want+"{") {
			t.Errorf("exposition missing %s", want)
		}
	}
}
