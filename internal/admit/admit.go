// Package admit is the query-admission frontend of the engine: it decides,
// before any pop/push work happens, whether a query runs now, waits, or is
// shed. Serving-scale deployments die past saturation not because queries
// get slow but because EVERY query gets slow — each one burns CPU and RPC
// budget only to time out late. The controller here turns that cliff into a
// slope:
//
//   - per-tenant token buckets bound any one tenant's query rate,
//   - a per-machine cap bounds in-flight queries (the machine's real
//     parallelism), with a bounded priority queue absorbing bursts,
//   - deadline-aware shedding rejects queries whose remaining context budget
//     cannot cover the observed p50 service time — a typed ShedError in
//     microseconds instead of a DeadlineExceeded after the full deadline.
//
// The package also provides the Hedger (hedge.go): latency-percentile-driven
// duplicate remote fetches over the replication layer's replica set.
//
// Ownership and cancellation rules are documented in DESIGN.md §5k.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/metrics"
)

// Shed reasons carried by ShedError.Reason.
const (
	// ReasonQuota: the tenant's token bucket is empty.
	ReasonQuota = "quota"
	// ReasonDeadline: the query's remaining deadline budget cannot cover the
	// observed p50 service time — it would time out late; fail it early.
	ReasonDeadline = "deadline"
	// ReasonQueue: the wait queue is full and the query did not outrank any
	// queued waiter.
	ReasonQueue = "queue"
)

// ErrShed is the sentinel every admission rejection matches via errors.Is,
// whatever the reason. The concrete error is always a *ShedError.
var ErrShed = errors.New("admit: query shed")

// shedMarker prefixes every ShedError's message. Remote handler errors cross
// the rpc layer as strings, so the marker (plus the parseable key=value tail)
// is the wire format of a shed — FromRemote maps it back to a typed error on
// the client side, the same pattern as core's ErrNoFeatureStore remap.
const shedMarker = "admit: shed"

// ShedError is a typed admission rejection. It satisfies
// errors.Is(err, ErrShed).
type ShedError struct {
	// Tenant is the rejected query's tenant ID ("" when untenanted).
	Tenant string
	// Reason is one of ReasonQuota, ReasonDeadline, ReasonQueue.
	Reason string
	// QueueDepth is the wait-queue depth at rejection time.
	QueueDepth int
	// RetryAfter is the controller's hint for when a retry could succeed:
	// time to the next token (quota), or the estimated queue drain time
	// (queue). Zero for deadline sheds — retrying with the same budget fails
	// identically.
	RetryAfter time.Duration
}

// Error renders the shed in its parseable wire form.
func (e *ShedError) Error() string {
	return fmt.Sprintf("%s tenant=%q reason=%s depth=%d retry_after_ms=%d",
		shedMarker, e.Tenant, e.Reason, e.QueueDepth, e.RetryAfter.Milliseconds())
}

// Is makes every ShedError match the ErrShed sentinel.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// FromRemote maps an error that crossed the rpc layer as a string back to a
// typed *ShedError when its message carries the shed marker. Any other error
// (including nil) is returned unchanged.
func FromRemote(err error) error {
	if err == nil {
		return nil
	}
	var se *ShedError
	if errors.As(err, &se) {
		return err
	}
	msg := err.Error()
	i := strings.Index(msg, shedMarker)
	if i < 0 {
		return err
	}
	parsed := &ShedError{}
	var retryMs int64
	if _, serr := fmt.Sscanf(msg[i+len(shedMarker):], " tenant=%q reason=%s depth=%d retry_after_ms=%d",
		&parsed.Tenant, &parsed.Reason, &parsed.QueueDepth, &retryMs); serr != nil {
		return err
	}
	parsed.RetryAfter = time.Duration(retryMs) * time.Millisecond
	return parsed
}

// Clock abstracts time for the controller so tests can drive bucket refill
// and latency accounting deterministically.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Options configures a Controller. MaxInFlight must be positive; everything
// else has working defaults.
type Options struct {
	// MaxInFlight caps concurrently executing queries on this machine.
	MaxInFlight int
	// MaxQueue bounds the wait queue; a query arriving at a full queue is
	// shed (or evicts a strictly lower-priority waiter). <= 0 means 64.
	MaxQueue int
	// TenantRate is each tenant's sustained query rate in queries/second.
	// <= 0 disables per-tenant quotas.
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity (burst size). <= 0 means
	// max(TenantRate, 1).
	TenantBurst float64
	// MinSamples is the number of completed queries required before the
	// deadline-feasibility check engages (no shedding on a cold estimate).
	// <= 0 means 8.
	MinSamples int
	// Clock supplies time; nil means the real clock.
	Clock Clock
	// OnLatency, when set, receives every admitted query's service time —
	// the hook serving binaries use for per-tenant latency histograms. Called
	// outside the controller lock.
	OnLatency func(tenant string, seconds float64)
}

func (o Options) maxQueue() int {
	if o.MaxQueue <= 0 {
		return 64
	}
	return o.MaxQueue
}

func (o Options) tenantBurst() float64 {
	if o.TenantBurst > 0 {
		return o.TenantBurst
	}
	if o.TenantRate > 1 {
		return o.TenantRate
	}
	return 1
}

func (o Options) minSamples() int {
	if o.MinSamples <= 0 {
		return 8
	}
	return o.MinSamples
}

// Request identifies one query to the admission controller.
type Request struct {
	// Tenant is the quota bucket the query draws from ("" is a valid shared
	// bucket for untenanted traffic).
	Tenant string
	// Priority orders the wait queue: higher runs first, and an arriving
	// higher-priority query evicts a lower-priority waiter from a full
	// queue. FIFO within a priority band.
	Priority int
}

// bucket is one tenant's token bucket, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// waiter is one queued Acquire. grant delivery and shed delivery both go
// through ch (buffered, one message ever); removal from the queue and sends
// on ch happen only under the controller lock, so exactly one message is
// sent per waiter.
type waiter struct {
	tenant   string
	priority int
	seq      uint64
	deadline time.Time // zero when the query's ctx has no deadline
	ch       chan error
}

// latWindow is the service-time sample window backing the p50 estimate.
const latWindow = 256

// Controller is one machine's admission frontend, shared by every compute
// process of the machine (like the cache and the aggregators).
type Controller struct {
	opts  Options
	clock Clock

	mu       sync.Mutex
	inFlight int
	queue    []*waiter
	buckets  map[string]*bucket
	seq      uint64

	// Service-time ring for the p50 estimate (seconds). Only successful
	// queries record — a shed or timed-out query's duration says nothing
	// about healthy service time.
	samples []float64
	sampIdx int

	admitted     atomic.Int64
	shedQuota    atomic.Int64
	shedDeadline atomic.Int64
	shedQueue    atomic.Int64

	// onLatency holds the Options.OnLatency hook (type func(string, float64)),
	// replaceable after construction via SetLatencyHook.
	onLatency atomic.Value

	// epochPin/epochUnpin hold the delta store's epoch hooks (SetEpochSource):
	// every grant pins the machine's current mutation epoch at admission time,
	// and releasing the grant releases the pin. Type func() uint64 and
	// func(uint64); both atomic.Values so traffic can race installation.
	epochPin   atomic.Value
	epochUnpin atomic.Value
}

// NewController builds a controller. MaxInFlight <= 0 is normalized to 1.
func NewController(opts Options) *Controller {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 1
	}
	clock := opts.Clock
	if clock == nil {
		clock = realClock{}
	}
	c := &Controller{
		opts:    opts,
		clock:   clock,
		buckets: make(map[string]*bucket),
		samples: make([]float64, 0, latWindow),
	}
	if opts.OnLatency != nil {
		c.onLatency.Store(opts.OnLatency)
	}
	return c
}

// SetLatencyHook installs (or replaces) the OnLatency hook after
// construction — serving binaries attach their per-tenant latency histograms
// here once a metrics registry exists. Safe to call concurrently with
// traffic.
func (c *Controller) SetLatencyHook(fn func(tenant string, seconds float64)) {
	c.onLatency.Store(fn)
}

// SetEpochSource installs the mutation-epoch hooks (the delta store's
// PinCurrent/Unpin pair): once set, every admitted query's Grant carries the
// epoch that was current — and pinned — at admission time, so the whole query
// reads one consistent graph view and compaction cannot retire it mid-query.
// The pin is released when the grant is. Safe to call concurrently with
// traffic; a controller without a source stamps epoch 0 (the static base).
func (c *Controller) SetEpochSource(pin func() uint64, unpin func(uint64)) {
	c.epochPin.Store(pin)
	c.epochUnpin.Store(unpin)
}

// stampEpoch pins the current epoch onto g. Called exactly once per grant, on
// the admitted caller's goroutine — never for queued waiters that lose their
// grant to a cancellation race, so no pin leaks.
func (c *Controller) stampEpoch(g *Grant) *Grant {
	if pin, _ := c.epochPin.Load().(func() uint64); pin != nil {
		g.Epoch = pin()
	}
	return g
}

// Grant is one admitted query's slot. Release it exactly once when the query
// finishes (ok = it completed without error), which frees the slot for the
// next waiter and, when ok, records the service time into the p50 estimate.
type Grant struct {
	c      *Controller
	tenant string
	start  time.Time
	done   atomic.Bool

	// Epoch is the mutation epoch pinned for this query at admission time
	// (0 when the machine has no epoch source — the static base graph). The
	// driver reads every fetch at this epoch; the pin is released with the
	// grant.
	Epoch uint64
}

// Release returns the grant's slot. Idempotent.
func (g *Grant) Release(ok bool) {
	if g == nil || !g.done.CompareAndSwap(false, true) {
		return
	}
	if unpin, _ := g.c.epochUnpin.Load().(func(uint64)); unpin != nil && g.Epoch > 0 {
		unpin(g.Epoch)
	}
	dur := g.c.clock.Now().Sub(g.start)
	g.c.release(ok, dur)
	if fn, _ := g.c.onLatency.Load().(func(string, float64)); ok && fn != nil {
		fn(g.tenant, dur.Seconds())
	}
}

// Acquire admits, queues, or sheds one query. On admission it returns a
// Grant the caller must Release. On a shed it returns a *ShedError
// (errors.Is(err, ErrShed)); on caller cancellation while queued it returns
// ctx's error. The queue is priority-ordered (FIFO within a band) and every
// grant re-checks the waiter's deadline feasibility — queue time eats
// deadline budget.
func (c *Controller) Acquire(ctx context.Context, req Request) (*Grant, error) {
	now := c.clock.Now()
	var deadline time.Time
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}
	c.mu.Lock()
	// Deadline feasibility before anything else: an infeasible query must
	// not consume a token (it will be retried with a fresh deadline, and the
	// bucket should not have been charged for work never started).
	if !deadline.IsZero() {
		if need := c.expectedLocked(); need > 0 && deadline.Sub(now) < need {
			err := c.shedLocked(req.Tenant, ReasonDeadline, 0)
			c.mu.Unlock()
			return nil, err
		}
	}
	if c.opts.TenantRate > 0 {
		b := c.bucketLocked(req.Tenant, now)
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / c.opts.TenantRate * float64(time.Second))
			err := c.shedLocked(req.Tenant, ReasonQuota, wait)
			c.mu.Unlock()
			return nil, err
		}
		b.tokens--
	}
	if c.inFlight < c.opts.MaxInFlight {
		g := c.grantLocked(req.Tenant, now)
		c.mu.Unlock()
		return c.stampEpoch(g), nil
	}
	// Saturated: queue, evict, or shed.
	if len(c.queue) >= c.opts.maxQueue() {
		v := c.victimLocked(req.Priority)
		if v == nil {
			err := c.shedLocked(req.Tenant, ReasonQueue, c.drainEstimateLocked())
			c.mu.Unlock()
			return nil, err
		}
		// The incoming query outranks v: v is shed in its place.
		c.removeLocked(v)
		v.ch <- c.shedLocked(v.tenant, ReasonQueue, c.drainEstimateLocked())
	}
	w := &waiter{tenant: req.Tenant, priority: req.Priority, seq: c.seq, deadline: deadline, ch: make(chan error, 1)}
	c.seq++
	c.queue = append(c.queue, w)
	metrics.AdmitQueueDepth.Set(int64(len(c.queue)))
	c.mu.Unlock()

	select {
	case err := <-w.ch:
		if err != nil {
			return nil, err
		}
		return c.stampEpoch(&Grant{c: c, tenant: req.Tenant, start: c.clock.Now()}), nil
	case <-ctx.Done():
		c.mu.Lock()
		removed := c.removeLocked(w)
		if removed {
			metrics.AdmitQueueDepth.Set(int64(len(c.queue)))
		}
		c.mu.Unlock()
		if !removed {
			// Lost the race: a grant or shed was already delivered. A granted
			// slot the caller cannot use goes straight back.
			if err := <-w.ch; err == nil {
				c.release(false, 0)
			}
		}
		return nil, ctx.Err()
	}
}

// grantLocked takes one in-flight slot.
func (c *Controller) grantLocked(tenant string, now time.Time) *Grant {
	c.inFlight++
	c.admitted.Add(1)
	metrics.QueriesAdmitted.Inc(1)
	metrics.AdmitInFlight.Set(int64(c.inFlight))
	return &Grant{c: c, tenant: tenant, start: now}
}

// shedLocked counts one shed and builds its typed error.
func (c *Controller) shedLocked(tenant, reason string, retryAfter time.Duration) error {
	switch reason {
	case ReasonQuota:
		c.shedQuota.Add(1)
		metrics.QueriesShedQuota.Inc(1)
	case ReasonDeadline:
		c.shedDeadline.Add(1)
		metrics.QueriesShedDeadline.Inc(1)
	default:
		c.shedQueue.Add(1)
		metrics.QueriesShedQueue.Inc(1)
	}
	return &ShedError{Tenant: tenant, Reason: reason, QueueDepth: len(c.queue), RetryAfter: retryAfter}
}

// bucketLocked returns tenant's bucket refilled to now.
func (c *Controller) bucketLocked(tenant string, now time.Time) *bucket {
	b := c.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: c.opts.tenantBurst(), last: now}
		c.buckets[tenant] = b
		return b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * c.opts.TenantRate
		if burst := c.opts.tenantBurst(); b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	return b
}

// expectedLocked estimates the latency a query admitted now would see: the
// p50 service time, plus the queue's drain time when the query would have to
// wait. Zero before the estimate warms up (MinSamples completions).
func (c *Controller) expectedLocked() time.Duration {
	p50 := c.p50Locked()
	if p50 <= 0 {
		return 0
	}
	need := p50
	if c.inFlight >= c.opts.MaxInFlight {
		// Every queued waiter ahead of us (plus us) drains at cap-parallel
		// p50 pace.
		need += time.Duration(float64(len(c.queue)+1) / float64(c.opts.MaxInFlight) * float64(p50))
	}
	return need
}

// drainEstimateLocked is the retry-after hint for queue sheds: roughly when
// the current queue will have drained.
func (c *Controller) drainEstimateLocked() time.Duration {
	p50 := c.p50Locked()
	if p50 <= 0 {
		p50 = 10 * time.Millisecond // cold default: something non-zero to back off on
	}
	n := len(c.queue) + 1
	return time.Duration(float64(n) / float64(c.opts.MaxInFlight) * float64(p50))
}

// p50Locked returns the median observed service time, 0 before warm-up.
func (c *Controller) p50Locked() time.Duration {
	if len(c.samples) < c.opts.minSamples() {
		return 0
	}
	sorted := append(make([]float64, 0, len(c.samples)), c.samples...)
	sort.Float64s(sorted)
	return time.Duration(sorted[len(sorted)/2] * float64(time.Second))
}

// victimLocked finds the waiter an incoming query of priority p may evict:
// the lowest-priority, youngest waiter, and only when strictly outranked.
func (c *Controller) victimLocked(p int) *waiter {
	var v *waiter
	for _, w := range c.queue {
		if v == nil || w.priority < v.priority || (w.priority == v.priority && w.seq > v.seq) {
			v = w
		}
	}
	if v == nil || v.priority >= p {
		return nil
	}
	return v
}

// removeLocked deletes w from the queue, reporting whether it was present.
func (c *Controller) removeLocked(w *waiter) bool {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// release frees one slot, records the service time, and dispatches waiters.
func (c *Controller) release(ok bool, dur time.Duration) {
	c.mu.Lock()
	c.inFlight--
	if ok {
		if len(c.samples) < latWindow {
			c.samples = append(c.samples, dur.Seconds())
		} else {
			c.samples[c.sampIdx] = dur.Seconds()
			c.sampIdx = (c.sampIdx + 1) % latWindow
		}
	}
	c.dispatchLocked()
	metrics.AdmitInFlight.Set(int64(c.inFlight))
	metrics.AdmitQueueDepth.Set(int64(len(c.queue)))
	c.mu.Unlock()
}

// dispatchLocked grants freed slots to the best waiters: highest priority,
// FIFO within a band. A waiter whose remaining deadline budget no longer
// covers the p50 service time is shed instead of granted — its queue time
// ate the budget.
func (c *Controller) dispatchLocked() {
	now := c.clock.Now()
	for c.inFlight < c.opts.MaxInFlight && len(c.queue) > 0 {
		best := 0
		for i, w := range c.queue {
			b := c.queue[best]
			if w.priority > b.priority || (w.priority == b.priority && w.seq < b.seq) {
				best = i
			}
		}
		w := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		if !w.deadline.IsZero() {
			if p50 := c.p50Locked(); p50 > 0 && w.deadline.Sub(now) < p50 {
				w.ch <- c.shedLocked(w.tenant, ReasonDeadline, 0)
				continue
			}
		}
		c.inFlight++
		c.admitted.Add(1)
		metrics.QueriesAdmitted.Inc(1)
		w.ch <- nil
	}
}

// TenantState is one tenant's bucket level in a Snapshot.
type TenantState struct {
	Tenant string  `json:"tenant"`
	Tokens float64 `json:"tokens"`
	Burst  float64 `json:"burst"`
}

// Snapshot is a point-in-time view of the controller, served by
// /debug/admit and summed by cluster.AdmitStats.
type Snapshot struct {
	InFlight     int           `json:"in_flight"`
	MaxInFlight  int           `json:"max_in_flight"`
	QueueDepth   int           `json:"queue_depth"`
	MaxQueue     int           `json:"max_queue"`
	P50          time.Duration `json:"p50_ns"`
	Admitted     int64         `json:"admitted"`
	ShedQuota    int64         `json:"shed_quota"`
	ShedDeadline int64         `json:"shed_deadline"`
	ShedQueue    int64         `json:"shed_queue"`
	Tenants      []TenantState `json:"tenants,omitempty"`
}

// Shed returns the total sheds across all reasons.
func (s Snapshot) Shed() int64 { return s.ShedQuota + s.ShedDeadline + s.ShedQueue }

// Add accumulates other's counters and occupancy into s (for cluster-wide
// rollups). Per-tenant bucket levels merge by summing tokens and burst: the
// rolled-up row reads as the tenant's total available budget across all
// controllers.
func (s *Snapshot) Add(other Snapshot) {
	s.InFlight += other.InFlight
	s.MaxInFlight += other.MaxInFlight
	s.QueueDepth += other.QueueDepth
	s.MaxQueue += other.MaxQueue
	s.Admitted += other.Admitted
	s.ShedQuota += other.ShedQuota
	s.ShedDeadline += other.ShedDeadline
	s.ShedQueue += other.ShedQueue
	for _, ot := range other.Tenants {
		merged := false
		for i := range s.Tenants {
			if s.Tenants[i].Tenant == ot.Tenant {
				s.Tenants[i].Tokens += ot.Tokens
				s.Tenants[i].Burst += ot.Burst
				merged = true
				break
			}
		}
		if !merged {
			s.Tenants = append(s.Tenants, ot)
		}
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
}

// Snapshot returns the controller's current state. Bucket levels are
// refilled to now, so an idle tenant shows a full bucket. A nil controller
// reports zeros.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		InFlight:     c.inFlight,
		MaxInFlight:  c.opts.MaxInFlight,
		QueueDepth:   len(c.queue),
		MaxQueue:     c.opts.maxQueue(),
		P50:          c.p50Locked(),
		Admitted:     c.admitted.Load(),
		ShedQuota:    c.shedQuota.Load(),
		ShedDeadline: c.shedDeadline.Load(),
		ShedQueue:    c.shedQueue.Load(),
	}
	for t := range c.buckets {
		b := c.bucketLocked(t, now)
		s.Tenants = append(s.Tenants, TenantState{Tenant: t, Tokens: b.tokens, Burst: c.opts.tenantBurst()})
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	return s
}

// ReadyCheck is the /readyz check: it fails (→ 503 "overloaded") while the
// wait queue is saturated. A nil controller is always ready.
func (c *Controller) ReadyCheck() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	depth, max := len(c.queue), c.opts.maxQueue()
	c.mu.Unlock()
	if depth >= max {
		return fmt.Errorf("admit: overloaded (queue %d/%d)", depth, max)
	}
	return nil
}
