package admit

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pprengine/internal/ha"
	"pprengine/internal/metrics"
	"pprengine/internal/obs"
	"pprengine/internal/rpc"
)

// Hedger issues hedged remote fetches over the replication layer's replica
// set: a request goes to the shard's primary, and if the primary has not
// answered within a latency-percentile-derived hedge delay, the SAME request
// is issued to a healthy replica. First response wins; the loser's attempt
// is cancelled and its (late) response buffer released. Because every
// replica serves the same immutable shard, the two responses are
// bit-identical — hedging changes tail latency, never results.
//
// Interaction rules with the failover layer (satellite of DESIGN.md §5k):
//
//   - A hedge goes only to a replica whose breaker ALLOWS traffic; an open
//     breaker is never hedged into.
//   - A hedge win is counted in HedgeWins, NOT as a failover: the primary
//     did not fail, it was merely slow. ReplicaRouter.Stats().Failovers
//     stays untouched by wins.
//   - When the primary's breaker is already open, or the shard has no
//     replicas, the call degrades to the router's normal failover loop with
//     its normal accounting.
//   - A primary hard error (not just slowness) falls back to the router's
//     failover loop too — unless a hedge is already in flight, in which case
//     the hedge's response is used if it succeeds.
//
// Wire accounting: a hedged request is real wire traffic (NetStats sees it),
// but the per-query RPCRequests attribution charges the fetch once — the
// duplicate is infrastructure overhead, not query demand. When the cluster
// is healthy the hedge delay sits above the primary's p99, so hedges are
// rare and request counts do not inflate.
type Hedger struct {
	r    *ha.ReplicaRouter
	opts HedgeOptions

	mu  sync.Mutex
	lat map[int32][]float64 // per-shard ring of primary latencies (seconds)
	idx map[int32]int

	hedges atomic.Int64
	wins   atomic.Int64
}

// HedgeOptions configures a Hedger. The zero value gets adaptive delays
// with the defaults below.
type HedgeOptions struct {
	// Delay, when > 0, is a fixed hedge delay. 0 derives the delay from the
	// observed primary latency distribution: p95 of recent successful
	// primary responses, clamped to [MinDelay, MaxDelay].
	Delay time.Duration
	// MinDelay / MaxDelay clamp the adaptive delay. <= 0 mean 500µs / 100ms.
	// Before the latency window warms up (8 samples) the delay is MaxDelay —
	// never hedge on a cold estimate.
	MinDelay time.Duration
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt. <= 0 means 5s.
	AttemptTimeout time.Duration
	// Tracer records "admit:primary" / "admit:hedge" attempt spans for
	// traced requests. nil disables.
	Tracer *obs.Tracer
}

func (o HedgeOptions) minDelay() time.Duration {
	if o.MinDelay <= 0 {
		return 500 * time.Microsecond
	}
	return o.MinDelay
}

func (o HedgeOptions) maxDelay() time.Duration {
	if o.MaxDelay <= 0 {
		return 100 * time.Millisecond
	}
	return o.MaxDelay
}

func (o HedgeOptions) attemptTimeout() time.Duration {
	if o.AttemptTimeout <= 0 {
		return 5 * time.Second
	}
	return o.AttemptTimeout
}

// hedgeWarmup is the per-shard sample count below which the adaptive delay
// stays at MaxDelay, and hedgeLatWindow the ring size behind the p95.
const (
	hedgeWarmup    = 8
	hedgeLatWindow = 128
)

// NewHedger builds a hedger over the machine's replica router.
func NewHedger(r *ha.ReplicaRouter, opts HedgeOptions) *Hedger {
	return &Hedger{r: r, opts: opts, lat: make(map[int32][]float64), idx: make(map[int32]int)}
}

// Router returns the underlying replica router (the non-hedged path).
func (h *Hedger) Router() *ha.ReplicaRouter { return h.r }

// HedgeStats counts a hedger's activity.
type HedgeStats struct {
	// Hedges is the number of duplicate attempts issued.
	Hedges int64
	// Wins is the number of hedged attempts that produced the winning
	// response.
	Wins int64
}

// Add accumulates other into s.
func (s *HedgeStats) Add(other HedgeStats) {
	s.Hedges += other.Hedges
	s.Wins += other.Wins
}

// Stats returns a snapshot. A nil hedger reports zeros.
func (h *Hedger) Stats() HedgeStats {
	if h == nil {
		return HedgeStats{}
	}
	return HedgeStats{Hedges: h.hedges.Load(), Wins: h.wins.Load()}
}

// Result is the pending response of a hedged (or delegated) call. Its method
// set matches the engine's response-future surface (core's respFuture and
// agg.Response), so a Hedger drops into every transport seam the router fits.
type Result interface {
	Done() <-chan struct{}
	Wait() ([]byte, error)
	WaitCtx(ctx context.Context) ([]byte, error)
	Release()
}

// Future is a hedged call's pending result; the first finished attempt
// resolves it.
type Future struct {
	done     chan struct{}
	res      []byte
	err      error
	rel      func()
	released atomic.Bool
}

// Done returns a channel closed when the winning attempt resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks for the winning attempt's result.
func (f *Future) Wait() ([]byte, error) {
	<-f.done
	return f.res, f.err
}

// WaitCtx is Wait bounded by the waiter's context. Cancellation detaches
// only this waiter — the hedged call keeps running for other waiters.
func (f *Future) WaitCtx(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release recycles the winning response's pooled buffer. Idempotent, no-op
// before resolution.
func (f *Future) Release() {
	select {
	case <-f.done:
	default:
		return
	}
	if f.released.CompareAndSwap(false, true) && f.rel != nil {
		f.rel()
	}
}

// Call issues one hedged request for dstShard.
func (h *Hedger) Call(dstShard int32, m rpc.Method, payload []byte) Result {
	return h.CallTraced(obs.SpanContext{}, dstShard, m, payload)
}

// CallTraced is Call carrying a trace context. When the shard has no
// hedgeable replica — fewer than two allowed endpoints, or the primary's
// breaker is open — the call delegates to the router's failover loop (with
// its normal failover accounting) instead of hedging.
func (h *Hedger) CallTraced(sc obs.SpanContext, dstShard int32, m rpc.Method, payload []byte) Result {
	eps := h.r.Endpoints(dstShard)
	tracker := h.r.Tracker()
	if len(eps) < 2 || !tracker.Allow(eps[0].Key()) {
		return h.r.CallTraced(sc, dstShard, m, payload)
	}
	f := &Future{done: make(chan struct{})}
	go h.run(f, sc, dstShard, eps, m, payload)
	return f
}

// outcome is one attempt's result.
type outcome struct {
	res []byte
	rel func()
	err error
}

// run drives one hedged call: primary attempt immediately, hedge attempt to
// the first breaker-allowed replica once the hedge delay elapses, first
// success wins, loser cancelled and its buffer released.
func (h *Hedger) run(f *Future, sc obs.SpanContext, dstShard int32, eps []*ha.Endpoint, m rpc.Method, payload []byte) {
	defer close(f.done)
	tracker := h.r.Tracker()
	primary := eps[0]
	start := time.Now()

	prCh := make(chan outcome, 1)
	prCtx, prCancel := context.WithCancel(context.Background())
	defer prCancel()
	go func() { prCh <- h.attempt(prCtx, primary, sc, m, payload, "admit:primary") }()

	timer := time.NewTimer(h.hedgeDelay(dstShard))
	defer timer.Stop()
	timerC := timer.C

	var hedCh chan outcome
	var hedCancel context.CancelFunc
	var hedEp *ha.Endpoint

	for {
		select {
		case out := <-prCh:
			prCh = nil
			if out.err == nil {
				h.record(dstShard, time.Since(start))
				tracker.ReportSuccess(primary.Key())
				f.res, f.rel = out.res, out.rel
				if hedCh != nil {
					hedCancel()
					go drain(hedCh)
				}
				return
			}
			if hedgeTransient(out.err) {
				tracker.ReportFailure(primary.Key())
			}
			if hedCh == nil {
				// Primary failed before any hedge launched: this is a plain
				// failover situation — delegate to the router's loop so the
				// failover is attributed (and retried) exactly as without
				// hedging.
				h.delegate(f, sc, dstShard, m, payload)
				return
			}
			// A hedge is already in flight; its response becomes the call's
			// only hope before falling back to the router.
		case out := <-hedCh:
			hedCh = nil
			if out.err == nil {
				tracker.ReportSuccess(hedEp.Key())
				h.wins.Add(1)
				metrics.HedgeWins.Inc(1)
				f.res, f.rel = out.res, out.rel
				if prCh != nil {
					prCancel()
					go drain(prCh)
				}
				return
			}
			if hedgeTransient(out.err) {
				tracker.ReportFailure(hedEp.Key())
			}
			if prCh == nil {
				// Both primary and hedge failed: last resort is the router's
				// full failover loop.
				h.delegate(f, sc, dstShard, m, payload)
				return
			}
			// Hedge lost its race with its own error; keep waiting on the
			// primary.
		case <-timerC:
			timerC = nil
			// Hedge into the first replica whose breaker allows traffic —
			// never into an open breaker.
			for _, ep := range eps[1:] {
				if tracker.Allow(ep.Key()) {
					hedEp = ep
					break
				}
			}
			if hedEp == nil {
				continue // no healthy replica: the primary remains the only hope
			}
			h.hedges.Add(1)
			metrics.Hedges.Inc(1)
			hedCh = make(chan outcome, 1)
			// The deferred cancel releases the context at function exit;
			// hedCancel lets the first-wins paths cancel the loser early.
			// This branch runs at most once, so the in-loop defer is sound.
			hctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			hedCancel = cancel
			go func(ep *ha.Endpoint, ch chan outcome) {
				ch <- h.attempt(hctx, ep, sc, m, payload, "admit:hedge")
			}(hedEp, hedCh)
		}
	}
}

// delegate resolves f through the router's normal failover loop.
func (h *Hedger) delegate(f *Future, sc obs.SpanContext, dstShard int32, m rpc.Method, payload []byte) {
	inner := h.r.CallTraced(sc, dstShard, m, payload)
	f.res, f.err = inner.Wait()
	f.rel = inner.Release
}

// attempt issues the request on ep once, bounded by the attempt timeout and
// cancellable by ctx (the first-wins cancel).
func (h *Hedger) attempt(ctx context.Context, ep *ha.Endpoint, sc obs.SpanContext, m rpc.Method, payload []byte, name string) outcome {
	span := h.opts.Tracer.StartSpan(sc, name)
	span.SetShard(ep.Shard)
	if c := span.Context(); c.Valid() {
		sc = c
	}
	cl, err := ep.Client(ctx)
	if err != nil {
		span.SetErr(true)
		span.End()
		return outcome{err: err}
	}
	actx, cancel := context.WithTimeout(obs.ContextWith(ctx, sc), h.opts.attemptTimeout())
	defer cancel()
	fut := cl.CallCtx(actx, m, payload)
	res, err := fut.WaitCtx(actx)
	span.SetErr(err != nil)
	span.End()
	if err != nil {
		return outcome{err: err}
	}
	return outcome{res: res, rel: fut.Release}
}

// drain releases a cancelled loser's buffer when its attempt eventually
// resolves (the attempt goroutine never blocks — its channel is buffered).
func drain(ch chan outcome) {
	if out := <-ch; out.rel != nil {
		out.rel()
	}
}

// hedgeTransient mirrors the failover layer's health attribution: context
// errors (our own attempt timeout — a blackholed or slow-dead peer) and
// transport errors count against the peer; remote handler errors do not.
func hedgeTransient(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	return rpc.Transient(err)
}

// record adds one successful primary latency to the shard's window.
func (h *Hedger) record(shard int32, d time.Duration) {
	h.mu.Lock()
	ring := h.lat[shard]
	if len(ring) < hedgeLatWindow {
		h.lat[shard] = append(ring, d.Seconds())
	} else {
		i := h.idx[shard]
		ring[i] = d.Seconds()
		h.idx[shard] = (i + 1) % hedgeLatWindow
	}
	h.mu.Unlock()
}

// hedgeDelay derives the hedge delay for shard: the fixed Delay when set,
// otherwise the p95 of recent primary latencies clamped to
// [MinDelay, MaxDelay] — MaxDelay before warm-up, so a cold hedger never
// fires spuriously.
func (h *Hedger) hedgeDelay(shard int32) time.Duration {
	if h.opts.Delay > 0 {
		return h.opts.Delay
	}
	h.mu.Lock()
	ring := h.lat[shard]
	var d time.Duration
	if len(ring) < hedgeWarmup {
		d = h.opts.maxDelay()
	} else {
		sorted := append(make([]float64, 0, len(ring)), ring...)
		sort.Float64s(sorted)
		d = time.Duration(sorted[len(sorted)*95/100] * float64(time.Second))
	}
	h.mu.Unlock()
	if min := h.opts.minDelay(); d < min {
		d = min
	}
	if max := h.opts.maxDelay(); d > max {
		d = max
	}
	return d
}
