package admit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a thread-safe manual clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// warm records n successful completions of dur each so the p50 estimate
// engages.
func warm(t *testing.T, c *Controller, clk *fakeClock, n int, dur time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		g, err := c.Acquire(context.Background(), Request{})
		if err != nil {
			t.Fatalf("warm acquire %d: %v", i, err)
		}
		clk.Advance(dur)
		g.Release(true)
	}
}

func TestBucketRefillDeterministic(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 8, TenantRate: 2, TenantBurst: 2, Clock: clk})
	// Burst of 2 admits, third query is out of tokens.
	for i := 0; i < 2; i++ {
		g, err := c.Acquire(context.Background(), Request{Tenant: "a"})
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		g.Release(true)
	}
	_, err := c.Acquire(context.Background(), Request{Tenant: "a"})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonQuota {
		t.Fatalf("want quota shed, got %v", err)
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("shed error does not match ErrShed: %v", err)
	}
	if se.RetryAfter <= 0 || se.RetryAfter > time.Second {
		t.Fatalf("quota retry-after out of range: %v", se.RetryAfter)
	}
	// At 2 tokens/s, 500ms refills exactly one token: one admit, then shed
	// again. Deterministic because the fake clock is the only time source.
	clk.Advance(500 * time.Millisecond)
	g, err := c.Acquire(context.Background(), Request{Tenant: "a"})
	if err != nil {
		t.Fatalf("post-refill acquire: %v", err)
	}
	g.Release(true)
	if _, err := c.Acquire(context.Background(), Request{Tenant: "a"}); !errors.Is(err, ErrShed) {
		t.Fatalf("second post-refill acquire should shed, got %v", err)
	}
	// Tenants are isolated: b has a full bucket.
	if g, err = c.Acquire(context.Background(), Request{Tenant: "b"}); err != nil {
		t.Fatalf("tenant b acquire: %v", err)
	}
	g.Release(true)
}

func TestDeadlineShed(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 4, Clock: clk})
	warm(t, c, clk, 8, 10*time.Millisecond) // p50 = 10ms
	// 2ms of budget cannot cover a 10ms p50: shed early.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(2*time.Millisecond))
	defer cancel()
	_, err := c.Acquire(ctx, Request{Tenant: "t"})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonDeadline {
		t.Fatalf("want deadline shed, got %v", err)
	}
	if se.RetryAfter != 0 {
		t.Fatalf("deadline shed should not carry a retry-after hint, got %v", se.RetryAfter)
	}
	// A feasible deadline passes.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.Now().Add(time.Second))
	defer cancel2()
	g, err := c.Acquire(ctx2, Request{})
	if err != nil {
		t.Fatalf("feasible acquire: %v", err)
	}
	g.Release(true)
}

func TestQueueShedAndPriorityEviction(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 1, MaxQueue: 1, Clock: clk})
	holder, err := c.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	// Fill the queue with a priority-0 waiter.
	lowDone := make(chan error, 1)
	go func() {
		g, err := c.Acquire(context.Background(), Request{Tenant: "low"})
		if g != nil {
			g.Release(true)
		}
		lowDone <- err
	}()
	waitDepth(t, c, 1)
	// Same priority at a full queue: the incoming query is shed.
	_, err = c.Acquire(context.Background(), Request{Tenant: "in"})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonQueue {
		t.Fatalf("want queue shed, got %v", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("queue shed should carry a retry-after hint")
	}
	// Higher priority evicts the queued low-priority waiter instead.
	hiDone := make(chan error, 1)
	go func() {
		g, err := c.Acquire(context.Background(), Request{Tenant: "hi", Priority: 5})
		if err == nil {
			g.Release(true)
		}
		hiDone <- err
	}()
	if err := <-lowDone; !errors.Is(err, ErrShed) {
		t.Fatalf("evicted waiter should observe a shed, got %v", err)
	}
	holder.Release(true)
	if err := <-hiDone; err != nil {
		t.Fatalf("high-priority waiter should be granted, got %v", err)
	}
	s := c.Snapshot()
	if s.ShedQueue != 2 {
		t.Fatalf("want 2 queue sheds (incoming + evicted), got %d", s.ShedQueue)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("controller not drained: %+v", s)
	}
}

func TestDispatchPriorityThenFIFO(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 1, MaxQueue: 8, Clock: clk})
	holder, err := c.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Enqueue in a known order, waiting for each to park so FIFO sequence
	// numbers match enqueue order.
	names := []struct {
		name string
		prio int
	}{{"a0", 0}, {"b0", 0}, {"c2", 2}, {"d1", 1}}
	for i, n := range names {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := c.Acquire(context.Background(), Request{Tenant: n.name, Priority: n.prio})
			if err != nil {
				t.Errorf("%s: %v", n.name, err)
				return
			}
			mu.Lock()
			order = append(order, n.name)
			mu.Unlock()
			g.Release(true)
		}()
		waitDepth(t, c, i+1)
	}
	holder.Release(true)
	wg.Wait()
	want := []string{"c2", "d1", "a0", "b0"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// waitDepth polls until the queue reaches depth (enqueue happens in a
// goroutine; the test needs it parked before proceeding).
func waitDepth(t *testing.T, c *Controller, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().QueueDepth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d (at %d)", depth, c.Snapshot().QueueDepth)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAcquireCancelWhileQueued(t *testing.T) {
	c := NewController(Options{MaxInFlight: 1, MaxQueue: 4})
	holder, err := c.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Request{})
		done <- err
	}()
	waitDepth(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	holder.Release(true)
	// The cancelled waiter must not have leaked a slot.
	g, err := c.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	g.Release(true)
	if s := c.Snapshot(); s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
}

// TestConcurrentEnqueueShedCancel hammers the controller from many
// goroutines with random cancellations — the -race exercise for the
// grant/shed/cancel races. The invariant: in-flight never exceeds the cap
// and everything drains.
func TestConcurrentEnqueueShedCancel(t *testing.T) {
	const cap = 4
	c := NewController(Options{MaxInFlight: cap, MaxQueue: 8, TenantRate: 1e6, TenantBurst: 1e6})
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(3) {
				case 0:
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				case 1:
					ctx, cancel = context.WithCancel(ctx)
					go func(d time.Duration, cancel context.CancelFunc) {
						time.Sleep(d)
						cancel()
					}(time.Duration(rng.Intn(100))*time.Microsecond, cancel)
				}
				g, err := c.Acquire(ctx, Request{Tenant: fmt.Sprintf("t%d", w%4), Priority: rng.Intn(3)})
				if err == nil {
					n := inFlight.Add(1)
					for {
						m := maxSeen.Load()
						if n <= m || maxSeen.CompareAndSwap(m, n) {
							break
						}
					}
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					inFlight.Add(-1)
					g.Release(rng.Intn(2) == 0)
				} else if !errors.Is(err, ErrShed) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("unexpected acquire error: %v", err)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	if m := maxSeen.Load(); m > cap {
		t.Fatalf("in-flight exceeded cap: %d > %d", m, cap)
	}
	s := c.Snapshot()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("controller not drained: %+v", s)
	}
	if s.Admitted == 0 {
		t.Fatalf("no queries admitted")
	}
}

func TestShedErrorWireRoundTrip(t *testing.T) {
	orig := &ShedError{Tenant: "acme", Reason: ReasonQueue, QueueDepth: 17, RetryAfter: 120 * time.Millisecond}
	// Simulate the rpc layer: the error crosses as a string, possibly
	// wrapped by peer attribution.
	crossed := fmt.Errorf("machine 2 (shard 1, 127.0.0.1:999): remote: %s", orig.Error())
	back := FromRemote(crossed)
	var se *ShedError
	if !errors.As(back, &se) {
		t.Fatalf("FromRemote did not recover a ShedError from %q", crossed)
	}
	if *se != *orig {
		t.Fatalf("round trip mismatch: got %+v want %+v", se, orig)
	}
	if !errors.Is(back, ErrShed) {
		t.Fatalf("recovered error does not match ErrShed")
	}
	// Empty tenant round-trips too.
	empty := &ShedError{Reason: ReasonQuota}
	if back := FromRemote(errors.New(empty.Error())); !errors.Is(back, ErrShed) {
		t.Fatalf("empty-tenant shed did not round trip: %v", back)
	}
	// Non-shed errors pass through unchanged.
	plain := errors.New("boom")
	if got := FromRemote(plain); got != plain {
		t.Fatalf("FromRemote altered a non-shed error: %v", got)
	}
	if FromRemote(nil) != nil {
		t.Fatalf("FromRemote(nil) != nil")
	}
}

func TestReadyCheckOverload(t *testing.T) {
	c := NewController(Options{MaxInFlight: 1, MaxQueue: 1})
	if err := c.ReadyCheck(); err != nil {
		t.Fatalf("fresh controller not ready: %v", err)
	}
	holder, err := c.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		g, err := c.Acquire(context.Background(), Request{})
		if g != nil {
			g.Release(true)
		}
		done <- err
	}()
	waitDepth(t, c, 1)
	if err := c.ReadyCheck(); err == nil {
		t.Fatalf("saturated queue should fail the ready check")
	}
	holder.Release(true)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if err := c.ReadyCheck(); err != nil {
		t.Fatalf("drained controller not ready: %v", err)
	}
	var nilC *Controller
	if err := nilC.ReadyCheck(); err != nil {
		t.Fatalf("nil controller must be ready")
	}
}

func TestSnapshotTenants(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 4, TenantRate: 10, TenantBurst: 10, Clock: clk})
	for _, tn := range []string{"b", "a"} {
		g, err := c.Acquire(context.Background(), Request{Tenant: tn})
		if err != nil {
			t.Fatalf("%s: %v", tn, err)
		}
		g.Release(true)
	}
	s := c.Snapshot()
	if len(s.Tenants) != 2 || s.Tenants[0].Tenant != "a" || s.Tenants[1].Tenant != "b" {
		t.Fatalf("tenant snapshot wrong: %+v", s.Tenants)
	}
	for _, ts := range s.Tenants {
		if ts.Tokens != 9 {
			t.Fatalf("tenant %s: want 9 tokens after one draw, got %v", ts.Tenant, ts.Tokens)
		}
	}
	if s.Admitted != 2 || s.Shed() != 0 {
		t.Fatalf("counters wrong: %+v", s)
	}
}
