package pmap

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func testMapBasics(t *testing.T, m Map) {
	t.Helper()
	k1 := Key{Local: 3, Shard: 1}
	k2 := Key{Local: 3, Shard: 2} // same local, different shard: distinct key
	if _, ok := m.Get(k1); ok {
		t.Fatal("empty map reports key present")
	}
	m.Set(k1, 1.5)
	if v, ok := m.Get(k1); !ok || v != 1.5 {
		t.Fatalf("Get(k1) = %v,%v", v, ok)
	}
	if _, ok := m.Get(k2); ok {
		t.Fatal("k2 should be absent")
	}
	if nv := m.Add(k1, 0.5); nv != 2.0 {
		t.Fatalf("Add -> %v, want 2.0", nv)
	}
	if nv := m.Add(k2, 0.25); nv != 0.25 {
		t.Fatalf("Add on missing key -> %v, want 0.25", nv)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	sum := 0.0
	m.Range(func(k Key, v float64) bool {
		sum += v
		return true
	})
	if sum != 2.25 {
		t.Fatalf("Range sum = %v, want 2.25", sum)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("after Clear Len = %d", m.Len())
	}
}

func TestStripedBasics(t *testing.T)  { testMapBasics(t, NewStriped(16)) }
func TestLockFreeBasics(t *testing.T) { testMapBasics(t, NewLockFree(16)) }

func TestZeroKey(t *testing.T) {
	// Key{0,0} packs to 0; the lock-free map must distinguish it from empty.
	for _, m := range []Map{NewStriped(4), NewLockFree(4)} {
		k := Key{Local: 0, Shard: 0}
		m.Set(k, 7)
		if v, ok := m.Get(k); !ok || v != 7 {
			t.Fatalf("zero key lost: %v %v", v, ok)
		}
		if m.Len() != 1 {
			t.Fatalf("Len = %d", m.Len())
		}
	}
}

func TestNegativeIDs(t *testing.T) {
	// Negative components must not collide with positive ones.
	for _, m := range []Map{NewStriped(4), NewLockFree(4)} {
		m.Set(Key{Local: -1, Shard: 0}, 1)
		m.Set(Key{Local: 1, Shard: 0}, 2)
		m.Set(Key{Local: 0, Shard: -1}, 3)
		if m.Len() != 3 {
			t.Fatalf("Len = %d, want 3", m.Len())
		}
		if v, _ := m.Get(Key{Local: -1, Shard: 0}); v != 1 {
			t.Fatalf("got %v", v)
		}
	}
}

func testConcurrentAdd(t *testing.T, m Map) {
	t.Helper()
	const (
		workers = 8
		keys    = 128
		iters   = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				k := Key{Local: int32(rng.Intn(keys)), Shard: int32(rng.Intn(4))}
				m.Add(k, 1)
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	m.Range(func(_ Key, v float64) bool {
		total += v
		return true
	})
	if total != workers*iters {
		t.Fatalf("lost updates: total = %v, want %d", total, workers*iters)
	}
}

func TestStripedConcurrentAdd(t *testing.T)  { testConcurrentAdd(t, NewStriped(64)) }
func TestLockFreeConcurrentAdd(t *testing.T) { testConcurrentAdd(t, NewLockFree(1024)) }

func TestLockFreeGrowth(t *testing.T) {
	m := NewLockFree(4) // force growth
	const n = 10000
	for i := 0; i < n; i++ {
		m.Set(Key{Local: int32(i), Shard: int32(i % 7)}, float64(i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(Key{Local: int32(i), Shard: int32(i % 7)})
		if !ok || v != float64(i) {
			t.Fatalf("key %d lost after growth: %v %v", i, v, ok)
		}
	}
}

func TestApplyOwnedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	updates := make([]Update, 5000)
	for i := range updates {
		updates[i] = Update{
			Key:   Key{Local: int32(rng.Intn(200)), Shard: int32(rng.Intn(4))},
			Delta: rng.Float64(),
			Aux:   float64(i),
		}
	}
	seq := NewStriped(256)
	for _, u := range updates {
		seq.Add(u.Key, u.Delta)
	}
	for _, workers := range []int{1, 2, 4, 8, 100} {
		par := NewStriped(256)
		par.ApplyOwned(updates, workers, nil)
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d Len %d != %d", workers, par.Len(), seq.Len())
		}
		seq.Range(func(k Key, v float64) bool {
			pv, ok := par.Get(k)
			if !ok || math.Abs(pv-v) > 1e-9 {
				t.Fatalf("workers=%d key %v: %v vs %v", workers, k, pv, v)
			}
			return true
		})
	}
}

func TestApplyOwnedVisit(t *testing.T) {
	m := NewStriped(16)
	updates := []Update{
		{Key{1, 0}, 1.0, 10},
		{Key{2, 0}, 2.0, 20},
		{Key{1, 0}, 0.5, 30},
	}
	var mu sync.Mutex
	last := map[Key]float64{}
	lastAux := map[Key]float64{}
	m.ApplyOwned(updates, 4, func(k Key, v, aux float64) {
		mu.Lock()
		last[k] = v
		lastAux[k] = aux
		mu.Unlock()
	})
	// Updates to the same key are applied by one owner in order, so the
	// last visit for Key{1,0} sees the final value 1.5 and aux 30.
	if last[Key{1, 0}] != 1.5 || last[Key{2, 0}] != 2.0 {
		t.Fatalf("visit values: %v", last)
	}
	if lastAux[Key{1, 0}] != 30 || lastAux[Key{2, 0}] != 20 {
		t.Fatalf("visit aux: %v", lastAux)
	}
}

func TestSubmapIndexStable(t *testing.T) {
	for i := int32(0); i < 1000; i++ {
		k := Key{Local: i, Shard: i % 5}
		if SubmapIndex(k) != SubmapIndex(k) {
			t.Fatal("SubmapIndex not deterministic")
		}
		if SubmapIndex(k) < 0 || SubmapIndex(k) >= NumSubmaps {
			t.Fatal("SubmapIndex out of range")
		}
	}
}

func TestConcurrentSetBasics(t *testing.T) {
	s := NewConcurrentSet(16)
	k := Key{Local: 5, Shard: 2}
	if !s.Insert(k) {
		t.Fatal("first Insert should report new")
	}
	if s.Insert(k) {
		t.Fatal("second Insert should report existing")
	}
	if !s.Contains(k) || s.Len() != 1 {
		t.Fatal("Contains/Len wrong")
	}
	got := s.Drain(nil)
	if len(got) != 1 || got[0] != k {
		t.Fatalf("Drain = %v", got)
	}
	if s.Len() != 0 || s.Contains(k) {
		t.Fatal("set not cleared by Drain")
	}
}

func TestConcurrentSetParallelInsert(t *testing.T) {
	s := NewConcurrentSet(1024)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	newCount := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping key ranges across workers.
				if s.Insert(Key{Local: int32(i), Shard: int32(w % 2)}) {
					newCount[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	totalNew := 0
	for _, c := range newCount {
		totalNew += c
	}
	// Exactly perWorker * 2 distinct keys; Insert must report "new" exactly once each.
	if s.Len() != perWorker*2 || totalNew != perWorker*2 {
		t.Fatalf("Len=%d totalNew=%d, want %d", s.Len(), totalNew, perWorker*2)
	}
}

func TestDrainAppends(t *testing.T) {
	s := NewConcurrentSet(4)
	s.Insert(Key{1, 0})
	pre := []Key{{9, 9}}
	got := s.Drain(pre)
	if len(got) != 2 || got[0] != (Key{9, 9}) {
		t.Fatalf("Drain should append: %v", got)
	}
}

// Property: pack/unpack round-trips all int32 pairs.
func TestQuickPackUnpack(t *testing.T) {
	f := func(local, shard int32) bool {
		k := Key{Local: local, Shard: shard}
		return unpack(k.pack()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: both maps agree with a reference map[Key]float64 under a random
// operation sequence.
func TestQuickMapsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maps := []Map{NewStriped(8), NewLockFree(8)}
		ref := map[Key]float64{}
		for i := 0; i < 300; i++ {
			k := Key{Local: int32(rng.Intn(20)), Shard: int32(rng.Intn(3))}
			switch rng.Intn(3) {
			case 0:
				v := rng.Float64()
				ref[k] = v
				for _, m := range maps {
					m.Set(k, v)
				}
			case 1:
				d := rng.Float64()
				ref[k] += d
				for _, m := range maps {
					m.Add(k, d)
				}
			case 2:
				rv, rok := ref[k]
				for _, m := range maps {
					v, ok := m.Get(k)
					if ok != rok || math.Abs(v-rv) > 1e-9 {
						return false
					}
				}
			}
		}
		for _, m := range maps {
			if m.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStripedAdd(b *testing.B) {
	m := NewStriped(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		i := int32(0)
		for pb.Next() {
			m.Add(Key{Local: i & 0xffff, Shard: 0}, 1)
			i++
		}
	})
}

func BenchmarkLockFreeAdd(b *testing.B) {
	m := NewLockFree(1 << 17)
	b.RunParallel(func(pb *testing.PB) {
		i := int32(0)
		for pb.Next() {
			m.Add(Key{Local: i & 0xffff, Shard: 0}, 1)
			i++
		}
	})
}
