package pmap

import "sync"

// Pool is a set of long-lived worker goroutines for the shard-affinity
// compute layer: worker w owns stripes {s : s % Workers == w} of every Flat
// map and FlatSet of its query, so a stripe's pop scan and push applies stay
// on one goroutine (and its cached lines stay in one core's cache) instead of
// being re-sharded through freshly spawned goroutines every round, the way
// pushOwned's fork-join does.
//
// Do runs one round: it hands the same closure to every worker and returns
// when all of them finish. Rounds are the only synchronization — between the
// two Do calls of a push (claim+materialize, then merge+apply) no worker
// touches a stripe it does not own, so the closures run lock-free.
type Pool struct {
	work []chan func()
	wg   sync.WaitGroup // tracks worker goroutines for Close
}

// NewPool starts workers long-lived goroutines. Callers cap workers at
// NumSubmaps; fewer stripes than workers would leave workers idle.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{work: make([]chan func(), workers)}
	for w := range p.work {
		ch := make(chan func(), 1)
		p.work[w] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range ch {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.work) }

// Do runs f(w) on every worker w and returns when all calls complete. Not
// safe for concurrent Do calls — the engine issues rounds from the single
// driver goroutine.
func (p *Pool) Do(f func(w int)) {
	var wg sync.WaitGroup
	wg.Add(len(p.work))
	for w := range p.work {
		w := w
		p.work[w] <- func() {
			f(w)
			wg.Done()
		}
	}
	wg.Wait()
}

// Close stops the workers and waits for them to exit. Do must not be called
// after Close.
func (p *Pool) Close() {
	for _, ch := range p.work {
		close(ch)
	}
	p.wg.Wait()
}
