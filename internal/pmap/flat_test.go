package pmap

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"pprengine/internal/mem"
)

func TestFlatBasics(t *testing.T) {
	f := NewFlat(16)
	k1 := Key{Local: 3, Shard: 1}
	k2 := Key{Local: 3, Shard: 2}
	if _, ok := f.Get(k1); ok {
		t.Fatal("empty map reports key present")
	}
	f.Set(k1, 1.5)
	if v, ok := f.Get(k1); !ok || v != 1.5 {
		t.Fatalf("Get(k1) = %v,%v", v, ok)
	}
	if _, ok := f.Get(k2); ok {
		t.Fatal("k2 should be absent")
	}
	if nv := f.AddP(k1.Packed(), 0.5); nv != 2.0 {
		t.Fatalf("AddP -> %v, want 2.0", nv)
	}
	if nv := f.AddP(k2.Packed(), 0.25); nv != 0.25 {
		t.Fatalf("AddP on missing key -> %v, want 0.25", nv)
	}
	if old := f.SwapP(k1.Packed(), 7); old != 2.0 {
		t.Fatalf("SwapP returned %v, want 2.0", old)
	}
	if v, _ := f.Get(k1); v != 7 {
		t.Fatalf("after SwapP Get = %v", v)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	sum := 0.0
	f.Range(func(_ Key, v float64) bool {
		sum += v
		return true
	})
	if sum != 7.25 {
		t.Fatalf("Range sum = %v, want 7.25", sum)
	}
	f.Clear()
	if f.Len() != 0 {
		t.Fatalf("after Clear Len = %d", f.Len())
	}
	if _, ok := f.Get(k1); ok {
		t.Fatal("key survived Clear")
	}
}

func TestFlatZeroAndNegativeKeys(t *testing.T) {
	// Key{0,0} packs to 0, which collides with the empty-slot marker unless
	// keys are biased; negative components must not collide with positive.
	f := NewFlat(4)
	f.Set(Key{Local: 0, Shard: 0}, 7)
	f.Set(Key{Local: -1, Shard: 0}, 1)
	f.Set(Key{Local: 1, Shard: 0}, 2)
	f.Set(Key{Local: 0, Shard: -1}, 3)
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if v, ok := f.Get(Key{Local: 0, Shard: 0}); !ok || v != 7 {
		t.Fatalf("zero key lost: %v %v", v, ok)
	}
	if v, _ := f.Get(Key{Local: -1, Shard: 0}); v != 1 {
		t.Fatalf("negative local: got %v", v)
	}
}

func TestFlatGrowth(t *testing.T) {
	f := NewFlat(1) // minimal stripes: force rehashing
	const n = 10000
	for i := 0; i < n; i++ {
		f.Set(Key{Local: int32(i), Shard: int32(i % 7)}, float64(i))
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	if f.Grows() == 0 {
		t.Fatal("expected stripe rehashes at this load")
	}
	for i := 0; i < n; i++ {
		v, ok := f.Get(Key{Local: int32(i), Shard: int32(i % 7)})
		if !ok || v != float64(i) {
			t.Fatalf("key %d lost after growth: %v %v", i, v, ok)
		}
	}
}

// Property: Flat agrees with a reference map under random AddP/SwapP/Get.
func TestQuickFlatMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := NewFlat(8)
		ref := map[Key]float64{}
		for i := 0; i < 400; i++ {
			k := Key{Local: int32(rng.Intn(25)), Shard: int32(rng.Intn(3))}
			switch rng.Intn(3) {
			case 0:
				v := rng.Float64()
				ref[k] = v
				fl.SwapP(k.Packed(), v)
			case 1:
				d := rng.Float64()
				ref[k] += d
				fl.AddP(k.Packed(), d)
			case 2:
				rv, rok := ref[k]
				v, ok := fl.Get(k)
				if ok != rok || math.Abs(v-rv) > 1e-9 {
					return false
				}
			}
		}
		return fl.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeOfPackedMatchesSubmapIndex(t *testing.T) {
	// Affinity workers own Striped submaps and Flat stripes under one rule:
	// the two derivations must agree for every key.
	for i := int32(0); i < 2000; i++ {
		k := Key{Local: i, Shard: i % 5}
		if StripeOfPacked(k.Packed()) != SubmapIndex(k) {
			t.Fatalf("stripe/submap mismatch for %v", k)
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	f := func(local, shard int32) bool {
		k := Key{Local: local, Shard: shard}
		return UnpackKey(k.Packed()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlatSetBasics(t *testing.T) {
	s := NewFlatSet(16)
	k := Key{Local: 5, Shard: 2}
	if !s.InsertP(k.Packed()) {
		t.Fatal("first InsertP should report new")
	}
	if s.InsertP(k.Packed()) {
		t.Fatal("second InsertP should report existing")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Drain(nil)
	if len(got) != 1 || got[0] != k {
		t.Fatalf("Drain = %v", got)
	}
	if s.Len() != 0 {
		t.Fatal("set not cleared by Drain")
	}
	if !s.InsertP(k.Packed()) {
		t.Fatal("reinsert after Drain should report new")
	}
}

// DrainStripe preserves insertion order within a stripe, and both clear
// strategies (sparse slot reset and dense memclr) leave the stripe reusable.
func TestFlatSetDrainOrderAndReuse(t *testing.T) {
	for _, n := range []int{3, 600} { // sparse stripes, then dense ones
		s := NewFlatSet(64)
		var want []Key
		for i := 0; i < n; i++ {
			k := Key{Local: int32(i), Shard: 0}
			s.InsertP(k.Packed())
			want = append(want, k)
		}
		perStripe := make(map[int][]Key)
		for _, k := range want {
			si := StripeOfPacked(k.Packed())
			perStripe[si] = append(perStripe[si], k)
		}
		for si := 0; si < NumSubmaps; si++ {
			got := s.DrainStripe(si, nil)
			if len(got) != len(perStripe[si]) {
				t.Fatalf("n=%d stripe %d drained %d keys, want %d", n, si, len(got), len(perStripe[si]))
			}
			for j := range got {
				if got[j] != perStripe[si][j] {
					t.Fatalf("n=%d stripe %d out of insertion order at %d: %v vs %v",
						n, si, j, got[j], perStripe[si][j])
				}
			}
		}
		if s.Len() != 0 {
			t.Fatalf("n=%d keys left after full drain", n)
		}
		for _, k := range want { // the cleared tables must accept everything again
			if !s.InsertP(k.Packed()) {
				t.Fatalf("n=%d stale key %v after drain", n, k)
			}
		}
	}
}

func TestFlatSetGrowth(t *testing.T) {
	s := NewFlatSet(1)
	const n = 5000
	for i := 0; i < n; i++ {
		if !s.InsertP((Key{Local: int32(i), Shard: int32(i % 3)}).Packed()) {
			t.Fatalf("key %d reported duplicate", i)
		}
	}
	if s.Grows() == 0 {
		t.Fatal("expected stripe rehashes at this load")
	}
	seen := make(map[Key]bool, n)
	for _, k := range s.Drain(nil) {
		if seen[k] {
			t.Fatalf("duplicate %v in drain", k)
		}
		seen[k] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d keys, want %d", len(seen), n)
	}
}

func TestPoolDoRoundsAndClose(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	var ran [4]atomic.Int64
	for round := 0; round < 50; round++ {
		p.Do(func(w int) { ran[w].Add(1) })
		// Do is a barrier: after it returns, every worker ran this round.
		for w := range ran {
			if got := ran[w].Load(); got != int64(round+1) {
				t.Fatalf("round %d: worker %d ran %d times", round, w, got)
			}
		}
	}
}

// The inner-loop table ops must not allocate once capacity fits the workload
// — that is the whole point of replacing the Go maps on the hot path.
func TestFlatSteadyStateAllocBudget(t *testing.T) {
	if mem.RaceEnabled {
		t.Skip("race instrumentation skews alloc counts")
	}
	f := NewFlat(4096)
	s := NewFlatSet(4096)
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = (Key{Local: int32(i), Shard: int32(i % 4)}).Packed()
	}
	for _, p := range keys { // warm to final size
		f.AddP(p, 1)
		s.InsertP(p)
	}
	var drained []Key
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range keys {
			f.AddP(p, 0.5)
			f.SwapP(p, 2)
			s.InsertP(p)
		}
		drained = s.Drain(drained[:0])
		for _, k := range drained {
			s.InsertP(k.Packed())
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state flat ops allocate %.1f objects per round, budget 0", allocs)
	}
}
