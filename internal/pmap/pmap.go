// Package pmap implements the parallel hash maps backing the engine's PPR
// operators (paper §3.3). Keys are (local ID, shard ID) node identifiers and
// values are float64 PPR or residual masses.
//
// Two implementations are provided:
//
//   - Striped: a segmented ("submap") hash map in the style of
//     parallel-hashmap, with one mutex per submap for arbitrary concurrent
//     access, plus an owner-compute mode (ApplyOwned) that assigns each
//     submap to exactly one worker so the hot update path runs without any
//     locking — this mirrors the paper's "eliminate the need for locks by
//     assigning map update operations to each thread based on the index of
//     the submap".
//
//   - LockFree: an open-addressing map whose inserts and float accumulations
//     use compare-and-swap only, for the ablation comparing locking schemes.
package pmap

import (
	"math"
	"sync"
	"sync/atomic"
)

// Key identifies a node as a (local ID, shard ID) pair, the engine's native
// node addressing (paper §3.2.2): no global-ID conversion is ever needed.
type Key struct {
	Local int32
	Shard int32
}

// pack encodes a Key into a single comparable 64-bit integer.
func (k Key) pack() uint64 {
	return uint64(uint32(k.Shard))<<32 | uint64(uint32(k.Local))
}

func unpack(p uint64) Key {
	return Key{Local: int32(uint32(p)), Shard: int32(uint32(p >> 32))}
}

// hash64 is a Fibonacci/xor mix good enough to spread packed node IDs across
// submaps and table slots.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NumSubmaps is the fixed segment count of Striped maps. A power of two so
// submap selection is a mask. 64 segments keeps contention negligible for
// up to a few dozen workers while keeping per-map overhead small.
const NumSubmaps = 64

type submap struct {
	mu sync.Mutex
	m  map[uint64]float64
	_  [40]byte // pad to reduce false sharing between adjacent locks
}

// Striped is a segmented concurrent map from Key to float64.
// The zero value is not usable; call NewStriped.
type Striped struct {
	subs [NumSubmaps]submap
}

// NewStriped returns an empty Striped map with capacity hint per submap.
func NewStriped(capacityHint int) *Striped {
	s := &Striped{}
	per := capacityHint / NumSubmaps
	if per < 4 {
		per = 4
	}
	for i := range s.subs {
		s.subs[i].m = make(map[uint64]float64, per)
	}
	return s
}

// SubmapIndex returns the segment that owns k. Exposed so callers can group
// work by owner for the lock-free ApplyOwned path.
func SubmapIndex(k Key) int {
	return int(hash64(k.pack()) & (NumSubmaps - 1))
}

// Get returns the value for k and whether it is present.
func (s *Striped) Get(k Key) (float64, bool) {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	v, ok := sm.m[p]
	sm.mu.Unlock()
	return v, ok
}

// Set stores v for k.
func (s *Striped) Set(k Key, v float64) {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	sm.m[p] = v
	sm.mu.Unlock()
}

// Add atomically adds delta to k's value (missing keys start at 0) and
// returns the new value.
func (s *Striped) Add(k Key, delta float64) float64 {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	nv := sm.m[p] + delta
	sm.m[p] = nv
	sm.mu.Unlock()
	return nv
}

// Swap stores v for k and returns the previous value (0 if absent).
func (s *Striped) Swap(k Key, v float64) float64 {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	old := sm.m[p]
	sm.m[p] = v
	sm.mu.Unlock()
	return old
}

// Delete removes k.
func (s *Striped) Delete(k Key) {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	delete(sm.m, p)
	sm.mu.Unlock()
}

// Len returns the total number of keys. It locks each submap in turn, so the
// result is only a consistent snapshot when no writers are active.
func (s *Striped) Len() int {
	n := 0
	for i := range s.subs {
		s.subs[i].mu.Lock()
		n += len(s.subs[i].m)
		s.subs[i].mu.Unlock()
	}
	return n
}

// Range calls f for every (key, value) pair. Iteration holds one submap lock
// at a time; f must not call back into the same map.
func (s *Striped) Range(f func(Key, float64) bool) {
	for i := range s.subs {
		sm := &s.subs[i]
		sm.mu.Lock()
		for p, v := range sm.m {
			if !f(unpack(p), v) {
				sm.mu.Unlock()
				return
			}
		}
		sm.mu.Unlock()
	}
}

// Clear removes all keys, retaining the submap storage.
func (s *Striped) Clear() {
	for i := range s.subs {
		sm := &s.subs[i]
		sm.mu.Lock()
		clear(sm.m)
		sm.mu.Unlock()
	}
}

// Update is one deferred mutation for ApplyOwned: add Delta to the value of
// Key, then pass the new value (and the caller-supplied Aux) to the visitor.
// Aux lets push carry each neighbor's weighted degree to the activation
// check without a second lookup.
type Update struct {
	Key   Key
	Delta float64
	Aux   float64
}

// ApplyOwned applies a batch of updates using the owner-compute scheme:
// updates are grouped by submap index and each of the workers processes a
// disjoint set of submaps, so no locks are taken during map mutation. visit,
// when non-nil, is called with each key's value after its update plus the
// update's Aux, from the owning worker (it must be safe for concurrent
// invocation on distinct keys).
//
// This is the paper's lock-elimination strategy for the multi-threaded push.
func (s *Striped) ApplyOwned(updates []Update, workers int, visit func(Key, float64, float64)) {
	if workers <= 1 || len(updates) < 2 {
		for _, u := range updates {
			nv := s.addNoLock(u.Key, u.Delta)
			if visit != nil {
				visit(u.Key, nv, u.Aux)
			}
		}
		return
	}
	if workers > NumSubmaps {
		workers = NumSubmaps
	}
	// Group updates by submap. Single pass bucket sort.
	var counts [NumSubmaps]int32
	idxs := make([]int32, len(updates))
	for i, u := range updates {
		si := int32(SubmapIndex(u.Key))
		idxs[i] = si
		counts[si]++
	}
	var offsets [NumSubmaps + 1]int32
	for i := 0; i < NumSubmaps; i++ {
		offsets[i+1] = offsets[i] + counts[i]
	}
	order := make([]int32, len(updates))
	var cursor [NumSubmaps]int32
	copy(cursor[:], offsets[:NumSubmaps])
	for i := range updates {
		si := idxs[i]
		order[cursor[si]] = int32(i)
		cursor[si]++
	}
	// Each worker owns submaps w, w+workers, w+2*workers, ...
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := w; si < NumSubmaps; si += workers {
				for _, oi := range order[offsets[si]:offsets[si+1]] {
					u := updates[oi]
					nv := s.addNoLock(u.Key, u.Delta)
					if visit != nil {
						visit(u.Key, nv, u.Aux)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// addNoLock adds delta without taking the submap lock. Safe only under the
// ApplyOwned ownership discipline or single-threaded use.
func (s *Striped) addNoLock(k Key, delta float64) float64 {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	nv := sm.m[p] + delta
	sm.m[p] = nv
	return nv
}

// AddSeq is the lock-free single-threaded fast path of Add. The caller must
// guarantee no concurrent access to the map (the engine's sequential push
// below the multi-threading threshold).
func (s *Striped) AddSeq(k Key, delta float64) float64 {
	return s.addNoLock(k, delta)
}

// SwapSeq is the lock-free single-threaded fast path of Swap.
func (s *Striped) SwapSeq(k Key, v float64) float64 {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	old := sm.m[p]
	sm.m[p] = v
	return old
}

// --- Lock-free open addressing map ---

const (
	emptySlot = uint64(0)
	// sentinel distinguishes a stored packed key of 0 (node local=0,
	// shard=0) from an empty slot.
	keyBias = uint64(1)
)

// LockFree is an open-addressing concurrent map from Key to float64 using
// only atomic operations on the hot path (CAS key claims, CAS float-bits
// accumulate). The table grows by building a larger table under a mutex and
// migrating — growth is rare when the caller provides a sensible initial
// capacity; reads and updates remain lock-free between growths.
type LockFree struct {
	mu    sync.Mutex // guards resize only
	state atomic.Pointer[lfTable]
}

type lfTable struct {
	mask  uint64
	keys  []atomic.Uint64 // 0 = empty, else packed key + keyBias
	vals  []atomic.Uint64 // math.Float64bits
	count atomic.Int64
}

// NewLockFree returns an empty LockFree map sized for capacityHint entries.
func NewLockFree(capacityHint int) *LockFree {
	n := 64
	for n < capacityHint*2 { // keep load factor under 0.5
		n <<= 1
	}
	lf := &LockFree{}
	lf.state.Store(newLFTable(n))
	return lf
}

func newLFTable(n int) *lfTable {
	return &lfTable{
		mask: uint64(n - 1),
		keys: make([]atomic.Uint64, n),
		vals: make([]atomic.Uint64, n),
	}
}

// Get returns the value for k and whether it is present.
func (lf *LockFree) Get(k Key) (float64, bool) {
	t := lf.state.Load()
	p := k.pack() + keyBias
	i := hash64(p) & t.mask
	for {
		kv := t.keys[i].Load()
		if kv == emptySlot {
			return 0, false
		}
		if kv == p {
			return math.Float64frombits(t.vals[i].Load()), true
		}
		i = (i + 1) & t.mask
	}
}

// Add atomically adds delta to k's value and returns the new value. Missing
// keys are inserted with initial value 0 before the addition.
func (lf *LockFree) Add(k Key, delta float64) float64 {
	for {
		t := lf.state.Load()
		if v, ok := t.add(k, delta); ok {
			return v
		}
		lf.grow(t)
	}
}

// add returns ok=false when the table is too full and must grow.
func (t *lfTable) add(k Key, delta float64) (float64, bool) {
	p := k.pack() + keyBias
	i := hash64(p) & t.mask
	probes := uint64(0)
	for {
		kv := t.keys[i].Load()
		if kv == emptySlot {
			if t.count.Load()*2 >= int64(t.mask+1) {
				return 0, false // over load factor: grow
			}
			if t.keys[i].CompareAndSwap(emptySlot, p) {
				t.count.Add(1)
				kv = p
			} else {
				kv = t.keys[i].Load() // someone else claimed it
			}
		}
		if kv == p {
			for {
				old := t.vals[i].Load()
				nv := math.Float64frombits(old) + delta
				if t.vals[i].CompareAndSwap(old, math.Float64bits(nv)) {
					return nv, true
				}
			}
		}
		i = (i + 1) & t.mask
		probes++
		if probes > t.mask {
			return 0, false // table full
		}
	}
}

func (lf *LockFree) grow(old *lfTable) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	cur := lf.state.Load()
	if cur != old {
		return // someone else grew it
	}
	// Concurrent writers may still be mutating `cur` during migration; the
	// engine's usage (grow between batches, sized hints) makes this safe in
	// practice, but to be strict we require quiescence: callers that may
	// race growth should prefer Striped. We still migrate atomically-read
	// snapshots, which is the standard fixed-point approach.
	nt := newLFTable(int(cur.mask+1) * 2)
	for i := range cur.keys {
		kv := cur.keys[i].Load()
		if kv == emptySlot {
			continue
		}
		v := math.Float64frombits(cur.vals[i].Load())
		nt.add(unpack(kv-keyBias), v)
	}
	lf.state.Store(nt)
}

// Set stores v for k (implemented as a read-modify CAS loop).
func (lf *LockFree) Set(k Key, v float64) {
	for {
		t := lf.state.Load()
		if ok := t.set(k, v); ok {
			return
		}
		lf.grow(t)
	}
}

func (t *lfTable) set(k Key, v float64) bool {
	p := k.pack() + keyBias
	i := hash64(p) & t.mask
	probes := uint64(0)
	for {
		kv := t.keys[i].Load()
		if kv == emptySlot {
			if t.count.Load()*2 >= int64(t.mask+1) {
				return false
			}
			if t.keys[i].CompareAndSwap(emptySlot, p) {
				t.count.Add(1)
				kv = p
			} else {
				kv = t.keys[i].Load()
			}
		}
		if kv == p {
			t.vals[i].Store(math.Float64bits(v))
			return true
		}
		i = (i + 1) & t.mask
		probes++
		if probes > t.mask {
			return false
		}
	}
}

// Len returns the number of keys currently stored.
func (lf *LockFree) Len() int {
	return int(lf.state.Load().count.Load())
}

// Range calls f for every (key, value) pair in the current table snapshot.
func (lf *LockFree) Range(f func(Key, float64) bool) {
	t := lf.state.Load()
	for i := range t.keys {
		kv := t.keys[i].Load()
		if kv == emptySlot {
			continue
		}
		if !f(unpack(kv-keyBias), math.Float64frombits(t.vals[i].Load())) {
			return
		}
	}
}

// Clear drops all keys by installing a fresh table of the same size.
func (lf *LockFree) Clear() {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	t := lf.state.Load()
	lf.state.Store(newLFTable(int(t.mask + 1)))
}

// Map is the interface satisfied by both implementations; the PPR operators
// are written against it so the locking scheme is an ablation axis.
type Map interface {
	Get(Key) (float64, bool)
	Set(Key, float64)
	Add(Key, float64) float64
	Len() int
	Range(func(Key, float64) bool)
	Clear()
}

var (
	_ Map = (*Striped)(nil)
	_ Map = (*LockFree)(nil)
)
