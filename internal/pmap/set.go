package pmap

import "sync"

// ConcurrentSet is a segmented concurrent set of node Keys. The engine uses
// it for the activated-vertex set of Forward Push: push inserts activations
// concurrently, pop drains the whole set (paper §3.3: "the pop operator
// first returns the local ID tensor and the shard ID tensor from the current
// activated vertex set and then clears the set").
type ConcurrentSet struct {
	subs [NumSubmaps]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		_  [40]byte
	}
}

// NewConcurrentSet returns an empty set with a total capacity hint.
func NewConcurrentSet(capacityHint int) *ConcurrentSet {
	s := &ConcurrentSet{}
	per := capacityHint / NumSubmaps
	if per < 4 {
		per = 4
	}
	for i := range s.subs {
		s.subs[i].m = make(map[uint64]struct{}, per)
	}
	return s
}

// InsertSeq is the lock-free single-threaded fast path of Insert. The
// caller must guarantee no concurrent access to the set.
func (s *ConcurrentSet) InsertSeq(k Key) bool {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	if _, existed := sm.m[p]; existed {
		return false
	}
	sm.m[p] = struct{}{}
	return true
}

// Insert adds k and reports whether it was newly added.
func (s *ConcurrentSet) Insert(k Key) bool {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	_, existed := sm.m[p]
	if !existed {
		sm.m[p] = struct{}{}
	}
	sm.mu.Unlock()
	return !existed
}

// Contains reports whether k is in the set.
func (s *ConcurrentSet) Contains(k Key) bool {
	p := k.pack()
	sm := &s.subs[hash64(p)&(NumSubmaps-1)]
	sm.mu.Lock()
	_, ok := sm.m[p]
	sm.mu.Unlock()
	return ok
}

// Len returns the number of keys.
func (s *ConcurrentSet) Len() int {
	n := 0
	for i := range s.subs {
		s.subs[i].mu.Lock()
		n += len(s.subs[i].m)
		s.subs[i].mu.Unlock()
	}
	return n
}

// Drain appends all keys to dst, clears the set, and returns dst. The drain
// is per-submap atomic; concurrent inserts land either in this drain or the
// next one.
func (s *ConcurrentSet) Drain(dst []Key) []Key {
	for i := range s.subs {
		sm := &s.subs[i]
		sm.mu.Lock()
		for p := range sm.m {
			dst = append(dst, unpack(p))
		}
		clear(sm.m)
		sm.mu.Unlock()
	}
	return dst
}

// Clear removes all keys.
func (s *ConcurrentSet) Clear() {
	for i := range s.subs {
		sm := &s.subs[i]
		sm.mu.Lock()
		clear(sm.m)
		sm.mu.Unlock()
	}
}
