// Flat and FlatSet are the open-addressed, single-owner probe tables behind
// the shard-affinity compute pools (DESIGN.md §5j). Where Striped pays Go-map
// overhead (hashing twice, bucket chains, interface-free but pointer-heavy
// internals) plus a mutex per submap, Flat keys each stripe as a bare
// open-addressed array pair: packed keys (biased by one so zero means empty)
// and float64 values, probed linearly from the upper bits of the same hash
// that picked the stripe. There are no locks anywhere: correctness comes from
// the ownership discipline — at any moment a stripe is touched by exactly one
// goroutine, either the single sequential pusher or the pool worker that owns
// it (stripe s belongs to worker s % W).
package pmap

import "sync/atomic"

// submapBits is log2(NumSubmaps): stripe selection uses the hash's low
// submapBits bits, slot probing starts from the bits above them, so the two
// derivations never correlate.
const submapBits = 6

// flatMinStripeCap is the smallest per-stripe table (power of two).
const flatMinStripeCap = 8

// stripeCapFor sizes one stripe's table for a total capacity hint, keeping
// the load factor under 3/4 at the hinted size.
func stripeCapFor(capacityHint int) int {
	per := capacityHint / NumSubmaps
	n := flatMinStripeCap
	for n*3 < per*4 {
		n <<= 1
	}
	return n
}

type flatStripe struct {
	keys []uint64 // packed key + keyBias; 0 = empty
	vals []float64
	n    int
	_    [24]byte // pad to reduce false sharing between adjacent owners
}

// Flat is a striped open-addressed map from Key to float64 with no internal
// synchronization. It is safe for concurrent use only under the owner-compute
// discipline: every call that touches stripe StripeOfPacked(k) must come from
// that stripe's owning goroutine (or from a single goroutine owning the whole
// map, the sequential fast path).
type Flat struct {
	stripes [NumSubmaps]flatStripe
	grows   atomic.Int64
}

// NewFlat returns an empty Flat map sized for capacityHint total entries.
func NewFlat(capacityHint int) *Flat {
	f := &Flat{}
	per := stripeCapFor(capacityHint)
	for i := range f.stripes {
		f.stripes[i].keys = make([]uint64, per)
		f.stripes[i].vals = make([]float64, per)
	}
	return f
}

// Packed returns the Key's packed 64-bit form, the representation the flat
// tables and the affinity push buckets carry on the hot path.
func (k Key) Packed() uint64 { return k.pack() }

// UnpackKey is the inverse of Key.Packed.
func UnpackKey(p uint64) Key { return unpack(p) }

// StripeOfPacked returns the stripe (= submap index) owning a packed key.
// It is the same derivation as SubmapIndex, so affinity workers can own
// Striped submaps and Flat stripes under one rule.
func StripeOfPacked(p uint64) int {
	return int(hash64(p) & (NumSubmaps - 1))
}

// AddP adds delta to packed key p's value (missing keys start at 0) and
// returns the new value. Owner-only: the caller must own p's stripe.
func (f *Flat) AddP(p uint64, delta float64) float64 {
	h := hash64(p)
	st := &f.stripes[h&(NumSubmaps-1)]
	if st.n*4 >= len(st.keys)*3 {
		f.growStripe(st)
	}
	b := p + keyBias
	keys, vals := st.keys, st.vals
	mask := uint64(len(keys) - 1)
	i := (h >> submapBits) & mask
	for {
		k := keys[i]
		if k == b {
			nv := vals[i] + delta
			vals[i] = nv
			return nv
		}
		if k == emptySlot {
			keys[i] = b
			vals[i] = delta
			st.n++
			return delta
		}
		i = (i + 1) & mask
	}
}

// SwapP stores v for packed key p and returns the previous value (0 if
// absent). Owner-only.
func (f *Flat) SwapP(p uint64, v float64) float64 {
	h := hash64(p)
	st := &f.stripes[h&(NumSubmaps-1)]
	if st.n*4 >= len(st.keys)*3 {
		f.growStripe(st)
	}
	b := p + keyBias
	keys, vals := st.keys, st.vals
	mask := uint64(len(keys) - 1)
	i := (h >> submapBits) & mask
	for {
		k := keys[i]
		if k == b {
			old := vals[i]
			vals[i] = v
			return old
		}
		if k == emptySlot {
			keys[i] = b
			vals[i] = v
			st.n++
			return 0
		}
		i = (i + 1) & mask
	}
}

// growStripe doubles one stripe's table and rehashes its entries.
func (f *Flat) growStripe(st *flatStripe) {
	oldKeys, oldVals := st.keys, st.vals
	n := len(oldKeys) * 2
	keys := make([]uint64, n)
	vals := make([]float64, n)
	mask := uint64(n - 1)
	for i, b := range oldKeys {
		if b == emptySlot {
			continue
		}
		j := (hash64(b-keyBias) >> submapBits) & mask
		for keys[j] != emptySlot {
			j = (j + 1) & mask
		}
		keys[j] = b
		vals[j] = oldVals[i]
	}
	st.keys, st.vals = keys, vals
	f.grows.Add(1)
}

// Grows returns how many stripe rehashes this map has performed (the
// ppr_pmap_grows_total feed; growth should vanish once capacity hints fit
// the workload).
func (f *Flat) Grows() int64 { return f.grows.Load() }

// Get returns the value for k and whether it is present. Owner-only (or
// quiescent map).
func (f *Flat) Get(k Key) (float64, bool) {
	p := k.pack()
	h := hash64(p)
	st := &f.stripes[h&(NumSubmaps-1)]
	b := p + keyBias
	keys := st.keys
	mask := uint64(len(keys) - 1)
	i := (h >> submapBits) & mask
	for {
		kk := keys[i]
		if kk == b {
			return st.vals[i], true
		}
		if kk == emptySlot {
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Set stores v for k. Owner-only (or quiescent map).
func (f *Flat) Set(k Key, v float64) { f.SwapP(k.pack(), v) }

// Len returns the total number of keys. Only meaningful on a quiescent map.
func (f *Flat) Len() int {
	n := 0
	for i := range f.stripes {
		n += f.stripes[i].n
	}
	return n
}

// Range calls f2 for every (key, value) pair. Quiescent-map only.
func (f *Flat) Range(f2 func(Key, float64) bool) {
	for i := range f.stripes {
		st := &f.stripes[i]
		for j, b := range st.keys {
			if b == emptySlot {
				continue
			}
			if !f2(unpack(b-keyBias), st.vals[j]) {
				return
			}
		}
	}
}

// Clear removes all keys, retaining the stripe storage.
func (f *Flat) Clear() {
	for i := range f.stripes {
		st := &f.stripes[i]
		clear(st.keys)
		st.n = 0
	}
}

type flatSetStripe struct {
	keys  []uint64 // probe table: packed key + keyBias; 0 = empty
	slots []int32  // insertion-ordered slot indices into keys
	_     [16]byte
}

// FlatSet is the activated-vertex set for the affinity engine: a striped
// probe table for O(1) dedup plus a dense per-stripe insertion list so
// draining is a straight scan instead of a table walk. Same ownership rules
// as Flat; the dense list keeps DrainStripe branch-light — one hoisted-bounds
// loop over the slots, then either a sparse slot reset or one memclr,
// whichever touches less memory.
type FlatSet struct {
	stripes [NumSubmaps]flatSetStripe
	grows   atomic.Int64
}

// NewFlatSet returns an empty set sized for capacityHint total keys.
func NewFlatSet(capacityHint int) *FlatSet {
	s := &FlatSet{}
	per := stripeCapFor(capacityHint)
	for i := range s.stripes {
		s.stripes[i].keys = make([]uint64, per)
	}
	return s
}

// InsertP adds packed key p and reports whether it was newly added.
// Owner-only: the caller must own p's stripe.
func (s *FlatSet) InsertP(p uint64) bool {
	h := hash64(p)
	st := &s.stripes[h&(NumSubmaps-1)]
	if len(st.slots)*4 >= len(st.keys)*3 {
		s.growStripe(st)
	}
	b := p + keyBias
	keys := st.keys
	mask := uint64(len(keys) - 1)
	i := (h >> submapBits) & mask
	for {
		k := keys[i]
		if k == b {
			return false
		}
		if k == emptySlot {
			keys[i] = b
			st.slots = append(st.slots, int32(i))
			return true
		}
		i = (i + 1) & mask
	}
}

// growStripe doubles one stripe's probe table, reinserting the live keys in
// insertion order so the slot list stays valid.
func (s *FlatSet) growStripe(st *flatSetStripe) {
	n := len(st.keys) * 2
	keys := make([]uint64, n)
	mask := uint64(n - 1)
	for idx, sl := range st.slots {
		b := st.keys[sl]
		i := (hash64(b-keyBias) >> submapBits) & mask
		for keys[i] != emptySlot {
			i = (i + 1) & mask
		}
		keys[i] = b
		st.slots[idx] = int32(i)
	}
	st.keys = keys
	s.grows.Add(1)
}

// Grows returns how many stripe rehashes this set has performed.
func (s *FlatSet) Grows() int64 { return s.grows.Load() }

// DrainStripe appends stripe si's keys to dst in insertion order and clears
// the stripe. Owner-only.
func (s *FlatSet) DrainStripe(si int, dst []Key) []Key {
	st := &s.stripes[si]
	slots := st.slots
	if len(slots) == 0 {
		return dst
	}
	keys := st.keys
	for _, sl := range slots {
		dst = append(dst, unpack(keys[sl]-keyBias))
	}
	if len(slots)*4 >= len(keys) {
		// Dense: one memclr beats resetting slot by slot.
		clear(keys)
	} else {
		for _, sl := range slots {
			keys[sl] = emptySlot
		}
	}
	st.slots = slots[:0]
	return dst
}

// Drain appends all keys to dst (stripe-major, insertion order within a
// stripe) and clears the set. Quiescent-set only.
func (s *FlatSet) Drain(dst []Key) []Key {
	for si := range s.stripes {
		dst = s.DrainStripe(si, dst)
	}
	return dst
}

// Len returns the number of keys. Quiescent-set only.
func (s *FlatSet) Len() int {
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].slots)
	}
	return n
}
