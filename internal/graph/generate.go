package graph

import (
	"math/rand"
)

// RMATConfig controls the recursive-matrix (R-MAT) generator used to build
// synthetic power-law graphs. The four quadrant probabilities a+b+c+d must
// sum to 1; a > 0.25 skews the degree distribution, producing supernodes.
type RMATConfig struct {
	NumNodes int // rounded up to a power of two internally
	NumEdges int64
	A, B, C  float64 // D = 1 - A - B - C
	Seed     int64
	// Noise perturbs quadrant probabilities per level to avoid grid
	// artifacts (standard "noisy R-MAT"). 0 disables, 0.1 is typical.
	Noise float64
	// MaxDegree, when > 0, caps the out-degree of every node by dropping
	// surplus edges (the paper notes GNN preprocessing bounds supernode
	// degrees; friendster-sim uses this to keep dmax low).
	MaxDegree int
}

// RMAT generates a directed graph with the given configuration. Duplicate
// edges are removed. Edge weights are uniform in (0,1].
func RMAT(cfg RMATConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1
	levels := 0
	for n < cfg.NumNodes {
		n <<= 1
		levels++
	}
	d := 1.0 - cfg.A - cfg.B - cfg.C
	seen := make(map[int64]struct{}, cfg.NumEdges)
	edges := make([]Edge, 0, cfg.NumEdges)
	degree := make([]int32, cfg.NumNodes)
	attempts := int64(0)
	maxAttempts := cfg.NumEdges * 20
	for int64(len(edges)) < cfg.NumEdges && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		a, b, c := cfg.A, cfg.B, cfg.C
		for l := 0; l < levels; l++ {
			if cfg.Noise > 0 {
				// Perturb and renormalize.
				na := a * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
				nb := b * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
				nc := c * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
				nd := d * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
				s := na + nb + nc + nd
				a, b, c = na/s, nb/s, nc/s
			}
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bit set
			case r < a+b:
				v |= 1 << l
			case r < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
			a, b, c = cfg.A, cfg.B, cfg.C
		}
		if u >= cfg.NumNodes || v >= cfg.NumNodes || u == v {
			continue
		}
		if cfg.MaxDegree > 0 && int(degree[u]) >= cfg.MaxDegree {
			continue
		}
		key := int64(u)<<32 | int64(int32(v))&0xffffffff
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		degree[u]++
		edges = append(edges, Edge{NodeID(u), NodeID(v), weight01(rng)})
	}
	g, err := FromEdges(cfg.NumNodes, edges)
	if err != nil {
		panic(err) // generator emits only in-range endpoints
	}
	return g
}

// ErdosRenyi generates a directed G(n, m) graph with m distinct random edges
// (no self loops) and uniform random weights in (0,1].
func ErdosRenyi(n int, m int64, seed int64) *Graph {
	if maxM := int64(n) * int64(n-1); m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]struct{}, m)
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{NodeID(u), NodeID(v), weight01(rng)})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Ring generates a directed cycle 0->1->...->n-1->0 with unit weights.
// Useful in tests where exact PPR values are known in closed form.
func Ring(n int) *Graph {
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{NodeID(i), NodeID((i + 1) % n), 1}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Complete generates the complete directed graph on n nodes (no self loops)
// with unit weights.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, Edge{NodeID(i), NodeID(j), 1})
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Star generates a star with node 0 at the center, edges in both directions,
// unit weights. Node 0 is a supernode with degree n-1.
func Star(n int) *Graph {
	edges := make([]Edge, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, NodeID(i), 1}, Edge{NodeID(i), 0, 1})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomizeWeights replaces all edge weights with uniform values in (0,1]
// and recomputes weighted degrees. Symmetric pairs get independent weights;
// use this before MakeUndirected when symmetric weights are required.
func RandomizeWeights(g *Graph, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Weights {
		g.Weights[i] = weight01(rng)
	}
	g.ComputeWeightedDegrees()
}

func weight01(rng *rand.Rand) float32 {
	return float32(1 - rng.Float64()*0.999) // in (0.001, 1]
}
