package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialization of Graph in a simple framed little-endian format:
//
//	magic   uint32 = 0x47504852 ("GPHR")
//	version uint32 = 1
//	n       int64
//	m       int64
//	indptr  [n+1]int64
//	adj     [m]int32
//	weights [m]float32
//
// WeightedDegree is recomputed on load.

const (
	magic   = 0x47504852
	version = 1
)

// Encode serializes g to w.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []any{uint32(magic), uint32(version), int64(g.NumNodes), g.NumEdges()}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indptr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Encode.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var mg, ver uint32
	var n, m int64
	if err := binary.Read(br, binary.LittleEndian, &mg); err != nil {
		return nil, err
	}
	if mg != magic {
		return nil, fmt.Errorf("graph: bad magic %#x", mg)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes n=%d m=%d", n, m)
	}
	g := &Graph{NumNodes: int(n)}
	g.Indptr = make([]int64, n+1)
	g.Adj = make([]NodeID, m)
	g.Weights = make([]float32, m)
	if err := binary.Read(br, binary.LittleEndian, g.Indptr); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.ComputeWeightedDegrees()
	return g, nil
}

// SaveFile writes the graph to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.Encode(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}
