package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list I/O for interoperability with SNAP-style datasets (the
// paper's Twitter and Friendster graphs ship in this format): one edge per
// line, "src dst" or "src dst weight", '#' comments, whitespace separated.
// Node IDs may be sparse; they are densified on load and the mapping
// returned.

// ReadEdgeList parses an edge list from r. Missing weights default to 1.
// Returns the graph plus origID, mapping dense node ID -> original ID.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idOf := make(map[int64]NodeID)
	var origID []int64
	intern := func(raw int64) NodeID {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := NodeID(len(origID))
		idOf[raw] = id
		origID = append(origID, raw)
		return id
	}
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad destination %q", lineNo, fields[1])
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			if wf < 0 {
				return nil, nil, fmt.Errorf("graph: line %d: negative weight %v", lineNo, wf)
			}
			w = float32(wf)
		}
		edges = append(edges, Edge{Src: intern(src), Dst: intern(dst), Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	g, err := FromEdges(len(origID), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, origID, nil
}

// WriteEdgeList writes g as "src dst weight" lines using dense IDs.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# pprengine edge list: %d nodes, %d directed edges\n", g.NumNodes, g.NumEdges())
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadEdgeListFile reads a SNAP-style text file.
func LoadEdgeListFile(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeListFile writes the graph as a text edge list.
func (g *Graph) SaveEdgeListFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteEdgeList(f); err != nil {
		return err
	}
	return f.Sync()
}
