package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment style
10 20 0.5
20 30
30 10 2.0

10 30 1.5
`
	g, orig, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 3 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes, g.NumEdges())
	}
	// Dense IDs assigned in first-seen order: 10->0, 20->1, 30->2.
	if orig[0] != 10 || orig[1] != 20 || orig[2] != 30 {
		t.Fatalf("orig = %v", orig)
	}
	// Missing weight defaults to 1.
	found := false
	ws := g.EdgeWeights(1)
	for i, u := range g.Neighbors(1) {
		if u == 2 {
			found = true
			if ws[i] != 1 {
				t.Fatalf("default weight = %v", ws[i])
			}
		}
	}
	if !found {
		t.Fatal("edge 20->30 missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"justonefield",
		"a b",
		"1 b",
		"1 2 notaweight",
		"1 2 -5",
	}
	for _, c := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(RMATConfig{NumNodes: 100, NumEdges: 500, A: 0.5, B: 0.2, C: 0.2, Seed: 4})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	// Compare edges via original IDs (dense IDs may be permuted by
	// first-seen order).
	type e struct {
		s, d int64
		w    float32
	}
	set := map[e]bool{}
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			set[e{int64(v), int64(u), ws[i]}] = true
		}
	}
	for v := NodeID(0); int(v) < g2.NumNodes; v++ {
		ws := g2.EdgeWeights(v)
		for i, u := range g2.Neighbors(v) {
			// Weights pass through %g formatting; float32 round-trips.
			if !set[e{orig[v], orig[u], ws[i]}] {
				t.Fatalf("unexpected edge %d->%d w=%v", orig[v], orig[u], ws[i])
			}
		}
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := Ring(5)
	path := t.TempDir() + "/g.txt"
	if err := g.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != 5 || g2.NumEdges() != 5 {
		t.Fatal("file round trip mismatch")
	}
}
