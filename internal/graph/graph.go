// Package graph provides the in-memory graph representation used throughout
// the engine: a weighted directed graph in Compressed Sparse Row (CSR) form,
// together with builders, generators, statistics, and binary serialization.
//
// All distributed components (partitioning, sharding, the PPR engine) consume
// the CSR form produced here. Node identifiers are dense integers in
// [0, NumNodes).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node by its dense global index.
type NodeID = int32

// Edge is a single weighted directed edge, used by builders and generators.
type Edge struct {
	Src    NodeID
	Dst    NodeID
	Weight float32
}

// Graph is a weighted directed graph in CSR form. For an undirected graph
// each edge is stored in both directions.
//
// The out-neighbors of node v are Adj[Indptr[v]:Indptr[v+1]], with parallel
// edge weights in Weights. WeightedDegree caches the sum of outgoing edge
// weights per node, which Forward Push consults on every threshold check.
type Graph struct {
	NumNodes int
	Indptr   []int64
	Adj      []NodeID
	Weights  []float32

	// WeightedDegree[v] = sum of Weights over v's out-edges.
	WeightedDegree []float32
}

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int64 {
	if len(g.Indptr) == 0 {
		return 0
	}
	return g.Indptr[len(g.Indptr)-1]
}

// Degree returns the out-degree of node v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.Indptr[v+1] - g.Indptr[v])
}

// Neighbors returns the out-neighbor slice of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.Adj[g.Indptr[v]:g.Indptr[v+1]]
}

// EdgeWeights returns the out-edge weight slice of v, parallel to Neighbors.
func (g *Graph) EdgeWeights(v NodeID) []float32 {
	return g.Weights[g.Indptr[v]:g.Indptr[v+1]]
}

// Validate checks structural invariants of the CSR arrays. It returns a
// descriptive error for the first violation found.
func (g *Graph) Validate() error {
	if g.NumNodes < 0 {
		return errors.New("graph: negative NumNodes")
	}
	if len(g.Indptr) != g.NumNodes+1 {
		return fmt.Errorf("graph: len(Indptr)=%d, want NumNodes+1=%d", len(g.Indptr), g.NumNodes+1)
	}
	if g.NumNodes == 0 {
		return nil
	}
	if g.Indptr[0] != 0 {
		return fmt.Errorf("graph: Indptr[0]=%d, want 0", g.Indptr[0])
	}
	for v := 0; v < g.NumNodes; v++ {
		if g.Indptr[v+1] < g.Indptr[v] {
			return fmt.Errorf("graph: Indptr not monotone at node %d", v)
		}
	}
	m := g.Indptr[g.NumNodes]
	if int64(len(g.Adj)) != m {
		return fmt.Errorf("graph: len(Adj)=%d, want %d", len(g.Adj), m)
	}
	if int64(len(g.Weights)) != m {
		return fmt.Errorf("graph: len(Weights)=%d, want %d", len(g.Weights), m)
	}
	if g.WeightedDegree != nil && len(g.WeightedDegree) != g.NumNodes {
		return fmt.Errorf("graph: len(WeightedDegree)=%d, want %d", len(g.WeightedDegree), g.NumNodes)
	}
	for i, u := range g.Adj {
		if u < 0 || int(u) >= g.NumNodes {
			return fmt.Errorf("graph: Adj[%d]=%d out of range [0,%d)", i, u, g.NumNodes)
		}
	}
	for i, w := range g.Weights {
		if w < 0 || math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
			return fmt.Errorf("graph: Weights[%d]=%v invalid", i, w)
		}
	}
	return nil
}

// ComputeWeightedDegrees (re)computes the WeightedDegree cache from Weights.
func (g *Graph) ComputeWeightedDegrees() {
	wd := make([]float32, g.NumNodes)
	for v := 0; v < g.NumNodes; v++ {
		var s float32
		for _, w := range g.Weights[g.Indptr[v]:g.Indptr[v+1]] {
			s += w
		}
		wd[v] = s
	}
	g.WeightedDegree = wd
}

// FromEdges builds a CSR graph with numNodes nodes from an edge list.
// Edges are not deduplicated; self loops are kept. Edge order within a
// node's adjacency follows the input order (stable counting sort by source).
func FromEdges(numNodes int, edges []Edge) (*Graph, error) {
	g := &Graph{NumNodes: numNodes}
	g.Indptr = make([]int64, numNodes+1)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= numNodes {
			return nil, fmt.Errorf("graph: edge source %d out of range [0,%d)", e.Src, numNodes)
		}
		if e.Dst < 0 || int(e.Dst) >= numNodes {
			return nil, fmt.Errorf("graph: edge destination %d out of range [0,%d)", e.Dst, numNodes)
		}
		g.Indptr[e.Src+1]++
	}
	for v := 0; v < numNodes; v++ {
		g.Indptr[v+1] += g.Indptr[v]
	}
	m := g.Indptr[numNodes]
	g.Adj = make([]NodeID, m)
	g.Weights = make([]float32, m)
	cursor := make([]int64, numNodes)
	copy(cursor, g.Indptr[:numNodes])
	for _, e := range edges {
		i := cursor[e.Src]
		cursor[e.Src]++
		g.Adj[i] = e.Dst
		g.Weights[i] = e.Weight
	}
	g.ComputeWeightedDegrees()
	return g, nil
}

// MakeUndirected returns a new graph in which every directed edge (u,v,w)
// also appears as (v,u,w). Duplicate directed edges between the same pair are
// coalesced, keeping the maximum weight, so the result is symmetric with at
// most one edge per ordered pair. Self loops are dropped.
func MakeUndirected(g *Graph) *Graph {
	type pair struct {
		dst NodeID
		w   float32
	}
	// Count upper bound per node, then build per-node sorted, deduplicated
	// adjacency. Two passes keep peak memory at ~2x edges.
	deg := make([]int64, g.NumNodes+1)
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			deg[v+1]++
			deg[u+1]++
		}
	}
	for v := 0; v < g.NumNodes; v++ {
		deg[v+1] += deg[v]
	}
	total := deg[g.NumNodes]
	adj := make([]NodeID, total)
	wts := make([]float32, total)
	cursor := make([]int64, g.NumNodes)
	copy(cursor, deg[:g.NumNodes])
	emit := func(a, b NodeID, w float32) {
		i := cursor[a]
		cursor[a]++
		adj[i] = b
		wts[i] = w
	}
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			emit(v, u, ws[i])
			emit(u, v, ws[i])
		}
	}
	// Sort and dedup each node's adjacency, keeping max weight.
	out := &Graph{NumNodes: g.NumNodes}
	out.Indptr = make([]int64, g.NumNodes+1)
	outAdj := make([]NodeID, 0, total)
	outWts := make([]float32, 0, total)
	scratch := make([]pair, 0, 256)
	for v := 0; v < g.NumNodes; v++ {
		lo, hi := deg[v], deg[v+1]
		scratch = scratch[:0]
		for i := lo; i < hi; i++ {
			scratch = append(scratch, pair{adj[i], wts[i]})
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].dst < scratch[j].dst })
		for i := 0; i < len(scratch); i++ {
			if i > 0 && scratch[i].dst == scratch[i-1].dst {
				if scratch[i].w > outWts[len(outWts)-1] {
					outWts[len(outWts)-1] = scratch[i].w
				}
				continue
			}
			outAdj = append(outAdj, scratch[i].dst)
			outWts = append(outWts, scratch[i].w)
		}
		out.Indptr[v+1] = int64(len(outAdj))
	}
	out.Adj = outAdj
	out.Weights = outWts
	out.ComputeWeightedDegrees()
	return out
}

// Stats summarizes degree statistics of a graph (Table 1 columns).
type Stats struct {
	NumNodes  int
	NumEdges  int64 // directed edges as stored
	AvgDegree float64
	MaxDegree int
	MinDegree int
	Isolated  int // nodes with zero out-degree
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumNodes: g.NumNodes, NumEdges: g.NumEdges(), MinDegree: math.MaxInt}
	if g.NumNodes == 0 {
		s.MinDegree = 0
		return s
	}
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDegree = float64(s.NumEdges) / float64(s.NumNodes)
	return s
}

// Subgraph induces the subgraph on the given nodes (global IDs). The returned
// graph renumbers nodes to [0, len(nodes)) in the order given; the second
// return value maps new local ID -> original global ID.
func Subgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	local := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		local[v] = NodeID(i)
	}
	var edges []Edge
	for i, v := range nodes {
		ws := g.EdgeWeights(v)
		for j, u := range g.Neighbors(v) {
			if lu, ok := local[u]; ok {
				edges = append(edges, Edge{NodeID(i), lu, ws[j]})
			}
		}
	}
	sub, err := FromEdges(len(nodes), edges)
	if err != nil {
		// Cannot happen: all endpoints were remapped into range.
		panic(err)
	}
	gids := make([]NodeID, len(nodes))
	copy(gids, nodes)
	return sub, gids
}
