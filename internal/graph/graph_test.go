package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	edges := []Edge{{0, 1, 0.5}, {0, 2, 1.5}, {1, 2, 2.0}, {2, 0, 1.0}}
	g, err := FromEdges(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if got := g.WeightedDegree[0]; got != 2.0 {
		t.Fatalf("WeightedDegree[0] = %v, want 2.0", got)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0, 1}}); err == nil {
		t.Fatal("expected error for negative source")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("expected 0 edges")
	}
	g, err = FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(g)
	if st.Isolated != 5 || st.MaxDegree != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMakeUndirectedSymmetry(t *testing.T) {
	g := RMAT(RMATConfig{NumNodes: 500, NumEdges: 2000, A: 0.57, B: 0.19, C: 0.19, Seed: 1})
	u := MakeUndirected(g)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// Build an edge-weight lookup and check symmetry.
	type key struct{ a, b NodeID }
	m := make(map[key]float32)
	for v := NodeID(0); int(v) < u.NumNodes; v++ {
		ws := u.EdgeWeights(v)
		for i, n := range u.Neighbors(v) {
			m[key{v, n}] = ws[i]
		}
	}
	for k, w := range m {
		w2, ok := m[key{k.b, k.a}]
		if !ok {
			t.Fatalf("edge (%d,%d) has no reverse", k.a, k.b)
		}
		if w != w2 {
			t.Fatalf("asymmetric weights (%d,%d): %v vs %v", k.a, k.b, w, w2)
		}
	}
	// No self loops, no duplicates within a node's adjacency.
	for v := NodeID(0); int(v) < u.NumNodes; v++ {
		nb := u.Neighbors(v)
		for i, n := range nb {
			if n == v {
				t.Fatalf("self loop at %d", v)
			}
			if i > 0 && nb[i-1] >= n {
				t.Fatalf("adjacency of %d not strictly sorted", v)
			}
		}
	}
}

func TestMakeUndirectedDedupKeepsMaxWeight(t *testing.T) {
	// Duplicate directed edges 0->1 with weights 0.2 and 0.9.
	g, _ := FromEdges(2, []Edge{{0, 1, 0.2}, {0, 1, 0.9}, {1, 0, 0.5}})
	u := MakeUndirected(g)
	if u.Degree(0) != 1 || u.Degree(1) != 1 {
		t.Fatalf("degrees: %d %d, want 1 1", u.Degree(0), u.Degree(1))
	}
	if w := u.EdgeWeights(0)[0]; w != 0.9 {
		t.Fatalf("weight(0->1) = %v, want max 0.9", w)
	}
}

func TestRingAndCompleteAndStar(t *testing.T) {
	r := Ring(5)
	if r.NumEdges() != 5 {
		t.Fatalf("ring edges = %d", r.NumEdges())
	}
	for v := NodeID(0); v < 5; v++ {
		if r.Degree(v) != 1 || r.Neighbors(v)[0] != (v+1)%5 {
			t.Fatalf("ring structure broken at %d", v)
		}
	}
	c := Complete(4)
	if c.NumEdges() != 12 {
		t.Fatalf("complete edges = %d, want 12", c.NumEdges())
	}
	s := Star(6)
	if s.Degree(0) != 5 {
		t.Fatalf("star hub degree = %d, want 5", s.Degree(0))
	}
	for v := NodeID(1); v < 6; v++ {
		if s.Degree(v) != 1 {
			t.Fatalf("star leaf %d degree = %d", v, s.Degree(v))
		}
	}
}

func TestRMATProperties(t *testing.T) {
	cfg := RMATConfig{NumNodes: 1024, NumEdges: 8192, A: 0.6, B: 0.15, C: 0.15, Seed: 7, Noise: 0.1}
	g := RMAT(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < cfg.NumEdges*9/10 {
		t.Fatalf("generated only %d of %d edges", g.NumEdges(), cfg.NumEdges)
	}
	st := ComputeStats(g)
	// Skewed R-MAT must produce a hub much larger than the average degree.
	if float64(st.MaxDegree) < 4*st.AvgDegree {
		t.Fatalf("expected skew: max=%d avg=%.1f", st.MaxDegree, st.AvgDegree)
	}
	// Determinism for a fixed seed.
	g2 := RMAT(cfg)
	if g2.NumEdges() != g.NumEdges() || g2.Adj[0] != g.Adj[0] {
		t.Fatal("RMAT not deterministic for fixed seed")
	}
}

func TestRMATMaxDegreeCap(t *testing.T) {
	g := RMAT(RMATConfig{NumNodes: 512, NumEdges: 4096, A: 0.6, B: 0.15, C: 0.15, Seed: 3, MaxDegree: 16})
	st := ComputeStats(g)
	if st.MaxDegree > 16 {
		t.Fatalf("MaxDegree cap violated: %d", st.MaxDegree)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(200, 1000, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1000 {
		t.Fatalf("edges = %d, want 1000", g.NumEdges())
	}
	// No self loops.
	for v := NodeID(0); int(v) < g.NumNodes; v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := RMAT(RMATConfig{NumNodes: 300, NumEdges: 1500, A: 0.55, B: 0.2, C: 0.15, Seed: 9})
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != g.NumNodes || g2.NumEdges() != g.NumEdges() {
		t.Fatal("size mismatch after round trip")
	}
	for i := range g.Indptr {
		if g.Indptr[i] != g2.Indptr[i] {
			t.Fatalf("indptr[%d] differs", i)
		}
	}
	for i := range g.Adj {
		if g.Adj[i] != g2.Adj[i] || g.Weights[i] != g2.Weights[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range g.WeightedDegree {
		if g.WeightedDegree[i] != g2.WeightedDegree[i] {
			t.Fatalf("weighted degree %d differs", i)
		}
	}
}

func TestSerializationBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := Ring(10)
	path := t.TempDir() + "/g.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != 10 || g2.NumEdges() != 10 {
		t.Fatal("file round trip mismatch")
	}
}

func TestSubgraph(t *testing.T) {
	// 0-1-2-3 path, plus 0->3.
	g, _ := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}})
	sub, gids := Subgraph(g, []NodeID{0, 1, 3})
	if sub.NumNodes != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes)
	}
	// Edges kept: 0->1 and 0->3 (local 0->2). 1->2 dropped (2 not in set).
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if gids[2] != 3 {
		t.Fatalf("gids = %v", gids)
	}
	nb := sub.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("sub Neighbors(0) = %v", nb)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Ring(4)
	g.Adj[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range Adj")
	}
	g = Ring(4)
	g.Indptr[2] = 0
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error for non-monotone Indptr")
	}
}

// Property: FromEdges preserves the multiset of edges.
func TestQuickFromEdgesPreservesEdges(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%50) + 2
		m := int(mRaw % 500)
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float32() + 0.01}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		if g.NumEdges() != int64(m) {
			return false
		}
		count := make(map[[2]NodeID]int)
		for _, e := range edges {
			count[[2]NodeID{e.Src, e.Dst}]++
		}
		for v := NodeID(0); int(v) < n; v++ {
			for _, u := range g.Neighbors(v) {
				count[[2]NodeID{v, u}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MakeUndirected output is always symmetric and validates.
func TestQuickUndirectedSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		m := rng.Intn(300)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float32() + 0.01}
		}
		g, _ := FromEdges(n, edges)
		u := MakeUndirected(g)
		if u.Validate() != nil {
			return false
		}
		has := make(map[[2]NodeID]bool)
		for v := NodeID(0); int(v) < n; v++ {
			for _, w := range u.Neighbors(v) {
				has[[2]NodeID{v, w}] = true
			}
		}
		for k := range has {
			if !has[[2]NodeID{k[1], k[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MakeUndirected is idempotent (a symmetric graph maps to itself).
func TestQuickUndirectedIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		g, _ := FromEdges(n, randomEdges(rng, n, rng.Intn(150)))
		u1 := MakeUndirected(g)
		u2 := MakeUndirected(u1)
		if u1.NumEdges() != u2.NumEdges() {
			return false
		}
		for i := range u1.Adj {
			if u1.Adj[i] != u2.Adj[i] || u1.Weights[i] != u2.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float32() + 0.01}
	}
	return edges
}
