package core

import (
	"context"
	"sort"
	"testing"

	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/pmap"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

func TestSampleNeighborsLocalBasics(t *testing.T) {
	// Node 0 with 5 neighbors, fanout 3.
	edges := []graph.Edge{}
	for i := 1; i <= 5; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: float32(i)})
	}
	g, _ := graph.FromEdges(6, edges)
	shards, loc, err := shard.Build(g, partition.Assignment{0, 0, 0, 0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := SampleNeighborsLocal(shards[0], loc, []int32{0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	locals, _, globals := resp.Row(0)
	if len(locals) != 3 {
		t.Fatalf("sampled %d, want 3", len(locals))
	}
	// Without replacement: all distinct.
	seen := map[int32]bool{}
	for _, gl := range globals {
		if seen[gl] {
			t.Fatalf("duplicate sample %d", gl)
		}
		seen[gl] = true
		if gl < 1 || gl > 5 {
			t.Fatalf("sampled non-neighbor %d", gl)
		}
	}
	// Degree <= fanout: all neighbors returned.
	resp, err = SampleNeighborsLocal(shards[0], loc, []int32{0}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	locals, _, _ = resp.Row(0)
	if len(locals) != 5 {
		t.Fatalf("full row: got %d", len(locals))
	}
	// Degree 0: empty row.
	resp, err = SampleNeighborsLocal(shards[0], loc, []int32{1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l, _, _ := resp.Row(0); len(l) != 0 {
		t.Fatalf("dangling row not empty: %v", l)
	}
	// Bad fanout.
	if _, err := SampleNeighborsLocal(shards[0], loc, []int32{0}, 0, 1); err == nil {
		t.Fatal("fanout 0 should error")
	}
}

func TestSampleNeighborsWeightBias(t *testing.T) {
	// Weight 96 to node 1, weight 1 to nodes 2..5. Fanout 1 picks node 1
	// the overwhelming majority of the time.
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 96}}
	for i := 2; i <= 5; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
	}
	g, _ := graph.FromEdges(6, edges)
	shards, loc, _ := shard.Build(g, partition.Assignment{0, 0, 0, 0, 0, 0}, 1)
	hits := 0
	for seed := int64(0); seed < 100; seed++ {
		resp, err := SampleNeighborsLocal(shards[0], loc, []int32{0}, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, _, globals := resp.Row(0)
		if globals[0] == 1 {
			hits++
		}
	}
	if hits < 85 {
		t.Fatalf("weighted bias broken: %d/100", hits)
	}
}

func TestRunKHopSampleDistributed(t *testing.T) {
	g := testGraph(31, 300, 2000)
	storages, _, loc, cleanup := testDeployment(t, g, 3)
	defer cleanup()
	fanouts := []int{4, 3}
	res, err := RunKHopSample(context.Background(), storages[0], []int32{0, 1}, fanouts, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 2 || res.Nodes[0] != res.Roots[0] || res.Nodes[1] != res.Roots[1] {
		t.Fatalf("roots wrong: %v / %v", res.Roots, res.Nodes[:2])
	}
	if len(res.EdgeSrc) == 0 || len(res.EdgeSrc) != len(res.EdgeDst) {
		t.Fatalf("edges: %d/%d", len(res.EdgeSrc), len(res.EdgeDst))
	}
	// Every sampled edge (child->parent) must be a real graph edge
	// parent->child (child is an out-neighbor of parent).
	for i := range res.EdgeSrc {
		child := res.Nodes[res.EdgeSrc[i]]
		parent := res.Nodes[res.EdgeDst[i]]
		found := false
		for _, u := range g.Neighbors(graph.NodeID(parent)) {
			if int32(u) == child {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %d: %d is not a neighbor of %d", i, child, parent)
		}
	}
	// Hop labels are consistent: every node except roots first appears one
	// hop after some parent.
	if res.HopOf[0] != 0 || res.HopOf[1] != 0 {
		t.Fatal("root hops wrong")
	}
	maxHop := int32(0)
	for _, h := range res.HopOf {
		if h > maxHop {
			maxHop = h
		}
	}
	if maxHop > int32(len(fanouts)) {
		t.Fatalf("hop %d exceeds %d", maxHop, len(fanouts))
	}
	// Fanout bound: each parent samples at most fanout children per hop.
	children := map[int32]int{}
	for i := range res.EdgeDst {
		children[res.EdgeDst[i]]++
	}
	for parent, n := range children {
		hop := res.HopOf[parent]
		if int(hop) < len(fanouts) && n > fanouts[hop] {
			t.Fatalf("parent %d at hop %d sampled %d > fanout %d", parent, hop, n, fanouts[hop])
		}
	}
	// Nodes are unique.
	sorted := append([]int32(nil), res.Nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("duplicate node %d", sorted[i])
		}
	}
	// Subgraph conversion.
	sub, err := res.Subgraph()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes != len(res.Nodes) || sub.NumEdges() != int64(len(res.EdgeSrc)) {
		t.Fatal("subgraph size mismatch")
	}
	_ = loc
}

func TestRunKHopDeterministicSeed(t *testing.T) {
	g := testGraph(32, 200, 1200)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	a, err := RunKHopSample(context.Background(), storages[0], []int32{0}, []int{3, 3}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunKHopSample(context.Background(), storages[0], []int32{0}, []int{3, 3}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("nondeterministic nodes")
		}
	}
}

func TestSampleNeighborsRemoteError(t *testing.T) {
	g := testGraph(33, 100, 600)
	storages, _, _, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	if _, err := storages[0].SampleNeighbors(context.Background(), 1, []int32{1 << 20}, 3, 1).Wait(); err == nil {
		t.Fatal("expected remote validation error")
	}
}

func TestTopK(t *testing.T) {
	m := NewSSPPR(0, 0, DefaultConfig())
	m.p.Set(pmap.Key{Local: 1, Shard: 0}, 0.5)
	m.p.Set(pmap.Key{Local: 2, Shard: 0}, 0.9)
	m.p.Set(pmap.Key{Local: 3, Shard: 1}, 0.1)
	m.p.Set(pmap.Key{Local: 4, Shard: 1}, 0.9)
	top := m.TopK(2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	// Ties break toward lower (shard, local).
	if top[0].Key != (pmap.Key{Local: 2, Shard: 0}) || top[1].Key != (pmap.Key{Local: 4, Shard: 1}) {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Score != 0.9 || top[1].Score != 0.9 {
		t.Fatalf("scores = %+v", top)
	}
	all := m.TopK(100)
	if len(all) != 4 || all[3].Key != (pmap.Key{Local: 3, Shard: 1}) {
		t.Fatalf("all = %+v", all)
	}
	if m.TopK(0) != nil {
		t.Fatal("TopK(0) should be nil")
	}
}

func TestRunSSPPRTopKMatchesFull(t *testing.T) {
	g := testGraph(34, 250, 1500)
	storages, _, loc, cleanup := testDeployment(t, g, 2)
	defer cleanup()
	sh, lc := loc.Locate(4)
	top, _, err := RunSSPPRTopK(context.Background(), storages[sh], lc, 10, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("not descending")
		}
	}
	// The source is its own top-1 (pi(s,s) >= alpha).
	if top[0].Key != (pmap.Key{Local: lc, Shard: sh}) {
		t.Fatalf("top-1 = %+v, want source", top[0])
	}
	_ = rpc.LatencyModel{}
}
