package core

import (
	"context"
	"math"
	"testing"

	"pprengine/internal/cache"
	"pprengine/internal/graph"
	"pprengine/internal/partition"
	"pprengine/internal/rpc"
	"pprengine/internal/shard"
)

// cachedDeployment is testDeployment plus per-machine dynamic caches and
// access to the storage servers (for RPC request counters).
func cachedDeployment(t *testing.T, g *graph.Graph, k int, cacheBytes int64) ([]*DistGraphStorage, []*StorageServer, *shard.Locator, func()) {
	t.Helper()
	assign, err := partition.Partition(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, loc, err := shard.Build(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*StorageServer, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		servers[i] = NewStorageServer(shards[i], loc)
		addrs[i], err = servers[i].Start()
		if err != nil {
			t.Fatal(err)
		}
	}
	var allClients []*rpc.Client
	storages := make([]*DistGraphStorage, k)
	for i := 0; i < k; i++ {
		clients := make([]*rpc.Client, k)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			c, err := rpc.Dial(addrs[j], rpc.LatencyModel{})
			if err != nil {
				t.Fatal(err)
			}
			clients[j] = c
			allClients = append(allClients, c)
		}
		storages[i] = NewDistGraphStorage(int32(i), shards[i], loc, clients)
		if cacheBytes > 0 {
			storages[i].AttachCache(cache.New(cacheBytes))
		}
	}
	cleanup := func() {
		for _, c := range allClients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}
	return storages, servers, loc, cleanup
}

// remoteLocal returns a local ID that is a core vertex of shard dst (any one).
func remoteLocal(t *testing.T, storages []*DistGraphStorage, dst int32) int32 {
	t.Helper()
	if storages[dst].Local.NumCore() == 0 {
		t.Fatalf("shard %d has no core vertices", dst)
	}
	return 0
}

// TestCacheDedupSingleRPC: two fetches for the same remote vertex issued
// before either is waited must coalesce into exactly one server request, and
// a later fetch must hit the cache without any RPC at all.
func TestCacheDedupSingleRPC(t *testing.T) {
	g := testGraph(11, 200, 1200)
	storages, servers, _, cleanup := cachedDeployment(t, g, 2, 1<<20)
	defer cleanup()
	cfg := DefaultConfig()
	ctx := context.Background()
	l := remoteLocal(t, storages, 1)

	f1 := storages[0].GetNeighborInfos(ctx, 1, []int32{l}, cfg)
	f2 := storages[0].GetNeighborInfos(ctx, 1, []int32{l}, cfg)
	if got := f1.RemoteRows(); got != 1 {
		t.Fatalf("leader RemoteRows = %d, want 1", got)
	}
	if got := f2.RemoteRows(); got != 0 {
		t.Fatalf("coalesced RemoteRows = %d, want 0", got)
	}
	if got := f2.CacheCoalesced(); got != 1 {
		t.Fatalf("coalesced count = %d, want 1", got)
	}
	b1, err := f1.WaitCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := f2.WaitCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reqs := servers[1].RPCStats().Requests[rpc.MethodGetNeighborInfos]; reqs != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (single-flight dedup)", reqs)
	}

	// Both batches carry the vertex's true row.
	vp := storages[1].Local.VertexProp(l)
	for name, b := range map[string]NeighborBatch{"leader": b1, "waiter": b2} {
		locals, shards, weights, _, wdeg := b.Row(0)
		if len(locals) != vp.Degree() || wdeg != vp.WDeg {
			t.Fatalf("%s row: %d neighbors wdeg %v, want %d / %v", name, len(locals), wdeg, vp.Degree(), vp.WDeg)
		}
		for i := range locals {
			if locals[i] != vp.Locals[i] || shards[i] != vp.Shards[i] || weights[i] != vp.Weights[i] {
				t.Fatalf("%s row neighbor %d mismatch", name, i)
			}
		}
	}

	// Third fetch: pure cache hit, still exactly one request on the server.
	f3 := storages[0].GetNeighborInfos(ctx, 1, []int32{l}, cfg)
	if f3.RemoteRows() != 0 || f3.CacheHits() != 1 {
		t.Fatalf("hit fetch: RemoteRows=%d CacheHits=%d", f3.RemoteRows(), f3.CacheHits())
	}
	if _, err := f3.WaitCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if reqs := servers[1].RPCStats().Requests[rpc.MethodGetNeighborInfos]; reqs != 1 {
		t.Fatalf("cache hit issued an RPC: server saw %d requests", reqs)
	}
}

// TestCachedQueryMatchesUncached: the cache must not change query results.
func TestCachedQueryMatchesUncached(t *testing.T) {
	g := testGraph(12, 300, 1800)
	plain, _, loc, cleanup1 := cachedDeployment(t, g, 3, 0)
	defer cleanup1()
	cached, _, _, cleanup2 := cachedDeployment(t, g, 3, 4<<20)
	defer cleanup2()
	cfg := DefaultConfig()
	sh, lc := loc.Locate(5)
	m1, s1, err := RunSSPPR(context.Background(), plain[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := RunSSPPR(context.Background(), cached[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CacheHits != 0 || s1.CacheCoalesced != 0 {
		t.Fatalf("uncached run reported cache stats: %+v", s1)
	}
	// Pop drains a hash set, so push order — and hence float32 rounding — is
	// not deterministic across runs. Compare scores within reorder noise.
	got := ScoresGlobal(cached[sh], m2)
	for v, want := range ScoresGlobal(plain[sh], m1) {
		if math.Abs(got[v]-want) > 1e-5 {
			t.Fatalf("node %d: cached %v vs plain %v", v, got[v], want)
		}
	}
	// The cached run sources some remote rows from memory instead of RPC,
	// but the total remote-row demand must stay in the same ballpark as the
	// plain run (exact counts drift with the nondeterministic push order).
	total2 := s2.RemoteRows + s2.CacheHits + s2.CacheCoalesced
	if lo, hi := s1.RemoteRows*9/10, s1.RemoteRows*11/10; total2 < lo || total2 > hi {
		t.Fatalf("row accounting: plain remote %d, cached %d+%d+%d = %d",
			s1.RemoteRows, s2.RemoteRows, s2.CacheHits, s2.CacheCoalesced, total2)
	}
	if s2.CacheHits == 0 {
		t.Fatal("cached run never hit the cache (repeated hub fetches expected)")
	}
}

// TestCacheSecondQueryCheaper: re-running the same query must serve
// previously fetched rows from the cache — strictly fewer RPC rows and
// strictly fewer bytes on the wire.
func TestCacheSecondQueryCheaper(t *testing.T) {
	g := testGraph(13, 300, 1800)
	storages, _, loc, cleanup := cachedDeployment(t, g, 3, 16<<20)
	defer cleanup()
	cfg := DefaultConfig()
	sh, lc := loc.Locate(7)
	st := storages[sh]
	bytesSent := func() int64 {
		var n int64
		for _, c := range st.Clients {
			if c != nil {
				n += c.BytesSent.Load()
			}
		}
		return n
	}

	before1 := bytesSent()
	_, s1, err := RunSSPPR(context.Background(), st, lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sent1 := bytesSent() - before1
	if s1.RemoteRows == 0 {
		t.Skip("query touched no remote rows; pick a different source")
	}

	before2 := bytesSent()
	_, s2, err := RunSSPPR(context.Background(), st, lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sent2 := bytesSent() - before2
	if s2.RemoteRows >= s1.RemoteRows {
		t.Fatalf("second pass RemoteRows %d not lower than first %d", s2.RemoteRows, s1.RemoteRows)
	}
	if sent2 >= sent1 {
		t.Fatalf("second pass sent %d bytes, first %d — no wire savings", sent2, sent1)
	}
	if s2.CacheHits == 0 {
		t.Fatal("second pass recorded no cache hits")
	}
}

// TestCacheModesAgree: the cached path must produce correct rows under every
// fetch mode (it batches internally even for FetchSingle).
func TestCacheModesAgree(t *testing.T) {
	g := testGraph(14, 200, 1200)
	loc0 := ScoresFor(t, g, 0)
	for _, mode := range []FetchMode{FetchSingle, FetchBatch, FetchBatchCompress} {
		storages, _, loc, cleanup := cachedDeployment(t, g, 2, 4<<20)
		cfg := DefaultConfig()
		cfg.Mode = mode
		sh, lc := loc.Locate(0)
		m, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
		if err != nil {
			cleanup()
			t.Fatalf("mode %v: %v", mode, err)
		}
		scores := ScoresGlobal(storages[sh], m)
		for v, want := range loc0 {
			if math.Abs(scores[v]-want) > 1e-5 {
				cleanup()
				t.Fatalf("mode %v node %d: %v want %v", mode, v, scores[v], want)
			}
		}
		cleanup()
	}
}

// ScoresFor runs an uncached reference query and returns global scores.
func ScoresFor(t *testing.T, g *graph.Graph, src int32) map[int32]float64 {
	t.Helper()
	storages, _, loc, cleanup := cachedDeployment(t, g, 2, 0)
	defer cleanup()
	cfg := DefaultConfig()
	sh, lc := loc.Locate(graph.NodeID(src))
	m, _, err := RunSSPPR(context.Background(), storages[sh], lc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ScoresGlobal(storages[sh], m)
}
